# Negative-compilation harness, run as a ctest (see tests/CMakeLists.txt).
#
# Compiles two sibling TUs with the same thread-safety flag set the library
# builds under:
#   * guarded_access_ok.cpp  — correctly locked; must compile, proving the
#     harness itself (include path, -std, flags) is sound;
#   * guarded_access_bad.cpp — unguarded GUARDED_BY access; must FAIL,
#     proving -Wthread-safety is armed and the annotations are not no-ops.
#
# Expected -D inputs: CXX (compiler), SRC_DIR (tests/negative),
# INCLUDE_DIR (the src/ root).
if(NOT DEFINED CXX OR NOT DEFINED SRC_DIR OR NOT DEFINED INCLUDE_DIR)
  message(FATAL_ERROR "check_negative_compile.cmake: pass -DCXX, -DSRC_DIR, -DINCLUDE_DIR")
endif()

set(flags -std=c++20 -fsyntax-only
    -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis
    -I${INCLUDE_DIR})

execute_process(
  COMMAND ${CXX} ${flags} ${SRC_DIR}/guarded_access_ok.cpp
  RESULT_VARIABLE ok_result
  ERROR_VARIABLE ok_stderr)
if(NOT ok_result EQUAL 0)
  message(FATAL_ERROR
    "harness broken: the correctly-locked control TU failed to compile, so "
    "a failure of the bad TU would prove nothing.\n${ok_stderr}")
endif()

execute_process(
  COMMAND ${CXX} ${flags} ${SRC_DIR}/guarded_access_bad.cpp
  RESULT_VARIABLE bad_result
  ERROR_VARIABLE bad_stderr)
if(bad_result EQUAL 0)
  message(FATAL_ERROR
    "thread-safety analysis is NOT armed: an unguarded access to a "
    "MLPO_GUARDED_BY field compiled cleanly. Check that the compiler is "
    "Clang and -Wthread-safety -Werror=thread-safety-analysis are in "
    "effect.")
endif()
string(FIND "${bad_stderr}" "thread-safety" found_idx)
if(found_idx EQUAL -1)
  message(FATAL_ERROR
    "guarded_access_bad.cpp failed to compile, but not with a "
    "thread-safety diagnostic — the harness would mask unrelated "
    "breakage.\n${bad_stderr}")
endif()
message(STATUS "negative compile OK: unguarded access rejected by -Wthread-safety")
