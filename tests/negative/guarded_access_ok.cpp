// Control TU for the negative-compile ctest: identical shape to
// guarded_access_bad.cpp but with every access correctly locked. Must
// compile cleanly under the thread-safety preset — if it does not, the
// harness flags (include path, -std, warning set) are broken and the
// "bad TU failed to compile" result would be meaningless.
#include "util/mutex.hpp"

namespace {

class Counter {
 public:
  void increment() {
    mlpo::MutexLock lock(mutex_);
    ++value_;
  }

  int read_with_lock() const {
    mlpo::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable mlpo::Mutex mutex_;
  int value_ MLPO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int negative_compile_entry() {
  Counter c;
  c.increment();
  return c.read_with_lock();
}
