// MUST NOT COMPILE under the thread-safety preset.
//
// Reads a MLPO_GUARDED_BY field without holding its mutex. The
// negative-compile ctest (tests/negative/check_negative_compile.cmake)
// feeds this TU to the compiler with -Wthread-safety -Werror and asserts
// the compile *fails* — proving the annotation plumbing is actually armed,
// not silently no-op'd (which is exactly what happens if this tree is ever
// built with the macros stubbed out or the warning flag dropped).
#include "util/mutex.hpp"

namespace {

class Counter {
 public:
  void increment() {
    mlpo::MutexLock lock(mutex_);
    ++value_;
  }

  // BUG (deliberate): unguarded read of value_.
  int read_without_lock() const { return value_; }

 private:
  mutable mlpo::Mutex mutex_;
  int value_ MLPO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int negative_compile_entry() {
  Counter c;
  c.increment();
  return c.read_without_lock();
}
