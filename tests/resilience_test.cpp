// Resilience layer: FailStopTier semantics, failure-schedule parsing and
// injection, scheduler cancellation, and RecoveryDriver repairs.
#include <gtest/gtest.h>

#include <future>

#include "io/io_batch.hpp"
#include "resilience/recovery_driver.hpp"
#include "resilience_test_util.hpp"
#include "runtime/trainer.hpp"
#include "tiers/failstop_tier.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

using test::make_cluster_config;
using test::node_failure_at;
using test::tiny_model;

TEST(FailStopTier, ForwardsUntilKilledThenThrows) {
  SimClock clock(1000.0);
  auto tier = std::make_shared<FailStopTier>(
      "t+failstop", std::make_shared<MemoryTier>("t"), clock);
  const std::vector<u8> data{1, 2, 3};
  tier->write("k", data, 0);
  EXPECT_TRUE(tier->exists("k"));
  EXPECT_FALSE(tier->dead());

  tier->kill();
  EXPECT_TRUE(tier->dead());
  std::vector<u8> out(3);
  EXPECT_THROW(tier->read("k", out, 0), FailStopError);
  EXPECT_THROW(tier->write("k", data, 0), FailStopError);
  EXPECT_THROW((void)tier->exists("k"), FailStopError);
  EXPECT_THROW(tier->peek("k", out), FailStopError);

  tier->revive();
  EXPECT_FALSE(tier->dead());
  tier->read("k", out, 0);
  EXPECT_EQ(out, data);
}

TEST(FailStopTier, ArmedDeadlineLatchesViaSimClock) {
  SimClock clock(10000.0);
  auto tier = std::make_shared<FailStopTier>(
      "t+failstop", std::make_shared<MemoryTier>("t"), clock);
  const std::vector<u8> data{7};
  tier->arm(clock.now() + 0.5);
  tier->write("k", data, 0);  // still alive before the deadline
  clock.sleep_for(1.0);
  EXPECT_TRUE(tier->dead());
  EXPECT_THROW(tier->write("k", data, 0), FailStopError);
  // The latch holds even though arm() was a point-in-time trigger.
  EXPECT_THROW(tier->write("k", data, 0), FailStopError);
}

TEST(FailureSchedule, ParsesFromJsonAndRejectsUnknownKind) {
  const auto schedule = failure_schedule_from_json(json::parse(
      R"([{"kind": "node", "node": 1, "at_iteration": 3},
          {"kind": "path", "node": 0, "path": 1, "at_vtime": 2.5}])"));
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].kind, FailureEvent::Kind::kNode);
  EXPECT_EQ(schedule[0].node, 1u);
  EXPECT_EQ(schedule[0].at_iteration, 3);
  EXPECT_EQ(schedule[1].kind, FailureEvent::Kind::kPath);
  EXPECT_EQ(schedule[1].path, 1u);
  EXPECT_DOUBLE_EQ(schedule[1].at_vtime, 2.5);

  EXPECT_THROW(failure_schedule_from_json(json::parse(
                   R"([{"kind": "gamma-ray", "node": 0, "at_iteration": 1}])")),
               std::invalid_argument);
  // A trigger is mandatory — an event that never fires is a config bug.
  EXPECT_THROW(failure_schedule_from_json(
                   json::parse(R"([{"kind": "node", "node": 0}])")),
               std::invalid_argument);
  // Negative u32 fields must not wrap through the cast.
  EXPECT_THROW(failure_schedule_from_json(json::parse(
                   R"([{"kind": "node", "node": -1, "at_iteration": 1}])")),
               std::invalid_argument);
  EXPECT_THROW(resilience_config_from_json(
                   json::parse(R"({"max_recoveries": -1})")),
               std::invalid_argument);
  EXPECT_THROW(resilience_config_from_json(
                   json::parse(R"({"checkpoint_interval": -2})")),
               std::invalid_argument);
}

TEST(FailureInjector, FiresIterationEventsExactlyOnce) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_cluster_config(2));
  FailureInjector injector({node_failure_at(1, 2)});
  EXPECT_EQ(injector.fire_due(cluster, 0), 0u);
  EXPECT_EQ(injector.fire_due(cluster, 2), 1u);
  EXPECT_TRUE(cluster.node(1).failstop(0)->dead());
  // Rewinds (recovery) must not replay the event.
  EXPECT_EQ(injector.fire_due(cluster, 2), 0u);
  EXPECT_TRUE(injector.exhausted());
}

TEST(FailureInjector, ArmsVtimeEventsOnWrappers) {
  // Scale chosen so the deadline stays comfortably in the real-time future
  // across the arm() call even on slow (sanitized) builds.
  SimClock clock(100.0);
  ClusterSim cluster(clock, make_cluster_config(1));
  FailureEvent event;
  event.kind = FailureEvent::Kind::kPath;
  event.node = 0;
  event.path = 0;
  event.at_vtime = clock.now() + 10.0;  // 100 ms real
  FailureInjector injector({event});
  injector.arm(cluster, clock.now());
  ASSERT_LT(clock.now(), event.at_vtime)
      << "arm() outran the deadline; raise at_vtime";
  clock.sleep_until(event.at_vtime + 1.0);
  EXPECT_TRUE(cluster.node(0).failstop(0)->dead());
  EXPECT_FALSE(cluster.node(0).failstop(1)->dead()) << "PFS path unaffected";
}

TEST(FailureInjector, FutureVtimeEventsSurviveRebuildsPastOnesDoNot) {
  // Modest time scale: the deadline must still be comfortably in the
  // future (in real terms) while two clusters are constructed.
  SimClock clock(100.0);
  FailureEvent event;
  event.kind = FailureEvent::Kind::kNode;
  event.node = 0;
  event.at_vtime = clock.now() + 20.0;  // 200 ms real
  FailureInjector injector({event});
  {
    ClusterSim cluster(clock, make_cluster_config(1));
    injector.arm(cluster, clock.now());
  }
  // The deadline is still in the future when a rebuild (of another node,
  // conceptually) happens: the schedule must carry over.
  ClusterSim rebuilt(clock, make_cluster_config(1));
  injector.arm(rebuilt, clock.now());
  ASSERT_LT(clock.now(), event.at_vtime)
      << "construction outran the deadline; raise at_vtime";
  clock.sleep_until(event.at_vtime + 1.0);
  EXPECT_TRUE(rebuilt.node(0).failstop(0)->dead());

  // The RecoveryDriver's protocol: record the honoured deadline before
  // tearing the latched hardware down. The replacement then does not
  // inherit the already-delivered failure — recovery would otherwise loop
  // on the same event.
  injector.observe_latches(rebuilt, clock.now());
  ClusterSim replacement(clock, make_cluster_config(1));
  injector.arm(replacement, clock.now());
  clock.sleep_for(1.0);
  EXPECT_FALSE(replacement.node(0).failstop(0)->dead());
}

TEST(FailStopTier, ArmKeepsTheEarliestPendingDeadline) {
  // Overlapping schedules (a path event then a whole-node event, or vice
  // versa) must not postpone each other: last-write-wins would let the
  // later deadline clobber the earlier one.
  SimClock clock(100.0);
  auto a = std::make_shared<FailStopTier>(
      "a+failstop", std::make_shared<MemoryTier>("a"), clock);
  a->arm(clock.now() + 50.0);
  a->arm(clock.now() + 5.0);  // earlier wins
  auto b = std::make_shared<FailStopTier>(
      "b+failstop", std::make_shared<MemoryTier>("b"), clock);
  b->arm(clock.now() + 5.0);
  b->arm(clock.now() + 50.0);  // later must NOT postpone
  clock.sleep_for(10.0);
  EXPECT_TRUE(a->dead());
  EXPECT_TRUE(b->dead());
}

TEST(FailureInjector, KillByOtherEventDoesNotRetireFutureVtimeEvent) {
  // An iteration-driven kill of the node must not be mistaken for the
  // honouring of a second, still-future vtime event on the same node: the
  // vtime failure carries over to the replacement hardware.
  SimClock clock(100.0);
  const std::vector<FailureEvent> schedule = {
      node_failure_at(0, 2),
      [&] {
        FailureEvent event;
        event.kind = FailureEvent::Kind::kNode;
        event.node = 0;
        event.at_vtime = clock.now() + 30.0;
        return event;
      }(),
  };
  FailureInjector injector(schedule);
  ClusterSim cluster(clock, make_cluster_config(1));
  injector.arm(cluster, clock.now());
  injector.fire_due(cluster, 2);  // iteration event kills the node
  ASSERT_TRUE(cluster.node(0).failstop(0)->dead());

  // RecoveryDriver protocol: observe, replace, re-arm.
  injector.observe_latches(cluster, clock.now());
  cluster.replace_node(0);
  injector.arm(cluster, clock.now());
  EXPECT_FALSE(cluster.node(0).failstop(0)->dead());
  clock.sleep_until(schedule[1].at_vtime + 1.0);
  EXPECT_TRUE(cluster.node(0).failstop(0)->dead())
      << "the future vtime failure must survive onto the replacement";
}

TEST(FailureInjector, DeadlineElapsingDuringRebuildInjectsLate) {
  // The armed hardware is destroyed (elastic rebuild) before its deadline
  // latches; the deadline then elapses during the rebuild window. The
  // scheduled failure must still be delivered — on the replacement — not
  // silently retired.
  SimClock clock(100.0);
  FailureEvent event;
  event.kind = FailureEvent::Kind::kNode;
  event.node = 0;
  event.at_vtime = clock.now() + 10.0;  // 100 ms real
  FailureInjector injector({event});
  {
    ClusterSim doomed(clock, make_cluster_config(1));
    injector.arm(doomed, clock.now());
    // Pre-teardown observation: nothing latched yet.
    injector.observe_latches(doomed, clock.now());
    ASSERT_LT(clock.now(), event.at_vtime)
        << "construction outran the deadline; raise at_vtime";
  }
  clock.sleep_until(event.at_vtime + 1.0);  // deadline passes hardware-less
  ClusterSim replacement(clock, make_cluster_config(1));
  injector.arm(replacement, clock.now());
  EXPECT_TRUE(replacement.node(0).failstop(0)->dead())
      << "overdue failure must inject late, not evaporate";
}

// Tier whose reads block until the test opens a gate — makes "requests are
// still queued behind a dispatched one" deterministic.
class GateTier : public StorageTier {
 public:
  explicit GateTier(std::string name)
      : name_(std::move(name)), backend_(name_ + "/backend") {}

  std::promise<void> gate;
  std::promise<void> first_read_started;

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes) override {
    backend_.write(key, data, sim_bytes);
  }
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes) override {
    bool expected = false;
    if (first_.compare_exchange_strong(expected, true)) {
      first_read_started.set_value();
      gate.get_future().wait();
    }
    backend_.read(key, out, sim_bytes);
  }
  bool exists(const std::string& key) const override {
    return backend_.exists(key);
  }
  u64 object_size(const std::string& key) const override {
    return backend_.object_size(key);
  }
  void erase(const std::string& key) override { backend_.erase(key); }
  f64 read_bandwidth() const override { return 1e9; }
  f64 write_bandwidth() const override { return 1e9; }

 private:
  std::string name_;
  MemoryTier backend_;
  std::atomic<bool> first_{false};
};

TEST(IoSchedulerCancellation, QueuedRequestsDropWithIoCancelled) {
  SimClock clock(1000.0);
  VirtualTier vtier;
  auto gate = std::make_shared<GateTier>("gate");
  vtier.add_path(gate);
  // Coalescing off: the waiting requests must sit in the queue (not ride
  // the first dispatch batch) for cancellation to have a target.
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler io(clock, &vtier, nullptr, nullptr, cfg);

  const std::vector<u8> payload(64, 0xAB);
  for (int i = 0; i < 5; ++i) {
    vtier.write_to(0, "k" + std::to_string(i), payload, 0);
  }

  std::vector<u8> buf(64);
  std::vector<std::future<void>> reads;
  for (int i = 0; i < 5; ++i) {
    IoRequest req = IoRequest::tier_read("k" + std::to_string(i), 64,
                                         IoPriority::kDemandPrefetch, 0);
    req.dst = std::span<u8>(buf);
    reads.push_back(io.submit(std::move(req)));
  }
  // The first read is dispatched (blocked on the gate); the other four are
  // queued behind it on the same read channel.
  gate->first_read_started.get_future().wait();
  EXPECT_EQ(io.cancel_all_queued(), 4u);
  EXPECT_EQ(io.cancel_all_queued(), 0u) << "second sweep finds none new";
  gate->gate.set_value();

  EXPECT_NO_THROW(reads[0].get()) << "dispatched request runs to completion";
  for (int i = 1; i < 5; ++i) {
    EXPECT_THROW(reads[i].get(), IoCancelled) << i;
  }
  EXPECT_EQ(io.stats().priority[0].cancelled, 4u);
}

TEST(IoSchedulerCancellation, PriorityFilterLeavesOtherClassesQueued) {
  SimClock clock(1000.0);
  VirtualTier vtier;
  auto gate = std::make_shared<GateTier>("gate");
  vtier.add_path(gate);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler io(clock, &vtier, nullptr, nullptr, cfg);

  const std::vector<u8> payload(64, 1);
  for (int i = 0; i < 3; ++i) {
    vtier.write_to(0, "k" + std::to_string(i), payload, 0);
  }
  std::vector<u8> buf(64);
  std::vector<std::future<void>> reads;
  const IoPriority priorities[3] = {IoPriority::kDemandPrefetch,
                                    IoPriority::kDemandPrefetch,
                                    IoPriority::kCheckpoint};
  for (int i = 0; i < 3; ++i) {
    IoRequest req =
        IoRequest::tier_read("k" + std::to_string(i), 64, priorities[i], 0);
    req.dst = std::span<u8>(buf);
    reads.push_back(io.submit(std::move(req)));
  }
  gate->first_read_started.get_future().wait();
  // One demand read is in flight; one demand + one checkpoint are queued.
  EXPECT_EQ(io.cancel_queued(IoPriority::kDemandPrefetch), 1u);
  gate->gate.set_value();
  EXPECT_NO_THROW(reads[0].get());
  EXPECT_THROW(reads[1].get(), IoCancelled);
  EXPECT_NO_THROW(reads[2].get()) << "checkpoint-class read survives";
}

TEST(IoBatchFailStop, MultiFailureBatchPreservesFailStopType) {
  // A whole-node loss routinely fails every operation of a batch at once;
  // the aggregate must keep the FailStopError type or the cluster layer
  // would classify the node loss as a genuine bug and abort instead of
  // recovering.
  IoBatch batch;
  for (int i = 0; i < 2; ++i) {
    std::promise<void> p;
    p.set_exception(std::make_exception_ptr(FailStopError("dead")));
    batch.add(p.get_future());
  }
  EXPECT_THROW(batch.wait_all(), FailStopError);

  // Mixed storms too: any fail-stop outranks the aggregation.
  IoBatch mixed;
  std::promise<void> a, b;
  a.set_exception(std::make_exception_ptr(std::runtime_error("other")));
  b.set_exception(std::make_exception_ptr(FailStopError("dead")));
  mixed.add(a.get_future());
  mixed.add(b.get_future());
  EXPECT_THROW(mixed.wait_all(), FailStopError);
}

TEST(ClusterSim, FailStoppedNodeSurfacesAsNodeFailure) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_cluster_config(2));
  cluster.initialize();
  cluster.fail_node(1);
  try {
    cluster.run_iteration(0);
    FAIL() << "expected NodeFailure";
  } catch (const NodeFailure& failure) {
    ASSERT_EQ(failure.nodes().size(), 1u);
    EXPECT_EQ(failure.nodes()[0], 1u);
  }
}

TEST(ClusterSim, ReplaceNodeBringsFreshAliveTiers) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_cluster_config(2));
  cluster.initialize();
  cluster.fail_node(1);
  EXPECT_TRUE(cluster.node(1).failstop(0)->dead());
  cluster.replace_node(1);
  EXPECT_FALSE(cluster.node(1).failstop(0)->dead());
  cluster.node(1).initialize();
  const auto report = cluster.run_iteration(0);
  EXPECT_EQ(report.params_updated, tiny_model().parameters());
}

TEST(ClusterSim, FailNodeWithoutWrappersIsLoud) {
  SimClock clock(2000.0);
  ClusterConfig cfg = make_cluster_config(1);
  cfg.node.wrap_failstop = false;
  ClusterSim cluster(clock, cfg);
  EXPECT_THROW(cluster.fail_node(0), std::logic_error);
}

TEST(RecoveryDriver, SurvivesInjectedNodeLossAndAccountsForIt) {
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryOptions opts;
  opts.checkpoint_interval = 2;
  RecoveryDriver driver(clock, make_cluster_config(2), store, opts,
                        FailureInjector({node_failure_at(1, 3)}));
  driver.initialize();
  const auto reports = driver.run(5, 0);

  ASSERT_EQ(reports.size(), 5u);
  const auto& stats = driver.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.recovery_seconds, 0.0);
  EXPECT_EQ(stats.lost_work_iterations, 1u) << "failed at 3, snapshot at 2";
  EXPECT_GT(stats.restored_subgroups, 0u);
  EXPECT_GE(stats.checkpoints_taken, 3u);

  // The recovery accounting lands on the first re-run iteration's report.
  u32 total_recoveries = 0;
  f64 total_recovery_seconds = 0;
  for (const auto& r : reports) {
    total_recoveries += r.recoveries;
    total_recovery_seconds += r.recovery_seconds;
    EXPECT_EQ(r.params_updated, tiny_model().parameters()) << r.iteration;
  }
  EXPECT_EQ(total_recoveries, 1u);
  EXPECT_DOUBLE_EQ(total_recovery_seconds, stats.recovery_seconds);
  EXPECT_EQ(reports[2].recoveries, 1u)
      << "rolled back to iteration 2; its re-run carries the charge";
}

TEST(RecoveryDriver, BackToBackFailuresInOneCheckpointWindowKeepAccounting) {
  // Two failures inside the same checkpoint window: the second rollback
  // discards a report that already carried the first recovery's counters,
  // which must be reclaimed — the report stream always sums to the stats.
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryOptions opts;
  opts.checkpoint_interval = 4;
  RecoveryDriver driver(
      clock, make_cluster_config(2), store, opts,
      FailureInjector({node_failure_at(1, 5), node_failure_at(0, 7)}));
  driver.initialize();
  const auto reports = driver.run(8, 0);

  ASSERT_EQ(reports.size(), 8u);
  EXPECT_EQ(driver.stats().recoveries, 2u);
  u32 total_recoveries = 0;
  f64 total_recovery_seconds = 0;
  u32 total_lost = 0;
  for (const auto& r : reports) {
    total_recoveries += r.recoveries;
    total_recovery_seconds += r.recovery_seconds;
    total_lost += r.lost_work_iterations;
  }
  EXPECT_EQ(total_recoveries, driver.stats().recoveries);
  EXPECT_DOUBLE_EQ(total_recovery_seconds, driver.stats().recovery_seconds);
  EXPECT_EQ(total_lost, driver.stats().lost_work_iterations);
  EXPECT_EQ(reports[4].recoveries, 2u)
      << "both recoveries rolled back to the iteration-4 snapshot";
}

TEST(RecoveryDriver, ClusterAccessorIsValidBeforeInitialize) {
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryDriver driver(clock, make_cluster_config(2), store);
  EXPECT_EQ(driver.cluster().node_count(), 2u);
}

TEST(RecoveryDriver, WarmupRollsRecoveryCountersOntoFirstKeptReport) {
  // Warmup excludes timings from averages; it must not erase discrete
  // recovery events — the returned stream still sums to RecoveryStats.
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryDriver driver(clock, make_cluster_config(2), store, {},
                        FailureInjector({node_failure_at(1, 0)}));
  driver.initialize();
  const auto reports = driver.run(4, /*warmup=*/1);
  ASSERT_EQ(reports.size(), 3u);
  u32 total = 0;
  for (const auto& r : reports) total += r.recoveries;
  EXPECT_EQ(total, driver.stats().recoveries);
  EXPECT_EQ(driver.stats().recoveries, 1u);
}

TEST(RecoveryDriver, SecondRunRebaselinesInsteadOfRewindingIntoTheFirst) {
  // Each run() numbers iterations from 0; a failure during a second run
  // must rewind to that run's own snapshot, not to the previous run's
  // checkpoint cursor (which would skip iterations entirely).
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryDriver driver(clock, make_cluster_config(2), store);
  driver.initialize();
  ASSERT_EQ(driver.run(2, 0).size(), 2u);

  driver.cluster().fail_node(0);
  const auto reports = driver.run(3, 0);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(driver.stats().recoveries, 1u);
  EXPECT_EQ(reports[0].recoveries, 1u)
      << "the failure hit the second run's iteration 0 and was repaired "
         "from its own baseline snapshot";
}

TEST(RecoveryDriver, ElasticRestartWithoutElasticShardingIsRejected) {
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryOptions opts;
  opts.restart_nodes = 1;
  EXPECT_THROW(RecoveryDriver(clock, make_cluster_config(2, /*elastic=*/false),
                              store, opts),
               std::invalid_argument);
}

TEST(RecoveryDriver, EventTargetingNonexistentNodeIsRejected) {
  // A typo'd node index would otherwise be warn-skipped at fire time and
  // the experiment would silently inject nothing.
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  EXPECT_THROW(RecoveryDriver(clock, make_cluster_config(2), store, {},
                              FailureInjector({node_failure_at(5, 3)})),
               std::invalid_argument);
}

TEST(RecoveryDriver, GivesUpAfterMaxRecoveries) {
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryOptions opts;
  opts.max_recoveries = 1;
  RecoveryDriver driver(
      clock, make_cluster_config(2), store, opts,
      FailureInjector({node_failure_at(1, 1), node_failure_at(0, 2)}));
  driver.initialize();
  EXPECT_THROW(driver.run(4, 0), NodeFailure);
  EXPECT_EQ(driver.stats().recoveries, 1u);
  EXPECT_EQ(driver.stats().failures, 2u);
}

TEST(ResilienceConfig, ParsesFromTrainerJson) {
  const TrainerConfig cfg = trainer_config_from_json(std::string(R"({
    "model": "40B", "nodes": 2,
    "resilience": {
      "enabled": true,
      "checkpoint_interval": 2,
      "restart_nodes": 1,
      "elastic_sharding": true,
      "max_recoveries": 4,
      "failures": [{"kind": "node", "node": 1, "at_iteration": 3}]
    }
  })"));
  EXPECT_TRUE(cfg.resilience.enabled);
  EXPECT_EQ(cfg.resilience.checkpoint_interval, 2u);
  EXPECT_EQ(cfg.resilience.restart_nodes, 1u);
  EXPECT_TRUE(cfg.resilience.elastic_sharding);
  EXPECT_EQ(cfg.resilience.max_recoveries, 4u);
  ASSERT_EQ(cfg.resilience.failures.size(), 1u);
  EXPECT_EQ(cfg.resilience.failures[0].node, 1u);

  // Re-sharding restarts demand elastic sharding at parse time...
  EXPECT_THROW(trainer_config_from_json(std::string(
                   R"({"nodes": 2, "resilience": {"restart_nodes": 1}})")),
               std::invalid_argument);
  // ...but a disabled section is inert (the A/B-baseline toggle).
  const TrainerConfig off = trainer_config_from_json(std::string(
      R"({"nodes": 2, "resilience": {"enabled": false, "restart_nodes": 1}})"));
  EXPECT_FALSE(off.resilience.enabled);
}

}  // namespace
}  // namespace mlpo
