// IoScheduler: priority ordering, per-channel backpressure, cancellation
// of queued requests, small-transfer coalescing, completion callbacks, and
// the strict-FIFO baseline mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "tiers/failstop_tier.hpp"
#include "tiers/memory_tier.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {
namespace {

using namespace std::chrono_literals;

// A request whose work parks its dispatch thread until `gate` is released.
// Oversized so the coalescer never merges it with followers. Pass `tier`
// to park that tier's dedicated external channel; `entered` (if given)
// resolves once the blocker is executing.
IoRequest blocker(std::shared_future<void> gate,
                  std::promise<void>* entered = nullptr,
                  StorageTier* tier = nullptr) {
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.tier = tier;
  req.key = "blocker";
  req.sim_bytes = 64 * MiB;
  req.priority = IoPriority::kDemandPrefetch;
  req.work = [gate, entered](IoChannel&) -> u64 {
    if (entered != nullptr) entered->set_value();
    gate.wait();
    return 0;
  };
  return req;
}

// Spin until the queue has dispatched everything it holds (the blocker is
// *executing*, not queued, once this returns).
void wait_until_drained_into_dispatch(const IoScheduler& sched,
                                      std::size_t queue) {
  for (int i = 0; i < 2000 && sched.queued(queue) > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(sched.queued(queue), 0u);
}

IoRequest tagged(IoPriority priority, std::vector<IoPriority>* order,
                 std::mutex* mu) {
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.key = io_priority_name(priority);
  req.sim_bytes = 8 * MiB;  // above any coalescing threshold
  req.priority = priority;
  req.work = [priority, order, mu](IoChannel&) -> u64 {
    std::lock_guard lk(*mu);
    order->push_back(priority);
    return 0;
  };
  return req;
}

TEST(IoScheduler, DispatchesByPriorityClassNotArrivalOrder) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::mutex mu;
  std::vector<IoPriority> order;
  IoBatch batch;
  // Submitted weakest-first; must execute strongest-first.
  batch.add(sched.submit(tagged(IoPriority::kCheckpoint, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kLazyFlush, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kGradDeposit, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kDemandPrefetch, &order, &mu)));

  go.set_value();
  f0.get();
  batch.wait_all();

  const std::vector<IoPriority> expect = {
      IoPriority::kDemandPrefetch, IoPriority::kGradDeposit,
      IoPriority::kLazyFlush, IoPriority::kCheckpoint};
  EXPECT_EQ(order, expect);
}

TEST(IoScheduler, StrictFifoDispatchesInArrivalOrder) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  cfg.strict_fifo = true;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::mutex mu;
  std::vector<IoPriority> order;
  IoBatch batch;
  batch.add(sched.submit(tagged(IoPriority::kCheckpoint, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kLazyFlush, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kDemandPrefetch, &order, &mu)));

  go.set_value();
  f0.get();
  batch.wait_all();

  const std::vector<IoPriority> expect = {IoPriority::kCheckpoint,
                                          IoPriority::kLazyFlush,
                                          IoPriority::kDemandPrefetch};
  EXPECT_EQ(order, expect);
}

TEST(IoScheduler, SubmitBlocksWhenChannelQueueIsFull) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.queue_depth = 4;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::atomic<int> executed{0};
  const auto noop = [&executed] {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.key = "noop";
    req.sim_bytes = 8 * MiB;
    req.priority = IoPriority::kLazyFlush;
    req.work = [&executed](IoChannel&) -> u64 {
      executed.fetch_add(1);
      return 0;
    };
    return req;
  };

  IoBatch batch;
  for (int i = 0; i < 4; ++i) batch.add(sched.submit(noop()));
  ASSERT_EQ(sched.queued(sched.external_queue()), 4u);

  // The 5th submission must block until the dispatcher frees a slot.
  std::atomic<bool> fifth_submitted{false};
  std::thread submitter([&] {
    batch.add(sched.submit(noop()));
    fifth_submitted.store(true);
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(fifth_submitted.load())
      << "submit returned despite a full queue";

  go.set_value();
  f0.get();
  submitter.join();
  EXPECT_TRUE(fifth_submitted.load());
  batch.wait_all();
  EXPECT_EQ(executed.load(), 5);
}

TEST(IoScheduler, CancelledQueuedFlushesAreDroppedAtDispatch) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::atomic<int> executed{0};
  std::vector<std::future<void>> cancelled_futs;
  std::vector<CancellationToken> tokens;
  for (int i = 0; i < 3; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.key = "flush" + std::to_string(i);
    req.sim_bytes = 8 * MiB;
    req.priority = IoPriority::kLazyFlush;
    req.work = [&executed](IoChannel&) -> u64 {
      executed.fetch_add(1);
      return 0;
    };
    tokens.push_back(req.token);
    cancelled_futs.push_back(sched.submit(std::move(req)));
  }
  // One survivor behind the cancelled ones proves the queue keeps flowing.
  std::atomic<bool> survivor_ran{false};
  IoRequest survivor;
  survivor.op = IoOp::kWrite;
  survivor.target = IoTarget::kExternal;
  survivor.key = "survivor";
  survivor.sim_bytes = 8 * MiB;
  survivor.priority = IoPriority::kLazyFlush;
  survivor.work = [&survivor_ran](IoChannel&) -> u64 {
    survivor_ran.store(true);
    return 0;
  };
  auto survivor_fut = sched.submit(std::move(survivor));

  for (auto& t : tokens) t.cancel();
  go.set_value();
  f0.get();

  for (auto& fut : cancelled_futs) {
    EXPECT_THROW(fut.get(), IoCancelled);
  }
  survivor_fut.get();
  EXPECT_EQ(executed.load(), 0) << "cancelled work must never run";
  EXPECT_TRUE(survivor_ran.load());

  const auto stats = sched.stats();
  const auto& flush =
      stats.priority[static_cast<std::size_t>(IoPriority::kLazyFlush)];
  EXPECT_EQ(flush.cancelled, 3u);
  EXPECT_EQ(flush.completed, 1u);
}

TEST(IoScheduler, SmallTransfersCoalesceUnderOneDispatch) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 64 * KiB;
  cfg.coalesce_batch = 8;
  IoScheduler sched(clock, cfg);
  MemoryTier store("store");

  // Park the store's dedicated external channel (requests naming a tier
  // dispatch on a per-tier channel, not the default external queue).
  std::promise<void> go;
  std::promise<void> entered;
  auto f0 = sched.submit(blocker(go.get_future().share(), &entered, &store));
  entered.get_future().wait();

  const std::vector<u8> payload(128, 0xAB);
  IoBatch batch;
  for (int i = 0; i < 4; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.tier = &store;
    req.key = "small" + std::to_string(i);
    req.src = payload;
    req.sim_bytes = 4 * KiB;
    req.priority = IoPriority::kCheckpoint;
    batch.add(sched.submit(std::move(req)));
  }
  go.set_value();
  f0.get();
  batch.wait_all();

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(store.exists("small" + std::to_string(i))) << i;
  }
  const auto stats = sched.stats();
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 4u);
}

TEST(IoScheduler, TierRoundtripWithAutoPathReadRouting) {
  SimClock clock(1.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  vtier.add_path(std::make_shared<MemoryTier>("m1"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  const std::vector<u8> data = {1, 2, 3, 4, 5};
  IoRequest wr;
  wr.op = IoOp::kWrite;
  wr.key = "obj";
  wr.src = data;
  wr.path = 1;  // placement decision rides the path hint
  wr.priority = IoPriority::kLazyFlush;
  sched.submit(std::move(wr)).get();
  EXPECT_EQ(vtier.locate("obj"), 1u);

  std::vector<u8> out(5);
  IoRequest rd;
  rd.op = IoOp::kRead;
  rd.key = "obj";
  rd.dst = out;  // path defaults to kAutoPath: routed by location map
  rd.priority = IoPriority::kDemandPrefetch;
  sched.submit(std::move(rd)).get();
  EXPECT_EQ(out, data);
}

TEST(IoScheduler, UnknownKeyReadFailsThroughFuture) {
  SimClock clock(1.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  std::vector<u8> out(4);
  IoRequest rd;
  rd.op = IoOp::kRead;
  rd.key = "missing";
  rd.dst = out;
  auto fut = sched.submit(std::move(rd));
  EXPECT_THROW(fut.get(), std::out_of_range);
}

TEST(IoScheduler, TierWriteWithoutPathHintIsRejected) {
  SimClock clock(1.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  IoRequest wr;
  wr.op = IoOp::kWrite;
  wr.key = "obj";
  EXPECT_THROW(sched.submit(std::move(wr)), std::invalid_argument);
}

TEST(IoScheduler, CompletionCallbackFeedsObservedBandwidth) {
  SimClock clock(10000.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  const std::vector<u8> data(256, 7);
  IoResult seen;
  std::atomic<bool> called{false};
  IoRequest wr;
  wr.op = IoOp::kWrite;
  wr.key = "obj";
  wr.src = data;
  wr.sim_bytes = 2 * MiB;
  wr.path = 0;
  wr.priority = IoPriority::kLazyFlush;
  wr.on_complete = [&](const IoResult& r) {
    seen = r;
    called.store(true);
  };
  sched.submit(std::move(wr)).get();

  ASSERT_TRUE(called.load());
  EXPECT_EQ(seen.priority, IoPriority::kLazyFlush);
  EXPECT_EQ(seen.sim_bytes, 2u * MiB);
  EXPECT_GE(seen.queue_wait_seconds, 0.0);
  EXPECT_GE(seen.service_seconds, 0.0);

  const auto stats = sched.stats();
  const auto& flush =
      stats.priority[static_cast<std::size_t>(IoPriority::kLazyFlush)];
  EXPECT_EQ(flush.submitted, 1u);
  EXPECT_EQ(flush.completed, 1u);
  EXPECT_EQ(flush.sim_bytes, 2u * MiB);
}

TEST(IoScheduler, DrainWaitsForEverySubmittedRequest) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  MemoryTier store("store");

  std::atomic<int> done{0};
  IoBatch batch;
  for (int i = 0; i < 32; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.key = "k" + std::to_string(i);
    req.sim_bytes = 8 * MiB;
    req.priority = IoPriority::kCheckpoint;
    req.work = [&done](IoChannel&) -> u64 {
      std::this_thread::sleep_for(100us);
      done.fetch_add(1);
      return 0;
    };
    batch.add(sched.submit(std::move(req)));
  }
  sched.drain();
  EXPECT_EQ(done.load(), 32);
  batch.wait_all();
}

TEST(IoScheduler, DistinctExternalTiersDispatchConcurrently) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  MemoryTier a("tier-a");
  MemoryTier b("tier-b");

  std::promise<void> go;
  std::promise<void> entered;
  auto fa = sched.submit(blocker(go.get_future().share(), &entered, &a));
  entered.get_future().wait();

  // Tier b gets its own channel: this write completes while tier a's
  // channel is parked (it would hang here if external tiers shared one
  // dispatch thread).
  const std::vector<u8> data(16, 1);
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.tier = &b;
  req.key = "k";
  req.src = data;
  req.priority = IoPriority::kLazyFlush;
  sched.submit(std::move(req)).get();
  EXPECT_TRUE(b.exists("k"));

  go.set_value();
  fa.get();
}

// IoBatch semantics over scheduler-submitted work (absorbed from the
// retired AioEngine suite — the batch contract outlived the flat-FIFO
// engine it was written against).

namespace {
IoRequest task(std::function<void()> fn) {
  static std::atomic<int> counter{0};
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.key = "task" + std::to_string(counter.fetch_add(1));
  req.sim_bytes = 8 * MiB;
  req.priority = IoPriority::kCheckpoint;
  req.work = [fn = std::move(fn)](IoChannel&) -> u64 {
    fn();
    return 0;
  };
  return req;
}
}  // namespace

TEST(IoBatch, WaitAllPropagatesFirstError) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoBatch batch;
  std::atomic<int> ok{0};
  batch.add(sched.submit(task([&ok] { ok.fetch_add(1); })));
  batch.add(sched.submit(task([] { throw std::runtime_error("io failed"); })));
  batch.add(sched.submit(task([&ok] { ok.fetch_add(1); })));
  EXPECT_THROW(batch.wait_all(), std::runtime_error);
  // All operations settled despite the failure.
  EXPECT_EQ(ok.load(), 2);
  // Batch is reusable after wait_all.
  batch.add(sched.submit(task([&ok] { ok.fetch_add(1); })));
  batch.wait_all();
  EXPECT_EQ(ok.load(), 3);
}

TEST(IoBatch, WaitAllAggregatesEveryError) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoBatch batch;
  batch.add(sched.submit(task([] { throw std::runtime_error("path0 down"); })));
  batch.add(sched.submit(task([] { throw std::runtime_error("path1 down"); })));
  batch.add(sched.submit(task([] {})));
  try {
    batch.wait_all();
    FAIL() << "expected an aggregated error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 operations failed"), std::string::npos) << what;
    EXPECT_NE(what.find("path0 down"), std::string::npos) << what;
    EXPECT_NE(what.find("path1 down"), std::string::npos) << what;
  }
}

TEST(IoBatch, SingleFailurePreservesExceptionType) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoBatch batch;
  batch.add(sched.submit(task([] { throw std::out_of_range("missing key"); })));
  EXPECT_THROW(batch.wait_all(), std::out_of_range);
}

TEST(IoBatch, EmptyBatchIsFine) {
  IoBatch batch;
  batch.wait_all();
  EXPECT_EQ(batch.size(), 0u);
}

TEST(IoScheduler, LinkRequestsCompleteWithoutLimiter) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoRequest d2h;
  d2h.target = IoTarget::kD2HLink;
  d2h.key = "grad";
  d2h.sim_bytes = 1 * MiB;
  d2h.priority = IoPriority::kGradDeposit;
  sched.submit(std::move(d2h)).get();

  IoRequest h2d;
  h2d.target = IoTarget::kH2DLink;
  h2d.key = "params";
  h2d.sim_bytes = 1 * MiB;
  h2d.priority = IoPriority::kDemandPrefetch;
  sched.submit(std::move(h2d)).get();
  SUCCEED();
}

// --- Tenancy: weighted fair share, scoped cancellation, fail-stop --------

// A tenant-tagged external request that records its owner into `order` at
// execution time (dispatch order is observable because each channel has
// exactly one dispatch thread).
IoRequest tenant_req(u32 tenant, IoPriority priority,
                     std::vector<u32>* order = nullptr,
                     std::mutex* mu = nullptr, u64 bytes = 8 * MiB) {
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.key = "tenant-" + std::to_string(tenant);
  req.sim_bytes = bytes;
  req.priority = priority;
  req.tenant = tenant;
  req.work = [tenant, order, mu, bytes](IoChannel&) -> u64 {
    if (order != nullptr) {
      std::lock_guard lk(*mu);
      order->push_back(tenant);
    }
    return bytes;  // work reports the bytes it moved into the stats
  };
  return req;
}

TEST(IoSchedulerTenancy, WeightedFairShareOnSaturatedChannel) {
  // Weight 3 vs weight 1 on one saturated channel: the heavy tenant must
  // get ~3/4 of the early dispatches, and the light tenant must not starve.
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  cfg.tenant_weights = {{1, 1}, {2, 3}};
  cfg.fair_share_quantum_bytes = 8 * MiB;  // one request per unit weight
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::mutex mu;
  std::vector<u32> order;
  IoBatch batch;
  for (int i = 0; i < 8; ++i) {
    batch.add(sched.submit(
        tenant_req(1, IoPriority::kLazyFlush, &order, &mu)));
    batch.add(sched.submit(
        tenant_req(2, IoPriority::kLazyFlush, &order, &mu)));
  }
  go.set_value();
  f0.get();
  batch.wait_all();

  ASSERT_EQ(order.size(), 16u);
  const auto heavy_in_first_8 = static_cast<std::size_t>(
      std::count(order.begin(), order.begin() + 8, 2u));
  // Exact DRR phase depends on the cursor, but with quantum == request
  // size the first 8 dispatches must split ~6:2 in the heavy tenant's
  // favour while still serving the light tenant at least once.
  EXPECT_GE(heavy_in_first_8, 5u) << "heavy tenant under-served";
  EXPECT_LE(heavy_in_first_8, 7u) << "light tenant starved";

  // Per-tenant accounting saw every byte.
  const auto flush = static_cast<std::size_t>(IoPriority::kLazyFlush);
  EXPECT_EQ(sched.tenant_stats(1).priority[flush].completed, 8u);
  EXPECT_EQ(sched.tenant_stats(2).priority[flush].completed, 8u);
  EXPECT_EQ(sched.tenant_stats(2).priority[flush].sim_bytes, 8u * 8 * MiB);
}

TEST(IoSchedulerTenancy, LightTenantUrgencyServedWithinItsShare) {
  // Fairness is between tenants, urgency within one: a light tenant's
  // demand prefetch lands on the light tenant's first DRR visit, ahead of
  // most of a heavy tenant's flush backlog — not behind all of it.
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  cfg.tenant_weights = {{1, 1}, {2, 4}};
  cfg.fair_share_quantum_bytes = 8 * MiB;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::mutex mu;
  std::vector<u32> order;
  IoBatch batch;
  for (int i = 0; i < 12; ++i) {
    batch.add(sched.submit(
        tenant_req(2, IoPriority::kLazyFlush, &order, &mu)));
  }
  batch.add(sched.submit(
      tenant_req(1, IoPriority::kDemandPrefetch, &order, &mu)));
  go.set_value();
  f0.get();
  batch.wait_all();

  const auto it = std::find(order.begin(), order.end(), 1u);
  ASSERT_NE(it, order.end());
  const auto position = static_cast<std::size_t>(it - order.begin());
  EXPECT_LT(position, 6u)
      << "light tenant's urgent request waited out the heavy backlog";
}

TEST(IoSchedulerTenancy, CancelTenantQueuedScopesToOneTenant) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::vector<std::future<void>> doomed;
  std::vector<std::future<void>> spared;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(sched.submit(tenant_req(1, IoPriority::kLazyFlush)));
    spared.push_back(sched.submit(tenant_req(2, IoPriority::kLazyFlush)));
  }
  EXPECT_EQ(sched.cancel_tenant_queued(1), 3u);
  go.set_value();
  f0.get();

  for (auto& f : doomed) EXPECT_THROW(f.get(), IoCancelled);
  for (auto& f : spared) EXPECT_NO_THROW(f.get());
  const auto flush = static_cast<std::size_t>(IoPriority::kLazyFlush);
  EXPECT_EQ(sched.tenant_stats(1).priority[flush].cancelled, 3u);
  EXPECT_EQ(sched.tenant_stats(2).priority[flush].cancelled, 0u);
  EXPECT_EQ(sched.tenant_stats(2).priority[flush].completed, 3u);
}

TEST(IoSchedulerTenancy, CancelByPriorityAndTenantIsDoublyScoped) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  auto t1_demand = sched.submit(tenant_req(1, IoPriority::kDemandPrefetch));
  auto t1_flush = sched.submit(tenant_req(1, IoPriority::kLazyFlush));
  auto t2_demand = sched.submit(tenant_req(2, IoPriority::kDemandPrefetch));

  EXPECT_EQ(sched.cancel_queued(IoPriority::kDemandPrefetch, 1), 1u);
  go.set_value();
  f0.get();

  EXPECT_THROW(t1_demand.get(), IoCancelled);
  EXPECT_NO_THROW(t1_flush.get());
  EXPECT_NO_THROW(t2_demand.get());
}

TEST(IoSchedulerTenancy, FailTenantSettlesQueuedAndRejectsNewSubmits) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  auto dead = sched.submit(tenant_req(1, IoPriority::kLazyFlush));
  auto live = sched.submit(tenant_req(2, IoPriority::kLazyFlush));
  sched.fail_tenant(1);
  EXPECT_TRUE(sched.tenant_failed(1));
  EXPECT_FALSE(sched.tenant_failed(2));
  go.set_value();
  f0.get();

  EXPECT_THROW(dead.get(), FailStopError);
  EXPECT_NO_THROW(live.get());

  // Submissions while latched dead settle with the same error; the
  // neighbour keeps flowing the whole time.
  EXPECT_THROW(sched.submit(tenant_req(1, IoPriority::kLazyFlush)).get(),
               FailStopError);
  EXPECT_NO_THROW(sched.submit(tenant_req(2, IoPriority::kLazyFlush)).get());

  // Replacement hardware: revive restores service.
  sched.revive_tenant(1);
  EXPECT_FALSE(sched.tenant_failed(1));
  EXPECT_NO_THROW(sched.submit(tenant_req(1, IoPriority::kLazyFlush)).get());
}

TEST(IoSchedulerTenancy, ArmedDeadlineLatchesOnNextOperation) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  EXPECT_FALSE(sched.tenant_failed(1));
  // Deadline already reached: the next query/submission latches the
  // tenant dead, mirroring FailStopTier's next-operation latch.
  sched.arm_tenant_fail(1, clock.now());
  EXPECT_TRUE(sched.tenant_failed(1));
  EXPECT_THROW(sched.submit(tenant_req(1, IoPriority::kLazyFlush)).get(),
               FailStopError);
  // A deadline far in the virtual future does not fire.
  sched.arm_tenant_fail(2, clock.now() + 1e9);
  EXPECT_FALSE(sched.tenant_failed(2));
  EXPECT_NO_THROW(sched.submit(tenant_req(2, IoPriority::kLazyFlush)).get());
}

TEST(IoSchedulerTenancy, DrainTenantIgnoresNeighbourBacklog) {
  // Tenant 2 parks the external channel indefinitely; tenant 1's link
  // traffic completes and drain_tenant(1) returns without waiting for the
  // neighbour — one job's teardown cannot livelock behind another's I/O.
  SimClock clock(1.0);
  IoScheduler sched(clock);

  std::promise<void> go;
  std::promise<void> entered;
  IoRequest park = blocker(go.get_future().share(), &entered);
  park.tenant = 2;
  auto blocked = sched.submit(std::move(park));
  entered.get_future().wait();

  IoRequest link;
  link.op = IoOp::kWrite;
  link.target = IoTarget::kD2HLink;
  link.key = "t1-grad";
  link.sim_bytes = 1 * MiB;
  link.priority = IoPriority::kGradDeposit;
  link.tenant = 1;
  auto f1 = sched.submit(std::move(link));
  sched.drain_tenant(1);
  EXPECT_NO_THROW(f1.get());
  // The neighbour is still in flight.
  EXPECT_EQ(blocked.wait_for(0ms), std::future_status::timeout);
  go.set_value();
  sched.drain();
}

TEST(IoSchedulerTenancy, TenantZeroStatsMirrorGlobalWhenAlone) {
  // Stats are kept globally and per tenant through the same funnel: a
  // single-tenant scheduler's tenant-0 slice must equal its global view.
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);
  IoBatch batch;
  batch.add(sched.submit(tenant_req(0, IoPriority::kDemandPrefetch)));
  batch.add(sched.submit(tenant_req(0, IoPriority::kLazyFlush)));
  batch.add(sched.submit(tenant_req(0, IoPriority::kLazyFlush)));
  batch.wait_all();
  sched.drain();

  const auto global = sched.stats();
  const auto slice = sched.tenant_stats(0);
  for (std::size_t p = 0; p < kIoPriorityCount; ++p) {
    EXPECT_EQ(global.priority[p].submitted, slice.priority[p].submitted);
    EXPECT_EQ(global.priority[p].completed, slice.priority[p].completed);
    EXPECT_EQ(global.priority[p].sim_bytes, slice.priority[p].sim_bytes);
    EXPECT_EQ(global.priority[p].cancelled, slice.priority[p].cancelled);
  }
  EXPECT_EQ(sched.tenant_stats(7).priority[0].submitted, 0u);
}

}  // namespace
}  // namespace mlpo
