// IoScheduler: priority ordering, per-channel backpressure, cancellation
// of queued requests, small-transfer coalescing, completion callbacks, and
// the strict-FIFO baseline mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "tiers/memory_tier.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {
namespace {

using namespace std::chrono_literals;

// A request whose work parks its dispatch thread until `gate` is released.
// Oversized so the coalescer never merges it with followers. Pass `tier`
// to park that tier's dedicated external channel; `entered` (if given)
// resolves once the blocker is executing.
IoRequest blocker(std::shared_future<void> gate,
                  std::promise<void>* entered = nullptr,
                  StorageTier* tier = nullptr) {
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.tier = tier;
  req.key = "blocker";
  req.sim_bytes = 64 * MiB;
  req.priority = IoPriority::kDemandPrefetch;
  req.work = [gate, entered](IoChannel&) -> u64 {
    if (entered != nullptr) entered->set_value();
    gate.wait();
    return 0;
  };
  return req;
}

// Spin until the queue has dispatched everything it holds (the blocker is
// *executing*, not queued, once this returns).
void wait_until_drained_into_dispatch(const IoScheduler& sched,
                                      std::size_t queue) {
  for (int i = 0; i < 2000 && sched.queued(queue) > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(sched.queued(queue), 0u);
}

IoRequest tagged(IoPriority priority, std::vector<IoPriority>* order,
                 std::mutex* mu) {
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.key = io_priority_name(priority);
  req.sim_bytes = 8 * MiB;  // above any coalescing threshold
  req.priority = priority;
  req.work = [priority, order, mu](IoChannel&) -> u64 {
    std::lock_guard lk(*mu);
    order->push_back(priority);
    return 0;
  };
  return req;
}

TEST(IoScheduler, DispatchesByPriorityClassNotArrivalOrder) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::mutex mu;
  std::vector<IoPriority> order;
  IoBatch batch;
  // Submitted weakest-first; must execute strongest-first.
  batch.add(sched.submit(tagged(IoPriority::kCheckpoint, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kLazyFlush, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kGradDeposit, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kDemandPrefetch, &order, &mu)));

  go.set_value();
  f0.get();
  batch.wait_all();

  const std::vector<IoPriority> expect = {
      IoPriority::kDemandPrefetch, IoPriority::kGradDeposit,
      IoPriority::kLazyFlush, IoPriority::kCheckpoint};
  EXPECT_EQ(order, expect);
}

TEST(IoScheduler, StrictFifoDispatchesInArrivalOrder) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  cfg.strict_fifo = true;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::mutex mu;
  std::vector<IoPriority> order;
  IoBatch batch;
  batch.add(sched.submit(tagged(IoPriority::kCheckpoint, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kLazyFlush, &order, &mu)));
  batch.add(sched.submit(tagged(IoPriority::kDemandPrefetch, &order, &mu)));

  go.set_value();
  f0.get();
  batch.wait_all();

  const std::vector<IoPriority> expect = {IoPriority::kCheckpoint,
                                          IoPriority::kLazyFlush,
                                          IoPriority::kDemandPrefetch};
  EXPECT_EQ(order, expect);
}

TEST(IoScheduler, SubmitBlocksWhenChannelQueueIsFull) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.queue_depth = 4;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::atomic<int> executed{0};
  const auto noop = [&executed] {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.key = "noop";
    req.sim_bytes = 8 * MiB;
    req.priority = IoPriority::kLazyFlush;
    req.work = [&executed](IoChannel&) -> u64 {
      executed.fetch_add(1);
      return 0;
    };
    return req;
  };

  IoBatch batch;
  for (int i = 0; i < 4; ++i) batch.add(sched.submit(noop()));
  ASSERT_EQ(sched.queued(sched.external_queue()), 4u);

  // The 5th submission must block until the dispatcher frees a slot.
  std::atomic<bool> fifth_submitted{false};
  std::thread submitter([&] {
    batch.add(sched.submit(noop()));
    fifth_submitted.store(true);
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(fifth_submitted.load())
      << "submit returned despite a full queue";

  go.set_value();
  f0.get();
  submitter.join();
  EXPECT_TRUE(fifth_submitted.load());
  batch.wait_all();
  EXPECT_EQ(executed.load(), 5);
}

TEST(IoScheduler, CancelledQueuedFlushesAreDroppedAtDispatch) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);

  std::promise<void> go;
  auto f0 = sched.submit(blocker(go.get_future().share()));
  wait_until_drained_into_dispatch(sched, sched.external_queue());

  std::atomic<int> executed{0};
  std::vector<std::future<void>> cancelled_futs;
  std::vector<CancellationToken> tokens;
  for (int i = 0; i < 3; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.key = "flush" + std::to_string(i);
    req.sim_bytes = 8 * MiB;
    req.priority = IoPriority::kLazyFlush;
    req.work = [&executed](IoChannel&) -> u64 {
      executed.fetch_add(1);
      return 0;
    };
    tokens.push_back(req.token);
    cancelled_futs.push_back(sched.submit(std::move(req)));
  }
  // One survivor behind the cancelled ones proves the queue keeps flowing.
  std::atomic<bool> survivor_ran{false};
  IoRequest survivor;
  survivor.op = IoOp::kWrite;
  survivor.target = IoTarget::kExternal;
  survivor.key = "survivor";
  survivor.sim_bytes = 8 * MiB;
  survivor.priority = IoPriority::kLazyFlush;
  survivor.work = [&survivor_ran](IoChannel&) -> u64 {
    survivor_ran.store(true);
    return 0;
  };
  auto survivor_fut = sched.submit(std::move(survivor));

  for (auto& t : tokens) t.cancel();
  go.set_value();
  f0.get();

  for (auto& fut : cancelled_futs) {
    EXPECT_THROW(fut.get(), IoCancelled);
  }
  survivor_fut.get();
  EXPECT_EQ(executed.load(), 0) << "cancelled work must never run";
  EXPECT_TRUE(survivor_ran.load());

  const auto stats = sched.stats();
  const auto& flush =
      stats.priority[static_cast<std::size_t>(IoPriority::kLazyFlush)];
  EXPECT_EQ(flush.cancelled, 3u);
  EXPECT_EQ(flush.completed, 1u);
}

TEST(IoScheduler, SmallTransfersCoalesceUnderOneDispatch) {
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 64 * KiB;
  cfg.coalesce_batch = 8;
  IoScheduler sched(clock, cfg);
  MemoryTier store("store");

  // Park the store's dedicated external channel (requests naming a tier
  // dispatch on a per-tier channel, not the default external queue).
  std::promise<void> go;
  std::promise<void> entered;
  auto f0 = sched.submit(blocker(go.get_future().share(), &entered, &store));
  entered.get_future().wait();

  const std::vector<u8> payload(128, 0xAB);
  IoBatch batch;
  for (int i = 0; i < 4; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.tier = &store;
    req.key = "small" + std::to_string(i);
    req.src = payload;
    req.sim_bytes = 4 * KiB;
    req.priority = IoPriority::kCheckpoint;
    batch.add(sched.submit(std::move(req)));
  }
  go.set_value();
  f0.get();
  batch.wait_all();

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(store.exists("small" + std::to_string(i))) << i;
  }
  const auto stats = sched.stats();
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 4u);
}

TEST(IoScheduler, TierRoundtripWithAutoPathReadRouting) {
  SimClock clock(1.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  vtier.add_path(std::make_shared<MemoryTier>("m1"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  const std::vector<u8> data = {1, 2, 3, 4, 5};
  IoRequest wr;
  wr.op = IoOp::kWrite;
  wr.key = "obj";
  wr.src = data;
  wr.path = 1;  // placement decision rides the path hint
  wr.priority = IoPriority::kLazyFlush;
  sched.submit(std::move(wr)).get();
  EXPECT_EQ(vtier.locate("obj"), 1u);

  std::vector<u8> out(5);
  IoRequest rd;
  rd.op = IoOp::kRead;
  rd.key = "obj";
  rd.dst = out;  // path defaults to kAutoPath: routed by location map
  rd.priority = IoPriority::kDemandPrefetch;
  sched.submit(std::move(rd)).get();
  EXPECT_EQ(out, data);
}

TEST(IoScheduler, UnknownKeyReadFailsThroughFuture) {
  SimClock clock(1.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  std::vector<u8> out(4);
  IoRequest rd;
  rd.op = IoOp::kRead;
  rd.key = "missing";
  rd.dst = out;
  auto fut = sched.submit(std::move(rd));
  EXPECT_THROW(fut.get(), std::out_of_range);
}

TEST(IoScheduler, TierWriteWithoutPathHintIsRejected) {
  SimClock clock(1.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  IoRequest wr;
  wr.op = IoOp::kWrite;
  wr.key = "obj";
  EXPECT_THROW(sched.submit(std::move(wr)), std::invalid_argument);
}

TEST(IoScheduler, CompletionCallbackFeedsObservedBandwidth) {
  SimClock clock(10000.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m0"));
  IoScheduler sched(clock, &vtier, nullptr, nullptr);

  const std::vector<u8> data(256, 7);
  IoResult seen;
  std::atomic<bool> called{false};
  IoRequest wr;
  wr.op = IoOp::kWrite;
  wr.key = "obj";
  wr.src = data;
  wr.sim_bytes = 2 * MiB;
  wr.path = 0;
  wr.priority = IoPriority::kLazyFlush;
  wr.on_complete = [&](const IoResult& r) {
    seen = r;
    called.store(true);
  };
  sched.submit(std::move(wr)).get();

  ASSERT_TRUE(called.load());
  EXPECT_EQ(seen.priority, IoPriority::kLazyFlush);
  EXPECT_EQ(seen.sim_bytes, 2u * MiB);
  EXPECT_GE(seen.queue_wait_seconds, 0.0);
  EXPECT_GE(seen.service_seconds, 0.0);

  const auto stats = sched.stats();
  const auto& flush =
      stats.priority[static_cast<std::size_t>(IoPriority::kLazyFlush)];
  EXPECT_EQ(flush.submitted, 1u);
  EXPECT_EQ(flush.completed, 1u);
  EXPECT_EQ(flush.sim_bytes, 2u * MiB);
}

TEST(IoScheduler, DrainWaitsForEverySubmittedRequest) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  MemoryTier store("store");

  std::atomic<int> done{0};
  IoBatch batch;
  for (int i = 0; i < 32; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.key = "k" + std::to_string(i);
    req.sim_bytes = 8 * MiB;
    req.priority = IoPriority::kCheckpoint;
    req.work = [&done](IoChannel&) -> u64 {
      std::this_thread::sleep_for(100us);
      done.fetch_add(1);
      return 0;
    };
    batch.add(sched.submit(std::move(req)));
  }
  sched.drain();
  EXPECT_EQ(done.load(), 32);
  batch.wait_all();
}

TEST(IoScheduler, DistinctExternalTiersDispatchConcurrently) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  MemoryTier a("tier-a");
  MemoryTier b("tier-b");

  std::promise<void> go;
  std::promise<void> entered;
  auto fa = sched.submit(blocker(go.get_future().share(), &entered, &a));
  entered.get_future().wait();

  // Tier b gets its own channel: this write completes while tier a's
  // channel is parked (it would hang here if external tiers shared one
  // dispatch thread).
  const std::vector<u8> data(16, 1);
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.tier = &b;
  req.key = "k";
  req.src = data;
  req.priority = IoPriority::kLazyFlush;
  sched.submit(std::move(req)).get();
  EXPECT_TRUE(b.exists("k"));

  go.set_value();
  fa.get();
}

// IoBatch semantics over scheduler-submitted work (absorbed from the
// retired AioEngine suite — the batch contract outlived the flat-FIFO
// engine it was written against).

namespace {
IoRequest task(std::function<void()> fn) {
  static std::atomic<int> counter{0};
  IoRequest req;
  req.op = IoOp::kWrite;
  req.target = IoTarget::kExternal;
  req.key = "task" + std::to_string(counter.fetch_add(1));
  req.sim_bytes = 8 * MiB;
  req.priority = IoPriority::kCheckpoint;
  req.work = [fn = std::move(fn)](IoChannel&) -> u64 {
    fn();
    return 0;
  };
  return req;
}
}  // namespace

TEST(IoBatch, WaitAllPropagatesFirstError) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoBatch batch;
  std::atomic<int> ok{0};
  batch.add(sched.submit(task([&ok] { ok.fetch_add(1); })));
  batch.add(sched.submit(task([] { throw std::runtime_error("io failed"); })));
  batch.add(sched.submit(task([&ok] { ok.fetch_add(1); })));
  EXPECT_THROW(batch.wait_all(), std::runtime_error);
  // All operations settled despite the failure.
  EXPECT_EQ(ok.load(), 2);
  // Batch is reusable after wait_all.
  batch.add(sched.submit(task([&ok] { ok.fetch_add(1); })));
  batch.wait_all();
  EXPECT_EQ(ok.load(), 3);
}

TEST(IoBatch, WaitAllAggregatesEveryError) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoBatch batch;
  batch.add(sched.submit(task([] { throw std::runtime_error("path0 down"); })));
  batch.add(sched.submit(task([] { throw std::runtime_error("path1 down"); })));
  batch.add(sched.submit(task([] {})));
  try {
    batch.wait_all();
    FAIL() << "expected an aggregated error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 operations failed"), std::string::npos) << what;
    EXPECT_NE(what.find("path0 down"), std::string::npos) << what;
    EXPECT_NE(what.find("path1 down"), std::string::npos) << what;
  }
}

TEST(IoBatch, SingleFailurePreservesExceptionType) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoBatch batch;
  batch.add(sched.submit(task([] { throw std::out_of_range("missing key"); })));
  EXPECT_THROW(batch.wait_all(), std::out_of_range);
}

TEST(IoBatch, EmptyBatchIsFine) {
  IoBatch batch;
  batch.wait_all();
  EXPECT_EQ(batch.size(), 0u);
}

TEST(IoScheduler, LinkRequestsCompleteWithoutLimiter) {
  SimClock clock(1.0);
  IoScheduler sched(clock);
  IoRequest d2h;
  d2h.target = IoTarget::kD2HLink;
  d2h.key = "grad";
  d2h.sim_bytes = 1 * MiB;
  d2h.priority = IoPriority::kGradDeposit;
  sched.submit(std::move(d2h)).get();

  IoRequest h2d;
  h2d.target = IoTarget::kH2DLink;
  h2d.key = "params";
  h2d.sim_bytes = 1 * MiB;
  h2d.priority = IoPriority::kDemandPrefetch;
  sched.submit(std::move(h2d)).get();
  SUCCEED();
}

}  // namespace
}  // namespace mlpo
