// ZeRO-3 sharding layout: partition invariants over randomized configs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>

#include "train/sharding.hpp"

namespace mlpo {
namespace {

TEST(Sharding, EvenSplitExactDivision) {
  const auto layout = make_shard_layout(400, 4, 1, 50);
  EXPECT_EQ(layout.shard_params, 100u);
  EXPECT_EQ(layout.num_subgroups(), 2u);
  EXPECT_EQ(layout.subgroup_sizes[0], 50u);
  EXPECT_EQ(layout.subgroup_sizes[1], 50u);
}

TEST(Sharding, RemainderGoesToLeadingRanks) {
  // 10 params over 3 ranks: 4, 3, 3.
  EXPECT_EQ(make_shard_layout(10, 3, 0, 100).shard_params, 4u);
  EXPECT_EQ(make_shard_layout(10, 3, 1, 100).shard_params, 3u);
  EXPECT_EQ(make_shard_layout(10, 3, 2, 100).shard_params, 3u);
}

TEST(Sharding, LastSubgroupTakesRemainder) {
  const auto layout = make_shard_layout(250, 1, 0, 100);
  ASSERT_EQ(layout.num_subgroups(), 3u);
  EXPECT_EQ(layout.subgroup_sizes[0], 100u);
  EXPECT_EQ(layout.subgroup_sizes[1], 100u);
  EXPECT_EQ(layout.subgroup_sizes[2], 50u);
}

TEST(Sharding, RejectsBadArguments) {
  EXPECT_THROW(make_shard_layout(100, 0, 0, 10), std::invalid_argument);
  EXPECT_THROW(make_shard_layout(100, 4, 4, 10), std::invalid_argument);
  EXPECT_THROW(make_shard_layout(100, 4, -1, 10), std::invalid_argument);
  EXPECT_THROW(make_shard_layout(100, 4, 0, 0), std::invalid_argument);
}

TEST(Sharding, FromModelConfigMatchesRawCount) {
  const auto& m = paper_model("40B");
  const auto a = make_shard_layout(m, 4, 2);
  const auto b = make_shard_layout(m.parameters(), 4, 2);
  EXPECT_EQ(a.shard_params, b.shard_params);
  EXPECT_EQ(a.subgroup_sizes, b.subgroup_sizes);
}

// Property: across all ranks, shards partition the model exactly; within a
// rank, subgroups partition the shard exactly.
TEST(Sharding, PartitionInvariantsOverRandomConfigs) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const u64 total = std::uniform_int_distribution<u64>(1, 1'000'000)(rng);
    const u32 world = std::uniform_int_distribution<u32>(1, 33)(rng);
    const u64 sg = std::uniform_int_distribution<u64>(1, 10'000)(rng);

    u64 sum_shards = 0;
    for (u32 rank = 0; rank < world; ++rank) {
      const auto layout =
          make_shard_layout(total, world, static_cast<int>(rank), sg);
      EXPECT_EQ(layout.total_params, total);
      const u64 sum_subgroups =
          std::accumulate(layout.subgroup_sizes.begin(),
                          layout.subgroup_sizes.end(), u64{0});
      EXPECT_EQ(sum_subgroups, layout.shard_params)
          << "total=" << total << " world=" << world << " rank=" << rank;
      for (const u64 s : layout.subgroup_sizes) {
        EXPECT_GE(s, 1u);
        EXPECT_LE(s, sg);
      }
      // All but the last subgroup are full-size.
      for (std::size_t i = 0; i + 1 < layout.subgroup_sizes.size(); ++i) {
        EXPECT_EQ(layout.subgroup_sizes[i], sg);
      }
      sum_shards += layout.shard_params;
    }
    EXPECT_EQ(sum_shards, total) << "total=" << total << " world=" << world;
  }
}

TEST(Sharding, ShardBalanceWithinOneParam) {
  for (const u32 world : {2u, 3u, 7u, 32u}) {
    u64 mn = ~0ull, mx = 0;
    for (u32 r = 0; r < world; ++r) {
      const u64 s =
          make_shard_layout(1'000'003, world, static_cast<int>(r), 100).shard_params;
      mn = std::min(mn, s);
      mx = std::max(mx, s);
    }
    EXPECT_LE(mx - mn, 1u) << world;
  }
}

TEST(Sharding, PaperScaleSubgroupCounts) {
  // 40B over 4 ranks at 100M params/subgroup -> ~100 subgroups per rank.
  const auto layout = make_shard_layout(paper_model("40B"), 4, 0);
  EXPECT_GE(layout.num_subgroups(), 95u);
  EXPECT_LE(layout.num_subgroups(), 110u);
}

TEST(ElasticSharding, GlobalSubgroupsAreWorldSizeInvariant) {
  // The elastic layout's promise: the (gid -> size) decomposition never
  // depends on the world size, only ownership does. Collect it under
  // several world sizes and compare.
  constexpr u64 kTotal = 1'000'003;
  constexpr u64 kSubgroup = 1000;
  std::map<u32, u64> reference;  // gid -> size, from world_size 1
  {
    const auto layout = make_elastic_shard_layout(kTotal, 1, 0, kSubgroup);
    for (u32 i = 0; i < layout.num_subgroups(); ++i) {
      reference[layout.global_id(i)] = layout.subgroup_sizes[i];
    }
  }
  EXPECT_EQ(reference.size(), (kTotal + kSubgroup - 1) / kSubgroup);

  for (const u32 world : {2u, 3u, 7u, 32u}) {
    std::map<u32, u64> seen;
    u64 sum = 0;
    for (u32 r = 0; r < world; ++r) {
      const auto layout =
          make_elastic_shard_layout(kTotal, world, static_cast<int>(r),
                                    kSubgroup);
      EXPECT_TRUE(layout.elastic());
      EXPECT_EQ(layout.content_rank(), 0);
      for (u32 i = 0; i < layout.num_subgroups(); ++i) {
        const auto [it, inserted] =
            seen.emplace(layout.global_id(i), layout.subgroup_sizes[i]);
        EXPECT_TRUE(inserted) << "gid owned twice: " << layout.global_id(i);
      }
      sum += layout.shard_params;
    }
    EXPECT_EQ(sum, kTotal) << world;
    EXPECT_EQ(seen, reference) << world;
  }
}

TEST(ElasticSharding, OwnershipIsBalancedWithinOneSubgroup) {
  for (const u32 world : {2u, 3u, 7u}) {
    u32 mn = ~0u, mx = 0;
    for (u32 r = 0; r < world; ++r) {
      const u32 n = make_elastic_shard_layout(1'000'003, world,
                                              static_cast<int>(r), 1000)
                        .num_subgroups();
      mn = std::min(mn, n);
      mx = std::max(mx, n);
    }
    EXPECT_LE(mx - mn, 1u) << world;
  }
}

TEST(ElasticSharding, RejectsWorldsLargerThanGlobalSubgroupCount) {
  // 3 global subgroups cannot feed 4 ranks: a rank would own nothing.
  EXPECT_THROW(make_elastic_shard_layout(3000, 4, 0, 1000),
               std::invalid_argument);
  EXPECT_NO_THROW(make_elastic_shard_layout(3000, 3, 0, 1000));
}

TEST(ElasticSharding, ClassicLayoutKeepsLocalIdentity) {
  const auto layout = make_shard_layout(10'000, 2, 1, 1000);
  EXPECT_FALSE(layout.elastic());
  EXPECT_EQ(layout.global_id(3), 3u);
  EXPECT_EQ(layout.content_rank(), 1);
}

}  // namespace
}  // namespace mlpo
