// PhaseTimer, IterationReport derived metrics, TablePrinter formatting.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/iteration_report.hpp"
#include "telemetry/phase_timer.hpp"
#include "telemetry/table_printer.hpp"
#include "telemetry/trace_csv.hpp"

namespace mlpo {
namespace {

TEST(PhaseTimer, AccumulatesScopedTime) {
  SimClock clock(10000.0);
  PhaseTimer timer(clock);
  {
    PhaseTimer::Scope scope(timer, Phase::kForward);
    clock.sleep_for(5.0);
  }
  {
    PhaseTimer::Scope scope(timer, Phase::kUpdate);
    clock.sleep_for(10.0);
  }
  EXPECT_GE(timer.total(Phase::kForward), 4.5);
  EXPECT_GE(timer.total(Phase::kUpdate), 9.5);
  EXPECT_EQ(timer.total(Phase::kBackward), 0.0);
  EXPECT_GE(timer.iteration_total(), 14.0);
  timer.reset();
  EXPECT_EQ(timer.iteration_total(), 0.0);
}

TEST(PhaseTimer, PhaseNames) {
  EXPECT_STREQ(phase_name(Phase::kForward), "forward");
  EXPECT_STREQ(phase_name(Phase::kBackward), "backward");
  EXPECT_STREQ(phase_name(Phase::kUpdate), "update");
}

TEST(IterationReport, UpdateThroughputInMparams) {
  IterationReport r;
  r.params_updated = 500'000'000;
  r.update_seconds = 2.0;
  EXPECT_NEAR(r.update_throughput_mparams(), 250.0, 1e-9);
  r.update_seconds = 0;
  EXPECT_EQ(r.update_throughput_mparams(), 0.0);
}

TEST(IterationReport, EffectiveIoThroughputPaperFormula) {
  IterationReport r;
  SubgroupTrace t1{};
  t1.sim_bytes_read = 1000;
  t1.sim_bytes_written = 1000;
  t1.read_seconds = 1.0;
  t1.write_seconds = 1.0;  // 2000 B / 2 s = 1000 B/s
  SubgroupTrace t2{};
  t2.sim_bytes_read = 3000;
  t2.sim_bytes_written = 3000;
  t2.read_seconds = 1.0;
  t2.write_seconds = 2.0;  // 6000 / 3 = 2000 B/s
  SubgroupTrace hit{};     // cache hit: no I/O, excluded
  hit.host_cache_hit = true;
  r.traces = {t1, t2, hit};
  EXPECT_NEAR(r.effective_io_throughput(), 1500.0, 1e-9);
}

TEST(IterationReport, IoFraction) {
  IterationReport r;
  r.fetch_seconds = 90;
  r.flush_seconds = 9;
  r.update_compute_seconds = 1;
  EXPECT_NEAR(r.update_io_fraction(), 0.99, 1e-12);
}

TEST(IterationReport, AverageAcrossIterations) {
  IterationReport a;
  a.forward_seconds = 1;
  a.backward_seconds = 2;
  a.update_seconds = 10;
  a.params_updated = 100;
  a.host_cache_hits = 4;
  IterationReport b;
  b.forward_seconds = 3;
  b.backward_seconds = 4;
  b.update_seconds = 20;
  b.params_updated = 100;
  b.host_cache_hits = 6;
  const auto avg = average_reports({a, b});
  EXPECT_NEAR(avg.forward_seconds, 2.0, 1e-12);
  EXPECT_NEAR(avg.backward_seconds, 3.0, 1e-12);
  EXPECT_NEAR(avg.update_seconds, 15.0, 1e-12);
  EXPECT_EQ(avg.params_updated, 100u);
  EXPECT_EQ(avg.host_cache_hits, 5u);
  EXPECT_THROW(average_reports({}), std::invalid_argument);
}

TEST(IterationReport, GraphExecutorCountersFoldWithTheRightSemantics) {
  // accumulate_counters: the frontier is a high-water mark (max-merge),
  // steals and idle time are totals (additive). average_reports keeps the
  // max for the high-water mark and divides the additive ones by n.
  IterationReport a;
  a.graph_frontier_high_water = 6;
  a.graph_tasks_stolen = 10;
  a.graph_executor_idle_seconds = 0.25;
  IterationReport b;
  b.graph_frontier_high_water = 4;
  b.graph_tasks_stolen = 2;
  b.graph_executor_idle_seconds = 0.75;

  IterationReport sum = a;
  sum.accumulate_counters(b);
  EXPECT_EQ(sum.graph_frontier_high_water, 6u);
  EXPECT_EQ(sum.graph_tasks_stolen, 12u);
  EXPECT_NEAR(sum.graph_executor_idle_seconds, 1.0, 1e-12);

  const auto avg = average_reports({a, b});
  EXPECT_EQ(avg.graph_frontier_high_water, 6u);
  EXPECT_EQ(avg.graph_tasks_stolen, 6u);
  EXPECT_NEAR(avg.graph_executor_idle_seconds, 0.5, 1e-12);
}

TEST(IterationReport, SubgroupTraceThroughputs) {
  SubgroupTrace t{};
  t.sim_bytes_read = 4000;
  t.read_seconds = 2.0;
  t.sim_bytes_written = 1000;
  t.write_seconds = 0.5;
  EXPECT_NEAR(t.read_throughput(), 2000.0, 1e-9);
  EXPECT_NEAR(t.write_throughput(), 2000.0, 1e-9);
  SubgroupTrace idle{};
  EXPECT_EQ(idle.read_throughput(), 0.0);
}

TEST(IterationReport, TenantSlicesMergeByTenantId) {
  IterationReport a;
  TenantSlice s1;
  s1.tenant = 1;
  s1.iterations = 2;
  s1.iteration_seconds = 4.0;
  s1.max_iteration_seconds = 3.0;
  s1.deadline_hits = 1;
  s1.deadline_misses = 1;
  a.tenants.push_back(s1);

  IterationReport b;
  TenantSlice s1b;  // same tenant: additive fields sum, max takes max
  s1b.tenant = 1;
  s1b.iterations = 1;
  s1b.iteration_seconds = 5.0;
  s1b.max_iteration_seconds = 5.0;
  s1b.deadline_hits = 0;
  s1b.deadline_misses = 1;
  TenantSlice s2;  // unseen tenant: concatenated, not blended into s1
  s2.tenant = 2;
  s2.iterations = 7;
  s2.iteration_seconds = 7.0;
  s2.max_iteration_seconds = 1.5;
  b.tenants.push_back(s1b);
  b.tenants.push_back(s2);

  a.accumulate_counters(b);
  ASSERT_EQ(a.tenants.size(), 2u);
  const TenantSlice* m1 = a.tenant_slice(1);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->iterations, 3u);
  EXPECT_DOUBLE_EQ(m1->iteration_seconds, 9.0);
  EXPECT_DOUBLE_EQ(m1->max_iteration_seconds, 5.0);
  EXPECT_EQ(m1->deadline_hits, 1u);
  EXPECT_EQ(m1->deadline_misses, 2u);
  EXPECT_DOUBLE_EQ(m1->mean_iteration_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(m1->deadline_hit_rate(), 1.0 / 3.0);
  const TenantSlice* m2 = a.tenant_slice(2);
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(m2->iterations, 7u);
  EXPECT_EQ(a.tenant_slice(3), nullptr);
}

TEST(IterationReport, AverageKeepsTenantSlicesAsTotals) {
  // average_reports divides the per-iteration counters by N, but tenant
  // slices are already totals over the window — dividing them again would
  // halve every job's iteration count.
  std::vector<IterationReport> reports(2);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    TenantSlice s;
    s.tenant = 1;
    s.iterations = 1;
    s.iteration_seconds = 2.0;
    s.max_iteration_seconds = 2.0;
    s.deadline_hits = 1;
    reports[i].tenants.push_back(s);
  }
  const IterationReport avg = average_reports(reports);
  const TenantSlice* slice = avg.tenant_slice(1);
  ASSERT_NE(slice, nullptr);
  EXPECT_EQ(slice->iterations, 2u);
  EXPECT_DOUBLE_EQ(slice->iteration_seconds, 4.0);
  EXPECT_DOUBLE_EQ(slice->max_iteration_seconds, 2.0);
  EXPECT_EQ(slice->deadline_hits, 2u);
  EXPECT_DOUBLE_EQ(slice->deadline_hit_rate(), 1.0);
}

TEST(TenantSlice, DerivedRatesHandleEmptyWindows) {
  TenantSlice s;
  EXPECT_DOUBLE_EQ(s.mean_iteration_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(s.deadline_hit_rate(), 1.0);  // no deadline = never missed
}

TEST(TablePrinter, AlignedOutput) {
  TablePrinter table({"Model", "Update (s)", "Speedup"});
  table.add_row({"40B", TablePrinter::num(242.3), "1.0x"});
  table.add_row({"120B", TablePrinter::num(550.4), "2.1x"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("242.3"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line of the aligned block ends without trailing blanks.
  for (std::size_t pos = 0; (pos = out.find(" \n", pos)) != std::string::npos;) {
    FAIL() << "trailing whitespace in table output";
  }
}

TEST(TablePrinter, CsvEscapesSpecials) {
  TablePrinter table({"name", "value"});
  table.add_row({"has,comma", "has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NO_THROW(table.to_string());
  EXPECT_NO_THROW(table.to_csv());
}

TEST(TablePrinter, NumberFormatHelpers) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(10, 0), "10");
  EXPECT_EQ(TablePrinter::pct(0.995), "99.5%");
}

TEST(TraceCsv, HeaderAndRows) {
  SubgroupTrace t1{};
  t1.subgroup_id = 5;
  t1.sim_bytes_read = 1000;
  t1.read_seconds = 0.5;
  SubgroupTrace t2{};
  t2.subgroup_id = 6;
  t2.host_cache_hit = true;
  const std::string csv = traces_to_csv({t1, t2});
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 22), "position,subgroup_id,c");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 6), "0,5,0,");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 6), "1,6,1,");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TraceCsv, WriteToFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mlpo_traces.csv").string();
  SubgroupTrace t{};
  t.subgroup_id = 1;
  write_traces_csv(path, {t});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("subgroup_id"), std::string::npos);
  std::filesystem::remove(path);
  EXPECT_THROW(write_traces_csv("/nonexistent-dir/x.csv", {t}),
               std::runtime_error);
}

}  // namespace
}  // namespace mlpo
