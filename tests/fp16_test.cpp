// FP16 software implementation: exhaustive decode/encode roundtrip over the
// full 16-bit space, rounding behaviour, special values, and bulk kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/fp16.hpp"

namespace mlpo {
namespace {

TEST(Fp16, ZeroAndSignedZero) {
  EXPECT_EQ(Fp16::encode(0.0f), 0x0000u);
  EXPECT_EQ(Fp16::encode(-0.0f), 0x8000u);
  EXPECT_EQ(Fp16::decode(0x0000u), 0.0f);
  EXPECT_EQ(Fp16::decode(0x8000u), -0.0f);
  EXPECT_TRUE(std::signbit(Fp16::decode(0x8000u)));
}

TEST(Fp16, KnownValues) {
  EXPECT_EQ(Fp16::encode(1.0f), 0x3C00u);
  EXPECT_EQ(Fp16::encode(-2.0f), 0xC000u);
  EXPECT_EQ(Fp16::encode(0.5f), 0x3800u);
  EXPECT_EQ(Fp16::encode(65504.0f), 0x7BFFu);  // max finite half
  EXPECT_EQ(Fp16::decode(0x3C00u), 1.0f);
  EXPECT_EQ(Fp16::decode(0x7BFFu), 65504.0f);
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(Fp16::decode(0x0001u), std::ldexp(1.0f, -24));
  // Smallest positive normal: 2^-14.
  EXPECT_EQ(Fp16::decode(0x0400u), std::ldexp(1.0f, -14));
}

TEST(Fp16, OverflowSaturatesToInfinity) {
  EXPECT_EQ(Fp16::encode(1e6f), 0x7C00u);
  EXPECT_EQ(Fp16::encode(-1e6f), 0xFC00u);
  EXPECT_EQ(Fp16::encode(65520.0f), 0x7C00u);  // rounds up past max finite
  EXPECT_EQ(Fp16::encode(65519.0f), 0x7BFFu);  // rounds down to max finite
}

TEST(Fp16, UnderflowFlushesToZero) {
  EXPECT_EQ(Fp16::encode(1e-10f), 0x0000u);
  EXPECT_EQ(Fp16::encode(-1e-10f), 0x8000u);
}

TEST(Fp16, InfinityAndNan) {
  const f32 inf = std::numeric_limits<f32>::infinity();
  EXPECT_EQ(Fp16::encode(inf), 0x7C00u);
  EXPECT_EQ(Fp16::encode(-inf), 0xFC00u);
  EXPECT_TRUE(std::isinf(Fp16::decode(0x7C00u)));
  EXPECT_TRUE(std::isinf(Fp16::decode(0xFC00u)));

  const f32 nan = std::numeric_limits<f32>::quiet_NaN();
  const u16 enc = Fp16::encode(nan);
  EXPECT_TRUE(Fp16::from_bits(enc).is_nan());
  EXPECT_TRUE(std::isnan(Fp16::decode(enc)));
}

TEST(Fp16, RoundToNearestEven) {
  // 1.0 + 2^-11 sits exactly halfway between 1.0 and 1.0+2^-10: ties to
  // even keep 1.0 (mantissa even).
  EXPECT_EQ(Fp16::encode(1.0f + std::ldexp(1.0f, -11)), 0x3C00u);
  // The next representable float above the halfway point rounds up.
  EXPECT_EQ(Fp16::encode(std::nextafter(1.0f + std::ldexp(1.0f, -11), 2.0f)),
            0x3C01u);
  // 1.0 + 3*2^-11 is halfway between 0x3C01 and 0x3C02: ties to even -> 0x3C02.
  EXPECT_EQ(Fp16::encode(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3C02u);
}

TEST(Fp16, ExhaustiveDecodeEncodeRoundtrip) {
  // Every half value decodes to a float that re-encodes to the same bits
  // (NaN payloads may be quieted, so compare NaN-ness instead).
  for (u32 bits = 0; bits <= 0xFFFF; ++bits) {
    const u16 h = static_cast<u16>(bits);
    const f32 f = Fp16::decode(h);
    if (Fp16::from_bits(h).is_nan()) {
      EXPECT_TRUE(std::isnan(f)) << "bits=" << bits;
      EXPECT_TRUE(Fp16::from_bits(Fp16::encode(f)).is_nan()) << "bits=" << bits;
      continue;
    }
    EXPECT_EQ(Fp16::encode(f), h) << "bits=" << bits;
  }
}

TEST(Fp16, EncodeMatchesNearestRepresentable) {
  // Property check over a sweep of floats: the encoded half must be at
  // least as close to the input as its neighbours.
  for (int i = -2000; i <= 2000; ++i) {
    const f32 x = static_cast<f32>(i) * 0.37f;
    const u16 h = Fp16::encode(x);
    const f32 fx = Fp16::decode(h);
    const f32 lo = Fp16::decode(static_cast<u16>(h > 0 ? h - 1 : h));
    const f32 hi = Fp16::decode(static_cast<u16>(h < 0x7BFF ? h + 1 : h));
    const f32 err = std::abs(fx - x);
    if (!std::isnan(lo) && !std::isinf(lo)) {
      EXPECT_LE(err, std::abs(lo - x) + 1e-9f) << "x=" << x;
    }
    if (!std::isnan(hi) && !std::isinf(hi)) {
      EXPECT_LE(err, std::abs(hi - x) + 1e-9f) << "x=" << x;
    }
  }
}

TEST(Fp16, BulkKernelsMatchScalar) {
  std::vector<f32> src;
  for (int i = 0; i < 10000; ++i) src.push_back(std::sin(i * 0.01f) * 100.0f);
  std::vector<u16> half(src.size());
  fp32_to_fp16(src, half);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(half[i], Fp16::encode(src[i])) << i;
  }
  std::vector<f32> back(src.size());
  fp16_to_fp32(half, back);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(back[i], Fp16::decode(half[i])) << i;
  }
}

TEST(Fp16, ThroughputMeasurementRuns) {
  const f64 thru = measure_fp16_to_fp32_throughput(1 << 16);
  EXPECT_GT(thru, 0.0);
}

}  // namespace
}  // namespace mlpo
