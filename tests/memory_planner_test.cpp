// Memory planner: the §4.1 feasibility constraints.
#include <gtest/gtest.h>

#include "runtime/memory_planner.hpp"

namespace mlpo {
namespace {

PlannerInput base_input(const char* model, u32 world = 0) {
  PlannerInput in;
  in.model = paper_model(model);
  in.testbed = TestbedSpec::testbed1();
  in.gpu_memory_bytes = 80ull * GiB;
  in.total_world = world;
  return in;
}

TEST(MemoryPlanner, PaperSingleNodeConfigsAreFeasible) {
  // The paper runs 40B-120B on a single 4xH100-80GB node: FP16 params and
  // one subgroup's working set must fit the aggregate 320 GB.
  for (const char* model : {"40B", "52B", "70B", "100B", "120B"}) {
    const auto plan = plan_memory(base_input(model));
    EXPECT_TRUE(plan.feasible()) << model << "\n" << plan.to_string();
  }
}

TEST(MemoryPlanner, Model280BNeedsMoreThanOneNode) {
  // 280B FP16 params alone (466 GB) exceed one node's 320 GB of GPU
  // memory; the paper runs it on 8 nodes (32 GPUs).
  auto single = base_input("280B");
  single.gpu_memory_bytes = 40ull * GiB;  // A100-40GB (Testbed-2)
  single.testbed = TestbedSpec::testbed2();
  EXPECT_FALSE(plan_memory(single).gpu_fits);

  auto cluster = single;
  cluster.total_world = 32;
  EXPECT_TRUE(plan_memory(cluster).gpu_fits) << plan_memory(cluster).to_string();
}

TEST(MemoryPlanner, ActivationCheckpointingShrinksGpuFootprint) {
  auto with = base_input("70B");
  auto without = base_input("70B");
  without.activation_checkpointing = false;
  EXPECT_LT(plan_memory(with).gpu_required,
            plan_memory(without).gpu_required);
}

TEST(MemoryPlanner, MicrobatchScalesActivations) {
  auto mb1 = base_input("40B");
  auto mb8 = base_input("40B");
  mb8.microbatch = 8;
  const auto p1 = plan_memory(mb1);
  const auto p8 = plan_memory(mb8);
  EXPECT_GT(p8.gpu_required, p1.gpu_required);
}

TEST(MemoryPlanner, CacheBudgetShrinksWithModelSize) {
  const auto small = plan_memory(base_input("40B"));
  const auto large = plan_memory(base_input("120B"));
  EXPECT_GT(small.cache_budget_bytes, large.cache_budget_bytes);
  EXPECT_GT(small.cache_subgroups_per_worker,
            large.cache_subgroups_per_worker);
}

TEST(MemoryPlanner, HostRequirementsItemised) {
  const auto plan = plan_memory(base_input("70B"));
  ASSERT_EQ(plan.host_items.size(), 3u);
  u64 sum = 0;
  for (const auto& item : plan.host_items) sum += item.bytes;
  EXPECT_EQ(sum, plan.host_required);
  EXPECT_FALSE(plan.to_string().empty());
}

TEST(MemoryPlanner, InfeasibleHostReported) {
  auto input = base_input("70B");
  input.testbed.host_memory_bytes = 64ull * GiB;  // tiny host
  const auto plan = plan_memory(input);
  EXPECT_FALSE(plan.host_fits);
  EXPECT_FALSE(plan.feasible());
  EXPECT_EQ(plan.cache_budget_bytes, 0u);
}

}  // namespace
}  // namespace mlpo
