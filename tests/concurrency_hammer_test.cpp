// Concurrency hammer suites: many-thread stress of the primitives whose
// single-thread unit tests cannot surface ordering bugs — MpmcQueue's
// notify-after-unlock discipline under a close() race, ThreadPool's
// drain-then-exit shutdown contract, BufferPool under contention, and the
// TierStats no-concurrent-transfers contract (TransferScope). These tests
// are the designated prey for the TSan preset: every suite here runs
// multiple real threads over the annotated primitives, so a regression in
// the locking shows up as a sanitizer report even when the test's own
// assertions still pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "io/io_scheduler.hpp"
#include "tiers/failstop_tier.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/storage_tier.hpp"
#include "util/aligned_buffer.hpp"
#include "util/mpmc_queue.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"
#include "util/work_stealing_pool.hpp"

namespace mlpo {
namespace {

// Modest sizes on purpose: the suite also runs under TSan's ~5-15x
// slowdown on single-core CI runners, and a hammer that needs minutes to
// finish gets skipped or timed out rather than run.
constexpr int kProducers = 4;
constexpr int kConsumers = 4;
constexpr int kItemsPerProducer = 2000;

TEST(MpmcQueueHammer, AllAcceptedItemsArePopped) {
  MpmcQueue<int> queue(8);
  std::atomic<u64> accepted{0};
  std::atomic<u64> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, &accepted] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        if (queue.push(i)) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &popped] {
      while (queue.pop().has_value()) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Join producers (the first kProducers threads), then close: consumers
  // drain the remainder and exit on nullopt.
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(accepted.load(), u64{kProducers} * kItemsPerProducer);
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueHammer, CloseRacingProducersAndConsumersLosesNothing) {
  // close() fires mid-stream from its own thread. The contract under race:
  // every push that returned true is eventually popped, every push after
  // close returns false, and nobody deadlocks. Repeat the race a few times
  // since the interesting interleaving (close between a producer's
  // predicate check and its wait) is rare per run.
  for (int round = 0; round < 10; ++round) {
    MpmcQueue<int> queue(4);
    std::atomic<u64> accepted{0};
    std::atomic<u64> popped{0};
    std::atomic<bool> producers_done{false};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&queue, &accepted] {
        for (int i = 0; i < 500; ++i) {
          if (!queue.push(i)) return;  // closed under us — expected
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&queue, &popped] {
        while (queue.pop().has_value()) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread closer([&queue, &producers_done] {
      // Let some traffic through first so the queue is warm when the close
      // lands; yielding instead of sleeping keeps the test fast under TSan.
      for (int spin = 0; spin < 50; ++spin) std::this_thread::yield();
      (void)producers_done.load();
      queue.close();
    });

    closer.join();
    for (auto& t : threads) t.join();

    // pop() drains what close() left behind before returning nullopt, so
    // nothing accepted may be lost.
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_TRUE(queue.closed());
  }
}

TEST(ThreadPoolHammer, EverySuccessfulSubmitRedeemsItsFuture) {
  // Shutdown contract: a submit() that did not throw must produce a future
  // that get()s cleanly even when the destructor runs concurrently —
  // workers drain the queue before exiting. Submitters race pool
  // destruction; the destructor starts as soon as `stop` flips.
  for (int round = 0; round < 8; ++round) {
    std::atomic<u64> executed{0};
    std::atomic<u64> submitted{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    std::vector<std::future<void>> futures[4];

    {
      ThreadPool pool(3);
      for (int s = 0; s < 4; ++s) {
        submitters.emplace_back([&pool, &executed, &submitted, &stop,
                                 &futs = futures[s]] {
          while (!stop.load(std::memory_order_acquire)) {
            try {
              futs.push_back(pool.submit([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
              }));
              submitted.fetch_add(1, std::memory_order_relaxed);
            } catch (const std::runtime_error&) {
              return;  // pool is stopping — the documented submit() outcome
            }
          }
        });
      }
      // Give the submitters a moment of real traffic, then destroy the
      // pool while they are still pushing.
      while (executed.load(std::memory_order_relaxed) < 64) {
        std::this_thread::yield();
      }
      stop.store(true, std::memory_order_release);
      for (auto& t : submitters) t.join();
    }  // ~ThreadPool: must drain everything already accepted

    u64 redeemed = 0;
    for (auto& futs : futures) {
      for (auto& f : futs) {
        f.get();  // throws (std::future_error/broken_promise) on a dropped task
        ++redeemed;
      }
    }
    EXPECT_EQ(redeemed, submitted.load()) << "round " << round;
    EXPECT_EQ(executed.load(), submitted.load()) << "round " << round;
  }
}

TEST(ThreadPoolHammer, TrySubmitNeverThrowsAndEveryFutureRedeems) {
  // try_submit's contract under the same destructor race: it must never
  // throw — rejection is nullopt — and every future it DID hand out must
  // redeem (the task was accepted before stop, so the drain covers it).
  for (int round = 0; round < 8; ++round) {
    std::atomic<u64> executed{0};
    std::atomic<u64> submitted{0};
    std::atomic<bool> stop{false};
    std::atomic<bool> saw_rejection{false};
    std::vector<std::thread> submitters;
    std::vector<std::future<void>> futures[4];

    {
      ThreadPool pool(3);
      for (int s = 0; s < 4; ++s) {
        submitters.emplace_back([&pool, &executed, &submitted, &stop,
                                 &saw_rejection, &futs = futures[s]] {
          while (!stop.load(std::memory_order_acquire)) {
            auto fut = pool.try_submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            });
            if (!fut.has_value()) {
              saw_rejection.store(true, std::memory_order_relaxed);
              return;  // pool is stopping — the documented outcome
            }
            futs.push_back(std::move(*fut));
            submitted.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      while (executed.load(std::memory_order_relaxed) < 64) {
        std::this_thread::yield();
      }
      stop.store(true, std::memory_order_release);
      for (auto& t : submitters) t.join();
    }  // ~ThreadPool races the submitters above in earlier iterations

    u64 redeemed = 0;
    for (auto& futs : futures) {
      for (auto& f : futs) {
        f.get();
        ++redeemed;
      }
    }
    EXPECT_EQ(redeemed, submitted.load()) << "round " << round;
    EXPECT_EQ(executed.load(), submitted.load()) << "round " << round;
  }
}

TEST(WorkStealingPoolHammer, DrainsEverythingAcceptedUnderSubmitStorm) {
  // Same shutdown contract as ThreadPool, plus the steal path: multiple
  // submitters race each other (round-robin across worker deques) and the
  // destructor; every accepted task must execute and every future redeem.
  for (int round = 0; round < 8; ++round) {
    std::atomic<u64> executed{0};
    std::atomic<u64> submitted{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    std::vector<std::future<void>> futures[4];

    {
      WorkStealingPool pool(3);
      for (int s = 0; s < 4; ++s) {
        submitters.emplace_back([&pool, &executed, &submitted, &stop,
                                 &futs = futures[s]] {
          while (!stop.load(std::memory_order_acquire)) {
            auto fut = pool.try_submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            });
            if (!fut.has_value()) return;  // stopping
            futs.push_back(std::move(*fut));
            submitted.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      while (executed.load(std::memory_order_relaxed) < 64) {
        std::this_thread::yield();
      }
      stop.store(true, std::memory_order_release);
      for (auto& t : submitters) t.join();
    }  // ~WorkStealingPool: drain-then-exit

    u64 redeemed = 0;
    for (auto& futs : futures) {
      for (auto& f : futs) {
        f.get();
        ++redeemed;
      }
    }
    EXPECT_EQ(redeemed, submitted.load()) << "round " << round;
    EXPECT_EQ(executed.load(), submitted.load()) << "round " << round;
  }
}

TEST(WorkStealingPoolHammer, WorkerLocalSubmissionLandsOnOwnDeque) {
  // Tasks submitted FROM a pool worker push to that worker's own deque
  // (the locality fast path). Recursive fan-out from inside tasks must
  // complete without deadlock and preserve the drain guarantee.
  // No blocking inside tasks (a worker waiting on a future it must itself
  // drain would deadlock); the main thread waits on the counter instead,
  // while the pool is alive, so no nested submit can race the stop flag.
  std::atomic<int> leaf_count{0};
  WorkStealingPool pool(3);
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &leaf_count] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&leaf_count] {
          leaf_count.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  while (leaf_count.load(std::memory_order_acquire) < 16 * 8) {
    std::this_thread::yield();
  }
  EXPECT_EQ(leaf_count.load(), 16 * 8);
}

TEST(BufferPoolHammer, LeasesNeverOversubscribe) {
  constexpr std::size_t kBuffers = 3;
  BufferPool pool(kBuffers, 1024);
  std::atomic<int> holding{0};
  std::atomic<bool> oversubscribed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&pool, &holding, &oversubscribed] {
      for (int i = 0; i < 400; ++i) {
        auto lease = pool.acquire();
        const int now = holding.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (now > static_cast<int>(kBuffers)) oversubscribed.store(true);
        holding.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(oversubscribed.load());
  EXPECT_EQ(pool.available(), kBuffers);
}

TEST(BufferPoolHammer, VariableSizeLeasesConserveSlabBytes) {
  // The slab-suballocator pool under contention: mixed-size acquires from
  // many threads, writes through every lease (so ASan sees any overlap),
  // and a final accounting check that nothing leaked or double-freed.
  BufferPool::Options opts;
  opts.slab_bytes = 64 * 4096;
  BufferPool pool(opts);
  std::atomic<bool> corrupted{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&pool, &corrupted, t] {
      const u8 tag = static_cast<u8>(0x40 + t);
      for (int i = 0; i < 300; ++i) {
        // Sizes span sub-granule to multi-page; all fit the slab, so no
        // heap fallback may ever trigger.
        auto lease = pool.acquire(128 + static_cast<std::size_t>(
                                            (i * 2654435761u + t) % (5 * 4096)));
        std::fill(lease.bytes().begin(), lease.bytes().end(), tag);
        std::this_thread::yield();
        for (const u8 b : lease.bytes()) {
          if (b != tag) corrupted.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(corrupted.load());
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, u64{6} * 300);
  EXPECT_EQ(s.releases, s.acquires);
  EXPECT_EQ(s.heap_fallbacks, 0u);
  EXPECT_EQ(s.bytes_in_use, 0u);
  EXPECT_EQ(pool.free_bytes(), opts.slab_bytes);
}

u64 fnv1a(const std::vector<u8>& bytes) {
  u64 h = 1469598103934665603ull;
  for (const u8 b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(TenancyHammer, BullyFailStopLeavesSurvivorLatencyAndDataIntact) {
  // Two tenants share one scheduler and one external channel. Tenant 2
  // (the bully) saturates the channel with lazy flushes and fail-stops
  // mid-storm; tenant 1 (the survivor) streams demand prefetches the
  // whole time. Contract under hammer: every survivor read completes
  // (nothing settles with the bully's FailStopError), the data read back
  // is bit-identical to what was written, and the survivor's p99 queue
  // wait stays bounded — the dead tenant's backlog must not stall the
  // channel for its neighbour.
  constexpr int kSurvivorReads = 96;
  constexpr int kBullyWrites = 200;  // per half, around the fail-stop
  SimClock clock(1.0);
  IoScheduler::Config cfg;
  cfg.coalesce_max_sim_bytes = 0;
  IoScheduler sched(clock, cfg);
  MemoryTier tier("tenancy-shared");

  // Survivor payloads, written directly (setup, not under test).
  std::vector<std::vector<u8>> payloads(kSurvivorReads);
  u64 reference = 0;
  for (int i = 0; i < kSurvivorReads; ++i) {
    payloads[i].assign(512 + 7 * static_cast<std::size_t>(i),
                       static_cast<u8>(0x11 + i));
    tier.write("s/" + std::to_string(i), payloads[i]);
    reference += fnv1a(payloads[i]);
  }

  const auto bully_write = [&tier](int i, const std::vector<u8>& junk) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.target = IoTarget::kExternal;
    req.tier = &tier;
    req.key = "b/" + std::to_string(i);
    req.src = junk;
    req.sim_bytes = junk.size();
    req.priority = IoPriority::kLazyFlush;
    req.tenant = 2;
    return req;
  };

  std::promise<void> first_half_submitted;
  std::promise<void> failure_injected;
  std::shared_future<void> injected = failure_injected.get_future().share();
  std::atomic<u64> bully_failures{0};

  std::thread bully([&] {
    const std::vector<u8> junk(4096, 0xbb);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < kBullyWrites; ++i) {
      futs.push_back(sched.submit(bully_write(i, junk)));
    }
    first_half_submitted.set_value();
    injected.wait();
    // Every post-fail-stop submission must settle with FailStopError.
    for (int i = kBullyWrites; i < 2 * kBullyWrites; ++i) {
      futs.push_back(sched.submit(bully_write(i, junk)));
    }
    for (auto& f : futs) {
      try {
        f.get();
      } catch (const FailStopError&) {
        bully_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::mutex mu;
  std::vector<f64> waits;
  std::atomic<u64> survivor_sum{0};
  std::thread survivor([&] {
    std::vector<std::vector<u8>> out(kSurvivorReads);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < kSurvivorReads; ++i) {
      out[i].resize(payloads[i].size());
      IoRequest req;
      req.op = IoOp::kRead;
      req.target = IoTarget::kExternal;
      req.tier = &tier;
      req.key = "s/" + std::to_string(i);
      req.dst = out[i];
      req.sim_bytes = out[i].size();
      req.priority = IoPriority::kDemandPrefetch;
      req.tenant = 1;
      req.on_complete = [&mu, &waits](const IoResult& r) {
        std::lock_guard lk(mu);
        waits.push_back(r.queue_wait_seconds);
      };
      futs.push_back(sched.submit(std::move(req)));
      std::this_thread::yield();  // interleave with the bully's storm
    }
    for (auto& f : futs) f.get();  // none may throw
    u64 sum = 0;
    for (const auto& o : out) sum += fnv1a(o);
    survivor_sum.store(sum);
  });

  first_half_submitted.get_future().wait();
  sched.fail_tenant(2);  // mid-storm: some bully traffic is still queued
  failure_injected.set_value();

  bully.join();
  survivor.join();
  sched.drain();

  EXPECT_EQ(survivor_sum.load(), reference);
  EXPECT_GE(bully_failures.load(), static_cast<u64>(kBullyWrites));

  const auto demand = static_cast<std::size_t>(IoPriority::kDemandPrefetch);
  const auto s1 = sched.tenant_stats(1);
  EXPECT_EQ(s1.priority[demand].completed, static_cast<u64>(kSurvivorReads));
  EXPECT_EQ(s1.priority[demand].failed, 0u);
  EXPECT_EQ(s1.priority[demand].cancelled, 0u);

  // p99 queue wait (virtual == real seconds at scale 1): the bound is a
  // stall detector, not a perf gate — memcpy-backed requests wait
  // microseconds unless the dead tenant's backlog wedges the channel.
  ASSERT_EQ(waits.size(), static_cast<std::size_t>(kSurvivorReads));
  std::sort(waits.begin(), waits.end());
  const f64 p99 = waits[(waits.size() * 99) / 100];
  EXPECT_LT(p99, 5.0) << "survivor stalled behind a fail-stopped tenant";
}

TEST(TierStatsContract, TransferScopeTracksInFlight) {
  TierStats stats;
  EXPECT_EQ(stats.in_flight(), 0u);
  {
    TierStats::TransferScope a(stats);
    EXPECT_EQ(stats.in_flight(), 1u);
    {
      TierStats::TransferScope b(stats);
      EXPECT_EQ(stats.in_flight(), 2u);
    }
    EXPECT_EQ(stats.in_flight(), 1u);
  }
  EXPECT_EQ(stats.in_flight(), 0u);
  stats.reset();  // legal: nothing in flight
  EXPECT_EQ(stats.reads.load(), 0u);
}

TEST(TierStatsContract, TiersClearInFlightAfterEachTransfer) {
  MemoryTier tier("hammer-mem");
  std::vector<u8> blob(256, 0xab);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tier, &blob, t] {
      const std::string key = "obj-" + std::to_string(t);
      std::vector<u8> out(blob.size());
      for (int i = 0; i < 200; ++i) {
        tier.write(key, blob);
        tier.read(key, out);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every TransferScope closed; reset() must now be legal.
  EXPECT_EQ(tier.stats().in_flight(), 0u);
  tier.stats().reset();
  EXPECT_EQ(tier.stats().writes.load(), 0u);
}

TEST(TierStatsContractDeathTest, ResetDuringTransferAssertsInDebug) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  TierStats stats;
  TierStats::TransferScope scope(stats);
  // Debug builds must die on the contract violation; release builds run
  // the reset (the assert compiles out) — EXPECT_DEBUG_DEATH covers both.
  EXPECT_DEBUG_DEATH(stats.reset(), "no-concurrent-transfers");
}

}  // namespace
}  // namespace mlpo
