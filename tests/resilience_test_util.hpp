// Shared cluster fixture for the resilience suites: resilience_test (unit
// coverage) and recovery_equivalence_test (the checksum parity grid) must
// run the exact same scenario knobs, or the grid silently drifts from the
// units it is meant to back.
#pragma once

#include "runtime/cluster.hpp"
#include "resilience/failure_injector.hpp"

namespace mlpo::test {

inline ModelConfig tiny_model() { return ModelConfig{"tiny", 2, 2048, 32}; }

inline ClusterConfig make_cluster_config(u32 nodes, bool elastic = false) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.model = tiny_model();
  cfg.node.testbed = TestbedSpec::testbed2();
  cfg.node.engine_opts = EngineOptions::mlp_offload();
  cfg.node.engine_opts.elem_scale = 65536;
  cfg.node.subgroup_params = 4'000'000;
  cfg.node.host_cache_override = 2;
  cfg.node.wrap_failstop = true;
  cfg.node.elastic_sharding = elastic;
  return cfg;
}

inline FailureEvent node_failure_at(u32 node, i64 iteration) {
  FailureEvent event;
  event.kind = FailureEvent::Kind::kNode;
  event.node = node;
  event.at_iteration = iteration;
  return event;
}

}  // namespace mlpo::test
