// Failure injection: storage errors must propagate through the async
// pipeline as exceptions without deadlocking or corrupting the engine.
#include <gtest/gtest.h>

#include <atomic>

#include "core/offload_engine.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

// Wrapper that fails selected operations after a countdown.
class FlakyTier : public StorageTier {
 public:
  explicit FlakyTier(std::string name)
      : name_(std::move(name)), backend_(name_ + "/backend") {}

  std::atomic<int> fail_reads_after{-1};   // -1 = never fail
  std::atomic<int> fail_writes_after{-1};

  const std::string& name() const override { return name_; }

  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes) override {
    if (countdown(fail_writes_after)) {
      throw std::runtime_error("FlakyTier: injected write failure");
    }
    backend_.write(key, data, sim_bytes);
  }

  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes) override {
    if (countdown(fail_reads_after)) {
      throw std::runtime_error("FlakyTier: injected read failure");
    }
    backend_.read(key, out, sim_bytes);
  }

  bool exists(const std::string& key) const override {
    return backend_.exists(key);
  }
  u64 object_size(const std::string& key) const override {
    return backend_.object_size(key);
  }
  void erase(const std::string& key) override { backend_.erase(key); }
  void peek(const std::string& key, std::span<u8> out) override {
    backend_.peek(key, out);
  }
  f64 read_bandwidth() const override { return 1e9; }
  f64 write_bandwidth() const override { return 1e9; }

 private:
  static bool countdown(std::atomic<int>& counter) {
    int value = counter.load();
    while (value >= 0) {
      if (counter.compare_exchange_weak(value, value - 1)) {
        return value == 0;
      }
    }
    return false;
  }

  std::string name_;
  MemoryTier backend_;
};

struct Rig {
  SimClock clock{50000.0};
  VirtualTier vtier;
  GradSource grads;
  std::shared_ptr<FlakyTier> flaky = std::make_shared<FlakyTier>("flaky");
  std::unique_ptr<IoScheduler> io;

  Rig() {
    vtier.add_path(flaky);
    io = std::make_unique<IoScheduler>(clock, &vtier, nullptr, nullptr);
  }

  std::unique_ptr<OffloadEngine> make_engine(bool delayed_grads = true) {
    EngineContext ctx;
    ctx.clock = &clock;
    ctx.vtier = &vtier;
    ctx.io = io.get();
    ctx.grads = &grads;
    EngineOptions opts = EngineOptions::mlp_offload();
    opts.multipath = false;  // single (flaky) path
    opts.delayed_grad_conversion = delayed_grads;
    opts.cpu_update_rate = 1e9;
    opts.convert.fp32_bytes_per_sec = 1e12;
    opts.host_cache_subgroups = 2;
    opts.elem_scale = 1;
    return std::make_unique<OffloadEngine>(
        ctx, opts, make_shard_layout(1024 * 6, 1, 0, 1024));
  }
};

TEST(FailureInjection, InitializeSurfacesWriteFailure) {
  Rig rig;
  auto engine = rig.make_engine();
  rig.flaky->fail_writes_after = 2;
  EXPECT_THROW(engine->initialize(), std::runtime_error);
}

TEST(FailureInjection, FetchFailurePropagatesFromRunUpdate) {
  Rig rig;
  auto engine = rig.make_engine();
  engine->initialize();
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  rig.flaky->fail_reads_after = 1;
  EXPECT_THROW(engine->run_update(0), std::runtime_error);
  // Engine object remains destructible and queryable after the failure
  // (no deadlock, no dangling tasks).
  EXPECT_EQ(engine->num_subgroups(), 6u);
}

TEST(FailureInjection, FlushFailurePropagatesFromRunUpdate) {
  Rig rig;
  auto engine = rig.make_engine();
  engine->initialize();
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  rig.flaky->fail_writes_after = 1;
  EXPECT_THROW(engine->run_update(0), std::runtime_error);
}

TEST(FailureInjection, BaselineGradFlushFailureSurfacesInWait) {
  Rig rig;
  auto engine = rig.make_engine(/*delayed_grads=*/false);
  engine->initialize();
  rig.flaky->fail_writes_after = 1;  // grad flushes during backward
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  EXPECT_THROW(engine->wait_gradient_io(), std::runtime_error);
}

TEST(FailureInjection, RecoveryAfterTransientFailure) {
  Rig rig;
  auto engine = rig.make_engine();
  engine->initialize();
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  rig.flaky->fail_reads_after = 0;  // fail exactly the first fetch
  EXPECT_THROW(engine->run_update(0), std::runtime_error);

  // The failed iteration left some subgroups un-updated; a retry with the
  // fault cleared must complete.
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  const auto report = engine->run_update(0);
  EXPECT_EQ(report.subgroups_processed, 6u);
}

TEST(FailureInjection, MissingSubgroupObjectIsLoudNotSilent) {
  Rig rig;
  auto engine = rig.make_engine();
  engine->initialize();
  rig.flaky->erase(Subgroup::key(0, 3));
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  EXPECT_THROW(engine->run_update(0), std::exception);
}

}  // namespace
}  // namespace mlpo
