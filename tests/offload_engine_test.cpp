// OffloadEngine: initialization/distribution, the update pipeline, caching
// behaviour, numerical correctness against a hand-rolled reference, and
// option validation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/offload_engine.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"
#include "train/adam.hpp"
#include "util/fp16.hpp"

namespace mlpo {
namespace {

constexpr u64 kSubgroupParams = 4096;
constexpr u32 kNumSubgroups = 8;

// Shared scaffolding: a two-path virtual tier over fast emulated devices.
// The scheduler is built after the paths exist (it spawns one dispatch
// channel per path direction at construction).
struct EngineRig {
  SimClock clock{20000.0};
  VirtualTier vtier;
  GradSource grads;
  std::unique_ptr<IoScheduler> io;
  std::unique_ptr<IoScheduler> io_unlocked;

  EngineRig() {
    ThrottleSpec nvme_spec{/*read_bw=*/4e6, /*write_bw=*/3e6};
    nvme_spec.chunk_bytes = 16 * KiB;
    vtier.add_path(std::make_shared<ThrottledTier>(
        "nvme", std::make_shared<MemoryTier>("nvme-back"), clock, nvme_spec));
    ThrottleSpec pfs_spec{2e6, 2e6};
    pfs_spec.chunk_bytes = 16 * KiB;
    vtier.add_path(std::make_shared<ThrottledTier>(
        "pfs", std::make_shared<MemoryTier>("pfs-back"), clock, pfs_spec,
        /*persistent=*/true));
    IoScheduler::Config cfg;
    cfg.queue_depth = 128;
    io = std::make_unique<IoScheduler>(clock, &vtier, nullptr, nullptr, cfg);
    cfg.tier_exclusive_locking = false;
    io_unlocked =
        std::make_unique<IoScheduler>(clock, &vtier, nullptr, nullptr, cfg);
  }

  EngineContext context(int worker = 0, int rank = 0) {
    EngineContext ctx;
    ctx.clock = &clock;
    ctx.vtier = &vtier;
    ctx.io = io.get();
    ctx.cpu_pool = nullptr;
    ctx.grads = &grads;
    ctx.worker_id = worker;
    ctx.rank = rank;
    return ctx;
  }

  /// Context whose scheduler locking matches the engine's flags (the
  /// deepspeed_zero3 baseline runs without tier-exclusive locking).
  EngineContext context_for(const EngineOptions& opts, int worker = 0,
                            int rank = 0) {
    EngineContext ctx = context(worker, rank);
    if (!opts.tier_exclusive_locking) ctx.io = io_unlocked.get();
    return ctx;
  }

  static EngineOptions fast_options(EngineOptions opts) {
    opts.cpu_update_rate = 1e9;  // keep compute sleeps tiny
    opts.convert.fp32_bytes_per_sec = 1e12;
    opts.host_cache_subgroups = 3;
    return opts;
  }

  static ShardLayout layout() {
    return make_shard_layout(kSubgroupParams * kNumSubgroups, 1, 0,
                             kSubgroupParams);
  }

  void run_one_iteration(OffloadEngine& engine, u64 iter) {
    for (u32 id = 0; id < engine.num_subgroups(); ++id) {
      engine.deposit_gradients_async(iter, id, true, true);
    }
    engine.wait_gradient_io();
    engine.run_update(iter);
  }
};

TEST(OffloadEngine, RequiresContextPieces) {
  EngineRig rig;
  EngineContext broken = rig.context();
  broken.vtier = nullptr;
  EXPECT_THROW(
      OffloadEngine(broken, EngineRig::fast_options(EngineOptions::mlp_offload()),
                    EngineRig::layout()),
      std::invalid_argument);
}

TEST(OffloadEngine, RejectsUnsafeCacheDepth) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  opts.prefetch_ahead = 2;
  opts.host_cache_subgroups = 2;  // < prefetch_ahead + 1
  EXPECT_THROW(OffloadEngine(rig.context(), opts, EngineRig::layout()),
               std::invalid_argument);
}

TEST(OffloadEngine, InitializeDistributesPerEq1) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  engine.initialize();
  const auto dist = engine.distribution();
  EXPECT_EQ(dist.host_sim_bytes, 0u);  // cold start: everything offloaded
  const u64 total = dist.path_sim_bytes[0] + dist.path_sim_bytes[1];
  EXPECT_EQ(total, kSubgroupParams * kNumSubgroups * kOptimStateBytesPerParam);
  // 3:2 bandwidth ratio (min(4,3)=3 vs min(2,2)=2): path 0 gets more.
  EXPECT_GT(dist.path_sim_bytes[0], dist.path_sim_bytes[1]);
}

TEST(OffloadEngine, DoubleInitializeThrows) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  engine.initialize();
  EXPECT_THROW(engine.initialize(), std::logic_error);
}

TEST(OffloadEngine, UpdateBeforeInitializeThrows) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  EXPECT_THROW(engine.run_update(0), std::logic_error);
}

TEST(OffloadEngine, SinglePathWhenMultipathDisabled) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::deepspeed_zero3());
  OffloadEngine engine(rig.context_for(opts), opts, EngineRig::layout());
  engine.initialize();
  const auto dist = engine.distribution();
  EXPECT_EQ(dist.path_sim_bytes[1], 0u) << "baseline must not touch the PFS";
  EXPECT_GT(dist.path_sim_bytes[0], 0u);
}

TEST(OffloadEngine, UpdateProcessesEverySubgroupAndAdvancesStep) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  engine.initialize();
  rig.run_one_iteration(engine, 0);
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    EXPECT_EQ(engine.snapshot_subgroup(id).step(), 1u) << id;
  }
  rig.run_one_iteration(engine, 1);
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    EXPECT_EQ(engine.snapshot_subgroup(id).step(), 2u) << id;
  }
}

TEST(OffloadEngine, ReportAccountsAllSubgroups) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  engine.initialize();
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    engine.deposit_gradients_async(0, id, true, true);
  }
  engine.wait_gradient_io();
  const auto report = engine.run_update(0);
  EXPECT_EQ(report.subgroups_processed, kNumSubgroups);
  EXPECT_EQ(report.params_updated, kSubgroupParams * kNumSubgroups);
  EXPECT_EQ(report.traces.size(), kNumSubgroups);
  EXPECT_GT(report.update_seconds, 0.0);
  EXPECT_GT(report.sim_bytes_fetched, 0u);
  EXPECT_GT(report.update_compute_seconds, 0.0);
  // Iteration 0 is cold: every subgroup was fetched.
  EXPECT_EQ(report.host_cache_hits, 0u);
}

TEST(OffloadEngine, CacheHitsAppearFromSecondIteration) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  opts.host_cache_subgroups = 3;
  OffloadEngine engine(rig.context(), opts, EngineRig::layout());
  engine.initialize();
  rig.run_one_iteration(engine, 0);

  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    engine.deposit_gradients_async(1, id, true, true);
  }
  engine.wait_gradient_io();
  const auto report = engine.run_update(1);
  EXPECT_EQ(report.host_cache_hits, 3u)
      << "descending iteration reuses the cached tail";
  // Cached subgroups transferred nothing.
  u32 zero_read_traces = 0;
  for (const auto& t : report.traces) {
    if (t.host_cache_hit) {
      EXPECT_EQ(t.sim_bytes_read, 0u);
      ++zero_read_traces;
    }
  }
  EXPECT_EQ(zero_read_traces, 3u);
}

TEST(OffloadEngine, BaselineNeverHitsCache) {
  EngineRig rig;
  const auto opts = EngineRig::fast_options(EngineOptions::deepspeed_zero3());
  OffloadEngine engine(rig.context_for(opts), opts, EngineRig::layout());
  engine.initialize();
  for (u64 iter = 0; iter < 3; ++iter) {
    for (u32 id = 0; id < engine.num_subgroups(); ++id) {
      engine.deposit_gradients_async(iter, id, true, true);
    }
    engine.wait_gradient_io();
    const auto report = engine.run_update(iter);
    EXPECT_EQ(report.host_cache_hits, 0u) << iter;
    // Thrashing baseline: every subgroup both fetched and flushed, with
    // FP32 gradients inflating fetches to 16 B/param.
    EXPECT_EQ(report.sim_bytes_fetched,
              kSubgroupParams * kNumSubgroups *
                  kOptimStateWithGradBytesPerParam);
    EXPECT_EQ(report.sim_bytes_flushed,
              kSubgroupParams * kNumSubgroups * kOptimStateBytesPerParam);
  }
}

TEST(OffloadEngine, DelayedConversionShrinksFetches) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  // Isolate the gradient effect: no cache reuse, plain ascending schedule.
  opts.host_cache_subgroups = 0;
  opts.update_order_policy = "ascending";
  OffloadEngine engine(rig.context(), opts, EngineRig::layout());
  engine.initialize();
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    engine.deposit_gradients_async(0, id, true, true);
  }
  engine.wait_gradient_io();
  const auto report = engine.run_update(0);
  EXPECT_EQ(report.sim_bytes_fetched,
            kSubgroupParams * kNumSubgroups * kOptimStateBytesPerParam)
      << "12 B/param without FP32 gradients";
}

TEST(OffloadEngine, StateMatchesManualAdamReference) {
  // Full-fidelity run (elem_scale 1): engine state after two iterations
  // must equal a direct Adam simulation on the same gradients.
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  opts.elem_scale = 1;
  const auto layout = EngineRig::layout();
  OffloadEngine engine(rig.context(), opts, layout);
  engine.initialize();
  rig.run_one_iteration(engine, 0);
  rig.run_one_iteration(engine, 1);

  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    // Rebuild the reference: same init, same gradients, two Adam steps.
    const Subgroup got = engine.snapshot_subgroup(id);
    Subgroup ref(id, layout.subgroup_sizes[id], 1);
    // Initial params must match the engine's deterministic init; recover
    // them from a fresh engine instead of duplicating the hash here.
    EngineRig rig2;
    OffloadEngine fresh(rig2.context(), opts, layout);
    fresh.initialize();
    const Subgroup init = fresh.snapshot_subgroup(id);
    std::copy(init.params().begin(), init.params().end(),
              ref.params().begin());

    std::vector<u16> ghalf(ref.real_elems());
    std::vector<f32> g(ref.real_elems());
    for (u32 step = 1; step <= 2; ++step) {
      rig.grads.generate_fp16(0, id, step - 1, ghalf);
      fp16_to_fp32(ghalf, g);
      adam_update_reference(opts.adam, ref.params(), ref.momentum(),
                            ref.variance(), g, step);
    }
    for (std::size_t i = 0; i < ref.real_elems(); ++i) {
      EXPECT_EQ(got.params()[i], ref.params()[i]) << "sg " << id << " i " << i;
      EXPECT_EQ(got.momentum()[i], ref.momentum()[i]) << id << " " << i;
      EXPECT_EQ(got.variance()[i], ref.variance()[i]) << id << " " << i;
    }
  }
}

TEST(OffloadEngine, GradientAccumulationSumsMicroSteps) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  opts.elem_scale = 1;
  const auto layout = EngineRig::layout();
  OffloadEngine engine(rig.context(), opts, layout);
  engine.initialize();
  // Two micro-steps then one update.
  for (u32 m = 0; m < 2; ++m) {
    for (u32 id = 0; id < engine.num_subgroups(); ++id) {
      engine.deposit_gradients_async(m, id, m == 0, m == 1);
    }
    engine.wait_gradient_io();
  }
  engine.run_update(0);

  const u32 id = 0;
  const Subgroup got = engine.snapshot_subgroup(id);

  EngineRig rig2;
  OffloadEngine fresh(rig2.context(), opts, layout);
  fresh.initialize();
  Subgroup ref = fresh.snapshot_subgroup(id);
  std::vector<u16> g0(ref.real_elems()), g1(ref.real_elems());
  rig.grads.generate_fp16(0, id, 0, g0);
  rig.grads.generate_fp16(0, id, 1, g1);
  // FP16 accumulation: decode, add, re-encode, then upscale.
  std::vector<f32> g(ref.real_elems());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = Fp16::decode(Fp16::encode(Fp16::decode(g0[i]) + Fp16::decode(g1[i])));
  }
  adam_update_reference(opts.adam, ref.params(), ref.momentum(),
                        ref.variance(), g, 1);
  for (std::size_t i = 0; i < ref.real_elems(); ++i) {
    EXPECT_EQ(got.params()[i], ref.params()[i]) << i;
  }
}

TEST(OffloadEngine, NoNansEscapeThePipeline) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  engine.initialize();
  for (u64 iter = 0; iter < 4; ++iter) rig.run_one_iteration(engine, iter);
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    const Subgroup sg = engine.snapshot_subgroup(id);
    for (const f32 x : sg.params()) EXPECT_TRUE(std::isfinite(x));
    for (const f32 x : sg.momentum()) EXPECT_TRUE(std::isfinite(x));
    for (const f32 x : sg.variance()) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(OffloadEngine, StaticPlacementIgnoresObservations) {
  // With the eq1_static policy the quotas must stay at the seeded values
  // no matter what the transfers observe.
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  opts.placement_policy = "eq1_static";
  OffloadEngine engine(rig.context(), opts, EngineRig::layout());
  engine.initialize();
  const auto seeded = engine.placement().quotas();
  for (u64 iter = 0; iter < 3; ++iter) rig.run_one_iteration(engine, iter);
  EXPECT_EQ(engine.placement().quotas(), seeded);
  EXPECT_EQ(engine.placement().bandwidths(),
            rig.vtier.path_bandwidths());
}

TEST(OffloadEngine, AdaptivePlacementUpdatesEstimates) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  OffloadEngine engine(rig.context(), opts, EngineRig::layout());
  engine.initialize();
  const auto seeded = engine.placement().bandwidths();
  rig.run_one_iteration(engine, 0);
  // Observed bandwidths replace the microbenchmark seeds after the first
  // transfers (they include queueing, so they differ from the nominal).
  EXPECT_NE(engine.placement().bandwidths(), seeded);
}

TEST(OffloadEngine, SelectablePoliciesProduceRunnableScenarios) {
  // Every registry combination is a runnable engine configuration, not
  // just a constructible one (the equivalence suite checks the bits; this
  // checks the pipeline mechanics under each schedule).
  for (const char* placement : {"round_robin", "bandwidth_greedy",
                                "contention_aware"}) {
    for (const char* order : {"ascending", "host_resident_first"}) {
      EngineRig rig;
      auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
      opts.placement_policy = placement;
      opts.update_order_policy = order;
      OffloadEngine engine(rig.context(), opts, EngineRig::layout());
      engine.initialize();
      for (u64 iter = 0; iter < 2; ++iter) {
        rig.run_one_iteration(engine, iter);
      }
      for (u32 id = 0; id < engine.num_subgroups(); ++id) {
        EXPECT_EQ(engine.snapshot_subgroup(id).step(), 2u)
            << placement << "/" << order << " sg " << id;
      }
    }
  }
}

TEST(OffloadEngine, HostResidentFirstHitsEverythingTheCacheHolds) {
  EngineRig rig;
  auto opts = EngineRig::fast_options(EngineOptions::mlp_offload());
  opts.update_order_policy = "host_resident_first";
  OffloadEngine engine(rig.context(), opts, EngineRig::layout());
  engine.initialize();
  rig.run_one_iteration(engine, 0);
  ASSERT_EQ(engine.host_resident().size(), 3u);

  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    engine.deposit_gradients_async(1, id, true, true);
  }
  engine.wait_gradient_io();
  const auto report = engine.run_update(1);
  EXPECT_EQ(report.host_cache_hits, 3u)
      << "every resident subgroup must be consumed before eviction";
}

TEST(OffloadEngine, DistributionConservesTotalBytes) {
  EngineRig rig;
  OffloadEngine engine(rig.context(),
                       EngineRig::fast_options(EngineOptions::mlp_offload()),
                       EngineRig::layout());
  engine.initialize();
  const u64 expected =
      kSubgroupParams * kNumSubgroups * kOptimStateBytesPerParam;
  for (u64 iter = 0; iter < 3; ++iter) {
    rig.run_one_iteration(engine, iter);
    const auto dist = engine.distribution();
    const u64 total = dist.host_sim_bytes +
                      std::accumulate(dist.path_sim_bytes.begin(),
                                      dist.path_sim_bytes.end(), u64{0});
    EXPECT_EQ(total, expected) << "iteration " << iter;
    EXPECT_GT(dist.host_sim_bytes, 0u) << "cache keeps the tail resident";
  }
  EXPECT_EQ(engine.host_resident().size(), 3u);
}

}  // namespace
}  // namespace mlpo
