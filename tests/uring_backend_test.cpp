// Real async storage backend suite: AsyncFileBackend on both mechanisms
// (io_uring when the kernel offers it, pread/pwrite fallback always),
// UringFileTier sync + async round trips, O_DIRECT handling, and the
// file-format interchange contract with FileTier.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <chrono>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "io/uring_backend.hpp"
#include "tiers/file_tier.hpp"
#include "util/key_escape.hpp"

namespace mlpo {
namespace {

namespace fs = std::filesystem;

fs::path unique_dir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path p = fs::temp_directory_path() /
               ("mlpo_uring_" + tag + "_" + info->name() + "_" +
                std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

std::vector<u8> pattern_bytes(std::size_t n, u8 seed) {
  std::vector<u8> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<u8>(seed + i * 131u + (i >> 8));
  }
  return v;
}

// --- AsyncFileBackend on raw fds -------------------------------------------

class AsyncFileBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  // Param = force_fallback. The uring variant is skipped on kernels that
  // refuse io_uring_setup (seccomp'd CI), the fallback variant always runs.
  void SetUp() override {
    if (!GetParam() && !AsyncFileBackend::kernel_supports_uring()) {
      GTEST_SKIP() << "kernel refuses io_uring; fallback variant covers this";
    }
    dir_ = unique_dir(GetParam() ? "fb" : "ur");
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  AsyncFileBackend::Options opts() const {
    AsyncFileBackend::Options o;
    o.queue_depth = 8;
    o.fallback_workers = 2;
    o.force_fallback = GetParam();
    return o;
  }

  fs::path dir_;
};

TEST_P(AsyncFileBackendTest, WriteThenReadRoundTrips) {
  AsyncFileBackend be(opts());
  EXPECT_EQ(be.using_uring(), !GetParam() &&
                                  AsyncFileBackend::kernel_supports_uring());
  const fs::path file = dir_ / "blob";
  const int fd = ::open(file.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);

  const auto payload = pattern_bytes(257 * 1024 + 13, 7);
  std::promise<std::pair<int, u64>> wp;
  be.write(fd, payload.data(), payload.size(), 0,
           [&](int err, u64 n) { wp.set_value({err, n}); });
  const auto [werr, wn] = wp.get_future().get();
  EXPECT_EQ(werr, 0);
  EXPECT_EQ(wn, payload.size());

  std::vector<u8> back(payload.size(), 0);
  std::promise<std::pair<int, u64>> rp;
  be.read(fd, back.data(), back.size(), 0,
          [&](int err, u64 n) { rp.set_value({err, n}); });
  const auto [rerr, rn] = rp.get_future().get();
  EXPECT_EQ(rerr, 0);
  EXPECT_EQ(rn, payload.size());
  EXPECT_EQ(back, payload);
  ::close(fd);
}

TEST_P(AsyncFileBackendTest, ConcurrentOpsAllComplete) {
  AsyncFileBackend be(opts());
  const fs::path file = dir_ / "strided";
  const int fd = ::open(file.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);

  // More ops than the queue depth so the slab/queue applies backpressure.
  constexpr int kOps = 32;
  constexpr u64 kChunk = 64 * 1024;
  std::vector<std::vector<u8>> chunks;
  std::vector<std::future<int>> done;
  for (int i = 0; i < kOps; ++i) {
    chunks.push_back(pattern_bytes(kChunk, static_cast<u8>(i)));
    auto p = std::make_shared<std::promise<int>>();
    done.push_back(p->get_future());
    be.write(fd, chunks.back().data(), kChunk, i * kChunk,
             [p](int err, u64) { p->set_value(err); });
  }
  for (auto& f : done) EXPECT_EQ(f.get(), 0);
  EXPECT_EQ(be.in_flight(), 0u);

  for (int i = 0; i < kOps; ++i) {
    std::vector<u8> back(kChunk);
    std::promise<int> p;
    be.read(fd, back.data(), kChunk, i * kChunk,
            [&](int err, u64) { p.set_value(err); });
    EXPECT_EQ(p.get_future().get(), 0);
    EXPECT_EQ(back, chunks[i]);
  }
  ::close(fd);
}

TEST_P(AsyncFileBackendTest, MinLenAllowsEofTruncatedTail) {
  AsyncFileBackend be(opts());
  const fs::path file = dir_ / "tail";
  const int fd = ::open(file.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  const auto payload = pattern_bytes(5000, 3);  // not a 4096 multiple
  ASSERT_EQ(::pwrite(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));

  // Block-rounded read (8192) with min_len = real size: the EOF-truncated
  // tail must be reported as success with exactly the real bytes.
  std::vector<u8> back(8192, 0xee);
  std::promise<std::pair<int, u64>> p;
  be.read(fd, back.data(), back.size(), 0,
          [&](int err, u64 n) { p.set_value({err, n}); },
          /*min_len=*/payload.size());
  const auto [err, n] = p.get_future().get();
  EXPECT_EQ(err, 0);
  EXPECT_EQ(n, payload.size());
  EXPECT_EQ(std::memcmp(back.data(), payload.data(), payload.size()), 0);

  // Without min_len the same short read is an error (EIO-style truncation
  // must not be silent).
  std::promise<std::pair<int, u64>> p2;
  be.read(fd, back.data(), back.size(), 0,
          [&](int err2, u64 n2) { p2.set_value({err2, n2}); });
  EXPECT_NE(p2.get_future().get().first, 0);
  ::close(fd);
}

TEST_P(AsyncFileBackendTest, ReadErrorIsReportedNotSwallowed) {
  AsyncFileBackend be(opts());
  std::vector<u8> buf(64);
  std::promise<int> p;
  be.read(/*fd=*/-1, buf.data(), buf.size(), 0,
          [&](int err, u64) { p.set_value(err); });
  EXPECT_EQ(p.get_future().get(), EBADF);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, AsyncFileBackendTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "fallback" : "uring";
                         });

// --- UringFileTier ----------------------------------------------------------

struct TierVariant {
  bool force_fallback;
  bool direct;
};

class UringFileTierTest : public ::testing::TestWithParam<TierVariant> {
 protected:
  void SetUp() override {
    const TierVariant v = GetParam();
    if (!v.force_fallback && !AsyncFileBackend::kernel_supports_uring()) {
      GTEST_SKIP() << "kernel refuses io_uring";
    }
    dir_ = unique_dir(std::string(v.force_fallback ? "fb" : "ur") +
                      (v.direct ? "_direct" : ""));
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  UringFileTier make_tier() const {
    UringFileTier::Options o;
    o.queue_depth = 8;
    o.fallback_workers = 2;
    o.force_fallback = GetParam().force_fallback;
    o.direct = GetParam().direct;
    return UringFileTier("nvme0", dir_, o);
  }

  fs::path dir_;
};

TEST_P(UringFileTierTest, SyncRoundTripAndMetadata) {
  UringFileTier tier = make_tier();
  // Unaligned size on purpose — O_DIRECT variants must bounce correctly.
  const auto payload = pattern_bytes(3 * 4096 + 77, 11);
  tier.write("sg/0/state", payload);
  EXPECT_TRUE(tier.exists("sg/0/state"));
  EXPECT_EQ(tier.object_size("sg/0/state"), payload.size());

  std::vector<u8> back(payload.size(), 0);
  tier.read("sg/0/state", back);
  EXPECT_EQ(back, payload);

  // Overwrite with a different (smaller) object: tmp+rename replacement
  // must leave exactly the new bytes, never a stale tail.
  const auto smaller = pattern_bytes(1000, 42);
  tier.write("sg/0/state", smaller);
  EXPECT_EQ(tier.object_size("sg/0/state"), smaller.size());
  std::vector<u8> back2(smaller.size(), 0);
  tier.read("sg/0/state", back2);
  EXPECT_EQ(back2, smaller);

  tier.erase("sg/0/state");
  EXPECT_FALSE(tier.exists("sg/0/state"));
  EXPECT_THROW(tier.read("sg/0/state", back2), std::out_of_range);
}

TEST_P(UringFileTierTest, AsyncRoundTripSettlesOffThread) {
  UringFileTier tier = make_tier();
  ASSERT_TRUE(tier.supports_async());
  const auto payload = pattern_bytes(2 * 4096 + 5, 23);

  std::promise<std::exception_ptr> wp;
  tier.write_async("k", payload, 0,
                   [&](std::exception_ptr e) { wp.set_value(e); });
  EXPECT_EQ(wp.get_future().get(), nullptr);

  std::vector<u8> back(payload.size(), 0);
  std::promise<std::exception_ptr> rp;
  tier.read_async("k", back, 0,
                  [&](std::exception_ptr e) { rp.set_value(e); });
  EXPECT_EQ(rp.get_future().get(), nullptr);
  EXPECT_EQ(back, payload);

  // Async read of a missing key delivers the exception through the
  // callback, not a throw on the submitting thread.
  std::promise<std::exception_ptr> mp;
  tier.read_async("missing", back, 0,
                  [&](std::exception_ptr e) { mp.set_value(e); });
  std::exception_ptr err = mp.get_future().get();
  ASSERT_NE(err, nullptr);
  EXPECT_THROW(std::rethrow_exception(err), std::out_of_range);
}

TEST_P(UringFileTierTest, SlashAndUnderscoreKeysDoNotCollide) {
  // Regression for the '/'→'_' aliasing bug: distinct keys must map to
  // distinct files under the injective escape scheme.
  UringFileTier tier = make_tier();
  const auto a = pattern_bytes(512, 1);
  const auto b = pattern_bytes(512, 2);
  tier.write("a/b", a);
  tier.write("a_b", b);
  std::vector<u8> back(512);
  tier.read("a/b", back);
  EXPECT_EQ(back, a);
  tier.read("a_b", back);
  EXPECT_EQ(back, b);
  tier.erase("a/b");
  EXPECT_FALSE(tier.exists("a/b"));
  EXPECT_TRUE(tier.exists("a_b"));
}

TEST_P(UringFileTierTest, BouncePoolServesDirectIoWithoutHeapChurn) {
  UringFileTier tier = make_tier();
  const auto payload = pattern_bytes(4096 + 1, 9);  // forces a bounce if direct
  for (int i = 0; i < 4; ++i) {
    tier.write("churn", payload);
    std::vector<u8> back(payload.size());
    tier.read("churn", back);
    EXPECT_EQ(back, payload);
  }
  // Transfers within the bounce slab must never fall back to the heap —
  // this is the same alloc-churn contract the engines are gated on.
  EXPECT_EQ(tier.bounce_stats().heap_fallbacks, 0u);
  // A sync call returns when its completion fires, but the completion
  // closure (which owns the bounce lease) is torn down moments later on
  // the backend thread — wait for that teardown before checking balance.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (tier.bounce_stats().bytes_in_use != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(tier.bounce_stats().bytes_in_use, 0u);
}

TEST_P(UringFileTierTest, FileFormatInterchangeableWithFileTier) {
  // Objects written by FileTier must read back through UringFileTier over
  // the same root, and vice versa — same escaping, same plain-file layout.
  const auto payload = pattern_bytes(6 * 4096 + 321, 55);
  {
    FileTier plain("plain", dir_);
    plain.write("model/layer.0/qkv", payload);
  }
  UringFileTier tier = make_tier();
  ASSERT_TRUE(tier.exists("model/layer.0/qkv"));
  ASSERT_EQ(tier.object_size("model/layer.0/qkv"), payload.size());
  std::vector<u8> back(payload.size(), 0);
  tier.read("model/layer.0/qkv", back);
  EXPECT_EQ(back, payload);

  const auto reply = pattern_bytes(2048, 66);
  tier.write("model/layer.1/proj", reply);
  FileTier plain("plain", dir_);
  ASSERT_TRUE(plain.exists("model/layer.1/proj"));
  std::vector<u8> back2(reply.size(), 0);
  plain.read("model/layer.1/proj", back2);
  EXPECT_EQ(back2, reply);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, UringFileTierTest,
    ::testing::Values(TierVariant{false, false}, TierVariant{true, false},
                      TierVariant{false, true}, TierVariant{true, true}),
    [](const auto& info) {
      return std::string(info.param.force_fallback ? "fallback" : "uring") +
             (info.param.direct ? "Direct" : "");
    });

}  // namespace
}  // namespace mlpo
