// Trainer facade + JSON configuration surface.
#include <gtest/gtest.h>

#include "runtime/trainer.hpp"

namespace mlpo {
namespace {

TrainerConfig fast_config() {
  TrainerConfig cfg;
  cfg.model = ModelConfig{"tiny", 4, 4096, 32};
  cfg.elem_scale = 65536;
  cfg.time_scale = 2000.0;
  cfg.host_cache_override = 2;
  return cfg;
}

TEST(Trainer, EndToEndRun) {
  Trainer trainer(fast_config());
  trainer.initialize();
  const auto reports = trainer.run(3, 1);
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) {
    EXPECT_GT(r.iteration_seconds(), 0.0);
    EXPECT_EQ(r.params_updated, fast_config().model.parameters());
  }
}

TEST(Trainer, DistributionConservesBytes) {
  Trainer trainer(fast_config());
  trainer.initialize();
  trainer.run(2, 0);
  const auto dist = trainer.distribution();
  u64 total = dist.host_sim_bytes;
  for (const u64 b : dist.path_sim_bytes) total += b;
  EXPECT_EQ(total,
            fast_config().model.parameters() * kOptimStateBytesPerParam);
}

TEST(TrainerConfigJson, DefaultsFromEmptyObject) {
  const auto cfg = trainer_config_from_json(std::string("{}"));
  EXPECT_EQ(cfg.model.name, "40B");
  EXPECT_EQ(cfg.nodes, 1u);
  EXPECT_TRUE(cfg.engine.multipath);
}

TEST(TrainerConfigJson, FullDocumentParsed) {
  const auto cfg = trainer_config_from_json(std::string(R"({
    "model": "70B",
    "testbed": "testbed2",
    "nodes": 2,
    "microbatch": 2,
    "accum_steps": 4,
    "subgroup_params": 50000000,
    "elem_scale": 4096,
    "time_scale": 500,
    "mlp_offload": {"enabled": true, "tier_exclusive_locking": false}
  })"));
  EXPECT_EQ(cfg.model.name, "70B");
  EXPECT_EQ(cfg.testbed.gpus_per_node, 4u);
  EXPECT_EQ(cfg.testbed.cpu_cores, 32u);  // testbed2
  EXPECT_EQ(cfg.nodes, 2u);
  EXPECT_EQ(cfg.microbatch, 2u);
  EXPECT_EQ(cfg.accum_steps, 4u);
  EXPECT_EQ(cfg.subgroup_params, 50'000'000u);
  EXPECT_EQ(cfg.elem_scale, 4096u);
  EXPECT_EQ(cfg.time_scale, 500.0);
  EXPECT_TRUE(cfg.engine.multipath);
  EXPECT_FALSE(cfg.engine.tier_exclusive_locking);
}

TEST(TrainerConfigJson, DisabledSelectsBaselinePreset) {
  const auto cfg = trainer_config_from_json(
      std::string(R"({"mlp_offload": {"enabled": false}})"));
  EXPECT_FALSE(cfg.engine.multipath);
  EXPECT_EQ(cfg.engine.update_order_policy, "ascending");
  EXPECT_EQ(cfg.engine.placement_policy, "eq1_static");
  EXPECT_FALSE(cfg.engine.delayed_grad_conversion);
  EXPECT_FALSE(cfg.engine.tier_exclusive_locking);
}

TEST(TrainerConfigJson, AblationOverridesOnBaseline) {
  // Legacy boolean spelling maps onto the order-policy selection.
  const auto cfg = trainer_config_from_json(std::string(
      R"({"mlp_offload": {"enabled": false, "cache_friendly_order": true}})"));
  EXPECT_EQ(cfg.engine.update_order_policy, "alternating_cache_friendly");
  EXPECT_FALSE(cfg.engine.multipath);
}

TEST(TrainerConfigJson, AdaptivePlacementToggle) {
  EXPECT_EQ(trainer_config_from_json(std::string("{}"))
                .engine.placement_policy,
            "adaptive_ema");
  const auto cfg = trainer_config_from_json(std::string(
      R"({"mlp_offload": {"adaptive_placement": false}})"));
  EXPECT_EQ(cfg.engine.placement_policy, "eq1_static");
}

TEST(TrainerConfigJson, PolicyNamesSelectedDirectly) {
  const auto cfg = trainer_config_from_json(std::string(R"({
    "mlp_offload": {
      "placement_policy": "bandwidth_greedy",
      "update_order_policy": "host_resident_first"
    }
  })"));
  EXPECT_EQ(cfg.engine.placement_policy, "bandwidth_greedy");
  EXPECT_EQ(cfg.engine.update_order_policy, "host_resident_first");
}

TEST(TrainerConfigJson, ExplicitPolicyNamesBeatLegacyBools) {
  const auto cfg = trainer_config_from_json(std::string(R"({
    "mlp_offload": {
      "placement_policy": "bandwidth_greedy",
      "adaptive_placement": true,
      "update_order_policy": "host_resident_first",
      "cache_friendly_order": false
    }
  })"));
  EXPECT_EQ(cfg.engine.placement_policy, "bandwidth_greedy");
  EXPECT_EQ(cfg.engine.update_order_policy, "host_resident_first");
}

TEST(TrainerConfigJson, PresetAndEngineKindKeys) {
  const auto cfg = trainer_config_from_json(std::string(
      R"({"mlp_offload": {"preset": "mp_skip_grads"}})"));
  EXPECT_TRUE(cfg.engine.delayed_grad_conversion);
  EXPECT_FALSE(cfg.engine.tier_exclusive_locking);

  const auto cpu = trainer_config_from_json(
      std::string(R"({"mlp_offload": {"engine": "cpu_only"}})"));
  EXPECT_EQ(cpu.engine.engine, "cpu_only");
}

TEST(TrainerConfigJson, UnknownPolicyNamesAreLoud) {
  try {
    trainer_config_from_json(std::string(
        R"({"mlp_offload": {"placement_policy": "psychic"}})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("psychic"), std::string::npos) << what;
    EXPECT_NE(what.find("eq1_static"), std::string::npos)
        << "error must list registered policies: " << what;
  }
  EXPECT_THROW(trainer_config_from_json(std::string(
                   R"({"mlp_offload": {"update_order_policy": "random"}})")),
               std::invalid_argument);
  EXPECT_THROW(trainer_config_from_json(std::string(
                   R"({"mlp_offload": {"preset": "turbo"}})")),
               std::invalid_argument);
  EXPECT_THROW(trainer_config_from_json(std::string(
                   R"({"mlp_offload": {"engine": "tensornvme"}})")),
               std::invalid_argument);
}

TEST(TrainerConfigJson, ExecutionModeKeysParsedAndValidated) {
  EXPECT_EQ(trainer_config_from_json(std::string("{}")).engine.execution,
            "linear");
  const auto cfg = trainer_config_from_json(std::string(
      R"({"mlp_offload": {"execution": "graph", "graph_workers": 6}})"));
  EXPECT_EQ(cfg.engine.execution, "graph");
  EXPECT_EQ(cfg.engine.graph_workers, 6u);
  EXPECT_EQ(cfg.engine.resolved_graph_workers(), 6u);
  try {
    trainer_config_from_json(std::string(
        R"({"mlp_offload": {"execution": "quantum"}})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum"), std::string::npos) << what;
    EXPECT_NE(what.find("linear"), std::string::npos)
        << "error must list the known modes: " << what;
  }
}

TEST(TrainerConfigJson, NoPfsForcesSinglePath) {
  const auto cfg =
      trainer_config_from_json(std::string(R"({"attach_pfs": false})"));
  EXPECT_FALSE(cfg.attach_pfs);
  EXPECT_FALSE(cfg.engine.multipath);
}

TEST(TrainerConfigJson, ErrorsAreLoud) {
  EXPECT_THROW(trainer_config_from_json(std::string("[]")),
               std::invalid_argument);
  EXPECT_THROW(trainer_config_from_json(std::string(R"({"model": "3B"})")),
               std::out_of_range);
  EXPECT_THROW(
      trainer_config_from_json(std::string(R"({"testbed": "laptop"})")),
      std::invalid_argument);
  EXPECT_THROW(trainer_config_from_json(std::string("not json")),
               json::ParseError);
}

TEST(TrainerConfigJson, ConfiguredTrainerRuns) {
  auto cfg = trainer_config_from_json(std::string(R"({
    "elem_scale": 65536, "time_scale": 2000,
    "mlp_offload": {"enabled": true}
  })"));
  cfg.model = ModelConfig{"tiny", 4, 4096, 32};
  cfg.host_cache_override = 2;
  Trainer trainer(cfg);
  trainer.initialize();
  const auto reports = trainer.run(1);
  EXPECT_EQ(reports.size(), 1u);
}

}  // namespace
}  // namespace mlpo
