// Storage backends: MemoryTier, FileTier, ThrottledTier timing/contention.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "tiers/file_tier.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo {
namespace {

std::vector<u8> make_data(std::size_t n, u8 seed = 1) {
  std::vector<u8> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<u8>(seed + i * 13);
  return v;
}

template <typename TierT>
void exercise_basic_blob_semantics(TierT& tier) {
  const auto data = make_data(256);
  EXPECT_FALSE(tier.exists("a"));
  tier.write("a", data);
  EXPECT_TRUE(tier.exists("a"));
  EXPECT_EQ(tier.object_size("a"), 256u);

  std::vector<u8> out(256);
  tier.read("a", out);
  EXPECT_EQ(out, data);

  // Overwrite replaces content and size.
  const auto data2 = make_data(64, 9);
  tier.write("a", data2);
  EXPECT_EQ(tier.object_size("a"), 64u);
  std::vector<u8> out2(64);
  tier.read("a", out2);
  EXPECT_EQ(out2, data2);

  tier.erase("a");
  EXPECT_FALSE(tier.exists("a"));
  EXPECT_THROW(tier.read("a", out), std::out_of_range);
  EXPECT_THROW(tier.object_size("a"), std::out_of_range);
  // Erase of a missing key is a no-op.
  tier.erase("never-existed");
}

TEST(MemoryTier, BasicBlobSemantics) {
  MemoryTier tier("mem");
  exercise_basic_blob_semantics(tier);
}

TEST(MemoryTier, SizeMismatchThrows) {
  MemoryTier tier("mem");
  tier.write("k", make_data(16));
  std::vector<u8> small(8);
  EXPECT_THROW(tier.read("k", small), std::invalid_argument);
}

TEST(MemoryTier, StatsUseSimBytes) {
  MemoryTier tier("mem");
  tier.write("k", make_data(10), /*sim_bytes=*/1000000);
  std::vector<u8> out(10);
  tier.read("k", out, 2000000);
  EXPECT_EQ(tier.stats().bytes_written.load(), 1000000u);
  EXPECT_EQ(tier.stats().bytes_read.load(), 2000000u);
  EXPECT_EQ(tier.stats().writes.load(), 1u);
  EXPECT_EQ(tier.stats().reads.load(), 1u);
}

TEST(MemoryTier, AccountsObjects) {
  MemoryTier tier("mem");
  tier.write("a", make_data(100));
  tier.write("b", make_data(50));
  EXPECT_EQ(tier.object_count(), 2u);
  EXPECT_EQ(tier.stored_bytes(), 150u);
}

TEST(FileTier, BasicBlobSemantics) {
  const auto root =
      std::filesystem::temp_directory_path() / "mlpo_file_tier_test";
  std::filesystem::remove_all(root);
  FileTier tier("disk", root);
  exercise_basic_blob_semantics(tier);
  EXPECT_TRUE(tier.persistent());
  std::filesystem::remove_all(root);
}

TEST(FileTier, KeysWithSlashesMapToFiles) {
  const auto root =
      std::filesystem::temp_directory_path() / "mlpo_file_tier_slash";
  std::filesystem::remove_all(root);
  FileTier tier("disk", root);
  const auto data = make_data(32);
  tier.write("sg/0/17", data);
  EXPECT_TRUE(tier.exists("sg/0/17"));
  std::vector<u8> out(32);
  tier.read("sg/0/17", out);
  EXPECT_EQ(out, data);
  std::filesystem::remove_all(root);
}

TEST(ThrottledTier, TransferTimeMatchesBandwidth) {
  // 1000 vsec/sec keeps the bounded transfers at 10-20ms of real time, so
  // scheduler jitter and sanitizer slowdowns can't blow the upper bounds.
  SimClock clock(1000.0);
  ThrottleSpec spec{/*read_bw=*/1000.0, /*write_bw=*/500.0};
  spec.chunk_bytes = 100;
  ThrottledTier tier("nvme", std::make_shared<MemoryTier>("back"), clock, spec);

  const auto data = make_data(100);
  const f64 t0 = clock.now();
  tier.write("k", data, /*sim_bytes=*/10000);  // 20 vsec at 500 B/s
  const f64 w = clock.now() - t0;
  EXPECT_GE(w, 19.0);
  EXPECT_LT(w, 35.0);

  std::vector<u8> out(100);
  const f64 t1 = clock.now();
  tier.read("k", out, 10000);  // 10 vsec at 1000 B/s
  const f64 r = clock.now() - t1;
  EXPECT_GE(r, 9.5);
  EXPECT_LT(r, 20.0);
  EXPECT_EQ(out, data);
}

TEST(ThrottledTier, StatsAccumulateTimeAndBytes) {
  SimClock clock(1000.0);
  ThrottleSpec spec{1000.0, 1000.0};
  ThrottledTier tier("t", std::make_shared<MemoryTier>("back"), clock, spec);
  tier.write("k", make_data(10), 2000);
  std::vector<u8> out(10);
  tier.read("k", out, 3000);
  EXPECT_EQ(tier.stats().bytes_written.load(), 2000u);
  EXPECT_EQ(tier.stats().bytes_read.load(), 3000u);
  EXPECT_GT(tier.stats().write_seconds(), 1.5);
  EXPECT_GT(tier.stats().read_seconds(), 2.5);
}

TEST(ThrottledTier, PeekBypassesThrottle) {
  SimClock clock(1000.0);
  ThrottleSpec spec{10.0, 10.0};  // grindingly slow channel
  ThrottledTier tier("t", std::make_shared<MemoryTier>("back"), clock, spec);
  const auto data = make_data(64);
  tier.write("k", data, 1);  // tiny sim cost
  std::vector<u8> out(64);
  const f64 t0 = clock.now();
  tier.peek("k", out);
  EXPECT_LT(clock.now() - t0, 2.0);
  EXPECT_EQ(out, data);
}

TEST(ThrottledTier, MultiActorPenaltySlowsConcurrentRequests) {
  // Two concurrent writers with a 100% per-extra-actor penalty should take
  // roughly twice as long per byte as serialized writers.
  SimClock clock(1000.0);
  ThrottleSpec spec{1e6, 1000.0};
  spec.chunk_bytes = 250;
  spec.multi_actor_penalty = 1.0;
  ThrottledTier tier("t", std::make_shared<MemoryTier>("back"), clock, spec);

  const auto data = make_data(100);
  const f64 t0 = clock.now();
  std::thread a([&] { tier.write("a", data, 20000); });
  std::thread b([&] { tier.write("b", data, 20000); });
  a.join();
  b.join();
  const f64 concurrent = clock.now() - t0;
  // Serial baseline: 2 x 20 vsec. With penalty 1.0 and both in flight,
  // each byte costs 2x -> ~80 vsec total (minus start-up skew where only
  // one writer is active).
  EXPECT_GE(concurrent, 60.0);
  EXPECT_LT(concurrent, 110.0);
}

TEST(ThrottledTier, DuplexPenaltySlowsOpposingTraffic) {
  SimClock clock(1000.0);
  ThrottleSpec spec{1000.0, 1000.0};
  spec.chunk_bytes = 200;
  spec.duplex_penalty = 1.0;  // halves effective rate when duplex
  ThrottledTier tier("t", std::make_shared<MemoryTier>("back"), clock, spec);
  tier.write("k", make_data(100), 1);  // seed object, negligible time

  std::vector<u8> out(100);
  const auto data = make_data(100);
  const f64 t0 = clock.now();
  std::thread reader([&] { tier.read("k", out, 20000); });
  std::thread writer([&] { tier.write("k2", data, 20000); });
  reader.join();
  writer.join();
  const f64 elapsed = clock.now() - t0;
  // Without penalty both finish in ~20 vsec (independent channels); with
  // 100% duplex penalty each needs ~40 vsec (minus start-up skew).
  EXPECT_GE(elapsed, 30.0);
  EXPECT_LT(elapsed, 70.0);
}

TEST(ThrottledTier, BandwidthAdjustable) {
  SimClock clock(1000.0);
  ThrottleSpec spec{1000.0, 1000.0};
  ThrottledTier tier("t", std::make_shared<MemoryTier>("back"), clock, spec);
  EXPECT_EQ(tier.read_bandwidth(), 1000.0);
  tier.set_read_bandwidth(250.0);
  tier.set_write_bandwidth(125.0);
  EXPECT_EQ(tier.read_bandwidth(), 250.0);
  EXPECT_EQ(tier.write_bandwidth(), 125.0);
}

}  // namespace
}  // namespace mlpo
