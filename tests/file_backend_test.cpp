// End-to-end engine run over REAL files: the production (non-emulated)
// path. FileTier-backed virtual tier, genuine POSIX I/O, wall-clock time
// (time_scale 1) — proves the engine logic is backend-agnostic and that
// the emulated runs exercise the same code paths as real storage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/offload_engine.hpp"
#include "tiers/file_tier.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

namespace fs = std::filesystem;

class FileBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each TEST as its own process in parallel; the directory
    // must be unique per test instance or concurrent SetUps clobber each
    // other.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::temp_directory_path() /
            (std::string("mlpo_fbt_") + info->name() + "_" +
             std::to_string(::getpid()));
    fs::remove_all(root_);
    vtier_.add_path(std::make_shared<FileTier>("disk0", root_ / "disk0"));
    vtier_.add_path(std::make_shared<FileTier>("disk1", root_ / "disk1"));
    io_ = std::make_unique<IoScheduler>(clock_, &vtier_, nullptr, nullptr);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  SimClock clock_{1.0};  // genuine wall-clock time
  VirtualTier vtier_;
  GradSource grads_;
  std::unique_ptr<IoScheduler> io_;
};

TEST_F(FileBackendTest, FullTrainingLoopOverRealFiles) {
  EngineContext ctx;
  ctx.clock = &clock_;
  ctx.vtier = &vtier_;
  ctx.io = io_.get();
  ctx.grads = &grads_;

  EngineOptions opts = EngineOptions::mlp_offload();
  opts.elem_scale = 1;  // full fidelity; real bytes == simulated bytes
  opts.host_cache_subgroups = 2;
  opts.cpu_update_rate = 1e12;  // don't sleep on compute
  opts.convert.fp32_bytes_per_sec = 1e15;

  const auto layout = make_shard_layout(1024 * 6, 1, 0, 1024);
  OffloadEngine engine(ctx, opts, layout);
  engine.initialize();

  // Subgroup files must exist on disk after the initial distribution.
  std::size_t files = 0;
  for (const auto& dir : {root_ / "disk0", root_ / "disk1"}) {
    if (fs::exists(dir)) {
      for (auto it = fs::directory_iterator(dir);
           it != fs::directory_iterator(); ++it) {
        ++files;
      }
    }
  }
  EXPECT_EQ(files, 6u);

  for (u64 iter = 0; iter < 3; ++iter) {
    for (u32 id = 0; id < engine.num_subgroups(); ++id) {
      engine.deposit_gradients_async(iter, id, true, true);
    }
    engine.wait_gradient_io();
    const auto report = engine.run_update(iter);
    EXPECT_EQ(report.subgroups_processed, 6u);
  }
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    EXPECT_EQ(engine.snapshot_subgroup(id).step(), 3u) << id;
  }
}

TEST_F(FileBackendTest, StateMatchesEmulatedBackend) {
  // The same schedule over files and over memory tiers must produce
  // identical optimizer state — storage backends cannot affect math.
  const auto layout = make_shard_layout(512 * 4, 1, 0, 512);
  EngineOptions opts = EngineOptions::mlp_offload();
  opts.elem_scale = 1;
  opts.host_cache_subgroups = 2;
  opts.cpu_update_rate = 1e12;
  opts.convert.fp32_bytes_per_sec = 1e15;

  const auto run = [&](VirtualTier& vtier, IoScheduler& io) {
    EngineContext ctx;
    ctx.clock = &clock_;
    ctx.vtier = &vtier;
    ctx.io = &io;
    ctx.grads = &grads_;
    OffloadEngine engine(ctx, opts, layout);
    engine.initialize();
    for (u64 iter = 0; iter < 2; ++iter) {
      for (u32 id = 0; id < engine.num_subgroups(); ++id) {
        engine.deposit_gradients_async(iter, id, true, true);
      }
      engine.wait_gradient_io();
      engine.run_update(iter);
    }
    return engine.state_checksum();
  };

  const u64 file_digest = run(vtier_, *io_);

  VirtualTier mem_vtier;
  mem_vtier.add_path(std::make_shared<MemoryTier>("m0"));
  mem_vtier.add_path(std::make_shared<MemoryTier>("m1"));
  IoScheduler mem_io(clock_, &mem_vtier, nullptr, nullptr);
  const u64 mem_digest = run(mem_vtier, mem_io);

  EXPECT_EQ(file_digest, mem_digest);
}

}  // namespace
}  // namespace mlpo
