// Recovery equivalence: a run interrupted by an injected node failure and
// resumed from checkpoint must reach the same parameter checksums as an
// uninterrupted run — including when it resumes at a *different* node
// count (elastic restart). Same parity-grid style as equivalence_test's
// cross-engine comparisons, applied to the failure axis.
#include <gtest/gtest.h>

#include "resilience/recovery_driver.hpp"
#include "resilience_test_util.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

using test::make_cluster_config;
using test::node_failure_at;

constexpr u32 kIterations = 5;

u64 uninterrupted_checksum(u32 nodes, bool elastic) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_cluster_config(nodes, elastic));
  cluster.initialize();
  cluster.run(kIterations, 0);
  return cluster_state_checksum(cluster);
}

u64 recovered_checksum(u32 nodes, bool elastic, RecoveryOptions opts,
                       std::vector<FailureEvent> schedule,
                       RecoveryStats* stats_out = nullptr) {
  SimClock clock(2000.0);
  auto store = std::make_shared<MemoryTier>("ckpt-store");
  RecoveryDriver driver(clock, make_cluster_config(nodes, elastic), store,
                        opts, FailureInjector(std::move(schedule)));
  driver.initialize();
  driver.run(kIterations, 0);
  if (stats_out != nullptr) *stats_out = driver.stats();
  return cluster_state_checksum(driver.cluster());
}

TEST(RecoveryEquivalence, ElasticShardingIsWorldSizeInvariant) {
  // The foundation of elastic restart, failure-free: the same model
  // trained under different node counts reaches the same global digest
  // because content is keyed on world-size-independent global subgroups.
  const u64 one_node = uninterrupted_checksum(1, /*elastic=*/true);
  const u64 two_nodes = uninterrupted_checksum(2, /*elastic=*/true);
  EXPECT_EQ(one_node, two_nodes);

  // Classic per-rank sharding is *not* invariant — the invariance above is
  // a property of the elastic layout, not a tautology of the checksum.
  const u64 classic_one = uninterrupted_checksum(1, /*elastic=*/false);
  const u64 classic_two = uninterrupted_checksum(2, /*elastic=*/false);
  EXPECT_NE(classic_one, classic_two);
}

TEST(RecoveryEquivalence, SameCountRecoveryMatchesUninterruptedRun) {
  const u64 reference = uninterrupted_checksum(2, /*elastic=*/false);
  for (const u32 interval : {1u, 2u, 4u}) {
    RecoveryOptions opts;
    opts.checkpoint_interval = interval;
    RecoveryStats stats;
    const u64 recovered =
        recovered_checksum(2, /*elastic=*/false, opts,
                           {node_failure_at(1, 3)}, &stats);
    EXPECT_EQ(recovered, reference) << "checkpoint_interval=" << interval;
    EXPECT_EQ(stats.recoveries, 1u) << "checkpoint_interval=" << interval;
  }
}

TEST(RecoveryEquivalence, ElasticShrinkMatchesUninterruptedRun) {
  // Lose one node of two, resume on a single node: subgroup ownership
  // remaps through the elastic layout, state restores from the gid-keyed
  // checkpoint, and the digest still matches the uninterrupted 2-node run.
  const u64 reference = uninterrupted_checksum(2, /*elastic=*/true);
  RecoveryOptions opts;
  opts.checkpoint_interval = 2;
  opts.restart_nodes = 1;
  RecoveryStats stats;
  const u64 recovered = recovered_checksum(2, /*elastic=*/true, opts,
                                           {node_failure_at(0, 3)}, &stats);
  EXPECT_EQ(recovered, reference);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.restored_subgroups, 0u);
}

TEST(RecoveryEquivalence, ElasticGrowMatchesUninterruptedRun) {
  // Replacement capacity can also exceed the original cluster: restart the
  // 2-node run on 3 nodes mid-way.
  const u64 reference = uninterrupted_checksum(2, /*elastic=*/true);
  RecoveryOptions opts;
  opts.checkpoint_interval = 1;
  opts.restart_nodes = 3;
  const u64 recovered = recovered_checksum(2, /*elastic=*/true, opts,
                                           {node_failure_at(1, 2)});
  EXPECT_EQ(recovered, reference);
}

TEST(RecoveryEquivalence, BackToBackFailuresStillConverge) {
  const u64 reference = uninterrupted_checksum(2, /*elastic=*/false);
  RecoveryOptions opts;
  opts.checkpoint_interval = 1;
  RecoveryStats stats;
  const u64 recovered = recovered_checksum(
      2, /*elastic=*/false, opts,
      {node_failure_at(1, 2), node_failure_at(0, 4)}, &stats);
  EXPECT_EQ(recovered, reference);
  EXPECT_EQ(stats.recoveries, 2u);
}

}  // namespace
}  // namespace mlpo
