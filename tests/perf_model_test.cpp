// Eq. 1 performance model: quota invariants over randomized bandwidth
// vectors, interleaving quality, adaptive re-estimation.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "policy/perf_model.hpp"

namespace mlpo {
namespace {

TEST(Eq1, TwoToOneSplitMatchesPaperExample) {
  // The paper's §3.5 example: a 2:1 NVMe-to-PFS ratio.
  const auto quotas = eq1_subgroup_quotas(90, {2.0, 1.0});
  EXPECT_EQ(quotas[0], 60u);
  EXPECT_EQ(quotas[1], 30u);
}

TEST(Eq1, SinglePathTakesEverything) {
  const auto quotas = eq1_subgroup_quotas(17, {5.0});
  ASSERT_EQ(quotas.size(), 1u);
  EXPECT_EQ(quotas[0], 17u);
}

TEST(Eq1, RejectsBadInput) {
  EXPECT_THROW(eq1_subgroup_quotas(10, {}), std::invalid_argument);
  EXPECT_THROW(eq1_subgroup_quotas(10, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(eq1_subgroup_quotas(10, {1.0, -2.0}), std::invalid_argument);
}

TEST(Eq1, SumEqualsMOverRandomInputs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const u32 m = std::uniform_int_distribution<u32>(0, 5000)(rng);
    const std::size_t n = std::uniform_int_distribution<std::size_t>(1, 6)(rng);
    std::vector<f64> bw(n);
    for (auto& b : bw) {
      b = std::uniform_real_distribution<f64>(0.1, 20.0)(rng);
    }
    const auto quotas = eq1_subgroup_quotas(m, bw);
    const u64 sum = std::accumulate(quotas.begin(), quotas.end(), u64{0});
    EXPECT_EQ(sum, m) << "trial " << trial;
    // Proportionality: each quota within 1 of the exact share.
    const f64 total_bw = std::accumulate(bw.begin(), bw.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const f64 exact = m * bw[i] / total_bw;
      EXPECT_GE(quotas[i] + 1.0, exact) << "trial " << trial;
      EXPECT_LE(static_cast<f64>(quotas[i]), exact + 1.0) << "trial " << trial;
    }
  }
}

TEST(Eq1, FasterPathNeverGetsFewer) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const f64 slow = std::uniform_real_distribution<f64>(0.5, 5.0)(rng);
    const f64 fast = slow * std::uniform_real_distribution<f64>(1.0, 4.0)(rng);
    const auto quotas = eq1_subgroup_quotas(100, {fast, slow});
    EXPECT_GE(quotas[0], quotas[1]);
  }
}

TEST(InterleavedPlacement, RespectsQuotasExactly) {
  const std::vector<u32> quotas = {6, 3, 1};
  const auto placement = interleaved_placement(quotas);
  ASSERT_EQ(placement.size(), 10u);
  std::vector<u32> counts(3, 0);
  for (const auto p : placement) ++counts[p];
  EXPECT_EQ(counts[0], 6u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(InterleavedPlacement, SpreadsRatherThanBlocks) {
  // A 2:1 quota should produce a pattern where path 1 appears roughly every
  // third position, not as a trailing block.
  const auto placement = interleaved_placement({20, 10});
  u32 longest_run = 0, run = 0;
  std::size_t prev = placement[0];
  for (const auto p : placement) {
    run = (p == prev) ? run + 1 : 1;
    prev = p;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_LE(longest_run, 3u);
}

TEST(InterleavedPlacement, HandlesZeroQuotaPaths) {
  const auto placement = interleaved_placement({0, 5, 0});
  for (const auto p : placement) EXPECT_EQ(p, 1u);
}

TEST(PerfModel, SeedsFromNominalBandwidths) {
  PerfModel model({5.3, 3.6}, 89);
  const auto quotas = model.quotas();
  EXPECT_EQ(quotas[0] + quotas[1], 89u);
  // 5.3:3.6 ~ 60:40
  EXPECT_NEAR(static_cast<f64>(quotas[0]) / 89.0, 5.3 / 8.9, 0.03);
  for (u32 i = 0; i < 89; ++i) {
    EXPECT_LT(model.path_for(i), 2u);
  }
}

TEST(PerfModel, FirstObservationReplacesSeed) {
  PerfModel model({10.0, 10.0}, 100);
  model.observe(1, 1000, 1000.0);  // path 1 is actually 1 B/s
  model.rebalance();
  const auto bws = model.bandwidths();
  EXPECT_DOUBLE_EQ(bws[0], 10.0);
  EXPECT_DOUBLE_EQ(bws[1], 1.0);
  const auto quotas = model.quotas();
  EXPECT_GT(quotas[0], 85u);  // nearly everything moves to path 0
}

TEST(PerfModel, EmaSmoothsSubsequentObservations) {
  PerfModel model({10.0}, 10, /*ema_alpha=*/0.5);
  model.observe(0, 100, 10.0);  // 10 B/s replaces seed
  model.observe(0, 100, 5.0);   // 20 B/s observed -> estimate 15
  EXPECT_NEAR(model.bandwidths()[0], 15.0, 1e-9);
}

TEST(PerfModel, AdaptsToDegradedPath) {
  // The §3.3 scenario: PFS under external pressure loses bandwidth, the
  // allocation repartitions toward the NVMe.
  PerfModel model({5.0, 5.0}, 100);
  const auto before = model.quotas();
  EXPECT_EQ(before[0], 50u);
  for (int i = 0; i < 20; ++i) model.observe(1, 1000, 1000.0);  // 1 B/s
  model.rebalance();
  const auto after = model.quotas();
  EXPECT_GT(after[0], 75u);
  EXPECT_EQ(after[0] + after[1], 100u);
}

TEST(PerfModel, IgnoresDegenerateObservations) {
  PerfModel model({5.0}, 10);
  model.observe(0, 0, 1.0);
  model.observe(0, 100, 0.0);
  model.observe(7, 100, 1.0);  // out-of-range path
  EXPECT_DOUBLE_EQ(model.bandwidths()[0], 5.0);
}

}  // namespace
}  // namespace mlpo
