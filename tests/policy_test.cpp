// The pluggable policy layer: registry round-trips, the built-in
// placement/ordering strategies, preset bundles, and the strict
// EngineOptions validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/engine.hpp"
#include "policy/policy_registry.hpp"

namespace mlpo {
namespace {

// ---------------------------------------------------------------- registry

TEST(PolicyRegistry, EveryBuiltinPlacementPolicyRoundTrips) {
  const auto names = placement_policy_names();
  EXPECT_GE(names.size(), 5u);
  for (const auto& name : names) {
    const auto policy = make_placement_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistry, EveryBuiltinOrderPolicyRoundTrips) {
  const auto names = update_order_policy_names();
  EXPECT_GE(names.size(), 3u);
  for (const auto& name : names) {
    const auto policy = make_update_order_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistry, ExpectedBuiltinsArePresent) {
  const auto p = placement_policy_names();
  for (const char* name : {"eq1_static", "adaptive_ema", "round_robin",
                           "bandwidth_greedy", "contention_aware"}) {
    EXPECT_NE(std::find(p.begin(), p.end(), name), p.end()) << name;
  }
  const auto o = update_order_policy_names();
  for (const char* name :
       {"ascending", "alternating_cache_friendly", "host_resident_first"}) {
    EXPECT_NE(std::find(o.begin(), o.end(), name), o.end()) << name;
  }
}

TEST(PolicyRegistry, UnknownNamesFailLoudlyListingKnownOnes) {
  try {
    make_placement_policy("definitely_not_a_policy");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely_not_a_policy"), std::string::npos);
    EXPECT_NE(what.find("adaptive_ema"), std::string::npos)
        << "error must list the registered policies: " << what;
  }
  EXPECT_THROW(make_update_order_policy("bogus"), std::invalid_argument);
}

TEST(PolicyRegistry, ExtensionsCanRegisterNewOrderPolicies) {
  class Reversed final : public UpdateOrderPolicy {
   public:
    const std::string& name() const override {
      static const std::string n = "test_reversed";
      return n;
    }
    bool uses_host_cache() const override { return false; }
    std::vector<u32> order(u32 n, u64, std::span<const u32>) const override {
      std::vector<u32> o(n);
      std::iota(o.rbegin(), o.rend(), 0u);
      return o;
    }
  };
  register_update_order_policy("test_reversed",
                               [] { return std::make_unique<Reversed>(); });
  const auto policy = make_update_order_policy("test_reversed");
  EXPECT_EQ(policy->order(3, 0, {}), (std::vector<u32>{2, 1, 0}));
}

// ---------------------------------------------------------- order policies

bool is_permutation_of_iota(const std::vector<u32>& order, u32 n) {
  std::vector<u32> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<u32> iota(n);
  std::iota(iota.begin(), iota.end(), 0u);
  return sorted == iota;
}

TEST(UpdateOrderPolicies, EveryPolicyReturnsAPermutation) {
  const std::vector<u32> residents = {2, 5};
  const std::vector<u32> no_residents;
  for (const auto& name : update_order_policy_names()) {
    const auto policy = make_update_order_policy(name);
    for (const u32 n : {0u, 1u, 6u, 9u}) {
      for (u64 iter = 0; iter < 4; ++iter) {
        const auto order =
            policy->order(n, iter, n > 5 ? residents : no_residents);
        EXPECT_TRUE(is_permutation_of_iota(order, n))
            << name << " n=" << n << " iter=" << iter;
      }
    }
  }
}

TEST(UpdateOrderPolicies, AscendingNeverAlternatesAndSkipsTheCache) {
  const auto policy = make_update_order_policy("ascending");
  EXPECT_FALSE(policy->uses_host_cache());
  const std::vector<u32> asc = {0, 1, 2, 3};
  for (u64 iter = 0; iter < 4; ++iter) {
    EXPECT_EQ(policy->order(4, iter, {}), asc) << iter;
  }
}

TEST(UpdateOrderPolicies, AlternatingFlipsParityPerIteration) {
  const auto policy = make_update_order_policy("alternating_cache_friendly");
  EXPECT_TRUE(policy->uses_host_cache());
  const std::vector<u32> asc = {0, 1, 2, 3};
  const std::vector<u32> desc = {3, 2, 1, 0};
  EXPECT_EQ(policy->order(4, 0, {}), asc);
  EXPECT_EQ(policy->order(4, 1, {}), desc);
  EXPECT_EQ(policy->order(4, 2, {}), asc);
  EXPECT_EQ(policy->order(4, 3, {}), desc);
}

TEST(UpdateOrderPolicies, AlternatingAdjacentIterationsShareTheirBoundary) {
  // The cache-hit mechanism: the tail of iteration k leads iteration k+1.
  const auto policy = make_update_order_policy("alternating_cache_friendly");
  const u32 n = 7;
  for (u64 iter = 0; iter < 3; ++iter) {
    const auto cur = policy->order(n, iter, {});
    const auto next = policy->order(n, iter + 1, {});
    EXPECT_EQ(cur.back(), next.front()) << iter;
  }
}

TEST(UpdateOrderPolicies, HostResidentFirstLeadsWithResidentsMruFirst) {
  const auto policy = make_update_order_policy("host_resident_first");
  EXPECT_TRUE(policy->uses_host_cache());
  // Residents arrive LRU-first: 4 is the coldest, 1 the hottest.
  const std::vector<u32> residents = {4, 2, 1};
  const auto order = policy->order(6, /*iteration=*/0, residents);
  EXPECT_EQ(order, (std::vector<u32>{1, 2, 4, 0, 3, 5}));
}

TEST(UpdateOrderPolicies, HostResidentFirstIgnoresStaleAndDuplicateIds) {
  const auto policy = make_update_order_policy("host_resident_first");
  const std::vector<u32> residents = {9, 1, 1};  // 9 out of range, 1 twice
  const auto order = policy->order(3, 0, residents);
  EXPECT_EQ(order, (std::vector<u32>{1, 0, 2}));
}

// ------------------------------------------------------ placement policies

TEST(PlacementPolicies, EveryPolicyYieldsAValidFullPlacement) {
  const std::vector<f64> bw = {3e9, 2e9, 1e9};
  const u32 n = 10;
  for (const auto& name : placement_policy_names()) {
    const auto policy = make_placement_policy(name);
    policy->bind(bw, n);
    const auto quotas = policy->quotas();
    ASSERT_EQ(quotas.size(), bw.size()) << name;
    EXPECT_EQ(std::accumulate(quotas.begin(), quotas.end(), 0u), n) << name;
    for (u32 idx = 0; idx < n; ++idx) {
      EXPECT_LT(policy->path_for(idx), bw.size()) << name << " idx " << idx;
    }
    EXPECT_EQ(policy->bandwidths(), bw) << name << " before observations";
  }
}

TEST(PlacementPolicies, Eq1StaticIgnoresObservations) {
  const auto policy = make_placement_policy("eq1_static");
  policy->bind({2e9, 1e9}, 9);
  const auto quotas = policy->quotas();
  EXPECT_EQ(quotas, (std::vector<u32>{6, 3}));
  // Hammer it with observations claiming path 1 is far faster...
  for (int i = 0; i < 50; ++i) policy->observe(1, 1 * GiB, 0.001, 0.0);
  policy->rebalance();
  EXPECT_EQ(policy->quotas(), quotas) << "static placement must not move";
  EXPECT_EQ(policy->bandwidths(), (std::vector<f64>{2e9, 1e9}));
}

TEST(PlacementPolicies, AdaptiveEmaRepartitionsTowardObservedBandwidth) {
  const auto policy = make_placement_policy("adaptive_ema");
  policy->bind({1e9, 1e9}, 8);
  EXPECT_EQ(policy->quotas(), (std::vector<u32>{4, 4}));
  // Path 0 observed 3x faster than path 1.
  for (int i = 0; i < 20; ++i) {
    policy->observe(0, 3 * GiB, 1.0, 0.0);
    policy->observe(1, 1 * GiB, 1.0, 0.0);
  }
  policy->rebalance();
  EXPECT_EQ(policy->quotas(), (std::vector<u32>{6, 2}));
}

TEST(PlacementPolicies, RoundRobinInterleavesRegardlessOfBandwidth) {
  const auto policy = make_placement_policy("round_robin");
  policy->bind({100e9, 1e9}, 6);
  for (u32 idx = 0; idx < 6; ++idx) {
    EXPECT_EQ(policy->path_for(idx), idx % 2) << idx;
  }
  EXPECT_EQ(policy->quotas(), (std::vector<u32>{3, 3}));
}

TEST(PlacementPolicies, BandwidthGreedyTracksProportionality) {
  const auto policy = make_placement_policy("bandwidth_greedy");
  policy->bind({3e9, 1e9}, 8);
  // Greedy earliest-finish-time on a 3:1 split -> 6:2.
  EXPECT_EQ(policy->quotas(), (std::vector<u32>{6, 2}));
  // First subgroup lands on the fastest path.
  EXPECT_EQ(policy->path_for(0), 0u);
}

TEST(PlacementPolicies, ContentionAwareShedsLoadFromCongestedPaths) {
  const auto policy = make_placement_policy("contention_aware");
  policy->bind({1e9, 1e9}, 8);
  EXPECT_EQ(policy->quotas(), (std::vector<u32>{4, 4}));
  // Both paths serve at the same device speed, but path 1's requests sit in
  // a long queue first — its *effective* throughput is 4x worse.
  for (int i = 0; i < 20; ++i) {
    policy->observe(0, 1 * GiB, 1.0, 0.0);
    policy->observe(1, 1 * GiB, 1.0, 3.0);
  }
  policy->rebalance();
  const auto quotas = policy->quotas();
  EXPECT_GT(quotas[0], quotas[1])
      << "queue waits must count against a path's share";
}

TEST(PlacementPolicies, UseBeforeBindFailsLoudly) {
  for (const auto& name : placement_policy_names()) {
    EXPECT_THROW(make_placement_policy(name)->path_for(0), std::logic_error)
        << name;
    EXPECT_THROW(make_placement_policy(name)->quotas(), std::logic_error)
        << name;
  }
}

// ------------------------------------------------------ presets/validation

TEST(EnginePresets, EveryNamedBundleValidates) {
  for (const auto& name : EngineOptions::preset_names()) {
    const EngineOptions opts = EngineOptions::preset(name);
    EXPECT_NO_THROW(opts.validate()) << name;
  }
  EXPECT_THROW(EngineOptions::preset("warp_drive"), std::invalid_argument);
}

TEST(EnginePresets, BundlesMatchThePaperAblationSteps) {
  const auto ds = EngineOptions::preset("deepspeed_zero3");
  EXPECT_FALSE(ds.multipath);
  EXPECT_EQ(ds.update_order_policy, "ascending");
  EXPECT_FALSE(ds.delayed_grad_conversion);
  EXPECT_FALSE(ds.tier_exclusive_locking);

  const auto mp = EngineOptions::preset("multipath_caching");
  EXPECT_TRUE(mp.multipath);
  EXPECT_EQ(mp.update_order_policy, "alternating_cache_friendly");
  EXPECT_FALSE(mp.delayed_grad_conversion);

  const auto skip = EngineOptions::preset("mp_skip_grads");
  EXPECT_TRUE(skip.delayed_grad_conversion);
  EXPECT_FALSE(skip.tier_exclusive_locking);

  const auto ours = EngineOptions::preset("mlp_offload");
  EXPECT_TRUE(ours.tier_exclusive_locking);
  EXPECT_EQ(ours.placement_policy, "adaptive_ema");

  EXPECT_EQ(EngineOptions::preset("mlp_offload_static").placement_policy,
            "eq1_static");
  EXPECT_EQ(EngineOptions::preset("cpu_only").engine, "cpu_only");
  EXPECT_EQ(EngineOptions::preset("tensor_nvme").engine, "tensor_nvme");
}

TEST(EngineOptionsValidation, RejectsNonPositiveRates) {
  EngineOptions opts;
  opts.cpu_update_rate = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.cpu_update_rate = -5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(EngineOptionsValidation, RejectsZeroElemScale) {
  EngineOptions opts;
  opts.elem_scale = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(EngineOptionsValidation, RejectsCacheOrderWithEmptyCache) {
  EngineOptions opts;  // alternating_cache_friendly by default
  opts.host_cache_subgroups = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  // The same capacity is fine for a non-caching schedule.
  opts.update_order_policy = "ascending";
  EXPECT_NO_THROW(opts.validate());
}

TEST(EngineOptionsValidation, RejectsCacheShallowerThanPrefetchWindow) {
  EngineOptions opts;
  opts.prefetch_ahead = 3;
  opts.host_cache_subgroups = 3;  // < prefetch_ahead + 1
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.host_cache_subgroups = 4;
  EXPECT_NO_THROW(opts.validate());
}

TEST(EngineOptionsValidation, RejectsPipelineWithNoOverlapAndNoReuse) {
  EngineOptions opts = EngineOptions::deepspeed_zero3();
  opts.prefetch_ahead = 0;
  opts.host_cache_subgroups = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  // A non-zero cache knob does not help: the non-caching order policy
  // disables the cache regardless, so the pipeline is still serial.
  opts.host_cache_subgroups = 3;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.prefetch_ahead = 1;
  EXPECT_NO_THROW(opts.validate());
  // prefetch_ahead=0 is fine when a caching policy provides the reuse.
  EngineOptions cached;
  cached.prefetch_ahead = 0;
  EXPECT_NO_THROW(cached.validate());
}

TEST(EngineOptionsValidation, RejectsUnknownPolicyNames) {
  EngineOptions opts;
  opts.placement_policy = "mystery";
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = EngineOptions{};
  opts.update_order_policy = "mystery";
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace mlpo
