// Subgroup state container: scale reduction, serialization, checksums.
#include <gtest/gtest.h>

#include <cmath>

#include "train/subgroup.hpp"

namespace mlpo {
namespace {

TEST(Subgroup, FullFidelityAllocation) {
  Subgroup sg(3, 1000, 1);
  EXPECT_EQ(sg.id(), 3u);
  EXPECT_EQ(sg.sim_params(), 1000u);
  EXPECT_EQ(sg.real_elems(), 1000u);
  EXPECT_EQ(sg.params().size(), 1000u);
  EXPECT_EQ(sg.momentum().size(), 1000u);
  EXPECT_EQ(sg.variance().size(), 1000u);
}

TEST(Subgroup, ScaleReductionRoundsUp) {
  Subgroup sg(0, 1000, 64);
  EXPECT_EQ(sg.real_elems(), 16u);  // ceil(1000/64)
  Subgroup tiny(0, 5, 1024);
  EXPECT_EQ(tiny.real_elems(), 1u);  // never zero
}

TEST(Subgroup, RejectsBadArguments) {
  EXPECT_THROW(Subgroup(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(Subgroup(0, 100, 0), std::invalid_argument);
}

TEST(Subgroup, SimByteSizesFollowPaperLayout) {
  Subgroup sg(0, 100'000'000, 8192);
  EXPECT_EQ(sg.sim_state_bytes(), 1'200'000'000u);            // 12 B/param
  EXPECT_EQ(sg.sim_state_with_grad_bytes(), 1'600'000'000u);  // 16 B/param
  EXPECT_EQ(sg.sim_fp16_param_bytes(), 200'000'000u);         // 2 B/param
}

TEST(Subgroup, SerializeDeserializeRoundtrip) {
  Subgroup sg(7, 500, 4);
  for (std::size_t i = 0; i < sg.real_elems(); ++i) {
    sg.params()[i] = static_cast<f32>(i) * 0.5f;
    sg.momentum()[i] = static_cast<f32>(i) * -0.25f;
    sg.variance()[i] = static_cast<f32>(i) * 2.0f;
  }
  sg.set_step(42);

  std::vector<u8> buf(sg.serialized_bytes());
  sg.serialize(buf);

  Subgroup other(7, 500, 4);
  other.deserialize(buf);
  EXPECT_EQ(other.step(), 42u);
  EXPECT_EQ(other.checksum(), sg.checksum());
  for (std::size_t i = 0; i < sg.real_elems(); ++i) {
    EXPECT_EQ(other.params()[i], sg.params()[i]);
    EXPECT_EQ(other.momentum()[i], sg.momentum()[i]);
    EXPECT_EQ(other.variance()[i], sg.variance()[i]);
  }
}

TEST(Subgroup, DeserializeRejectsWrongBufferSize) {
  Subgroup sg(0, 100, 1);
  std::vector<u8> small(10);
  EXPECT_THROW(sg.deserialize(small), std::invalid_argument);
  std::vector<u8> wrong(sg.serialized_bytes());
  EXPECT_THROW(sg.serialize(std::span<u8>(wrong).subspan(1)),
               std::invalid_argument);
}

TEST(Subgroup, DeserializeRejectsHeaderMismatch) {
  Subgroup a(1, 100, 1);
  std::vector<u8> buf(a.serialized_bytes());
  a.serialize(buf);

  Subgroup wrong_id(2, 100, 1);
  EXPECT_THROW(wrong_id.deserialize(buf), std::runtime_error);

  Subgroup wrong_scale(1, 100, 2);
  // Different scale means different sizes -> size check trips first.
  EXPECT_THROW(wrong_scale.deserialize(buf), std::exception);
}

TEST(Subgroup, ChecksumDetectsSingleBitChange) {
  Subgroup a(0, 256, 1);
  for (std::size_t i = 0; i < 256; ++i) a.params()[i] = static_cast<f32>(i);
  const u64 before = a.checksum();
  a.params()[100] = std::nextafter(a.params()[100], 1e9f);  // one ulp
  EXPECT_NE(a.checksum(), before);
}

TEST(Subgroup, ChecksumDependsOnStepAndIdentity) {
  Subgroup a(0, 64, 1);
  Subgroup b(1, 64, 1);
  EXPECT_NE(a.checksum(), b.checksum());
  const u64 s0 = a.checksum();
  a.set_step(1);
  EXPECT_NE(a.checksum(), s0);
}

TEST(Subgroup, StorageKeyFormat) {
  EXPECT_EQ(Subgroup::key(2, 17), "sg/2/17");
  EXPECT_EQ(Subgroup::key(0, 0), "sg/0/0");
}

}  // namespace
}  // namespace mlpo
