// Cache-friendly ordering: alternation and permutation invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/update_order.hpp"

namespace mlpo {
namespace {

TEST(UpdateOrder, AscendingWhenDisabled) {
  for (u64 iter = 0; iter < 5; ++iter) {
    const auto order = update_order(6, iter, false);
    const std::vector<u32> expect = {0, 1, 2, 3, 4, 5};
    EXPECT_EQ(order, expect) << iter;
  }
}

TEST(UpdateOrder, AlternatesParityWhenEnabled) {
  const std::vector<u32> asc = {0, 1, 2, 3};
  const std::vector<u32> desc = {3, 2, 1, 0};
  EXPECT_EQ(update_order(4, 0, true), asc);
  EXPECT_EQ(update_order(4, 1, true), desc);
  EXPECT_EQ(update_order(4, 2, true), asc);
  EXPECT_EQ(update_order(4, 3, true), desc);
}

TEST(UpdateOrder, AlwaysAPermutation) {
  for (const u32 n : {0u, 1u, 2u, 17u, 100u}) {
    for (u64 iter = 0; iter < 4; ++iter) {
      for (const bool alt : {false, true}) {
        auto order = update_order(n, iter, alt);
        EXPECT_EQ(order.size(), n);
        std::sort(order.begin(), order.end());
        for (u32 i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
      }
    }
  }
}

TEST(UpdateOrder, ConsecutiveIterationsMeetAtTheEnds) {
  // The reuse property: the tail of iteration k equals the head of k+1.
  const u32 n = 20;
  for (u64 iter = 0; iter < 6; ++iter) {
    const auto cur = update_order(n, iter, true);
    const auto next = update_order(n, iter + 1, true);
    EXPECT_EQ(cur.back(), next.front());
  }
}

}  // namespace
}  // namespace mlpo
