// JSON parser/serializer: values, nesting, escapes, errors, roundtrips.
#include <gtest/gtest.h>

#include "util/json.hpp"

namespace mlpo::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_number(), 42.0);
  EXPECT_EQ(parse("-3.5").as_number(), -3.5);
  EXPECT_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({
    "model": "40B",
    "nodes": 4,
    "mlp_offload": {"enabled": true, "paths": ["nvme", "pfs"]},
    "ratios": [2, 1]
  })");
  EXPECT_EQ(v.at("model").as_string(), "40B");
  EXPECT_EQ(v.at("nodes").as_int(), 4);
  EXPECT_TRUE(v.at("mlp_offload").at("enabled").as_bool());
  EXPECT_EQ(v.at("mlp_offload").at("paths").as_array()[1].as_string(), "pfs");
  EXPECT_EQ(v.at("ratios").as_array()[0].as_number(), 2.0);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xC3\xA9");
}

TEST(Json, WhitespaceTolerant) {
  const Value v = parse("  {  \"a\" :\n[ 1 ,\t2 ]  }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(parse("{}").as_object().empty());
  EXPECT_TRUE(parse("[]").as_array().empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":}"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("{'single':1}"), ParseError);
  EXPECT_THROW(parse("nan"), ParseError);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = parse("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.at("a").as_string(), std::runtime_error);
  EXPECT_THROW(v.at("missing"), std::out_of_range);
}

TEST(Json, DefaultedLookups) {
  const Value v = parse("{\"x\": 2.5, \"flag\": true, \"s\": \"v\"}");
  EXPECT_EQ(v.number_or("x", 0), 2.5);
  EXPECT_EQ(v.number_or("y", 7), 7.0);
  EXPECT_EQ(v.int_or("x", 0), 2);
  EXPECT_TRUE(v.bool_or("flag", false));
  EXPECT_FALSE(v.bool_or("other", false));
  EXPECT_EQ(v.string_or("s", ""), "v");
  EXPECT_EQ(v.string_or("t", "d"), "d");
  // Type-mismatched keys fall back rather than throw.
  EXPECT_EQ(v.number_or("s", 9), 9.0);
}

TEST(Json, DumpRoundtrips) {
  const char* doc = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  const Value v = parse(doc);
  const Value again = parse(v.dump());
  EXPECT_EQ(v, again);
  // Pretty form also roundtrips.
  EXPECT_EQ(parse(v.dump(2)), v);
}

TEST(Json, DumpEscapesControlCharacters) {
  const Value v(std::string("line1\nline2\x01"));
  const Value back = parse(v.dump());
  EXPECT_EQ(back.as_string(), v.as_string());
}

TEST(Json, IntegersSerializeWithoutDecimalPoint) {
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
}

}  // namespace
}  // namespace mlpo::json
