// ThreadPool, MpmcQueue, BufferPool, RunningStats, percentile, Histogram.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <random>
#include <thread>

#include "util/aligned_buffer.hpp"
#include "util/mpmc_queue.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 42; });
  auto f2 = pool.submit([] { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10007);
  pool.parallel_for(hits.size(), [&](u64 b, u64 e) {
    for (u64 i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSmall) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](u64, u64) { FAIL() << "must not be called"; });
  std::atomic<u64> sum{0};
  pool.parallel_for(3, [&](u64 b, u64 e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ThreadPool, ManyConcurrentSubmits) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 1000; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(MpmcQueue, ZeroCapacityIsRejected) {
  // Regression: a zero-capacity queue used to construct fine and then
  // deadlock every push() forever (not_full_ can never be satisfied).
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MpmcQueue, CloseDrainsThenEnds) {
  MpmcQueue<int> q(16);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ConcurrentProducersConsumers) {
  MpmcQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<i64> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  std::atomic<int> consumed{0};
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        total += *v;
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < 3; ++c) threads[kProducers + c].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(total.load(),
            static_cast<i64>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer buf(1000, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (const u8 b : buf.bytes()) EXPECT_EQ(b, 0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(128);
  a.data()[0] = 7;
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data()[0], 7);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, TypedView) {
  AlignedBuffer buf(16 * sizeof(f32));
  auto floats = buf.as<f32>();
  EXPECT_EQ(floats.size(), 16u);
  floats[3] = 1.5f;
  EXPECT_EQ(buf.as<f32>()[3], 1.5f);
}

TEST(BufferPool, AcquireReleaseCycle) {
  BufferPool pool(2, 64);
  EXPECT_EQ(pool.available(), 2u);
  {
    auto l1 = pool.acquire();
    auto l2 = pool.acquire();
    EXPECT_EQ(pool.available(), 0u);
    EXPECT_FALSE(pool.try_acquire().valid());
  }
  EXPECT_EQ(pool.available(), 2u);
}

TEST(BufferPool, BlockingAcquireWakesOnRelease) {
  BufferPool pool(1, 64);
  auto lease = pool.acquire();
  std::atomic<bool> got{false};
  std::thread t([&] {
    auto l = pool.acquire();
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  lease.release();
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(RunningStats, MomentsMatchDirectComputation) {
  std::mt19937 rng(42);
  std::normal_distribution<f64> dist(5.0, 2.0);
  std::vector<f64> xs(1000);
  RunningStats stats;
  for (auto& x : xs) {
    x = dist(rng);
    stats.add(x);
  }
  const f64 mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  f64 var = 0;
  for (const f64 x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const f64 x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesCorrectly) {
  std::vector<f64> xs = {1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_NEAR(percentile(xs, 0.1), 1.4, 1e-12);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 1.5), std::invalid_argument);
}

TEST(Histogram, BadArgumentsThrowBeforeAnyArithmetic) {
  // Regression: the constructor used to compute width_ (a division by
  // `buckets`) in the init list before the body's validation ran. Both
  // bad-argument classes must throw cleanly.
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 9
  h.add(-5.0);  // clamps to bucket 0
  h.add(50.0);  // clamps to bucket 9
  h.add(5.0);   // bucket 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.bucket_lo(5), 5.0);
  EXPECT_EQ(h.bucket_hi(5), 6.0);
  EXPECT_FALSE(h.ascii().empty());
}

}  // namespace
}  // namespace mlpo
