// Checkpoint pre-staging: persistent-path subgroups skip the flush; the
// checkpoint is a faithful snapshot.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/offload_engine.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo {
namespace {

constexpr u64 kSubgroupParams = 1024;
constexpr u32 kNumSubgroups = 6;

struct Rig {
  SimClock clock{50000.0};
  VirtualTier vtier;
  GradSource grads;
  MemoryTier ckpt_store{"ckpt-store"};
  // One scheduler per engine so its locking config matches the engine's
  // flags; kept alive here because they must outlive the engines.
  std::vector<std::unique_ptr<IoScheduler>> schedulers;

  Rig() {
    ThrottleSpec nvme{8e6, 6e6};
    vtier.add_path(std::make_shared<ThrottledTier>(
        "nvme", std::make_shared<MemoryTier>("nb"), clock, nvme,
        /*persistent=*/false));
    ThrottleSpec pfs{4e6, 4e6};
    vtier.add_path(std::make_shared<ThrottledTier>(
        "pfs", std::make_shared<MemoryTier>("pb"), clock, pfs,
        /*persistent=*/true));
  }

  std::unique_ptr<OffloadEngine> make_engine(bool multipath,
                                             u32 num_subgroups = kNumSubgroups) {
    EngineOptions opts = multipath ? EngineOptions::mlp_offload()
                                   : EngineOptions::deepspeed_zero3();
    opts.cpu_update_rate = 1e9;
    opts.convert.fp32_bytes_per_sec = 1e12;
    opts.host_cache_subgroups = 2;
    opts.elem_scale = 1;

    IoScheduler::Config cfg;
    cfg.tier_exclusive_locking = opts.tier_exclusive_locking;
    schedulers.push_back(
        std::make_unique<IoScheduler>(clock, &vtier, nullptr, nullptr, cfg));

    EngineContext ctx;
    ctx.clock = &clock;
    ctx.vtier = &vtier;
    ctx.io = schedulers.back().get();
    ctx.grads = &grads;
    auto engine = std::make_unique<OffloadEngine>(
        ctx, opts, make_shard_layout(kSubgroupParams * num_subgroups, 1, 0,
                                     kSubgroupParams));
    engine->initialize();
    return engine;
  }
};

TEST(Checkpoint, PrestagedFractionMatchesPersistentPlacement) {
  Rig rig;
  auto engine = rig.make_engine(/*multipath=*/true);
  const auto report = checkpoint_prestage(*engine, rig.ckpt_store);

  const u64 expected_total =
      kSubgroupParams * kNumSubgroups * kOptimStateBytesPerParam;
  EXPECT_EQ(report.total_sim_bytes, expected_total);
  EXPECT_EQ(report.prestaged_sim_bytes + report.flushed_sim_bytes,
            expected_total);
  // Multipath placed a share on the persistent PFS: those bytes are free.
  EXPECT_GT(report.prestaged_sim_bytes, 0u);
  EXPECT_GT(report.prestaged_fraction(), 0.2);
  EXPECT_LT(report.prestaged_fraction(), 0.8);
}

TEST(Checkpoint, BaselineHasNothingPrestaged) {
  Rig rig;
  auto engine = rig.make_engine(/*multipath=*/false);
  const auto report = checkpoint_prestage(*engine, rig.ckpt_store);
  EXPECT_EQ(report.prestaged_sim_bytes, 0u)
      << "NVMe-only placement is not durable";
  EXPECT_EQ(report.flushed_sim_bytes, report.total_sim_bytes);
}

TEST(Checkpoint, FlushedObjectsAreFaithfulSnapshots) {
  Rig rig;
  auto engine = rig.make_engine(true);
  // Advance state so the snapshot is non-trivial.
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  engine->run_update(0);

  const auto report = checkpoint_prestage(*engine, rig.ckpt_store);
  EXPECT_GT(report.flushed_sim_bytes, 0u);

  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    const std::string key = "ckpt/0/" + std::to_string(id);
    if (!rig.ckpt_store.exists(key)) continue;  // pre-staged elsewhere
    const Subgroup live = engine->snapshot_subgroup(id);
    Subgroup from_ckpt(id, live.sim_params(), live.elem_scale());
    std::vector<u8> buf(from_ckpt.serialized_bytes());
    rig.ckpt_store.read(key, buf);
    from_ckpt.deserialize(buf);
    EXPECT_EQ(from_ckpt.checksum(), live.checksum()) << id;
  }
}

TEST(Checkpoint, RestoreRoundtripAfterFurtherTraining) {
  Rig rig;
  auto engine = rig.make_engine(true);
  const auto train_iter = [&](u64 iter) {
    for (u32 id = 0; id < engine->num_subgroups(); ++id) {
      engine->deposit_gradients_async(iter, id, true, true);
    }
    engine->wait_gradient_io();
    engine->run_update(iter);
  };

  train_iter(0);
  train_iter(1);
  const u64 at_checkpoint = engine->state_checksum();
  checkpoint_prestage(*engine, rig.ckpt_store);

  // Training continues and diverges...
  train_iter(2);
  train_iter(3);
  ASSERT_NE(engine->state_checksum(), at_checkpoint);

  // ...then a failure: restore must bring back the checkpointed state
  // exactly, including pre-staged subgroups that training overwrote on the
  // persistent path since.
  checkpoint_restore(*engine, rig.ckpt_store);
  EXPECT_EQ(engine->state_checksum(), at_checkpoint);

  // Training can resume from the restored state.
  train_iter(2);
  EXPECT_NE(engine->state_checksum(), at_checkpoint);
}

TEST(Checkpoint, RestoreChargesVirtualTimeScalingWithCheckpointSize) {
  // Regression: restore used to submit its external reads with
  // sim_bytes=0, so pulling state back from the checkpoint store was
  // charged zero virtual I/O time while checkpoint_prestage charged full
  // bytes for the same objects. Each restored subgroup must now pay at
  // least its simulated footprint at the store's read bandwidth.
  // Slow enough that the simulated transfer charge dwarfs the wall-clock-
  // derived scheduling overheads at this time scale (notably the one-off
  // spawn of the store's lazily-created external channel thread).
  constexpr f64 kStoreReadBw = 2e3;
  const auto timed_restore = [&](u32 num_subgroups) {
    Rig rig;
    auto engine = rig.make_engine(/*multipath=*/true, num_subgroups);
    // A throttled, PFS-like store so virtual time is actually charged.
    ThrottledTier store("ckpt-throttled", std::make_shared<MemoryTier>("cb"),
                        rig.clock, ThrottleSpec{kStoreReadBw, 2e6},
                        /*persistent=*/true);
    // (writes stay fast: prestage cost is not under test here)
    checkpoint_prestage(*engine, store);
    const f64 before = rig.clock.now();
    EXPECT_EQ(checkpoint_restore(*engine, store), num_subgroups);
    return rig.clock.now() - before;
  };

  const f64 full_seconds = timed_restore(kNumSubgroups);
  const u64 total_sim_bytes =
      kSubgroupParams * kNumSubgroups * kOptimStateBytesPerParam;
  const f64 min_expected = static_cast<f64>(total_sim_bytes) / kStoreReadBw;
  EXPECT_GE(full_seconds, min_expected)
      << "restore must be billed the full simulated transfer";

  // And the charge scales with checkpoint size: a third of the subgroups
  // restores in well under half the time (store reads and write-backs both
  // shrink proportionally; only per-request scheduling overhead — which
  // pushes times up, never down — is size-independent).
  const f64 third_seconds = timed_restore(kNumSubgroups / 3);
  EXPECT_GT(full_seconds, 2.0 * third_seconds);
}

TEST(Checkpoint, RestoreFromEmptyStoreFails) {
  Rig rig;
  auto engine = rig.make_engine(true);
  MemoryTier empty("empty");
  // Freshly initialised subgroups partly live on the persistent PFS (those
  // restore in place); the NVMe-resident ones have no checkpoint copy.
  EXPECT_THROW(checkpoint_restore(*engine, empty), std::runtime_error);
}

TEST(Checkpoint, HostCachedSubgroupsAreFlushedNotSkipped) {
  Rig rig;
  auto engine = rig.make_engine(true);
  for (u32 id = 0; id < engine->num_subgroups(); ++id) {
    engine->deposit_gradients_async(0, id, true, true);
  }
  engine->wait_gradient_io();
  engine->run_update(0);
  ASSERT_FALSE(engine->host_resident().empty());

  const auto report = checkpoint_prestage(*engine, rig.ckpt_store);
  // Host-resident subgroups are not on any persistent path; they must be
  // in the flushed portion.
  const u64 host_bytes = engine->distribution().host_sim_bytes;
  EXPECT_GE(report.flushed_sim_bytes, host_bytes);
}

}  // namespace
}  // namespace mlpo
