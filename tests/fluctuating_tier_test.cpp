// FluctuatingTier + the adaptive performance model reacting to bandwidth
// shifts (paper §3.3 adaptation scenario).
#include <gtest/gtest.h>

#include "policy/perf_model.hpp"
#include "tiers/fluctuating_tier.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

TEST(BandwidthSchedule, FactorLookup) {
  BandwidthSchedule s;
  s.segments = {{0.0, 1.0}, {10.0, 0.25}, {20.0, 0.5}};
  EXPECT_EQ(s.factor_at(0.0), 1.0);
  EXPECT_EQ(s.factor_at(9.9), 1.0);
  EXPECT_EQ(s.factor_at(10.0), 0.25);
  EXPECT_EQ(s.factor_at(19.9), 0.25);
  EXPECT_EQ(s.factor_at(25.0), 0.5);
  EXPECT_EQ(BandwidthSchedule{}.factor_at(5.0), 1.0);
}

TEST(BandwidthSchedule, SquareWave) {
  const auto s = BandwidthSchedule::square_wave(5.0, 1.0, 0.5, 2);
  ASSERT_EQ(s.segments.size(), 4u);
  EXPECT_EQ(s.factor_at(2.0), 1.0);
  EXPECT_EQ(s.factor_at(7.0), 0.5);
  EXPECT_EQ(s.factor_at(12.0), 1.0);
  EXPECT_EQ(s.factor_at(17.0), 0.5);
  EXPECT_THROW(BandwidthSchedule::square_wave(0, 1, 1, 1),
               std::invalid_argument);
}

TEST(FluctuatingTier, TransferSlowsWhenScheduleDips) {
  // 1000 vsec/sec keeps the ~10 vsec fast transfer at 10ms of real time, so
  // a couple of ms of scheduler jitter can't double the measured duration.
  SimClock clock(1000.0);
  ThrottleSpec spec{1000.0, 1000.0};
  BandwidthSchedule schedule;
  // Full speed for a generous window (scheduler jitter between clock
  // construction and the first transfer must not push us past the edge),
  // then a 4x slowdown.
  schedule.segments = {{0.0, 1.0}, {50.0, 0.25}};
  FluctuatingTier tier("pfs", std::make_shared<MemoryTier>("back"), clock,
                       spec, schedule, /*persistent=*/true);
  EXPECT_TRUE(tier.persistent());
  EXPECT_EQ(tier.read_bandwidth(), 1000.0);  // nominal, not current

  std::vector<u8> data(64, 1);
  // Transfer in the full-speed window: 10000 bytes -> ~10 vsec.
  const f64 t0 = clock.now();
  ASSERT_LT(t0, 30.0) << "emulation host too slow for this test's windows";
  tier.write("a", data, 10000);
  const f64 fast = clock.now() - t0;
  EXPECT_LT(fast, 20.0);

  // Now the dip is active: same bytes -> ~40 vsec.
  clock.sleep_until(60.0);
  const f64 t1 = clock.now();
  tier.write("b", data, 10000);
  const f64 slow = clock.now() - t1;
  EXPECT_GT(slow, fast * 2.0);
  EXPECT_EQ(tier.current_factor(), 0.25);
}

TEST(FluctuatingTier, ContentIntact) {
  SimClock clock(20000.0);
  ThrottleSpec spec{1e6, 1e6};
  FluctuatingTier tier("t", std::make_shared<MemoryTier>("back"), clock, spec,
                       BandwidthSchedule::square_wave(1.0, 1.0, 0.5, 3));
  std::vector<u8> data = {1, 2, 3, 4};
  tier.write("k", data, 100);
  EXPECT_TRUE(tier.exists("k"));
  EXPECT_EQ(tier.object_size("k"), 4u);
  std::vector<u8> out(4);
  tier.read("k", out, 100);
  EXPECT_EQ(out, data);
  std::vector<u8> peeked(4);
  tier.peek("k", peeked);
  EXPECT_EQ(peeked, data);
  tier.erase("k");
  EXPECT_FALSE(tier.exists("k"));
}

TEST(FluctuatingTier, AdaptivePerfModelTracksTheShift) {
  // End-to-end §3.3 scenario: a PFS loses 3/4 of its bandwidth mid-run;
  // the performance model, fed only observed transfer times, repartitions
  // subgroups away from it.
  SimClock clock(20000.0);
  ThrottleSpec pfs_spec{1000.0, 1000.0};
  BandwidthSchedule dip;
  dip.segments = {{0.0, 1.0}, {50.0, 0.25}};
  MemoryTier nvme_backend("nb");
  FluctuatingTier pfs("pfs", std::make_shared<MemoryTier>("pb"), clock,
                      pfs_spec, dip);

  PerfModel model({1000.0, 1000.0}, 100);
  EXPECT_EQ(model.quotas()[0], 50u);  // symmetric before the dip

  // Simulated training loop: observe transfers on both paths.
  std::vector<u8> payload(16, 7);
  clock.sleep_until(55.0);  // enter the dip
  for (int i = 0; i < 10; ++i) {
    const f64 t0 = clock.now();
    pfs.write("x", payload, 2000);
    model.observe(1, 2000, clock.now() - t0);
    model.observe(0, 2000, 2.0);  // NVMe steady at 1000 B/s
  }
  model.rebalance();
  const auto quotas = model.quotas();
  EXPECT_GT(quotas[0], 70u) << "most subgroups must shift to the NVMe";
  EXPECT_EQ(quotas[0] + quotas[1], 100u);
}

}  // namespace
}  // namespace mlpo
