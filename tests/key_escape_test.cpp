// Regression suite for the '/'→'_' key-collision bug: the injective
// escape scheme must keep distinct keys on distinct files, round-trip
// losslessly, and never emit path separators or special names.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "tiers/file_tier.hpp"
#include "util/key_escape.hpp"

namespace mlpo {
namespace {

namespace fs = std::filesystem;

TEST(KeyEscape, SafeCharactersPassThrough) {
  EXPECT_EQ(escape_key("abcXYZ019_-"), "abcXYZ019_-");
}

TEST(KeyEscape, SlashAndUnderscoreKeysStayDistinct) {
  // The exact aliasing the old '/'→'_' substitution produced.
  EXPECT_NE(escape_key("a/b"), escape_key("a_b"));
  EXPECT_EQ(escape_key("a/b"), "a%2Fb");
  EXPECT_EQ(escape_key("a_b"), "a_b");
}

TEST(KeyEscape, RoundTripsArbitraryBytes) {
  const std::vector<std::string> keys = {
      "",
      "plain",
      "rank0/sg.3/state",
      "a_b",
      "a/b",
      "a%2Fb",  // pre-escaped text must survive double handling
      "%",
      "..",
      ".hidden",
      std::string("nul\0byte", 8),
      "sp ace\tand\nnewline",
      "\xff\xfe\x01",
  };
  for (const auto& k : keys) {
    EXPECT_EQ(unescape_key(escape_key(k)), k) << "key: " << k;
  }
}

TEST(KeyEscape, EscapedFormsAreInjectiveAndPathSafe) {
  const std::vector<std::string> keys = {
      "a/b", "a_b", "a%2Fb", "a%5Fb", "a.b", "a%2Eb", "..", "%2E%2E", ".", "",
  };
  std::unordered_set<std::string> seen;
  for (const auto& k : keys) {
    const std::string e = escape_key(k);
    EXPECT_TRUE(seen.insert(e).second) << "collision on escaped: " << e;
    EXPECT_EQ(e.find('/'), std::string::npos);
    EXPECT_NE(e, ".");
    EXPECT_NE(e, "..");
    EXPECT_TRUE(e.empty() || e[0] != '.') << e;
  }
}

TEST(KeyEscape, MalformedEscapesThrow) {
  EXPECT_THROW(unescape_key("%"), std::invalid_argument);
  EXPECT_THROW(unescape_key("%2"), std::invalid_argument);
  EXPECT_THROW(unescape_key("%zz"), std::invalid_argument);
  EXPECT_THROW(unescape_key("ok%2"), std::invalid_argument);
}

TEST(KeyEscape, FileTierNoLongerAliasesSlashToUnderscore) {
  // End-to-end regression at the tier level: before the fix, writing
  // "a/b" then "a_b" clobbered one object with the other.
  fs::path root = fs::temp_directory_path() /
                  ("mlpo_keyesc_" + std::to_string(::getpid()));
  fs::remove_all(root);
  {
    FileTier tier("t", root);
    const std::vector<u8> va = {1, 2, 3, 4};
    const std::vector<u8> vb = {9, 8, 7, 6, 5};
    tier.write("a/b", va);
    tier.write("a_b", vb);
    EXPECT_EQ(tier.object_size("a/b"), va.size());
    EXPECT_EQ(tier.object_size("a_b"), vb.size());
    std::vector<u8> out(va.size());
    tier.read("a/b", out);
    EXPECT_EQ(out, va);
    out.resize(vb.size());
    tier.read("a_b", out);
    EXPECT_EQ(out, vb);
    tier.erase("a_b");
    EXPECT_TRUE(tier.exists("a/b"));
    EXPECT_FALSE(tier.exists("a_b"));
  }
  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace
}  // namespace mlpo
