// Host cache LRU bookkeeping.
#include <gtest/gtest.h>

#include "core/host_cache.hpp"

namespace mlpo {
namespace {

TEST(HostCache, InsertUntilCapacityNoEviction) {
  HostCache cache(3);
  EXPECT_FALSE(cache.insert(1).has_value());
  EXPECT_FALSE(cache.insert(2).has_value());
  EXPECT_FALSE(cache.insert(3).has_value());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(HostCache, EvictsLeastRecentlyUsed) {
  HostCache cache(2);
  cache.insert(1);
  cache.insert(2);
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(HostCache, TouchPromotesToMostRecent) {
  HostCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.touch(1);
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 2u);  // 1 was touched, 2 becomes the victim
  cache.touch(99);          // absent id: no-op
}

TEST(HostCache, ReinsertExistingPromotesWithoutEviction) {
  HostCache cache(2);
  cache.insert(1);
  cache.insert(2);
  EXPECT_FALSE(cache.insert(1).has_value());
  EXPECT_EQ(cache.size(), 2u);
  const auto evicted = cache.insert(3);
  EXPECT_EQ(*evicted, 2u);
}

TEST(HostCache, ZeroCapacityBouncesInserts) {
  HostCache cache(0);
  const auto evicted = cache.insert(5);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 5u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(5));
}

TEST(HostCache, EraseRemoves) {
  HostCache cache(3);
  cache.insert(1);
  cache.insert(2);
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.erase(42);  // absent: no-op
}

TEST(HostCache, ResidentOrderedLruFirst) {
  HostCache cache(3);
  cache.insert(1);
  cache.insert(2);
  cache.insert(3);
  cache.touch(1);
  const auto resident = cache.resident();
  ASSERT_EQ(resident.size(), 3u);
  EXPECT_EQ(resident[0], 2u);
  EXPECT_EQ(resident[1], 3u);
  EXPECT_EQ(resident[2], 1u);
}

// The engine's reuse pattern: ascending insertion then descending access
// should hit for the cache-resident tail.
TEST(HostCache, AlternatingOrderReuseScenario) {
  constexpr u32 kSubgroups = 10;
  constexpr u32 kCapacity = 4;
  HostCache cache(kCapacity);
  // Iteration 0 ascending: inserts 0..9; 6,7,8,9 survive.
  for (u32 id = 0; id < kSubgroups; ++id) cache.insert(id);
  // Iteration 1 descending: the first kCapacity accesses are hits.
  u32 hits = 0;
  for (i32 id = kSubgroups - 1; id >= 0; --id) {
    if (cache.contains(static_cast<u32>(id))) {
      cache.touch(static_cast<u32>(id));
      ++hits;
    }
    cache.insert(static_cast<u32>(id));
  }
  EXPECT_EQ(hits, kCapacity);
  // After the descending pass, the low ids are resident for iteration 2.
  for (u32 id = 0; id < kCapacity; ++id) {
    EXPECT_TRUE(cache.contains(id)) << id;
  }
}

}  // namespace
}  // namespace mlpo
