// OffsetAllocator + BufferPool unit suite: O(1) alloc/free semantics,
// boundary-tag coalescing, fragmentation bounds, out-of-slab handling, and
// the pool's blocking/heap-fallback contract that the alloc-churn metric
// gates on.
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "util/aligned_buffer.hpp"
#include "util/offset_allocator.hpp"

namespace mlpo {
namespace {

constexpr u64 kG = 4096;

TEST(OffsetAllocator, AllocateRoundsUpToGranule) {
  OffsetAllocator a(16 * kG, kG);
  const auto al = a.allocate(1);
  ASSERT_TRUE(al.valid());
  EXPECT_EQ(al.bytes, kG);
  EXPECT_EQ(al.offset % kG, 0u);
  EXPECT_EQ(a.free_bytes(), 15 * kG);
  a.release(al);
  EXPECT_EQ(a.free_bytes(), 16 * kG);
}

TEST(OffsetAllocator, ZeroByteRequestStillReservesOnePage) {
  OffsetAllocator a(4 * kG, kG);
  const auto al = a.allocate(0);
  ASSERT_TRUE(al.valid());
  EXPECT_EQ(al.bytes, kG);
  a.release(al);
}

TEST(OffsetAllocator, OffsetsNeverOverlap) {
  OffsetAllocator a(32 * kG, kG);
  std::vector<OffsetAllocator::Allocation> held;
  for (int i = 0; i < 8; ++i) {
    const auto al = a.allocate(3 * kG);
    ASSERT_TRUE(al.valid());
    for (const auto& other : held) {
      const bool disjoint = al.offset + al.bytes <= other.offset ||
                            other.offset + other.bytes <= al.offset;
      EXPECT_TRUE(disjoint);
    }
    held.push_back(al);
  }
  for (const auto& al : held) a.release(al);
  EXPECT_EQ(a.free_bytes(), 32 * kG);
}

TEST(OffsetAllocator, OutOfSlabRequestFailsCleanly) {
  OffsetAllocator a(8 * kG, kG);
  EXPECT_FALSE(a.allocate(9 * kG).valid());
  // And an over-committed slab fails without disturbing existing holds.
  const auto al = a.allocate(6 * kG);
  ASSERT_TRUE(al.valid());
  EXPECT_FALSE(a.allocate(3 * kG).valid());
  a.release(al);
  EXPECT_TRUE(a.allocate(8 * kG).valid());
}

TEST(OffsetAllocator, ReleaseCoalescesBothNeighbours) {
  OffsetAllocator a(8 * kG, kG);
  const auto l = a.allocate(2 * kG);
  const auto m = a.allocate(2 * kG);
  const auto r = a.allocate(2 * kG);
  ASSERT_TRUE(l.valid() && m.valid() && r.valid());
  a.release(l);
  a.release(r);
  // Freeing the middle block must merge left + middle + right + the
  // untouched tail into one run covering the whole slab.
  a.release(m);
  const auto rep = a.report();
  EXPECT_EQ(rep.free_runs, 1u);
  EXPECT_EQ(rep.largest_free_bytes, 8 * kG);
}

TEST(OffsetAllocator, FragmentationBoundedByGoodFit) {
  // Alternating alloc/free leaves holes; a request equal to the largest
  // hole must still succeed (the class peek), and total waste per
  // allocation is bounded by one granule of rounding.
  OffsetAllocator a(64 * kG, kG);
  std::vector<OffsetAllocator::Allocation> held;
  for (int i = 0; i < 16; ++i) held.push_back(a.allocate(2 * kG));
  for (std::size_t i = 0; i < held.size(); i += 2) a.release(held[i]);
  // 8 two-page holes + the 32-page tail; a 2-page request must not fail.
  const auto fit = a.allocate(2 * kG);
  EXPECT_TRUE(fit.valid());
  a.release(fit);
  const auto rep = a.report();
  EXPECT_GE(rep.largest_free_bytes, 32 * kG);
  for (std::size_t i = 1; i < held.size(); i += 2) a.release(held[i]);
  EXPECT_EQ(a.report().free_runs, 1u);
}

TEST(OffsetAllocator, DoubleFreeThrows) {
  OffsetAllocator a(8 * kG, kG);
  const auto al = a.allocate(2 * kG);
  ASSERT_TRUE(al.valid());
  a.release(al);
  EXPECT_THROW(a.release(al), std::logic_error);
}

TEST(OffsetAllocator, ForeignReleaseThrows) {
  OffsetAllocator a(8 * kG, kG);
  OffsetAllocator::Allocation fake;
  fake.offset = 1;  // not granule-aligned
  fake.bytes = kG;
  EXPECT_THROW(a.release(fake), std::logic_error);
  fake.offset = 64 * kG;  // outside the slab
  EXPECT_THROW(a.release(fake), std::logic_error);
}

TEST(OffsetAllocator, RandomizedChurnConservesBytes) {
  OffsetAllocator a(64 * kG, kG);
  std::mt19937 rng(1234);
  std::vector<OffsetAllocator::Allocation> held;
  u64 held_bytes = 0;
  for (int it = 0; it < 20000; ++it) {
    if (held.empty() || (rng() % 2 == 0 && held_bytes < 48 * kG)) {
      const auto al = a.allocate(1 + rng() % (6 * kG));
      if (al.valid()) {
        held.push_back(al);
        held_bytes += al.bytes;
      }
    } else {
      const std::size_t i = rng() % held.size();
      held_bytes -= held[i].bytes;
      a.release(held[i]);
      held[i] = held.back();
      held.pop_back();
    }
    ASSERT_EQ(a.free_bytes(), 64 * kG - held_bytes);
  }
  for (const auto& al : held) a.release(al);
  const auto rep = a.report();
  EXPECT_EQ(rep.free_runs, 1u);  // full coalescing, no leaked pages
  EXPECT_EQ(rep.free_bytes, 64 * kG);
}

// --- BufferPool over the allocator -----------------------------------------

TEST(BufferPoolSlab, LeasesAreAlignedAndZeroChurn) {
  BufferPool::Options o;
  o.slab_bytes = 8 * kG;
  BufferPool pool(o);
  auto a = pool.acquire(100);
  auto b = pool.acquire(2 * kG);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % kG, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kG, 0u);
  a.release();
  b.release();
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.releases, 2u);
  EXPECT_EQ(s.heap_fallbacks, 0u);
  EXPECT_EQ(s.bytes_in_use, 0u);
}

TEST(BufferPoolSlab, OversizeRequestFallsBackToHeapAndIsCounted) {
  BufferPool::Options o;
  o.slab_bytes = 4 * kG;
  BufferPool pool(o);
  {
    auto lease = pool.acquire(16 * kG);  // larger than the whole slab
    ASSERT_TRUE(lease.valid());
    lease.bytes()[0] = 1;  // must be writable
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.heap_fallbacks, 1u);
  EXPECT_EQ(s.releases, 1u);
}

TEST(BufferPoolSlab, TryAcquireFailsWithoutBlocking) {
  BufferPool::Options o;
  o.slab_bytes = 2 * kG;
  BufferPool pool(o);
  auto hold = pool.acquire(2 * kG);
  EXPECT_FALSE(pool.try_acquire(kG).valid());
  hold.release();
  EXPECT_TRUE(pool.try_acquire(kG).valid());
}

TEST(BufferPoolSlab, AcquireBlocksUntilSpaceFrees) {
  BufferPool::Options o;
  o.slab_bytes = 2 * kG;
  BufferPool pool(o);
  auto hold = pool.acquire(2 * kG);
  std::thread waiter([&] {
    auto lease = pool.acquire(kG);  // blocks until `hold` releases
    EXPECT_TRUE(lease.valid());
  });
  // Give the waiter time to park, then free the slab.
  while (pool.stats().blocked_waits == 0) std::this_thread::yield();
  hold.release();
  waiter.join();
  EXPECT_GE(pool.stats().blocked_waits, 1u);
}

TEST(BufferPoolSlab, LegacyFixedBudgetCtorStillWorks) {
  BufferPool pool(3, 1000);  // three 1000-byte leases (granule-rounded slab)
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(pool.buffer_size(), 1000u);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_FALSE(pool.try_acquire().valid());
  a.release();
  EXPECT_EQ(pool.available(), 1u);
  b.release();
  c.release();
}

}  // namespace
}  // namespace mlpo
