// Alpha-beta collective cost models: limits, monotonicity, ZeRO-3 ratios.
#include <gtest/gtest.h>

#include "comm/collectives.hpp"
#include "train/model_config.hpp"

namespace mlpo {
namespace {

const Interconnect kNet{"test", 100.0 * GB, 1e-6};

TEST(Collectives, SingleRankIsFree) {
  EXPECT_EQ(allreduce_seconds(kNet, 1, 1 * GiB), 0.0);
  EXPECT_EQ(allgather_seconds(kNet, 1, 1 * GiB), 0.0);
  EXPECT_EQ(reduce_scatter_seconds(kNet, 1, 1 * GiB), 0.0);
  EXPECT_EQ(broadcast_seconds(kNet, 1, 1 * GiB), 0.0);
}

TEST(Collectives, ZeroBytesIsFree) {
  EXPECT_EQ(allreduce_seconds(kNet, 8, 0), 0.0);
}

TEST(Collectives, AllreduceIsTwiceAllgather) {
  // Ring allreduce = reduce-scatter + allgather; latency terms aside, the
  // bandwidth term is exactly 2x.
  Interconnect no_latency = kNet;
  no_latency.latency = 0;
  const u64 bytes = 10 * GiB;
  EXPECT_NEAR(allreduce_seconds(no_latency, 8, bytes),
              2 * allgather_seconds(no_latency, 8, bytes), 1e-12);
}

TEST(Collectives, RingFractionApproachesOne) {
  Interconnect no_latency = kNet;
  no_latency.latency = 0;
  const u64 bytes = 1 * GiB;
  const f64 two_ranks = allgather_seconds(no_latency, 2, bytes);
  const f64 many_ranks = allgather_seconds(no_latency, 64, bytes);
  // (p-1)/p: 0.5 at p=2, ~0.98 at p=64.
  EXPECT_NEAR(two_ranks, 0.5 * bytes / no_latency.bandwidth, 1e-9);
  EXPECT_GT(many_ranks, 1.9 * two_ranks);
  EXPECT_LT(many_ranks, 2.0 * two_ranks);
}

TEST(Collectives, LatencyTermGrowsWithRanks) {
  Interconnect slow_net{"slow", 1e15, 1e-3};  // latency dominated
  const f64 small = allreduce_seconds(slow_net, 2, 1024);
  const f64 large = allreduce_seconds(slow_net, 16, 1024);
  EXPECT_GT(large, small * 10);
}

TEST(Collectives, BroadcastLogarithmicLatency) {
  Interconnect slow_net{"slow", 1e15, 1e-3};
  const f64 p2 = broadcast_seconds(slow_net, 2, 1024);
  const f64 p16 = broadcast_seconds(slow_net, 16, 1024);
  EXPECT_NEAR(p16 / p2, 4.0, 0.1);  // log2(16)/log2(2)
}

TEST(Collectives, Zero3CostsForwardLessThanBackward) {
  const auto cost = zero3_comm_cost(kNet, 8, 80ull * GiB);
  EXPECT_GT(cost.forward_seconds, 0.0);
  // Backward re-gathers parameters and reduce-scatters gradients: 2x.
  EXPECT_NEAR(cost.backward_seconds, 2 * cost.forward_seconds,
              cost.forward_seconds * 0.01);
}

TEST(Collectives, TensorParallelScalesWithLayers) {
  const f64 l10 = tensor_parallel_seconds(kNet, 4, 10, 1 * MiB);
  const f64 l20 = tensor_parallel_seconds(kNet, 4, 20, 1 * MiB);
  EXPECT_NEAR(l20, 2 * l10, l10 * 0.01);
  EXPECT_EQ(tensor_parallel_seconds(kNet, 1, 10, 1 * MiB), 0.0);
}

TEST(Collectives, PresetInterconnectsOrdered) {
  // NVLink-class must be much faster than the inter-node fabric.
  EXPECT_GT(Interconnect::nvlink().bandwidth,
            5 * Interconnect::slingshot().bandwidth);
}

TEST(Collectives, PaperScaleSanity) {
  // 70B FP16 (140 GB) allgathered over 2 nodes of Slingshot: order seconds,
  // well below the I/O-bound update phase (the premise of §4.4: comm does
  // not offset offloading gains).
  const f64 t = allgather_seconds(Interconnect::slingshot(), 2,
                                  paper_model("70B").fp16_param_bytes());
  EXPECT_GT(t, 0.5);
  EXPECT_LT(t, 30.0);
}

}  // namespace
}  // namespace mlpo
