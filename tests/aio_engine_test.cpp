// Async I/O engine: completion semantics, error propagation, drain, batch
// waiting, bursty submission.
#include <gtest/gtest.h>

#include <atomic>

#include "aio/aio_engine.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

TEST(AioEngine, ReadWriteCompleteThroughFutures) {
  MemoryTier tier("mem");
  AioEngine engine(2, 16);
  std::vector<u8> data = {1, 2, 3, 4};
  engine.submit_write(tier, "k", data).get();
  std::vector<u8> out(4);
  engine.submit_read(tier, "k", out).get();
  EXPECT_EQ(out, data);
}

TEST(AioEngine, ErrorsTravelThroughFuture) {
  MemoryTier tier("mem");
  AioEngine engine(1, 8);
  std::vector<u8> out(4);
  auto fut = engine.submit_read(tier, "missing", out);
  EXPECT_THROW(fut.get(), std::out_of_range);
}

TEST(AioEngine, DrainWaitsForAllSubmitted) {
  AioEngine engine(4, 64);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    engine.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1);
    });
  }
  engine.drain();
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(engine.submitted(), 100u);
  EXPECT_EQ(engine.completed(), 100u);
}

TEST(AioEngine, DrainOnIdleEngineReturnsImmediately) {
  AioEngine engine(2, 8);
  engine.drain();  // must not hang
  SUCCEED();
}

TEST(AioEngine, BurstBeyondQueueDepthBackpressures) {
  AioEngine engine(1, 4);  // tiny queue
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(engine.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(AioEngine, TasksRunConcurrentlyAcrossThreads) {
  AioEngine engine(4, 16);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(engine.submit([&] {
      const int now = running.fetch_add(1) + 1;
      int expect = peak.load();
      while (expect < now && !peak.compare_exchange_weak(expect, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      running.fetch_sub(1);
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_GE(peak.load(), 2);  // at least two overlapped
}

TEST(IoBatch, WaitAllPropagatesFirstError) {
  AioEngine engine(2, 16);
  IoBatch batch;
  std::atomic<int> ok{0};
  batch.add(engine.submit([&ok] { ok.fetch_add(1); }));
  batch.add(engine.submit([] { throw std::runtime_error("io failed"); }));
  batch.add(engine.submit([&ok] { ok.fetch_add(1); }));
  EXPECT_THROW(batch.wait_all(), std::runtime_error);
  // All operations settled despite the failure.
  EXPECT_EQ(ok.load(), 2);
  // Batch is reusable after wait_all.
  batch.add(engine.submit([&ok] { ok.fetch_add(1); }));
  batch.wait_all();
  EXPECT_EQ(ok.load(), 3);
}

TEST(IoBatch, WaitAllAggregatesEveryError) {
  AioEngine engine(2, 16);
  IoBatch batch;
  batch.add(engine.submit([] { throw std::runtime_error("path0 down"); }));
  batch.add(engine.submit([] { throw std::runtime_error("path1 down"); }));
  batch.add(engine.submit([] {}));
  try {
    batch.wait_all();
    FAIL() << "expected an aggregated error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 operations failed"), std::string::npos) << what;
    EXPECT_NE(what.find("path0 down"), std::string::npos) << what;
    EXPECT_NE(what.find("path1 down"), std::string::npos) << what;
  }
}

TEST(IoBatch, SingleFailurePreservesExceptionType) {
  AioEngine engine(1, 8);
  IoBatch batch;
  batch.add(engine.submit([] { throw std::out_of_range("missing key"); }));
  EXPECT_THROW(batch.wait_all(), std::out_of_range);
}

TEST(IoBatch, EmptyBatchIsFine) {
  IoBatch batch;
  batch.wait_all();
  EXPECT_EQ(batch.size(), 0u);
}

}  // namespace
}  // namespace mlpo
