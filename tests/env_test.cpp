// Strict env-knob parsing: defaults, valid values, and loud rejection of
// malformed/zero/out-of-range settings (the bench harness builds its
// MLPO_TIME_SCALE / MLPO_BENCH_ITERS / MLPO_BENCH_WARMUP validation on it).
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hpp"

namespace mlpo::env {
namespace {

constexpr const char* kVar = "MLPO_ENV_TEST_VAR";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }
  void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvTest, UnsetReturnsDefault) {
  EXPECT_DOUBLE_EQ(f64_or(kVar, 500.0), 500.0);
  EXPECT_EQ(u32_or(kVar, 3), 3u);
}

TEST_F(EnvTest, ParsesValidValues) {
  set("250.5");
  EXPECT_DOUBLE_EQ(f64_or(kVar, 1.0), 250.5);
  set("1e2");
  EXPECT_DOUBLE_EQ(f64_or(kVar, 1.0), 100.0);
  set("42");
  EXPECT_EQ(u32_or(kVar, 1), 42u);
  set("42  ");  // trailing whitespace tolerated
  EXPECT_EQ(u32_or(kVar, 1), 42u);
}

TEST_F(EnvTest, RejectsNonNumeric) {
  for (const char* bad : {"abc", "5OO", "12x", "1.5.2", ""}) {
    set(bad);
    EXPECT_THROW(f64_or(kVar, 1.0), EnvError) << "value: " << bad;
    EXPECT_THROW(u32_or(kVar, 1), EnvError) << "value: " << bad;
  }
}

TEST_F(EnvTest, RejectsNonPositiveFloatWhenRequired) {
  set("0");
  EXPECT_THROW(f64_or(kVar, 1.0), EnvError);
  set("-3");
  EXPECT_THROW(f64_or(kVar, 1.0), EnvError);
  // ... but allows them when positivity is not required.
  set("0");
  EXPECT_DOUBLE_EQ(f64_or(kVar, 1.0, /*require_positive=*/false), 0.0);
}

TEST_F(EnvTest, RejectsIntegerBelowMinimumOrNegative) {
  set("0");
  EXPECT_THROW(u32_or(kVar, 3, /*min_value=*/1), EnvError);
  EXPECT_EQ(u32_or(kVar, 3, /*min_value=*/0), 0u);
  set("-1");
  EXPECT_THROW(u32_or(kVar, 3), EnvError);
}

TEST_F(EnvTest, RejectsOverflow) {
  set("1e999");
  EXPECT_THROW(f64_or(kVar, 1.0), EnvError);
  set("4294967296");  // UINT32_MAX + 1
  EXPECT_THROW(u32_or(kVar, 1), EnvError);
  set("4294967295");
  EXPECT_EQ(u32_or(kVar, 1), 4294967295u);
}

TEST_F(EnvTest, ErrorNamesVariableAndValue) {
  set("bogus");
  try {
    f64_or(kVar, 1.0);
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(kVar), std::string::npos);
    EXPECT_NE(msg.find("bogus"), std::string::npos);
  }
}

}  // namespace
}  // namespace mlpo::env
