// ClusterSim: multi-node weak scaling structure, shared PFS, merging.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"

namespace mlpo {
namespace {

ModelConfig tiny_model() { return ModelConfig{"tiny", 4, 4096, 32}; }

ClusterConfig make_config(u32 nodes, bool mlp = true) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.model = tiny_model();
  cfg.node.testbed = TestbedSpec::testbed2();
  cfg.node.engine_opts =
      mlp ? EngineOptions::mlp_offload() : EngineOptions::deepspeed_zero3();
  cfg.node.engine_opts.elem_scale = 65536;
  cfg.node.subgroup_params = 50'000'000;
  cfg.node.host_cache_override = 2;
  return cfg;
}

TEST(ClusterSim, SingleNodeDegeneratesToNodeSim) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_config(1));
  cluster.initialize();
  const auto report = cluster.run_iteration(0);
  EXPECT_EQ(report.params_updated, tiny_model().parameters());
  EXPECT_GT(report.update_seconds, 0.0);
}

TEST(ClusterSim, TwoNodesShardAcrossEightRanks) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_config(2));
  EXPECT_EQ(cluster.node_count(), 2u);
  u64 total = 0;
  for (u32 n = 0; n < 2; ++n) {
    for (u32 w = 0; w < cluster.node(n).worker_count(); ++w) {
      const auto& layout = cluster.node(n).worker(w).engine().layout();
      EXPECT_EQ(layout.world_size, 8u);
      total += layout.shard_params;
    }
  }
  EXPECT_EQ(total, tiny_model().parameters());
}

TEST(ClusterSim, GlobalRanksAreUnique) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_config(2));
  std::set<int> ranks;
  for (u32 n = 0; n < 2; ++n) {
    for (u32 w = 0; w < 4; ++w) {
      ranks.insert(cluster.node(n).worker(w).rank());
    }
  }
  EXPECT_EQ(ranks.size(), 8u);
  EXPECT_EQ(*ranks.begin(), 0);
  EXPECT_EQ(*ranks.rbegin(), 7);
}

TEST(ClusterSim, NodesShareOnePfsFabric) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_config(2));
  ASSERT_NE(cluster.shared_pfs(), nullptr);
  // Each node has its own NIC-limited client channel (distinct objects)...
  auto* client0 = dynamic_cast<ThrottledTier*>(&cluster.node(0).vtier().path(1));
  auto* client1 = dynamic_cast<ThrottledTier*>(&cluster.node(1).vtier().path(1));
  ASSERT_NE(client0, nullptr);
  ASSERT_NE(client1, nullptr);
  EXPECT_NE(client0, client1);
  // ...funnelling into the one shared fabric tier.
  EXPECT_EQ(&client0->backend(), cluster.shared_pfs());
  EXPECT_EQ(&client1->backend(), cluster.shared_pfs());
  // The fabric aggregates more bandwidth than any single client channel.
  EXPECT_GT(cluster.shared_pfs()->read_bandwidth(),
            client0->read_bandwidth());
}

TEST(ClusterSim, RunsIterationsAcrossNodes) {
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_config(2));
  cluster.initialize();
  const auto reports = cluster.run(2, 1);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].params_updated, tiny_model().parameters());
  u32 expected_subgroups = 0;
  for (u32 n = 0; n < 2; ++n) {
    for (u32 w = 0; w < cluster.node(n).worker_count(); ++w) {
      expected_subgroups +=
          cluster.node(n).worker(w).engine().num_subgroups();
    }
  }
  EXPECT_EQ(reports[0].subgroups_processed, expected_subgroups);
  EXPECT_GT(reports[0].update_seconds, 0.0);
}

TEST(ClusterSim, MergePreservesIoSchedulerCounters) {
  // Regression: the cluster merge used to drop io_classes,
  // io_coalesced_batches and io_max_queue_depth, silently zeroing the
  // per-priority queue-wait/service telemetry at cluster scope even though
  // every node-level report carried it.
  SimClock clock(2000.0);
  ClusterSim cluster(clock, make_config(2));
  cluster.initialize();
  const auto report = cluster.run_iteration(0);

  const auto& demand =
      report.io_classes[static_cast<std::size_t>(IoPriority::kDemandPrefetch)];
  EXPECT_GT(demand.requests, 0u);
  EXPECT_GT(demand.sim_bytes, 0u);
  EXPECT_GT(demand.service_seconds, 0.0);
  const auto& flush =
      report.io_classes[static_cast<std::size_t>(IoPriority::kLazyFlush)];
  EXPECT_GT(flush.requests, 0u);
  EXPECT_GT(report.io_max_queue_depth, 0u);

  // The cluster-level counters are the sum over nodes: they must cover at
  // least one demand fetch per processed subgroup minus cache hits.
  EXPECT_GE(demand.requests + report.host_cache_hits,
            report.subgroups_processed);
}

TEST(ClusterSim, InterNodeCommChargedInForward) {
  // Multi-node DP must make the forward/backward phases more expensive
  // than single-node (slingshot allgathers vs pure NVLink).
  SimClock clock(2000.0);
  ClusterSim single(clock, make_config(1));
  single.initialize();
  ClusterSim dual(clock, make_config(2));
  dual.initialize();
  const auto r1 = single.run_iteration(0);
  const auto r2 = dual.run_iteration(0);
  EXPECT_GT(r2.forward_seconds, r1.forward_seconds);
}

TEST(ClusterSim, WeakScalingAggregateThroughputGrows) {
  // Per-node work is constant here (model fixed, more ranks -> smaller
  // shards), so aggregate update throughput must rise with node count.
  // Lower time scale + more measured iterations keep the comparison well
  // clear of emulation-host scheduling noise.
  SimClock clock(1000.0);
  ClusterSim single(clock, make_config(1));
  single.initialize();
  ClusterSim dual(clock, make_config(2));
  dual.initialize();
  const auto r1 = average_reports(single.run(5, 1));
  const auto r2 = average_reports(dual.run(5, 1));
  EXPECT_GT(r2.update_throughput_mparams(), r1.update_throughput_mparams());
}

}  // namespace
}  // namespace mlpo
