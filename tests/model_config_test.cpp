// Table 2 model configurations and derived memory footprints.
#include <gtest/gtest.h>

#include "train/model_config.hpp"

namespace mlpo {
namespace {

TEST(ModelConfig, PaperModelsPresent) {
  const auto& models = paper_models();
  ASSERT_EQ(models.size(), 7u);
  EXPECT_EQ(models.front().name, "40B");
  EXPECT_EQ(models.back().name, "280B");
}

TEST(ModelConfig, LookupByName) {
  const auto& m = paper_model("70B");
  EXPECT_EQ(m.num_layers, 80u);
  EXPECT_EQ(m.hidden_dim, 8192u);
  EXPECT_EQ(m.attention_heads, 64u);
  EXPECT_THROW(paper_model("13B"), std::out_of_range);
}

// Parameter counts should land near the headline sizes (the paper quotes
// rounded marketing numbers; we accept +/-20%).
struct SizeCase {
  const char* name;
  f64 headline_billions;
};

class ParamCountTest : public ::testing::TestWithParam<SizeCase> {};

TEST_P(ParamCountTest, HeadlineSizeWithinTolerance) {
  const auto& [name, billions] = GetParam();
  const f64 params = static_cast<f64>(paper_model(name).parameters()) / 1e9;
  EXPECT_GT(params, billions * 0.8) << name;
  EXPECT_LT(params, billions * 1.25) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ParamCountTest,
    ::testing::Values(SizeCase{"40B", 40}, SizeCase{"52B", 52},
                      SizeCase{"70B", 70}, SizeCase{"100B", 100},
                      SizeCase{"120B", 120}, SizeCase{"130B", 130},
                      SizeCase{"280B", 280}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ModelConfig, MemoryFootprintRatios) {
  const auto& m = paper_model("40B");
  const u64 p = m.parameters();
  EXPECT_EQ(m.fp16_param_bytes(), p * 2);
  EXPECT_EQ(m.fp16_grad_bytes(), p * 2);
  // Optimizer state is 6x the FP16 model (the paper's "8x larger than FP16
  // parameters" counts gradients too: 12+4 vs 2).
  EXPECT_EQ(m.optimizer_state_bytes(), p * 12);
}

TEST(ModelConfig, OptimizerStateSizesMotivateOffloading) {
  // The paper's premise: 40B+ models exceed 512 GB host memory; 20B fits.
  EXPECT_GT(paper_model("40B").optimizer_state_bytes(), 450ull * GiB);
  EXPECT_LT(baseline_20b().optimizer_state_bytes(), 512ull * GiB);
  // 120B reaches ~1.8 TB survivable only with third-level storage (§4.2).
  const f64 tb_120 =
      static_cast<f64>(paper_model("120B").optimizer_state_bytes()) / 1e12;
  EXPECT_GT(tb_120, 1.2);
  EXPECT_LT(tb_120, 2.0);
}

TEST(ModelConfig, ParametersMonotonicInDepthAndWidth) {
  ModelConfig narrow{"t", 10, 1024, 16};
  ModelConfig deeper = narrow;
  deeper.num_layers = 20;
  ModelConfig wider = narrow;
  wider.hidden_dim = 2048;
  EXPECT_GT(deeper.parameters(), narrow.parameters());
  EXPECT_GT(wider.parameters(), narrow.parameters());
}

}  // namespace
}  // namespace mlpo
