// JsonReporter: repeat aggregation, emit -> parse round-trip, and baseline
// comparison verdicts (pass / regression / improvement / missing / new).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "telemetry/json_reporter.hpp"

namespace mlpo::telemetry {
namespace {

Metric make(const std::string& name, f64 value,
            Better better = Better::kNeither, json::Object params = {}) {
  Metric m;
  m.name = name;
  m.unit = "s";
  m.params = std::move(params);
  m.value = value;
  m.better = better;
  return m;
}

MetricSeries series_of(const std::string& bench, const std::string& name,
                       std::vector<f64> values,
                       Better better = Better::kNeither,
                       json::Object params = {}) {
  MetricSeries s;
  s.bench = bench;
  s.name = name;
  s.unit = "s";
  s.params = std::move(params);
  s.better = better;
  s.values = std::move(values);
  return s;
}

TEST(MetricSeries, MedianMinMax) {
  const auto odd = series_of("b", "m", {3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(odd.median(), 2.0);
  EXPECT_DOUBLE_EQ(odd.min(), 1.0);
  EXPECT_DOUBLE_EQ(odd.max(), 3.0);

  const auto even = series_of("b", "m", {4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(even.median(), 2.5);

  const auto empty = series_of("b", "m", {});
  EXPECT_DOUBLE_EQ(empty.median(), 0.0);
}

TEST(MetricSeries, KeyDistinguishesParams) {
  const auto a = series_of("b", "m", {}, Better::kNeither, {{"model", "40B"}});
  const auto b = series_of("b", "m", {}, Better::kNeither, {{"model", "70B"}});
  const auto c = series_of("b2", "m", {}, Better::kNeither, {{"model", "40B"}});
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_EQ(a.key(),
            series_of("b", "m", {1.0}, Better::kLower, {{"model", "40B"}}).key());
}

TEST(JsonReporter, AggregatesRepeatsBySeries) {
  JsonReporter reporter;
  reporter.set_context(500.0, 2);
  reporter.add("bench_a", {"smoke"},
               {make("latency", 1.0, Better::kLower, {{"model", "40B"}}),
                make("latency", 5.0, Better::kLower, {{"model", "70B"}})});
  reporter.add("bench_a", {"smoke"},
               {make("latency", 3.0, Better::kLower, {{"model", "40B"}}),
                make("latency", 7.0, Better::kLower, {{"model", "70B"}})});

  ASSERT_EQ(reporter.series().size(), 2u);
  EXPECT_EQ(reporter.series()[0].values, (std::vector<f64>{1.0, 3.0}));
  EXPECT_EQ(reporter.series()[1].values, (std::vector<f64>{5.0, 7.0}));
  EXPECT_DOUBLE_EQ(reporter.series()[0].median(), 2.0);
}

TEST(JsonReporter, EmitParseRoundTrip) {
  JsonReporter reporter;
  reporter.set_context(500.0, 3);
  for (int r = 0; r < 3; ++r) {
    reporter.add("bench_a", {"smoke", "io"},
                 {make("p99", 0.1 * (r + 1), Better::kLower,
                       {{"discipline", "priority"}})});
    reporter.add("bench_b", {"figure"},
                 {make("throughput", 8.0 + r, Better::kHigher)});
  }

  const auto parsed = JsonReporter::from_json(reporter.to_json());
  ASSERT_EQ(parsed.size(), reporter.series().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto& in = reporter.series()[i];
    const auto& out = parsed[i];
    EXPECT_EQ(out.bench, in.bench);
    EXPECT_EQ(out.name, in.name);
    EXPECT_EQ(out.unit, in.unit);
    EXPECT_EQ(out.params, in.params);
    EXPECT_EQ(out.better, in.better);
    EXPECT_EQ(out.values, in.values);
    EXPECT_EQ(out.key(), in.key());
  }
}

TEST(JsonReporter, WriteAndLoadFile) {
  JsonReporter reporter;
  reporter.set_context(100.0, 1);
  reporter.add("bench_a", {}, {make("m", 42.0, Better::kHigher)});

  const auto path = std::filesystem::temp_directory_path() /
                    "mlpo_json_reporter_test.json";
  reporter.write(path.string());
  const auto loaded = JsonReporter::load(path.string());
  std::filesystem::remove(path);

  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].bench, "bench_a");
  EXPECT_DOUBLE_EQ(loaded[0].median(), 42.0);
  EXPECT_EQ(loaded[0].better, Better::kHigher);
}

TEST(JsonReporter, LoadRejectsMissingFileAndWrongSchema) {
  EXPECT_THROW(JsonReporter::load("/nonexistent/path.json"),
               std::runtime_error);
  EXPECT_THROW(JsonReporter::from_json(json::parse(R"({"schema":"v999"})")),
               std::runtime_error);
}

TEST(BetterEnum, RoundTripsAndRejectsUnknown) {
  for (const Better b : {Better::kNeither, Better::kLower, Better::kHigher}) {
    EXPECT_EQ(better_from_string(to_string(b)), b);
  }
  EXPECT_THROW(better_from_string("sideways"), std::runtime_error);
}

TEST(BaselineCompare, PassWithinThreshold) {
  const auto current = {series_of("b", "m", {1.05}, Better::kLower)};
  const auto baseline = {series_of("b", "m", {1.0}, Better::kLower)};
  const auto report = compare_to_baseline(current, baseline, 10.0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.passes, 1u);
  EXPECT_EQ(report.deltas[0].kind, BaselineDelta::Kind::kPass);
  EXPECT_NEAR(report.deltas[0].delta_pct, 5.0, 1e-9);
}

TEST(BaselineCompare, RegressionLowerIsBetter) {
  const auto current = {series_of("b", "m", {1.5}, Better::kLower)};
  const auto baseline = {series_of("b", "m", {1.0}, Better::kLower)};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.deltas[0].kind, BaselineDelta::Kind::kRegression);
}

TEST(BaselineCompare, RegressionHigherIsBetter) {
  const auto current = {series_of("b", "thru", {6.0}, Better::kHigher)};
  const auto baseline = {series_of("b", "thru", {10.0}, Better::kHigher)};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
}

TEST(BaselineCompare, ImprovementIsNotAFailure) {
  const auto current = {series_of("b", "m", {0.5}, Better::kLower)};
  const auto baseline = {series_of("b", "m", {1.0}, Better::kLower)};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.improvements, 1u);
  EXPECT_EQ(report.deltas[0].kind, BaselineDelta::Kind::kImprovement);
}

TEST(BaselineCompare, UngatedMetricNeverRegresses) {
  const auto current = {series_of("b", "m", {100.0}, Better::kNeither)};
  const auto baseline = {series_of("b", "m", {1.0}, Better::kNeither)};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.passes, 1u);
}

TEST(BaselineCompare, ChangedGateDirectionFailsTheGate) {
  // Dropping a gate to kNeither (or flipping it) would silently disarm the
  // protection; the comparison must force a baseline refresh instead.
  const auto current = {series_of("b", "m", {1.0}, Better::kNeither)};
  const auto baseline = {series_of("b", "m", {1.0}, Better::kHigher)};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.direction_changes, 1u);
  EXPECT_EQ(report.deltas[0].kind, BaselineDelta::Kind::kDirectionChanged);
}

TEST(BaselineCompare, MissingMetricFailsTheGate) {
  const std::vector<MetricSeries> current = {};
  const auto baseline = {series_of("b", "m", {1.0}, Better::kLower)};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.deltas[0].kind, BaselineDelta::Kind::kMissing);
}

TEST(BaselineCompare, NewMetricIsInformational) {
  const auto current = {series_of("b", "m", {1.0}, Better::kLower)};
  const std::vector<MetricSeries> baseline = {};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.added, 1u);
  EXPECT_EQ(report.deltas[0].kind, BaselineDelta::Kind::kNew);
}

TEST(BaselineCompare, ParamsParticipateInMatching) {
  // Same metric name, different params: no cross-match, one new + one
  // missing.
  const auto current = {
      series_of("b", "m", {1.0}, Better::kLower, {{"model", "40B"}})};
  const auto baseline = {
      series_of("b", "m", {1.0}, Better::kLower, {{"model", "70B"}})};
  const auto report = compare_to_baseline(current, baseline, 25.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.added, 1u);
  EXPECT_EQ(report.missing, 1u);
}

TEST(BaselineCompare, ZeroBaselineHandledWithoutDivide) {
  const auto worse = compare_to_baseline(
      {series_of("b", "m", {0.5}, Better::kLower)},
      {series_of("b", "m", {0.0}, Better::kLower)}, 25.0);
  EXPECT_FALSE(worse.ok());

  const auto same = compare_to_baseline(
      {series_of("b", "m", {0.0}, Better::kLower)},
      {series_of("b", "m", {0.0}, Better::kLower)}, 25.0);
  EXPECT_TRUE(same.ok());
}

TEST(JsonReporter, ThresholdOverrideRoundTrips) {
  JsonReporter reporter;
  reporter.set_context(100.0, 1);
  Metric wide = make("divergence", 12.0, Better::kLower);
  wide.threshold_pct = 50;
  reporter.add("bench_a", {}, {wide, make("tight", 1.0, Better::kLower)});

  // Serialized only when set; absent rows parse back as 0 (= run-wide).
  const auto doc = reporter.to_json();
  const auto parsed = JsonReporter::from_json(doc);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed[0].threshold_pct, 50.0);
  EXPECT_DOUBLE_EQ(parsed[1].threshold_pct, 0.0);
  const auto& rows = doc.at("benchmarks").as_array()[0]
                         .at("metrics").as_array();
  EXPECT_TRUE(rows[0].contains("threshold_pct"));
  EXPECT_FALSE(rows[1].contains("threshold_pct"));
}

TEST(BaselineCompare, PerMetricThresholdOverridesRunWide) {
  // +40% move: the run-wide 25% gate would call it a regression, but the
  // series carries its own 50% band.
  auto cur = series_of("b", "m", {1.4}, Better::kLower);
  cur.threshold_pct = 50;
  const auto baseline = {series_of("b", "m", {1.0}, Better::kLower)};
  EXPECT_TRUE(compare_to_baseline({cur}, baseline, 25.0).ok());

  // +60% bursts through the override too.
  cur.values = {1.6};
  const auto report = compare_to_baseline({cur}, baseline, 25.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);

  // The baseline's stored override applies when the current run carries
  // none (comparing an old document against a refreshed baseline).
  auto base_override = series_of("b", "m", {1.0}, Better::kLower);
  base_override.threshold_pct = 50;
  EXPECT_TRUE(compare_to_baseline({series_of("b", "m", {1.4}, Better::kLower)},
                                  {base_override}, 25.0)
                  .ok());

  // An un-overridden sibling metric still gates at the run-wide value.
  EXPECT_FALSE(compare_to_baseline({series_of("b", "n", {1.4}, Better::kLower)},
                                   {series_of("b", "n", {1.0}, Better::kLower)},
                                   25.0)
                   .ok());
}

TEST(BaselineCompare, MedianOfRepeatsDecides) {
  // Median 2.0 vs baseline 2.0: one outlier repeat must not trip the gate.
  const auto current = {series_of("b", "m", {2.0, 9.0, 1.9}, Better::kLower)};
  const auto baseline = {series_of("b", "m", {2.0}, Better::kLower)};
  EXPECT_TRUE(compare_to_baseline(current, baseline, 25.0).ok());
}

}  // namespace
}  // namespace mlpo::telemetry
