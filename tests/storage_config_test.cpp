// Strict parse-time validation of the config "storage" section and the
// backend factory behind it: unknown kinds abort with the known set,
// file-backed kinds demand a root, and make_nvme_backend builds the tier
// the JSON asked for.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "io/uring_backend.hpp"
#include "runtime/storage_config.hpp"
#include "runtime/testbed.hpp"
#include "tiers/file_tier.hpp"
#include "util/json.hpp"

namespace mlpo {
namespace {

namespace fs = std::filesystem;

StorageConfig parse(const std::string& text) {
  return storage_config_from_json(json::parse(text));
}

TEST(StorageConfig, DefaultsToSimWithNoRoot) {
  const StorageConfig cfg = parse("{}");
  EXPECT_EQ(cfg.backend, "sim");
  EXPECT_TRUE(cfg.is_sim());
  EXPECT_TRUE(cfg.root.empty());
  EXPECT_FALSE(cfg.direct);
  EXPECT_EQ(cfg.queue_depth, 64u);
  EXPECT_EQ(cfg.fallback_workers, 2u);
  EXPECT_FALSE(cfg.force_fallback);
}

TEST(StorageConfig, ParsesEveryKnob) {
  const StorageConfig cfg = parse(R"({
    "backend": "uring_file",
    "root": "/tmp/mlpo_store",
    "direct": true,
    "queue_depth": 16,
    "fallback_workers": 4,
    "force_fallback": true
  })");
  EXPECT_EQ(cfg.backend, "uring_file");
  EXPECT_EQ(cfg.root, "/tmp/mlpo_store");
  EXPECT_TRUE(cfg.direct);
  EXPECT_EQ(cfg.queue_depth, 16u);
  EXPECT_EQ(cfg.fallback_workers, 4u);
  EXPECT_TRUE(cfg.force_fallback);
}

TEST(StorageConfig, UnknownBackendListsTheKnownSet) {
  try {
    parse(R"({"backend": "tape"})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tape"), std::string::npos);
    for (const auto& k : storage_backend_names()) {
      EXPECT_NE(msg.find(k), std::string::npos) << "missing kind " << k;
    }
  }
}

TEST(StorageConfig, FileBackedKindsRequireRoot) {
  EXPECT_THROW(parse(R"({"backend": "file"})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"backend": "uring_file"})"), std::invalid_argument);
  EXPECT_NO_THROW(parse(R"({"backend": "file", "root": "/tmp/x"})"));
}

TEST(StorageConfig, SimRejectsMeaninglessRoot) {
  EXPECT_THROW(parse(R"({"backend": "sim", "root": "/tmp/x"})"),
               std::invalid_argument);
}

TEST(StorageConfig, UringKnobsMustBePositive) {
  EXPECT_THROW(
      parse(R"({"backend": "uring_file", "root": "/tmp/x", "queue_depth": 0})"),
      std::invalid_argument);
  EXPECT_THROW(parse(R"({"backend": "uring_file", "root": "/tmp/x",
                          "fallback_workers": 0})"),
               std::invalid_argument);
}

TEST(StorageConfig, FactoryBuildsTheConfiguredTier) {
  const TestbedSpec testbed = TestbedSpec::testbed1();
  SimClock clock(1.0);
  const fs::path root = fs::temp_directory_path() /
                        ("mlpo_storecfg_" + std::to_string(::getpid()));
  fs::remove_all(root);

  StorageConfig cfg;  // defaults: sim
  auto sim = make_nvme_backend(cfg, testbed, clock, "nvme0", "node0");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(dynamic_cast<FileTier*>(sim.get()), nullptr);
  EXPECT_EQ(dynamic_cast<UringFileTier*>(sim.get()), nullptr);

  cfg.backend = "file";
  cfg.root = root.string();
  auto file = make_nvme_backend(cfg, testbed, clock, "nvme0", "node0");
  auto* ft = dynamic_cast<FileTier*>(file.get());
  ASSERT_NE(ft, nullptr);
  // Per-node namespacing: <root>/<node_tag>/<tier name>.
  EXPECT_EQ(ft->root(), root / "node0" / "nvme0");
  EXPECT_EQ(ft->read_bandwidth(), testbed.nvme_read_bw);

  cfg.backend = "uring_file";
  cfg.force_fallback = true;  // deterministic regardless of kernel support
  auto uring = make_nvme_backend(cfg, testbed, clock, "nvme1", "node1");
  auto* ut = dynamic_cast<UringFileTier*>(uring.get());
  ASSERT_NE(ut, nullptr);
  EXPECT_EQ(ut->root(), root / "node1" / "nvme1");
  EXPECT_FALSE(ut->using_uring());
  EXPECT_EQ(ut->write_bandwidth(), testbed.nvme_write_bw);

  uring.reset();
  file.reset();
  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace
}  // namespace mlpo
