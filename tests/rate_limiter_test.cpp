// FIFO-channel bandwidth model: rate enforcement, FIFO ordering, aggregate
// throughput under concurrency (the Fig. 4 microbench property).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rate_limiter.hpp"

namespace mlpo {
namespace {

// Fast tests, but not so fast that OS scheduler jitter (~2ms observed under
// load) dominates the measured intervals: at 1000 vsec/sec the shortest
// bounded transfer below spans 10ms of real time.
constexpr f64 kScale = 1000.0;

TEST(RateLimiter, RejectsBadRate) {
  SimClock clock(kScale);
  EXPECT_THROW(RateLimiter(clock, 0.0), std::invalid_argument);
  RateLimiter limiter(clock, 100.0);
  EXPECT_THROW(limiter.set_rate(-1.0), std::invalid_argument);
}

TEST(RateLimiter, SingleTransferTakesBytesOverRate) {
  SimClock clock(kScale);
  RateLimiter limiter(clock, 1000.0);  // 1000 B per vsec
  const f64 t0 = clock.now();
  limiter.acquire(10000);  // expect 10 vsec
  const f64 elapsed = clock.now() - t0;
  EXPECT_GE(elapsed, 9.5);
  EXPECT_LT(elapsed, 20.0);
}

TEST(RateLimiter, ReserveAccumulatesWithoutBlocking) {
  SimClock clock(kScale);
  RateLimiter limiter(clock, 1000.0);
  const f64 t0 = clock.now();
  const f64 d1 = limiter.reserve(5000);
  const f64 d2 = limiter.reserve(5000);
  // Reservations stack up to 10 vsec of channel time but return instantly.
  EXPECT_LT(clock.now() - t0, 2.0);
  EXPECT_NEAR(d2 - d1, 5.0, 0.5);
  EXPECT_GE(limiter.busy_until(), d2);
}

TEST(RateLimiter, AggregateThroughputConstantUnderConcurrency) {
  // The Fig. 4 property: N concurrent requesters see the same total
  // throughput; per-request latency grows ~linearly with N. Transfer sizes
  // keep each measured interval well above OS timer jitter.
  for (const int n : {1, 2, 4}) {
    SimClock clock(kScale);
    RateLimiter limiter(clock, 10000.0);
    const u64 per_thread_bytes = 200000;  // 20 vsec = 20 ms real per thread
    std::vector<std::thread> threads;
    const f64 t0 = clock.now();
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&] {
        // Chunked like the tiers do, so requests interleave.
        for (int c = 0; c < 10; ++c) limiter.acquire(per_thread_bytes / 10);
      });
    }
    for (auto& t : threads) t.join();
    const f64 elapsed = clock.now() - t0;
    const f64 expected = static_cast<f64>(per_thread_bytes) * n / 10000.0;
    EXPECT_GE(elapsed, expected * 0.9) << "n=" << n;
    EXPECT_LT(elapsed, expected * 2.5) << "n=" << n;
  }
}

TEST(RateLimiter, RateChangeTakesEffect) {
  SimClock clock(kScale);
  RateLimiter limiter(clock, 1000.0);
  EXPECT_EQ(limiter.rate(), 1000.0);
  limiter.set_rate(4000.0);
  EXPECT_EQ(limiter.rate(), 4000.0);
  const f64 t0 = clock.now();
  limiter.acquire(80000);  // 20 vsec at the new rate
  const f64 elapsed = clock.now() - t0;
  EXPECT_GE(elapsed, 18.0);
  EXPECT_LT(elapsed, 40.0);
}

TEST(RateLimiter, ZeroBytesIsFree) {
  SimClock clock(kScale);
  RateLimiter limiter(clock, 10.0);
  const f64 t0 = clock.now();
  limiter.acquire(0);
  EXPECT_LT(clock.now() - t0, 2.0);
}

}  // namespace
}  // namespace mlpo
