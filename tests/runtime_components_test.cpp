// Runtime building blocks in isolation: GPU cost model, testbed factories,
// Worker phase execution.
#include <gtest/gtest.h>

#include "runtime/gpu_cost.hpp"
#include "runtime/testbed.hpp"
#include "runtime/worker.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo {
namespace {

TEST(GpuCostModel, CalibrationPoint) {
  // Calibrated to the paper's §3.1 measurement: 40B, microbatch 1,
  // forward ~0.6 s on a 4xH100 node.
  GpuCostModel cost;
  EXPECT_NEAR(cost.forward_seconds(40'000'000'000ull, 1), 0.6, 1e-9);
  EXPECT_NEAR(cost.backward_seconds(40'000'000'000ull, 1), 1.8, 1e-9);
}

TEST(GpuCostModel, LinearInParamsAndBatch) {
  GpuCostModel cost;
  const f64 base = cost.forward_seconds(1'000'000'000ull, 1);
  EXPECT_NEAR(cost.forward_seconds(2'000'000'000ull, 1), 2 * base, 1e-12);
  EXPECT_NEAR(cost.forward_seconds(1'000'000'000ull, 8), 8 * base, 1e-12);
  EXPECT_NEAR(cost.backward_seconds(1'000'000'000ull, 1),
              cost.backward_factor * base, 1e-12);
}

TEST(TestbedSpec, Table1Values) {
  const auto t1 = TestbedSpec::testbed1();
  EXPECT_EQ(t1.gpus_per_node, 4u);
  EXPECT_DOUBLE_EQ(t1.nvme_read_bw, 6.9 * GB);
  EXPECT_DOUBLE_EQ(t1.nvme_write_bw, 5.3 * GB);
  EXPECT_DOUBLE_EQ(t1.pfs_read_bw, 3.6 * GB);
  EXPECT_DOUBLE_EQ(t1.d2h_bandwidth, 55.0 * GB);
  EXPECT_EQ(t1.cpu_cores, 96u);

  const auto t2 = TestbedSpec::testbed2();
  EXPECT_DOUBLE_EQ(t2.nvme_read_bw, 13.5 * GB);
  EXPECT_DOUBLE_EQ(t2.pfs_write_bw, 13.7 * GB);
  EXPECT_LT(t2.cpu_update_rate_node, t1.cpu_update_rate_node);
}

TEST(TestbedSpec, TierFactoriesMatchSpec) {
  const SimClock clock(5000.0);
  const auto t1 = TestbedSpec::testbed1();
  const auto nvme = t1.make_nvme_tier(clock, "n");
  EXPECT_DOUBLE_EQ(nvme->read_bandwidth(), t1.nvme_read_bw);
  EXPECT_FALSE(nvme->persistent());

  const auto pfs = t1.make_pfs_tier(clock, "p");
  EXPECT_DOUBLE_EQ(pfs->write_bandwidth(), t1.pfs_write_bw);
  EXPECT_TRUE(pfs->persistent());

  const auto fabric = t1.make_pfs_fabric(clock, "f");
  EXPECT_DOUBLE_EQ(fabric->read_bandwidth(),
                   t1.pfs_read_bw * t1.pfs_aggregate_factor);

  const auto daos = t1.make_object_store_tier(clock, "d", 2.0 * GB, 1.0 * GB);
  EXPECT_TRUE(daos->persistent());
  EXPECT_DOUBLE_EQ(daos->read_bandwidth(), 2.0 * GB);

  const auto cxl = TestbedSpec::make_cxl_tier(clock, "c");
  EXPECT_FALSE(cxl->persistent());
  EXPECT_DOUBLE_EQ(cxl->read_bandwidth(), 30.0 * GB);
}

TEST(Worker, BackwardMicroDepositsAllSubgroups) {
  const SimClock clock(20000.0);
  VirtualTier vtier;
  vtier.add_path(std::make_shared<MemoryTier>("m"));
  const GradSource grads;
  auto testbed = TestbedSpec::testbed1();

  EngineOptions opts = EngineOptions::mlp_offload();
  opts.multipath = false;
  opts.elem_scale = 1;
  opts.cpu_update_rate = 1e9;
  opts.convert.fp32_bytes_per_sec = 1e12;
  Worker worker(clock, vtier, nullptr, grads, testbed, /*worker_id=*/0,
                /*rank=*/0, opts, make_shard_layout(1024 * 4, 1, 0, 1024));
  worker.initialize();
  EXPECT_EQ(worker.worker_id(), 0);
  EXPECT_EQ(worker.rank(), 0);

  const f64 t0 = clock.now();
  worker.run_backward_micro(/*sample=*/0, true, true, /*compute=*/4.0);
  const f64 elapsed = clock.now() - t0;
  // Wall time covers at least the spread-out compute charge.
  EXPECT_GE(elapsed, 3.8);

  const auto report = worker.run_update(0);
  EXPECT_EQ(report.subgroups_processed, 4u);
  for (u32 id = 0; id < 4; ++id) {
    EXPECT_EQ(worker.engine().snapshot_subgroup(id).step(), 1u);
  }
}

}  // namespace
}  // namespace mlpo
