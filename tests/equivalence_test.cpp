// The paper's correctness claim (§3.2): subgroup updates are embarrassingly
// parallel, so processing order, placement, gradient-conversion timing, and
// locking must not change the training state. We verify bitwise equality of
// the end state at elem_scale 1 over several iterations across:
//   * all 16 combinations of the classic design-principle toggles;
//   * the FULL placement x ordering policy grid from the registry;
//   * every engine implementation behind the unified interface
//     (OffloadEngine, CpuOnlyEngine, TensorNvmeEngine).
#include <gtest/gtest.h>

#include "core/cpu_only_engine.hpp"
#include "core/engine.hpp"
#include "core/offload_engine.hpp"
#include "policy/policy_registry.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo {
namespace {

constexpr u64 kSubgroupParams = 2048;
constexpr u32 kNumSubgroups = 6;
constexpr u32 kIterations = 3;

ShardLayout test_layout() {
  return make_shard_layout(kSubgroupParams * kNumSubgroups, 1, 0,
                           kSubgroupParams);
}

// Run a full mini-training with the given options and return the end-state
// digest. The engine kind in `opts.engine` selects the implementation.
u64 run_opts(EngineOptions opts, u32 accum_steps = 1,
             const ShardLayout& layout = test_layout()) {
  SimClock clock(50000.0);
  VirtualTier vtier;
  ThrottleSpec fast{8e6, 6e6};
  fast.chunk_bytes = 32 * KiB;
  vtier.add_path(std::make_shared<ThrottledTier>(
      "nvme", std::make_shared<MemoryTier>("nb"), clock, fast));
  ThrottleSpec slow{4e6, 4e6};
  slow.chunk_bytes = 32 * KiB;
  vtier.add_path(std::make_shared<ThrottledTier>(
      "pfs", std::make_shared<MemoryTier>("pb"), clock, slow, true));

  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 128;
  io_cfg.tier_exclusive_locking = opts.tier_exclusive_locking;
  IoScheduler io(clock, &vtier, nullptr, nullptr, io_cfg);
  GradSource grads;

  opts.host_cache_subgroups = 2;
  opts.cpu_update_rate = 1e9;
  opts.convert.fp32_bytes_per_sec = 1e12;
  opts.elem_scale = 1;

  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = &io;
  ctx.grads = &grads;
  const auto engine = make_engine(ctx, opts, layout);
  engine->initialize();

  for (u64 iter = 0; iter < kIterations; ++iter) {
    for (u32 m = 0; m < accum_steps; ++m) {
      const u64 sample = iter * accum_steps + m;
      for (u32 id = 0; id < engine->num_subgroups(); ++id) {
        engine->deposit_gradients_async(sample, id, m == 0,
                                        m + 1 == accum_steps);
      }
      engine->wait_gradient_io();
    }
    engine->run_update(iter);
  }
  return engine->state_checksum();
}

u64 run_config(bool multipath, bool cache, bool delayed, bool locking,
               u32 accum_steps = 1) {
  EngineOptions opts;
  opts.multipath = multipath;
  opts.update_order_policy =
      cache ? "alternating_cache_friendly" : "ascending";
  opts.delayed_grad_conversion = delayed;
  opts.tier_exclusive_locking = locking;
  return run_opts(opts, accum_steps);
}

u64 baseline_digest() {
  static const u64 digest = run_config(false, false, false, false);
  return digest;
}

class AllFlagCombos : public ::testing::TestWithParam<int> {};

TEST_P(AllFlagCombos, EndStateBitwiseEqualToBaseline) {
  const int bits = GetParam();
  const u64 digest = run_config(bits & 1, bits & 2, bits & 4, bits & 8);
  EXPECT_EQ(digest, baseline_digest())
      << "flags: multipath=" << !!(bits & 1) << " cache=" << !!(bits & 2)
      << " delayed=" << !!(bits & 4) << " locking=" << !!(bits & 8);
}

INSTANTIATE_TEST_SUITE_P(SixteenCombos, AllFlagCombos,
                         ::testing::Range(0, 16));

// The tentpole guarantee: every placement policy x every ordering policy
// from the registry trains to the same bits as the baseline.
class PolicyGrid
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(PolicyGrid, EndStateBitwiseEqualAcrossPolicyGrid) {
  const auto& [placement, order] = GetParam();
  EngineOptions opts;  // full MLP-Offload otherwise
  opts.placement_policy = placement;
  opts.update_order_policy = order;
  EXPECT_EQ(run_opts(opts), baseline_digest())
      << "placement=" << placement << " order=" << order;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyGrid,
    ::testing::Combine(::testing::ValuesIn(placement_policy_names()),
                       ::testing::ValuesIn(update_order_policy_names())),
    [](const auto& info) {
      return std::get<0>(info.param) + "_x_" + std::get<1>(info.param);
    });

TEST(Equivalence, GradientAccumulationAlsoOrderIndependent) {
  const u64 base = run_config(false, false, false, false, /*accum=*/2);
  const u64 ours = run_config(true, true, true, true, 2);
  EXPECT_EQ(ours, base);
}

TEST(Equivalence, OffloadedMatchesHostResidentEngine) {
  // CpuOnlyEngine never touches storage; its state after the same schedule
  // must equal the fully offloaded engines'.
  SimClock clock(50000.0);
  GradSource grads;
  CpuOnlyEngine::Options opts;
  opts.cpu_update_rate = 1e9;
  opts.convert.fp32_bytes_per_sec = 1e12;
  opts.elem_scale = 1;
  CpuOnlyEngine engine(clock, grads, test_layout(), opts);
  engine.initialize();
  for (u64 iter = 0; iter < kIterations; ++iter) {
    engine.deposit_gradients(iter, true);
    engine.run_update(iter);
  }
  EXPECT_EQ(engine.state_checksum(), baseline_digest());
}

TEST(Equivalence, TensorNvmeFacadeMatchesOffloadEngines) {
  // The TensorNVMe integration engine round-trips its state through
  // DiskOffloaders every iteration; the bits must survive unchanged.
  EngineOptions opts = EngineOptions::preset("tensor_nvme");
  EXPECT_EQ(run_opts(opts), baseline_digest());
}

TEST(Equivalence, CpuOnlyEngineKindMatchesThroughUnifiedFactory) {
  EngineOptions opts = EngineOptions::preset("cpu_only");
  EXPECT_EQ(run_opts(opts), baseline_digest());
}

TEST(Equivalence, DifferentGradientsProduceDifferentStates) {
  // Sanity: the digest is actually sensitive to training history (one vs
  // two accumulation micro-steps diverge).
  EXPECT_NE(run_config(true, true, true, true, 1),
            run_config(true, true, true, true, 2));
}

// --- Graph-vs-linear execution parity ---------------------------------------
//
// The task-graph executor reorders and overlaps the same per-subgroup work
// the linear pipeline serializes; the training state must not notice.
// Sweep: both offloading engines x several placement/ordering combos, plus
// the elastic layout variant, each compared against the shared baseline
// digest (graph == linear == baseline, transitively).

class GraphLinearParity
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>> {};

TEST_P(GraphLinearParity, GraphExecutionBitIdenticalToLinear) {
  const auto& [engine_kind, placement, order] = GetParam();
  EngineOptions opts;
  opts.engine = engine_kind;
  opts.placement_policy = placement;
  opts.update_order_policy = order;
  opts.execution = "graph";
  opts.graph_workers = 4;
  const u64 graph_digest = run_opts(opts);
  opts.execution = "linear";
  const u64 linear_digest = run_opts(opts);
  EXPECT_EQ(graph_digest, linear_digest)
      << "engine=" << engine_kind << " placement=" << placement
      << " order=" << order;
  EXPECT_EQ(graph_digest, baseline_digest());
}

INSTANTIATE_TEST_SUITE_P(
    EnginesTimesPolicies, GraphLinearParity,
    ::testing::Combine(
        ::testing::Values("offload", "tensor_nvme"),
        ::testing::Values("adaptive_ema", "eq1_static", "round_robin"),
        // ascending also exercises the eager-flush (no host cache) graph
        // path; the other two take the lazy flush-through-cache path.
        ::testing::Values("ascending", "alternating_cache_friendly",
                          "host_resident_first")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_x_" +
             std::get<2>(info.param);
    });

TEST(GraphLinearParityElastic, ElasticLayoutShardsSumToSameDigest) {
  // Elastic layouts change subgroup->rank ownership but not subgroup
  // identity; the commutative whole-model digest (summed over ranks) must
  // match between executions. World of 2 over 5 global subgroups: rank 0
  // takes 3, rank 1 takes 2 — an uneven split on purpose.
  constexpr u32 kWorld = 2;
  const u64 total_params = kSubgroupParams * 5;
  for (const std::string engine_kind : {"offload", "tensor_nvme"}) {
    u64 graph_sum = 0;
    u64 linear_sum = 0;
    for (u32 rank = 0; rank < kWorld; ++rank) {
      const ShardLayout layout = make_elastic_shard_layout(
          total_params, kWorld, static_cast<int>(rank), kSubgroupParams);
      EngineOptions opts;
      opts.engine = engine_kind;
      opts.execution = "graph";
      opts.graph_workers = 4;
      graph_sum += run_opts(opts, 1, layout);
      opts.execution = "linear";
      linear_sum += run_opts(opts, 1, layout);
    }
    EXPECT_EQ(graph_sum, linear_sum) << "engine=" << engine_kind;
  }
}

}  // namespace
}  // namespace mlpo
