// Virtual clock: scaling, monotonicity, sleep semantics.
#include <gtest/gtest.h>

#include <thread>

#include "util/sim_clock.hpp"

namespace mlpo {
namespace {

TEST(SimClock, RejectsNonPositiveScale) {
  EXPECT_THROW(SimClock(0.0), std::invalid_argument);
  EXPECT_THROW(SimClock(-1.0), std::invalid_argument);
}

TEST(SimClock, NowIsMonotonic) {
  SimClock clock(100.0);
  f64 prev = clock.now();
  for (int i = 0; i < 100; ++i) {
    const f64 t = clock.now();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SimClock, ScaleMultipliesElapsedTime) {
  SimClock fast(1000.0);
  const f64 t0 = fast.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const f64 elapsed = fast.now() - t0;
  // 20 ms real at scale 1000 = 20 virtual seconds (generous tolerance for
  // scheduler jitter).
  EXPECT_GT(elapsed, 15.0);
  EXPECT_LT(elapsed, 60.0);
}

TEST(SimClock, SleepForAdvancesVirtualTime) {
  SimClock clock(2000.0);
  const f64 t0 = clock.now();
  clock.sleep_for(10.0);  // 5 ms real
  const f64 elapsed = clock.now() - t0;
  EXPECT_GE(elapsed, 10.0 * 0.95);
  EXPECT_LT(elapsed, 100.0);
}

TEST(SimClock, SleepForNonPositiveReturnsImmediately) {
  SimClock clock(1.0);
  const f64 t0 = clock.now();
  clock.sleep_for(0.0);
  clock.sleep_for(-5.0);
  EXPECT_LT(clock.now() - t0, 0.1);
}

TEST(SimClock, SleepUntilPastDeadlineReturnsImmediately) {
  SimClock clock(1000.0);
  const f64 t0 = clock.now();
  clock.sleep_until(t0 - 100.0);
  EXPECT_LT(clock.now() - t0, 5.0);
}

TEST(SimClock, SleepUntilWaitsForDeadline) {
  SimClock clock(2000.0);
  const f64 deadline = clock.now() + 20.0;
  clock.sleep_until(deadline);
  EXPECT_GE(clock.now(), deadline * 0.999);
}

TEST(SimTimer, MeasuresElapsed) {
  SimClock clock(2000.0);
  SimTimer timer(clock);
  clock.sleep_for(8.0);
  EXPECT_GE(timer.elapsed(), 7.5);
  timer.reset();
  EXPECT_LT(timer.elapsed(), 2.0);
}

}  // namespace
}  // namespace mlpo
