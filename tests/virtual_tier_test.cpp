// Multi-path virtual tier: routing, migration between paths, residency
// accounting, bandwidth vector.
#include <gtest/gtest.h>

#include "tiers/memory_tier.hpp"
#include "tiers/virtual_tier.hpp"

namespace mlpo {
namespace {

std::vector<u8> make_data(std::size_t n, u8 seed = 1) {
  std::vector<u8> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<u8>(seed + i);
  return v;
}

class VirtualTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvme_ = std::make_shared<MemoryTier>("nvme", 6.9e9, 5.3e9);
    pfs_ = std::make_shared<MemoryTier>("pfs", 3.6e9, 3.6e9);
    vtier_.add_path(nvme_);
    vtier_.add_path(pfs_);
  }

  std::shared_ptr<MemoryTier> nvme_;
  std::shared_ptr<MemoryTier> pfs_;
  VirtualTier vtier_;
};

TEST_F(VirtualTierTest, WritesRouteToChosenPath) {
  vtier_.write_to(0, "a", make_data(10));
  vtier_.write_to(1, "b", make_data(20));
  EXPECT_TRUE(nvme_->exists("a"));
  EXPECT_FALSE(pfs_->exists("a"));
  EXPECT_TRUE(pfs_->exists("b"));
  EXPECT_EQ(vtier_.locate("a"), 0u);
  EXPECT_EQ(vtier_.locate("b"), 1u);
}

TEST_F(VirtualTierTest, ReadsRouteAutomatically) {
  const auto data = make_data(32, 5);
  vtier_.write_to(1, "k", data);
  std::vector<u8> out(32);
  vtier_.read("k", out);
  EXPECT_EQ(out, data);
}

TEST_F(VirtualTierTest, RewriteToDifferentPathMigratesObject) {
  vtier_.write_to(0, "k", make_data(10));
  vtier_.write_to(1, "k", make_data(12, 3));
  EXPECT_EQ(vtier_.locate("k"), 1u);
  EXPECT_FALSE(nvme_->exists("k")) << "stale copy must be removed";
  std::vector<u8> out(12);
  vtier_.read("k", out);
  EXPECT_EQ(out, make_data(12, 3));
}

TEST_F(VirtualTierTest, UnknownKeysThrowAndLocateReturnsNpos) {
  std::vector<u8> out(4);
  EXPECT_THROW(vtier_.read("nope", out), std::out_of_range);
  EXPECT_THROW(vtier_.peek("nope", out), std::out_of_range);
  EXPECT_EQ(vtier_.locate("nope"), VirtualTier::npos);
  EXPECT_FALSE(vtier_.exists("nope"));
}

TEST_F(VirtualTierTest, BadPathIndexThrows) {
  EXPECT_THROW(vtier_.write_to(7, "k", make_data(4)), std::out_of_range);
}

TEST_F(VirtualTierTest, EraseRemovesObjectAndLocation) {
  vtier_.write_to(0, "k", make_data(8));
  vtier_.erase("k");
  EXPECT_FALSE(vtier_.exists("k"));
  EXPECT_FALSE(nvme_->exists("k"));
  vtier_.erase("k");  // idempotent
}

TEST_F(VirtualTierTest, ResidentBytesTrackSimSizes) {
  vtier_.write_to(0, "a", make_data(10), /*sim_bytes=*/1000);
  vtier_.write_to(0, "b", make_data(10), 500);
  vtier_.write_to(1, "c", make_data(10), 2000);
  const auto resident = vtier_.resident_sim_bytes();
  EXPECT_EQ(resident[0], 1500u);
  EXPECT_EQ(resident[1], 2000u);
  // Migration moves the accounting.
  vtier_.write_to(1, "a", make_data(10), 1000);
  const auto after = vtier_.resident_sim_bytes();
  EXPECT_EQ(after[0], 500u);
  EXPECT_EQ(after[1], 3000u);
}

TEST_F(VirtualTierTest, PathBandwidthsAreMinOfReadWrite) {
  const auto bws = vtier_.path_bandwidths();
  ASSERT_EQ(bws.size(), 2u);
  EXPECT_DOUBLE_EQ(bws[0], 5.3e9);  // min(6.9, 5.3)
  EXPECT_DOUBLE_EQ(bws[1], 3.6e9);
}

TEST_F(VirtualTierTest, EveryPathGetsPerDirectionLocks) {
  EXPECT_NE(vtier_.path_read_lock(0), nullptr);
  EXPECT_NE(vtier_.path_write_lock(0), nullptr);
  EXPECT_NE(vtier_.path_read_lock(0), vtier_.path_write_lock(0));
  EXPECT_NE(vtier_.path_read_lock(0), vtier_.path_read_lock(1));
  EXPECT_NE(vtier_.path_write_lock(0), vtier_.path_write_lock(1));
}

TEST_F(VirtualTierTest, PeekReturnsContent) {
  const auto data = make_data(16, 9);
  vtier_.write_to(0, "k", data, 100);
  std::vector<u8> out(16);
  vtier_.peek("k", out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace mlpo
