// TaskGraph + GraphExecutor: build-time edge validation, cycle rejection
// before execution, topological scheduling, deferred (IO-style) node
// completion, cancellation mid-graph, and the run counters the engines
// fold into IterationReport. The WorkStealingPool units at the bottom
// cover the pool telemetry the executor reports deltas of.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/graph_executor.hpp"
#include "graph/task_graph.hpp"
#include "util/work_stealing_pool.hpp"

namespace mlpo {
namespace {

// Thread-safe completion recorder: nodes append their id as they run, the
// test asserts partial (edge) order afterwards.
struct OrderRecorder {
  std::mutex mutex;
  std::vector<u32> sequence;

  void record(u32 id) {
    std::lock_guard<std::mutex> lock(mutex);
    sequence.push_back(id);
  }
  // Position of `id` in the recorded sequence; fails the test if absent.
  std::size_t position(u32 id) const {
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      if (sequence[i] == id) return i;
    }
    ADD_FAILURE() << "node " << id << " never ran";
    return 0;
  }
};

NodeWork record_work(OrderRecorder& rec, u32 tag) {
  return [&rec, tag](TaskContext&) { rec.record(tag); };
}

TEST(TaskGraph, EdgeValidationAtBuildTime) {
  TaskGraph g;
  const u32 a = g.add_node(NodeKind::kFetch, "a", 0, {});
  const u32 b = g.add_node(NodeKind::kCompute, "b", 1, {});
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), std::logic_error);   // duplicate
  EXPECT_THROW(g.add_edge(a, a), std::logic_error);   // self edge
  EXPECT_THROW(g.add_edge(a, 99), std::out_of_range); // unknown id
  EXPECT_THROW(g.add_edge(99, b), std::out_of_range);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, CycleRejectedBeforeExecution) {
  TaskGraph g;
  std::atomic<int> ran{0};
  const u32 a = g.add_node(NodeKind::kCompute, "a", 0,
                           [&ran](TaskContext&) { ++ran; });
  const u32 b = g.add_node(NodeKind::kCompute, "b", 1,
                           [&ran](TaskContext&) { ++ran; });
  const u32 c = g.add_node(NodeKind::kCompute, "c", 2,
                           [&ran](TaskContext&) { ++ran; });
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);  // closes the cycle; legal as an edge, fatal as a graph
  EXPECT_THROW(g.validate(), std::logic_error);

  // run() validates first: a cyclic graph never reaches the pool.
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  EXPECT_THROW(exec.run(g), std::logic_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(GraphExecutor, EmptyGraphIsANoOp) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  TaskGraph g;
  const auto stats = exec.run(g);
  EXPECT_EQ(stats.nodes_executed, 0u);
  EXPECT_EQ(stats.frontier_high_water, 0u);
}

TEST(GraphExecutor, ChainRunsInTopologicalOrder) {
  WorkStealingPool pool(4);
  GraphExecutor exec(pool);
  OrderRecorder rec;
  TaskGraph g;
  std::vector<u32> chain;
  for (u32 i = 0; i < 8; ++i) {
    chain.push_back(g.add_node(NodeKind::kCompute, "n", i,
                               record_work(rec, i)));
    if (i > 0) g.add_edge(chain[i - 1], chain[i]);
  }
  const auto stats = exec.run(g);
  EXPECT_EQ(stats.nodes_executed, 8u);
  EXPECT_EQ(stats.nodes_skipped, 0u);
  ASSERT_EQ(rec.sequence.size(), 8u);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(rec.sequence[i], i);
  // A fully serial chain keeps the ready frontier at exactly one node.
  EXPECT_EQ(stats.frontier_high_water, 1u);
}

TEST(GraphExecutor, DiamondDependenciesRespected) {
  WorkStealingPool pool(4);
  GraphExecutor exec(pool);
  OrderRecorder rec;
  TaskGraph g;
  const u32 top = g.add_node(NodeKind::kFetch, "top", 0, record_work(rec, 0));
  const u32 left =
      g.add_node(NodeKind::kCompute, "left", 1, record_work(rec, 1));
  const u32 right =
      g.add_node(NodeKind::kCompute, "right", 2, record_work(rec, 2));
  const u32 bottom =
      g.add_node(NodeKind::kFlush, "bottom", 3, record_work(rec, 3));
  g.add_edge(top, left);
  g.add_edge(top, right);
  g.add_edge(left, bottom);
  g.add_edge(right, bottom);

  const auto stats = exec.run(g);
  EXPECT_EQ(stats.nodes_executed, 4u);
  ASSERT_EQ(rec.sequence.size(), 4u);
  EXPECT_LT(rec.position(0), rec.position(1));
  EXPECT_LT(rec.position(0), rec.position(2));
  EXPECT_LT(rec.position(1), rec.position(3));
  EXPECT_LT(rec.position(2), rec.position(3));
  // The middle layer was released together at least once.
  EXPECT_GE(stats.frontier_high_water, 2u);
}

TEST(GraphExecutor, FanOutFrontierHighWaterCountsTheWholeRelease) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  TaskGraph g;
  const u32 root = g.add_node(NodeKind::kFetch, "root", 0, {});
  constexpr u32 kChildren = 16;
  for (u32 i = 0; i < kChildren; ++i) {
    g.add_edge(root, g.add_node(NodeKind::kCompute, "child", i, {}));
  }
  const auto stats = exec.run(g);
  // Finishing the root releases every child at once: the frontier peaks
  // at the full fan-out regardless of how fast the pool drains it.
  EXPECT_EQ(stats.frontier_high_water, kChildren);
  EXPECT_EQ(stats.nodes_executed, 1u + kChildren);
}

TEST(GraphExecutor, BarrierNodesWithNoWorkComplete) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  OrderRecorder rec;
  TaskGraph g;
  const u32 a = g.add_node(NodeKind::kCompute, "a", 0, record_work(rec, 0));
  const u32 barrier = g.add_node(NodeKind::kCheckpointPrestage, "b", 1, {});
  const u32 c = g.add_node(NodeKind::kCompute, "c", 2, record_work(rec, 2));
  g.add_edge(a, barrier);
  g.add_edge(barrier, c);
  const auto stats = exec.run(g);
  EXPECT_EQ(stats.nodes_executed, 3u);
  EXPECT_LT(rec.position(0), rec.position(2));
}

TEST(GraphExecutor, DeferredNodeFinishesFromItsCompletionCallback) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  OrderRecorder rec;
  TaskGraph g;

  std::function<void(std::exception_ptr)> completion;
  std::mutex completion_mutex;
  std::condition_variable completion_cv;

  const u32 io = g.add_node(
      NodeKind::kFetch, "io", 0,
      [&](TaskContext& tc) {
        // IO-node pattern: capture the completion, return immediately —
        // the node must NOT finish (and must not release `after`) until
        // the callback fires from the "dispatch" thread below.
        std::lock_guard<std::mutex> lock(completion_mutex);
        completion = tc.defer();
        completion_cv.notify_one();
      });
  const u32 after =
      g.add_node(NodeKind::kCompute, "after", 1, record_work(rec, 1));
  g.add_edge(io, after);

  std::thread settle_thread([&] {
    std::unique_lock<std::mutex> lock(completion_mutex);
    completion_cv.wait(lock, [&] { return completion != nullptr; });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto cb = completion;
    lock.unlock();
    cb(nullptr);
    cb(nullptr);  // idempotent: the second invocation must be ignored
  });

  const auto stats = exec.run(g);
  settle_thread.join();
  EXPECT_EQ(stats.nodes_executed, 2u);
  EXPECT_EQ(rec.sequence.size(), 1u);  // `after` ran exactly once
}

TEST(GraphExecutor, FailureCancelsDownstreamAndRethrows) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  std::atomic<int> cancel_fired{0};
  std::atomic<bool> downstream_ran{false};
  TaskGraph g;
  const u32 boom = g.add_node(NodeKind::kFetch, "boom", 0, [](TaskContext&) {
    throw std::runtime_error("tier fail-stopped");
  });
  const u32 mid = g.add_node(NodeKind::kCompute, "mid", 1,
                             [&downstream_ran](TaskContext&) {
                               downstream_ran.store(true);
                             });
  const u32 tail = g.add_node(NodeKind::kFlush, "tail", 2,
                              [&downstream_ran](TaskContext&) {
                                downstream_ran.store(true);
                              });
  g.add_edge(boom, mid);
  g.add_edge(mid, tail);

  try {
    exec.run(g, [&cancel_fired] { ++cancel_fired; });
    FAIL() << "run() must rethrow the first node error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tier fail-stopped");
  }
  EXPECT_EQ(cancel_fired.load(), 1);       // exactly once
  EXPECT_FALSE(downstream_ran.load());     // released-but-skipped
}

TEST(GraphExecutor, CancellationMidGraphSkipsIndependentBranches) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  TaskGraph g;
  std::atomic<int> late_ran{0};

  // One failing root and a long independent chain behind a gate: the
  // chain's tail nodes observe cancelled() (their work is skipped) while
  // the run still settles every node before rethrowing.
  const u32 boom = g.add_node(NodeKind::kFetch, "boom", 0, [](TaskContext&) {
    throw std::runtime_error("boom");
  });
  (void)boom;
  u32 prev = g.add_node(NodeKind::kCompute, "gate", 1, [](TaskContext&) {
    // Give the failure a head start so the chain behind this node is
    // released only after cancellation flipped.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  for (u32 i = 0; i < 6; ++i) {
    const u32 next = g.add_node(NodeKind::kCompute, "late", 2 + i,
                                [&late_ran](TaskContext& tc) {
                                  if (!tc.cancelled()) ++late_ran;
                                });
    g.add_edge(prev, next);
    prev = next;
  }

  EXPECT_THROW(exec.run(g), std::runtime_error);
  // The skipped tail must not have executed its payload. (The gate node
  // itself may or may not have been skipped depending on timing; the
  // guarded counter is what the contract promises.)
  EXPECT_EQ(late_ran.load(), 0);
}

TEST(GraphExecutor, DeferredErrorPropagates) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  std::atomic<bool> downstream_ran{false};
  // The settle thread is spawned from the main thread (handed the defer
  // callback through a promise) and joined before the test ends, and the
  // main thread keeps its own exception_ptr alive past the join: the
  // exception's FINAL refcount release must not happen on the settle
  // thread — that release lives in uninstrumented libstdc++ eh code, so
  // TSan cannot see it ordering against the catch-side what() read (the
  // same blind spot IoScheduler::settle_error pins errors for).
  std::promise<std::function<void(std::exception_ptr)>> done_promise;
  auto done_future = done_promise.get_future();
  const std::exception_ptr settled =
      std::make_exception_ptr(std::runtime_error("settle failed"));
  std::thread settler([&done_future, &settled] {
    auto done = done_future.get();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    done(settled);
  });
  TaskGraph g;
  const u32 io =
      g.add_node(NodeKind::kFetch, "io", 0, [&done_promise](TaskContext& tc) {
        done_promise.set_value(tc.defer());
      });
  const u32 next = g.add_node(NodeKind::kCompute, "next", 1,
                              [&downstream_ran](TaskContext&) {
                                downstream_ran.store(true);
                              });
  g.add_edge(io, next);

  try {
    exec.run(g);
    FAIL() << "deferred error must rethrow from run()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "settle failed");
  }
  settler.join();
  EXPECT_FALSE(downstream_ran.load());
}

TEST(GraphExecutor, ReusableAcrossRuns) {
  WorkStealingPool pool(2);
  GraphExecutor exec(pool);
  for (int round = 0; round < 3; ++round) {
    TaskGraph g;
    std::atomic<int> ran{0};
    const u32 a = g.add_node(NodeKind::kCompute, "a", 0,
                             [&ran](TaskContext&) { ++ran; });
    const u32 b = g.add_node(NodeKind::kCompute, "b", 1,
                             [&ran](TaskContext&) { ++ran; });
    g.add_edge(a, b);
    const auto stats = exec.run(g);
    EXPECT_EQ(stats.nodes_executed, 2u);
    EXPECT_EQ(ran.load(), 2);
  }
}

// --- WorkStealingPool units -------------------------------------------------

TEST(WorkStealingPool, SubmitReturnsRedeemableFuture) {
  WorkStealingPool pool(2);
  EXPECT_GE(pool.size(), 2u);  // floor: a one-worker pool can never steal
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(WorkStealingPool, TrySubmitSucceedsOnLivePool) {
  WorkStealingPool pool(2);
  auto fut = pool.try_submit([] { return 7; });
  ASSERT_TRUE(fut.has_value());
  EXPECT_EQ(fut->get(), 7);
}

TEST(WorkStealingPool, MinimumTwoWorkersEnforced) {
  WorkStealingPool pool(1);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(WorkStealingPool, StealsFromABusyWorkersDeque) {
  WorkStealingPool pool(2);
  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  auto release_future = release_blocker.get_future().share();
  auto blocked = pool.submit([&blocker_started, release_future] {
    blocker_started.set_value();
    release_future.wait();
  });
  blocker_started.get_future().wait();

  // One worker is pinned; round-robin still lands half the quick tasks on
  // its deque, and the free worker must steal those to finish them.
  std::vector<std::future<void>> futs;
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_GE(pool.tasks_stolen(), 1u);

  release_blocker.set_value();
  blocked.get();
}

TEST(WorkStealingPool, IdleSecondsAccumulateWhileParked) {
  WorkStealingPool pool(2);
  // Let the workers park, then wake them: the park interval is credited
  // to the idle counter on wake.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pool.submit([] {}).get();
  EXPECT_GT(pool.idle_seconds(), 0.0);
}

}  // namespace
}  // namespace mlpo
