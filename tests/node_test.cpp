// NodeSim integration: phase structure, worker coordination, baseline vs
// MLP-Offload behaviour at node level, host-cache budgeting.
#include <gtest/gtest.h>

#include "runtime/node.hpp"

namespace mlpo {
namespace {

// A small model so node tests stay fast: ~1.0B params -> 3 subgroups per
// worker at 100M subgroup size (100+100+~53M).
ModelConfig tiny_model() {
  ModelConfig m{"tiny", 4, 4096, 32};
  EXPECT_GT(m.parameters(), 700'000'000u);
  EXPECT_LT(m.parameters(), 1'200'000'000u);
  return m;
}

NodeConfig base_config(bool mlp) {
  NodeConfig cfg;
  cfg.model = tiny_model();
  cfg.testbed = TestbedSpec::testbed1();
  cfg.engine_opts =
      mlp ? EngineOptions::mlp_offload() : EngineOptions::deepspeed_zero3();
  cfg.engine_opts.elem_scale = 65536;
  cfg.subgroup_params = 100'000'000;
  cfg.host_cache_override = 2;
  return cfg;
}

TEST(NodeSim, RunsIterationWithAllPhases) {
  SimClock clock(2000.0);
  NodeSim node(clock, base_config(true));
  node.initialize();
  const auto report = node.run_iteration(0);
  EXPECT_GT(report.forward_seconds, 0.0);
  // backward_seconds is the *residual* of the barrier-clock wall over the
  // analytic forward charge; for a tiny model it is small enough that
  // wall-clock rounding can land it exactly on 0, so assert the analytic
  // per-phase cost is positive and the residual merely non-negative.
  EXPECT_GT(node.backward_compute_seconds(), 0.0);
  EXPECT_GE(report.backward_seconds, 0.0);
  EXPECT_GT(report.update_seconds, 0.0);
  EXPECT_EQ(report.params_updated, tiny_model().parameters());
  EXPECT_EQ(report.subgroups_processed, 4u * 3u);  // 4 workers x 3 subgroups
}

TEST(NodeSim, WarmupIterationsDiscarded) {
  SimClock clock(2000.0);
  NodeSim node(clock, base_config(true));
  node.initialize();
  const auto reports = node.run(4, 2);
  EXPECT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].iteration, 2u);
  EXPECT_EQ(reports[1].iteration, 3u);
}

TEST(NodeSim, MlpOffloadBeatsBaselineIteration) {
  // Slower clock than the sibling suites (250 vs 2000 virtual sec/sec):
  // this assertion compares modelled I/O-overlap durations, and sanitized
  // Debug builds (ubsan preset) inflate the real-compute noise riding on
  // top of them roughly an order of magnitude. Scaling time down makes
  // every modelled virtual second 8x longer in real terms, keeping that
  // noise small relative to the speedup being measured.
  SimClock clock(250.0);
  NodeSim ds_node(clock, base_config(false));
  ds_node.initialize();
  NodeSim mlp_node(clock, base_config(true));
  mlp_node.initialize();

  // Average the post-warmup iterations (cache effects start at iter 1).
  f64 ds_total = 0, mlp_total = 0;
  for (const auto& r : ds_node.run(3, 1)) ds_total += r.iteration_seconds();
  for (const auto& r : mlp_node.run(3, 1)) mlp_total += r.iteration_seconds();
  EXPECT_LT(mlp_total, ds_total)
      << "MLP-Offload must out-run the DeepSpeed baseline";
  // The paper reports ~2.5x; at this tiny scale accept anything >1.2x.
  EXPECT_GT(ds_total / mlp_total, 1.2);
}

TEST(NodeSim, BackwardPhaseShrinksWithDelayedConversion) {
  // Exaggerate the write bottleneck so the FP32 gradient flush (baseline
  // behaviour) clearly dominates the backward phase: ~4.3 GB of node
  // gradients at 0.5 GB/s is >= 8 vsec of drain time that MLP-Offload's
  // delayed conversion skips entirely.
  SimClock clock(2000.0);
  auto ds_cfg = base_config(false);
  ds_cfg.testbed.nvme_write_bw = 0.5 * GB;
  auto mlp_cfg = base_config(true);
  mlp_cfg.testbed.nvme_write_bw = 0.5 * GB;
  NodeSim ds_node(clock, ds_cfg);
  ds_node.initialize();
  NodeSim mlp_node(clock, mlp_cfg);
  mlp_node.initialize();
  const auto ds = ds_node.run_iteration(0);
  const auto mlp = mlp_node.run_iteration(0);
  EXPECT_GT(ds.backward_seconds, mlp.backward_seconds * 2.0);
}

TEST(NodeSim, WorkersShardTheModel) {
  SimClock clock(2000.0);
  NodeSim node(clock, base_config(true));
  u64 total = 0;
  for (u32 w = 0; w < node.worker_count(); ++w) {
    total += node.worker(w).engine().layout().shard_params;
  }
  EXPECT_EQ(total, tiny_model().parameters());
}

TEST(NodeSim, EngineStateIdenticalAcrossEngineConfigs) {
  // Node-level equivalence: same model, same iteration count, baseline vs
  // full MLP-Offload must produce identical optimizer state per rank.
  SimClock clock(2000.0);
  NodeSim ds_node(clock, base_config(false));
  ds_node.initialize();
  NodeSim mlp_node(clock, base_config(true));
  mlp_node.initialize();
  ds_node.run(2, 0);
  mlp_node.run(2, 0);
  for (u32 w = 0; w < 4; ++w) {
    EXPECT_EQ(ds_node.worker(w).engine().state_checksum(),
              mlp_node.worker(w).engine().state_checksum())
        << "rank " << w;
  }
}

TEST(NodeSim, DistributionSpansHostAndPaths) {
  SimClock clock(2000.0);
  auto cfg = base_config(true);
  NodeSim node(clock, cfg);
  node.initialize();

  // Cold start: everything offloaded, split across both paths per Eq. 1.
  const auto cold = node.node_distribution();
  const u64 expected =
      tiny_model().parameters() * kOptimStateBytesPerParam;
  EXPECT_EQ(cold.host_sim_bytes, 0u);
  EXPECT_EQ(cold.path_sim_bytes[0] + cold.path_sim_bytes[1], expected);
  EXPECT_GT(cold.path_sim_bytes[0], 0u);
  EXPECT_GT(cold.path_sim_bytes[1], 0u);

  // After training: the host cache holds the reusable tail; bytes are
  // conserved across host + paths. (With only one uncached subgroup per
  // worker, a single path may legitimately hold everything offloaded.)
  node.run(2, 0);
  const auto warm = node.node_distribution();
  const u64 total = warm.host_sim_bytes + warm.path_sim_bytes[0] +
                    warm.path_sim_bytes[1];
  EXPECT_EQ(total, expected);
  EXPECT_GT(warm.host_sim_bytes, 0u);
}

TEST(NodeSim, NoPfsMeansSinglePath) {
  SimClock clock(2000.0);
  auto cfg = base_config(true);
  cfg.attach_pfs = false;
  cfg.engine_opts.multipath = false;
  NodeSim node(clock, cfg);
  node.initialize();
  EXPECT_EQ(node.vtier().path_count(), 1u);
  const auto report = node.run_iteration(0);
  EXPECT_GT(report.update_seconds, 0.0);
}

TEST(NodeSim, GradientAccumulationMultipliesForwardCost) {
  SimClock clock(2000.0);
  auto cfg1 = base_config(true);
  auto cfg4 = base_config(true);
  cfg4.accum_steps = 4;
  NodeSim n1(clock, cfg1), n4(clock, cfg4);
  n1.initialize();
  n4.initialize();
  const auto r1 = n1.run_iteration(0);
  const auto r4 = n4.run_iteration(0);
  EXPECT_NEAR(r4.forward_seconds / r1.forward_seconds, 4.0, 0.01);
  // Update runs once per iteration regardless of accumulation; allow wide
  // tolerance since contention differs.
  EXPECT_LT(r4.update_seconds, r1.update_seconds * 2.0);
}

TEST(HostCacheBudget, ShrinksWithModelSize) {
  const auto testbed = TestbedSpec::testbed1();
  const u64 small = host_cache_budget_bytes(testbed, 10'000'000'000ull);
  const u64 large = host_cache_budget_bytes(testbed, 100'000'000'000ull);
  EXPECT_GT(small, large);
  // Very large models exhaust the 512 GB host entirely (the Fig. 10 trend).
  EXPECT_EQ(host_cache_budget_bytes(testbed, 160'000'000'000ull), 0u);
}

}  // namespace
}  // namespace mlpo
