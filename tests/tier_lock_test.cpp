// Process-exclusive, thread-shared tier lock: exclusivity across workers,
// re-entrancy within a worker, try_lock fall-through, stress.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tiers/tier_lock.hpp"

namespace mlpo {
namespace {

TEST(TierLock, FreeLockReportsNoOwner) {
  TierLock lock;
  EXPECT_EQ(lock.owner(), -1);
}

TEST(TierLock, LockSetsOwnerAndReleases) {
  TierLock lock;
  {
    auto g = lock.lock(3);
    EXPECT_EQ(lock.owner(), 3);
    EXPECT_TRUE(g.valid());
  }
  EXPECT_EQ(lock.owner(), -1);
}

TEST(TierLock, SameWorkerSharesAcrossThreads) {
  TierLock lock;
  auto g1 = lock.lock(1);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    auto g2 = lock.lock(1);  // same worker, different thread: no block
    acquired = true;
  });
  t.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(lock.owner(), 1);
}

TEST(TierLock, DifferentWorkerBlocksUntilRelease) {
  TierLock lock;
  auto g1 = lock.lock(1);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    auto g2 = lock.lock(2);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  g1.release();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(TierLock, TryLockFailsForOtherWorker) {
  TierLock lock;
  auto g = lock.lock(1);
  EXPECT_FALSE(lock.try_lock(2).has_value());
  EXPECT_TRUE(lock.try_lock(1).has_value());  // re-entrant try
}

TEST(TierLock, ReleaseOnlyWhenAllSharesDrop) {
  TierLock lock;
  auto g1 = lock.lock(5);
  auto g2 = lock.lock(5);
  g1.release();
  EXPECT_EQ(lock.owner(), 5);  // one share still held
  g2.release();
  EXPECT_EQ(lock.owner(), -1);
}

TEST(TierLock, GuardMoveTransfersOwnership) {
  TierLock lock;
  auto g1 = lock.lock(7);
  TierLock::Guard g2 = std::move(g1);
  EXPECT_FALSE(g1.valid());
  EXPECT_TRUE(g2.valid());
  EXPECT_EQ(lock.owner(), 7);
  g2.release();
  EXPECT_EQ(lock.owner(), -1);
}

TEST(TierLock, StressMutualExclusionAcrossWorkers) {
  TierLock lock;
  std::atomic<int> inside{0};
  std::atomic<int> violations{0};
  std::atomic<int> current_owner{-1};
  constexpr int kWorkers = 4;
  constexpr int kItersPerWorker = 200;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kItersPerWorker; ++i) {
        auto g = lock.lock(w);
        const int owner = current_owner.exchange(w);
        if (owner != -1 && owner != w) violations.fetch_add(1);
        inside.fetch_add(1);
        inside.fetch_sub(1);
        current_owner.store(w == current_owner.load() ? -1 : current_owner.load());
        // Reset for next round; owner w is releasing.
        current_owner.store(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(lock.owner(), -1);
}

}  // namespace
}  // namespace mlpo
