// TensorNVMe-style DiskOffloader adapter + Eq.-1 tensor splitting.
#include <gtest/gtest.h>

#include "core/disk_offloader.hpp"
#include "io/io_scheduler.hpp"
#include "tiers/memory_tier.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {
namespace {

TEST(DiskOffloader, AsyncWriteReadRoundtrip) {
  MemoryTier tier("disk");
  SimClock clock(1.0);
  IoScheduler io(clock);
  DiskOffloader offloader(tier, io);

  std::vector<f32> tensor(256);
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = static_cast<f32>(i) * 0.5f;
  }
  offloader.async_write("t0", tensor).get();

  std::vector<f32> loaded(256);
  offloader.async_read("t0", loaded).get();
  EXPECT_EQ(loaded, tensor);
}

TEST(DiskOffloader, SynchronizeDrainsEverything) {
  MemoryTier tier("disk");
  SimClock clock(1.0);
  IoScheduler io(clock);
  DiskOffloader offloader(tier, io);

  std::vector<std::vector<f32>> tensors(16, std::vector<f32>(64, 1.5f));
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    offloader.async_write("t" + std::to_string(i), tensors[i]);
  }
  offloader.synchronize();
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    EXPECT_TRUE(tier.exists("t" + std::to_string(i))) << i;
  }
}

TEST(DiskOffloader, ErrorsSurfaceOnSynchronize) {
  MemoryTier tier("disk");
  SimClock clock(1.0);
  IoScheduler io(clock);
  DiskOffloader offloader(tier, io);
  std::vector<f32> out(8);
  offloader.async_read("missing", out);  // will fail
  EXPECT_THROW(offloader.synchronize(), std::out_of_range);
}

TEST(DiskOffloader, SplitFollowsBandwidthRatio) {
  // The paper's Colossal-AI recipe: one DiskOffloader per storage, tensors
  // distributed by the performance model.
  MemoryTier fast("nvme", 6e9, 6e9);
  MemoryTier slow("pfs", 3e9, 3e9);
  SimClock clock(1.0);
  IoScheduler io(clock);
  DiskOffloader off_fast(fast, io);
  DiskOffloader off_slow(slow, io);

  const auto placement =
      split_tensors_by_bandwidth({&off_fast, &off_slow}, 90);
  ASSERT_EQ(placement.size(), 90u);
  u32 counts[2] = {0, 0};
  for (const auto p : placement) ++counts[p];
  EXPECT_EQ(counts[0], 60u);  // 2:1
  EXPECT_EQ(counts[1], 30u);

  EXPECT_THROW(split_tensors_by_bandwidth({}, 10), std::invalid_argument);
}

TEST(DiskOffloader, EndToEndVirtualTierRecipe) {
  // Write tensors through the split, read them all back.
  MemoryTier fast("nvme", 6e9, 6e9);
  MemoryTier slow("pfs", 3e9, 3e9);
  SimClock clock(1.0);
  IoScheduler io(clock);
  DiskOffloader off_fast(fast, io);
  DiskOffloader off_slow(slow, io);
  std::vector<DiskOffloader*> offs = {&off_fast, &off_slow};

  constexpr std::size_t kTensors = 12;
  const auto placement = split_tensors_by_bandwidth(offs, kTensors);
  std::vector<std::vector<f32>> tensors(kTensors);
  for (std::size_t i = 0; i < kTensors; ++i) {
    tensors[i].assign(32, static_cast<f32>(i));
    offs[placement[i]]->async_write("t" + std::to_string(i), tensors[i]);
  }
  off_fast.synchronize();
  off_slow.synchronize();

  for (std::size_t i = 0; i < kTensors; ++i) {
    std::vector<f32> out(32);
    offs[placement[i]]->async_read("t" + std::to_string(i), out).get();
    EXPECT_EQ(out, tensors[i]) << i;
  }
}

}  // namespace
}  // namespace mlpo
