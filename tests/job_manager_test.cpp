// JobManager: multi-tenant construction, admission control, strict "jobs"
// config parsing, owned-vs-borrowed single-job equivalence, and
// tenant-scoped failure isolation on the shared substrate.
#include <gtest/gtest.h>

#include "runtime/job_manager.hpp"

namespace mlpo {
namespace {

TrainerConfig fast_config() {
  TrainerConfig cfg;
  cfg.model = ModelConfig{"tiny", 4, 4096, 32};
  cfg.elem_scale = 65536;
  cfg.time_scale = 2000.0;
  cfg.host_cache_override = 2;
  return cfg;
}

JobSpec fast_job(const std::string& name, u32 weight = 1) {
  JobSpec spec;
  spec.name = name;
  spec.config = fast_config();
  spec.weight = weight;
  spec.iterations = 3;
  spec.warmup = 1;
  return spec;
}

TEST(JobManager, SingleJobMatchesOwnedTrainer) {
  // The same configuration through the owned-substrate Trainer and through
  // a one-job JobManager must converge to the same optimizer state: the
  // borrowed path re-routes I/O through the shared tenant-fair scheduler,
  // but training arithmetic is deterministic.
  Trainer owned(fast_config());
  owned.initialize();
  owned.run(3, 1);
  const u64 owned_sum = cluster_state_checksum(owned.cluster());

  JobManagerConfig cfg;
  cfg.jobs.push_back(fast_job("solo"));
  JobManager manager(std::move(cfg));
  const auto results = manager.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state_checksum, owned_sum);
  EXPECT_EQ(results[0].tenant, 1u);
  EXPECT_EQ(results[0].reports.size(), 2u);
}

TEST(JobManager, ReportsCarryTenantSlices) {
  JobManagerConfig cfg;
  cfg.jobs.push_back(fast_job("a"));
  cfg.jobs.push_back(fast_job("b", /*weight=*/3));
  JobManager manager(std::move(cfg));
  const auto results = manager.run();
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& result = results[i];
    EXPECT_EQ(result.tenant, static_cast<u32>(i) + 1);
    ASSERT_FALSE(result.reports.empty());
    for (const auto& r : result.reports) {
      const TenantSlice* slice = r.tenant_slice(result.tenant);
      ASSERT_NE(slice, nullptr);
      EXPECT_EQ(slice->iterations, 1u);
      EXPECT_GT(slice->iteration_seconds, 0.0);
    }
    EXPECT_EQ(result.slo.iterations, result.reports.size());
    EXPECT_GT(result.slo.p99_iteration_seconds, 0.0);
    EXPECT_GE(result.slo.max_iteration_seconds,
              result.slo.p99_iteration_seconds);
  }
}

TEST(JobManager, DeadlineAccounting) {
  JobManagerConfig cfg;
  JobSpec strict = fast_job("strict");
  strict.deadline_seconds = 1e-9;  // unmeetable: every iteration misses
  JobSpec loose = fast_job("loose");
  loose.deadline_seconds = 1e9;  // unmissable
  cfg.jobs.push_back(strict);
  cfg.jobs.push_back(loose);
  JobManager manager(std::move(cfg));
  const auto results = manager.run();
  EXPECT_EQ(results[0].slo.deadline_hits, 0u);
  EXPECT_EQ(results[0].slo.hit_rate, 0.0);
  EXPECT_EQ(results[1].slo.deadline_hits, results[1].slo.iterations);
  EXPECT_EQ(results[1].slo.hit_rate, 1.0);
}

TEST(JobManager, AdmissionRejectsOvercommittedHost) {
  // Shrink the host until even one tiny job's gradient reserve + pinned
  // buffers cannot fit: the manager must reject at construction with the
  // budget arithmetic, not OOM later.
  JobManagerConfig cfg;
  JobSpec spec = fast_job("greedy");
  spec.config.testbed.host_memory_bytes = 281 * GiB;  // 1 GiB of budget
  cfg.jobs.push_back(spec);
  EXPECT_THROW(JobManager{std::move(cfg)}, AdmissionError);
}

TEST(JobManager, AdmissionRejectsSecondJobNotFirst) {
  // Budget that holds one job's demand but not two: the first is admitted,
  // the second rejected by name.
  JobSpec probe = fast_job("probe");
  const u64 hard = probe.config.model.parameters() * kFp16Bytes +
                   3ull * probe.config.testbed.gpus_per_node *
                       probe.config.subgroup_params * kOptimStateBytesPerParam;
  const u64 cache = static_cast<u64>(probe.config.host_cache_override) *
                    probe.config.testbed.gpus_per_node *
                    probe.config.subgroup_params * kOptimStateBytesPerParam;
  JobManagerConfig cfg;
  JobSpec first = fast_job("first");
  JobSpec second = fast_job("second");
  const u64 budget = (hard + cache) + (hard + cache) / 2;
  first.config.testbed.host_memory_bytes = 280 * GiB + budget;
  second.config.testbed.host_memory_bytes = 280 * GiB + budget;
  cfg.jobs.push_back(first);
  cfg.jobs.push_back(second);
  try {
    JobManager manager(std::move(cfg));
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_NE(std::string(e.what()).find("second"), std::string::npos)
        << e.what();
  }
}

TEST(JobManager, ValidationRejectsBadSpecs) {
  {
    JobManagerConfig cfg;  // no jobs
    EXPECT_THROW(JobManager{std::move(cfg)}, std::invalid_argument);
  }
  {
    JobManagerConfig cfg;
    cfg.jobs.push_back(fast_job("dup"));
    cfg.jobs.push_back(fast_job("dup"));
    EXPECT_THROW(JobManager{std::move(cfg)}, std::invalid_argument);
  }
  {
    JobManagerConfig cfg;
    cfg.jobs.push_back(fast_job("zero-weight", 1));
    cfg.jobs.back().weight = 0;
    EXPECT_THROW(JobManager{std::move(cfg)}, std::invalid_argument);
  }
  {
    JobManagerConfig cfg;
    cfg.jobs.push_back(fast_job("multi-node"));
    cfg.jobs.back().config.nodes = 2;
    EXPECT_THROW(JobManager{std::move(cfg)}, std::invalid_argument);
  }
  {
    JobManagerConfig cfg;
    cfg.jobs.push_back(fast_job("t1"));
    cfg.jobs.push_back(fast_job("t2"));
    cfg.jobs.back().config.time_scale = 123.0;  // clock disagreement
    EXPECT_THROW(JobManager{std::move(cfg)}, std::invalid_argument);
  }
}

TEST(JobManager, BorrowedTrainerRejectsPathFailures) {
  JobManagerConfig cfg;
  JobSpec spec = fast_job("pathy");
  spec.config.resilience.enabled = true;
  FailureEvent event;
  event.kind = FailureEvent::Kind::kPath;
  event.at_iteration = 1;
  spec.config.resilience.failures.push_back(event);
  cfg.jobs.push_back(spec);
  EXPECT_THROW(JobManager{std::move(cfg)}, std::invalid_argument);
}

TEST(JobManager, TenantScopedFailureLeavesNeighbourIntact) {
  // Reference: the surviving job alone on its own manager.
  const u64 solo_sum = [] {
    JobManagerConfig cfg;
    cfg.jobs.push_back(fast_job("survivor"));
    JobManager manager(std::move(cfg));
    return manager.run().at(0).state_checksum;
  }();

  // Same job next to a tenant that fail-stops mid-run and recovers. The
  // victim's loss cancels only its own queued I/O; the survivor's state
  // must match its uncontended reference bit for bit.
  JobManagerConfig cfg;
  cfg.jobs.push_back(fast_job("survivor"));
  JobSpec victim = fast_job("victim");
  victim.config.resilience.enabled = true;
  victim.config.resilience.checkpoint_interval = 1;
  FailureEvent event;
  event.kind = FailureEvent::Kind::kNode;
  event.at_iteration = 1;
  victim.config.resilience.failures.push_back(event);
  cfg.jobs.push_back(victim);
  JobManager manager(std::move(cfg));
  const auto results = manager.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].state_checksum, solo_sum);
  EXPECT_EQ(results[1].recovery.failures, 1u);
  EXPECT_EQ(results[1].recovery.recoveries, 1u);
  // The recovered victim still trained to completion.
  EXPECT_EQ(results[1].reports.size(), 2u);
}

TEST(JobManagerConfigJson, ParsesFullDocument) {
  const auto cfg = job_manager_config_from_json(std::string(R"({
    "fair_share_quantum_bytes": 524288,
    "io_queue_depth": 128,
    "jobs": [
      {"name": "prod", "weight": 3, "deadline_seconds": 40,
       "iterations": 5, "warmup": 1,
       "config": {"model": "70B", "time_scale": 500}},
      {"name": "research", "config": {"model": "40B", "time_scale": 500}}
    ]
  })"));
  EXPECT_EQ(cfg.fair_share_quantum_bytes, 524288u);
  EXPECT_EQ(cfg.io_queue_depth, 128u);
  ASSERT_EQ(cfg.jobs.size(), 2u);
  EXPECT_EQ(cfg.jobs[0].name, "prod");
  EXPECT_EQ(cfg.jobs[0].weight, 3u);
  EXPECT_EQ(cfg.jobs[0].deadline_seconds, 40.0);
  EXPECT_EQ(cfg.jobs[0].iterations, 5u);
  EXPECT_EQ(cfg.jobs[0].config.model.name, "70B");
  EXPECT_EQ(cfg.jobs[1].weight, 1u);
  EXPECT_EQ(cfg.jobs[1].config.model.name, "40B");
}

TEST(JobManagerConfigJson, StrictlyRejectsMalformedDocuments) {
  // Unknown job key aborts naming the known set (a typo must not silently
  // fall back to a default).
  try {
    job_manager_config_from_json(std::string(
        R"({"jobs": [{"name": "a", "wieght": 2}]})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wieght"), std::string::npos) << what;
    EXPECT_NE(what.find("weight"), std::string::npos) << what;
  }
  // Missing / empty jobs array.
  EXPECT_THROW(job_manager_config_from_json(std::string("{}")),
               std::invalid_argument);
  EXPECT_THROW(job_manager_config_from_json(std::string(R"({"jobs": []})")),
               std::invalid_argument);
  // Duplicate names, bad weight, bad warmup.
  EXPECT_THROW(job_manager_config_from_json(std::string(
                   R"({"jobs": [{"name": "a"}, {"name": "a"}]})")),
               std::invalid_argument);
  EXPECT_THROW(job_manager_config_from_json(std::string(
                   R"({"jobs": [{"name": "a", "weight": 0}]})")),
               std::invalid_argument);
  EXPECT_THROW(job_manager_config_from_json(std::string(
                   R"({"jobs": [{"name": "a", "iterations": 2,
                                 "warmup": 2}]})")),
               std::invalid_argument);
}

}  // namespace
}  // namespace mlpo
