// Logging: level gating and thread safety of the line writer.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace mlpo {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundtrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedLevelsDoNotCrash) {
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "never shown");
  MLPO_LOG_DEBUG << "also suppressed " << 42;
  MLPO_LOG_ERROR << "suppressed too";
  SUCCEED();
}

TEST_F(LoggingTest, StreamMacroComposesTypes) {
  set_log_level(LogLevel::kOff);  // keep test output clean
  MLPO_LOG_INFO << "pi=" << 3.14 << " n=" << 7 << " s=" << std::string("x");
  SUCCEED();
}

TEST_F(LoggingTest, ConcurrentLoggingIsSafe) {
  set_log_level(LogLevel::kOff);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        log_line(LogLevel::kError, "thread " + std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace mlpo
