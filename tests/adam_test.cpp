// Adam optimizer: reference math, parallel==reference bit-exactness,
// convergence property, parameter sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "train/adam.hpp"

namespace mlpo {
namespace {

TEST(Adam, SingleStepMatchesHandComputation) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.beta1 = 0.9f;
  cfg.beta2 = 0.999f;
  cfg.eps = 1e-8f;

  std::vector<f32> p = {1.0f};
  std::vector<f32> m = {0.0f};
  std::vector<f32> v = {0.0f};
  std::vector<f32> g = {0.5f};
  adam_update_reference(cfg, p, m, v, g, 1);

  // m = 0.1*0.5 = 0.05; v = 0.001*0.25 = 0.00025
  // m_hat = 0.05/0.1 = 0.5; v_hat = 0.00025/0.001 = 0.25
  // p -= 0.1 * 0.5 / (0.5 + 1e-8) ~= 0.1
  EXPECT_NEAR(m[0], 0.05f, 1e-7);
  // (1 - beta2) in f32 rounds 0.001 to ~0.00099999: allow a few ulps.
  EXPECT_NEAR(v[0], 0.00025f, 1e-8);
  EXPECT_NEAR(p[0], 0.9f, 1e-5);
}

TEST(Adam, WeightDecayAddsToGradient) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.1f;
  std::vector<f32> p1 = {2.0f}, m1 = {0}, v1 = {0};
  std::vector<f32> p2 = {2.0f}, m2 = {0}, v2 = {0};
  std::vector<f32> g_zero = {0.0f};
  std::vector<f32> g_wd = {0.2f};  // wd * p = 0.1 * 2.0

  adam_update_reference(cfg, p1, m1, v1, g_zero, 1);
  AdamConfig no_wd = cfg;
  no_wd.weight_decay = 0.0f;
  adam_update_reference(no_wd, p2, m2, v2, g_wd, 1);
  EXPECT_EQ(p1[0], p2[0]);
}

TEST(Adam, RejectsBadInputs) {
  AdamConfig cfg;
  std::vector<f32> p(4), m(4), v(4), g(3);
  EXPECT_THROW(adam_update_reference(cfg, p, m, v, g, 1),
               std::invalid_argument);
  std::vector<f32> g4(4);
  EXPECT_THROW(adam_update_reference(cfg, p, m, v, g4, 0),
               std::invalid_argument);
}

class AdamParallelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdamParallelTest, ParallelBitExactWithReference) {
  const std::size_t n = GetParam();
  std::mt19937 rng(1234 + n);
  std::uniform_real_distribution<f32> dist(-1.0f, 1.0f);

  std::vector<f32> p_ref(n), m_ref(n), v_ref(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p_ref[i] = dist(rng);
    m_ref[i] = dist(rng) * 0.1f;
    v_ref[i] = std::abs(dist(rng)) * 0.01f;
    g[i] = dist(rng);
  }
  auto p_par = p_ref;
  auto m_par = m_ref;
  auto v_par = v_ref;

  AdamConfig cfg;
  cfg.lr = 3e-4f;
  ThreadPool pool(4);
  for (u32 step = 1; step <= 3; ++step) {
    adam_update_reference(cfg, p_ref, m_ref, v_ref, g, step);
    adam_update(cfg, p_par, m_par, v_par, g, step, &pool);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(p_par[i], p_ref[i]) << i;
    EXPECT_EQ(m_par[i], m_ref[i]) << i;
    EXPECT_EQ(v_par[i], v_ref[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdamParallelTest,
                         ::testing::Values(1, 7, 64, 1000, 10001, 65536));

TEST(Adam, NullPoolFallsBackToSerial) {
  std::vector<f32> p = {1.0f, 2.0f}, m = {0, 0}, v = {0, 0}, g = {0.1f, 0.2f};
  auto p2 = p;
  auto m2 = m;
  auto v2 = v;
  AdamConfig cfg;
  adam_update(cfg, p, m, v, g, 1, nullptr);
  adam_update_reference(cfg, p2, m2, v2, g, 1);
  EXPECT_EQ(p, p2);
}

TEST(Adam, ConvergesOnQuadraticBowl) {
  // Minimise f(x) = 0.5*(x - 3)^2; gradient = x - 3.
  AdamConfig cfg;
  cfg.lr = 0.05f;
  std::vector<f32> p = {-5.0f}, m = {0}, v = {0}, g(1);
  for (u32 step = 1; step <= 2000; ++step) {
    g[0] = p[0] - 3.0f;
    adam_update_reference(cfg, p, m, v, g, step);
  }
  EXPECT_NEAR(p[0], 3.0f, 0.05f);
}

TEST(Adam, BiasCorrectionMakesEarlyStepsFullSized) {
  // With bias correction, the first step moves by ~lr regardless of beta.
  AdamConfig cfg;
  cfg.lr = 0.01f;
  std::vector<f32> p = {0.0f}, m = {0}, v = {0}, g = {1.0f};
  adam_update_reference(cfg, p, m, v, g, 1);
  EXPECT_NEAR(p[0], -0.01f, 1e-4);
}

struct HyperCase {
  f32 lr, beta1, beta2;
};

class AdamHyperTest : public ::testing::TestWithParam<HyperCase> {};

TEST_P(AdamHyperTest, StateStaysFiniteOverManySteps) {
  const auto [lr, b1, b2] = GetParam();
  AdamConfig cfg;
  cfg.lr = lr;
  cfg.beta1 = b1;
  cfg.beta2 = b2;
  std::mt19937 rng(7);
  std::uniform_real_distribution<f32> dist(-0.1f, 0.1f);
  std::vector<f32> p(64, 0.5f), m(64, 0), v(64, 0), g(64);
  for (u32 step = 1; step <= 200; ++step) {
    for (auto& x : g) x = dist(rng);
    adam_update_reference(cfg, p, m, v, g, step);
  }
  for (const f32 x : p) EXPECT_TRUE(std::isfinite(x));
  for (const f32 x : v) EXPECT_GE(x, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Hypers, AdamHyperTest,
    ::testing::Values(HyperCase{1e-4f, 0.9f, 0.999f},
                      HyperCase{1e-2f, 0.8f, 0.99f},
                      HyperCase{1e-3f, 0.0f, 0.999f},
                      HyperCase{1e-3f, 0.9f, 0.9f}));

}  // namespace
}  // namespace mlpo
