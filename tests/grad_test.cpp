// GradSource determinism + GradAccumulator semantics + mixed-precision
// kernels.
#include <gtest/gtest.h>

#include "train/grad_accum.hpp"
#include "train/grad_source.hpp"
#include "train/mixed_precision.hpp"
#include "util/fp16.hpp"

namespace mlpo {
namespace {

TEST(GradSource, DeterministicAcrossCalls) {
  GradSource src;
  std::vector<u16> a(128), b(128);
  src.generate_fp16(0, 5, 17, a);
  src.generate_fp16(0, 5, 17, b);
  EXPECT_EQ(a, b);
}

TEST(GradSource, DistinctCoordinatesGiveDistinctStreams) {
  GradSource src;
  std::vector<u16> base(64), other(64);
  src.generate_fp16(0, 1, 1, base);
  src.generate_fp16(1, 1, 1, other);
  EXPECT_NE(base, other) << "rank must affect the stream";
  src.generate_fp16(0, 2, 1, other);
  EXPECT_NE(base, other) << "subgroup must affect the stream";
  src.generate_fp16(0, 1, 2, other);
  EXPECT_NE(base, other) << "iteration must affect the stream";
}

TEST(GradSource, SeedChangesStream) {
  GradSource a(1), b(2);
  std::vector<u16> va(32), vb(32);
  a.generate_fp16(0, 0, 0, va);
  b.generate_fp16(0, 0, 0, vb);
  EXPECT_NE(va, vb);
}

TEST(GradSource, Fp32MatchesUpscaledFp16) {
  GradSource src;
  std::vector<u16> half(256);
  std::vector<f32> full(256), upscaled(256);
  src.generate_fp16(2, 3, 4, half);
  src.generate_fp32(2, 3, 4, full);
  fp16_to_fp32(half, upscaled);
  EXPECT_EQ(full, upscaled);
}

TEST(GradSource, ValuesAreSmallAndCentred) {
  GradSource src;
  std::vector<f32> g(10000);
  src.generate_fp32(0, 0, 0, g);
  f64 sum = 0;
  for (const f32 x : g) {
    EXPECT_LE(std::abs(x), 0.03f);
    sum += x;
  }
  EXPECT_NEAR(sum / g.size(), 0.0, 0.001);
}

TEST(GradAccumulator, StoreThenReadBack) {
  GradAccumulator accum(2, 16);
  std::vector<u16> g(16, Fp16::encode(0.5f));
  accum.store(1, g);
  EXPECT_EQ(accum.fp16(1)[0], Fp16::encode(0.5f));
  EXPECT_EQ(accum.fp16(0)[0], 0);  // untouched buffer stays zero
}

TEST(GradAccumulator, AccumulateSums) {
  GradAccumulator accum(1, 8);
  std::vector<u16> g1(8, Fp16::encode(0.25f));
  std::vector<u16> g2(8, Fp16::encode(0.5f));
  accum.store(0, g1);
  accum.accumulate(0, g2);
  for (const u16 h : accum.fp16(0)) {
    EXPECT_EQ(Fp16::decode(h), 0.75f);
  }
}

TEST(GradAccumulator, AccumulateParallelMatchesSerial) {
  ThreadPool pool(4);
  GradAccumulator serial(1, 5000), parallel(1, 5000);
  GradSource src;
  std::vector<u16> g(5000);
  src.generate_fp16(0, 0, 0, g);
  serial.store(0, g);
  parallel.store(0, g);
  src.generate_fp16(0, 0, 1, g);
  serial.accumulate(0, g, nullptr);
  parallel.accumulate(0, g, &pool);
  for (std::size_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(serial.fp16(0)[i], parallel.fp16(0)[i]) << i;
  }
}

TEST(GradAccumulator, UpscaleIntoMatchesScalarConversion) {
  GradAccumulator accum(1, 64);
  GradSource src;
  std::vector<u16> g(64);
  src.generate_fp16(0, 0, 9, g);
  accum.store(0, g);
  std::vector<f32> out(64), expect(64);
  accum.upscale_into(0, out);
  fp16_to_fp32(g, expect);
  EXPECT_EQ(out, expect);
}

TEST(GradAccumulator, ResetZeroesEverything) {
  GradAccumulator accum(2, 4);
  std::vector<u16> g(4, Fp16::encode(1.0f));
  accum.store(0, g);
  accum.store(1, g);
  accum.reset();
  for (u32 id = 0; id < 2; ++id) {
    for (const u16 h : accum.fp16(id)) EXPECT_EQ(h, 0);
  }
}

TEST(GradAccumulator, PerSubgroupSizesSupported) {
  GradAccumulator accum(std::vector<u64>{10, 20, 5});
  EXPECT_EQ(accum.num_subgroups(), 3u);
  EXPECT_EQ(accum.elems(0), 10u);
  EXPECT_EQ(accum.elems(1), 20u);
  EXPECT_EQ(accum.elems(2), 5u);
  std::vector<u16> wrong(11);
  EXPECT_THROW(accum.store(0, wrong), std::invalid_argument);
}

TEST(MixedPrecision, UpscaleDownscaleRoundtripExactForFp16Values) {
  ThreadPool pool(2);
  std::vector<u16> half(1000);
  for (std::size_t i = 0; i < half.size(); ++i) {
    half[i] = Fp16::encode(static_cast<f32>(i) * 0.125f);
  }
  std::vector<f32> full(1000);
  upscale_fp16_to_fp32(half, full, &pool);
  std::vector<u16> back(1000);
  downscale_fp32_to_fp16(full, back, &pool);
  EXPECT_EQ(back, half);
}

TEST(MixedPrecision, SizeMismatchThrows) {
  std::vector<u16> half(4);
  std::vector<f32> full(5);
  EXPECT_THROW(upscale_fp16_to_fp32(half, full), std::invalid_argument);
  EXPECT_THROW(downscale_fp32_to_fp16(full, half), std::invalid_argument);
}

TEST(MixedPrecision, ConvertCostScalesLinearly) {
  ConvertCost cost;
  cost.fp32_bytes_per_sec = 65e9;
  const f64 t100m = cost.seconds_for_params(100'000'000);
  EXPECT_NEAR(t100m, 400e6 / 65e9, 1e-9);
  EXPECT_NEAR(cost.seconds_for_params(200'000'000), 2 * t100m, 1e-12);
}

}  // namespace
}  // namespace mlpo
