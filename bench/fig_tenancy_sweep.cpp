// Tenancy sweep: N identical jobs multiplexed over one ClusterSubstrate.
//
// The paper's offload machinery assumes it owns the node; the JobManager
// extension shares one clock, tier set, and I/O scheduler between several
// Trainer-shaped jobs under per-tenant weighted fair share. This case
// measures what that sharing costs and proves nobody starves:
//
//   * jobs = 1 / 2 / 4 / 8 identical weight-1 jobs — aggregate iteration
//     throughput (gated: higher is better; co-tenants should pipeline into
//     each other's compute gaps rather than serialize) and the worst
//     tenant's p99 iteration time (gated: lower is better; the fairness
//     layer bounds how much one tenant's latency tail pays for sharing);
//   * a skewed case (weights 3:1) — recorded for the same metrics, and
//     feeding the starvation assertion below.
//
// Starvation assertion, every scenario: each tenant's share of the
// scheduler's serviced bytes must reach at least 80% of its entitlement,
// where entitlement = min(weight_i / sum(weights), 1 / jobs) — capped at
// the equal split because finished jobs are demand-limited (a heavy tenant
// that ran out of work under-consumes its weight; that is idleness, not
// starvation). A violation throws, failing the case and the smoke gate.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "runtime/job_manager.hpp"

namespace mlpo::bench {
namespace {

/// Scale-reduced job, sized so an 8-job scenario stays inside the smoke
/// budget: tiny model, coarse elements, two host-cache slots per job.
JobSpec sweep_job(const std::string& name, u32 weight) {
  JobSpec spec;
  spec.name = name;
  spec.weight = weight;
  spec.config.model = ModelConfig{"tiny", 4, 4096, 32};
  spec.config.elem_scale = 65536;
  spec.config.time_scale = env_time_scale();
  spec.config.host_cache_override = 2;
  spec.iterations = env_iters() + env_warmup();
  spec.warmup = env_warmup();
  return spec;
}

struct ScenarioStats {
  f64 aggregate_iters_per_vs = 0;  ///< total measured iters / makespan
  f64 worst_p99_seconds = 0;       ///< max over tenants of p99 iter time
  f64 worst_share_ratio = 0;       ///< min over tenants of share/entitlement
};

ScenarioStats run_jobs(const std::vector<u32>& weights,
                       const std::string& scenario) {
  JobManagerConfig cfg;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cfg.jobs.push_back(
        sweep_job("job" + std::to_string(i + 1), weights[i]));
  }
  JobManager manager(std::move(cfg));
  ClusterSubstrate& substrate = manager.substrate();
  const auto results = manager.run();

  ScenarioStats stats;
  u32 total_iters = 0;
  f64 makespan = 0;
  for (const JobResult& r : results) {
    total_iters += r.slo.iterations;
    makespan = std::max(
        makespan, r.slo.mean_iteration_seconds * r.slo.iterations);
    stats.worst_p99_seconds =
        std::max(stats.worst_p99_seconds, r.slo.p99_iteration_seconds);
  }
  stats.aggregate_iters_per_vs =
      makespan > 0 ? static_cast<f64>(total_iters) / makespan : 0;

  // Starvation check over the shared scheduler's per-tenant accounting.
  u64 weight_sum = 0;
  for (const u32 w : weights) weight_sum += w;
  std::vector<u64> tenant_bytes(results.size(), 0);
  u64 total_bytes = 0;
  for (const JobResult& r : results) {
    const auto s = substrate.io().tenant_stats(r.tenant);
    u64 bytes = 0;
    for (const auto& pri : s.priority) bytes += pri.sim_bytes;
    tenant_bytes[r.tenant - 1] = bytes;
    total_bytes += bytes;
  }
  stats.worst_share_ratio = 1.0;
  if (total_bytes > 0) {
    for (const JobResult& r : results) {
      const f64 share = static_cast<f64>(tenant_bytes[r.tenant - 1]) /
                        static_cast<f64>(total_bytes);
      const f64 entitlement =
          std::min(static_cast<f64>(r.weight) / static_cast<f64>(weight_sum),
                   1.0 / static_cast<f64>(results.size()));
      const f64 ratio = share / entitlement;
      stats.worst_share_ratio = std::min(stats.worst_share_ratio, ratio);
      if (ratio < 0.8) {
        throw std::runtime_error(
            "fig_tenancy_sweep: tenant \"" + r.name + "\" starved in " +
            scenario + " — serviced-byte share " + std::to_string(share) +
            " is below 80% of its entitlement " +
            std::to_string(entitlement));
      }
    }
  }
  return stats;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  print_header("tenancy_sweep",
               "multi-job sharing of one substrate: aggregate throughput "
               "holds, no tenant's latency tail or byte share collapses");

  struct Scenario {
    std::string label;
    std::vector<u32> weights;
  };
  const std::vector<Scenario> scenarios = {
      {"1", {1}},
      {"2", {1, 1}},
      {"4", {1, 1, 1, 1}},
      {"8", {1, 1, 1, 1, 1, 1, 1, 1}},
      {"2-skewed", {3, 1}},
  };

  std::vector<telemetry::Metric> out;
  TablePrinter table({"Jobs", "Agg thru (iter/vs)", "Worst p99 (vs)",
                      "Worst share/entitlement"});
  for (const Scenario& s : scenarios) {
    const ScenarioStats stats = run_jobs(s.weights, "jobs=" + s.label);
    table.add_row({s.label, TablePrinter::num(stats.aggregate_iters_per_vs, 3),
                   TablePrinter::num(stats.worst_p99_seconds, 4),
                   TablePrinter::num(stats.worst_share_ratio, 3)});
    json::Object params;
    params["jobs"] = s.label;
    out.push_back(metric("aggregate_throughput", "iter/vs",
                         stats.aggregate_iters_per_vs, Better::kHigher,
                         params));
    out.push_back(metric("worst_tenant_p99", "vs", stats.worst_p99_seconds,
                         Better::kLower, params));
    out.push_back(metric("worst_share_ratio", "x", stats.worst_share_ratio,
                         Better::kNeither, params));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig_tenancy_sweep(BenchRegistry& registry) {
  registry.add(BenchCase{
      .name = "fig_tenancy_sweep",
      .title = "Tenancy sweep - jobs sharing one substrate",
      .paper_claim =
          "multi-level offload capacity can be multiplexed between jobs "
          "under weighted fair share without starving any tenant",
      .labels = {"smoke", "tenancy"},
      .sweep = {{"jobs", {"1", "2", "4", "8", "2-skewed"}}},
      .run = run});
}

}  // namespace mlpo::bench
