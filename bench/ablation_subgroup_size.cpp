// Design-choice ablation: subgroup size. The paper (§4.1) uses 100M-param
// subgroups instead of DeepSpeed's 1B default because "smaller subgroups
// achieve better I/O and compute overlap ... which allows better load
// balancing for our approach" — while being "inconsequential for
// convergence or accuracy". This harness sweeps the subgroup size for the
// 40B model under both engines.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace mlpo;
  bench::print_header(
      "Ablation - subgroup size (40B, Testbed-1)",
      "100M-param subgroups overlap I/O and compute better than DeepSpeed's "
      "1B default; very small subgroups pay per-request overheads");

  const auto& model = paper_model("40B");
  TablePrinter table({"Subgroup (Mparams)", "Engine", "Update (s)",
                      "Total (s)", "Subgroups/GPU"});
  for (const u64 subgroup_params :
       {50'000'000ull, 100'000'000ull, 250'000'000ull, 1'000'000'000ull}) {
    for (const int mlp : {0, 1}) {
      auto cfg = bench::scenario(model, TestbedSpec::testbed1(),
                                 mlp ? EngineOptions::mlp_offload()
                                     : EngineOptions::deepspeed_zero3());
      if (!mlp) cfg.attach_pfs = false;
      cfg.subgroup_params = subgroup_params;
      const auto result = bench::run_scenario(cfg);
      table.add_row(
          {TablePrinter::num(static_cast<f64>(subgroup_params) / 1e6, 0),
           mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(result.avg.update_seconds, 1),
           TablePrinter::num(result.avg.iteration_seconds(), 1),
           std::to_string(result.avg.subgroups_processed / 4)});
    }
  }
  table.print();
  std::printf("\nExpected shape: coarse 1B subgroups lose pipeline overlap "
              "(fill/drain\nbubbles and lumpy multi-path balancing); the "
              "paper's 100M choice sits near\nthe knee.\n");
  return 0;
}
