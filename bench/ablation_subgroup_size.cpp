// Design-choice ablation: subgroup size. The paper (§4.1) uses 100M-param
// subgroups instead of DeepSpeed's 1B default because "smaller subgroups
// achieve better I/O and compute overlap ... which allows better load
// balancing for our approach" — while being "inconsequential for
// convergence or accuracy". This case sweeps the subgroup size for the
// 40B model under both engines.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const auto& model = paper_model("40B");
  TablePrinter table({"Subgroup (Mparams)", "Engine", "Update (s)",
                      "Total (s)", "Subgroups/GPU"});
  for (const u64 subgroup_params :
       {50'000'000ull, 100'000'000ull, 250'000'000ull, 1'000'000'000ull}) {
    const auto pair = run_engine_pair(
        model, TestbedSpec::testbed1(), 1, [&](TrainerConfig& cfg) {
          cfg.subgroup_params = subgroup_params;
        });
    const ScenarioResult* results[2] = {&pair.ds, &pair.mlp};
    for (const int mlp : {0, 1}) {
      const auto& result = *results[mlp];
      table.add_row(
          {TablePrinter::num(static_cast<f64>(subgroup_params) / 1e6, 0),
           mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(result.avg.update_seconds, 1),
           TablePrinter::num(result.avg.iteration_seconds(), 1),
           std::to_string(result.avg.subgroups_processed / 4)});
      const json::Object params{
          {"subgroup_mparams", std::to_string(subgroup_params / 1'000'000)},
          {"engine", mlp ? "mlp" : "ds"}};
      out.push_back(metric("update_seconds", "s", result.avg.update_seconds,
                           Better::kLower, params));
      out.push_back(metric("iteration_seconds", "s",
                           result.avg.iteration_seconds(), Better::kNeither,
                           params));
    }
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nExpected shape: coarse 1B subgroups lose pipeline overlap "
                "(fill/drain\nbubbles and lumpy multi-path balancing); the "
                "paper's 100M choice sits near\nthe knee.\n");
  }
  return out;
}

}  // namespace

void register_ablation_subgroup_size(BenchRegistry& r) {
  r.add({.name = "ablation_subgroup_size",
         .title = "Ablation - subgroup size (40B, Testbed-1)",
         .paper_claim =
             "100M-param subgroups overlap I/O and compute better than "
             "DeepSpeed's 1B default; very small subgroups pay per-request "
             "overheads",
         .labels = {"ablation", "scaled"},
         .sweep = {{"subgroup_mparams", {"50", "100", "250", "1000"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
