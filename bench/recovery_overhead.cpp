// Recovery overhead: the checkpoint-interval vs recovery-cost tradeoff of
// the resilience layer (checkpoint pre-staging as a first-class restore
// path + elastic restart).
//
// One 2-node cluster trains with a node fail-stop injected mid-run; the
// RecoveryDriver snapshots every `interval` iterations, cancels the dead
// node's queued I/O, replaces the hardware (or elastically shrinks to one
// node) and restores from the last snapshot. Tight intervals pay more
// checkpoint time and lose less work; loose intervals invert the trade.
//
// Doubles as two regression gates:
//   * correctness — every recovered run must reach the same cluster state
//     checksum as the uninterrupted reference (a mismatch throws and fails
//     the case), including the elastic 2->1-node restart;
//   * performance — checkpoint/recovery virtual times are smoke-gated
//     against bench/baselines/smoke.json like every other perf claim.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "resilience/recovery_driver.hpp"

namespace mlpo::bench {
namespace {

constexpr u32 kIterations = 6;
constexpr u32 kFailureIteration = 3;

ModelConfig bench_model() {
  // Small enough that the gate's 5 repeats stay cheap, big enough that
  // every rank owns several global subgroups to remap.
  return ModelConfig{"bench-tiny", 2, 2048, 32};
}

TrainerConfig base_config() {
  TrainerConfig cfg;
  cfg.model = bench_model();
  cfg.testbed = TestbedSpec::testbed2();
  cfg.engine = EngineOptions::mlp_offload();
  cfg.nodes = 2;
  cfg.subgroup_params = 4'000'000;
  cfg.elem_scale = elem_scale_for(cfg.model.parameters());
  cfg.time_scale = env_time_scale();
  cfg.host_cache_override = 2;
  cfg.resilience.enabled = true;
  cfg.resilience.elastic_sharding = true;  // all scenarios share one digest
  return cfg;
}

struct RunResult {
  RecoveryStats stats;
  f64 train_seconds = 0;  ///< sum of per-iteration walls (final versions)
  u64 checksum = 0;
};

RunResult run_one(u32 checkpoint_interval, u32 restart_nodes,
                  bool inject_failure) {
  TrainerConfig cfg = base_config();
  cfg.resilience.checkpoint_interval = checkpoint_interval;
  cfg.resilience.restart_nodes = restart_nodes;
  if (inject_failure) {
    FailureEvent event;
    event.kind = FailureEvent::Kind::kNode;
    event.node = 1;
    event.at_iteration = kFailureIteration;
    cfg.resilience.failures.push_back(event);
  }

  Trainer trainer(cfg);
  trainer.initialize();
  const auto reports = trainer.run(kIterations, /*warmup=*/0);

  RunResult result;
  result.stats = *trainer.recovery_stats();
  for (const auto& r : reports) result.train_seconds += r.iteration_seconds();
  result.checksum = cluster_state_checksum(trainer.cluster());

  if (inject_failure && result.stats.recoveries != 1) {
    throw std::runtime_error(
        "recovery_overhead: expected exactly one recovery, saw " +
        std::to_string(result.stats.recoveries));
  }
  return result;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const RunResult reference =
      run_one(/*checkpoint_interval=*/kIterations, /*restart_nodes=*/0,
              /*inject_failure=*/false);

  TablePrinter table({"Scenario", "Ckpts", "Ckpt (s)", "Recovery (s)",
                      "Lost iters", "Train (s)"});
  const auto record = [&](const std::string& scenario, const RunResult& r) {
    if (r.checksum != reference.checksum) {
      // Recovery changed the training state — the equivalence claim broke.
      throw std::runtime_error(
          "recovery_overhead: state checksum diverged from the "
          "uninterrupted reference for scenario '" + scenario + "'");
    }
    table.add_row({scenario, std::to_string(r.stats.checkpoints_taken),
                   TablePrinter::num(r.stats.checkpoint_seconds, 2),
                   TablePrinter::num(r.stats.recovery_seconds, 2),
                   std::to_string(r.stats.lost_work_iterations),
                   TablePrinter::num(r.train_seconds, 2)});
    out.push_back(metric("checkpoint_seconds", "s",
                         r.stats.checkpoint_seconds, Better::kLower,
                         {{"scenario", scenario}}));
    out.push_back(metric("recovery_seconds", "s", r.stats.recovery_seconds,
                         Better::kLower, {{"scenario", scenario}}));
    out.push_back(metric("lost_work_iterations", "iters",
                         r.stats.lost_work_iterations, Better::kNeither,
                         {{"scenario", scenario}}));
  };

  for (const u32 interval : {1u, 2u, 4u}) {
    record("interval:" + std::to_string(interval),
           run_one(interval, /*restart_nodes=*/0, /*inject_failure=*/true));
  }
  // Elastic restart: resume on one node after losing one of two. Same
  // digest, different world size — the sharding-remap claim.
  record("elastic:2->1",
         run_one(/*checkpoint_interval=*/2, /*restart_nodes=*/1,
                 /*inject_failure=*/true));

  if (ctx.print_tables()) {
    table.print();
    std::printf("\nAll recovered runs matched the uninterrupted reference "
                "checksum (incl. the 2->1 elastic restart).\n");
  }
  return out;
}

}  // namespace

void register_recovery_overhead(BenchRegistry& r) {
  r.add({.name = "recovery_overhead",
         .title = "Extension - failure injection & elastic restart overhead",
         .paper_claim =
             "checkpoint pre-staging makes restore-from-persistent-tier a "
             "first-class path: training survives a node fail-stop, and "
             "tighter checkpoint intervals trade snapshot time for less "
             "lost work",
         .labels = {"smoke", "resilience", "extension"},
         .sweep = {{"checkpoint_interval", {"1", "2", "4"}},
                   {"restart", {"replace", "elastic 2->1"}}},
         .run = run});
}

}  // namespace mlpo::bench
