// Shared plumbing for the paper-figure benchmark harnesses.
//
// Every bench case regenerates one table or figure from the paper's
// evaluation: same workload, same parameter sweep, same reported rows. The
// substrate is the scaled-time emulation described in DESIGN.md, so the
// reproduction targets are the *shapes* (who wins, by what factor, where
// the crossovers sit), not the authors' absolute testbed numbers — each
// case prints the paper's reference values alongside for comparison.
//
// Environment knobs (strictly validated; a malformed value aborts the run
// with an error naming the variable instead of silently misconfiguring it):
//   MLPO_TIME_SCALE    virtual seconds per real second (default 500)
//   MLPO_BENCH_ITERS   iterations per scenario          (default 3)
//   MLPO_BENCH_WARMUP  of which warmup                  (default 1,
//                      clamped default 0 when iters is 1; must be < iters)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/trainer.hpp"
#include "telemetry/json_reporter.hpp"
#include "telemetry/table_printer.hpp"
#include "util/env.hpp"

namespace mlpo::bench {

f64 env_time_scale();
u32 env_iters();
u32 env_warmup();

/// Parse-and-check every MLPO_* knob up front so a bad value fails the run
/// before any case spends time measuring. Throws env::EnvError.
void validate_bench_env();

/// Pick an element scale that keeps real memory modest for `params`.
u64 elem_scale_for(u64 params);

struct ScenarioResult {
  IterationReport avg;                ///< averaged post-warmup report
  Engine::Distribution distribution;  ///< end-of-run placement
};

/// Build a TrainerConfig for a standard paper scenario.
TrainerConfig scenario(const ModelConfig& model, const TestbedSpec& testbed,
                       const EngineOptions& engine, u32 nodes = 1);

/// Run the scenario and average the measured iterations.
ScenarioResult run_scenario(const TrainerConfig& cfg);

/// DeepSpeed-baseline vs MLP-Offload pair for one model/testbed — the
/// shared sweep step of Figs. 7-9, 11-13 and the subgroup ablation. The
/// baseline never attaches the PFS; `tweak` (if set) applies to both.
struct EnginePairResult {
  ScenarioResult ds;
  ScenarioResult mlp;
};
EnginePairResult run_engine_pair(
    const ModelConfig& model, const TestbedSpec& testbed, u32 nodes = 1,
    const std::function<void(TrainerConfig&)>& tweak = {});

/// Banner: figure/table id, what the paper shows, what we measure.
void print_header(const std::string& id, const std::string& paper_claim);

/// Metric-row shorthand for case run() bodies.
telemetry::Metric metric(std::string name, std::string unit, f64 value,
                         telemetry::Better better = telemetry::Better::kNeither,
                         json::Object params = {});

/// Formatters.
std::string gb_per_s(f64 bytes_per_vsec);
std::string gib(u64 bytes);

}  // namespace mlpo::bench
