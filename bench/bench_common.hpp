// Shared plumbing for the paper-figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: same workload, same parameter sweep, same reported rows. The
// substrate is the scaled-time emulation described in DESIGN.md, so the
// reproduction targets are the *shapes* (who wins, by what factor, where
// the crossovers sit), not the authors' absolute testbed numbers — each
// harness prints the paper's reference values alongside for comparison.
//
// Environment knobs:
//   MLPO_TIME_SCALE    virtual seconds per real second (default 500)
//   MLPO_BENCH_ITERS   iterations per scenario          (default 3)
//   MLPO_BENCH_WARMUP  of which warmup                  (default 1)
#pragma once

#include <string>
#include <vector>

#include "runtime/trainer.hpp"
#include "telemetry/table_printer.hpp"

namespace mlpo::bench {

f64 env_time_scale();
u32 env_iters();
u32 env_warmup();

/// Pick an element scale that keeps real memory modest for `params`.
u64 elem_scale_for(u64 params);

struct ScenarioResult {
  IterationReport avg;                      ///< averaged post-warmup report
  OffloadEngine::Distribution distribution; ///< end-of-run placement
};

/// Build a TrainerConfig for a standard paper scenario.
TrainerConfig scenario(const ModelConfig& model, const TestbedSpec& testbed,
                       const EngineOptions& engine, u32 nodes = 1);

/// Run the scenario and average the measured iterations.
ScenarioResult run_scenario(const TrainerConfig& cfg);

/// Banner: figure/table id, what the paper shows, what we measure.
void print_header(const std::string& id, const std::string& paper_claim);

/// Formatters.
std::string gb_per_s(f64 bytes_per_vsec);
std::string gib(u64 bytes);

}  // namespace mlpo::bench
