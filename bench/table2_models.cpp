// Table 2: model configurations used in the evaluation (40B-280B), plus the
// derived footprints that motivate third-level offloading.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace mlpo;
  bench::print_header("Table 2 - Evaluation models",
                      "N_L/D_H/A_H for 40B..280B; optimizer state is 6x the "
                      "FP16 model and exceeds host memory beyond ~40B");

  TablePrinter table({"Model", "N_L", "D_H", "A_H", "Params (B)",
                      "FP16 model", "Optim state (12B/p)", "Fits host mem?"});
  // "Fits" accounts for the ~250 GB of runtime structures the ZeRO-3 stack
  // itself keeps in host memory (paper §4.3): the paper draws the line at
  // 40B, below which NVMe offloading is unnecessary.
  const u64 usable_host = 512ull * GiB - 250ull * GiB;
  auto add = [&](const ModelConfig& m) {
    table.add_row({m.name, std::to_string(m.num_layers),
                   std::to_string(m.hidden_dim),
                   std::to_string(m.attention_heads),
                   TablePrinter::num(static_cast<f64>(m.parameters()) / 1e9, 1),
                   bench::gib(m.fp16_param_bytes()),
                   bench::gib(m.optimizer_state_bytes()),
                   m.optimizer_state_bytes() < usable_host ? "yes" : "no"});
  };
  add(baseline_20b());
  for (const auto& m : paper_models()) add(m);
  table.print();
  std::printf("\nParameter counts derive from 12*H^2+13*H per layer plus "
              "embeddings;\nthe paper quotes rounded headline sizes.\n");
  return 0;
}
