// Table 2: model configurations used in the evaluation (40B-280B), plus the
// derived footprints that motivate third-level offloading.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "N_L", "D_H", "A_H", "Params (B)",
                      "FP16 model", "Optim state (12B/p)", "Fits host mem?"});
  // "Fits" accounts for the ~250 GB of runtime structures the ZeRO-3 stack
  // itself keeps in host memory (paper §4.3): the paper draws the line at
  // 40B, below which NVMe offloading is unnecessary.
  const u64 usable_host = 512ull * GiB - 250ull * GiB;
  auto add = [&](const ModelConfig& m) {
    table.add_row({m.name, std::to_string(m.num_layers),
                   std::to_string(m.hidden_dim),
                   std::to_string(m.attention_heads),
                   TablePrinter::num(static_cast<f64>(m.parameters()) / 1e9, 1),
                   gib(m.fp16_param_bytes()),
                   gib(m.optimizer_state_bytes()),
                   m.optimizer_state_bytes() < usable_host ? "yes" : "no"});
    const json::Object params{{"model", m.name}};
    out.push_back(metric("params_b", "B",
                         static_cast<f64>(m.parameters()) / 1e9,
                         telemetry::Better::kNeither, params));
    out.push_back(metric("optim_state_gb", "GB",
                         static_cast<f64>(m.optimizer_state_bytes()) / 1e9,
                         telemetry::Better::kNeither, params));
  };
  add(baseline_20b());
  for (const auto& m : paper_models()) add(m);
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nParameter counts derive from 12*H^2+13*H per layer plus "
                "embeddings;\nthe paper quotes rounded headline sizes.\n");
  }
  return out;
}

}  // namespace

void register_table2_models(BenchRegistry& r) {
  r.add({.name = "table2_models",
         .title = "Table 2 - Evaluation models",
         .paper_claim =
             "N_L/D_H/A_H for 40B..280B; optimizer state is 6x the FP16 "
             "model and exceeds host memory beyond ~40B",
         .labels = {"smoke", "table"},
         .sweep = {{"model", {"20B", "40B..280B"}}},
         .run = run});
}

}  // namespace mlpo::bench
