// Figure 3: fraction of the update phase spent in disk I/O, DeepSpeed
// ZeRO-3 with NVMe offloading on Testbed-1. The paper shows the 20B
// host-resident reference at 100% compute (2.3 s) and every SSD-offloaded
// model at ~99% I/O (66.5 s for 40B up to 479 s for 120B... as measured on
// their 4xH100 node).
#include <cstdio>

#include "bench_common.hpp"
#include "core/cpu_only_engine.hpp"
#include "harness/bench_registry.hpp"
#include "train/sharding.hpp"

namespace mlpo::bench {
namespace {

// Paper reference rows (update I/O seconds, compute seconds).
struct PaperRow {
  const char* label;
  f64 io_s;
  f64 compute_s;
};
const PaperRow kPaper[] = {
    {"20B CPU", 0.0, 2.3},   {"20B", 66.5, 0.7},   {"40B", 211.0, 2.1},
    {"70B", 331.8, 3.2},     {"120B", 479.1, 4.7},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "Update (s)", "I/O time (s)", "Compute (s)",
                      "I/O frac", "Paper I/O frac"});

  // Row 1: the 20B host-memory reference (pure CPU update).
  {
    const SimClock clock(env_time_scale());
    const GradSource grads;
    CpuOnlyEngine::Options opts;
    opts.cpu_update_rate = TestbedSpec::testbed1().cpu_update_rate_node;
    const auto model = baseline_20b();
    opts.elem_scale = elem_scale_for(model.parameters());
    CpuOnlyEngine engine(clock, grads, make_shard_layout(model, 1, 0), opts);
    engine.initialize();
    engine.deposit_gradients(0, true);
    const auto report = engine.run_update(0);
    table.add_row({"20B CPU", TablePrinter::num(report.update_seconds),
                   "0.0", TablePrinter::num(report.update_compute_seconds),
                   TablePrinter::pct(0.0), TablePrinter::pct(0.0)});
    out.push_back(metric("update_seconds", "s", report.update_seconds,
                         Better::kLower, {{"model", "20B CPU"}}));
  }

  // SSD-offloaded rows: DeepSpeed baseline, NVMe only, minimal host cache
  // (the paper's configuration offloads even the 20B model for this study).
  const ModelConfig rows[] = {baseline_20b(), paper_model("40B"),
                              paper_model("70B"), paper_model("120B")};
  const f64 paper_frac[] = {0.99, 0.99, 0.99, 0.99};
  int i = 0;
  for (const auto& model : rows) {
    auto cfg = scenario(model, TestbedSpec::testbed1(),
                        EngineOptions::deepspeed_zero3());
    cfg.attach_pfs = false;
    cfg.host_cache_override = 0;
    const auto result = run_scenario(cfg);
    const f64 io = result.avg.fetch_seconds + result.avg.flush_seconds;
    table.add_row({model.name, TablePrinter::num(result.avg.update_seconds),
                   TablePrinter::num(io),
                   TablePrinter::num(result.avg.update_compute_seconds),
                   TablePrinter::pct(result.avg.update_io_fraction()),
                   TablePrinter::pct(paper_frac[i++])});
    out.push_back(metric("update_seconds", "s", result.avg.update_seconds,
                         Better::kLower, {{"model", model.name}}));
    out.push_back(metric("update_io_fraction", "frac",
                         result.avg.update_io_fraction(), Better::kNeither,
                         {{"model", model.name}}));
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nPaper reference (their testbed):\n");
    TablePrinter ref({"Model", "I/O (s)", "Compute (s)"});
    for (const auto& r : kPaper) {
      ref.add_row({r.label, TablePrinter::num(r.io_s),
                   TablePrinter::num(r.compute_s)});
    }
    ref.print();
  }
  return out;
}

}  // namespace

void register_fig03_update_io_fraction(BenchRegistry& r) {
  r.add({.name = "fig03_update_io_fraction",
         .title =
             "Figure 3 - Disk I/O share of the update phase (DeepSpeed ZeRO-3)",
         .paper_claim =
             "host-resident 20B updates are pure compute; SSD-offloaded "
             "models spend ~99% of the update phase in disk I/O",
         .labels = {"figure", "scaled"},
         .sweep = {{"model", {"20B CPU", "20B", "40B", "70B", "120B"}}},
         .run = run});
}

}  // namespace mlpo::bench
