// Figure 10: distribution of the optimizer state across host memory,
// node-local NVMe, and the PFS for each model size under MLP-Offload.
// Paper: the host share shrinks as models grow (runtime structures eat the
// 512 GB), and the NVMe:PFS split tracks the bandwidth ratio (~2:1 on
// Testbed-1, consistent with Eq. 1).
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "Host", "NVMe", "PFS", "Host %", "NVMe %",
                      "PFS %", "NVMe:PFS"});
  for (const char* name : {"40B", "52B", "70B", "100B", "120B"}) {
    const auto& model = paper_model(name);
    auto cfg = scenario(model, TestbedSpec::testbed1(),
                        EngineOptions::mlp_offload());
    const auto result = run_scenario(cfg);
    const auto& d = result.distribution;
    const u64 nvme = d.path_sim_bytes.size() > 0 ? d.path_sim_bytes[0] : 0;
    const u64 pfs = d.path_sim_bytes.size() > 1 ? d.path_sim_bytes[1] : 0;
    const f64 total = static_cast<f64>(d.host_sim_bytes + nvme + pfs);
    table.add_row(
        {name, gib(d.host_sim_bytes), gib(nvme), gib(pfs),
         TablePrinter::pct(d.host_sim_bytes / total),
         TablePrinter::pct(nvme / total), TablePrinter::pct(pfs / total),
         pfs ? TablePrinter::num(static_cast<f64>(nvme) / pfs, 2) : "inf"});
    const json::Object params{{"model", name}};
    out.push_back(metric("host_share", "frac", d.host_sim_bytes / total,
                         telemetry::Better::kNeither, params));
    out.push_back(metric("nvme_share", "frac", nvme / total,
                         telemetry::Better::kNeither, params));
    out.push_back(metric("pfs_share", "frac", pfs / total,
                         telemetry::Better::kNeither, params));
  }
  if (ctx.print_tables()) {
    table.print();
    const auto t1 = TestbedSpec::testbed1();
    std::printf("\nEq. 1 expectation: NVMe:PFS = min(R,W) ratio = %.2f (paper "
                "reports ~2:1).\nPaper host shares: 40B 145G ... 120B 60G, "
                "shrinking with model size.\n",
                std::min(t1.nvme_read_bw, t1.nvme_write_bw) /
                    std::min(t1.pfs_read_bw, t1.pfs_write_bw));
  }
  return out;
}

}  // namespace

void register_fig10_tier_distribution(BenchRegistry& r) {
  r.add({.name = "fig10_tier_distribution",
         .title = "Figure 10 - Optimizer-state distribution across tiers "
                  "(MLP-Offload)",
         .paper_claim =
             "host share shrinks with model size; NVMe:PFS split follows "
             "the bandwidth-proportional performance model",
         .labels = {"figure", "scaled"},
         .sweep = {{"model", {"40B", "52B", "70B", "100B", "120B"}}},
         .run = run});
}

}  // namespace mlpo::bench
