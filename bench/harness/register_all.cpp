// Explicit registration of every bench case. Static-initializer
// registration drops out of static archives; this list is the one place a
// new case must be added (the build will not fail if you forget, but
// mlpo-bench --list makes the omission obvious).
#include "harness/bench_registry.hpp"

namespace mlpo::bench {

void register_fig01_memory_wall(BenchRegistry&);
void register_fig03_update_io_fraction(BenchRegistry&);
void register_fig04_tier_concurrency(BenchRegistry&);
void register_fig05_subgroup_throughput(BenchRegistry&);
void register_fig07_graph_mode(BenchRegistry&);
void register_fig07_iteration_breakdown(BenchRegistry&);
void register_fig08_update_throughput(BenchRegistry&);
void register_fig09_io_throughput(BenchRegistry&);
void register_fig10_tier_distribution(BenchRegistry&);
void register_fig11_weak_scaling_time(BenchRegistry&);
void register_fig12_weak_scaling_thru(BenchRegistry&);
void register_fig13_grad_accum(BenchRegistry&);
void register_fig_calibration(BenchRegistry&);
void register_fig14_ablation_nvme(BenchRegistry&);
void register_fig15_ablation_multipath(BenchRegistry&);
void register_fig_io_scheduler(BenchRegistry&);
void register_fig_io_scheduler_graph(BenchRegistry&);
void register_fig_tenancy_sweep(BenchRegistry&);
void register_table1_testbeds(BenchRegistry&);
void register_table2_models(BenchRegistry&);
void register_ablation_adaptive_model(BenchRegistry&);
void register_ablation_policy_sweep(BenchRegistry&);
void register_ablation_prefetch_depth(BenchRegistry&);
void register_ablation_subgroup_size(BenchRegistry&);
void register_extension_virtual_tiers(BenchRegistry&);
void register_recovery_overhead(BenchRegistry&);

void register_all_cases(BenchRegistry& registry) {
  // Idempotent per registry (not per process): a second registry gets its
  // own full set of cases.
  if (registry.find("fig01_memory_wall") != nullptr) return;
  register_fig01_memory_wall(registry);
  register_fig03_update_io_fraction(registry);
  register_fig04_tier_concurrency(registry);
  register_fig05_subgroup_throughput(registry);
  register_fig07_graph_mode(registry);
  register_fig07_iteration_breakdown(registry);
  register_fig08_update_throughput(registry);
  register_fig09_io_throughput(registry);
  register_fig10_tier_distribution(registry);
  register_fig11_weak_scaling_time(registry);
  register_fig12_weak_scaling_thru(registry);
  register_fig13_grad_accum(registry);
  register_fig_calibration(registry);
  register_fig14_ablation_nvme(registry);
  register_fig15_ablation_multipath(registry);
  register_fig_io_scheduler(registry);
  register_fig_io_scheduler_graph(registry);
  register_fig_tenancy_sweep(registry);
  register_table1_testbeds(registry);
  register_table2_models(registry);
  register_ablation_adaptive_model(registry);
  register_ablation_policy_sweep(registry);
  register_ablation_prefetch_depth(registry);
  register_ablation_subgroup_size(registry);
  register_extension_virtual_tiers(registry);
  register_recovery_overhead(registry);
}

}  // namespace mlpo::bench
