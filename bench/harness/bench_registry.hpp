// Process-wide registry of bench cases.
//
// Cases register through explicit register_<case>() functions collected by
// register_all_cases() (no static-initializer registration: those silently
// drop out of static archives unless every link line says --whole-archive).
#pragma once

#include <string>
#include <vector>

#include "harness/bench_case.hpp"

namespace mlpo::bench {

class BenchRegistry {
 public:
  static BenchRegistry& instance();

  /// Add a case; throws std::logic_error on a duplicate or empty name.
  void add(BenchCase c);

  const std::vector<BenchCase>& cases() const { return cases_; }
  const BenchCase* find(const std::string& name) const;

  /// Select cases by a comma-separated filter spec. Each term matches a
  /// substring of the case name or a whole label ("smoke"); a case is
  /// selected when any term matches. An empty spec selects everything.
  std::vector<const BenchCase*> select(const std::string& spec) const;

 private:
  std::vector<BenchCase> cases_;
};

/// Defined in harness/register_all.cpp: registers every fig/table/ablation/
/// extension case exactly once (idempotent).
void register_all_cases(BenchRegistry& registry);

}  // namespace mlpo::bench
