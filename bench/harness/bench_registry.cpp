#include "harness/bench_registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mlpo::bench {

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

void BenchRegistry::add(BenchCase c) {
  if (c.name.empty()) {
    throw std::logic_error("bench registry: case with empty name");
  }
  if (find(c.name) != nullptr) {
    throw std::logic_error("bench registry: duplicate case \"" + c.name + "\"");
  }
  if (!c.run) {
    throw std::logic_error("bench registry: case \"" + c.name +
                           "\" has no run()");
  }
  cases_.push_back(std::move(c));
}

const BenchCase* BenchRegistry::find(const std::string& name) const {
  const auto it = std::find_if(cases_.begin(), cases_.end(),
                               [&](const BenchCase& c) { return c.name == name; });
  return it != cases_.end() ? &*it : nullptr;
}

std::vector<const BenchCase*> BenchRegistry::select(
    const std::string& spec) const {
  std::vector<std::string> terms;
  std::istringstream in(spec);
  std::string term;
  while (std::getline(in, term, ',')) {
    if (!term.empty()) terms.push_back(term);
  }

  std::vector<const BenchCase*> out;
  for (const BenchCase& c : cases_) {
    const bool hit =
        terms.empty() ||
        std::any_of(terms.begin(), terms.end(), [&](const std::string& t) {
          if (c.name.find(t) != std::string::npos) return true;
          return std::find(c.labels.begin(), c.labels.end(), t) !=
                 c.labels.end();
        });
    if (hit) out.push_back(&c);
  }
  return out;
}

}  // namespace mlpo::bench
