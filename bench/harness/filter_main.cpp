// Compatibility main for the historical per-figure binaries: each one is
// mlpo-bench with a compiled-in --filter for its case name (an explicit
// --filter on the command line still wins).
#include "harness/bench_driver.hpp"
#include "harness/bench_registry.hpp"

#ifndef MLPO_BENCH_FORCED_FILTER
#error "filter_main.cpp must be compiled with -DMLPO_BENCH_FORCED_FILTER=\"<case>\""
#endif

int main(int argc, char** argv) {
  mlpo::bench::register_all_cases(mlpo::bench::BenchRegistry::instance());
  return mlpo::bench::bench_main(argc, argv, MLPO_BENCH_FORCED_FILTER);
}
