// CLI driver behind the mlpo-bench binary and every per-figure wrapper.
#pragma once

namespace mlpo::bench {

/// Run the registry-driven bench CLI:
///   mlpo-bench [--list] [--filter spec] [--repeat N] [--json path]
///              [--baseline path] [--threshold pct] [--quiet]
///
/// `forced_filter` (wrapper binaries) applies when the command line carries
/// no --filter of its own. Exit codes: 0 success; 1 a case failed or the
/// baseline gate tripped; 2 usage, environment, or file errors.
int bench_main(int argc, char** argv, const char* forced_filter = nullptr);

}  // namespace mlpo::bench
