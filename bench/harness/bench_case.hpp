// The unit of the registry-driven bench harness.
//
// A BenchCase is one reproduced figure/table/ablation from the paper: a
// name the driver filters on, labels that group cases into suites (smoke /
// figure / table / ablation / scaled), sweep metadata describing the
// parameter axes the case iterates, and a run() callback that performs the
// measurement and returns Metric rows for the JSON reporter. Cases signal
// hard failure (a claim that stopped holding, e.g. priority scheduling no
// longer beating FIFO) by throwing; the driver reports it and exits
// non-zero.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "telemetry/json_reporter.hpp"

namespace mlpo::bench {

/// One parameter axis a case sweeps, for --list and the JSON header.
struct SweepAxis {
  std::string name;                 ///< e.g. "model"
  std::vector<std::string> values;  ///< e.g. {"40B", "70B", "120B"}
};

/// Per-invocation state handed to a case's run().
class BenchContext {
 public:
  BenchContext(u32 repeat_index, u32 repeats, bool print_tables)
      : repeat_index_(repeat_index),
        repeats_(repeats),
        print_tables_(print_tables) {}

  u32 repeat_index() const { return repeat_index_; }
  u32 repeats() const { return repeats_; }
  /// Human-readable tables print on the first repeat only (and never under
  /// --quiet); the metric rows are returned on every repeat.
  bool print_tables() const { return print_tables_; }

 private:
  u32 repeat_index_;
  u32 repeats_;
  bool print_tables_;
};

using BenchFn = std::function<std::vector<telemetry::Metric>(BenchContext&)>;

struct BenchCase {
  std::string name;         ///< registry id == wrapper binary name
  std::string title;        ///< banner, e.g. "Figure 7 - Iteration breakdown"
  std::string paper_claim;  ///< what the paper shows
  std::vector<std::string> labels;
  std::vector<SweepAxis> sweep;
  BenchFn run;
};

}  // namespace mlpo::bench
