// The mlpo-bench driver binary: every registered case, one CLI.
#include "harness/bench_driver.hpp"
#include "harness/bench_registry.hpp"

int main(int argc, char** argv) {
  mlpo::bench::register_all_cases(mlpo::bench::BenchRegistry::instance());
  return mlpo::bench::bench_main(argc, argv);
}
