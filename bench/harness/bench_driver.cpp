#include "harness/bench_driver.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "telemetry/json_reporter.hpp"
#include "telemetry/table_printer.hpp"

namespace mlpo::bench {

namespace {

struct Options {
  bool list = false;
  bool quiet = false;
  bool help = false;
  std::string filter;
  u32 repeat = 1;
  std::string json_path;
  std::string baseline_path;
  f64 threshold_pct = 10.0;
};

void print_usage(const char* argv0) {
  std::printf(
      "Usage: %s [options]\n"
      "\n"
      "Registry-driven benchmark harness: every paper figure/table/ablation\n"
      "is a registered case; one driver runs any subset and emits JSON perf\n"
      "telemetry.\n"
      "\n"
      "  --list             enumerate registered cases and exit\n"
      "  --filter <spec>    comma-separated terms; each matches a name\n"
      "                     substring or a whole label (default: all cases)\n"
      "  --repeat <N>       repeats per case; series report median/min/max\n"
      "  --json <path>      write the mlpo-bench-v1 JSON document\n"
      "  --baseline <path>  compare against a baseline document and fail on\n"
      "                     gated-metric regressions or missing metrics\n"
      "  --threshold <pct>  regression threshold for --baseline (default 10)\n"
      "  --quiet            suppress per-case tables and banners\n"
      "  --help             this text\n"
      "\n"
      "Environment: MLPO_TIME_SCALE, MLPO_BENCH_ITERS, MLPO_BENCH_WARMUP\n"
      "(strictly validated before any case runs).\n",
      argv0);
}

/// Returns false on a malformed command line (after printing the problem).
bool parse_args(int argc, char** argv, Options* opts) {
  const auto value_of = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "mlpo-bench: %s needs a value\n", argv[*i]);
      return nullptr;
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      opts->list = true;
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      opts->help = true;
      print_usage(argv[0]);
      return false;
    } else if (arg == "--filter") {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      opts->filter = v;
    } else if (arg == "--json") {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      opts->json_path = v;
    } else if (arg == "--baseline") {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      opts->baseline_path = v;
    } else if (arg == "--repeat") {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      errno = 0;
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || errno == ERANGE || n < 1 ||
          n > std::numeric_limits<u32>::max()) {
        std::fprintf(stderr, "mlpo-bench: --repeat wants an integer >= 1, got \"%s\"\n", v);
        return false;
      }
      opts->repeat = static_cast<u32>(n);
    } else if (arg == "--threshold") {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      char* end = nullptr;
      const f64 t = std::strtod(v, &end);
      if (end == v || *end != '\0' || !std::isfinite(t) || t < 0) {
        std::fprintf(stderr, "mlpo-bench: --threshold wants a finite percentage >= 0, got \"%s\"\n", v);
        return false;
      }
      opts->threshold_pct = t;
    } else {
      std::fprintf(stderr, "mlpo-bench: unknown argument \"%s\" (--help for usage)\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

void list_cases(const std::vector<const BenchCase*>& cases) {
  TablePrinter table({"Case", "Labels", "Sweep", "Title"});
  for (const BenchCase* c : cases) {
    std::vector<std::string> axes;
    for (const SweepAxis& axis : c->sweep) {
      axes.push_back(axis.name + "[" + std::to_string(axis.values.size()) + "]");
    }
    table.add_row({c->name, join(c->labels, ","), join(axes, " x "), c->title});
  }
  table.print();
  std::printf("\n%zu case(s). Run a subset with --filter <name-substring|label>.\n",
              cases.size());
}

const char* kind_name(telemetry::BaselineDelta::Kind kind) {
  using Kind = telemetry::BaselineDelta::Kind;
  switch (kind) {
    case Kind::kPass: return "pass";
    case Kind::kImprovement: return "improvement";
    case Kind::kRegression: return "REGRESSION";
    case Kind::kMissing: return "MISSING";
    case Kind::kNew: return "new";
    case Kind::kDirectionChanged: return "DIRECTION-CHANGED";
  }
  return "?";
}

void print_baseline_report(const telemetry::BaselineReport& report,
                           f64 threshold_pct) {
  TablePrinter table({"Metric", "Baseline", "Current", "Delta %", "Gate",
                      "Verdict"});
  for (const auto& d : report.deltas) {
    const bool compared = d.kind != telemetry::BaselineDelta::Kind::kNew &&
                          d.kind != telemetry::BaselineDelta::Kind::kMissing;
    table.add_row({d.key,
                   d.kind == telemetry::BaselineDelta::Kind::kNew
                       ? "-"
                       : TablePrinter::num(d.baseline_median, 4),
                   d.kind == telemetry::BaselineDelta::Kind::kMissing
                       ? "-"
                       : TablePrinter::num(d.current_median, 4),
                   compared ? TablePrinter::num(d.delta_pct, 1) : "-",
                   telemetry::to_string(d.better), kind_name(d.kind)});
  }
  table.print();
  std::printf(
      "\nBaseline gate (threshold %.1f%%): %u pass, %u improvement, "
      "%u regression, %u missing, %u direction-changed, %u new -> %s\n",
      threshold_pct, report.passes, report.improvements, report.regressions,
      report.missing, report.direction_changes, report.added,
      report.ok() ? "OK" : "FAIL");
}

}  // namespace

int bench_main(int argc, char** argv, const char* forced_filter) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    // Only a clean --help exits 0; malformed args already printed why.
    return opts.help ? 0 : 2;
  }
  if (opts.filter.empty() && forced_filter != nullptr) {
    opts.filter = forced_filter;
  }

  BenchRegistry& registry = BenchRegistry::instance();
  const auto selected = registry.select(opts.filter);
  if (selected.empty()) {
    std::fprintf(stderr,
                 "mlpo-bench: no case matches filter \"%s\"; --list shows the "
                 "registry\n",
                 opts.filter.c_str());
    return 2;
  }
  if (opts.list) {
    list_cases(selected);
    return 0;
  }

  try {
    validate_bench_env();
  } catch (const env::EnvError& e) {
    std::fprintf(stderr, "mlpo-bench: bad environment: %s\n", e.what());
    return 2;
  }

  telemetry::JsonReporter reporter;
  reporter.set_context(env_time_scale(), opts.repeat);

  u32 failures = 0;
  for (const BenchCase* c : selected) {
    if (!opts.quiet) print_header(c->title, c->paper_claim);
    for (u32 r = 0; r < opts.repeat; ++r) {
      BenchContext ctx(r, opts.repeat, !opts.quiet && r == 0);
      try {
        reporter.add(c->name, c->labels, c->run(ctx));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "mlpo-bench: case %s failed (repeat %u): %s\n",
                     c->name.c_str(), r, e.what());
        ++failures;
        break;
      }
    }
  }

  if (!opts.quiet && !reporter.series().empty()) {
    std::printf("\nCollected metrics (%u repeat%s):\n", opts.repeat,
                opts.repeat == 1 ? "" : "s");
    TablePrinter table({"Metric", "Unit", "Median", "Min", "Max", "Gate"});
    for (const auto& s : reporter.series()) {
      table.add_row({s.key(), s.unit, TablePrinter::num(s.median(), 4),
                     TablePrinter::num(s.min(), 4),
                     TablePrinter::num(s.max(), 4),
                     telemetry::to_string(s.better)});
    }
    table.print();
  }

  if (!opts.json_path.empty()) {
    try {
      reporter.write(opts.json_path);
      std::printf("\nWrote %s (%zu series)\n", opts.json_path.c_str(),
                  reporter.series().size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mlpo-bench: %s\n", e.what());
      return 2;
    }
  }

  bool gate_ok = true;
  if (!opts.baseline_path.empty()) {
    std::vector<telemetry::MetricSeries> baseline;
    try {
      baseline = telemetry::JsonReporter::load(opts.baseline_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mlpo-bench: cannot load baseline: %s\n", e.what());
      return 2;
    }
    // Judge missing coverage only within the selected cases, so a filtered
    // run (or a per-figure wrapper) can be held against the full smoke
    // baseline without the unselected benches reading as MISSING.
    std::erase_if(baseline, [&](const telemetry::MetricSeries& s) {
      return std::none_of(selected.begin(), selected.end(),
                          [&](const BenchCase* c) { return c->name == s.bench; });
    });
    const auto report = telemetry::compare_to_baseline(
        reporter.series(), baseline, opts.threshold_pct);
    print_baseline_report(report, opts.threshold_pct);
    gate_ok = report.ok();
  }

  if (failures > 0) {
    std::fprintf(stderr, "mlpo-bench: %u case(s) failed\n", failures);
  }
  return failures > 0 || !gate_ok ? 1 : 0;
}

}  // namespace mlpo::bench
