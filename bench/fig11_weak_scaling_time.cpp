// Figure 11: weak scaling on Testbed-2 — model size grows with node count
// (40B/1, 70B/2, 100B/3, 130B/4, plus the text's 280B/8), TP intra-node +
// DP inter-node, one shared Lustre PFS. Paper: MLP-Offload stays up to 2x
// faster than DeepSpeed ZeRO-3 at scale; also the §4.4 cost-effectiveness
// argument (70B offloaded on 8 GPUs vs GPU-only on ~80).
#include <cstdio>

#include "bench_common.hpp"

namespace {
struct Config {
  const char* model;
  mlpo::u32 nodes;
  double paper_ds;
  double paper_ours;
};
const Config kConfigs[] = {
    {"40B", 1, 242.3, 111.0},
    {"70B", 2, 178.0, 68.3},
    {"100B", 3, 167.5, 85.7},
    {"130B", 4, 155.6, 79.4},
    {"280B", 8, 0.0, 0.0},  // §4.4 text configuration; no figure reference
};
}  // namespace

int main() {
  using namespace mlpo;
  bench::print_header(
      "Figure 11 - Weak scaling iteration time (Testbed-2, TP+DP)",
      "iteration time falls with node count; MLP-Offload keeps a ~2x lead "
      "over DeepSpeed ZeRO-3 at every scale");

  TablePrinter table({"Model [GPUs]", "Engine", "Fwd (s)", "Bwd (s)",
                      "Update (s)", "Total (s)", "Speedup", "Paper"});
  f64 ours_70b_total = 0;
  for (const auto& c : kConfigs) {
    const auto& model = paper_model(c.model);
    f64 totals[2] = {0, 0};
    IterationReport reports[2];
    for (const int mlp : {0, 1}) {
      auto cfg = bench::scenario(model, TestbedSpec::testbed2(),
                                 mlp ? EngineOptions::mlp_offload()
                                     : EngineOptions::deepspeed_zero3(),
                                 c.nodes);
      if (!mlp) cfg.attach_pfs = false;
      const auto result = bench::run_scenario(cfg);
      reports[mlp] = result.avg;
      totals[mlp] = result.avg.iteration_seconds();
    }
    if (std::string(c.model) == "70B") ours_70b_total = totals[1];
    const std::string label = std::string(c.model) + " [" +
                              std::to_string(c.nodes * 4) + "]";
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      const f64 paper = mlp ? c.paper_ours : c.paper_ds;
      table.add_row(
          {label, mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds, 2),
           TablePrinter::num(r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           paper > 0 ? TablePrinter::num(paper, 1) : "-"});
    }
  }
  table.print();

  // §4.4 cost-effectiveness: GPU-only 70B takes ~24 s/iter on ~80 A100s.
  std::printf("\nCost-effectiveness (paper §4.4): 70B GPU-only needs ~80 "
              "A100-40GB and runs 24 s/iter.\nOffloaded on 8 GPUs (10x "
              "fewer): ours %.1f s/iter = %.1fx slower -> %.1fx better "
              "cost-efficiency\n(paper: 4.8x slower, ~2x better).\n",
              ours_70b_total, ours_70b_total / 24.0,
              10.0 / (ours_70b_total / 24.0));
  return 0;
}
