// Figure 11: weak scaling on Testbed-2 — model size grows with node count
// (40B/1, 70B/2, 100B/3, 130B/4, plus the text's 280B/8), TP intra-node +
// DP inter-node, one shared Lustre PFS. Paper: MLP-Offload stays up to 2x
// faster than DeepSpeed ZeRO-3 at scale; also the §4.4 cost-effectiveness
// argument (70B offloaded on 8 GPUs vs GPU-only on ~80).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct Config {
  const char* model;
  u32 nodes;
  double paper_ds;
  double paper_ours;
};
const Config kConfigs[] = {
    {"40B", 1, 242.3, 111.0},
    {"70B", 2, 178.0, 68.3},
    {"100B", 3, 167.5, 85.7},
    {"130B", 4, 155.6, 79.4},
    {"280B", 8, 0.0, 0.0},  // §4.4 text configuration; no figure reference
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model [GPUs]", "Engine", "Fwd (s)", "Bwd (s)",
                      "Update (s)", "Total (s)", "Speedup", "Paper"});
  f64 ours_70b_total = 0;
  for (const auto& c : kConfigs) {
    const auto& model = paper_model(c.model);
    const auto pair = run_engine_pair(model, TestbedSpec::testbed2(), c.nodes);
    const IterationReport reports[2] = {pair.ds.avg, pair.mlp.avg};
    const f64 totals[2] = {pair.ds.avg.iteration_seconds(),
                           pair.mlp.avg.iteration_seconds()};
    if (std::string(c.model) == "70B") ours_70b_total = totals[1];
    const std::string label = std::string(c.model) + " [" +
                              std::to_string(c.nodes * 4) + "]";
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      const f64 paper = mlp ? c.paper_ours : c.paper_ds;
      table.add_row(
          {label, mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds, 2),
           TablePrinter::num(r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           paper > 0 ? TablePrinter::num(paper, 1) : "-"});
      out.push_back(metric("iteration_seconds", "s", r.iteration_seconds(),
                           Better::kLower,
                           {{"model", c.model},
                            {"gpus", std::to_string(c.nodes * 4)},
                            {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("iteration_speedup", "x", totals[0] / totals[1],
                         Better::kHigher,
                         {{"model", c.model},
                          {"gpus", std::to_string(c.nodes * 4)}}));
  }
  if (ctx.print_tables()) {
    table.print();
    // §4.4 cost-effectiveness: GPU-only 70B takes ~24 s/iter on ~80 A100s.
    std::printf("\nCost-effectiveness (paper §4.4): 70B GPU-only needs ~80 "
                "A100-40GB and runs 24 s/iter.\nOffloaded on 8 GPUs (10x "
                "fewer): ours %.1f s/iter = %.1fx slower -> %.1fx better "
                "cost-efficiency\n(paper: 4.8x slower, ~2x better).\n",
                ours_70b_total, ours_70b_total / 24.0,
                10.0 / (ours_70b_total / 24.0));
  }
  return out;
}

}  // namespace

void register_fig11_weak_scaling_time(BenchRegistry& r) {
  r.add({.name = "fig11_weak_scaling_time",
         .title = "Figure 11 - Weak scaling iteration time (Testbed-2, TP+DP)",
         .paper_claim =
             "iteration time falls with node count; MLP-Offload keeps a ~2x "
             "lead over DeepSpeed ZeRO-3 at every scale",
         .labels = {"figure", "scaled", "multinode"},
         .sweep = {{"model", {"40B", "70B", "100B", "130B", "280B"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
