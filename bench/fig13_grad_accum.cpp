// Figure 13: gradient accumulation — 40B on Testbed-1, micro-batch 8 per
// GPU, accumulation 1-16 backward passes per update (equivalent batch
// 32-512). The update phase amortises over more forward/backward work, yet
// the paper still measures MLP-Offload at least 40% faster end-to-end.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct Row {
  u32 accum;
  u32 batch;
  double paper_ds;
  double paper_ours;
};
const Row kRows[] = {
    {1, 32, 244.9, 108.5},
    {4, 128, 292.8, 155.3},
    {8, 256, 354.0, 217.7},
    {16, 512, 478.8, 342.7},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const auto& model = paper_model("40B");
  TablePrinter table({"Batch", "Engine", "Fwd+Bwd (s)", "Update (s)",
                      "Total (s)", "Speedup", "Paper"});
  for (const auto& row : kRows) {
    const auto pair = run_engine_pair(
        model, TestbedSpec::testbed1(), 1, [&](TrainerConfig& cfg) {
          cfg.microbatch = 8;
          cfg.accum_steps = row.accum;
        });
    const IterationReport reports[2] = {pair.ds.avg, pair.mlp.avg};
    const f64 totals[2] = {pair.ds.avg.iteration_seconds(),
                           pair.mlp.avg.iteration_seconds()};
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      table.add_row(
          {std::to_string(row.batch), mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds + r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           TablePrinter::num(mlp ? row.paper_ours : row.paper_ds, 1)});
      out.push_back(metric("iteration_seconds", "s", r.iteration_seconds(),
                           Better::kLower,
                           {{"batch", std::to_string(row.batch)},
                            {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("iteration_speedup", "x", totals[0] / totals[1],
                         Better::kHigher,
                         {{"batch", std::to_string(row.batch)}}));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig13_grad_accum(BenchRegistry& r) {
  r.add({.name = "fig13_grad_accum",
         .title = "Figure 13 - Gradient accumulation, 40B on Testbed-1 "
                  "(microbatch 8)",
         .paper_claim =
             "even with update phases amortised over up to 16 micro-steps, "
             "MLP-Offload stays >=40% faster than DeepSpeed ZeRO-3",
         .labels = {"figure", "scaled"},
         .sweep = {{"batch", {"32", "128", "256", "512"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
