// Figure 13: gradient accumulation — 40B on Testbed-1, micro-batch 8 per
// GPU, accumulation 1-16 backward passes per update (equivalent batch
// 32-512). The update phase amortises over more forward/backward work, yet
// the paper still measures MLP-Offload at least 40% faster end-to-end.
#include <cstdio>

#include "bench_common.hpp"

namespace {
struct Row {
  mlpo::u32 accum;
  mlpo::u32 batch;
  double paper_ds;
  double paper_ours;
};
const Row kRows[] = {
    {1, 32, 244.9, 108.5},
    {4, 128, 292.8, 155.3},
    {8, 256, 354.0, 217.7},
    {16, 512, 478.8, 342.7},
};
}  // namespace

int main() {
  using namespace mlpo;
  bench::print_header(
      "Figure 13 - Gradient accumulation, 40B on Testbed-1 (microbatch 8)",
      "even with update phases amortised over up to 16 micro-steps, "
      "MLP-Offload stays >=40% faster than DeepSpeed ZeRO-3");

  const auto& model = paper_model("40B");
  TablePrinter table({"Batch", "Engine", "Fwd+Bwd (s)", "Update (s)",
                      "Total (s)", "Speedup", "Paper"});
  for (const auto& row : kRows) {
    f64 totals[2] = {0, 0};
    IterationReport reports[2];
    for (const int mlp : {0, 1}) {
      auto cfg = bench::scenario(model, TestbedSpec::testbed1(),
                                 mlp ? EngineOptions::mlp_offload()
                                     : EngineOptions::deepspeed_zero3());
      if (!mlp) cfg.attach_pfs = false;
      cfg.microbatch = 8;
      cfg.accum_steps = row.accum;
      const auto result = bench::run_scenario(cfg);
      reports[mlp] = result.avg;
      totals[mlp] = result.avg.iteration_seconds();
    }
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      table.add_row(
          {std::to_string(row.batch), mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds + r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           TablePrinter::num(mlp ? row.paper_ours : row.paper_ds, 1)});
    }
  }
  table.print();
  return 0;
}
