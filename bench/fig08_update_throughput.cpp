// Figure 8: update throughput (millions of parameters per second) for
// increasing model sizes, DeepSpeed ZeRO-3 vs MLP-Offload on Testbed-1.
// Paper: 187-252 Mparam/s (DS) vs 425-607 (ours), a 1.8-2.4x gain; the
// offloaded throughput sits an order of magnitude below the ~8000 Mparam/s
// host-resident CPU reference.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct PaperRow {
  const char* model;
  double ds;
  double ours;
};
const PaperRow kPaper[] = {
    {"40B", 187.3, 432.1},  {"52B", 248.4, 607.1},  {"70B", 208.1, 499.0},
    {"100B", 199.2, 425.3}, {"120B", 252.4, 464.2},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "DS (Mparam/s)", "Ours (Mparam/s)", "Gain",
                      "Paper DS", "Paper ours"});
  for (const auto& row : kPaper) {
    const auto& model = paper_model(row.model);
    const auto pair = run_engine_pair(model, TestbedSpec::testbed1());
    const f64 thru[2] = {pair.ds.avg.update_throughput_mparams(),
                         pair.mlp.avg.update_throughput_mparams()};
    table.add_row({model.name, TablePrinter::num(thru[0]),
                   TablePrinter::num(thru[1]),
                   TablePrinter::num(thru[1] / thru[0], 2) + "x",
                   TablePrinter::num(row.ds), TablePrinter::num(row.ours)});
    for (const int mlp : {0, 1}) {
      out.push_back(metric(
          "update_mparams_per_s", "Mparam/s", thru[mlp], Better::kHigher,
          {{"model", model.name}, {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("update_throughput_gain", "x", thru[1] / thru[0],
                         Better::kHigher, {{"model", model.name}}));
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nReference: ~8000 Mparam/s when the optimizer state is "
                "fully host-resident\n(see bench/fig03 row '20B CPU').\n");
  }
  return out;
}

}  // namespace

void register_fig08_update_throughput(BenchRegistry& r) {
  r.add({.name = "fig08_update_throughput",
         .title = "Figure 8 - Update throughput vs model size (Testbed-1)",
         .paper_claim =
             "MLP-Offload updates 1.8-2.4x more params/s than DeepSpeed "
             "ZeRO-3",
         .labels = {"figure", "scaled"},
         .sweep = {{"model", {"40B", "52B", "70B", "100B", "120B"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
