// Figure 8: update throughput (millions of parameters per second) for
// increasing model sizes, DeepSpeed ZeRO-3 vs MLP-Offload on Testbed-1.
// Paper: 187-252 Mparam/s (DS) vs 425-607 (ours), a 1.8-2.4x gain; the
// offloaded throughput sits an order of magnitude below the ~8000 Mparam/s
// host-resident CPU reference.
#include <cstdio>

#include "bench_common.hpp"

namespace {
struct PaperRow {
  const char* model;
  double ds;
  double ours;
};
const PaperRow kPaper[] = {
    {"40B", 187.3, 432.1},  {"52B", 248.4, 607.1},  {"70B", 208.1, 499.0},
    {"100B", 199.2, 425.3}, {"120B", 252.4, 464.2},
};
}  // namespace

int main() {
  using namespace mlpo;
  bench::print_header(
      "Figure 8 - Update throughput vs model size (Testbed-1)",
      "MLP-Offload updates 1.8-2.4x more params/s than DeepSpeed ZeRO-3");

  TablePrinter table({"Model", "DS (Mparam/s)", "Ours (Mparam/s)", "Gain",
                      "Paper DS", "Paper ours"});
  for (const auto& row : kPaper) {
    const auto& model = paper_model(row.model);
    f64 thru[2];
    for (const int mlp : {0, 1}) {
      auto cfg = bench::scenario(model, TestbedSpec::testbed1(),
                                 mlp ? EngineOptions::mlp_offload()
                                     : EngineOptions::deepspeed_zero3());
      if (!mlp) cfg.attach_pfs = false;
      thru[mlp] = bench::run_scenario(cfg).avg.update_throughput_mparams();
    }
    table.add_row({model.name, TablePrinter::num(thru[0]),
                   TablePrinter::num(thru[1]),
                   TablePrinter::num(thru[1] / thru[0], 2) + "x",
                   TablePrinter::num(row.ds), TablePrinter::num(row.ours)});
  }
  table.print();
  std::printf("\nReference: ~8000 Mparam/s when the optimizer state is fully "
              "host-resident\n(see bench/fig03 row '20B CPU').\n");
  return 0;
}
