// Extension study: virtual-tier generalization (paper §3.2 "this principle
// can be generalized", §3.5 object stores, and the conclusion's CXL future
// work). Starting from the NVMe-only baseline, alternative storage paths
// are added one by one — PFS, a DAOS-class object store, a CXL memory pool
// — and the Eq.-1 performance model absorbs each into the virtual tier
// with zero engine changes. Update time falls with every added path,
// approximately as the inverse of the aggregate min(R,W) bandwidth.
#include <cstdio>

#include "bench_common.hpp"
#include "core/offload_engine.hpp"
#include "harness/bench_registry.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo::bench {
namespace {

f64 run_with_paths(u32 num_paths, f64 time_scale, std::vector<u32>* quotas) {
  const SimClock clock(time_scale);
  const auto testbed = TestbedSpec::testbed1();

  VirtualTier vtier;
  vtier.add_path(testbed.make_nvme_tier(clock, "nvme"));
  if (num_paths >= 2) vtier.add_path(testbed.make_pfs_tier(clock, "pfs"));
  if (num_paths >= 3) {
    vtier.add_path(testbed.make_object_store_tier(clock, "daos", 3.0 * GB,
                                                  3.0 * GB));
  }
  if (num_paths >= 4) {
    vtier.add_path(TestbedSpec::make_cxl_tier(clock, "cxl", 30.0 * GB));
  }

  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 128;
  IoScheduler io(clock, &vtier, nullptr, nullptr, io_cfg);
  const GradSource grads;
  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = &io;
  ctx.grads = &grads;

  EngineOptions opts = EngineOptions::mlp_offload();
  opts.elem_scale = 65536;
  opts.host_cache_subgroups = 8;
  opts.cpu_update_rate = testbed.cpu_update_rate_node;

  // One worker with a 70B/4 shard; single-process keeps the scaling story
  // about paths rather than contention.
  const auto layout =
      make_shard_layout(paper_model("70B").parameters(), 4, 0);
  OffloadEngine engine(ctx, opts, layout);
  engine.initialize();

  f64 total = 0;
  int measured = 0;
  for (u64 iter = 0; iter < 4; ++iter) {
    for (u32 id = 0; id < engine.num_subgroups(); ++id) {
      engine.deposit_gradients_async(iter, id, true, true);
    }
    engine.wait_gradient_io();
    const auto report = engine.run_update(iter);
    if (iter >= 1) {
      total += report.update_seconds;
      ++measured;
    }
  }
  *quotas = engine.placement().quotas();
  return total / measured;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const char* labels[] = {"NVMe only", "+ PFS (VAST)", "+ object store",
                          "+ CXL pool (30 GB/s)"};
  TablePrinter table({"Virtual tier", "Paths", "Update (s)", "vs NVMe only",
                      "Subgroup quotas"});
  f64 baseline = 0;
  for (u32 paths = 1; paths <= 4; ++paths) {
    std::vector<u32> quotas;
    const f64 update = run_with_paths(paths, env_time_scale(), &quotas);
    if (paths == 1) baseline = update;
    std::string quota_str;
    for (std::size_t i = 0; i < quotas.size(); ++i) {
      if (i) quota_str += ":";
      quota_str += std::to_string(quotas[i]);
    }
    table.add_row({labels[paths - 1], std::to_string(paths),
                   TablePrinter::num(update, 1),
                   TablePrinter::num(baseline / update, 2) + "x", quota_str});
    const json::Object params{{"paths", std::to_string(paths)}};
    out.push_back(metric("update_seconds", "s", update, Better::kLower,
                         params));
    out.push_back(metric("speedup_vs_nvme", "x", baseline / update,
                         Better::kHigher, params));
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nThe CXL pool (memory-class bandwidth) absorbs most of the "
                "placement once\nadded — the paper's motivation for exploring "
                "CXL as a next offload level.\n");
  }
  return out;
}

}  // namespace

void register_extension_virtual_tiers(BenchRegistry& r) {
  r.add({.name = "extension_virtual_tiers",
         .title = "Extension - virtual-tier generalization (NVMe -> +PFS -> "
                  "+object store -> +CXL pool)",
         .paper_claim =
             "each added path joins the Eq.-1 virtual tier with zero engine "
             "changes; update time falls with aggregate bandwidth (§3.2 "
             "generalization + conclusion's CXL future work)",
         .labels = {"extension", "scaled"},
         .sweep = {{"paths", {"1", "2", "3", "4"}}},
         .run = run});
}

}  // namespace mlpo::bench
