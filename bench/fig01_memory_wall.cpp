// Figure 1: model parameters vs GPU memory growth, 2018-2024.
// The paper's motivating trend: transformer sizes grow ~450x every 2 years
// while GPU memory grows ~2x every 2 years. This case regenerates the
// two series and fits their growth rates.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct ModelPoint {
  int year;
  const char* name;
  double params_b;  // billions
};

struct GpuPoint {
  int year;
  const char* name;
  double mem_gb;
};

// The models/GPUs annotated in the paper's Figure 1.
const ModelPoint kModels[] = {
    {2018, "GPT-1", 0.117},      {2019, "Megatron", 8.3},
    {2020, "T-NLG", 17.0},       {2020, "GPT-3", 175.0},
    {2021, "Switch-T", 1600.0},  {2022, "Google PaLM", 540.0},
    {2023, "OpenAI GPT-4", 1800.0}, {2024, "OpenAI O3", 2000.0},
};

const GpuPoint kGpus[] = {
    {2018, "V100", 32},  {2020, "A100-40", 40},  {2021, "A100-80", 80},
    {2022, "H100", 80},  {2023, "H100e", 96},    {2024, "H200", 140},
};

// Least-squares fit of log2(value) vs year -> growth factor per 2 years.
template <typename T, std::size_t N>
double growth_per_2yr(const T (&pts)[N], double (*get)(const T&)) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& p : pts) {
    const double x = p.year;
    const double y = std::log2(get(p));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(N);
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return std::pow(2.0, slope * 2.0);
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  if (ctx.print_tables()) {
    TablePrinter models({"Year", "Model", "Params (B)"});
    for (const auto& m : kModels) {
      models.add_row({std::to_string(m.year), m.name,
                      TablePrinter::num(m.params_b, 3)});
    }
    models.print();
    std::printf("\n");

    TablePrinter gpus({"Year", "GPU", "Memory (GB)"});
    for (const auto& g : kGpus) {
      gpus.add_row({std::to_string(g.year), g.name, TablePrinter::num(g.mem_gb, 0)});
    }
    gpus.print();
  }

  const double model_growth = growth_per_2yr(
      kModels, +[](const ModelPoint& p) { return p.params_b; });
  const double gpu_growth =
      growth_per_2yr(kGpus, +[](const GpuPoint& p) { return p.mem_gb; });

  if (ctx.print_tables()) {
    std::printf("\nFitted growth per 2 years: models %.0fx, GPU memory %.1fx\n",
                model_growth, gpu_growth);
    std::printf("Paper's annotation:        models 450x, GPU memory 2x\n");
    std::printf("Gap factor per 2 years:    %.0fx -> the \"GPU memory wall\"\n",
                model_growth / gpu_growth);
  }

  using telemetry::Better;
  return {
      metric("model_growth_per_2yr", "x", model_growth),
      metric("gpu_growth_per_2yr", "x", gpu_growth),
      // The wall itself gates: it only moves if the annotated data moves.
      metric("memory_wall_gap", "x", model_growth / gpu_growth,
             Better::kHigher),
  };
}

}  // namespace

void register_fig01_memory_wall(BenchRegistry& r) {
  r.add({.name = "fig01_memory_wall",
         .title = "Figure 1 - Model vs GPU memory growth",
         .paper_claim =
             "transformer sizes ~450x / 2 years vs GPU memory ~2x / 2 years",
         .labels = {"smoke", "figure"},
         .sweep = {},
         .run = run});
}

}  // namespace mlpo::bench
