// Figure 14: ablation on node-local NVMe only (no PFS) — progressive
// activation of the design principles on top of DeepSpeed ZeRO-3:
//   Enable Caching      = cache-friendly subgroup reordering + reuse
//   Skip Gradients      = delayed in-place mixed-precision conversion
//   Process Atomic R/W  = tier-exclusive concurrency control
// Paper: each step helps; all three give up to 1.6x without any PFS.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct Step {
  const char* label;
  bool cache, delayed, locking;
};
const Step kSteps[] = {
    {"DeepSpeed ZeRO-3", false, false, false},
    {"Enable Caching", true, false, false},
    {"Skip Gradients", true, true, false},
    {"Process Atomic R/W", true, true, true},
};
struct PaperRow {
  const char* model;
  double totals[4];
};
const PaperRow kPaper[] = {
    {"40B", {242.3, 214.4, 156.5, 151.2}},
    {"70B", {370.6, 326.5, 228.7, 208.0}},
    {"100B", {572.0, 536.5, 397.0, 397.4}},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "Configuration", "Total (s)",
                      "vs DeepSpeed", "Paper (s)"});
  for (const auto& paper : kPaper) {
    const auto& model = paper_model(paper.model);
    f64 baseline = 0;
    for (std::size_t s = 0; s < 4; ++s) {
      EngineOptions opts = EngineOptions::deepspeed_zero3();
      opts.update_order_policy =
          kSteps[s].cache ? "alternating_cache_friendly" : "ascending";
      opts.delayed_grad_conversion = kSteps[s].delayed;
      opts.tier_exclusive_locking = kSteps[s].locking;
      auto cfg = scenario(model, TestbedSpec::testbed1(), opts);
      cfg.attach_pfs = false;
      const auto result = run_scenario(cfg);
      const f64 total = result.avg.iteration_seconds();
      if (s == 0) baseline = total;
      table.add_row({model.name, kSteps[s].label, TablePrinter::num(total, 1),
                     TablePrinter::num(baseline / total, 2) + "x",
                     TablePrinter::num(paper.totals[s], 1)});
      out.push_back(metric("iteration_seconds", "s", total, Better::kLower,
                           {{"model", paper.model},
                            {"config", kSteps[s].label}}));
      if (s > 0) {
        out.push_back(metric("speedup_vs_ds", "x", baseline / total,
                             Better::kHigher,
                             {{"model", paper.model},
                              {"config", kSteps[s].label}}));
      }
    }
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig14_ablation_nvme(BenchRegistry& r) {
  r.add({.name = "fig14_ablation_nvme",
         .title = "Figure 14 - Ablation on node-local NVMe (no PFS)",
         .paper_claim =
             "progressive activation: caching, delayed gradient conversion, "
             "process-atomic R/W -> up to 1.6x without multi-path",
         .labels = {"figure", "ablation", "scaled"},
         .sweep = {{"model", {"40B", "70B", "100B"}},
                   {"config",
                    {"DeepSpeed ZeRO-3", "Enable Caching", "Skip Gradients",
                     "Process Atomic R/W"}}},
         .run = run});
}

}  // namespace mlpo::bench
