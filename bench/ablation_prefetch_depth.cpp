// Design-choice ablation: prefetch depth. The paper's host buffers hold
// three subgroups (flushing / updating / prefetching) — prefetch_ahead 1.
// This case measures what deeper prefetching buys: diminishing returns
// as the pipeline saturates the storage channels, at the cost of more
// pinned host memory.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const auto& model = paper_model("70B");
  TablePrinter table({"CPU speed", "Prefetch ahead", "Host buffers",
                      "Update (s)", "Total (s)"});
  // Two compute regimes: the Testbed-1 CPU (update is I/O-bound, so
  // prefetch depth barely matters) and a hypothetical 8x slower CPU where
  // update compute is comparable to fetch time — there the fetch/compute
  // overlap that prefetching provides becomes visible.
  for (const bool slow_cpu : {false, true}) {
    auto testbed = TestbedSpec::testbed1();
    if (slow_cpu) testbed.cpu_update_rate_node /= 8;
    for (const u32 ahead : {0u, 1u, 2u, 4u}) {
      auto opts = EngineOptions::mlp_offload();
      opts.prefetch_ahead = ahead;
      auto cfg = scenario(model, testbed, opts);
      const auto result = run_scenario(cfg);
      table.add_row({slow_cpu ? "1/8x" : "nominal", std::to_string(ahead),
                     std::to_string(ahead + 2),
                     TablePrinter::num(result.avg.update_seconds, 1),
                     TablePrinter::num(result.avg.iteration_seconds(), 1)});
      const json::Object params{{"cpu", slow_cpu ? "1/8x" : "nominal"},
                                {"prefetch_ahead", std::to_string(ahead)}};
      out.push_back(metric("update_seconds", "s", result.avg.update_seconds,
                           Better::kLower, params));
      out.push_back(metric("iteration_seconds", "s",
                           result.avg.iteration_seconds(), Better::kNeither,
                           params));
    }
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nWith the nominal CPU the update is I/O-bound and depth is "
                "marginal; with a\nslow CPU, prefetch_ahead >= 1 hides fetch "
                "time behind the update kernel.\nEither way the paper's "
                "3-buffer budget (ahead=1) captures the benefit.\n");
  }
  return out;
}

}  // namespace

void register_ablation_prefetch_depth(BenchRegistry& r) {
  r.add({.name = "ablation_prefetch_depth",
         .title = "Ablation - prefetch depth (70B, Testbed-1, MLP-Offload)",
         .paper_claim =
             "one outstanding prefetch (the paper's 3-buffer budget) "
             "already hides most fetch latency; deeper pipelines trade host "
             "memory for little",
         .labels = {"ablation", "scaled"},
         .sweep = {{"cpu", {"nominal", "1/8x"}},
                   {"prefetch_ahead", {"0", "1", "2", "4"}}},
         .run = run});
}

}  // namespace mlpo::bench
