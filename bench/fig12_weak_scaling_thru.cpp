// Figure 12: weak scaling update throughput (aggregate Mparam/s across the
// cluster). Paper: throughput scales with resources — 187 -> 1168 Mparam/s
// for DeepSpeed and 371 -> 3880 for MLP-Offload between 4 and 16 GPUs —
// confirming I/O, not compute, stays the bottleneck.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct Config {
  const char* model;
  u32 nodes;
  double paper_ds;
  double paper_ours;
};
const Config kConfigs[] = {
    {"40B", 1, 187.3, 371.1},
    {"70B", 2, 490.8, 2000.5},
    {"100B", 3, 788.2, 2171.7},
    {"130B", 4, 1168.3, 3879.7},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model [GPUs]", "DS (Mparam/s)", "Ours (Mparam/s)",
                      "Gain", "Paper DS", "Paper ours"});
  for (const auto& c : kConfigs) {
    const auto& model = paper_model(c.model);
    const auto pair = run_engine_pair(model, TestbedSpec::testbed2(), c.nodes);
    const f64 thru[2] = {pair.ds.avg.update_throughput_mparams(),
                         pair.mlp.avg.update_throughput_mparams()};
    table.add_row({std::string(c.model) + " [" + std::to_string(c.nodes * 4) +
                       "]",
                   TablePrinter::num(thru[0]), TablePrinter::num(thru[1]),
                   TablePrinter::num(thru[1] / thru[0], 2) + "x",
                   TablePrinter::num(c.paper_ds), TablePrinter::num(c.paper_ours)});
    for (const int mlp : {0, 1}) {
      out.push_back(metric("update_mparams_per_s", "Mparam/s", thru[mlp],
                           Better::kHigher,
                           {{"model", c.model},
                            {"gpus", std::to_string(c.nodes * 4)},
                            {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("update_throughput_gain", "x", thru[1] / thru[0],
                         Better::kHigher,
                         {{"model", c.model},
                          {"gpus", std::to_string(c.nodes * 4)}}));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig12_weak_scaling_thru(BenchRegistry& r) {
  r.add({.name = "fig12_weak_scaling_thru",
         .title = "Figure 12 - Weak scaling update throughput (Testbed-2)",
         .paper_claim =
             "aggregate Mparam/s grows with node count; MLP-Offload holds a "
             "2-4x lead over DeepSpeed ZeRO-3",
         .labels = {"figure", "scaled", "multinode"},
         .sweep = {{"model", {"40B", "70B", "100B", "130B"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
