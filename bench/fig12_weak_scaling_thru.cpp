// Figure 12: weak scaling update throughput (aggregate Mparam/s across the
// cluster). Paper: throughput scales with resources — 187 -> 1168 Mparam/s
// for DeepSpeed and 371 -> 3880 for MLP-Offload between 4 and 16 GPUs —
// confirming I/O, not compute, stays the bottleneck.
#include <cstdio>

#include "bench_common.hpp"

namespace {
struct Config {
  const char* model;
  mlpo::u32 nodes;
  double paper_ds;
  double paper_ours;
};
const Config kConfigs[] = {
    {"40B", 1, 187.3, 371.1},
    {"70B", 2, 490.8, 2000.5},
    {"100B", 3, 788.2, 2171.7},
    {"130B", 4, 1168.3, 3879.7},
};
}  // namespace

int main() {
  using namespace mlpo;
  bench::print_header(
      "Figure 12 - Weak scaling update throughput (Testbed-2)",
      "aggregate Mparam/s grows with node count; MLP-Offload holds a 2-4x "
      "lead over DeepSpeed ZeRO-3");

  TablePrinter table({"Model [GPUs]", "DS (Mparam/s)", "Ours (Mparam/s)",
                      "Gain", "Paper DS", "Paper ours"});
  for (const auto& c : kConfigs) {
    const auto& model = paper_model(c.model);
    f64 thru[2];
    for (const int mlp : {0, 1}) {
      auto cfg = bench::scenario(model, TestbedSpec::testbed2(),
                                 mlp ? EngineOptions::mlp_offload()
                                     : EngineOptions::deepspeed_zero3(),
                                 c.nodes);
      if (!mlp) cfg.attach_pfs = false;
      thru[mlp] = bench::run_scenario(cfg).avg.update_throughput_mparams();
    }
    table.add_row({std::string(c.model) + " [" + std::to_string(c.nodes * 4) +
                       "]",
                   TablePrinter::num(thru[0]), TablePrinter::num(thru[1]),
                   TablePrinter::num(thru[1] / thru[0], 2) + "x",
                   TablePrinter::num(c.paper_ds), TablePrinter::num(c.paper_ours)});
  }
  table.print();
  return 0;
}
