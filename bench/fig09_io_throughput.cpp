// Figure 9: effective I/O throughput (2 x subgroup_bytes / (t_read +
// t_write), averaged over subgroups) for different model sizes. Paper:
// DeepSpeed sustains only ~3.2 GB/s against a 5.3 GB/s NVMe (contention +
// duplex interference), while MLP-Offload reaches 7.0-8.5 GB/s by adding
// the PFS path and controlling concurrency — ~2.6x.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct PaperRow {
  const char* model;
  double ds;
  double ours;
};
const PaperRow kPaper[] = {
    {"40B", 3.4, 8.2},  {"52B", 3.2, 8.5},  {"70B", 3.1, 8.0},
    {"100B", 3.2, 7.1}, {"120B", 3.3, 7.0},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  // The figure reports node-aggregate throughput: per-subgroup effective
  // throughput times the number of concurrently offloading workers.
  const u32 workers = TestbedSpec::testbed1().gpus_per_node;

  TablePrinter table({"Model", "DS (GB/s)", "Ours (GB/s)", "Gain",
                      "Paper DS", "Paper ours"});
  for (const auto& row : kPaper) {
    const auto& model = paper_model(row.model);
    const auto pair = run_engine_pair(model, TestbedSpec::testbed1());
    const f64 thru[2] = {
        pair.ds.avg.effective_io_throughput() * workers / GB,
        pair.mlp.avg.effective_io_throughput() * workers / GB};
    table.add_row({model.name, TablePrinter::num(thru[0], 2),
                   TablePrinter::num(thru[1], 2),
                   TablePrinter::num(thru[1] / thru[0], 2) + "x",
                   TablePrinter::num(row.ds, 1), TablePrinter::num(row.ours, 1)});
    for (const int mlp : {0, 1}) {
      out.push_back(metric(
          "effective_io_gbps", "GB/s", thru[mlp], Better::kHigher,
          {{"model", model.name}, {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("io_throughput_gain", "x", thru[1] / thru[0],
                         Better::kHigher, {{"model", model.name}}));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig09_io_throughput(BenchRegistry& r) {
  r.add({.name = "fig09_io_throughput",
         .title = "Figure 9 - Effective I/O throughput vs model size "
                  "(Testbed-1)",
         .paper_claim =
             "DeepSpeed ~3.2 GB/s (below the 5.3 GB/s NVMe write peak) vs "
             "MLP-Offload 7.0-8.5 GB/s via multi-path + concurrency control",
         .labels = {"figure", "scaled"},
         .sweep = {{"model", {"40B", "52B", "70B", "100B", "120B"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
