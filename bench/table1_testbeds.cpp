// Table 1: testbed configurations — the hardware spec the emulation is
// parameterised by, plus a microbenchmark verifying each emulated device
// actually delivers its nominal read/write throughput (the paper's B_i
// seeding procedure, §3.3).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo::bench {
namespace {

// Measure single-stream throughput of an emulated tier.
struct Measured {
  f64 read_bps;
  f64 write_bps;
};

Measured measure(StorageTier& tier, const SimClock& clock) {
  constexpr u64 kSim = 4ull * GiB;
  std::vector<u8> payload(1024, 0xAB);

  const f64 w0 = clock.now();
  for (int i = 0; i < 4; ++i) {
    tier.write("bench/" + std::to_string(i), payload, kSim);
  }
  const f64 w1 = clock.now();

  std::vector<u8> out(1024);
  const f64 r0 = clock.now();
  for (int i = 0; i < 4; ++i) {
    tier.read("bench/" + std::to_string(i), out, kSim);
  }
  const f64 r1 = clock.now();
  return {4.0 * kSim / (r1 - r0), 4.0 * kSim / (w1 - w0)};
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const auto t1 = TestbedSpec::testbed1();
  const auto t2 = TestbedSpec::testbed2();
  if (ctx.print_tables()) {
    TablePrinter spec({"Feature", "Testbed-1", "Testbed-2"});
    spec.add_row({"GPUs", "4x H100-80GB", "4x A100-40GB"});
    spec.add_row({"Pinned D<->H B/W (GB/s)", gb_per_s(t1.d2h_bandwidth),
                  gb_per_s(t2.d2h_bandwidth)});
    spec.add_row({"CPU cores", std::to_string(t1.cpu_cores),
                  std::to_string(t2.cpu_cores)});
    spec.add_row({"Host memory (GB)", gib(t1.host_memory_bytes),
                  gib(t2.host_memory_bytes)});
    spec.add_row({"NVMe R|W (GB/s)",
                  gb_per_s(t1.nvme_read_bw) + " | " + gb_per_s(t1.nvme_write_bw),
                  gb_per_s(t2.nvme_read_bw) + " | " + gb_per_s(t2.nvme_write_bw)});
    spec.add_row({"PFS", "VAST FS", "Lustre FS"});
    spec.add_row({"PFS R|W (GB/s)",
                  gb_per_s(t1.pfs_read_bw) + " | " + gb_per_s(t1.pfs_write_bw),
                  gb_per_s(t2.pfs_read_bw) + " | " + gb_per_s(t2.pfs_write_bw)});
    spec.print();
    std::printf("\nEmulated-device microbenchmark (single stream):\n\n");
  }

  TablePrinter measured({"Device", "Spec R|W (GB/s)", "Measured R|W (GB/s)"});
  const SimClock clock(env_time_scale());
  const auto bench_tier = [&](const std::string& name,
                              std::shared_ptr<ThrottledTier> tier, f64 r, f64 w) {
    const auto m = measure(*tier, clock);
    measured.add_row({name, gb_per_s(r) + " | " + gb_per_s(w),
                      gb_per_s(m.read_bps) + " | " + gb_per_s(m.write_bps)});
    out.push_back(metric("measured_read_gbps", "GB/s", m.read_bps / GB,
                         Better::kHigher, {{"device", name}}));
    out.push_back(metric("measured_write_gbps", "GB/s", m.write_bps / GB,
                         Better::kHigher, {{"device", name}}));
  };
  bench_tier("T1 NVMe", t1.make_nvme_tier(clock, "t1nvme"), t1.nvme_read_bw,
             t1.nvme_write_bw);
  bench_tier("T1 PFS (VAST)", t1.make_pfs_tier(clock, "t1pfs"), t1.pfs_read_bw,
             t1.pfs_write_bw);
  bench_tier("T2 NVMe", t2.make_nvme_tier(clock, "t2nvme"), t2.nvme_read_bw,
             t2.nvme_write_bw);
  bench_tier("T2 PFS (Lustre)", t2.make_pfs_tier(clock, "t2pfs"), t2.pfs_read_bw,
             t2.pfs_write_bw);
  if (ctx.print_tables()) measured.print();
  return out;
}

}  // namespace

void register_table1_testbeds(BenchRegistry& r) {
  r.add({.name = "table1_testbeds",
         .title = "Table 1 - Testbed configurations",
         .paper_claim =
             "Testbed-1 (JLSE H100) and Testbed-2 (Polaris A100) specs; "
             "emulated devices must match the listed rates",
         .labels = {"smoke", "table", "micro"},
         .sweep = {{"device",
                    {"T1 NVMe", "T1 PFS (VAST)", "T2 NVMe",
                     "T2 PFS (Lustre)"}}},
         .run = run});
}

}  // namespace mlpo::bench
