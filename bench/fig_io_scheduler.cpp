// Scheduler study: demand-prefetch latency under concurrent flush load.
//
// One storage path (a ThrottledTier modelling an NVMe-class device) serves
// a single submission queue — libaio-style — carrying both a backlog of
// large lazy-flush writes and a stream of latency-critical demand
// prefetches. The flat-FIFO discipline of the retired AioEngine makes every
// demand read wait behind whatever flush backlog happens to be queued; the
// priority-aware IoScheduler dispatches kDemandPrefetch ahead of
// kLazyFlush, so a demand read waits at most for the transfer already in
// service (dispatch is non-preemptive). The p99 queue wait collapses by
// roughly the backlog depth — a scheduling behaviour the FIFO engine
// cannot reproduce at any thread count. The case throws (and the driver
// exits non-zero) if the priority discipline stops beating FIFO.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "util/mutex.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo::bench {
namespace {

constexpr int kReads = 12;
constexpr int kFlushesPerRound = 6;         // burst queued before each fetch
constexpr u64 kFlushSimBytes = 128 * MiB;   // ~0.064 vs each at 2 GB/vs
constexpr u64 kReadSimBytes = 16 * MiB;
constexpr f64 kThinkSeconds = 0.02;  // virtual gap between demand fetches

struct WaitProfile {
  std::vector<f64> demand_waits;  // virtual seconds, submit -> dispatch
  f64 flush_wait_sum = 0;
  u64 flush_count = 0;
};

f64 percentile(std::vector<f64> v, f64 p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<f64>(v.size() - 1));
  return v[idx];
}

WaitProfile run_discipline(bool strict_fifo, f64 time_scale) {
  const SimClock clock(time_scale);
  ThrottleSpec spec{/*read_bw=*/3e9, /*write_bw=*/2e9};
  ThrottledTier device("nvme", std::make_shared<MemoryTier>("nvme-back"),
                       clock, spec);

  // Pre-populate the demand objects (tiny simulated cost).
  const std::vector<u8> payload(4 * KiB, 0x5A);
  for (int r = 0; r < kReads; ++r) {
    device.write("sg/" + std::to_string(r), payload, /*sim_bytes=*/1);
  }

  IoScheduler::Config cfg;
  cfg.queue_depth = 128;  // deep enough that flush bursts never block submit
  cfg.strict_fifo = strict_fifo;
  IoScheduler sched(clock, cfg);

  WaitProfile profile;
  Mutex mu;

  // Each round queues a burst of lazy flushes (the update pipeline's
  // write-back stream) and then issues the latency-critical demand fetch,
  // so every fetch meets a live backlog — the steady state of an update
  // phase, where flushes are produced as fast as fetches are consumed.
  const std::vector<u8> flush_payload(16 * KiB, 0xC3);
  std::vector<u8> staging(4 * KiB);
  IoBatch flushes;
  int flush_seq = 0;
  for (int r = 0; r < kReads; ++r) {
    for (int f = 0; f < kFlushesPerRound; ++f) {
      IoRequest req;
      req.op = IoOp::kWrite;
      req.target = IoTarget::kExternal;
      req.tier = &device;
      req.key = "flush/" + std::to_string(flush_seq++);
      req.src = flush_payload;
      req.sim_bytes = kFlushSimBytes;
      req.priority = IoPriority::kLazyFlush;
      req.on_complete = [&](const IoResult& res) {
        MutexLock lk(mu);
        profile.flush_wait_sum += res.queue_wait_seconds;
        ++profile.flush_count;
      };
      flushes.add(sched.submit(std::move(req)));
    }

    IoRequest req;
    req.op = IoOp::kRead;
    req.target = IoTarget::kExternal;
    req.tier = &device;
    req.key = "sg/" + std::to_string(r);
    req.dst = staging;
    req.sim_bytes = kReadSimBytes;
    req.priority = IoPriority::kDemandPrefetch;
    req.on_complete = [&](const IoResult& res) {
      MutexLock lk(mu);
      profile.demand_waits.push_back(res.queue_wait_seconds);
    };
    sched.submit(std::move(req)).get();
    clock.sleep_for(kThinkSeconds);
  }

  flushes.wait_all();
  sched.drain();
  return profile;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const f64 scale = env_time_scale();
  TablePrinter table({"Discipline", "Demand p50 wait (s)", "Demand p99 wait (s)",
                      "Flush mean wait (s)"});
  f64 fifo_p99 = 0, prio_p99 = 0;
  for (const bool fifo : {true, false}) {
    const auto prof = run_discipline(fifo, scale);
    const f64 p50 = percentile(prof.demand_waits, 0.5);
    const f64 p99 = percentile(prof.demand_waits, 0.99);
    const f64 flush_mean =
        prof.flush_count
            ? prof.flush_wait_sum / static_cast<f64>(prof.flush_count)
            : 0;
    if (fifo) {
      fifo_p99 = p99;
    } else {
      prio_p99 = p99;
    }
    table.add_row({fifo ? "flat FIFO (libaio-style)" : "priority (ours)",
                   TablePrinter::num(p50, 3), TablePrinter::num(p99, 3),
                   TablePrinter::num(flush_mean, 3)});
    const json::Object params{{"discipline", fifo ? "fifo" : "priority"}};
    out.push_back(metric("demand_p50_wait", "s", p50, Better::kLower, params));
    out.push_back(metric("demand_p99_wait", "s", p99, Better::kLower, params));
    out.push_back(metric("flush_mean_wait", "s", flush_mean,
                         Better::kNeither, params));
  }
  // Floor the divisor so a zero-wait priority result reads as a huge (but
  // finite, JSON-safe) speedup rather than collapsing the gated ratio to 0.
  const f64 gain = fifo_p99 / std::max(prio_p99, 1e-6);
  out.push_back(metric("demand_p99_speedup", "x", gain, Better::kHigher));

  if (ctx.print_tables()) {
    table.print();
    std::printf("\nDemand-prefetch p99 wait: %.3f s (FIFO) -> %.3f s "
                "(priority), %.1fx better.\n",
                fifo_p99, prio_p99, gain);
  }
  if (prio_p99 >= fifo_p99) {
    throw std::runtime_error(
        "priority scheduling did not improve demand p99 wait over FIFO");
  }
  return out;
}

// --- Graph-mode frontier study -------------------------------------------
//
// What the task-graph executor changes for the scheduler: the linear
// pipeline reveals demand fetches one at a time (submit, wait, compute,
// repeat), so with two storage paths one device idles while the other
// serves. Graph mode queues the entire ready frontier up front; the
// scheduler then keeps every path busy simultaneously. Two equal devices,
// half the reads on each: windowed submission costs the serial sum, the
// full frontier roughly the per-device maximum — about 2x here, gated.

constexpr int kFrontierReads = 12;
constexpr u64 kFrontierSimBytes = 512 * MiB;

f64 run_frontier(bool windowed, f64 time_scale) {
  const SimClock clock(time_scale);
  ThrottleSpec spec{/*read_bw=*/3e9, /*write_bw=*/2e9};
  ThrottledTier dev0("nvme0", std::make_shared<MemoryTier>("nvme0-back"),
                     clock, spec);
  ThrottledTier dev1("pfs0", std::make_shared<MemoryTier>("pfs0-back"),
                     clock, spec);
  ThrottledTier* devices[2] = {&dev0, &dev1};

  const std::vector<u8> payload(4 * KiB, 0x5A);
  for (int r = 0; r < kFrontierReads; ++r) {
    devices[r % 2]->write("sg/" + std::to_string(r), payload, /*sim_bytes=*/1);
  }

  IoScheduler::Config cfg;
  cfg.queue_depth = 128;
  IoScheduler sched(clock, cfg);

  std::vector<std::vector<u8>> staging(kFrontierReads,
                                       std::vector<u8>(4 * KiB));
  const f64 start = clock.now();
  IoBatch batch;
  for (int r = 0; r < kFrontierReads; ++r) {
    IoRequest req;
    req.op = IoOp::kRead;
    req.target = IoTarget::kExternal;
    req.tier = devices[r % 2];
    req.key = "sg/" + std::to_string(r);
    req.dst = staging[static_cast<std::size_t>(r)];
    req.sim_bytes = kFrontierSimBytes;
    req.priority = IoPriority::kDemandPrefetch;
    if (windowed) {
      sched.submit(std::move(req)).get();  // linear: one in flight
    } else {
      batch.add(sched.submit(std::move(req)));  // graph: whole frontier
    }
  }
  batch.wait_all();
  sched.drain();
  return clock.now() - start;
}

std::vector<telemetry::Metric> run_graph(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const f64 scale = env_time_scale();
  TablePrinter table({"Submission", "Demand phase (s)"});
  f64 windowed_s = 0, frontier_s = 0;
  for (const bool windowed : {true, false}) {
    const f64 elapsed = run_frontier(windowed, scale);
    (windowed ? windowed_s : frontier_s) = elapsed;
    table.add_row({windowed ? "windowed (linear pipeline)"
                            : "full frontier (graph mode)",
                   TablePrinter::num(elapsed, 3)});
    const json::Object params{
        {"submission", windowed ? "windowed" : "frontier"}};
    out.push_back(
        metric("demand_phase_seconds", "s", elapsed, Better::kLower, params));
  }
  const f64 gain = windowed_s / std::max(frontier_s, 1e-6);
  out.push_back(metric("frontier_speedup", "x", gain, Better::kHigher));

  if (ctx.print_tables()) {
    table.print();
    std::printf("\nDemand phase: %.3f s (windowed) -> %.3f s (frontier), "
                "%.2fx better across 2 paths.\n",
                windowed_s, frontier_s, gain);
  }
  if (frontier_s >= windowed_s) {
    throw std::runtime_error(
        "full-frontier submission did not beat windowed submission");
  }
  return out;
}

}  // namespace

void register_fig_io_scheduler_graph(BenchRegistry& r) {
  r.add({.name = "fig_io_scheduler_graph",
         .title = "Scheduler - windowed vs full-frontier demand submission "
                  "(graph mode)",
         .paper_claim =
             "revealing the whole ready frontier lets the scheduler drive "
             "every storage path concurrently; windowed submission leaves "
             "paths idle",
         .labels = {"smoke", "io", "scheduler", "graph"},
         .sweep = {{"submission", {"windowed", "frontier"}}},
         .run = run_graph});
}

void register_fig_io_scheduler(BenchRegistry& r) {
  r.add({.name = "fig_io_scheduler",
         .title = "Scheduler - demand-prefetch wait under concurrent flush "
                  "load",
         .paper_claim =
             "a flat FIFO queues demand reads behind the entire flush "
             "backlog; priority classes dispatch them next, so p99 wait "
             "drops to ~one in-service transfer",
         .labels = {"smoke", "io", "scheduler"},
         .sweep = {{"discipline", {"fifo", "priority"}}},
         .run = run});
}

}  // namespace mlpo::bench
