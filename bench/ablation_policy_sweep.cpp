// Policy-layer ablation: sweep every registered placement policy (fixed
// alternating order) and every registered ordering policy (fixed adaptive
// placement) over one two-path engine scenario, plus the DeepSpeed-ZeRO-3
// and MLP-Offload preset bundles as anchors.
//
// Doubles as two regression gates:
//   * correctness — every policy combination must reach the same state
//     checksum (the paper's §3.2 equivalence claim); a mismatch throws and
//     fails the case;
//   * performance — the update-phase times are smoke-gated against
//     bench/baselines/smoke.json, so a placement-policy regression (or a
//     preset drifting from its pre-refactor numbers) fails the perf gate.
#include <cstdio>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "harness/bench_registry.hpp"
#include "policy/policy_registry.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo::bench {
namespace {

constexpr u64 kSubgroupParams = 4 * 1024 * 1024;
constexpr u32 kNumSubgroups = 12;

struct SweepResult {
  f64 update_seconds = 0;  ///< averaged over measured iterations
  u32 cache_hits = 0;      ///< per iteration, last measured
  u64 checksum = 0;
};

SweepResult run_one(const EngineOptions& base, f64 time_scale) {
  const SimClock clock(time_scale);
  VirtualTier vtier;
  // A 3:2 bandwidth split, as in the engine unit tests: asymmetric enough
  // that placement choices matter. Bandwidths are scaled down so the
  // virtual I/O charges dwarf wall-clock jitter at smoke-gate time scales
  // (the same reasoning as the gate's MLPO_TIME_SCALE=20 knob).
  ThrottleSpec nvme{600e6, 500e6};
  vtier.add_path(std::make_shared<ThrottledTier>(
      "nvme", std::make_shared<MemoryTier>("nvme-back"), clock, nvme));
  ThrottleSpec pfs{350e6, 350e6};
  vtier.add_path(std::make_shared<ThrottledTier>(
      "pfs", std::make_shared<MemoryTier>("pfs-back"), clock, pfs,
      /*persistent=*/true));

  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 128;
  io_cfg.tier_exclusive_locking = base.tier_exclusive_locking;
  IoScheduler io(clock, &vtier, nullptr, nullptr, io_cfg);
  const GradSource grads;

  EngineOptions opts = base;
  opts.elem_scale = 65536;
  opts.host_cache_subgroups = 4;
  opts.cpu_update_rate = 8000e6;

  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = &io;
  ctx.grads = &grads;
  const auto engine = make_engine(
      ctx, opts,
      make_shard_layout(kSubgroupParams * kNumSubgroups, 1, 0,
                        kSubgroupParams));
  engine->initialize();

  SweepResult result;
  const u32 iters = env_iters();
  const u32 warmup = env_warmup();
  for (u64 iter = 0; iter < iters; ++iter) {
    for (u32 id = 0; id < engine->num_subgroups(); ++id) {
      engine->deposit_gradients_async(iter, id, true, true);
    }
    engine->wait_gradient_io();
    const auto report = engine->run_update(iter);
    if (iter >= warmup) {
      result.update_seconds += report.update_seconds;
      result.cache_hits = report.host_cache_hits;
    }
  }
  result.update_seconds /= (iters - warmup);
  result.checksum = engine->state_checksum();
  return result;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;
  const f64 scale = env_time_scale();

  TablePrinter table({"Scenario", "Placement", "Order", "Update (s)",
                      "Cache hits/iter"});
  u64 reference_checksum = 0;
  bool have_reference = false;
  const auto record = [&](const std::string& scenario,
                          const EngineOptions& opts) {
    const SweepResult r = run_one(opts, scale);
    if (!have_reference) {
      reference_checksum = r.checksum;
      have_reference = true;
    } else if (r.checksum != reference_checksum) {
      // The equivalence claim stopped holding — hard-fail the case.
      throw std::runtime_error(
          "policy sweep: state checksum diverged for scenario '" + scenario +
          "' (placement=" + opts.placement_policy +
          ", order=" + opts.update_order_policy + ")");
    }
    table.add_row({scenario, opts.placement_policy, opts.update_order_policy,
                   TablePrinter::num(r.update_seconds, 2),
                   std::to_string(r.cache_hits)});
    out.push_back(metric("update_seconds", "s", r.update_seconds,
                         Better::kLower, {{"scenario", scenario}}));
  };

  // Preset anchors: the classic DS-vs-MLP ablation pair must keep
  // reproducing its numbers through any policy-layer change.
  record("preset:deepspeed_zero3", EngineOptions::deepspeed_zero3());
  record("preset:mlp_offload", EngineOptions::mlp_offload());

  for (const auto& placement : placement_policy_names()) {
    EngineOptions opts = EngineOptions::mlp_offload();
    opts.placement_policy = placement;
    record("placement:" + placement, opts);
  }
  for (const auto& order : update_order_policy_names()) {
    EngineOptions opts = EngineOptions::mlp_offload();
    opts.update_order_policy = order;
    record("order:" + order, opts);
  }

  if (ctx.print_tables()) {
    table.print();
    std::printf("\nAll %s scenarios reached the same state checksum.\n",
                "policy-sweep");
  }
  return out;
}

}  // namespace

void register_ablation_policy_sweep(BenchRegistry& r) {
  r.add({.name = "ablation_policy_sweep",
         .title = "Ablation - pluggable placement/ordering policy sweep",
         .paper_claim =
             "placement and update order change only where bytes move and "
             "when, never the training state; Eq. 1-style placement beats "
             "oblivious spreads on asymmetric paths",
         .labels = {"smoke", "ablation", "policy"},
         .sweep = {{"scenario",
                    {"presets", "placement policies", "order policies"}}},
         .run = run});
}

}  // namespace mlpo::bench
