// Figure 4: raw I/O bandwidth of the local SSD vs the remote PFS under
// concurrency. The paper's microbenchmark: as the number of concurrent
// processes grows 1 -> 2 -> 4, aggregate read/write throughput stays flat
// while per-process latency (s/GB) degrades — bandwidth saturation, not
// scaling.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "tiers/throttled_tier.hpp"

namespace mlpo::bench {
namespace {

struct Sample {
  f64 aggregate_bps;
  f64 latency_s_per_gb;  // mean per-process
};

Sample run_procs(StorageTier& tier, const SimClock& clock, int procs,
                 bool reads) {
  constexpr u64 kSimPerProc = 4ull * GiB;
  std::vector<u8> payload(4096, 0x5A);
  // Seed objects for the read direction.
  for (int p = 0; p < procs; ++p) {
    tier.write("c/" + std::to_string(p), payload, 1);
  }

  // Threads start together behind a latch and timestamp inside themselves,
  // so thread spawn/join overhead never enters the measured interval.
  std::vector<f64> starts(procs), ends(procs);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < procs; ++p) {
    threads.emplace_back([&, p] {
      std::vector<u8> out(4096);
      while (!go.load(std::memory_order_acquire)) {
      }
      starts[p] = clock.now();
      // Four requests per process, like repeated subgroup transfers.
      for (int i = 0; i < 4; ++i) {
        if (reads) {
          tier.read("c/" + std::to_string(p), out, kSimPerProc / 4);
        } else {
          tier.write("c/" + std::to_string(p), payload, kSimPerProc / 4);
        }
      }
      ends[p] = clock.now();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  f64 first_start = starts[0], last_end = ends[0], mean_latency = 0;
  for (int p = 0; p < procs; ++p) {
    first_start = std::min(first_start, starts[p]);
    last_end = std::max(last_end, ends[p]);
    mean_latency += (ends[p] - starts[p]) / (static_cast<f64>(kSimPerProc) / 1e9);
  }
  mean_latency /= procs;
  return {static_cast<f64>(kSimPerProc) * procs / (last_end - first_start),
          mean_latency};
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const auto testbed = TestbedSpec::testbed1();
  TablePrinter table({"Device", "Dir", "Procs", "Aggregate (GB/s)",
                      "Latency (s/GB)"});
  for (const bool local : {true, false}) {
    for (const bool reads : {true, false}) {
      for (const int procs : {1, 2, 4}) {
        // Fresh tier per cell so queue state never leaks across cells.
        const SimClock clock(env_time_scale());
        auto tier = local ? testbed.make_nvme_tier(clock, "nvme")
                          : testbed.make_pfs_tier(clock, "pfs");
        const auto s = run_procs(*tier, clock, procs, reads);
        table.add_row({local ? "Local NVMe" : "Remote PFS",
                       reads ? "read" : "write", std::to_string(procs),
                       gb_per_s(s.aggregate_bps),
                       TablePrinter::num(s.latency_s_per_gb, 3)});
        const json::Object params{{"device", local ? "nvme" : "pfs"},
                                  {"dir", reads ? "read" : "write"},
                                  {"procs", std::to_string(procs)}};
        out.push_back(metric("aggregate_gbps", "GB/s", s.aggregate_bps / GB,
                             Better::kHigher, params));
        out.push_back(metric("latency_s_per_gb", "s/GB", s.latency_s_per_gb,
                             Better::kLower, params));
      }
    }
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nPaper reference: local ~7 R / ~5 W GB/s and remote ~3.6 "
                "GB/s stay flat;\nlatency grows roughly linearly with process "
                "count (Fig. 4 lines).\n");
  }
  return out;
}

}  // namespace

void register_fig04_tier_concurrency(BenchRegistry& r) {
  r.add({.name = "fig04_tier_concurrency",
         .title = "Figure 4 - SSD (local) vs PFS (remote) bandwidth under "
                  "concurrency",
         .paper_claim =
             "aggregate throughput flat at 1/2/4 procs; per-process latency "
             "(s/GB) grows with contention",
         .labels = {"figure", "micro"},
         .sweep = {{"device", {"nvme", "pfs"}},
                   {"dir", {"read", "write"}},
                   {"procs", {"1", "2", "4"}}},
         .run = run});
}

}  // namespace mlpo::bench
