// Design-choice ablation: adaptive bandwidth re-estimation (paper §3.3).
// Scenario: the PFS comes under external I/O pressure mid-run (a second
// batch job starts hammering it), dropping to a quarter of its nominal
// bandwidth. The adaptive performance model discovers the shift from
// observed transfer times and repartitions subgroups toward the NVMe; the
// static variant keeps shipping the original share to the degraded path.
// This is also the paper's stated future-work scenario ("mitigate
// predictable fluctuations in I/O bandwidth").
#include <cstdio>

#include "bench_common.hpp"
#include "core/offload_engine.hpp"
#include "harness/bench_registry.hpp"
#include "tiers/fluctuating_tier.hpp"
#include "tiers/memory_tier.hpp"

namespace mlpo::bench {
namespace {

struct RunResult {
  f64 quiet_update_s;     // avg update before the interference
  f64 pressured_update_s; // avg update while the PFS is degraded
  std::vector<u32> final_quotas;
};

RunResult run_one(bool adaptive, f64 time_scale) {
  const SimClock clock(time_scale);
  const auto testbed = TestbedSpec::testbed1();

  VirtualTier vtier;
  vtier.add_path(testbed.make_nvme_tier(clock, "nvme"));
  // PFS at nominal speed for ~3 iterations, then degraded to 25%.
  ThrottleSpec pfs_spec;
  pfs_spec.read_bw = testbed.pfs_read_bw;
  pfs_spec.write_bw = testbed.pfs_write_bw;
  pfs_spec.duplex_penalty = testbed.pfs_duplex_penalty;
  BandwidthSchedule schedule;
  schedule.segments = {{0.0, 1.0}, {95.0, 0.25}};
  vtier.add_path(std::make_shared<FluctuatingTier>(
      "pfs", std::make_shared<MemoryTier>("pfs-back"), clock, pfs_spec,
      schedule, /*persistent=*/true));

  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 128;
  IoScheduler io(clock, &vtier, nullptr, nullptr, io_cfg);
  const GradSource grads;
  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = &io;
  ctx.grads = &grads;

  EngineOptions opts = EngineOptions::mlp_offload();
  opts.placement_policy = adaptive ? "adaptive_ema" : "eq1_static";
  opts.elem_scale = 65536;
  opts.host_cache_subgroups = 8;
  opts.cpu_update_rate = testbed.cpu_update_rate_node;

  // One worker with a 40B-scale shard (single-process view keeps the
  // comparison clean).
  const auto layout =
      make_shard_layout(paper_model("40B").parameters(), 4, 0);
  OffloadEngine engine(ctx, opts, layout);
  engine.initialize();

  RunResult result{0, 0, {}};
  int quiet = 0, pressured = 0;
  for (u64 iter = 0; iter < 10; ++iter) {
    for (u32 id = 0; id < engine.num_subgroups(); ++id) {
      engine.deposit_gradients_async(iter, id, true, true);
    }
    engine.wait_gradient_io();
    const auto report = engine.run_update(iter);
    if (clock.now() < 95.0) {
      result.quiet_update_s += report.update_seconds;
      ++quiet;
    } else {
      result.pressured_update_s += report.update_seconds;
      ++pressured;
    }
  }
  if (quiet) result.quiet_update_s /= quiet;
  if (pressured) result.pressured_update_s /= pressured;
  result.final_quotas = engine.placement().quotas();
  return result;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const f64 scale = env_time_scale();
  TablePrinter table({"Placement", "Quiet update (s)", "Pressured update (s)",
                      "Slowdown", "Final NVMe:PFS quota"});
  for (const bool adaptive : {false, true}) {
    const auto r = run_one(adaptive, scale);
    table.add_row(
        {adaptive ? "adaptive (ours)" : "static",
         TablePrinter::num(r.quiet_update_s, 1),
         TablePrinter::num(r.pressured_update_s, 1),
         TablePrinter::num(r.pressured_update_s / r.quiet_update_s, 2) + "x",
         std::to_string(r.final_quotas[0]) + ":" +
             std::to_string(r.final_quotas.size() > 1 ? r.final_quotas[1] : 0)});
    const json::Object params{{"placement", adaptive ? "adaptive" : "static"}};
    out.push_back(metric("pressured_update_seconds", "s",
                         r.pressured_update_s, Better::kLower, params));
    out.push_back(metric("interference_slowdown", "x",
                         r.pressured_update_s / r.quiet_update_s,
                         Better::kLower, params));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_ablation_adaptive_model(BenchRegistry& r) {
  r.add({.name = "ablation_adaptive_model",
         .title = "Ablation - adaptive bandwidth re-estimation under PFS "
                  "interference",
         .paper_claim =
             "when the PFS drops to 25% mid-run, the adaptive Eq.-1 model "
             "repartitions subgroups to the NVMe; static placement keeps "
             "paying the degraded path",
         .labels = {"ablation", "scaled"},
         .sweep = {{"placement", {"static", "adaptive"}}},
         .run = run});
}

}  // namespace mlpo::bench
