// Figure 7: average iteration time breakdown (forward/backward/update) for
// increasing model sizes on Testbed-1, DeepSpeed ZeRO-3 vs MLP-Offload.
// Paper: 242.3 -> 95.8 s (40B) ... 550.4 -> 262.8 s (120B); iterations
// overall up to 2.7x faster, update phase up to 2.4x faster.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct PaperRow {
  const char* model;
  double ds_total;
  double ours_total;
};
const PaperRow kPaper[] = {
    {"40B", 242.3, 95.8},  {"52B", 238.6, 88.4},  {"70B", 370.6, 144.4},
    {"100B", 572.0, 241.4}, {"120B", 550.4, 262.8},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "Engine", "Fwd (s)", "Bwd (s)", "Update (s)",
                      "Total (s)", "Speedup", "Paper total"});
  for (const auto& row : kPaper) {
    const auto& model = paper_model(row.model);
    const auto pair = run_engine_pair(model, TestbedSpec::testbed1());
    const IterationReport reports[2] = {pair.ds.avg, pair.mlp.avg};
    const f64 totals[2] = {pair.ds.avg.iteration_seconds(),
                           pair.mlp.avg.iteration_seconds()};
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      table.add_row(
          {model.name, mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds, 2),
           TablePrinter::num(r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           TablePrinter::num(mlp ? row.ours_total : row.ds_total, 1)});
      out.push_back(metric(
          "iteration_seconds", "s", r.iteration_seconds(), Better::kLower,
          {{"model", model.name}, {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("iteration_speedup", "x", totals[0] / totals[1],
                         Better::kHigher, {{"model", model.name}}));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

// Graph-mode variant (smoke-gated): the same MLP-Offload scenario run with
// the linear pipeline vs the task-graph executor, at bit-identical
// training state (the equivalence suite holds the bits). Two gated wins:
//
//   * overlap_ratio — busy-time over wall time, how many seconds of
//     fetch+compute+flush fit into each wall second of the update phase.
//     Graph mode queues the whole ready frontier and overlaps compute on
//     the work-stealing pool, so this must come out strictly higher.
//   * update_seconds — this scenario's update phase is bandwidth-bound and
//     the scheduler is work-conserving, so both modes sit near the same IO
//     floor; the gate therefore rejects material regression (the executor
//     must not cost wall time) rather than demanding a speedup the
//     physics caps. The frontier's wall-time win where bandwidth is NOT
//     already saturated is gated separately in fig_io_scheduler_graph.
f64 overlap_ratio(const IterationReport& r) {
  return r.update_seconds > 0
             ? (r.fetch_seconds + r.flush_seconds + r.update_compute_seconds) /
                   r.update_seconds
             : 0;
}

std::vector<telemetry::Metric> run_graph_mode(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  const auto& model = paper_model("40B");
  TablePrinter table({"Execution", "Update (s)", "Overlap", "Frontier HW",
                      "Stolen", "Pool idle (s)"});
  IterationReport reports[2];
  for (const int graph : {0, 1}) {
    auto cfg = scenario(model, TestbedSpec::testbed1(),
                        EngineOptions::mlp_offload());
    cfg.engine.execution = graph ? "graph" : "linear";
    cfg.engine.graph_workers = 4;
    reports[graph] = run_scenario(cfg).avg;
    const auto& r = reports[graph];
    table.add_row({graph ? "graph" : "linear",
                   TablePrinter::num(r.update_seconds, 2),
                   TablePrinter::num(overlap_ratio(r), 2),
                   std::to_string(r.graph_frontier_high_water),
                   std::to_string(r.graph_tasks_stolen),
                   TablePrinter::num(r.graph_executor_idle_seconds, 2)});
    const json::Object params{{"execution", graph ? "graph" : "linear"}};
    out.push_back(metric("update_seconds", "s", r.update_seconds,
                         Better::kLower, params));
    out.push_back(metric("overlap_ratio", "x", overlap_ratio(r),
                         Better::kHigher, params));
  }
  const f64 speedup = reports[0].update_seconds /
                      std::max(reports[1].update_seconds, 1e-9);
  out.push_back(
      metric("graph_update_speedup", "x", speedup, Better::kHigher));
  out.push_back(metric("graph_frontier_high_water", "nodes",
                       static_cast<f64>(reports[1].graph_frontier_high_water),
                       Better::kNeither));

  if (ctx.print_tables()) {
    table.print();
    std::printf("\nUpdate phase: %.2f s (linear) -> %.2f s (graph), "
                "%.2fx faster.\n",
                reports[0].update_seconds, reports[1].update_seconds, speedup);
  }
  if (overlap_ratio(reports[1]) <= overlap_ratio(reports[0])) {
    throw std::runtime_error(
        "graph execution did not improve the update-phase overlap ratio");
  }
  if (reports[1].update_seconds > 1.10 * reports[0].update_seconds) {
    throw std::runtime_error(
        "graph execution materially regressed the update phase vs linear");
  }
  return out;
}

}  // namespace

void register_fig07_graph_mode(BenchRegistry& r) {
  r.add({.name = "fig07_graph_mode",
         .title = "Figure 7 variant - update breakdown, linear vs task-graph "
                  "execution",
         .paper_claim =
             "scheduling the iteration as a dependency graph exposes the "
             "full IO frontier and overlaps subgroup compute, shrinking the "
             "update phase at bit-identical training state",
         .labels = {"smoke", "figure", "graph"},
         .sweep = {{"execution", {"linear", "graph"}}},
         .run = run_graph_mode});
}

void register_fig07_iteration_breakdown(BenchRegistry& r) {
  r.add({.name = "fig07_iteration_breakdown",
         .title = "Figure 7 - Iteration breakdown vs model size (Testbed-1)",
         .paper_claim =
             "MLP-Offload cuts update up to 2.4x and whole iterations 2.7x "
             "vs DeepSpeed ZeRO-3",
         .labels = {"figure", "scaled"},
         .sweep = {{"model", {"40B", "52B", "70B", "100B", "120B"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
