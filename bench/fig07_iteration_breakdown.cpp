// Figure 7: average iteration time breakdown (forward/backward/update) for
// increasing model sizes on Testbed-1, DeepSpeed ZeRO-3 vs MLP-Offload.
// Paper: 242.3 -> 95.8 s (40B) ... 550.4 -> 262.8 s (120B); iterations
// overall up to 2.7x faster, update phase up to 2.4x faster.
#include <cstdio>

#include "bench_common.hpp"

namespace {
struct PaperRow {
  const char* model;
  double ds_total;
  double ours_total;
};
const PaperRow kPaper[] = {
    {"40B", 242.3, 95.8},  {"52B", 238.6, 88.4},  {"70B", 370.6, 144.4},
    {"100B", 572.0, 241.4}, {"120B", 550.4, 262.8},
};
}  // namespace

int main() {
  using namespace mlpo;
  bench::print_header(
      "Figure 7 - Iteration breakdown vs model size (Testbed-1)",
      "MLP-Offload cuts update up to 2.4x and whole iterations 2.7x vs "
      "DeepSpeed ZeRO-3");

  TablePrinter table({"Model", "Engine", "Fwd (s)", "Bwd (s)", "Update (s)",
                      "Total (s)", "Speedup", "Paper total"});
  for (const auto& row : kPaper) {
    const auto& model = paper_model(row.model);
    f64 totals[2] = {0, 0};
    IterationReport reports[2];
    for (const int mlp : {0, 1}) {
      auto cfg = bench::scenario(model, TestbedSpec::testbed1(),
                                 mlp ? EngineOptions::mlp_offload()
                                     : EngineOptions::deepspeed_zero3());
      if (!mlp) cfg.attach_pfs = false;  // baseline never touches the PFS
      const auto result = bench::run_scenario(cfg);
      reports[mlp] = result.avg;
      totals[mlp] = result.avg.iteration_seconds();
    }
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      table.add_row(
          {model.name, mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds, 2),
           TablePrinter::num(r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           TablePrinter::num(mlp ? row.ours_total : row.ds_total, 1)});
    }
  }
  table.print();
  return 0;
}
