// Figure 7: average iteration time breakdown (forward/backward/update) for
// increasing model sizes on Testbed-1, DeepSpeed ZeRO-3 vs MLP-Offload.
// Paper: 242.3 -> 95.8 s (40B) ... 550.4 -> 262.8 s (120B); iterations
// overall up to 2.7x faster, update phase up to 2.4x faster.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

struct PaperRow {
  const char* model;
  double ds_total;
  double ours_total;
};
const PaperRow kPaper[] = {
    {"40B", 242.3, 95.8},  {"52B", 238.6, 88.4},  {"70B", 370.6, 144.4},
    {"100B", 572.0, 241.4}, {"120B", 550.4, 262.8},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "Engine", "Fwd (s)", "Bwd (s)", "Update (s)",
                      "Total (s)", "Speedup", "Paper total"});
  for (const auto& row : kPaper) {
    const auto& model = paper_model(row.model);
    const auto pair = run_engine_pair(model, TestbedSpec::testbed1());
    const IterationReport reports[2] = {pair.ds.avg, pair.mlp.avg};
    const f64 totals[2] = {pair.ds.avg.iteration_seconds(),
                           pair.mlp.avg.iteration_seconds()};
    for (const int mlp : {0, 1}) {
      const auto& r = reports[mlp];
      table.add_row(
          {model.name, mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
           TablePrinter::num(r.forward_seconds, 2),
           TablePrinter::num(r.backward_seconds, 1),
           TablePrinter::num(r.update_seconds, 1),
           TablePrinter::num(r.iteration_seconds(), 1),
           mlp ? TablePrinter::num(totals[0] / totals[1], 2) + "x" : "1.00x",
           TablePrinter::num(mlp ? row.ours_total : row.ds_total, 1)});
      out.push_back(metric(
          "iteration_seconds", "s", r.iteration_seconds(), Better::kLower,
          {{"model", model.name}, {"engine", mlp ? "mlp" : "ds"}}));
    }
    out.push_back(metric("iteration_speedup", "x", totals[0] / totals[1],
                         Better::kHigher, {{"model", model.name}}));
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig07_iteration_breakdown(BenchRegistry& r) {
  r.add({.name = "fig07_iteration_breakdown",
         .title = "Figure 7 - Iteration breakdown vs model size (Testbed-1)",
         .paper_claim =
             "MLP-Offload cuts update up to 2.4x and whole iterations 2.7x "
             "vs DeepSpeed ZeRO-3",
         .labels = {"figure", "scaled"},
         .sweep = {{"model", {"40B", "52B", "70B", "100B", "120B"}},
                   {"engine", {"ds", "mlp"}}},
         .run = run});
}

}  // namespace mlpo::bench
