#include "bench_common.hpp"

#include <cstdio>

namespace mlpo::bench {

f64 env_time_scale() { return env::f64_or("MLPO_TIME_SCALE", 500.0); }

u32 env_iters() { return env::u32_or("MLPO_BENCH_ITERS", 3, 1); }

u32 env_warmup() {
  const u32 iters = env_iters();
  const u32 warmup =
      env::u32_or("MLPO_BENCH_WARMUP", iters > 1 ? 1 : 0);
  if (warmup >= iters) {
    throw env::EnvError(
        "MLPO_BENCH_WARMUP=" + std::to_string(warmup) +
        " must be < MLPO_BENCH_ITERS=" + std::to_string(iters) +
        " (at least one measured iteration is required)");
  }
  return warmup;
}

void validate_bench_env() {
  env_time_scale();
  env_warmup();  // also parses MLPO_BENCH_ITERS
}

u64 elem_scale_for(u64 params) {
  // Keep whole-model real footprint around tens of MB: params/scale real
  // elements across all subgroups, 12 bytes each plus serialized copies.
  u64 scale = 1;
  while (params / scale > 2'000'000ull) scale *= 2;
  return scale;
}

TrainerConfig scenario(const ModelConfig& model, const TestbedSpec& testbed,
                       const EngineOptions& engine, u32 nodes) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.testbed = testbed;
  cfg.engine = engine;
  cfg.nodes = nodes;
  cfg.elem_scale = elem_scale_for(model.parameters());
  cfg.time_scale = env_time_scale();
  cfg.attach_pfs = true;
  return cfg;
}

ScenarioResult run_scenario(const TrainerConfig& cfg) {
  Trainer trainer(cfg);
  trainer.initialize();
  const auto reports = trainer.run(env_iters(), env_warmup());
  ScenarioResult result;
  result.avg = average_reports(reports);
  result.distribution = trainer.distribution();
  return result;
}

EnginePairResult run_engine_pair(
    const ModelConfig& model, const TestbedSpec& testbed, u32 nodes,
    const std::function<void(TrainerConfig&)>& tweak) {
  EnginePairResult result;

  auto ds_cfg = scenario(model, testbed, EngineOptions::deepspeed_zero3(),
                         nodes);
  ds_cfg.attach_pfs = false;  // the baseline never touches the PFS
  if (tweak) tweak(ds_cfg);
  result.ds = run_scenario(ds_cfg);

  auto mlp_cfg = scenario(model, testbed, EngineOptions::mlp_offload(), nodes);
  if (tweak) tweak(mlp_cfg);
  result.mlp = run_scenario(mlp_cfg);
  return result;
}

void print_header(const std::string& id, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf("(scaled-time emulation; compare shapes/ratios, not absolutes)\n");
  std::printf("================================================================\n");
}

telemetry::Metric metric(std::string name, std::string unit, f64 value,
                         telemetry::Better better, json::Object params) {
  telemetry::Metric m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.params = std::move(params);
  m.value = value;
  m.better = better;
  return m;
}

std::string gb_per_s(f64 bytes_per_vsec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes_per_vsec / GB);
  return buf;
}

std::string gib(u64 bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fG", static_cast<f64>(bytes) / 1e9);
  return buf;
}

}  // namespace mlpo::bench
