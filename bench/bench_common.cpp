#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

namespace mlpo::bench {

namespace {
f64 env_f64(const char* name, f64 def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}
u32 env_u32(const char* name, u32 def) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<u32>(std::atoi(v)) : def;
}
}  // namespace

f64 env_time_scale() { return env_f64("MLPO_TIME_SCALE", 500.0); }
u32 env_iters() { return env_u32("MLPO_BENCH_ITERS", 3); }
u32 env_warmup() { return env_u32("MLPO_BENCH_WARMUP", 1); }

u64 elem_scale_for(u64 params) {
  // Keep whole-model real footprint around tens of MB: params/scale real
  // elements across all subgroups, 12 bytes each plus serialized copies.
  u64 scale = 1;
  while (params / scale > 2'000'000ull) scale *= 2;
  return scale;
}

TrainerConfig scenario(const ModelConfig& model, const TestbedSpec& testbed,
                       const EngineOptions& engine, u32 nodes) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.testbed = testbed;
  cfg.engine = engine;
  cfg.nodes = nodes;
  cfg.elem_scale = elem_scale_for(model.parameters());
  cfg.time_scale = env_time_scale();
  cfg.attach_pfs = true;
  return cfg;
}

ScenarioResult run_scenario(const TrainerConfig& cfg) {
  Trainer trainer(cfg);
  trainer.initialize();
  const auto reports = trainer.run(env_iters(), env_warmup());
  ScenarioResult result;
  result.avg = average_reports(reports);
  result.distribution = trainer.distribution();
  return result;
}

void print_header(const std::string& id, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf("(scaled-time emulation; compare shapes/ratios, not absolutes)\n");
  std::printf("================================================================\n");
}

std::string gb_per_s(f64 bytes_per_vsec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes_per_vsec / GB);
  return buf;
}

std::string gib(u64 bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fG", static_cast<f64>(bytes) / 1e9);
  return buf;
}

}  // namespace mlpo::bench
