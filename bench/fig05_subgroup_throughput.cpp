// Figure 5: effective per-subgroup read/write throughput perceived by the
// training runtime while offloading a 40B model's optimizer state to the
// node-local NVMe (DeepSpeed baseline). The paper observes oscillating
// throughput (prefetch bursts vs slow flush-back) with means around
// read 3.68 / write 1.44 GB/s.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"
#include "util/stats.hpp"

namespace mlpo::bench {
namespace {

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;

  auto cfg = scenario(paper_model("40B"), TestbedSpec::testbed1(),
                      EngineOptions::deepspeed_zero3());
  cfg.attach_pfs = false;
  cfg.host_cache_override = 0;
  const auto result = run_scenario(cfg);

  // One worker's trace, in processing order (the figure's x axis).
  RunningStats read_stats, write_stats;
  TablePrinter table({"Subgroup #", "Read (GB/s)", "Write (GB/s)"});
  u32 printed = 0;
  for (const auto& t : result.avg.traces) {
    const f64 r = t.read_throughput() / GB;
    const f64 w = t.write_throughput() / GB;
    if (t.sim_bytes_read > 0) read_stats.add(r);
    if (t.sim_bytes_written > 0) write_stats.add(w);
    // The merged trace concatenates workers/iterations; print the first
    // worker-iteration's worth of points (~100 subgroups for 40B).
    if (printed < 100 && ++printed) {
      table.add_row({std::to_string(printed), TablePrinter::num(r, 2),
                     TablePrinter::num(w, 2)});
    }
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nMeasured means: read %.2f GB/s (paper 3.68), write %.2f "
                "GB/s (paper 1.44)\n",
                read_stats.mean(), write_stats.mean());
    std::printf("Min/max read: %.2f / %.2f GB/s — the oscillation band\n",
                read_stats.min(), read_stats.max());
  }

  return {
      metric("read_mean_gbps", "GB/s", read_stats.mean(), Better::kHigher),
      metric("write_mean_gbps", "GB/s", write_stats.mean(), Better::kHigher),
      metric("read_min_gbps", "GB/s", read_stats.min()),
      metric("read_max_gbps", "GB/s", read_stats.max()),
  };
}

}  // namespace

void register_fig05_subgroup_throughput(BenchRegistry& r) {
  r.add({.name = "fig05_subgroup_throughput",
         .title =
             "Figure 5 - Per-subgroup effective R/W throughput, 40B on local "
             "SSD",
         .paper_claim =
             "oscillating series; paper means: read 3.68 GB/s, write 1.44 "
             "GB/s",
         .labels = {"figure", "scaled"},
         .sweep = {},
         .run = run});
}

}  // namespace mlpo::bench
