// Calibration: the simulator against the real storage backends.
//
// The same training schedule (identical layout, gradients, policies) runs
// three times: on the emulated NVMe pipeline (ThrottledTier + SimClock
// scaling, the substrate of every paper figure), on the synchronous
// FileTier, and on the io_uring-backed UringFileTier — the latter two
// against a temp directory at time_scale == 1, so virtual seconds are wall
// seconds and every transfer is genuine storage I/O.
//
// Three things are measured per backend:
//   * state checksum — must be bit-identical across all three (the
//     simulator/system switch cannot change numerics; a mismatch throws
//     and fails the case);
//   * alloc churn — the engine staging pool's heap_fallbacks over the
//     whole run. Deterministically zero on the steady-state I/O path, and
//     smoke-gated at zero in bench/baselines/smoke.json;
//   * model divergence — how far the placement policy's bandwidth EMA
//     drifted from the nominal seed after observing the run's transfers.
//     Near zero on the emulated tier (it serves exactly its spec);
//     machine-dependent on real backends, so reported as informational
//     telemetry (the CI calibration artifact), never gated.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/offload_engine.hpp"
#include "harness/bench_registry.hpp"
#include "io/io_scheduler.hpp"
#include "io/uring_backend.hpp"
#include "tiers/file_tier.hpp"
#include "tiers/memory_tier.hpp"
#include "tiers/throttled_tier.hpp"
#include "tiers/virtual_tier.hpp"

namespace mlpo::bench {
namespace {

namespace fs = std::filesystem;

constexpr u64 kSubgroupParams = 4 * 1024 * 1024;
constexpr u32 kNumSubgroups = 8;
/// Low enough that real runs move real bytes (~100 KiB serialized per
/// subgroup), high enough that the whole case stays in the smoke budget.
constexpr u64 kElemScale = 512;
constexpr f64 kNvmeReadBw = 2e9;
constexpr f64 kNvmeWriteBw = 1.5e9;

struct BackendResult {
  u64 checksum = 0;
  f64 update_seconds = 0;   ///< virtual, averaged over measured iterations
  f64 wall_seconds = 0;     ///< real, whole run
  u64 pool_acquires = 0;    ///< staging-pool leases over the whole run
  u64 heap_fallbacks = 0;   ///< the alloc-churn metric (gated at zero)
  f64 divergence_pct = 0;   ///< max |EMA - nominal| / nominal over paths
};

std::shared_ptr<StorageTier> make_backend(const std::string& kind,
                                          const SimClock& clock,
                                          const fs::path& root) {
  if (kind == "sim") {
    ThrottleSpec spec{kNvmeReadBw, kNvmeWriteBw};
    return std::make_shared<ThrottledTier>(
        "nvme", std::make_shared<MemoryTier>("nvme-back"), clock, spec);
  }
  if (kind == "file") {
    return std::make_shared<FileTier>("nvme", root / "file", kNvmeReadBw,
                                      kNvmeWriteBw);
  }
  UringFileTier::Options opts;
  opts.read_bw = kNvmeReadBw;
  opts.write_bw = kNvmeWriteBw;
  return std::make_shared<UringFileTier>("nvme", root / "uring", opts);
}

BackendResult run_backend(const std::string& kind, const fs::path& root) {
  // Real backends pair with time_scale == 1 (wall time IS virtual time);
  // the emulated tier runs at the usual bench scale.
  const SimClock clock(kind == "sim" ? env_time_scale() : 1.0);
  VirtualTier vtier;
  vtier.add_path(make_backend(kind, clock, root));

  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 128;
  IoScheduler io(clock, &vtier, nullptr, nullptr, io_cfg);
  const GradSource grads;

  EngineOptions opts = EngineOptions::mlp_offload();
  opts.multipath = false;  // one NVMe path is what the backends swap out
  opts.elem_scale = kElemScale;
  opts.host_cache_subgroups = 3;
  opts.cpu_update_rate = 8000e6;

  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = &io;
  ctx.grads = &grads;
  const auto engine = make_engine(
      ctx, opts,
      make_shard_layout(kSubgroupParams * kNumSubgroups, 1, 0,
                        kSubgroupParams));

  const auto wall_start = std::chrono::steady_clock::now();
  engine->initialize();

  BackendResult result;
  const u32 iters = env_iters();
  const u32 warmup = env_warmup();
  for (u64 iter = 0; iter < iters; ++iter) {
    for (u32 id = 0; id < engine->num_subgroups(); ++id) {
      engine->deposit_gradients_async(iter, id, true, true);
    }
    engine->wait_gradient_io();
    const auto report = engine->run_update(iter);
    if (iter >= warmup) result.update_seconds += report.update_seconds;
  }
  result.update_seconds /= (iters - warmup);
  result.wall_seconds =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - wall_start)
          .count();
  result.checksum = engine->state_checksum();

  const auto* offload = dynamic_cast<const OffloadEngine*>(engine.get());
  if (offload == nullptr) {
    throw std::logic_error("fig_calibration: expected the offload engine");
  }
  // Whole-run pool accounting (initialize + every iteration), not the
  // per-iteration report delta: any hidden heap traffic counts.
  const BufferPool::Stats pool = offload->scratch_stats();
  result.pool_acquires = pool.acquires;
  result.heap_fallbacks = pool.heap_fallbacks;

  // EMA-vs-nominal divergence across the bound paths. The policy was
  // seeded with vtier.path_bandwidths(); after the run its estimates
  // reflect observed transfers (simulated charges or real device time).
  const std::vector<f64> nominal = vtier.path_bandwidths();
  const std::vector<f64> estimate = offload->placement().bandwidths();
  for (std::size_t p = 0; p < estimate.size() && p < nominal.size(); ++p) {
    if (nominal[p] <= 0) continue;
    const f64 pct = std::abs(estimate[p] - nominal[p]) / nominal[p] * 100.0;
    if (pct > result.divergence_pct) result.divergence_pct = pct;
  }
  return result;
}

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  print_header("calibration",
               "same schedule, emulated vs real storage; identical state, "
               "zero steady-state allocation");

  const fs::path root =
      fs::temp_directory_path() /
      ("mlpo_calib_" + std::to_string(static_cast<unsigned>(::getpid())) +
       "_r" + std::to_string(ctx.repeat_index()));
  fs::remove_all(root);
  fs::create_directories(root);

  std::vector<telemetry::Metric> out;
  TablePrinter table({"Backend", "Checksum", "Update (vs)", "Wall (s)",
                      "Pool leases", "Heap fallbacks", "Model div (%)"});
  u64 reference_checksum = 0;
  const std::vector<std::string> kinds{"sim", "file", "uring_file"};
  for (const auto& kind : kinds) {
    const BackendResult r = run_backend(kind, root);
    if (kind == "sim") {
      reference_checksum = r.checksum;
    } else if (r.checksum != reference_checksum) {
      throw std::runtime_error(
          "fig_calibration: state checksum diverged on backend '" + kind +
          "' — the simulator/system switch changed numerics");
    }
    table.add_row({kind, std::to_string(r.checksum),
               TablePrinter::num(r.update_seconds, 4),
               TablePrinter::num(r.wall_seconds, 3),
               std::to_string(r.pool_acquires),
               std::to_string(r.heap_fallbacks),
               TablePrinter::num(r.divergence_pct, 2)});

    json::Object params;
    params["backend"] = kind;
    // The alloc-churn gate: zero heap traffic on the staging path, every
    // backend. Deterministic, so kLower against a zero baseline is a hard
    // equality gate.
    out.push_back(metric("pool_heap_fallbacks", "allocs",
                         static_cast<f64>(r.heap_fallbacks), Better::kLower,
                         params));
    // Informational calibration telemetry: wall time is a machine fact,
    // not a regression — it rides the non-gating BENCH_calibration.json
    // artifact.
    out.push_back(metric("pool_acquires", "leases",
                         static_cast<f64>(r.pool_acquires), Better::kNeither,
                         params));
    out.push_back(metric("update_seconds", "vs", r.update_seconds,
                         Better::kNeither, params));
    out.push_back(metric("wall_seconds", "s", r.wall_seconds,
                         Better::kNeither, params));
    // EMA divergence: on the emulated tier the transfers serve exactly
    // their spec, so the bandwidth EMA settling far from nominal means the
    // perf model's feedback loop broke — gate it, with a wide per-metric
    // band (the EMA path is wall-clock-fed and noisy across runners). Real
    // backends stay informational: their divergence measures the machine.
    telemetry::Metric divergence =
        metric("model_divergence", "%", r.divergence_pct,
               kind == "sim" ? Better::kLower : Better::kNeither, params);
    if (kind == "sim") divergence.threshold_pct = 50;
    out.push_back(std::move(divergence));
  }
  if (ctx.print_tables()) {
    table.print();
    std::printf("\nAll backends reached checksum %llu; staging pools served "
                "every lease from the slab.\n",
                static_cast<unsigned long long>(reference_checksum));
  }

  std::error_code ec;
  fs::remove_all(root, ec);
  return out;
}

}  // namespace

void register_fig_calibration(BenchRegistry& registry) {
  registry.add(BenchCase{
      .name = "fig_calibration",
      .title = "Calibration - simulator vs real storage backends",
      .paper_claim =
          "scale-reduced emulation predicts the same training state the real "
          "backends produce; the I/O path allocates nothing in steady state",
      .labels = {"smoke", "storage", "calibration"},
      .sweep = {{"backend", {"sim", "file", "uring_file"}}},
      .run = run});
}

}  // namespace mlpo::bench
