// Figure 15: ablation with the PFS active — multi-path placement plus the
// remaining design principles:
//   Multi-Path (with caching) = multipath + cache-friendly ordering
//   MP Skip Grads             = + delayed gradient conversion
//   Our Approach              = + tier-exclusive concurrency control
// Paper: multi-path adds another 1.6x on top of Fig. 14, for 2.5x total
// over DeepSpeed ZeRO-3.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/bench_registry.hpp"

namespace mlpo::bench {
namespace {

// Each ablation step is a named policy bundle (EngineOptions::preset).
struct Step {
  const char* label;
  const char* preset;
};
const Step kSteps[] = {
    {"Multi-Path (with caching)", "multipath_caching"},
    {"MP Skip Grads", "mp_skip_grads"},
    {"Our Approach", "mlp_offload"},
};
struct PaperRow {
  const char* model;
  double totals[3];
  double paper_ds;  // Fig. 14 baseline for the 2.5x ratio
};
const PaperRow kPaper[] = {
    {"40B", {166.3, 108.5, 95.8}, 242.3},
    {"70B", {244.3, 157.8, 144.4}, 370.6},
    {"100B", {404.8, 272.8, 241.4}, 572.0},
};

std::vector<telemetry::Metric> run(BenchContext& ctx) {
  using telemetry::Better;
  std::vector<telemetry::Metric> out;

  TablePrinter table({"Model", "Configuration", "Total (s)", "vs DeepSpeed",
                      "Paper (s)"});
  for (const auto& paper : kPaper) {
    const auto& model = paper_model(paper.model);
    // DeepSpeed reference for the ratio column (NVMe only).
    auto ds_cfg = scenario(model, TestbedSpec::testbed1(),
                           EngineOptions::deepspeed_zero3());
    ds_cfg.attach_pfs = false;
    const f64 ds_total = run_scenario(ds_cfg).avg.iteration_seconds();
    table.add_row({model.name, "DeepSpeed ZeRO-3 (ref)",
                   TablePrinter::num(ds_total, 1), "1.00x",
                   TablePrinter::num(paper.paper_ds, 1)});
    out.push_back(metric("iteration_seconds", "s", ds_total, Better::kLower,
                         {{"model", paper.model},
                          {"config", "DeepSpeed ZeRO-3 (ref)"}}));

    for (std::size_t s = 0; s < 3; ++s) {
      const EngineOptions opts = EngineOptions::preset(kSteps[s].preset);
      auto cfg = scenario(model, TestbedSpec::testbed1(), opts);
      const auto result = run_scenario(cfg);
      const f64 total = result.avg.iteration_seconds();
      table.add_row({model.name, kSteps[s].label, TablePrinter::num(total, 1),
                     TablePrinter::num(ds_total / total, 2) + "x",
                     TablePrinter::num(paper.totals[s], 1)});
      out.push_back(metric("iteration_seconds", "s", total, Better::kLower,
                           {{"model", paper.model},
                            {"config", kSteps[s].label}}));
      out.push_back(metric("speedup_vs_ds", "x", ds_total / total,
                           Better::kHigher,
                           {{"model", paper.model},
                            {"config", kSteps[s].label}}));
    }
  }
  if (ctx.print_tables()) table.print();
  return out;
}

}  // namespace

void register_fig15_ablation_multipath(BenchRegistry& r) {
  r.add({.name = "fig15_ablation_multipath",
         .title = "Figure 15 - Ablation with NVMe + PFS (multi-path)",
         .paper_claim =
             "multi-path + caching + delayed gradients + atomic R/W = full "
             "MLP-Offload, 2.5x faster than DeepSpeed ZeRO-3",
         .labels = {"figure", "ablation", "scaled"},
         .sweep = {{"model", {"40B", "70B", "100B"}},
                   {"config",
                    {"DeepSpeed ZeRO-3 (ref)", "Multi-Path (with caching)",
                     "MP Skip Grads", "Our Approach"}}},
         .run = run});
}

}  // namespace mlpo::bench
