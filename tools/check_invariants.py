#!/usr/bin/env python3
"""Project-invariant checker (runs from tools/lint.sh and the CI lint job).

Cross-file contracts the compiler cannot see break silently: a bench case
renamed in C++ stops being gated against its baseline, a ctest label
renamed in CMake turns the CI step that selects it into a no-op that tests
nothing. This script re-derives each side of those contracts from the
checked-in text and fails loudly on drift.

Checked invariants:
  1. Every BenchCase registered with the "smoke" label in bench/*.cpp has a
     baseline entry in bench/baselines/smoke.json (and vice versa), so the
     perf gate actually covers every smoke case.
  2. Every `ctest ... -L <label>` selection in .github/workflows/ci.yml
     names a label that some test in tests/CMakeLists.txt carries, so no CI
     step can silently select zero tests.
  3. Every bench/*.cpp that defines a BenchCase is listed in
     bench/harness/register_all.cpp (registration is by explicit call, not
     static initialiser; an unlisted case compiles fine and never runs).
  4. The graph-execution suites stay wired end to end: some test carries
     the "graph" ctest label, ci.yml has a step selecting `-L graph`, and
     at least one smoke bench case carries the "graph" label (so the
     executor's perf gates ride the baseline comparison).
  5. Every storage backend kind in storage_backend_names() (the set the
     config parser accepts) is exercised by the storage-labelled tests:
     a new kind added to src/runtime/storage_config.cpp without test
     coverage fails here, not silently in production configs.
  6. The multi-tenancy suites stay wired end to end: some test carries
     the "tenancy" ctest label, ci.yml has a step selecting `-L tenancy`,
     and at least one smoke bench case carries the "tenancy" label (so
     the fair-share sweep and its starvation assertion ride the smoke
     gate).

Zero third-party dependencies; regex-level parsing is deliberate — the
source of truth is the checked-in text, not a build artifact, so the check
works before the first configure.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

FAILURES: list[str] = []


def fail(msg: str) -> None:
    FAILURES.append(msg)


def parse_bench_cases() -> dict[str, dict]:
    """name -> {labels: set[str], file: Path} from BenchCase initialisers."""
    cases: dict[str, dict] = {}
    for path in sorted((REPO / "bench").glob("*.cpp")):
        text = path.read_text()
        # Designated-initialiser registrations:
        #   BenchCase{ .name = "fig01_memory_wall", ... .labels = {"smoke"},
        for m in re.finditer(r"\.name\s*=\s*\"([^\"]+)\"", text):
            name = m.group(1)
            tail = text[m.end():]
            # Labels belong to the same initialiser: stop at the next .name.
            next_case = re.search(r"\.name\s*=", tail)
            scope = tail[: next_case.start()] if next_case else tail
            labels: set[str] = set()
            lm = re.search(r"\.labels\s*=\s*\{([^}]*)\}", scope)
            if lm:
                labels = set(re.findall(r"\"([^\"]+)\"", lm.group(1)))
            cases[name] = {"labels": labels, "file": path}
    return cases


def check_smoke_baselines(cases: dict[str, dict]) -> None:
    baseline_path = REPO / "bench" / "baselines" / "smoke.json"
    if not baseline_path.exists():
        fail(f"missing baseline file: {baseline_path}")
        return
    data = json.loads(baseline_path.read_text())
    baseline_names = {e["name"] for e in data["benchmarks"]}

    smoke_cases = {n for n, c in cases.items() if "smoke" in c["labels"]}
    for name in sorted(smoke_cases - baseline_names):
        fail(
            f"bench case '{name}' carries the \"smoke\" label but has no "
            f"entry in bench/baselines/smoke.json — the perf gate will "
            f"fail on it (unknown case) or skip it"
        )
    for name in sorted(baseline_names - smoke_cases):
        fail(
            f"bench/baselines/smoke.json lists '{name}' but no registered "
            f"BenchCase carries that name with the \"smoke\" label — stale "
            f"baseline entry"
        )


def ctest_labels_defined() -> set[str]:
    """Labels any ctest registration carries (tests/ and bench/ CMake)."""
    defined: set[str] = set()
    for cmake in (REPO / "tests" / "CMakeLists.txt",
                  REPO / "bench" / "CMakeLists.txt"):
        if not cmake.exists():
            continue
        for m in re.finditer(r"LABELS\s+\"([^\"]+)\"", cmake.read_text()):
            defined |= set(m.group(1).split(";"))
    return defined


def check_ci_labels() -> None:
    ci = REPO / ".github" / "workflows" / "ci.yml"
    if not ci.exists() or not (REPO / "tests" / "CMakeLists.txt").exists():
        fail("missing ci.yml or tests/CMakeLists.txt")
        return
    used = set(re.findall(r"ctest[^\n]*\s-L\s+([A-Za-z0-9_-]+)", ci.read_text()))
    defined = ctest_labels_defined()
    for label in sorted(used - defined):
        fail(
            f"ci.yml selects tests with `ctest -L {label}` but no test in "
            f"tests/ or bench/ CMakeLists.txt sets that label — the step "
            f"would run zero tests"
        )


def check_graph_suites(cases: dict[str, dict]) -> None:
    if "graph" not in ctest_labels_defined():
        fail(
            "no ctest registration carries the \"graph\" label — the graph "
            "CI step and `ctest -L graph` would select zero tests"
        )
    ci = REPO / ".github" / "workflows" / "ci.yml"
    if ci.exists() and not re.search(r"ctest[^\n]*\s-L\s+graph\b",
                                     ci.read_text()):
        fail(
            "ci.yml has no step selecting `ctest -L graph` — the graph "
            "executor suites would not run as their own CI gate"
        )
    graph_smoke = {
        n for n, c in cases.items()
        if {"graph", "smoke"} <= c["labels"]
    }
    if not graph_smoke:
        fail(
            "no bench case carries both the \"graph\" and \"smoke\" labels "
            "— the graph-mode perf win is not gated against the smoke "
            "baselines"
        )


def check_tenancy_suites(cases: dict[str, dict]) -> None:
    if "tenancy" not in ctest_labels_defined():
        fail(
            "no ctest registration carries the \"tenancy\" label — the "
            "tenancy CI step and `ctest -L tenancy` would select zero tests"
        )
    ci = REPO / ".github" / "workflows" / "ci.yml"
    if ci.exists() and not re.search(r"ctest[^\n]*\s-L\s+tenancy\b",
                                     ci.read_text()):
        fail(
            "ci.yml has no step selecting `ctest -L tenancy` — the "
            "multi-job suites would not run as their own CI gate"
        )
    tenancy_smoke = {
        n for n, c in cases.items()
        if {"tenancy", "smoke"} <= c["labels"]
    }
    if not tenancy_smoke:
        fail(
            "no bench case carries both the \"tenancy\" and \"smoke\" "
            "labels — the fair-share sweep and its starvation assertion "
            "are not gated against the smoke baselines"
        )


def storage_backend_kinds() -> set[str]:
    """Backend kinds the config parser accepts, from storage_config.cpp."""
    src = REPO / "src" / "runtime" / "storage_config.cpp"
    if not src.exists():
        fail("missing src/runtime/storage_config.cpp")
        return set()
    text = src.read_text()
    m = re.search(
        r"storage_backend_names\(\)\s*\{[^}]*?\{([^}]*)\}", text, re.S)
    if not m:
        fail(
            "could not parse the kinds list out of storage_backend_names() "
            "in src/runtime/storage_config.cpp — either the function moved "
            "or the parser regressed"
        )
        return set()
    return set(re.findall(r"\"([^\"]+)\"", m.group(1)))


def check_storage_backend_coverage() -> None:
    """Every accepted backend kind appears in a storage-labelled test."""
    kinds = storage_backend_kinds()
    if not kinds:
        return

    cmake = REPO / "tests" / "CMakeLists.txt"
    storage_tests: set[str] = set()
    for m in re.finditer(r"set_tests_properties\(([^)]*)\)",
                         cmake.read_text()):
        block = m.group(1)
        lm = re.search(r"LABELS\s+\"([^\"]+)\"", block)
        if not lm or "storage" not in lm.group(1).split(";"):
            continue
        head = block[: block.find("PROPERTIES")]
        storage_tests |= set(head.split())
    if not storage_tests:
        fail(
            "no test in tests/CMakeLists.txt carries the \"storage\" label "
            "— `ctest -L storage` and its CI step would run zero tests"
        )
        return

    corpus = ""
    for name in sorted(storage_tests):
        src = REPO / "tests" / f"{name}.cpp"
        if not src.exists():
            fail(
                f"tests/CMakeLists.txt labels '{name}' with \"storage\" but "
                f"tests/{name}.cpp does not exist"
            )
            continue
        corpus += src.read_text()
    for kind in sorted(kinds):
        # The kind must appear as a string literal somewhere in a
        # storage-labelled suite (config parse, factory dispatch, or both).
        if f'"{kind}"' not in corpus:
            fail(
                f"storage backend kind '{kind}' (accepted by "
                f"storage_backend_names()) never appears in any "
                f"storage-labelled test — a config could select an "
                f"untested backend"
            )


def check_register_all(cases: dict[str, dict]) -> None:
    reg = REPO / "bench" / "harness" / "register_all.cpp"
    if not reg.exists():
        fail("missing bench/harness/register_all.cpp")
        return
    text = reg.read_text()
    registering_files = {c["file"].stem for c in cases.values()}
    for stem in sorted(registering_files):
        # register_all calls one registration function per bench TU; match
        # by the TU's stem (e.g. fig01_memory_wall -> register_fig01...()).
        if stem not in text:
            fail(
                f"bench/{stem}.cpp defines a BenchCase but register_all.cpp "
                f"never references '{stem}' — the case will never register"
            )


def main() -> int:
    cases = parse_bench_cases()
    if not cases:
        fail("parsed zero BenchCase registrations from bench/*.cpp — "
             "either the bench tree moved or the parser regressed")
    check_smoke_baselines(cases)
    check_ci_labels()
    check_register_all(cases)
    check_graph_suites(cases)
    check_tenancy_suites(cases)
    check_storage_backend_coverage()

    if FAILURES:
        print(f"check_invariants: {len(FAILURES)} failure(s)", file=sys.stderr)
        for msg in FAILURES:
            print(f"  * {msg}", file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({len(cases)} bench cases checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
