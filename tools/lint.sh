#!/usr/bin/env bash
# Repo lint driver: clang-tidy over the compilation database plus the
# project-invariant checker. CI runs this as its own job; locally it wants
# an existing configured build tree for the compile_commands.json.
#
# Usage:
#   tools/lint.sh [build-dir]
#
# build-dir defaults to build/ci, falling back to the first build/*/ tree
# that holds a compile_commands.json. clang-tidy is skipped (with a
# warning, not a failure) when the binary is absent — the GCC-only dev
# container still gets the invariant checks; CI installs clang-tidy so the
# full lint always runs there.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- 1. project invariants (no toolchain dependency) -----------------------
python3 tools/check_invariants.py || fail=1

# --- 2. clang-tidy over every non-test TU ----------------------------------
build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  if [[ -f build/ci/compile_commands.json ]]; then
    build_dir=build/ci
  else
    build_dir=$(ls -d build/*/ 2>/dev/null | while read -r d; do
      [[ -f "${d}compile_commands.json" ]] && echo "${d%/}" && break
    done || true)
  fi
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH — skipping static analysis" >&2
elif [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: no compile_commands.json under build/ — configure a" \
       "preset first (cmake --preset ci); skipping clang-tidy" >&2
else
  echo "lint.sh: clang-tidy using ${build_dir}/compile_commands.json"
  # Library + bench + example sources; tests are excluded because the
  # GoogleTest macros expand into patterns several bugprone checks flag.
  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'bench/*.cpp' \
                           'bench/harness/*.cpp' 'examples/*.cpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${build_dir}" "${sources[@]}" || fail=1
  else
    clang-tidy -quiet -p "${build_dir}" "${sources[@]}" || fail=1
  fi
fi

exit ${fail}
