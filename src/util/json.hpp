// Minimal JSON parser/serializer.
//
// MLP-Offload is configured "via two JSON key-value pairs in the DeepSpeed
// runtime configuration" (paper §3.5). To mirror that integration surface
// without an external dependency, the library ships a small, strict JSON
// implementation: UTF-8 pass-through strings, doubles for numbers, ordered
// objects. Good enough for configuration files; not a general-purpose
// document store.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/common.hpp"

namespace mlpo::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps deterministic ordering for serialization and tests.
using Object = std::map<std::string, Value>;

struct ParseError : std::runtime_error {
  ParseError(const std::string& msg, std::size_t offset)
      : std::runtime_error(msg + " at offset " + std::to_string(offset)),
        offset(offset) {}
  std::size_t offset;
};

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(f64 d) : data_(d) {}
  Value(int i) : data_(static_cast<f64>(i)) {}
  Value(i64 i) : data_(static_cast<f64>(i)) {}
  Value(u64 i) : data_(static_cast<f64>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<f64>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return get<bool>("bool"); }
  f64 as_number() const { return get<f64>("number"); }
  i64 as_int() const { return static_cast<i64>(as_number()); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Array& as_array() { return get<Array>("array"); }
  Object& as_object() { return get<Object>("object"); }

  /// Object member access; throws std::out_of_range if missing.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Typed lookups with defaults, the shape configuration code wants.
  f64 number_or(const std::string& key, f64 fallback) const;
  i64 int_or(const std::string& key, i64 fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (auto* p = std::get_if<T>(&data_)) return *p;
    throw std::runtime_error(std::string("json: value is not a ") + name);
  }
  template <typename T>
  T& get(const char* name) {
    if (auto* p = std::get_if<T>(&data_)) return *p;
    throw std::runtime_error(std::string("json: value is not a ") + name);
  }

  std::variant<std::nullptr_t, bool, f64, std::string, Array, Object> data_;
};

/// Parse a complete JSON document. Throws ParseError on malformed input or
/// trailing garbage.
Value parse(std::string_view text);

}  // namespace mlpo::json
