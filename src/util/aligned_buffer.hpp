// Page-aligned byte buffers and a fixed-capacity buffer pool.
//
// DeepNVMe-style engines require page-aligned, pinned host buffers for
// O_DIRECT/libaio transfers. We reproduce the allocation discipline —
// explicit pool-based allocation with a hard capacity, acquire/release
// semantics, no hidden growth — which is what gives the engine its
// "bounded host memory" behaviour (at most K subgroups resident, paper
// §3.1/Fig. 5). Pinning itself (mlock) is unnecessary for emulation.
#pragma once

#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

/// Movable page-aligned buffer of raw bytes.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t size, std::size_t alignment = 4096);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  u8* data() { return data_; }
  const u8* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<u8> bytes() { return {data_, size_}; }
  std::span<const u8> bytes() const { return {data_, size_}; }

  /// View the buffer as an array of T (size must divide evenly).
  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(data_), size_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data_), size_ / sizeof(T)};
  }

 private:
  u8* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Blocking pool of equal-sized aligned buffers. acquire() blocks when the
/// pool is exhausted — this backpressure is what bounds the number of
/// in-flight subgroups exactly like a pinned-buffer budget does on real
/// hardware.
class BufferPool {
 public:
  BufferPool(std::size_t buffer_count, std::size_t buffer_size);

  /// RAII lease on a pooled buffer; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(BufferPool* pool, AlignedBuffer buf) : pool_(pool), buf_(std::move(buf)) {}
    ~Lease() { release(); }
    Lease(Lease&& o) noexcept : pool_(o.pool_), buf_(std::move(o.buf_)) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        buf_ = std::move(o.buf_);
        o.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    AlignedBuffer& buffer() { return buf_; }
    bool valid() const { return pool_ != nullptr; }
    void release();

   private:
    BufferPool* pool_ = nullptr;
    AlignedBuffer buf_;
  };

  /// Blocks until a buffer is free.
  Lease acquire();
  /// Non-blocking variant; returns an invalid lease when exhausted.
  Lease try_acquire();

  std::size_t capacity() const { return capacity_; }
  std::size_t buffer_size() const { return buffer_size_; }
  std::size_t available() const;

 private:
  friend class Lease;
  void put_back(AlignedBuffer buf);

  const std::size_t capacity_;
  const std::size_t buffer_size_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::vector<AlignedBuffer> free_ MLPO_GUARDED_BY(mutex_);
};

}  // namespace mlpo
