// Page-aligned byte buffers and a slab-backed buffer pool.
//
// DeepNVMe-style engines require page-aligned, pinned host buffers for
// O_DIRECT/libaio transfers. We reproduce the allocation discipline —
// explicit pool-based allocation with a hard capacity, acquire/release
// semantics, no hidden growth — which is what gives the engine its
// "bounded host memory" behaviour (at most K subgroups resident, paper
// §3.1/Fig. 5).
//
// BufferPool fronts a single page-aligned (optionally mlock-pinned) slab
// suballocated by OffsetAllocator: acquire(bytes) hands out a span carved
// from the slab in O(1) with zero heap traffic, blocks under backpressure
// when the slab is full, and falls back to a counted heap allocation only
// for requests larger than the slab itself. The stats() counters are the
// ground truth behind the repo's alloc-churn metric: a steady-state
// iteration must show heap_fallbacks == 0.
#pragma once

#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "util/common.hpp"
#include "util/mutex.hpp"
#include "util/offset_allocator.hpp"

namespace mlpo {

/// Movable page-aligned buffer of raw bytes.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t size, std::size_t alignment = 4096);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  u8* data() { return data_; }
  const u8* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<u8> bytes() { return {data_, size_}; }
  std::span<const u8> bytes() const { return {data_, size_}; }

  /// View the buffer as an array of T (size must divide evenly).
  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(data_), size_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data_), size_ / sizeof(T)};
  }

 private:
  u8* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Slab-backed pool of variable-size aligned buffers. acquire() blocks when
/// the slab is exhausted — this backpressure is what bounds the number of
/// in-flight subgroups exactly like a pinned-buffer budget does on real
/// hardware.
class BufferPool {
 public:
  struct Options {
    /// Total slab capacity; rounded up to a whole number of granules.
    std::size_t slab_bytes = 0;
    /// Allocation quantum and guaranteed alignment of every lease (the
    /// O_DIRECT contract wants 4096 for both).
    std::size_t granule = 4096;
    /// Best-effort mlock of the slab (ignored when the platform refuses,
    /// e.g. RLIMIT_MEMLOCK inside containers).
    bool pin = false;
  };

  /// Monotonic counters; snapshot under the pool lock so the fields are
  /// mutually consistent.
  struct Stats {
    u64 acquires = 0;
    u64 releases = 0;
    /// Requests larger than the slab served from the heap — the alloc-churn
    /// metric gates this at zero for steady-state iterations.
    u64 heap_fallbacks = 0;
    /// acquire() calls that had to sleep for slab space (backpressure).
    u64 blocked_waits = 0;
    u64 bytes_in_use = 0;
    u64 peak_bytes_in_use = 0;
  };

  explicit BufferPool(const Options& options);
  /// Convenience: a slab sized for `buffer_count` leases of `buffer_size`
  /// (each rounded up to the granule). acquire() with no argument hands
  /// out `buffer_size` bytes, preserving the fixed-budget idiom.
  BufferPool(std::size_t buffer_count, std::size_t buffer_size);

  /// RAII lease on a pooled span; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(Lease&& o) noexcept
        : pool_(o.pool_), alloc_(o.alloc_), data_(o.data_), size_(o.size_),
          heap_(std::move(o.heap_)) {
      o.pool_ = nullptr;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        alloc_ = o.alloc_;
        data_ = o.data_;
        size_ = o.size_;
        heap_ = std::move(o.heap_);
        o.pool_ = nullptr;
        o.data_ = nullptr;
        o.size_ = 0;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    u8* data() { return data_; }
    const u8* data() const { return data_; }
    /// Requested size (the slab reservation may be granule-rounded larger).
    std::size_t size() const { return size_; }
    std::span<u8> bytes() { return {data_, size_}; }
    std::span<const u8> bytes() const { return {data_, size_}; }
    template <typename T>
    std::span<T> as() {
      return {reinterpret_cast<T*>(data_), size_ / sizeof(T)};
    }
    bool valid() const { return data_ != nullptr; }
    void release();

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, OffsetAllocator::Allocation alloc, u8* data,
          std::size_t size)
        : pool_(pool), alloc_(alloc), data_(data), size_(size) {}

    Lease(BufferPool* pool, AlignedBuffer heap)
        : pool_(pool), data_(heap.data()), size_(heap.size()),
          heap_(std::move(heap)) {}

    BufferPool* pool_ = nullptr;
    OffsetAllocator::Allocation alloc_;
    u8* data_ = nullptr;
    std::size_t size_ = 0;
    AlignedBuffer heap_;
  };

  ~BufferPool();

  /// Blocks until `bytes` of slab space are free. Oversize requests (larger
  /// than the slab) are served from the heap and counted in
  /// stats().heap_fallbacks so they can never deadlock the caller.
  Lease acquire(std::size_t bytes);
  /// Non-blocking variant; returns an invalid lease when the slab cannot
  /// satisfy the request right now.
  Lease try_acquire(std::size_t bytes);
  /// Legacy fixed-size idiom: lease `buffer_size()` bytes.
  Lease acquire() { return acquire(default_lease_bytes_); }
  Lease try_acquire() { return try_acquire(default_lease_bytes_); }

  std::size_t capacity() const { return capacity_; }
  std::size_t buffer_size() const { return default_lease_bytes_; }
  std::size_t slab_bytes() const { return slab_.size(); }
  std::size_t granule() const { return granule_; }
  bool pinned() const { return pinned_; }
  /// Free default-size slots (legacy fixed-budget view of the slab).
  std::size_t available() const;
  std::size_t free_bytes() const;
  Stats stats() const;
  /// Zeroes the monotonic counters (bytes_in_use/peak reset to current
  /// usage). Call between iterations to measure per-iteration churn.
  void reset_stats();

 private:
  friend class Lease;
  BufferPool(Options options, std::size_t default_lease);
  void put_back(const OffsetAllocator::Allocation& alloc);
  void note_heap_release();

  std::size_t granule_;
  std::size_t default_lease_bytes_;
  std::size_t capacity_;
  bool pinned_ = false;
  AlignedBuffer slab_;

  mutable Mutex mutex_;
  CondVar cv_;
  OffsetAllocator allocator_ MLPO_GUARDED_BY(mutex_);
  Stats stats_ MLPO_GUARDED_BY(mutex_);
};

}  // namespace mlpo
