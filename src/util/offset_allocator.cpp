#include "util/offset_allocator.hpp"

#include <bit>
#include <stdexcept>

namespace mlpo {

OffsetAllocator::OffsetAllocator(u64 capacity_bytes, u64 granule_bytes)
    : granule_(granule_bytes) {
  if (granule_ == 0) {
    throw std::invalid_argument("OffsetAllocator: granule must be positive");
  }
  const u64 pages = capacity_bytes / granule_;
  if (pages == 0) {
    throw std::invalid_argument(
        "OffsetAllocator: capacity smaller than one granule");
  }
  if (pages > kNone - 1) {
    throw std::invalid_argument("OffsetAllocator: too many pages for u32");
  }
  pages_ = static_cast<u32>(pages);
  for (u32& h : heads_) h = kNone;
  start_node_.assign(pages_, kNone);
  end_start_.assign(pages_, kNone);
  push_run(0, pages_);
  free_pages_ = pages_;
}

u32 OffsetAllocator::pages_for(u64 bytes) const {
  if (bytes == 0) return 1;
  const u64 pages = (bytes + granule_ - 1) / granule_;
  // A request beyond the whole slab can never fit; saturate so the class
  // search below fails cleanly instead of overflowing.
  return pages > pages_ ? pages_ + 1 : static_cast<u32>(pages);
}

u32 OffsetAllocator::floor_class(u32 pages) {
  return 31u - static_cast<u32>(std::countl_zero(pages));
}

u32 OffsetAllocator::ceil_class(u32 pages) {
  const u32 fc = floor_class(pages);
  return std::has_single_bit(pages) ? fc : fc + 1;
}

u32 OffsetAllocator::new_node(u32 start, u32 len) {
  if (!node_freelist_.empty()) {
    const u32 id = node_freelist_.back();
    node_freelist_.pop_back();
    nodes_[id] = Node{start, len, kNone, kNone};
    return id;
  }
  nodes_.push_back(Node{start, len, kNone, kNone});
  return static_cast<u32>(nodes_.size() - 1);
}

void OffsetAllocator::recycle_node(u32 node) { node_freelist_.push_back(node); }

void OffsetAllocator::push_run(u32 start, u32 len) {
  const u32 id = new_node(start, len);
  const u32 cls = floor_class(len);
  nodes_[id].next = heads_[cls];
  if (heads_[cls] != kNone) nodes_[heads_[cls]].prev = id;
  heads_[cls] = id;
  class_mask_ |= (1u << cls);
  start_node_[start] = id;
  end_start_[start + len - 1] = start;
}

void OffsetAllocator::unlink_run(u32 node) {
  const Node& n = nodes_[node];
  const u32 cls = floor_class(n.len);
  if (n.prev != kNone) {
    nodes_[n.prev].next = n.next;
  } else {
    heads_[cls] = n.next;
    if (n.next == kNone) class_mask_ &= ~(1u << cls);
  }
  if (n.next != kNone) nodes_[n.next].prev = n.prev;
}

void OffsetAllocator::clear_tags(u32 start, u32 len) {
  start_node_[start] = kNone;
  end_start_[start + len - 1] = kNone;
}

OffsetAllocator::Allocation OffsetAllocator::allocate(u64 bytes) {
  const u32 want = pages_for(bytes);
  if (want > pages_) return {};

  u32 node = kNone;
  const u32 cc = ceil_class(want);
  const u32 mask =
      cc < kNumClasses ? class_mask_ & ~((1u << cc) - 1u) : 0u;
  if (mask != 0) {
    node = heads_[static_cast<u32>(std::countr_zero(mask))];
  } else {
    // Good-fit miss: the floor class may still hold a fitting run. One O(1)
    // peek at its head keeps the common "exact-ish size" case from failing
    // while the slab has room.
    const u32 fc = floor_class(want);
    if (fc != cc && heads_[fc] != kNone && nodes_[heads_[fc]].len >= want) {
      node = heads_[fc];
    }
  }
  if (node == kNone) return {};

  const u32 start = nodes_[node].start;
  const u32 len = nodes_[node].len;
  unlink_run(node);
  recycle_node(node);
  clear_tags(start, len);
  if (len > want) push_run(start + want, len - want);
  free_pages_ -= want;
  return Allocation{static_cast<u64>(start) * granule_,
                    static_cast<u64>(want) * granule_};
}

void OffsetAllocator::release(const Allocation& allocation) {
  if (!allocation.valid()) return;
  if (allocation.offset % granule_ != 0 || allocation.bytes % granule_ != 0 ||
      allocation.bytes == 0) {
    throw std::logic_error("OffsetAllocator: release of a foreign allocation");
  }
  u32 start = static_cast<u32>(allocation.offset / granule_);
  u32 len = static_cast<u32>(allocation.bytes / granule_);
  if (static_cast<u64>(start) + len > pages_) {
    throw std::logic_error("OffsetAllocator: release outside the slab");
  }
  if (start_node_[start] != kNone) {
    throw std::logic_error("OffsetAllocator: double free");
  }

  // Coalesce left: a free run ending at start-1 absorbs us.
  if (start > 0 && end_start_[start - 1] != kNone) {
    const u32 left_start = end_start_[start - 1];
    const u32 left_node = start_node_[left_start];
    const u32 left_len = nodes_[left_node].len;
    unlink_run(left_node);
    recycle_node(left_node);
    clear_tags(left_start, left_len);
    start = left_start;
    len += left_len;
  }
  // Coalesce right: a free run starting at start+len gets absorbed.
  if (start + len < pages_ && start_node_[start + len] != kNone) {
    const u32 right_node = start_node_[start + len];
    const u32 right_len = nodes_[right_node].len;
    unlink_run(right_node);
    recycle_node(right_node);
    clear_tags(start + len, right_len);
    len += right_len;
  }

  push_run(start, len);
  free_pages_ += static_cast<u32>(allocation.bytes / granule_);
}

OffsetAllocator::Report OffsetAllocator::report() const {
  Report r;
  r.capacity_bytes = capacity_bytes();
  r.free_bytes = free_bytes();
  for (u32 cls = 0; cls < kNumClasses; ++cls) {
    for (u32 id = heads_[cls]; id != kNone; id = nodes_[id].next) {
      ++r.free_runs;
      const u64 run_bytes = static_cast<u64>(nodes_[id].len) * granule_;
      if (run_bytes > r.largest_free_bytes) r.largest_free_bytes = run_bytes;
    }
  }
  return r;
}

}  // namespace mlpo
