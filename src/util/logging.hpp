// Minimal leveled logger. Thread-safe line output to stderr; level settable
// at runtime (MLPO_LOG env var or set_level). Hot paths must not log —
// keep this for configuration, lifecycle, and error reporting.
#pragma once

#include <sstream>
#include <string>

#include "util/common.hpp"

namespace mlpo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log-level control. Initialized from the MLPO_LOG environment
/// variable ("debug", "info", "warn", "error", "off"); defaults to warn so
/// tests and benches stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one line at `level` (no-op if below the current level).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define MLPO_LOG_DEBUG ::mlpo::detail::LogStream(::mlpo::LogLevel::kDebug)
#define MLPO_LOG_INFO ::mlpo::detail::LogStream(::mlpo::LogLevel::kInfo)
#define MLPO_LOG_WARN ::mlpo::detail::LogStream(::mlpo::LogLevel::kWarn)
#define MLPO_LOG_ERROR ::mlpo::detail::LogStream(::mlpo::LogLevel::kError)

}  // namespace mlpo
