// FIFO-channel bandwidth model.
//
// A storage device (NVMe, PFS endpoint, PCIe link) is modelled as a serial
// channel with a fixed byte rate: a transfer of S bytes occupies the channel
// for S/B virtual seconds. Concurrent requesters queue in FIFO order behind
// a mutex, which reproduces the behaviour the paper measures in Fig. 4:
// aggregate throughput stays flat as process count grows while per-process
// latency degrades linearly.
//
// Tiers split large transfers into chunks before acquiring the channel so
// that concurrent requests interleave fairly (like request-level queueing
// in a real block layer) instead of head-of-line blocking for whole
// subgroups.
#pragma once

#include "util/common.hpp"
#include "util/mutex.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

class RateLimiter {
 public:
  /// @param rate channel bandwidth in bytes per virtual second (> 0).
  RateLimiter(const SimClock& clock, f64 rate);

  /// Pass `bytes` through the channel, blocking the caller until the bytes
  /// have "drained". Returns the virtual completion time.
  f64 acquire(u64 bytes);

  /// Reserve channel time for `bytes` without blocking; returns the virtual
  /// completion time. Callers that pipeline multiple chunks can reserve them
  /// all and sleep once on the last deadline.
  f64 reserve(u64 bytes);

  f64 rate() const;
  void set_rate(f64 rate);

  /// Virtual time at which the channel next becomes idle (monotone).
  f64 busy_until() const;

 private:
  const SimClock* clock_;
  mutable Mutex mutex_;
  f64 rate_ MLPO_GUARDED_BY(mutex_);
  f64 next_free_ MLPO_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace mlpo
