#include "util/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace mlpo::env {

namespace {

[[noreturn]] void fail(const char* name, const char* value,
                       const std::string& expected) {
  throw EnvError(std::string(name) + "=\"" + value + "\" is invalid: " +
                 expected);
}

/// True when `end` consumed the whole value (trailing whitespace allowed).
bool fully_consumed(const char* end) {
  while (*end == ' ' || *end == '\t') ++end;
  return *end == '\0';
}

}  // namespace

f64 f64_or(const char* name, f64 def, bool require_positive) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  const f64 parsed = std::strtod(v, &end);
  if (end == v || !fully_consumed(end)) {
    fail(name, v, "expected a numeric value");
  }
  if (errno == ERANGE || !std::isfinite(parsed)) {
    fail(name, v, "value overflows a double");
  }
  if (require_positive && parsed <= 0.0) {
    fail(name, v, "expected a value > 0");
  }
  return parsed;
}

u32 u32_or(const char* name, u32 def, u32 min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  // strtoul accepts "-1" by wrapping; reject any minus sign up front.
  for (const char* p = v; *p != '\0'; ++p) {
    if (*p == '-') fail(name, v, "expected a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || !fully_consumed(end)) {
    fail(name, v, "expected a non-negative integer");
  }
  if (errno == ERANGE || parsed > std::numeric_limits<u32>::max()) {
    fail(name, v, "value overflows a 32-bit unsigned integer");
  }
  if (parsed < min_value) {
    fail(name, v, "expected a value >= " + std::to_string(min_value));
  }
  return static_cast<u32>(parsed);
}

}  // namespace mlpo::env
