// Lightweight statistics helpers used by telemetry and the benchmark
// harnesses: Welford running moments, percentile extraction, and fixed-width
// histograms for throughput traces (e.g. Fig. 5's per-subgroup series).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(f64 x);
  void merge(const RunningStats& other);
  void reset();

  u64 count() const { return n_; }
  f64 mean() const { return n_ ? mean_ : 0.0; }
  f64 variance() const;  ///< Sample variance (n-1 denominator); 0 if n < 2.
  f64 stddev() const;
  f64 min() const { return n_ ? min_ : 0.0; }
  f64 max() const { return n_ ? max_ : 0.0; }
  f64 sum() const { return n_ ? mean_ * static_cast<f64>(n_) : 0.0; }

 private:
  u64 n_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics.
/// `q` in [0,1]. Copies and sorts; intended for post-run analysis.
f64 percentile(std::vector<f64> samples, f64 q);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets so no sample is silently dropped.
class Histogram {
 public:
  Histogram(f64 lo, f64 hi, std::size_t buckets);

  void add(f64 x);
  u64 total() const { return total_; }
  const std::vector<u64>& buckets() const { return counts_; }
  f64 bucket_lo(std::size_t i) const;
  f64 bucket_hi(std::size_t i) const;

  /// Render a compact ASCII bar chart (one line per bucket), used by bench
  /// binaries to visualise distributions in terminal output.
  std::string ascii(std::size_t max_width = 50) const;

 private:
  f64 lo_, hi_, width_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

}  // namespace mlpo
