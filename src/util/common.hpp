// Common scalar typedefs and byte-size constants shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>

// The tree relies on C++20 (std::span in util/json.hpp and
// tiers/storage_tier.hpp, defaulted operator==). Fail here with one message
// instead of a template-error cascade under an older -std flag. MSVC keeps
// __cplusplus at 199711L unless /Zc:__cplusplus is set, so check _MSVC_LANG.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "mlpo requires C++20: compile with /std:c++20"
#endif
#elif __cplusplus < 202002L
#error "mlpo requires C++20: compile with -std=c++20 (CMake sets this; do not override CMAKE_CXX_STANDARD below 20)"
#endif

namespace mlpo {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

inline constexpr u64 KiB = 1024ULL;
inline constexpr u64 MiB = 1024ULL * KiB;
inline constexpr u64 GiB = 1024ULL * MiB;

// Bandwidths in the paper are decimal GB/s; keep a separate constant so the
// two unit families never get mixed silently.
inline constexpr f64 GB = 1e9;

/// Bytes per parameter of the FP32 optimizer state held on storage tiers:
/// master parameters + momentum + variance (gradients are handled separately;
/// see core/offload_engine).
inline constexpr u64 kOptimStateBytesPerParam = 12;

/// Bytes per parameter when FP32 gradients are bundled with the optimizer
/// state, as DeepSpeed ZeRO-3 does during its update-phase fetches.
inline constexpr u64 kOptimStateWithGradBytesPerParam = 16;

inline constexpr u64 kFp16Bytes = 2;
inline constexpr u64 kFp32Bytes = 4;

}  // namespace mlpo
