#include "util/work_stealing_pool.hpp"

#include <algorithm>
#include <chrono>

namespace mlpo {

namespace {
// Which deque the current thread owns, when it is a pool worker. The pool
// pointer disambiguates nested pools (an engine's pool worker submitting
// into another pool must not claim a deque index there).
thread_local const WorkStealingPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;
}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  threads = std::max<std::size_t>(2, threads);
  deques_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    MutexLock lock(park_mutex_);
    stopping_ = true;
  }
  park_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

f64 WorkStealingPool::idle_seconds() const {
  MutexLock lock(park_mutex_);
  return idle_seconds_;
}

bool WorkStealingPool::enqueue(std::function<void()> task) {
  // A worker pushes to its own deque (depth-first locality: the node it
  // just released runs next on this worker unless stolen); outside
  // threads — the engine thread building the graph, IO dispatch threads
  // completing deferred nodes — spread round-robin.
  const std::size_t target =
      tls_pool == this
          ? tls_worker
          : next_deque_.fetch_add(1, std::memory_order_relaxed) %
                deques_.size();
  {
    // stopping_ check, deque push, and queued_ bump form one critical
    // section under park_mutex_ (deque mutex nested inside): a task is
    // either visibly queued before the destructor flips stopping_ — and
    // then drained by the exit condition below — or rejected outright.
    MutexLock lock(park_mutex_);
    if (stopping_) return false;
    {
      WorkerDeque& d = *deques_[target];
      MutexLock dlock(d.mutex);
      d.tasks.push_back(std::move(task));
    }
    ++queued_;
  }
  park_cv_.notify_one();
  return true;
}

std::optional<std::function<void()>> WorkStealingPool::take(
    std::size_t self) {
  std::optional<std::function<void()>> task;
  bool stolen = false;
  {
    WorkerDeque& own = *deques_[self];
    MutexLock dlock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (!task) {
    // Steal scan: victims in index order starting after self; take the
    // *back* of the victim's deque, the end its owner touches last.
    for (std::size_t i = 1; i < deques_.size() && !task; ++i) {
      WorkerDeque& victim = *deques_[(self + i) % deques_.size()];
      MutexLock dlock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (task) {
    if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(park_mutex_);
    // queued_ lags the deque pops by this decrement; a worker that races
    // the gap sees a phantom positive count, scans, finds nothing, and
    // parks — never the reverse (a task hidden behind a zero count).
    --queued_;
  }
  return task;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    if (auto task = take(self)) {
      (*task)();
      continue;
    }
    MutexLock lock(park_mutex_);
    if (queued_ == 0 && !stopping_) {
      const auto park_start = std::chrono::steady_clock::now();
      while (queued_ == 0 && !stopping_) park_cv_.wait(lock);
      idle_seconds_ +=
          std::chrono::duration<f64>(std::chrono::steady_clock::now() -
                                     park_start)
              .count();
    }
    // Drain-then-exit: only an empty pool lets a worker leave, so every
    // accepted task's future stays redeemable (ThreadPool's contract).
    if (queued_ == 0 && stopping_) return;
  }
}

}  // namespace mlpo
