#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/mutex.hpp"

namespace mlpo {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("MLPO_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
Mutex g_output_mutex;  // serializes whole lines onto stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_output_mutex);
  std::fprintf(stderr, "[mlpo %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace mlpo
