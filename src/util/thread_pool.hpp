// Fixed-size worker pool used for CPU update kernels and async I/O engines.
//
// Two entry points:
//   * submit()       — enqueue an arbitrary task, get a std::future.
//   * parallel_for() — block-partition an index range across the workers and
//                      wait for completion (the shape of every Adam/convert
//                      kernel in this library).
//
// Shutdown contract: the destructor sets stopping_ under the lock, wakes
// every worker, and joins. Workers keep draining queued tasks after
// stopping_ flips — only an *empty* queue lets a worker exit — so a task
// submitted before the destructor started still runs, and the future
// returned for it stays redeemable. submit() racing the destructor throws
// instead of enqueueing work nobody will execute.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result. Throws if the pool is
  /// shutting down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Non-throwing submit: returns nullopt instead of throwing when the
  /// pool is already stopping. For shutdown paths that legitimately race
  /// the destructor (e.g. a graph executor unwinding a cancelled graph
  /// while its pool is being torn down) — the caller must be prepared to
  /// run the task inline or drop it when nullopt comes back.
  template <typename F>
  auto try_submit(F&& fn)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) return std::nullopt;
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(begin, end) over contiguous chunks of [0, n) in parallel and wait.
  /// Chunk count equals pool size; remainder spread over leading chunks.
  /// The calling thread also executes one chunk, so a pool of K threads gives
  /// K+1-way parallelism for this call.
  ///
  /// Ranges below `min_parallel` run inline on the calling thread: for the
  /// element-wise kernels this pool serves, dispatch overhead exceeds the
  /// work itself well past 10^4 elements, and in scaled-time emulation that
  /// overhead would be multiplied into phantom virtual-time charges.
  void parallel_for(u64 n, const std::function<void(u64, u64)>& fn,
                    u64 min_parallel = 64 * 1024);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ MLPO_GUARDED_BY(mutex_);
  bool stopping_ MLPO_GUARDED_BY(mutex_) = false;
};

}  // namespace mlpo
