#include "util/key_escape.hpp"

#include <stdexcept>

namespace mlpo {

namespace {

constexpr char kHex[] = "0123456789ABCDEF";

bool passthrough(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string escape_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    if (passthrough(c)) {
      out.push_back(c);
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xF]);
    }
  }
  return out;
}

std::string unescape_key(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      throw std::invalid_argument("unescape_key: truncated escape");
    }
    const int hi = hex_value(escaped[i + 1]);
    const int lo = hex_value(escaped[i + 2]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("unescape_key: malformed escape");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace mlpo
