#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mlpo {

void RunningStats::add(f64 x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const f64 delta = x - mean_;
  mean_ += delta / static_cast<f64>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const f64 na = static_cast<f64>(n_);
  const f64 nb = static_cast<f64>(other.n_);
  const f64 delta = other.mean_ - mean_;
  const f64 total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

f64 RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<f64>(n_ - 1) : 0.0;
}

f64 RunningStats::stddev() const { return std::sqrt(variance()); }

f64 percentile(std::vector<f64> samples, f64 q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of range");
  std::sort(samples.begin(), samples.end());
  const f64 idx = q * static_cast<f64>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const f64 frac = idx - static_cast<f64>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

namespace {

// Validation must run before the member initializers: width_ divides by
// `buckets`, so the bad-argument check has to precede that computation, not
// follow it in the constructor body.
std::size_t validated_histogram_buckets(f64 lo, f64 hi, std::size_t buckets) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
  return buckets;
}

}  // namespace

Histogram::Histogram(f64 lo, f64 hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) /
             static_cast<f64>(validated_histogram_buckets(lo, hi, buckets))),
      counts_(buckets, 0) {}

void Histogram::add(f64 x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

f64 Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<f64>(i);
}

f64 Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<f64>(i + 1);
}

std::string Histogram::ascii(std::size_t max_width) const {
  const u64 peak = counts_.empty()
      ? 0
      : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = peak
        ? static_cast<std::size_t>(static_cast<f64>(counts_[i]) /
                                   static_cast<f64>(peak) *
                                   static_cast<f64>(max_width))
        : 0;
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %6llu ",
                  bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace mlpo
