// Constant-time bin-packed suballocator over one contiguous slab.
//
// The allocator manages offsets only — it never touches memory. It carves a
// fixed capacity into granule-sized pages and keeps free runs of pages in
// size-segregated free lists (one doubly-linked list per power-of-two size
// class, plus a 32-bit occupancy mask). allocate() and release() are O(1):
// class selection is a bitmask scan, list surgery is intrusive, and
// neighbour coalescing uses boundary tags (per-page start/end markers)
// instead of any ordered container. This is the allocation discipline
// DeepNVMe-style engines use for pinned O_DIRECT slabs: a hard capacity,
// no hidden growth, and no per-request heap traffic.
//
// Fragmentation contract: a request for n pages is served from the first
// non-empty class whose every run is guaranteed to fit (ceil-log2 good
// fit), with an O(1) peek at the head of the floor class before giving up.
// Internal waste per allocation is bounded by one granule (size rounding);
// external fragmentation is bounded by the good-fit policy and full
// neighbour coalescing on every release.
//
// Thread safety: none. Callers (BufferPool) hold their own lock; keeping
// the allocator single-threaded keeps it trivially exception-free on the
// hot path.
#pragma once

#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class OffsetAllocator {
 public:
  static constexpr u64 kInvalidOffset = ~u64{0};
  static constexpr u32 kNumClasses = 32;

  /// One reservation. `bytes` is the granule-rounded size actually held;
  /// pass the struct back unmodified to release().
  struct Allocation {
    u64 offset = kInvalidOffset;
    u64 bytes = 0;
    bool valid() const { return offset != kInvalidOffset; }
  };

  /// Point-in-time storage report (diagnostics / fragmentation tests).
  struct Report {
    u64 capacity_bytes = 0;
    u64 free_bytes = 0;
    u64 largest_free_bytes = 0;
    u64 free_runs = 0;
  };

  /// Capacity is rounded down to a whole number of granules (at least one).
  /// The granule is both the allocation quantum and the alignment every
  /// returned offset is a multiple of — 4096 matches the O_DIRECT contract.
  explicit OffsetAllocator(u64 capacity_bytes, u64 granule_bytes = 4096);

  /// Reserve at least `bytes` (zero rounds up to one granule). Returns an
  /// invalid Allocation when no suitable free run exists; never throws on
  /// this path.
  Allocation allocate(u64 bytes);

  /// Return a reservation. Coalesces with free neighbours in O(1). Throws
  /// std::logic_error on double-free or an offset that was never handed
  /// out (boundary tags make both detectable).
  void release(const Allocation& allocation);

  u64 capacity_bytes() const { return static_cast<u64>(pages_) * granule_; }
  u64 granule_bytes() const { return granule_; }
  u64 free_bytes() const { return static_cast<u64>(free_pages_) * granule_; }
  Report report() const;

 private:
  static constexpr u32 kNone = ~u32{0};

  /// Free-run node. Lives in node storage (`nodes_`), linked into the
  /// per-class list for floor_log2(len).
  struct Node {
    u32 start = 0;
    u32 len = 0;
    u32 prev = kNone;
    u32 next = kNone;
  };

  u32 pages_for(u64 bytes) const;
  static u32 floor_class(u32 pages);
  static u32 ceil_class(u32 pages);

  u32 new_node(u32 start, u32 len);
  void recycle_node(u32 node);
  void push_run(u32 start, u32 len);
  void unlink_run(u32 node);
  /// Clears the boundary tags of a run that is leaving the free state.
  void clear_tags(u32 start, u32 len);

  u64 granule_;
  u32 pages_;
  u32 free_pages_ = 0;

  /// Per-class list heads + occupancy mask (bit k set ⇔ class k non-empty).
  u32 heads_[kNumClasses];
  u32 class_mask_ = 0;

  std::vector<Node> nodes_;
  std::vector<u32> node_freelist_;

  /// Boundary tags. start_node_[p] = node id when a free run starts at page
  /// p; end_start_[p] = start page of the free run ending at page p. Both
  /// kNone otherwise (including every allocated or interior page).
  std::vector<u32> start_node_;
  std::vector<u32> end_start_;
};

}  // namespace mlpo
