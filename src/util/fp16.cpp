#include "util/fp16.hpp"

#include <bit>
#include <chrono>
#include <vector>

namespace mlpo {

namespace {

// Decode one half via bit manipulation. Subnormals are normalised by
// shifting the mantissa; this is exact because every binary16 value is
// representable in binary32.
inline f32 decode_bits(u16 h) {
  const u32 sign = static_cast<u32>(h & 0x8000u) << 16;
  const u32 exp = (h >> 10) & 0x1Fu;
  const u32 man = h & 0x3FFu;

  u32 out;
  if (exp == 0) {
    if (man == 0) {
      out = sign;  // +/- zero
    } else {
      // Subnormal: value = man * 2^-24. Normalise.
      u32 e = 0;
      u32 m = man;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFu;
      out = sign | ((127 - 15 - e + 1) << 23) | (m << 13);
    }
  } else if (exp == 0x1Fu) {
    out = sign | 0x7F800000u | (man << 13);  // inf / nan (payload preserved)
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (man << 13);
  }
  return std::bit_cast<f32>(out);
}

// Encode one float to half with round-to-nearest-even.
inline u16 encode_bits(f32 value) {
  const u32 f = std::bit_cast<u32>(value);
  const u32 sign = (f >> 16) & 0x8000u;
  const u32 exp = (f >> 23) & 0xFFu;
  const u32 man = f & 0x7FFFFFu;

  if (exp == 0xFFu) {
    // Inf or NaN. Keep a non-zero mantissa for NaN (quiet bit set).
    const u16 nan_man = man ? static_cast<u16>((man >> 13) | 0x200u) : 0;
    return static_cast<u16>(sign | 0x7C00u | nan_man);
  }

  // Re-bias exponent: binary32 bias 127 -> binary16 bias 15.
  const i32 e = static_cast<i32>(exp) - 127 + 15;
  if (e >= 0x1F) {
    return static_cast<u16>(sign | 0x7C00u);  // overflow -> inf
  }
  if (e <= 0) {
    // Subnormal half (or underflow to zero). The implicit leading 1 of the
    // binary32 mantissa becomes explicit, then shift right by (1 - e).
    if (e < -10) return static_cast<u16>(sign);  // too small, round to zero
    const u32 full = man | 0x800000u;
    const u32 shift = static_cast<u32>(14 - e);  // 13 + (1 - e)
    u32 half_man = full >> shift;
    // Round to nearest even using the bits shifted out.
    const u32 rem = full & ((1u << shift) - 1);
    const u32 halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_man & 1u))) ++half_man;
    return static_cast<u16>(sign | half_man);
  }

  u32 half = sign | (static_cast<u32>(e) << 10) | (man >> 13);
  // Round to nearest even on the 13 dropped mantissa bits; carry may
  // propagate into the exponent, which is exactly the desired behaviour
  // (e.g. rounding up to the next binade or to infinity).
  const u32 rem = man & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<u16>(half);
}

}  // namespace

u16 Fp16::encode(f32 value) { return encode_bits(value); }
f32 Fp16::decode(u16 bits) { return decode_bits(bits); }

void fp32_to_fp16(std::span<const f32> src, std::span<u16> dst) {
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = encode_bits(src[i]);
}

void fp16_to_fp32(std::span<const u16> src, std::span<f32> dst) {
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = decode_bits(src[i]);
}

f64 measure_fp16_to_fp32_throughput(u64 elems) {
  std::vector<u16> src(elems);
  std::vector<f32> dst(elems);
  for (u64 i = 0; i < elems; ++i) src[i] = static_cast<u16>(i * 2654435761u);
  const auto t0 = std::chrono::steady_clock::now();
  fp16_to_fp32(src, dst);
  const auto t1 = std::chrono::steady_clock::now();
  const f64 secs = std::chrono::duration<f64>(t1 - t0).count();
  // Throughput counted in FP32 output bytes, matching how the paper quotes
  // its 65 GB/s conversion figure.
  return secs > 0 ? static_cast<f64>(elems * sizeof(f32)) / secs : 0.0;
}

}  // namespace mlpo
