// Software IEEE-754 binary16 ("half") support.
//
// Mixed-precision training keeps two copies of the model: FP16 for the
// forward/backward passes and FP32 master weights for the optimizer. The
// offloading engine therefore needs fast, correct FP16<->FP32 conversion
// kernels (paper §3.2, "delayed in-place mixed-precision gradient
// conversion"). We implement binary16 in software so the library has no
// hardware half-float dependency; the bulk kernels are written so compilers
// auto-vectorise them.
#pragma once

#include <cstring>
#include <span>

#include "util/common.hpp"

namespace mlpo {

/// Bit-level IEEE-754 binary16 value. Round-to-nearest-even on conversion
/// from float; overflow saturates to +/-inf like hardware F16C does.
class Fp16 {
 public:
  Fp16() = default;
  explicit Fp16(f32 value) : bits_(encode(value)) {}

  /// Reinterpret raw bits as a half value.
  static Fp16 from_bits(u16 bits) {
    Fp16 h;
    h.bits_ = bits;
    return h;
  }

  u16 bits() const { return bits_; }
  f32 to_f32() const { return decode(bits_); }

  bool is_nan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  bool is_inf() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) == 0;
  }

  /// Encode a float to binary16 bits (round-to-nearest-even).
  static u16 encode(f32 value);
  /// Decode binary16 bits to float (exact).
  static f32 decode(u16 bits);

 private:
  u16 bits_ = 0;
};

/// Bulk FP32 -> FP16 conversion ("downscale"). dst and src must have equal
/// length.
void fp32_to_fp16(std::span<const f32> src, std::span<u16> dst);

/// Bulk FP16 -> FP32 conversion ("upscale"). dst and src must have equal
/// length.
void fp16_to_fp32(std::span<const u16> src, std::span<f32> dst);

/// In-place FP16 -> FP32 upscale into a caller-provided scratch that aliases
/// the engine's working buffer. Returns the achieved throughput in bytes of
/// FP32 output per second (used to seed the performance model's conversion
/// cost, paper reports ~65 GB/s on Testbed-1).
f64 measure_fp16_to_fp32_throughput(u64 elems);

}  // namespace mlpo
