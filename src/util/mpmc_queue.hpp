// Bounded multi-producer multi-consumer queue (mutex + condvar).
//
// Used as the submission queue of the async I/O engine. Bounded capacity
// provides submission backpressure similar to libaio's io_setup queue depth.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "util/common.hpp"

namespace mlpo {

template <typename T>
class MpmcQueue {
 public:
  /// @param capacity bound on queued items; must be > 0 — a zero-capacity
  ///        queue can never accept a push and would deadlock every producer.
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument(
          "MpmcQueue: capacity must be > 0 (a zero-capacity queue blocks "
          "every push forever)");
    }
  }

  /// Blocks while the queue is full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once closed and
  /// drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wake all waiters; push() fails afterwards, pop() drains the remainder.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mlpo
