// Bounded multi-producer multi-consumer queue (mutex + condvar).
//
// Used as the submission queue of the async I/O engine. Bounded capacity
// provides submission backpressure similar to libaio's io_setup queue depth.
//
// Wakeup discipline: pushers sleep on not_full_, poppers on not_empty_, and
// every notify happens after the critical section that changed the
// predicate closes — a notify inside the lock would only make the woken
// thread immediately block on the mutex, and a notify without the preceding
// locked mutation is the classic missed-wakeup bug. close() must notify
// *both* condvars under the same rule: producers blocked on a full queue
// and consumers blocked on an empty one both re-evaluate against closed_.
#pragma once

#include <deque>
#include <optional>
#include <stdexcept>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

template <typename T>
class MpmcQueue {
 public:
  /// @param capacity bound on queued items; must be > 0 — a zero-capacity
  ///        queue can never accept a push and would deadlock every producer.
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument(
          "MpmcQueue: capacity must be > 0 (a zero-capacity queue blocks "
          "every push forever)");
    }
  }

  /// Blocks while the queue is full. Returns false if the queue was closed.
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once closed and
  /// drained.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) not_empty_.wait(lock);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Wake all waiters; push() fails afterwards, pop() drains the remainder.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ MLPO_GUARDED_BY(mutex_);
  bool closed_ MLPO_GUARDED_BY(mutex_) = false;
};

}  // namespace mlpo
