#include "util/sim_clock.hpp"

#include <stdexcept>
#include <thread>

namespace mlpo {

SimClock::SimClock(f64 time_scale)
    : epoch_(std::chrono::steady_clock::now()), time_scale_(time_scale) {
  if (time_scale <= 0.0) {
    throw std::invalid_argument("SimClock: time_scale must be positive");
  }
}

f64 SimClock::now() const {
  const auto real =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - epoch_);
  return real.count() * time_scale_;
}

void SimClock::sleep_for(f64 virtual_secs) const {
  if (virtual_secs <= 0.0) return;
  sleep_until(now() + virtual_secs);
}

void SimClock::sleep_until(f64 virtual_time) const {
  // Hybrid sleep: OS sleeps can overshoot by hundreds of microseconds
  // (timer slack; observed ~600us on older kernels), which at high time
  // scales would distort virtual durations by whole virtual seconds. Sleep
  // coarse for the bulk of the wait, yield-spin through the oversleep
  // window, and busy-spin the last few microseconds so the wakeup lands
  // within ~1us of the deadline.
  constexpr f64 kYieldWindowRealSecs = 2.5e-3;
  constexpr f64 kBusyWindowRealSecs = 25e-6;
  for (;;) {
    const f64 remaining_real = (virtual_time - now()) / time_scale_;
    if (remaining_real <= 0.0) return;
    if (remaining_real > kYieldWindowRealSecs) {
      std::this_thread::sleep_for(std::chrono::duration<f64>(
          remaining_real - kYieldWindowRealSecs + 0.5e-3));
    } else if (remaining_real > kBusyWindowRealSecs) {
      std::this_thread::yield();
    } else {
      // Busy spin with pause: no syscalls, so short waiters do not storm
      // the scheduler and preempt compute threads.
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
}

}  // namespace mlpo
