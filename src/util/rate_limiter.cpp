#include "util/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>

namespace mlpo {

RateLimiter::RateLimiter(const SimClock& clock, f64 rate) : clock_(&clock) {
  set_rate(rate);
}

f64 RateLimiter::reserve(u64 bytes) {
  MutexLock lock(mutex_);
  const f64 now = clock_->now();
  const f64 start = std::max(now, next_free_);
  next_free_ = start + static_cast<f64>(bytes) / rate_;
  return next_free_;
}

f64 RateLimiter::acquire(u64 bytes) {
  const f64 done = reserve(bytes);
  clock_->sleep_until(done);
  return done;
}

f64 RateLimiter::rate() const {
  MutexLock lock(mutex_);
  return rate_;
}

void RateLimiter::set_rate(f64 rate) {
  if (rate <= 0.0) throw std::invalid_argument("RateLimiter: rate must be > 0");
  MutexLock lock(mutex_);
  rate_ = rate;
}

f64 RateLimiter::busy_until() const {
  MutexLock lock(mutex_);
  return next_free_;
}

}  // namespace mlpo
