// Clang Thread Safety Analysis annotation macros.
//
// Every lock-holding class in the tree declares its locking discipline with
// these macros so `-Wthread-safety -Wthread-safety-beta -Werror` (the
// `thread-safety` CMake preset / MLPO_THREAD_SAFETY option) turns a
// forgotten lock, a lock-order confusion, or an unguarded field access into
// a compile error instead of a TSan lottery ticket. On compilers without
// the attributes (GCC, MSVC) every macro expands to nothing, so the
// annotated tree builds everywhere and the analysis runs wherever Clang
// does.
//
// Conventions (see README "Correctness tooling"):
//   * lockable members are mlpo::Mutex / mlpo::SharedMutex (util/mutex.hpp),
//     never raw std::mutex — the std types carry no capability attributes,
//     so the analysis cannot see them;
//   * every field whose access requires a lock is MLPO_GUARDED_BY(mutex_);
//   * every private method that assumes the caller holds a lock is named
//     *_locked() and annotated MLPO_REQUIRES(mutex_);
//   * MLPO_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
//     comment explaining why the analysis cannot express the invariant.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define MLPO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MLPO_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. "mutex").
#define MLPO_CAPABILITY(x) MLPO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define MLPO_SCOPED_CAPABILITY MLPO_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding `x`.
#define MLPO_GUARDED_BY(x) MLPO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define MLPO_PT_GUARDED_BY(x) MLPO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Document lock-ordering edges (acquiring this before/after those).
#define MLPO_ACQUIRED_BEFORE(...) \
  MLPO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MLPO_ACQUIRED_AFTER(...) \
  MLPO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the caller to hold the capability (exclusively /
/// shared).
#define MLPO_REQUIRES(...) \
  MLPO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MLPO_REQUIRES_SHARED(...) \
  MLPO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define MLPO_ACQUIRE(...) \
  MLPO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MLPO_ACQUIRE_SHARED(...) \
  MLPO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define MLPO_RELEASE(...) \
  MLPO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MLPO_RELEASE_SHARED(...) \
  MLPO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MLPO_RELEASE_GENERIC(...) \
  MLPO_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define MLPO_TRY_ACQUIRE(...) \
  MLPO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MLPO_TRY_ACQUIRE_SHARED(...) \
  MLPO_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// guard for re-entrant call paths).
#define MLPO_EXCLUDES(...) MLPO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function asserts (at runtime) that the capability is held.
#define MLPO_ASSERT_CAPABILITY(x) \
  MLPO_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability (lock accessors).
#define MLPO_RETURN_CAPABILITY(x) MLPO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Requires a comment
/// justifying why the invariant is inexpressible.
#define MLPO_NO_THREAD_SAFETY_ANALYSIS \
  MLPO_THREAD_ANNOTATION(no_thread_safety_analysis)
