#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace mlpo::json {

const Value& Value::at(const std::string& key) const {
  return as_object().at(key);
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

f64 Value::number_or(const std::string& key, f64 fallback) const {
  return contains(key) && at(key).is_number() ? at(key).as_number() : fallback;
}

i64 Value::int_or(const std::string& key, i64 fallback) const {
  return contains(key) && at(key).is_number() ? at(key).as_int() : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  return contains(key) && at(key).is_bool() ? at(key).as_bool() : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  return contains(key) && at(key).is_string() ? at(key).as_string() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) { throw ParseError(msg, pos_); }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = advance();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  std::string parse_unicode_escape() {
    u32 code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = advance();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<u32>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<u32>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<u32>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    // Encode the BMP code point as UTF-8. Surrogate pairs are not needed for
    // configuration files; reject them explicitly rather than mis-encode.
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs unsupported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    f64 value = 0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || first == last) {
      pos_ = start;
      fail("invalid number");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(f64 d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<i64>(d));
  } else {
    std::ostringstream os;
    os.precision(17);
    os << d;
    out += os.str();
  }
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  const std::string pad = indent > 0 ? std::string(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1), ' ')
      : "";
  const std::string close_pad = indent > 0 ? std::string(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ')
      : "";
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      dump_value(arr[i], out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, val] : obj) {
      out += pad;
      dump_string(key, out);
      out += kv_sep;
      dump_value(val, out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace mlpo::json
