#include "util/thread_pool.hpp"

#include <algorithm>

namespace mlpo {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // only reachable when stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(u64 n, const std::function<void(u64, u64)>& fn,
                              u64 min_parallel) {
  if (n == 0) return;
  if (n < min_parallel) {
    fn(0, n);
    return;
  }
  const u64 parts = std::min<u64>(n, workers_.size() + 1);
  const u64 base = n / parts;
  const u64 rem = n % parts;

  std::vector<std::future<void>> futs;
  futs.reserve(parts - 1);
  u64 begin = 0;
  u64 first_end = 0;
  for (u64 p = 0; p < parts; ++p) {
    const u64 len = base + (p < rem ? 1 : 0);
    const u64 end = begin + len;
    if (p == 0) {
      first_end = end;  // reserved for the calling thread
    } else {
      futs.push_back(submit([=, &fn] { fn(begin, end); }));
    }
    begin = end;
  }
  fn(0, first_end);
  for (auto& f : futs) f.get();
}

}  // namespace mlpo
