// Annotated mutex / condition-variable wrappers.
//
// Thin, zero-overhead shells over the std synchronization primitives whose
// only job is to carry Clang Thread Safety capability attributes
// (util/thread_annotations.hpp): std::mutex itself is invisible to the
// analysis, so every lock-holding class in the tree uses these instead.
//
// Condition-variable waits deliberately take no predicate overload: a
// predicate lambda is analysed as a separate function that does not hold
// the capability, so guarded-field reads inside it would need an escape
// hatch. Callers write the loop explicitly —
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);   // ready_ is MLPO_GUARDED_BY(mutex_)
//
// — which the analysis checks end to end.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace mlpo {

/// Exclusive mutex (annotated std::mutex).
class MLPO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MLPO_ACQUIRE() { mu_.lock(); }
  void unlock() MLPO_RELEASE() { mu_.unlock(); }
  bool try_lock() MLPO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader/writer mutex (annotated std::shared_mutex).
class MLPO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MLPO_ACQUIRE() { mu_.lock(); }
  void unlock() MLPO_RELEASE() { mu_.unlock(); }
  void lock_shared() MLPO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MLPO_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII critical section over a Mutex. Also the handle CondVar waits on
/// (it wraps a std::unique_lock so the native condvar can release and
/// reacquire during the wait).
class MLPO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MLPO_ACQUIRE(mu) : lock_(mu.mu_) {}
  // User-provided (not `= default`) so the release annotation sits on a
  // plain declarator; the wrapped unique_lock does the actual unlock.
  ~MutexLock() MLPO_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) section over a SharedMutex.
class MLPO_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) MLPO_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() MLPO_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) section over a SharedMutex.
class MLPO_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) MLPO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() MLPO_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to MutexLock. From the analysis's perspective
/// wait() neither releases nor reacquires the capability — which is exactly
/// the caller-visible contract (the lock is held again when wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mlpo
