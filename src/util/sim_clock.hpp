// Virtual time base for scaled-time emulation.
//
// The paper's experiments run iterations of 100-600 wall-clock seconds
// against real NVMe/PFS hardware. This library reproduces those experiments
// by expressing every modelled duration (tier transfers, GPU compute, CPU
// update cost beyond the real kernel time) in *virtual seconds* and mapping
// them onto real time through a configurable `time_scale` (virtual seconds
// per real second). All threads, locks and queues remain native, so overlap
// and contention behave exactly as they would at scale — only compressed.
//
// With time_scale == 1 the clock degrades gracefully to wall-clock time and
// the library behaves as a genuine offloading engine.
#pragma once

#include <chrono>

#include "util/common.hpp"

namespace mlpo {

class SimClock {
 public:
  /// @param time_scale virtual seconds that elapse per real second. Must be
  ///        > 0. Typical emulation value: 2000 (a 600 s paper iteration runs
  ///        in 0.3 s).
  explicit SimClock(f64 time_scale = 1.0);

  f64 time_scale() const { return time_scale_; }

  /// Virtual seconds elapsed since this clock was constructed.
  f64 now() const;

  /// Block the calling thread for `virtual_secs` of virtual time.
  void sleep_for(f64 virtual_secs) const;

  /// Block until the virtual clock reads at least `virtual_time`.
  void sleep_until(f64 virtual_time) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  f64 time_scale_;
};

/// Scoped virtual-time stopwatch.
class SimTimer {
 public:
  explicit SimTimer(const SimClock& clock) : clock_(&clock), start_(clock.now()) {}
  f64 elapsed() const { return clock_->now() - start_; }
  void reset() { start_ = clock_->now(); }

 private:
  const SimClock* clock_;
  f64 start_;
};

}  // namespace mlpo
