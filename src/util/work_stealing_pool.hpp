// Work-stealing extension of the fixed-size ThreadPool, built for the
// graph executor's irregular task mix (many short IO-submission nodes, a
// few long compute nodes).
//
// Layout: one deque per worker, each under its own small Mutex. A worker
// pops its *own* deque from the front (FIFO for locality with the
// submission order, which the executor sorts by update-order-policy rank)
// and steals from the *back* of a victim's deque when its own runs dry —
// the classic Chase-Lev discipline, implemented with plain annotated
// mutexes instead of lock-free buffers because graph nodes are coarse
// (microseconds to milliseconds) and the PR-6 thread-safety analysis must
// see every acquisition.
//
// Parking: a single global Mutex + CondVar guards the total queued count
// and the stopping flag. Submissions check stopping_ and bump the count
// under that lock, so the shutdown contract is identical to ThreadPool's:
// every task accepted before stop is drained before the workers exit, and
// its future stays redeemable. Lock order is park_mutex_ -> deque mutex
// (submission); take() acquires them strictly in sequence, never nested
// the other way, so the pair cannot deadlock.
//
// Telemetry: tasks_stolen() counts cross-deque pops (how often the graph's
// natural imbalance exercised the steal path) and idle_seconds() sums the
// real time workers spent parked — both feed IterationReport's
// graph-executor counters.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

class WorkStealingPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 2 —
  /// a one-worker pool can never steal and would serialize the graph).
  explicit WorkStealingPool(std::size_t threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result. Throws if the pool
  /// is shutting down (same contract as ThreadPool::submit).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    if (!enqueue([task] { (*task)(); })) {
      throw std::runtime_error("WorkStealingPool: submit after stop");
    }
    return fut;
  }

  /// Non-throwing submit: nullopt instead of a throw when racing the
  /// destructor. The executor's shutdown path uses this and runs the task
  /// inline on rejection.
  template <typename F>
  auto try_submit(F&& fn)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    if (!enqueue([task] { (*task)(); })) return std::nullopt;
    return fut;
  }

  /// Cross-deque pops since construction (cumulative).
  u64 tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }
  /// Real (not virtual) seconds workers have spent parked, cumulative
  /// across all workers. Callers take deltas around a region of interest.
  f64 idle_seconds() const;

 private:
  struct WorkerDeque {
    Mutex mutex;
    std::deque<std::function<void()>> tasks MLPO_GUARDED_BY(mutex);
  };

  /// Push onto a deque (the submitting worker's own, or round-robin from
  /// outside threads). Returns false when the pool is stopping.
  bool enqueue(std::function<void()> task);
  /// Pop own front, else steal a victim's back. Decrements the queued
  /// count on success.
  std::optional<std::function<void()>> take(std::size_t self);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  mutable Mutex park_mutex_;
  CondVar park_cv_;
  std::size_t queued_ MLPO_GUARDED_BY(park_mutex_) = 0;
  bool stopping_ MLPO_GUARDED_BY(park_mutex_) = false;
  f64 idle_seconds_ MLPO_GUARDED_BY(park_mutex_) = 0;

  std::atomic<std::size_t> next_deque_{0};
  std::atomic<u64> tasks_stolen_{0};
};

}  // namespace mlpo
