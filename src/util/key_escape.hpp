// Collision-free escaping of object keys into single file names.
//
// The naive '/' → '_' substitution maps distinct keys ("a/b" vs "a_b") to
// the same file — a silent aliasing bug for any tier that stores one file
// per object. escape_key() is injective: [A-Za-z0-9_-] pass through and
// every other byte (including '%', '.', '/' and non-printables) becomes
// "%XX" uppercase-hex, so two distinct keys can never share an escaped
// form and the result contains no path separators or special names
// ("." / ".." / dotfiles all escape their dots).
#pragma once

#include <string>
#include <string_view>

namespace mlpo {

/// Injective key → file-name mapping (percent-escaping).
std::string escape_key(std::string_view key);

/// Inverse of escape_key(). Throws std::invalid_argument on malformed
/// escapes (truncated or non-hex "%XX").
std::string unescape_key(std::string_view escaped);

}  // namespace mlpo
