#include "util/aligned_buffer.hpp"

#include <sys/mman.h>

#include <cstring>
#include <new>
#include <stdexcept>

namespace mlpo {

AlignedBuffer::AlignedBuffer(std::size_t size, std::size_t alignment)
    : size_(size) {
  if (size == 0) return;
  // Round the allocation up to the alignment so aligned_alloc's size
  // requirement is always met.
  const std::size_t alloc = (size + alignment - 1) / alignment * alignment;
  data_ = static_cast<u8*>(std::aligned_alloc(alignment, alloc));
  if (data_ == nullptr) throw std::bad_alloc();
  std::memset(data_, 0, alloc);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

namespace {

std::size_t round_up(std::size_t bytes, std::size_t granule) {
  return (bytes + granule - 1) / granule * granule;
}

BufferPool::Options checked(BufferPool::Options o) {
  if (o.granule == 0) {
    throw std::invalid_argument("BufferPool: granule must be positive");
  }
  if (o.slab_bytes == 0) {
    throw std::invalid_argument("BufferPool: need a non-empty slab");
  }
  o.slab_bytes = round_up(o.slab_bytes, o.granule);
  return o;
}

BufferPool::Options legacy_options(std::size_t count, std::size_t size) {
  if (count == 0) {
    throw std::invalid_argument("BufferPool: need at least one buffer");
  }
  BufferPool::Options o;
  o.slab_bytes = count * round_up(size == 0 ? 1 : size, o.granule);
  return o;
}

}  // namespace

BufferPool::BufferPool(const Options& options)
    : BufferPool(checked(options), std::size_t{0}) {}

BufferPool::BufferPool(std::size_t buffer_count, std::size_t buffer_size)
    : BufferPool(legacy_options(buffer_count, buffer_size),
                 buffer_size == 0 ? 1 : buffer_size) {}

// Delegation target shared by both public constructors; `options` is
// already checked/rounded, default_lease == 0 means one granule.
BufferPool::BufferPool(Options options, std::size_t default_lease)
    : granule_(options.granule),
      default_lease_bytes_(default_lease == 0 ? options.granule
                                              : default_lease),
      capacity_(options.slab_bytes / round_up(default_lease_bytes_, granule_)),
      slab_(options.slab_bytes, granule_),
      allocator_(options.slab_bytes, granule_) {
  if (options.pin) {
    // Best effort: RLIMIT_MEMLOCK commonly forbids this inside containers,
    // and emulation does not need residency guarantees.
    pinned_ = ::mlock(slab_.data(), slab_.size()) == 0;
  }
}

BufferPool::~BufferPool() {
  if (pinned_) ::munlock(slab_.data(), slab_.size());
}

void BufferPool::Lease::release() {
  if (pool_ != nullptr) {
    if (alloc_.valid()) {
      pool_->put_back(alloc_);
    } else {
      pool_->note_heap_release();
      heap_ = AlignedBuffer();
    }
    pool_ = nullptr;
  }
  data_ = nullptr;
  size_ = 0;
}

BufferPool::Lease BufferPool::acquire(std::size_t bytes) {
  const std::size_t want = bytes == 0 ? 1 : bytes;
  if (want > slab_.size()) {
    {
      MutexLock lock(mutex_);
      ++stats_.acquires;
      ++stats_.heap_fallbacks;
    }
    return Lease(this, AlignedBuffer(want, granule_));
  }
  MutexLock lock(mutex_);
  ++stats_.acquires;
  for (;;) {
    const auto alloc = allocator_.allocate(want);
    if (alloc.valid()) {
      stats_.bytes_in_use += alloc.bytes;
      if (stats_.bytes_in_use > stats_.peak_bytes_in_use) {
        stats_.peak_bytes_in_use = stats_.bytes_in_use;
      }
      return Lease(this, alloc, slab_.data() + alloc.offset, want);
    }
    ++stats_.blocked_waits;
    cv_.wait(lock);
  }
}

BufferPool::Lease BufferPool::try_acquire(std::size_t bytes) {
  const std::size_t want = bytes == 0 ? 1 : bytes;
  if (want > slab_.size()) return Lease{};
  MutexLock lock(mutex_);
  const auto alloc = allocator_.allocate(want);
  if (!alloc.valid()) return Lease{};
  ++stats_.acquires;
  stats_.bytes_in_use += alloc.bytes;
  if (stats_.bytes_in_use > stats_.peak_bytes_in_use) {
    stats_.peak_bytes_in_use = stats_.bytes_in_use;
  }
  return Lease(this, alloc, slab_.data() + alloc.offset, want);
}

std::size_t BufferPool::available() const {
  const std::size_t slot = round_up(default_lease_bytes_, granule_);
  MutexLock lock(mutex_);
  return allocator_.free_bytes() / slot;
}

std::size_t BufferPool::free_bytes() const {
  MutexLock lock(mutex_);
  return allocator_.free_bytes();
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void BufferPool::reset_stats() {
  MutexLock lock(mutex_);
  const u64 in_use = stats_.bytes_in_use;
  stats_ = Stats{};
  stats_.bytes_in_use = in_use;
  stats_.peak_bytes_in_use = in_use;
}

void BufferPool::put_back(const OffsetAllocator::Allocation& alloc) {
  {
    MutexLock lock(mutex_);
    allocator_.release(alloc);
    ++stats_.releases;
    stats_.bytes_in_use -= alloc.bytes;
  }
  // Any waiter might now fit (sizes differ), so wake them all.
  cv_.notify_all();
}

void BufferPool::note_heap_release() {
  MutexLock lock(mutex_);
  ++stats_.releases;
}

}  // namespace mlpo
