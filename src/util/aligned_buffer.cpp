#include "util/aligned_buffer.hpp"

#include <cstring>
#include <new>
#include <stdexcept>

namespace mlpo {

AlignedBuffer::AlignedBuffer(std::size_t size, std::size_t alignment)
    : size_(size) {
  if (size == 0) return;
  // Round the allocation up to the alignment so aligned_alloc's size
  // requirement is always met.
  const std::size_t alloc = (size + alignment - 1) / alignment * alignment;
  data_ = static_cast<u8*>(std::aligned_alloc(alignment, alloc));
  if (data_ == nullptr) throw std::bad_alloc();
  std::memset(data_, 0, alloc);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

BufferPool::BufferPool(std::size_t buffer_count, std::size_t buffer_size)
    : capacity_(buffer_count), buffer_size_(buffer_size) {
  if (buffer_count == 0) {
    throw std::invalid_argument("BufferPool: need at least one buffer");
  }
  free_.reserve(buffer_count);
  for (std::size_t i = 0; i < buffer_count; ++i) {
    free_.emplace_back(buffer_size);
  }
}

void BufferPool::Lease::release() {
  if (pool_ != nullptr) {
    pool_->put_back(std::move(buf_));
    pool_ = nullptr;
  }
}

BufferPool::Lease BufferPool::acquire() {
  MutexLock lock(mutex_);
  while (free_.empty()) cv_.wait(lock);
  AlignedBuffer buf = std::move(free_.back());
  free_.pop_back();
  return Lease(this, std::move(buf));
}

BufferPool::Lease BufferPool::try_acquire() {
  MutexLock lock(mutex_);
  if (free_.empty()) return Lease{};
  AlignedBuffer buf = std::move(free_.back());
  free_.pop_back();
  return Lease(this, std::move(buf));
}

std::size_t BufferPool::available() const {
  MutexLock lock(mutex_);
  return free_.size();
}

void BufferPool::put_back(AlignedBuffer buf) {
  {
    MutexLock lock(mutex_);
    free_.push_back(std::move(buf));
  }
  cv_.notify_one();
}

}  // namespace mlpo
