// Strict environment-variable parsing for runtime knobs.
//
// The bench harnesses (and anything else steered by MLPO_* variables) must
// fail loudly on a malformed knob: a typo like MLPO_TIME_SCALE=5OO silently
// parsed as 5 (or 0) misconfigures an entire perf run and poisons the
// recorded telemetry. These helpers reject anything that is not a complete,
// in-range numeric literal, naming the variable and the offending value.
#pragma once

#include <stdexcept>
#include <string>

#include "util/common.hpp"

namespace mlpo::env {

/// A knob was set to something unusable. The message always contains the
/// variable name, the raw value, and what was expected.
struct EnvError : std::runtime_error {
  explicit EnvError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Read a floating-point variable. Unset -> `def`. The value must be a
/// complete finite numeric literal, strictly positive when
/// `require_positive`; otherwise EnvError.
f64 f64_or(const char* name, f64 def, bool require_positive = true);

/// Read an unsigned integer variable. Unset -> `def`. The value must be a
/// complete decimal literal with `min_value <= value <= UINT32_MAX`;
/// otherwise EnvError.
u32 u32_or(const char* name, u32 def, u32 min_value = 0);

}  // namespace mlpo::env
