#include "graph/task_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace mlpo {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kFetch: return "fetch";
    case NodeKind::kCompute: return "compute";
    case NodeKind::kGradDeposit: return "grad-deposit";
    case NodeKind::kFlush: return "flush";
    case NodeKind::kCheckpointPrestage: return "checkpoint-prestage";
  }
  return "unknown";
}

u32 TaskGraph::add_node(NodeKind kind, std::string label, u64 order_rank,
                        NodeWork work) {
  Node node;
  node.kind = kind;
  node.label = std::move(label);
  node.order_rank = order_rank;
  node.work = std::move(work);
  nodes_.push_back(std::move(node));
  return static_cast<u32>(nodes_.size() - 1);
}

void TaskGraph::add_edge(u32 from, u32 to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("TaskGraph: edge endpoint out of range (" +
                            std::to_string(from) + " -> " +
                            std::to_string(to) + ", " +
                            std::to_string(nodes_.size()) + " nodes)");
  }
  if (from == to) {
    throw std::logic_error("TaskGraph: self-edge on node '" +
                           nodes_[from].label + "'");
  }
  auto& out = nodes_[from].out;
  if (std::find(out.begin(), out.end(), to) != out.end()) {
    throw std::logic_error("TaskGraph: duplicate edge '" +
                           nodes_[from].label + "' -> '" + nodes_[to].label +
                           "'");
  }
  out.push_back(to);
  ++nodes_[to].in_degree;
}

void TaskGraph::validate() const {
  // Kahn's algorithm: repeatedly peel zero-in-degree nodes; anything left
  // over sits on (or downstream of) a cycle.
  std::vector<u32> pending(nodes_.size());
  std::deque<u32> ready;
  for (u32 id = 0; id < nodes_.size(); ++id) {
    pending[id] = nodes_[id].in_degree;
    if (pending[id] == 0) ready.push_back(id);
  }
  std::size_t released = 0;
  while (!ready.empty()) {
    const u32 id = ready.front();
    ready.pop_front();
    ++released;
    for (const u32 to : nodes_[id].out) {
      if (--pending[to] == 0) ready.push_back(to);
    }
  }
  if (released != nodes_.size()) {
    for (u32 id = 0; id < nodes_.size(); ++id) {
      if (pending[id] != 0) {
        throw std::logic_error("TaskGraph: cycle through node '" +
                               nodes_[id].label + "' (" +
                               std::to_string(nodes_.size() - released) +
                               " nodes unreleasable)");
      }
    }
  }
}

}  // namespace mlpo
