// Explicit per-iteration task graph (ROADMAP item #1).
//
// One training iteration is modelled as a DAG of typed nodes — fetch,
// compute/update, grad-deposit, flush, checkpoint-prestage — with declared
// dependency edges per subgroup, instead of the phase-sequential loop with
// its one-deep prefetch window. The GraphExecutor (graph/graph_executor.hpp)
// topologically schedules ready nodes onto a work-stealing pool; IO nodes
// submit through the IoScheduler and complete asynchronously via
// IoRequest::on_settle, so the scheduler sees the entire frontier of ready
// transfers at once.
//
// Build-time contract: edges are validated as they are added (bounds,
// self-edges, duplicates) and validate() rejects cycles via Kahn's
// algorithm *before* anything executes — a cyclic graph never reaches the
// pool.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class TaskContext;

/// Node types of the iteration DAG. The kind is metadata (telemetry,
/// diagnostics, edge-rule documentation); scheduling treats all kinds
/// uniformly and only dependencies + order_rank decide execution.
enum class NodeKind : u8 {
  kFetch = 0,           ///< tier -> host read of subgroup state
  kCompute,             ///< upscale/convert + CPU-Adam + H2D push
  kGradDeposit,         ///< gradient traffic (D2H or FP32 grad re-read)
  kFlush,               ///< host -> tier write-back of updated state
  kCheckpointPrestage,  ///< copy to a persistent path for snapshotting
};

const char* node_kind_name(NodeKind kind);

/// A node's body. Runs on a pool worker; may call TaskContext::defer() to
/// complete asynchronously (the IO-node pattern) and should poll
/// TaskContext::cancelled() inside long loops.
using NodeWork = std::function<void(TaskContext&)>;

class TaskGraph {
 public:
  struct Node {
    NodeKind kind = NodeKind::kCompute;
    std::string label;
    /// Tie-breaking priority among simultaneously-ready nodes (lower runs
    /// first). Engines derive it from the UpdateOrderPolicy's position, so
    /// the policy steers — but no longer serializes — the schedule.
    u64 order_rank = 0;
    NodeWork work;  ///< empty = pure barrier node (completes immediately)
    std::vector<u32> out;  ///< dependents (edges leave this node)
    u32 in_degree = 0;     ///< incoming edge count
  };

  /// Append a node; returns its id (dense, starting at 0).
  u32 add_node(NodeKind kind, std::string label, u64 order_rank,
               NodeWork work);

  /// Declare "`from` must finish before `to` starts". Throws
  /// std::out_of_range for unknown ids and std::logic_error for self or
  /// duplicate edges.
  void add_edge(u32 from, u32 to);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(u32 id) const { return nodes_.at(id); }

  /// Reject cyclic graphs before execution: Kahn's algorithm; throws
  /// std::logic_error naming a node on the cycle.
  void validate() const;

 private:
  friend class GraphExecutor;
  std::vector<Node> nodes_;
};

}  // namespace mlpo
