// Topological scheduler for TaskGraph over a WorkStealingPool.
//
// run() releases every zero-in-degree node (sorted by order_rank — the
// UpdateOrderPolicy's tie-break) onto the pool, and each completing node
// releases the dependents it was the last blocker for. IO nodes call
// TaskContext::defer() to complete asynchronously from an
// IoRequest::on_settle hook instead of blocking a worker, so the whole
// ready frontier of transfers is queued on the IoScheduler at once.
//
// Failure semantics: the first node error is recorded, the run flips to
// cancelled (TaskContext::cancelled() turns true, unstarted nodes are
// released-but-skipped so the graph unwinds instead of hanging), an
// optional on_cancel hook fires exactly once (the engines use it to
// abandon queued demand reads), and run() rethrows the first error after
// every node — including deferred IO completions — has settled, so no
// node can outlive the state it captured.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "graph/task_graph.hpp"
#include "util/mutex.hpp"
#include "util/work_stealing_pool.hpp"

namespace mlpo {

class GraphExecutor;

/// Per-node handle passed to NodeWork. Valid only for the duration of the
/// work call; the completion returned by defer() outlives it.
class TaskContext {
 public:
  /// True once any node has failed (or the run was cancelled). Work that
  /// loops or is about to start something expensive should early-out.
  bool cancelled() const;

  u32 node_id() const { return id_; }

  /// Switch this node to asynchronous completion: the node is *not*
  /// finished when work returns — it finishes when the returned callback
  /// is invoked (with nullptr on success, the failure otherwise). The
  /// callback is thread-safe and idempotent (second and later invocations
  /// are ignored); losing it without calling it hangs the run, exactly
  /// like a promise whose future is never set.
  std::function<void(std::exception_ptr)> defer();

 private:
  friend class GraphExecutor;
  struct RunState;

  TaskContext(RunState& st, u32 id) : st_(&st), id_(id) {}

  RunState* st_;
  u32 id_;
  bool deferred_ = false;
  /// Fired-once flag shared with the callback defer() hands out; heap-
  /// allocated so the losers of the finish race never touch RunState.
  std::shared_ptr<std::atomic<bool>> fired_;
};

class GraphExecutor {
 public:
  /// Counters for one run(); the engines fold these into IterationReport.
  struct Stats {
    u64 nodes_executed = 0;  ///< nodes whose work actually ran
    u64 nodes_skipped = 0;   ///< released after cancellation, work skipped
    /// Most nodes simultaneously released-but-unfinished — how wide the
    /// frontier the pool (and through the IO nodes, the IoScheduler)
    /// actually saw.
    u64 frontier_high_water = 0;
    u64 tasks_stolen = 0;  ///< pool cross-deque pops during the run
    f64 idle_seconds = 0;  ///< real seconds pool workers spent parked
  };

  /// The pool is borrowed, not owned: engines keep one across iterations
  /// so workers are not respawned per run.
  explicit GraphExecutor(WorkStealingPool& pool) : pool_(&pool) {}

  /// Execute `graph` to completion and return the run's counters.
  /// Validates first (cycles never reach the pool). `on_cancel`, when
  /// set, fires exactly once on the first node failure, outside all
  /// executor locks. Rethrows the first error after every node settled.
  Stats run(const TaskGraph& graph, std::function<void()> on_cancel = {});

 private:
  friend class TaskContext;

  static void dispatch(TaskContext::RunState& st, std::vector<u32> ready);
  static void exec_node(TaskContext::RunState& st, u32 id);
  static void finish_node(TaskContext::RunState& st, u32 id,
                          std::exception_ptr error);

  WorkStealingPool* pool_;
};

}  // namespace mlpo
