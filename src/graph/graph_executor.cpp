#include "graph/graph_executor.hpp"

#include <algorithm>
#include <utility>

namespace mlpo {

// Shared state of one run(). Lives on run()'s stack; every node —
// including deferred IO completions firing from dispatch threads — is
// accounted in `remaining`, and run() only returns once it hits zero, so
// nothing here can dangle.
struct TaskContext::RunState {
  const TaskGraph* graph = nullptr;
  WorkStealingPool* pool = nullptr;

  Mutex mutex;
  CondVar done_cv;
  std::vector<u32> pending MLPO_GUARDED_BY(mutex);   ///< in-degree left
  std::vector<u8> finished MLPO_GUARDED_BY(mutex);   ///< double-finish guard
  std::size_t remaining MLPO_GUARDED_BY(mutex) = 0;  ///< unfinished nodes
  u64 frontier MLPO_GUARDED_BY(mutex) = 0;  ///< released, not finished
  u64 frontier_high_water MLPO_GUARDED_BY(mutex) = 0;
  u64 executed MLPO_GUARDED_BY(mutex) = 0;
  u64 skipped MLPO_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error MLPO_GUARDED_BY(mutex);

  std::atomic<bool> cancelled{false};
  std::function<void()> on_cancel;  ///< fired once, outside mutex
};

bool TaskContext::cancelled() const {
  return st_->cancelled.load(std::memory_order_acquire);
}

std::function<void(std::exception_ptr)> TaskContext::defer() {
  deferred_ = true;
  if (!fired_) fired_ = std::make_shared<std::atomic<bool>>(false);
  RunState* st = st_;
  const u32 id = id_;
  return [st, id, fired = fired_](std::exception_ptr error) {
    // Exactly once: the settle path, a caller retry, and exec_node's
    // post-defer error path all race through this flag; only the winner
    // calls finish_node (the losers must not even read *st — the winner's
    // finish may be the run's last, after which st is destroyed).
    if (fired->exchange(true, std::memory_order_acq_rel)) return;
    GraphExecutor::finish_node(*st, id, std::move(error));
  };
}

void GraphExecutor::dispatch(TaskContext::RunState& st,
                             std::vector<u32> ready) {
  // Lower order_rank enters the deques first — the UpdateOrderPolicy as a
  // tie-break among ready nodes, not a serialization.
  std::sort(ready.begin(), ready.end(), [&st](u32 a, u32 b) {
    const auto& na = st.graph->nodes_[a];
    const auto& nb = st.graph->nodes_[b];
    return na.order_rank != nb.order_rank ? na.order_rank < nb.order_rank
                                          : a < b;
  });
  for (const u32 id : ready) {
    // try_submit, not submit: on the shutdown path (a cancelled run
    // unwinding while the pool is being torn down) the pool may already
    // be stopping — the node then runs inline on this thread, where the
    // cancelled flag skips its work and only the bookkeeping happens.
    if (!st.pool->try_submit([&st, id] { exec_node(st, id); })) {
      exec_node(st, id);
    }
  }
}

void GraphExecutor::exec_node(TaskContext::RunState& st, u32 id) {
  TaskContext ctx(st, id);
  std::exception_ptr error;
  const bool skip = st.cancelled.load(std::memory_order_acquire);
  const NodeWork& work = st.graph->nodes_[id].work;
  // Count BEFORE running the work: once a deferred node's work has
  // submitted its IO, the settle callback may finish the node — and if it
  // was the run's last, run() returns and st is destroyed. So after
  // work() returns, st may only be touched by whoever wins the node's
  // finish; plain bookkeeping here would be a use-after-free.
  {
    MutexLock lock(st.mutex);
    if (skip) {
      ++st.skipped;
    } else {
      ++st.executed;
    }
  }
  if (!skip && work) {
    try {
      work(ctx);
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (ctx.deferred_) {
    // Success: the completion callback owns the finish. A throw after
    // defer() finishes with the error — through the same fired-once flag,
    // so if the completion callback got there first we touch nothing.
    if (!error) return;
    if (ctx.fired_->exchange(true, std::memory_order_acq_rel)) return;
  }
  finish_node(st, id, std::move(error));
}

void GraphExecutor::finish_node(TaskContext::RunState& st, u32 id,
                                std::exception_ptr error) {
  std::vector<u32> ready;
  bool fire_cancel = false;
  {
    MutexLock lock(st.mutex);
    if (st.finished[id]) return;  // defer() misuse; never finish twice
    st.finished[id] = 1;
    if (error && !st.first_error) {
      st.first_error = std::move(error);
      st.cancelled.store(true, std::memory_order_release);
      fire_cancel = st.on_cancel != nullptr;
    }
    --st.frontier;
    for (const u32 to : st.graph->nodes_[id].out) {
      if (--st.pending[to] == 0) ready.push_back(to);
    }
    st.frontier += ready.size();
    st.frontier_high_water = std::max(st.frontier_high_water, st.frontier);
  }
  if (fire_cancel) st.on_cancel();
  dispatch(st, std::move(ready));
  // The remaining-count decrement is the LAST touch of st: once it hits
  // zero run() may wake, return, and destroy st, so nothing below this
  // block may reference it. notify fires under the lock for the same
  // reason — after our unlock the waiter owns the state.
  {
    MutexLock lock(st.mutex);
    if (--st.remaining == 0) st.done_cv.notify_all();
  }
}

GraphExecutor::Stats GraphExecutor::run(const TaskGraph& graph,
                                        std::function<void()> on_cancel) {
  graph.validate();
  Stats stats;
  if (graph.node_count() == 0) return stats;

  const u64 stolen_start = pool_->tasks_stolen();
  const f64 idle_start = pool_->idle_seconds();

  TaskContext::RunState st;
  st.graph = &graph;
  st.pool = pool_;
  st.on_cancel = std::move(on_cancel);

  std::vector<u32> roots;
  {
    MutexLock lock(st.mutex);
    const auto n = static_cast<u32>(graph.node_count());
    st.pending.resize(n);
    st.finished.assign(n, 0);
    st.remaining = n;
    for (u32 id = 0; id < n; ++id) {
      st.pending[id] = graph.nodes_[id].in_degree;
      if (st.pending[id] == 0) roots.push_back(id);
    }
    st.frontier = roots.size();
    st.frontier_high_water = st.frontier;
  }
  dispatch(st, std::move(roots));

  std::exception_ptr error;
  {
    MutexLock lock(st.mutex);
    while (st.remaining > 0) st.done_cv.wait(lock);
    stats.nodes_executed = st.executed;
    stats.nodes_skipped = st.skipped;
    stats.frontier_high_water = st.frontier_high_water;
    error = st.first_error;
  }
  // Deltas over the borrowed pool: exact while the engine owns its pool
  // (the intended wiring), approximate if callers share one.
  stats.tasks_stolen = pool_->tasks_stolen() - stolen_start;
  stats.idle_seconds = pool_->idle_seconds() - idle_start;
  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace mlpo
