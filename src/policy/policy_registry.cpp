#include "policy/policy_registry.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "util/mutex.hpp"

namespace mlpo {

// Defined in placement_policies.cpp / update_order_policies.cpp. Explicit
// calls (not static initialisers) so registration survives static-archive
// linking, same reasoning as bench/harness/register_all.cpp.
void register_builtin_placement_policies();
void register_builtin_update_order_policies();

namespace {

template <typename Factory>
class Registry {
 public:
  void add(const std::string& name, Factory factory) {
    MutexLock lock(mutex_);
    factories_[name] = std::move(factory);
  }

  Factory find(const std::string& name, const char* kind) {
    MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream msg;
      msg << "unknown " << kind << " policy '" << name << "' (registered:";
      for (const auto& [known, _] : factories_) msg << " " << known;
      msg << ")";
      throw std::invalid_argument(msg.str());
    }
    return it->second;
  }

  std::vector<std::string> names() {
    MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, _] : factories_) out.push_back(name);
    return out;  // std::map keeps them sorted
  }

 private:
  Mutex mutex_;
  std::map<std::string, Factory> factories_ MLPO_GUARDED_BY(mutex_);
};

// Two-level accessors: the *_store() functions hand out the raw registry
// (what register_*_policy writes into), the public-facing ones first make
// sure the built-ins are in. Keeping registration out of the ensure path
// avoids re-entering a function-local static mid-initialisation.
Registry<PlacementPolicyFactory>& placement_store() {
  static Registry<PlacementPolicyFactory> registry;
  return registry;
}

Registry<UpdateOrderPolicyFactory>& order_store() {
  static Registry<UpdateOrderPolicyFactory> registry;
  return registry;
}

Registry<PlacementPolicyFactory>& placement_registry() {
  static const bool init = [] {
    register_builtin_placement_policies();
    return true;
  }();
  (void)init;
  return placement_store();
}

Registry<UpdateOrderPolicyFactory>& order_registry() {
  static const bool init = [] {
    register_builtin_update_order_policies();
    return true;
  }();
  (void)init;
  return order_store();
}

}  // namespace

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name) {
  return placement_registry().find(name, "placement")();
}

std::unique_ptr<UpdateOrderPolicy> make_update_order_policy(
    const std::string& name) {
  return order_registry().find(name, "update-order")();
}

std::vector<std::string> placement_policy_names() {
  return placement_registry().names();
}

std::vector<std::string> update_order_policy_names() {
  return order_registry().names();
}

void register_placement_policy(const std::string& name,
                               PlacementPolicyFactory factory) {
  placement_store().add(name, std::move(factory));
}

void register_update_order_policy(const std::string& name,
                                  UpdateOrderPolicyFactory factory) {
  order_store().add(name, std::move(factory));
}

}  // namespace mlpo
