// String-keyed registries for placement and update-order policies.
//
// Policies are selected by name in EngineOptions (and therefore from the
// `runtime/config` JSON: `"placement_policy": "bandwidth_greedy"`,
// `"update_order_policy": "host_resident_first"`). Unknown names fail
// loudly, listing every registered policy.
//
// Adding a policy (see README "Adding a placement policy"):
//   1. implement the PlacementPolicy / UpdateOrderPolicy interface;
//   2. register a factory under a unique name (built-ins live in
//      placement_policies.cpp / update_order_policies.cpp; extensions can
//      call register_*_policy() from their own initialisation);
//   3. select it by name — engine, config JSON, and the bench policy
//      sweep pick it up with no further wiring.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/placement_policy.hpp"
#include "policy/update_order_policy.hpp"

namespace mlpo {

using PlacementPolicyFactory =
    std::function<std::unique_ptr<PlacementPolicy>()>;
using UpdateOrderPolicyFactory =
    std::function<std::unique_ptr<UpdateOrderPolicy>()>;

/// Built-in placement policies, always registered:
///   "eq1_static"       Eq. 1 quotas from nominal bandwidths, never adapts
///   "adaptive_ema"     Eq. 1 quotas over EMA-updated bandwidth estimates
///   "round_robin"      subgroup i -> path i mod N, bandwidth-oblivious
///   "bandwidth_greedy" greedy earliest-finish-time assignment per subgroup
///   "contention_aware" Eq. 1 over effective bandwidth (queue waits included)
inline constexpr const char* kDefaultPlacementPolicy = "adaptive_ema";

/// Built-in update-order policies, always registered:
///   "ascending"                  0..N-1 every iteration, eager flush
///   "alternating_cache_friendly" ascending/descending alternation, lazy flush
///   "host_resident_first"        observed host residents first, lazy flush
inline constexpr const char* kDefaultUpdateOrderPolicy =
    "alternating_cache_friendly";

/// Construct a registered placement policy. Throws std::invalid_argument
/// naming the unknown key and every registered name.
std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name);

/// Construct a registered update-order policy. Throws std::invalid_argument
/// naming the unknown key and every registered name.
std::unique_ptr<UpdateOrderPolicy> make_update_order_policy(
    const std::string& name);

/// Registered names, sorted (drives --list style output and the bench
/// policy sweep).
std::vector<std::string> placement_policy_names();
std::vector<std::string> update_order_policy_names();

/// Extension points: register (or override) a factory under `name`.
void register_placement_policy(const std::string& name,
                               PlacementPolicyFactory factory);
void register_update_order_policy(const std::string& name,
                                  UpdateOrderPolicyFactory factory);

}  // namespace mlpo
