// I/O performance model for subgroup allocation (paper §3.3, Eq. 1).
//
// Given M subgroups and N alternative storages with bandwidths B_i, allocate
//   T_i = ceil(M * B_i / sum(B)) subgroups to storage i,
// adjusted so sum(T_i) == M. Subgroups on different paths then fetch/flush
// in parallel and finish at roughly the same time, so no path straggles.
//
// Bandwidths are seeded from microbenchmarks (the tiers' nominal rates) and
// re-estimated after every observed transfer with an exponential moving
// average, so the allocation adapts when, e.g., the PFS slows down under
// interference from other jobs.
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

/// Eq. 1: number of subgroups per path. Guarantees sum == M, every entry
/// >= 0, and at least one subgroup on the fastest path when M > 0.
std::vector<u32> eq1_subgroup_quotas(u32 num_subgroups,
                                     const std::vector<f64>& bandwidths);

/// Expand quotas into an interleaved subgroup -> path assignment using a
/// largest-remainder (Bresenham-style) spread: a 2:1 quota becomes the
/// pattern 0,0,1,0,0,1,... so that consecutive subgroups in the update
/// order hit different paths and their transfers overlap.
std::vector<std::size_t> interleaved_placement(
    const std::vector<u32>& quotas);

class PerfModel {
 public:
  /// @param nominal_bw per-path B_i = min(read_bw, write_bw) measured by
  ///        microbenchmarks; @param ema_alpha weight of a new observation.
  PerfModel(std::vector<f64> nominal_bw, u32 num_subgroups,
            f64 ema_alpha = 0.2);

  std::size_t path_count() const { return nominal_.size(); }
  u32 num_subgroups() const { return num_subgroups_; }

  /// Record an observed transfer (either direction) on `path`.
  void observe(std::size_t path, u64 sim_bytes, f64 seconds);

  /// Current bandwidth estimates (nominal until observations arrive).
  std::vector<f64> bandwidths() const;

  /// Recompute quotas/placement from the current estimates. Called at the
  /// start of each update phase (Algorithm 1 line 9 consults the result).
  void rebalance();

  /// Per-path quota after the last rebalance.
  std::vector<u32> quotas() const;

  /// Path for subgroup `idx` after the last rebalance.
  std::size_t path_for(u32 idx) const;

 private:
  mutable Mutex mutex_;
  /// nominal_/num_subgroups_/ema_alpha_ are set once in the constructor and
  /// read-only afterwards; everything the EMA and rebalance touch is guarded.
  std::vector<f64> nominal_;
  std::vector<f64> estimate_ MLPO_GUARDED_BY(mutex_);
  std::vector<bool> observed_ MLPO_GUARDED_BY(mutex_);
  u32 num_subgroups_;
  f64 ema_alpha_;
  std::vector<u32> quotas_ MLPO_GUARDED_BY(mutex_);
  std::vector<std::size_t> placement_ MLPO_GUARDED_BY(mutex_);
};

}  // namespace mlpo
