// Pluggable subgroup-update ordering strategies (paper §3.2 generalised).
//
// Adam updates are element-wise independent across subgroups, so any
// processing order yields bit-identical training state. What the order
// *does* change is host-cache behaviour: the subgroups resident at the end
// of iteration k are the only candidates for cache hits in iteration k+1.
// The paper exploits this with ascending/descending alternation; this
// interface extracts the decision so schedules informed by the actually
// observed residency state (MCE-style reasoning over dependency structure,
// arXiv:1304.2380) are expressible without touching the engine.
//
// A policy also declares whether its schedule exploits the host cache at
// all: `uses_host_cache() == false` selects the DeepSpeed-style eager
// flush-after-update discipline, `true` the lazy flush-through-cache path.
//
// Policies are constructed by name through the registry
// (policy/policy_registry.hpp).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class UpdateOrderPolicy {
 public:
  virtual ~UpdateOrderPolicy() = default;

  /// Registry key this policy was constructed under.
  virtual const std::string& name() const = 0;

  /// Whether the engine should run the lazy flush-through-host-cache
  /// discipline (true) or eager flush after every update (false, the
  /// DeepSpeed ZeRO-3 behaviour). Engines reject `true` combined with a
  /// zero-capacity host cache at construction.
  virtual bool uses_host_cache() const = 0;

  /// Processing order for `iteration` (a permutation of
  /// [0, num_subgroups)). `host_resident` lists the subgroup ids currently
  /// valid in host memory, least-recently-used first — residency-aware
  /// policies schedule from it; fixed-parity policies ignore it.
  virtual std::vector<u32> order(u32 num_subgroups, u64 iteration,
                                 std::span<const u32> host_resident) const = 0;
};

/// Engines call this on every schedule a policy returns: a third-party
/// policy that drops, duplicates, or invents subgroup ids would otherwise
/// silently skip optimizer updates. Throws std::logic_error naming
/// `policy_name`.
void validate_order_permutation(std::span<const u32> order, u32 num_subgroups,
                                const std::string& policy_name);

}  // namespace mlpo
