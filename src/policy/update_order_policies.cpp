// Built-in update-order policies. "ascending" is the DeepSpeed ZeRO-3
// discipline (fixed order, eager flush); "alternating_cache_friendly" is
// the paper's §3.2 parity trick; "host_resident_first" derives the same
// reuse from the *observed* residency state instead of a fixed parity, so
// it stays cache-optimal even when restores, failures, or a future policy
// leave the cache in a state no parity schedule predicts.
#include <algorithm>
#include <numeric>

#include "policy/policy_registry.hpp"

namespace mlpo {

namespace {

std::vector<u32> ascending_order(u32 num_subgroups) {
  std::vector<u32> order(num_subgroups);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

class AscendingOrder final : public UpdateOrderPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "ascending";
    return n;
  }
  bool uses_host_cache() const override { return false; }
  std::vector<u32> order(u32 num_subgroups, u64 /*iteration*/,
                         std::span<const u32> /*host_resident*/)
      const override {
    return ascending_order(num_subgroups);
  }
};

class AlternatingCacheFriendlyOrder final : public UpdateOrderPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "alternating_cache_friendly";
    return n;
  }
  bool uses_host_cache() const override { return true; }
  std::vector<u32> order(u32 num_subgroups, u64 iteration,
                         std::span<const u32> /*host_resident*/)
      const override {
    std::vector<u32> order = ascending_order(num_subgroups);
    if (iteration % 2 == 1) std::reverse(order.begin(), order.end());
    return order;
  }
};

/// Schedule the subgroups that are *actually* host-resident first (most
/// recently used leading, so the hottest state is consumed before any
/// insertion can evict it), then the remainder ascending. Against an LRU
/// cache this self-stabilises: whatever tail of iteration k stayed
/// resident leads iteration k+1.
class HostResidentFirstOrder final : public UpdateOrderPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "host_resident_first";
    return n;
  }
  bool uses_host_cache() const override { return true; }
  std::vector<u32> order(u32 num_subgroups, u64 /*iteration*/,
                         std::span<const u32> host_resident) const override {
    std::vector<u32> order;
    order.reserve(num_subgroups);
    std::vector<u8> taken(num_subgroups, 0);
    // host_resident arrives LRU-first; walk it backwards for MRU-first.
    for (auto it = host_resident.rbegin(); it != host_resident.rend(); ++it) {
      if (*it < num_subgroups && !taken[*it]) {
        taken[*it] = 1;
        order.push_back(*it);
      }
    }
    for (u32 id = 0; id < num_subgroups; ++id) {
      if (!taken[id]) order.push_back(id);
    }
    return order;
  }
};

}  // namespace

void validate_order_permutation(std::span<const u32> order, u32 num_subgroups,
                                const std::string& policy_name) {
  bool valid = order.size() == num_subgroups;
  if (valid) {
    std::vector<u8> seen(num_subgroups, 0);
    for (const u32 id : order) {
      if (id >= num_subgroups || seen[id]) {
        valid = false;
        break;
      }
      seen[id] = 1;
    }
  }
  if (!valid) {
    throw std::logic_error("UpdateOrderPolicy '" + policy_name +
                           "' did not return a permutation of [0, " +
                           std::to_string(num_subgroups) + ")");
  }
}

void register_builtin_update_order_policies() {
  register_update_order_policy("ascending", [] {
    return std::make_unique<AscendingOrder>();
  });
  register_update_order_policy("alternating_cache_friendly", [] {
    return std::make_unique<AlternatingCacheFriendlyOrder>();
  });
  register_update_order_policy("host_resident_first", [] {
    return std::make_unique<HostResidentFirstOrder>();
  });
}

}  // namespace mlpo
