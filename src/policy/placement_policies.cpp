// Built-in placement policies. The two paper strategies (static Eq. 1 and
// its EMA-adaptive variant) reuse the PerfModel math from
// policy/perf_model; the other three demonstrate the extracted interface: a bandwidth-oblivious spread,
// a greedy earliest-finish-time assignment, and a contention-aware variant
// that judges paths by their *effective* throughput (queue waits included)
// rather than device service time alone.
#include <algorithm>
#include <limits>
#include <stdexcept>

#include "policy/perf_model.hpp"
#include "policy/policy_registry.hpp"
#include "util/mutex.hpp"

namespace mlpo {

namespace {

void require_bound(bool bound, const std::string& name) {
  if (!bound) {
    throw std::logic_error("PlacementPolicy '" + name +
                           "': used before bind()");
  }
}

/// Eq. 1 split from the microbenchmark-seeded (nominal) bandwidths; never
/// reacts to observations. The "static" arm of the adaptive-model ablation.
class Eq1StaticPlacement final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "eq1_static";
    return n;
  }

  void bind(std::vector<f64> nominal_bandwidths, u32 num_subgroups) override {
    nominal_ = std::move(nominal_bandwidths);
    quotas_ = eq1_subgroup_quotas(num_subgroups, nominal_);
    placement_ = interleaved_placement(quotas_);
  }

  std::size_t path_for(u32 idx) const override {
    require_bound(!nominal_.empty(), name());
    return placement_.at(idx);
  }
  std::vector<u32> quotas() const override {
    require_bound(!nominal_.empty(), name());
    return quotas_;
  }
  std::vector<f64> bandwidths() const override { return nominal_; }

 private:
  // Immutable after bind(): concurrent reads need no lock.
  std::vector<f64> nominal_;
  std::vector<u32> quotas_;
  std::vector<std::size_t> placement_;
};

/// The paper's full §3.3 model: Eq. 1 quotas recomputed each rebalance from
/// EMA-updated bandwidth estimates. Thin adapter over PerfModel, which
/// already carries the required locking.
class AdaptiveEmaPlacement final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "adaptive_ema";
    return n;
  }

  void bind(std::vector<f64> nominal_bandwidths, u32 num_subgroups) override {
    model_ = std::make_unique<PerfModel>(std::move(nominal_bandwidths),
                                         num_subgroups);
  }

  void observe(std::size_t path, u64 sim_bytes, f64 service_seconds,
               f64 /*queue_wait_seconds*/) override {
    require_bound(model_ != nullptr, name());
    model_->observe(path, sim_bytes, service_seconds);
  }

  void rebalance() override {
    require_bound(model_ != nullptr, name());
    model_->rebalance();
  }

  std::size_t path_for(u32 idx) const override {
    require_bound(model_ != nullptr, name());
    return model_->path_for(idx);
  }
  std::vector<u32> quotas() const override {
    require_bound(model_ != nullptr, name());
    return model_->quotas();
  }
  std::vector<f64> bandwidths() const override {
    require_bound(model_ != nullptr, name());
    return model_->bandwidths();
  }

 private:
  std::unique_ptr<PerfModel> model_;
};

/// Bandwidth-oblivious interleave: subgroup i on path i mod N. The control
/// arm that shows what Eq. 1 buys when paths are asymmetric — and a decent
/// default when they are not.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "round_robin";
    return n;
  }

  void bind(std::vector<f64> nominal_bandwidths, u32 num_subgroups) override {
    if (nominal_bandwidths.empty()) {
      throw std::invalid_argument("round_robin: no paths");
    }
    nominal_ = std::move(nominal_bandwidths);
    num_subgroups_ = num_subgroups;
  }

  std::size_t path_for(u32 idx) const override {
    require_bound(!nominal_.empty(), name());
    return idx % nominal_.size();
  }
  std::vector<u32> quotas() const override {
    require_bound(!nominal_.empty(), name());
    const auto paths = static_cast<u32>(nominal_.size());
    std::vector<u32> q(paths, num_subgroups_ / paths);
    for (u32 p = 0; p < num_subgroups_ % paths; ++p) ++q[p];
    return q;
  }
  std::vector<f64> bandwidths() const override { return nominal_; }

 private:
  std::vector<f64> nominal_;
  u32 num_subgroups_ = 0;
};

/// EMA bandwidth tracking for the greedy policy (whose placement rule
/// PerfModel cannot express). First observation replaces the nominal seed
/// outright, mirroring PerfModel.
class EmaEstimates {
 public:
  void seed(std::vector<f64> nominal) {
    estimate_ = std::move(nominal);
    observed_.assign(estimate_.size(), false);
  }

  void update(std::size_t path, f64 bandwidth, f64 alpha) {
    if (path >= estimate_.size()) return;
    estimate_[path] = observed_[path]
                          ? (1.0 - alpha) * estimate_[path] + alpha * bandwidth
                          : bandwidth;
    observed_[path] = true;
  }

  const std::vector<f64>& values() const { return estimate_; }

 private:
  std::vector<f64> estimate_;
  std::vector<bool> observed_;
};

/// Greedy earliest-finish-time assignment: walk the subgroups in order and
/// put each on the path that would finish its backlog (including this
/// subgroup) first under the current bandwidth estimates. Equal-bandwidth
/// paths degrade to round-robin; asymmetric paths get a proportional load
/// without the global quota solve — the marginal-cost view of Eq. 1.
class BandwidthGreedyPlacement final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "bandwidth_greedy";
    return n;
  }

  void bind(std::vector<f64> nominal_bandwidths, u32 num_subgroups) override {
    if (nominal_bandwidths.empty()) {
      throw std::invalid_argument("bandwidth_greedy: no paths");
    }
    for (const f64 b : nominal_bandwidths) {
      if (b <= 0) throw std::invalid_argument("bandwidth_greedy: bw <= 0");
    }
    MutexLock lock(mutex_);
    estimates_.seed(std::move(nominal_bandwidths));
    num_subgroups_ = num_subgroups;
    recompute_locked();
  }

  void observe(std::size_t path, u64 sim_bytes, f64 service_seconds,
               f64 /*queue_wait_seconds*/) override {
    if (service_seconds <= 0 || sim_bytes == 0) return;
    MutexLock lock(mutex_);
    estimates_.update(path, static_cast<f64>(sim_bytes) / service_seconds,
                      kAlpha);
  }

  void rebalance() override {
    MutexLock lock(mutex_);
    require_bound(!estimates_.values().empty(), name());
    recompute_locked();
  }

  std::size_t path_for(u32 idx) const override {
    MutexLock lock(mutex_);
    require_bound(!estimates_.values().empty(), name());
    return placement_.at(idx);
  }
  std::vector<u32> quotas() const override {
    MutexLock lock(mutex_);
    require_bound(!estimates_.values().empty(), name());
    return quotas_;
  }
  std::vector<f64> bandwidths() const override {
    MutexLock lock(mutex_);
    return estimates_.values();
  }

 private:
  static constexpr f64 kAlpha = 0.2;

  void recompute_locked() MLPO_REQUIRES(mutex_) {
    const auto& bw = estimates_.values();
    quotas_.assign(bw.size(), 0);
    placement_.assign(num_subgroups_, 0);
    for (u32 idx = 0; idx < num_subgroups_; ++idx) {
      std::size_t best = 0;
      f64 best_finish = std::numeric_limits<f64>::infinity();
      for (std::size_t p = 0; p < bw.size(); ++p) {
        const f64 finish = static_cast<f64>(quotas_[p] + 1) / bw[p];
        if (finish < best_finish) {
          best_finish = finish;
          best = p;
        }
      }
      placement_[idx] = best;
      ++quotas_[best];
    }
  }

  mutable Mutex mutex_;
  EmaEstimates estimates_ MLPO_GUARDED_BY(mutex_);
  u32 num_subgroups_ MLPO_GUARDED_BY(mutex_) = 0;
  std::vector<u32> quotas_ MLPO_GUARDED_BY(mutex_);
  std::vector<std::size_t> placement_ MLPO_GUARDED_BY(mutex_);
};

/// Eq. 1 over *effective* bandwidth: each observation is weighed by total
/// time in the system (queue wait + service), so a path whose device is
/// fast but whose queue is congested — other workers hammering the shared
/// PFS, a flush backlog — sheds load that raw service-time EMA would keep
/// sending there. Same PerfModel substrate as adaptive_ema; only the time
/// denominator fed into the EMA differs.
class ContentionAwarePlacement final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "contention_aware";
    return n;
  }

  void bind(std::vector<f64> nominal_bandwidths, u32 num_subgroups) override {
    model_ = std::make_unique<PerfModel>(std::move(nominal_bandwidths),
                                         num_subgroups);
  }

  void observe(std::size_t path, u64 sim_bytes, f64 service_seconds,
               f64 queue_wait_seconds) override {
    require_bound(model_ != nullptr, name());
    model_->observe(path, sim_bytes, service_seconds + queue_wait_seconds);
  }

  void rebalance() override {
    require_bound(model_ != nullptr, name());
    model_->rebalance();
  }

  std::size_t path_for(u32 idx) const override {
    require_bound(model_ != nullptr, name());
    return model_->path_for(idx);
  }
  std::vector<u32> quotas() const override {
    require_bound(model_ != nullptr, name());
    return model_->quotas();
  }
  std::vector<f64> bandwidths() const override {
    require_bound(model_ != nullptr, name());
    return model_->bandwidths();
  }

 private:
  std::unique_ptr<PerfModel> model_;
};

}  // namespace

void register_builtin_placement_policies() {
  register_placement_policy("eq1_static", [] {
    return std::make_unique<Eq1StaticPlacement>();
  });
  register_placement_policy("adaptive_ema", [] {
    return std::make_unique<AdaptiveEmaPlacement>();
  });
  register_placement_policy("round_robin", [] {
    return std::make_unique<RoundRobinPlacement>();
  });
  register_placement_policy("bandwidth_greedy", [] {
    return std::make_unique<BandwidthGreedyPlacement>();
  });
  register_placement_policy("contention_aware", [] {
    return std::make_unique<ContentionAwarePlacement>();
  });
}

}  // namespace mlpo
