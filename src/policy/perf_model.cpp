#include "policy/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mlpo {

std::vector<u32> eq1_subgroup_quotas(u32 num_subgroups,
                                     const std::vector<f64>& bandwidths) {
  if (bandwidths.empty()) {
    throw std::invalid_argument("eq1_subgroup_quotas: no paths");
  }
  f64 total_bw = 0;
  for (const f64 b : bandwidths) {
    if (b <= 0) throw std::invalid_argument("eq1_subgroup_quotas: bw <= 0");
    total_bw += b;
  }

  // Eq. 1 with the "adjusted such that sum(T_i) == M" clause implemented as
  // the largest-remainder method: start from floor(exact share), then award
  // the leftover units to the paths with the largest fractional remainders.
  // Guarantees every quota is floor(exact) or ceil(exact), i.e. within one
  // subgroup of perfect proportionality.
  const std::size_t n = bandwidths.size();
  std::vector<u32> quotas(n);
  std::vector<f64> remainder(n);
  u64 sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const f64 exact =
        static_cast<f64>(num_subgroups) * bandwidths[i] / total_bw;
    quotas[i] = static_cast<u32>(std::floor(exact));
    remainder[i] = exact - std::floor(exact);
    sum += quotas[i];
  }
  u64 leftover = num_subgroups - sum;
  while (leftover > 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (remainder[i] > remainder[best]) best = i;
    }
    ++quotas[best];
    remainder[best] = -1.0;  // each path gains at most one extra unit
    --leftover;
  }
  return quotas;
}

std::vector<std::size_t> interleaved_placement(const std::vector<u32>& quotas) {
  u64 total = 0;
  for (const u32 q : quotas) total += q;
  std::vector<std::size_t> placement;
  placement.reserve(total);

  // Bresenham spread: each step, award the slot to the path with the
  // highest accumulated credit (quota share), then charge it one unit.
  std::vector<f64> credit(quotas.size(), 0.0);
  std::vector<u32> used(quotas.size(), 0);
  for (u64 s = 0; s < total; ++s) {
    std::size_t best = quotas.size();
    f64 best_credit = -1.0;
    for (std::size_t i = 0; i < quotas.size(); ++i) {
      if (used[i] >= quotas[i]) continue;
      credit[i] += static_cast<f64>(quotas[i]) / static_cast<f64>(total);
      if (credit[i] > best_credit) {
        best_credit = credit[i];
        best = i;
      }
    }
    ++used[best];
    credit[best] -= 1.0;
    placement.push_back(best);
  }
  return placement;
}

PerfModel::PerfModel(std::vector<f64> nominal_bw, u32 num_subgroups,
                     f64 ema_alpha)
    : nominal_(std::move(nominal_bw)), estimate_(nominal_),
      observed_(nominal_.size(), false), num_subgroups_(num_subgroups),
      ema_alpha_(ema_alpha) {
  if (nominal_.empty()) throw std::invalid_argument("PerfModel: no paths");
  quotas_ = eq1_subgroup_quotas(num_subgroups_, estimate_);
  placement_ = interleaved_placement(quotas_);
}

void PerfModel::observe(std::size_t path, u64 sim_bytes, f64 seconds) {
  if (seconds <= 0 || sim_bytes == 0) return;
  const f64 bw = static_cast<f64>(sim_bytes) / seconds;
  MutexLock lock(mutex_);
  if (path >= estimate_.size()) return;
  if (!observed_[path]) {
    // First observation replaces the microbenchmark seed outright.
    estimate_[path] = bw;
    observed_[path] = true;
  } else {
    estimate_[path] = (1.0 - ema_alpha_) * estimate_[path] + ema_alpha_ * bw;
  }
}

std::vector<f64> PerfModel::bandwidths() const {
  MutexLock lock(mutex_);
  return estimate_;
}

void PerfModel::rebalance() {
  MutexLock lock(mutex_);
  quotas_ = eq1_subgroup_quotas(num_subgroups_, estimate_);
  placement_ = interleaved_placement(quotas_);
}

std::vector<u32> PerfModel::quotas() const {
  MutexLock lock(mutex_);
  return quotas_;
}

std::size_t PerfModel::path_for(u32 idx) const {
  MutexLock lock(mutex_);
  return placement_.at(idx);
}

}  // namespace mlpo
