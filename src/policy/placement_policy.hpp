// Pluggable subgroup-placement strategies (paper §3.3 generalised).
//
// The paper ships two placement strategies — the static Eq. 1 split seeded
// from microbenchmarks and its EMA-adaptive variant — but nothing about the
// engine's pipeline depends on *how* a subgroup is mapped to a storage
// path. This interface extracts that decision out of the engine: the
// pipeline asks `path_for(subgroup)` wherever it fetches or flushes, feeds
// observed transfers back through `observe()`, and grants the policy one
// `rebalance()` per update phase. Everything else (what to do with those
// signals) is the policy's business, which is what makes strategies for
// heavy-tailed or contaminated bandwidth distributions (arXiv:1810.08918)
// or contention-aware placement expressible without touching the engine.
//
// Policies are constructed by name through the registry
// (policy/policy_registry.hpp) and bound to a concrete topology with
// `bind()` before first use.
//
// Correctness contract: placement decides only *where* optimizer state
// lives, never its values — every policy must yield bitwise-identical
// training state (tests/equivalence_test.cpp enforces this across the full
// placement x ordering grid).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Registry key this policy was constructed under.
  virtual const std::string& name() const = 0;

  /// Attach to a concrete topology: one nominal (microbenchmark-seeded)
  /// bandwidth per usable storage path, and the subgroup count to place.
  /// Called exactly once, before any other member. Must produce a valid
  /// placement immediately (cold-start reads happen before any observe()).
  virtual void bind(std::vector<f64> nominal_bandwidths,
                    u32 num_subgroups) = 0;

  /// Feedback from one completed transfer on `path` (either direction).
  /// `service_seconds` is device occupancy (including lock hand-off);
  /// `queue_wait_seconds` is time spent queued behind other requests —
  /// contention-aware policies discount congested paths with it. Called
  /// from I/O completion threads; implementations must be thread-safe
  /// against path_for()/quotas()/bandwidths(). Default: ignore (static
  /// policies).
  virtual void observe(std::size_t path, u64 sim_bytes, f64 service_seconds,
                       f64 queue_wait_seconds) {
    (void)path;
    (void)sim_bytes;
    (void)service_seconds;
    (void)queue_wait_seconds;
  }

  /// One chance per update phase to recompute the placement from whatever
  /// the policy has learned. Default: keep the bound placement.
  virtual void rebalance() {}

  /// Storage path for subgroup `idx` under the current placement.
  virtual std::size_t path_for(u32 idx) const = 0;

  /// Subgroups per path under the current placement (sums to the bound
  /// subgroup count).
  virtual std::vector<u32> quotas() const = 0;

  /// The per-path bandwidth estimates the current placement is based on
  /// (nominal until the policy learns otherwise).
  virtual std::vector<f64> bandwidths() const = 0;
};

}  // namespace mlpo
