// Multi-tenant orchestration (the paper's shared-substrate outlook: several
// training jobs offloading optimizer state onto the same node-local NVMe
// and PFS): a JobManager builds one shared-mode ClusterSubstrate and runs
// several Trainer-shaped jobs over it concurrently — one SimClock, one tier
// set, one tenant-fair IoScheduler.
//
// Jobs are admitted, not hoped for: each job's host-memory demand (gradient
// accumulation reserve, pinned I/O buffers, host cache) is computed up
// front via the memory planner and reserved on the substrate; a job that
// does not fit is rejected with a loud AdmissionError before anything
// runs, instead of OOM-ing the node mid-training. I/O bandwidth is shared
// by weighted deficit-round-robin per tenant (see IoScheduler), so a
// heavy job cannot starve a light one, while intra-job priority classes
// (demand-prefetch over lazy-flush) still hold within each tenant's share.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "resilience/recovery_driver.hpp"
#include "runtime/cluster_substrate.hpp"
#include "runtime/trainer.hpp"

namespace mlpo {

/// One tenant job: a full TrainerConfig plus its share of the substrate.
struct JobSpec {
  std::string name;
  TrainerConfig config;
  /// Fair-share weight on the shared I/O scheduler (>= 1).
  u32 weight = 1;
  /// Per-iteration SLO deadline in virtual seconds; 0 = no deadline
  /// (every iteration counts as a hit).
  f64 deadline_seconds = 0;
  u32 iterations = 10;
  u32 warmup = 2;
};

/// Per-job SLO accounting over the post-warmup window.
struct JobSloStats {
  u32 iterations = 0;
  u32 deadline_hits = 0;
  f64 hit_rate = 1.0;
  f64 mean_iteration_seconds = 0;
  f64 p99_iteration_seconds = 0;
  f64 max_iteration_seconds = 0;
};

struct JobResult {
  std::string name;
  u32 tenant = 0;
  u32 weight = 1;
  /// Post-warmup reports, each carrying this job's TenantSlice.
  std::vector<IterationReport> reports;
  u64 state_checksum = 0;
  JobSloStats slo;
  /// Copied from the job's RecoveryDriver (zeroes on resilience-free jobs).
  RecoveryStats recovery;
};

struct JobManagerConfig {
  std::vector<JobSpec> jobs;
  /// DRR byte quantum per visit per unit weight on the shared scheduler.
  u64 fair_share_quantum_bytes = 1 << 20;
  /// Per-tenant per-channel queue bound on the shared scheduler.
  std::size_t io_queue_depth = 256;
};

class JobManager {
 public:
  /// Validates the specs (names unique and non-empty, weights >= 1, every
  /// job single-node on the same testbed/time_scale/storage), builds the
  /// shared substrate, admits each job's host-memory demand
  /// (AdmissionError on rejection), and constructs the borrowed Trainers.
  /// Tenant ids are 1-based in spec order (0 stays the single-job default
  /// tenant).
  explicit JobManager(JobManagerConfig cfg);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  std::size_t job_count() const { return trainers_.size(); }
  const JobSpec& spec(std::size_t i) const { return cfg_.jobs.at(i); }
  Trainer& job(std::size_t i) { return *trainers_.at(i); }
  ClusterSubstrate& substrate() { return *substrate_; }

  /// Initialize every job (parallel across jobs), then run them to their
  /// iteration counts concurrently — each job on its own thread, all over
  /// the shared substrate. Returns per-job results in spec order. A job
  /// that throws aborts the whole run with its error (after the other
  /// jobs finish or fail).
  std::vector<JobResult> run();

 private:
  JobManagerConfig cfg_;
  std::unique_ptr<ClusterSubstrate> substrate_;
  std::vector<std::unique_ptr<Trainer>> trainers_;
};

/// Parse a JobManagerConfig from a JSON document with a "jobs" array:
///   {
///     "fair_share_quantum_bytes": 1048576,   // optional
///     "io_queue_depth": 256,                 // optional
///     "jobs": [
///       {
///         "name": "prod-40b",                // required, unique
///         "weight": 2,                       // optional, >= 1
///         "deadline_seconds": 40,            // optional per-iteration SLO
///         "iterations": 10, "warmup": 2,     // optional
///         "config": { ... }                  // TrainerConfig JSON
///       }, ...
///     ]
///   }
/// Strict like the policy registry: unknown keys in a job entry abort with
/// the known set; an empty or missing "jobs" array, duplicate names, and
/// out-of-range numbers abort at parse time.
JobManagerConfig job_manager_config_from_json(const json::Value& doc);
JobManagerConfig job_manager_config_from_json(const std::string& text);

}  // namespace mlpo
