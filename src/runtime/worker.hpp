// One worker process: the software stack attached to a single emulated GPU.
// Owns the per-worker I/O scheduler (per-path priority queues + PCIe
// D2H/H2D link channels) and the offloading engine for this rank's
// optimizer-state shard — or, on a multi-tenant substrate, borrows a
// JobManager-shared scheduler and stamps its job's tenant id on every
// request instead. The engine implementation is selected by
// EngineOptions::engine ("offload" / "cpu_only" / "tensor_nvme") and
// consumed purely through the unified Engine interface.
#pragma once

#include <memory>

#include "core/engine.hpp"
#include "io/io_scheduler.hpp"
#include "runtime/testbed.hpp"
#include "tiers/virtual_tier.hpp"
#include "train/grad_source.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

class Worker {
 public:
  /// Owned-scheduler mode (single job): the worker builds its own
  /// IoScheduler over `vtier`, with scheduler-owned D2H/H2D link limiters
  /// at the testbed's link bandwidth.
  /// @param vtier node-shared third-level virtual tier
  /// @param cpu_pool node-shared CPU threads for update kernels (nullable)
  Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
         const GradSource& grads, const TestbedSpec& testbed, int worker_id,
         int rank, const EngineOptions& opts, const ShardLayout& layout);

  /// Borrowed-scheduler mode (multi-tenant substrate): the engine's traffic
  /// flows through `shared_io` stamped with `tenant`; the worker owns no
  /// I/O machinery of its own. Teardown drains only this tenant's requests,
  /// so one job's exit never waits on its neighbours' traffic.
  Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
         const GradSource& grads, IoScheduler& shared_io, u32 tenant,
         int worker_id, int rank, const EngineOptions& opts,
         const ShardLayout& layout);

  ~Worker();

  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }
  IoScheduler& io() { return *io_active_; }
  u32 tenant() const { return tenant_; }
  int worker_id() const { return worker_id_; }
  int rank() const { return rank_; }

  void initialize() { engine_->initialize(); }

  /// One backward micro-step: interleaves the GPU's gradient production
  /// (compute charge spread over the subgroups) with asynchronous gradient
  /// deposits, then drains the gradient I/O — so the wall time naturally
  /// becomes max(compute, gradient pipeline), as on real hardware.
  void run_backward_micro(u64 sample_index, bool first_micro_step,
                          bool final_micro_step, f64 compute_seconds);

  IterationReport run_update(u64 iteration) {
    return engine_->run_update(iteration);
  }

 private:
  void build_engine(const SimClock& clock, VirtualTier& vtier,
                    ThreadPool* cpu_pool, const GradSource& grads,
                    const EngineOptions& opts, const ShardLayout& layout);

  const SimClock* clock_;
  int worker_id_;
  int rank_;
  u32 tenant_ = 0;
  std::unique_ptr<IoScheduler> io_;  ///< owned mode only
  IoScheduler* io_active_ = nullptr;
  std::unique_ptr<Engine> engine_;
};

}  // namespace mlpo
