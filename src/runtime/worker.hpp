// One worker process: the software stack attached to a single emulated GPU.
// Owns the per-worker I/O scheduler (per-path priority queues + PCIe
// D2H/H2D link channels) and the offloading engine for this rank's
// optimizer-state shard. The engine implementation is selected by
// EngineOptions::engine ("offload" / "cpu_only" / "tensor_nvme") and
// consumed purely through the unified Engine interface.
#pragma once

#include <memory>

#include "core/engine.hpp"
#include "io/io_scheduler.hpp"
#include "runtime/testbed.hpp"
#include "tiers/virtual_tier.hpp"
#include "train/grad_source.hpp"
#include "util/rate_limiter.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

class Worker {
 public:
  /// @param vtier node-shared third-level virtual tier
  /// @param cpu_pool node-shared CPU threads for update kernels (nullable)
  Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
         const GradSource& grads, const TestbedSpec& testbed, int worker_id,
         int rank, const EngineOptions& opts, const ShardLayout& layout);

  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }
  IoScheduler& io() { return *io_; }
  int worker_id() const { return worker_id_; }
  int rank() const { return rank_; }

  void initialize() { engine_->initialize(); }

  /// One backward micro-step: interleaves the GPU's gradient production
  /// (compute charge spread over the subgroups) with asynchronous gradient
  /// deposits, then drains the gradient I/O — so the wall time naturally
  /// becomes max(compute, gradient pipeline), as on real hardware.
  void run_backward_micro(u64 sample_index, bool first_micro_step,
                          bool final_micro_step, f64 compute_seconds);

  IterationReport run_update(u64 iteration) {
    return engine_->run_update(iteration);
  }

 private:
  const SimClock* clock_;
  int worker_id_;
  int rank_;
  std::unique_ptr<RateLimiter> d2h_;
  std::unique_ptr<RateLimiter> h2d_;
  std::unique_ptr<IoScheduler> io_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace mlpo
