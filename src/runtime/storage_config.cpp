#include "runtime/storage_config.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "io/uring_backend.hpp"
#include "tiers/file_tier.hpp"

namespace mlpo {

const std::vector<std::string>& storage_backend_names() {
  static const std::vector<std::string> kinds{"sim", "file", "uring_file"};
  return kinds;
}

void StorageConfig::validate() const {
  const auto& kinds = storage_backend_names();
  if (std::find(kinds.begin(), kinds.end(), backend) == kinds.end()) {
    std::string known;
    for (const auto& k : kinds) known += " " + k;
    throw std::invalid_argument("config: unknown storage backend '" + backend +
                                "' (known:" + known + ")");
  }
  if (!is_sim() && root.empty()) {
    throw std::invalid_argument("config: storage backend '" + backend +
                                "' requires \"root\"");
  }
  if (is_sim() && !root.empty()) {
    throw std::invalid_argument(
        "config: storage.root is meaningless with backend \"sim\"");
  }
  if (backend == "uring_file" && queue_depth == 0) {
    throw std::invalid_argument("config: storage.queue_depth must be > 0");
  }
  if (backend == "uring_file" && fallback_workers == 0) {
    throw std::invalid_argument(
        "config: storage.fallback_workers must be > 0");
  }
}

StorageConfig storage_config_from_json(const json::Value& section) {
  StorageConfig cfg;
  cfg.backend = section.string_or("backend", cfg.backend);
  cfg.root = section.string_or("root", cfg.root);
  if (section.contains("direct")) cfg.direct = section.at("direct").as_bool();
  cfg.queue_depth = static_cast<u32>(
      section.int_or("queue_depth", static_cast<i64>(cfg.queue_depth)));
  cfg.fallback_workers = static_cast<u32>(section.int_or(
      "fallback_workers", static_cast<i64>(cfg.fallback_workers)));
  if (section.contains("force_fallback")) {
    cfg.force_fallback = section.at("force_fallback").as_bool();
  }
  cfg.validate();
  return cfg;
}

std::shared_ptr<StorageTier> make_nvme_backend(const StorageConfig& cfg,
                                               const TestbedSpec& testbed,
                                               const SimClock& clock,
                                               const std::string& name,
                                               const std::string& node_tag) {
  cfg.validate();
  if (cfg.is_sim()) return testbed.make_nvme_tier(clock, name);
  const std::filesystem::path root =
      std::filesystem::path(cfg.root) / node_tag / name;
  if (cfg.backend == "file") {
    return std::make_shared<FileTier>(name, root, testbed.nvme_read_bw,
                                      testbed.nvme_write_bw);
  }
  UringFileTier::Options opts;
  opts.read_bw = testbed.nvme_read_bw;
  opts.write_bw = testbed.nvme_write_bw;
  opts.direct = cfg.direct;
  opts.queue_depth = cfg.queue_depth;
  opts.fallback_workers = cfg.fallback_workers;
  opts.force_fallback = cfg.force_fallback;
  return std::make_shared<UringFileTier>(name, root, opts);
}

}  // namespace mlpo
