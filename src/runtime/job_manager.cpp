#include "runtime/job_manager.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <set>
#include <stdexcept>
#include <thread>

#include "runtime/memory_planner.hpp"
#include "util/logging.hpp"

namespace mlpo {

namespace {

/// A job's hard (non-cache) host-memory demand on the shared node: the
/// FP16 gradient-accumulation reserve plus the pinned per-GPU pipeline
/// buffers — the same items the memory planner reports, minus the runtime
/// base the substrate carves out once for everyone.
u64 hard_host_demand(const JobSpec& spec) {
  const TrainerConfig& cfg = spec.config;
  const u64 grad_accum = cfg.model.parameters() * kFp16Bytes;
  const u64 pipeline = 3ull * cfg.testbed.gpus_per_node * cfg.subgroup_params *
                       kOptimStateBytesPerParam;
  return grad_accum + pipeline;
}

u64 per_job_cache_bytes(const JobSpec& spec, u32 cache_subgroups) {
  return static_cast<u64>(cache_subgroups) * spec.config.testbed.gpus_per_node *
         spec.config.subgroup_params * kOptimStateBytesPerParam;
}

void validate_specs(const std::vector<JobSpec>& jobs) {
  if (jobs.empty()) {
    throw std::invalid_argument("JobManager: no jobs configured");
  }
  std::set<std::string> names;
  for (const auto& spec : jobs) {
    if (spec.name.empty()) {
      throw std::invalid_argument("JobManager: every job needs a name");
    }
    if (!names.insert(spec.name).second) {
      throw std::invalid_argument("JobManager: duplicate job name '" +
                                  spec.name + "'");
    }
    if (spec.weight == 0) {
      throw std::invalid_argument("JobManager: job '" + spec.name +
                                  "': weight must be >= 1");
    }
    if (spec.config.nodes != 1) {
      throw std::invalid_argument(
          "JobManager: job '" + spec.name +
          "': borrowed jobs run on the one shared node (nodes must be 1, "
          "got " + std::to_string(spec.config.nodes) + ")");
    }
    if (spec.warmup >= spec.iterations) {
      throw std::invalid_argument("JobManager: job '" + spec.name +
                                  "': warmup must be < iterations");
    }
    if (spec.deadline_seconds < 0) {
      throw std::invalid_argument("JobManager: job '" + spec.name +
                                  "': deadline_seconds must be >= 0");
    }
    // One substrate means one testbed, one clock rate, one storage
    // backend; a job disagreeing with job 0 would silently train against
    // hardware it did not configure.
    const TrainerConfig& head = jobs.front().config;
    if (spec.config.testbed.name != head.testbed.name) {
      throw std::invalid_argument(
          "JobManager: job '" + spec.name + "' selects testbed '" +
          spec.config.testbed.name + "' but the substrate was sized for '" +
          head.testbed.name + "'; all jobs must share one testbed");
    }
    if (spec.config.time_scale != head.time_scale) {
      throw std::invalid_argument(
          "JobManager: job '" + spec.name +
          "' disagrees on time_scale; all jobs share one SimClock");
    }
    if (spec.config.storage.backend != head.storage.backend ||
        spec.config.storage.root != head.storage.root) {
      throw std::invalid_argument(
          "JobManager: job '" + spec.name +
          "' disagrees on the storage backend; all jobs share one NVMe "
          "tier");
    }
  }
}

JobSloStats slo_from_reports(const std::vector<IterationReport>& reports,
                             f64 deadline_seconds) {
  JobSloStats slo;
  slo.iterations = static_cast<u32>(reports.size());
  if (reports.empty()) return slo;
  std::vector<f64> times;
  times.reserve(reports.size());
  f64 total = 0;
  for (const auto& r : reports) {
    const f64 t = r.iteration_seconds();
    times.push_back(t);
    total += t;
    slo.max_iteration_seconds = std::max(slo.max_iteration_seconds, t);
    if (deadline_seconds <= 0 || t <= deadline_seconds) ++slo.deadline_hits;
  }
  slo.hit_rate =
      static_cast<f64>(slo.deadline_hits) / static_cast<f64>(slo.iterations);
  slo.mean_iteration_seconds = total / static_cast<f64>(slo.iterations);
  // p99 by the nearest-rank method; with small windows this is the max.
  const std::size_t rank = std::min(
      times.size() - 1,
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<f64>(times.size())) - 1));
  std::nth_element(times.begin(),
                   times.begin() + static_cast<std::ptrdiff_t>(rank),
                   times.end());
  slo.p99_iteration_seconds = times[rank];
  return slo;
}

}  // namespace

JobManager::JobManager(JobManagerConfig cfg) : cfg_(std::move(cfg)) {
  validate_specs(cfg_.jobs);
  if (cfg_.fair_share_quantum_bytes == 0) {
    throw std::invalid_argument(
        "JobManager: fair_share_quantum_bytes must be > 0");
  }
  if (cfg_.io_queue_depth == 0) {
    throw std::invalid_argument("JobManager: io_queue_depth must be > 0");
  }

  const TrainerConfig& head = cfg_.jobs.front().config;
  ClusterSubstrate::SharedConfig shared;
  shared.testbed = head.testbed;
  shared.storage = head.storage;
  // The substrate attaches the PFS channel when any job wants it; a job
  // with attach_pfs false simply never places subgroups there
  // (multipath off).
  shared.attach_pfs = std::any_of(
      cfg_.jobs.begin(), cfg_.jobs.end(),
      [](const JobSpec& s) { return s.config.attach_pfs; });
  shared.fair_share_quantum_bytes = cfg_.fair_share_quantum_bytes;
  shared.io_queue_depth = cfg_.io_queue_depth;
  shared.tier_exclusive_locking = head.engine.tier_exclusive_locking;
  for (std::size_t i = 0; i < cfg_.jobs.size(); ++i) {
    shared.tenant_weights[static_cast<u32>(i) + 1] = cfg_.jobs[i].weight;
  }
  substrate_ = std::make_unique<ClusterSubstrate>(head.time_scale, shared);

  // --- admission ---------------------------------------------------------
  // Pass 1: every job's hard demand (gradient reserve + pinned buffers,
  // plus its explicitly requested cache) is reserved up front; the first
  // job that does not fit is rejected loudly here, before anything runs.
  u32 derive_weight = 0;
  for (const auto& spec : cfg_.jobs) {
    const MemoryPlan plan = plan_memory({spec.config.model, spec.config.testbed,
                                         80ull * GiB, 0,
                                         spec.config.subgroup_params,
                                         spec.config.microbatch, true});
    if (!plan.gpu_fits) {
      throw AdmissionError("admission rejected: job '" + spec.name +
                           "' does not fit in GPU memory:\n" +
                           plan.to_string());
    }
    u64 demand = hard_host_demand(spec);
    if (spec.config.host_cache_override > 0) {
      demand += per_job_cache_bytes(spec, spec.config.host_cache_override);
    } else {
      derive_weight += spec.weight;
    }
    substrate_->reserve_host(spec.name, demand);  // throws AdmissionError
  }
  // Pass 2: jobs without an explicit cache request split the remaining
  // host budget by fair-share weight. A share below the engine's pipeline
  // minimum grants no cache at all (the borrowed NodeSim then takes the
  // same eager-flush fallback a cache-starved owned node does).
  const u64 remaining =
      substrate_->host_budget_bytes() - substrate_->host_reserved_bytes();
  std::vector<u32> cache_override(cfg_.jobs.size(), 0);
  for (std::size_t i = 0; i < cfg_.jobs.size(); ++i) {
    const JobSpec& spec = cfg_.jobs[i];
    if (spec.config.host_cache_override > 0) {
      cache_override[i] = spec.config.host_cache_override;
      continue;
    }
    const u64 share = derive_weight > 0
        ? remaining / derive_weight * spec.weight
        : 0;
    const u64 per_worker = share / spec.config.testbed.gpus_per_node;
    const u64 subgroup_bytes =
        spec.config.subgroup_params * kOptimStateBytesPerParam;
    const u32 subgroups = static_cast<u32>(per_worker / subgroup_bytes);
    if (subgroups >= spec.config.engine.prefetch_ahead + 1) {
      cache_override[i] = subgroups;
      substrate_->reserve_host(spec.name + "#cache",
                               per_job_cache_bytes(spec, subgroups));
    }
  }

  // --- construction ------------------------------------------------------
  for (std::size_t i = 0; i < cfg_.jobs.size(); ++i) {
    const JobSpec& spec = cfg_.jobs[i];
    TrainerConfig job_cfg = spec.config;
    if (cache_override[i] > 0) job_cfg.host_cache_override = cache_override[i];
    MLPO_LOG_INFO << "JobManager: admitted job '" << spec.name << "' (tenant "
                  << (i + 1) << ", weight " << spec.weight << ", cache "
                  << cache_override[i] << " subgroups/worker)";
    trainers_.push_back(std::make_unique<Trainer>(
        job_cfg, *substrate_, static_cast<u32>(i) + 1));
  }
}

JobManager::~JobManager() = default;

std::vector<JobResult> JobManager::run() {
  const std::size_t n = trainers_.size();
  std::vector<JobResult> results(n);
  std::vector<std::exception_ptr> errors(n);

  const auto one_job = [&](std::size_t i) {
    const JobSpec& spec = cfg_.jobs[i];
    Trainer& trainer = *trainers_[i];
    trainer.initialize();
    std::vector<IterationReport> reports =
        trainer.run(spec.iterations, spec.warmup);
    // Stamp the job's tenant slice on every report so any downstream merge
    // (fleet aggregation, average_reports) keeps per-tenant SLO accounting.
    for (auto& r : reports) {
      TenantSlice slice;
      slice.tenant = trainer.tenant();
      slice.iterations = 1;
      slice.iteration_seconds = r.iteration_seconds();
      slice.max_iteration_seconds = r.iteration_seconds();
      const bool hit = spec.deadline_seconds <= 0 ||
                       r.iteration_seconds() <= spec.deadline_seconds;
      slice.deadline_hits = hit ? 1 : 0;
      slice.deadline_misses = hit ? 0 : 1;
      r.tenants.push_back(slice);
    }
    JobResult& result = results[i];
    result.name = spec.name;
    result.tenant = trainer.tenant();
    result.weight = spec.weight;
    result.slo = slo_from_reports(reports, spec.deadline_seconds);
    result.reports = std::move(reports);
    result.state_checksum = cluster_state_checksum(trainer.cluster());
    if (const RecoveryStats* rec = trainer.recovery_stats()) {
      result.recovery = *rec;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      try {
        one_job(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < n; ++i) {
    if (!errors[i]) continue;
    MLPO_LOG_WARN << "JobManager: job '" << cfg_.jobs[i].name << "' failed";
    std::rethrow_exception(errors[i]);
  }
  return results;
}

JobManagerConfig job_manager_config_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("jobs config: document must be a JSON object");
  }
  JobManagerConfig cfg;
  cfg.fair_share_quantum_bytes = static_cast<u64>(doc.int_or(
      "fair_share_quantum_bytes",
      static_cast<i64>(cfg.fair_share_quantum_bytes)));
  cfg.io_queue_depth = static_cast<std::size_t>(
      doc.int_or("io_queue_depth", static_cast<i64>(cfg.io_queue_depth)));
  if (!doc.contains("jobs") || !doc.at("jobs").is_array()) {
    throw std::invalid_argument(
        "jobs config: a non-empty \"jobs\" array is required");
  }
  // Strict like the policy registry: unknown keys abort naming the known
  // set — a typoed "wieght" must not silently weigh 1.
  static const std::set<std::string> known{
      "name", "weight", "deadline_seconds", "iterations", "warmup", "config"};
  for (const auto& entry : doc.at("jobs").as_array()) {
    if (!entry.is_object()) {
      throw std::invalid_argument("jobs config: each job must be an object");
    }
    for (const auto& [key, value] : entry.as_object()) {
      (void)value;
      if (known.count(key) == 0) {
        std::string known_list;
        for (const auto& k : known) known_list += " " + k;
        throw std::invalid_argument("jobs config: unknown job key '" + key +
                                    "' (known:" + known_list + ")");
      }
    }
    JobSpec spec;
    spec.name = entry.string_or("name", "");
    const i64 weight = entry.int_or("weight", 1);
    if (weight < 1) {
      throw std::invalid_argument("jobs config: job '" + spec.name +
                                  "': weight must be >= 1 (got " +
                                  std::to_string(weight) + ")");
    }
    spec.weight = static_cast<u32>(weight);
    spec.deadline_seconds = entry.number_or("deadline_seconds", 0);
    const i64 iterations = entry.int_or("iterations", 10);
    const i64 warmup = entry.int_or("warmup", 2);
    if (iterations < 1 || warmup < 0) {
      throw std::invalid_argument("jobs config: job '" + spec.name +
                                  "': iterations must be >= 1 and warmup "
                                  ">= 0");
    }
    spec.iterations = static_cast<u32>(iterations);
    spec.warmup = static_cast<u32>(warmup);
    if (entry.contains("config")) {
      spec.config = trainer_config_from_json(entry.at("config"));
    }
    cfg.jobs.push_back(std::move(spec));
  }
  // Spec-level validation (names, weights, cross-job agreement) runs again
  // inside the JobManager constructor; fail the cheap checks here too so
  // a config tool can validate without building a substrate.
  validate_specs(cfg.jobs);
  return cfg;
}

JobManagerConfig job_manager_config_from_json(const std::string& text) {
  return job_manager_config_from_json(json::parse(text));
}

}  // namespace mlpo
