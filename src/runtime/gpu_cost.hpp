// GPU compute cost model for the forward/backward passes.
//
// The library emulates GPU compute as virtual-time charges. The
// coefficients are calibrated against the paper's gap analysis (§3.1): a
// 40B model on a 4-GPU Testbed-1 node with micro-batch 1 and sequence 2048
// completes the forward pass in ~0.6 s; the backward pass costs ~3x the
// forward FLOPs when activation checkpointing is on (2x backward + 1x
// recompute, the paper's "33% additional recomputation" setup).
#pragma once

#include "util/common.hpp"

namespace mlpo {

struct GpuCostModel {
  /// Seconds per parameter per micro-batch sample for a node-level model
  /// replica (tensor parallelism inside the node is already folded in).
  f64 forward_secs_per_param = 0.6 / 40e9;
  /// backward+recompute FLOPs relative to forward (activation ckpt on).
  f64 backward_factor = 3.0;

  f64 forward_seconds(u64 params, u32 microbatch) const {
    return forward_secs_per_param * static_cast<f64>(params) *
           static_cast<f64>(microbatch);
  }
  f64 backward_seconds(u64 params, u32 microbatch) const {
    return forward_seconds(params, microbatch) * backward_factor;
  }
};

}  // namespace mlpo
