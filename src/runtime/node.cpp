#include "runtime/node.hpp"

#include <barrier>
#include <exception>
#include <stdexcept>
#include <thread>

#include "policy/policy_registry.hpp"
#include "runtime/cluster_substrate.hpp"
#include "train/sharding.hpp"
#include "util/logging.hpp"

namespace mlpo {

namespace {

/// Pick the error to surface from a set of parallel worker failures. A
/// FailStopError is the signature of an injected node loss; prefer it over
/// any secondary error it may have caused in sibling workers, so the
/// cluster layer classifies the node as failed rather than buggy.
std::exception_ptr preferred_error(
    const std::vector<std::exception_ptr>& errors) {
  std::exception_ptr fallback;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!fallback) fallback = e;
    try {
      std::rethrow_exception(e);
    } catch (const FailStopError&) {
      return e;
    } catch (...) {
    }
  }
  return fallback;
}

}  // namespace

u64 host_cache_budget_bytes(const TestbedSpec& testbed, u64 model_params) {
  // ZeRO-3 runtime structures (parameter partitions, all-reduce buckets,
  // communication staging — paper cites 250-350 GB) plus the FP16
  // gradient-accumulation buffer for the whole node's shard.
  const u64 runtime_base = 280 * GiB;
  const u64 grad_reserve = model_params * kFp16Bytes;
  const u64 reserved = runtime_base + grad_reserve;
  return testbed.host_memory_bytes > reserved
      ? testbed.host_memory_bytes - reserved
      : 0;
}

NodeSim::NodeSim(const SimClock& clock, const NodeConfig& cfg,
                 std::shared_ptr<StorageTier> pfs)
    : clock_(&clock), cfg_(cfg) {
  const u32 gpus = cfg_.testbed.gpus_per_node;
  const u32 world = cfg_.total_world ? cfg_.total_world : gpus;
  if (world % gpus != 0 && cfg_.total_world != 0) {
    throw std::invalid_argument("NodeSim: total_world not a multiple of node size");
  }

  ThreadPool* cpu_pool = nullptr;
  if (cfg_.substrate != nullptr) {
    // Borrowed mode: the substrate's tiers, scheduler and CPU pool are the
    // node's world. Constructing the node revives its tenant on the shared
    // scheduler — a rebuilt node is replacement hardware, exactly like a
    // fresh set of FailStopTiers in owned mode (the injector re-arms any
    // still-future deadlines afterwards).
    if (!cfg_.substrate->shared()) {
      throw std::invalid_argument(
          "NodeSim: NodeConfig::substrate points at an owned-mode substrate; "
          "only shared substrates can be borrowed");
    }
    vtier_active_ = &cfg_.substrate->vtier();
    cpu_pool = cfg_.substrate->cpu_pool();
    cfg_.substrate->io().revive_tenant(cfg_.tenant);
  } else {
    // With wrap_failstop each path goes behind a FailStopTier so the
    // FailureInjector can take down the node (or one device) mid-run.
    const auto wrap = [&](std::shared_ptr<StorageTier> tier)
        -> std::shared_ptr<StorageTier> {
      if (!cfg_.wrap_failstop) return tier;
      auto failstop = std::make_shared<FailStopTier>(
          tier->name() + "+failstop", std::move(tier), clock);
      failstops_.push_back(failstop);
      return failstop;
    };
    // Each node keeps its file-backed objects apart under a node-indexed
    // directory (the emulated backend is private per node by construction).
    const std::string node_tag =
        "node" + std::to_string(cfg_.first_rank / static_cast<int>(gpus));
    nvme_ = wrap(make_nvme_backend(cfg_.storage, cfg_.testbed, clock, "nvme",
                                   node_tag));
    vtier_ = std::make_unique<VirtualTier>();
    vtier_->add_path(nvme_);
    if (cfg_.attach_pfs) {
      // `pfs` is the cluster-shared fabric (aggregate capacity); each node
      // accesses it through its own NIC-limited client channel. Only the
      // client channel is fail-stop-wrapped: a node loss severs the node's
      // access, the shared fabric itself survives.
      pfs_ = wrap(cfg_.testbed.make_pfs_tier(clock, "pfs", std::move(pfs)));
      vtier_->add_path(pfs_);
    }
    vtier_active_ = vtier_.get();
    cpu_pool_ = std::make_unique<ThreadPool>(
        std::min<u32>(cfg_.testbed.cpu_cores, 8));
    cpu_pool = cpu_pool_.get();
  }
  grads_ = std::make_unique<GradSource>();

  // Per-worker engine options: CPU rate and cache budget are node resources
  // divided between the workers.
  EngineOptions opts = cfg_.engine_opts;
  opts.cpu_update_rate =
      cfg_.testbed.cpu_update_rate_node / static_cast<f64>(gpus);
  if (cfg_.host_cache_override > 0) {
    opts.host_cache_subgroups = cfg_.host_cache_override;
  } else {
    // On a shared substrate the host is not this node's to size against:
    // cache capacity arrives only as an explicit admission-time override
    // (JobManager). With none granted, the budget is zero and the
    // eager-flush fallback below engages.
    const u64 budget = cfg_.substrate != nullptr
        ? 0
        : host_cache_budget_bytes(cfg_.testbed, cfg_.model.parameters());
    const u64 per_worker = budget / gpus;
    const u64 subgroup_bytes =
        cfg_.subgroup_params * kOptimStateBytesPerParam;
    opts.host_cache_subgroups =
        static_cast<u32>(per_worker / subgroup_bytes);
    // Below the pipeline minimum caching cannot work safely; disable it —
    // and since the engines reject a cache-exploiting order policy with a
    // zero-capacity cache, fall back to the eager-flush schedule too. The
    // fallback must itself satisfy EngineOptions::validate, so a
    // zero-prefetch pipeline regains one outstanding prefetch in exchange
    // for the lost cache.
    if (opts.host_cache_subgroups < opts.prefetch_ahead + 1) {
      opts.host_cache_subgroups = 0;
      if (make_update_order_policy(opts.update_order_policy)
              ->uses_host_cache()) {
        MLPO_LOG_WARN << "NodeSim: host-cache budget ("
                      << (per_worker / subgroup_bytes)
                      << " subgroups) below the pipeline minimum; dropping "
                      << "update_order_policy '" << opts.update_order_policy
                      << "' to 'ascending'";
        opts.update_order_policy = "ascending";
      }
      if (opts.prefetch_ahead == 0) opts.prefetch_ahead = 1;
    }
  }

  for (u32 w = 0; w < gpus; ++w) {
    const int rank = cfg_.first_rank + static_cast<int>(w);
    const ShardLayout layout = cfg_.elastic_sharding
        ? make_elastic_shard_layout(cfg_.model.parameters(), world, rank,
                                    cfg_.subgroup_params)
        : make_shard_layout(cfg_.model.parameters(), world, rank,
                            cfg_.subgroup_params);
    if (cfg_.substrate != nullptr) {
      workers_.push_back(std::make_unique<Worker>(
          clock, *vtier_active_, cpu_pool, *grads_, cfg_.substrate->io(),
          cfg_.tenant, static_cast<int>(w), rank, opts, layout));
    } else {
      workers_.push_back(std::make_unique<Worker>(
          clock, *vtier_active_, cpu_pool, *grads_, cfg_.testbed,
          static_cast<int>(w), rank, opts, layout));
    }
  }

  // Phase cost constants. With tensor parallelism the node is one model
  // replica, so forward/backward compute charge the whole model once.
  const u64 params = cfg_.model.parameters();
  f64 fwd_comm = 0, bwd_comm = 0;
  if (cfg_.dp_nodes > 1) {
    // Weak scaling: TP intra-node + DP across nodes.
    const Zero3CommCost dp = zero3_comm_cost(
        cfg_.inter_node, cfg_.dp_nodes, cfg_.model.fp16_param_bytes());
    const u64 act_bytes = static_cast<u64>(cfg_.microbatch) *
                          cfg_.model.seq_length * cfg_.model.hidden_dim *
                          kFp16Bytes;
    const f64 tp = tensor_parallel_seconds(cfg_.intra_node, gpus,
                                           cfg_.model.num_layers, act_bytes);
    fwd_comm = dp.forward_seconds + tp / 2;
    bwd_comm = dp.backward_seconds + tp / 2;
  } else {
    // Single node: ZeRO-3 data parallelism across the node's GPUs over
    // NVLink (parameter allgather + gradient reduce-scatter).
    const Zero3CommCost dp = zero3_comm_cost(cfg_.intra_node, gpus,
                                             cfg_.model.fp16_param_bytes());
    fwd_comm = dp.forward_seconds;
    bwd_comm = dp.backward_seconds;
  }
  fwd_seconds_ = cfg_.gpu_cost.forward_seconds(params, cfg_.microbatch) + fwd_comm;
  bwd_seconds_ = cfg_.gpu_cost.backward_seconds(params, cfg_.microbatch) + bwd_comm;
}

void NodeSim::initialize() {
  // Initial distribution runs in parallel across workers (one-off setup).
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    threads.emplace_back([this, w, &errors] {
      try {
        workers_[w]->initialize();
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (auto error = preferred_error(errors)) std::rethrow_exception(error);
}

IterationReport NodeSim::run_iteration(u64 iteration) {
  const u32 num_workers = worker_count();
  // Workers + the coordinating thread; the coordinator only takes phase
  // timestamps at the barriers.
  std::barrier sync(num_workers + 1);

  std::vector<IterationReport> update_reports(num_workers);
  std::vector<std::exception_ptr> errors(num_workers);
  constexpr int kPhases = 3;  // start->fwd+bwd done->update done->iteration end

  const auto body = [&](u32 w) {
    Worker& worker = *workers_[w];
    // Forward + backward for every accumulation micro-step. Forward is a
    // pure compute+comm charge; backward interleaves gradient deposits.
    for (u32 m = 0; m < cfg_.accum_steps; ++m) {
      const u64 sample = iteration * cfg_.accum_steps + m;
      clock_->sleep_for(fwd_seconds_);
      worker.run_backward_micro(sample, m == 0, m + 1 == cfg_.accum_steps,
                                bwd_seconds_);
    }
  };

  std::vector<std::thread> threads;
  for (u32 w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w] {
      int phases_done = 0;
      try {
        sync.arrive_and_wait();  // iteration start
        body(w);
        sync.arrive_and_wait();  // fwd+bwd done
        ++phases_done;
        update_reports[w] = workers_[w]->run_update(iteration);
        sync.arrive_and_wait();  // update done
        ++phases_done;
        sync.arrive_and_wait();  // iteration end
        ++phases_done;
      } catch (...) {
        errors[w] = std::current_exception();
        // Keep the barrier protocol alive so no thread deadlocks.
        for (; phases_done < kPhases; ++phases_done) sync.arrive_and_wait();
      }
    });
  }

  sync.arrive_and_wait();
  const f64 t_start = clock_->now();
  sync.arrive_and_wait();
  const f64 t_fb = clock_->now();
  sync.arrive_and_wait();
  const f64 t_update = clock_->now();
  sync.arrive_and_wait();
  for (auto& t : threads) t.join();
  if (auto error = preferred_error(errors)) std::rethrow_exception(error);

  // Merge: phase walls from the barrier clock; forward attributed
  // analytically (fwd and bwd interleave across micro-steps).
  IterationReport report;
  report.iteration = iteration;
  report.forward_seconds = fwd_seconds_ * cfg_.accum_steps;
  report.backward_seconds =
      std::max(0.0, (t_fb - t_start) - report.forward_seconds);
  report.update_seconds = t_update - t_fb;
  for (const auto& r : update_reports) report.accumulate_counters(r);
  ++iterations_run_;
  return report;
}

std::vector<IterationReport> NodeSim::run(u32 iterations, u32 warmup) {
  std::vector<IterationReport> kept;
  for (u32 i = 0; i < iterations; ++i) {
    IterationReport r = run_iteration(i);
    if (i >= warmup) kept.push_back(std::move(r));
  }
  return kept;
}

void NodeSim::fail_stop() {
  if (cfg_.substrate != nullptr) {
    cfg_.substrate->io().fail_tenant(cfg_.tenant);
    return;
  }
  if (failstops_.empty()) {
    throw std::logic_error(
        "NodeSim::fail_stop: node built without wrap_failstop; enable it in "
        "NodeConfig (or the resilience JSON section) to inject failures");
  }
  for (auto& f : failstops_) f->kill();
}

void NodeSim::arm_fail_stop(std::size_t path, f64 kill_at_vtime) {
  if (cfg_.substrate != nullptr) {
    if (path != npos) {
      throw std::logic_error(
          "NodeSim::arm_fail_stop: path-scoped failures are unsupported on a "
          "shared substrate (the tiers belong to every tenant); inject a "
          "whole-node (kind \"node\") failure instead");
    }
    cfg_.substrate->io().arm_tenant_fail(cfg_.tenant, kill_at_vtime);
    return;
  }
  if (failstops_.empty()) {
    throw std::logic_error(
        "NodeSim::arm_fail_stop: node built without wrap_failstop; enable "
        "it in NodeConfig (or the resilience JSON section) to inject "
        "failures");
  }
  if (path == npos) {
    for (auto& f : failstops_) f->arm(kill_at_vtime);
    return;
  }
  if (path >= failstops_.size()) {
    throw std::out_of_range("NodeSim::arm_fail_stop: path " +
                            std::to_string(path) + " out of range");
  }
  failstops_[path]->arm(kill_at_vtime);
}

FailStopTier* NodeSim::failstop(std::size_t idx) {
  return idx < failstops_.size() ? failstops_[idx].get() : nullptr;
}

bool NodeSim::failstop_dead(std::size_t path) {
  if (cfg_.substrate != nullptr) {
    // Every "path" of a borrowed node shares the tenant latch's fate.
    return cfg_.substrate->io().tenant_failed(cfg_.tenant);
  }
  return path < failstops_.size() && failstops_[path]->dead();
}

bool NodeSim::any_failstop_dead() {
  if (cfg_.substrate != nullptr) {
    return cfg_.substrate->io().tenant_failed(cfg_.tenant);
  }
  for (auto& f : failstops_) {
    if (f->dead()) return true;
  }
  return false;
}

u64 NodeSim::cancel_queued_io() {
  if (cfg_.substrate != nullptr) {
    return cfg_.substrate->io().cancel_tenant_queued(cfg_.tenant);
  }
  u64 cancelled = 0;
  for (auto& w : workers_) cancelled += w->io().cancel_all_queued();
  return cancelled;
}

Engine::Distribution NodeSim::node_distribution() const {
  Engine::Distribution total;
  total.path_sim_bytes.assign(vtier_active_->path_count(), 0);
  for (const auto& w : workers_) {
    const auto d = w->engine().distribution();
    total.host_sim_bytes += d.host_sim_bytes;
    for (std::size_t p = 0; p < d.path_sim_bytes.size(); ++p) {
      total.path_sim_bytes[p] += d.path_sim_bytes[p];
    }
  }
  return total;
}

}  // namespace mlpo
