#include "runtime/cluster_substrate.hpp"

#include <algorithm>

namespace mlpo {

ClusterSubstrate::ClusterSubstrate(f64 time_scale)
    : clock_(std::make_unique<SimClock>(time_scale)) {}

ClusterSubstrate::ClusterSubstrate(f64 time_scale, const SharedConfig& shared)
    : clock_(std::make_unique<SimClock>(time_scale)), shared_cfg_(shared) {
  shared_cfg_.storage.validate();

  // The shared world mirrors what one NodeSim builds for itself, except
  // there is exactly one of everything: one NVMe backend, one virtual
  // tier, one scheduler every job's traffic flows through.
  nvme_ = make_nvme_backend(shared_cfg_.storage, shared_cfg_.testbed, *clock_,
                            "nvme", "shared");
  vtier_ = std::make_unique<VirtualTier>();
  vtier_->add_path(nvme_);
  if (shared_cfg_.attach_pfs) {
    pfs_client_ = shared_cfg_.testbed.make_pfs_tier(
        *clock_, "pfs", acquire_pfs_fabric(shared_cfg_.testbed));
    vtier_->add_path(pfs_client_);
  }

  cpu_pool_ = std::make_unique<ThreadPool>(
      std::min<u32>(shared_cfg_.testbed.cpu_cores, 8));

  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = shared_cfg_.io_queue_depth;
  io_cfg.tier_exclusive_locking = shared_cfg_.tier_exclusive_locking;
  io_cfg.worker_id = 0;
  io_cfg.tenant_weights = shared_cfg_.tenant_weights;
  io_cfg.fair_share_quantum_bytes = shared_cfg_.fair_share_quantum_bytes;
  // The scheduler owns the D2H/H2D link limiters — there is no per-worker
  // link when every job shares one substrate.
  io_cfg.d2h_bandwidth = shared_cfg_.testbed.d2h_bandwidth;
  io_ = std::make_unique<IoScheduler>(*clock_, vtier_.get(), nullptr, nullptr,
                                      io_cfg);

  {
    MutexLock lock(mutex_);
    // Jobs meter their own gradient reserves through reserve_host, so the
    // substrate budget carves out only the runtime base (cf.
    // host_cache_budget_bytes, which folds one model's reserve in).
    const u64 runtime_base = 280 * GiB;
    host_budget_ = shared_cfg_.testbed.host_memory_bytes > runtime_base
        ? shared_cfg_.testbed.host_memory_bytes - runtime_base
        : 0;
  }
}

ClusterSubstrate::~ClusterSubstrate() = default;

std::shared_ptr<StorageTier> ClusterSubstrate::acquire_pfs_fabric(
    const TestbedSpec& testbed) {
  MutexLock lock(mutex_);
  if (!pfs_fabric_) {
    pfs_fabric_ = testbed.make_pfs_fabric(*clock_, "pfs-fabric");
  }
  return pfs_fabric_;
}

VirtualTier& ClusterSubstrate::vtier() {
  if (!vtier_) {
    throw std::logic_error(
        "ClusterSubstrate::vtier: substrate is in owned (single-job) mode — "
        "construct with a SharedConfig for shared resources");
  }
  return *vtier_;
}

IoScheduler& ClusterSubstrate::io() {
  if (!io_) {
    throw std::logic_error(
        "ClusterSubstrate::io: substrate is in owned (single-job) mode — "
        "construct with a SharedConfig for shared resources");
  }
  return *io_;
}

ThreadPool* ClusterSubstrate::cpu_pool() {
  if (!cpu_pool_) {
    throw std::logic_error(
        "ClusterSubstrate::cpu_pool: substrate is in owned (single-job) mode "
        "— construct with a SharedConfig for shared resources");
  }
  return cpu_pool_.get();
}

const ClusterSubstrate::SharedConfig& ClusterSubstrate::shared_config() const {
  if (!io_) {
    throw std::logic_error(
        "ClusterSubstrate::shared_config: substrate is in owned mode");
  }
  return shared_cfg_;
}

u64 ClusterSubstrate::host_budget_bytes() const {
  MutexLock lock(mutex_);
  return host_budget_;
}

u64 ClusterSubstrate::host_reserved_bytes() const {
  MutexLock lock(mutex_);
  return host_reserved_;
}

void ClusterSubstrate::reserve_host(const std::string& job_name, u64 bytes) {
  MutexLock lock(mutex_);
  if (host_reservations_.count(job_name) != 0) {
    throw std::logic_error("ClusterSubstrate::reserve_host: job '" + job_name +
                           "' already holds a reservation");
  }
  if (bytes > host_budget_ - host_reserved_ || host_reserved_ > host_budget_) {
    throw AdmissionError(
        "admission rejected: job '" + job_name + "' needs " +
        std::to_string(bytes) + " host bytes but only " +
        std::to_string(host_budget_ - std::min(host_reserved_, host_budget_)) +
        " of " + std::to_string(host_budget_) + " remain (" +
        std::to_string(host_reserved_) +
        " reserved by earlier jobs); shrink the model/cache or lower the "
        "job count");
  }
  host_reservations_[job_name] = bytes;
  host_reserved_ += bytes;
}

void ClusterSubstrate::release_host(const std::string& job_name) {
  MutexLock lock(mutex_);
  auto it = host_reservations_.find(job_name);
  if (it == host_reservations_.end()) return;
  host_reserved_ -= it->second;
  host_reservations_.erase(it);
}

}  // namespace mlpo
