// Testbed hardware descriptions (paper Table 1) and the tier/channel
// factories that turn them into emulated devices.
#pragma once

#include <memory>
#include <string>

#include "tiers/throttled_tier.hpp"
#include "util/common.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

struct TestbedSpec {
  std::string name;
  u32 gpus_per_node = 4;
  f64 d2h_bandwidth;        ///< pinned D<->H GB-per-second, per GPU link
  u32 cpu_cores;
  /// Aggregate CPU update throughput of the node in simulated params per
  /// vsecond when the state is host-resident (paper §4.2 quotes ~8000
  /// Mparams/s for Testbed-1's 96 cores).
  f64 cpu_update_rate_node;
  f64 nvme_read_bw;
  f64 nvme_write_bw;
  f64 pfs_read_bw;
  f64 pfs_write_bw;
  u64 host_memory_bytes = 512 * GiB;

  /// Contention parameters of the NVMe device (see ThrottleSpec). The PFS
  /// is network-attached with deep request queues and many OSTs, so its
  /// per-client channel sees duplex interference but no multi-actor
  /// penalty (client contention is modelled by the shared fabric below).
  f64 nvme_duplex_penalty = 0.35;
  f64 nvme_multi_actor_penalty = 0.12;
  f64 pfs_duplex_penalty = 0.10;
  f64 pfs_multi_actor_penalty = 0.0;

  /// Aggregate PFS fabric bandwidth as a multiple of the per-client rate.
  /// Table 1's PFS numbers are what one node measures through its NIC; the
  /// backing store (VAST DNodes / 160 Lustre OSTs) serves many clients at
  /// that rate concurrently. 8x covers the paper's largest run (8 nodes);
  /// lowering it emulates a PFS under external I/O pressure — the shared-
  /// tier contention the paper flags for future study.
  f64 pfs_aggregate_factor = 8.0;

  /// Testbed-1 (ANL JLSE): 4x H100-80GB, 96 cores, VAST PFS.
  static TestbedSpec testbed1();
  /// Testbed-2 (ALCF Polaris): 4x A100-40GB, 32 cores, Lustre PFS.
  static TestbedSpec testbed2();

  /// Build the node-local NVMe as a throttled in-memory tier.
  std::shared_ptr<ThrottledTier> make_nvme_tier(const SimClock& clock,
                                                const std::string& name) const;

  /// Build the cluster-wide PFS fabric: the aggregate capacity all client
  /// channels draw from (pfs_aggregate_factor x per-client rates).
  std::shared_ptr<ThrottledTier> make_pfs_fabric(const SimClock& clock,
                                                 const std::string& name) const;

  /// Build one node's PFS access path at the per-client (NIC-limited)
  /// Table-1 rates, layered over `fabric` (or a private backend when
  /// fabric is null — single-node setups). Persistent.
  std::shared_ptr<ThrottledTier> make_pfs_tier(
      const SimClock& clock, const std::string& name,
      std::shared_ptr<StorageTier> fabric = nullptr) const;

  /// Object-store path (DAOS-class): PFS-like bandwidth with higher
  /// per-request latency — the third alternative storage the paper lists
  /// for the virtual tier. Persistent.
  std::shared_ptr<ThrottledTier> make_object_store_tier(
      const SimClock& clock, const std::string& name, f64 read_bw,
      f64 write_bw) const;

  /// CXL-pool path (conclusion's future work: "parallel I/O paths for
  /// next-generation Compute-Express-Link memory pools"): memory-class
  /// bandwidth, microsecond latency, volatile.
  static std::shared_ptr<ThrottledTier> make_cxl_tier(
      const SimClock& clock, const std::string& name,
      f64 bandwidth = 30.0 * GB);
};

}  // namespace mlpo
