// Memory feasibility planning — the constraints the paper's methodology
// section (§4.1) enforces before every run:
//
//   GPU memory must hold (1) the FP16 model parameters of this rank's
//   working set, (2) activation checkpoints for one micro-batch, and
//   (3) the FP16 gradients of at least one subgroup in flight;
//
//   host memory must hold the ZeRO-3 runtime buffers, the FP16 gradient
//   accumulation reservation, and at least three subgroups' worth of
//   pinned I/O buffers (flush / update / prefetch).
//
// The planner reports every component, the verdict, and the derived
// host-cache budget, so a user can check a configuration before paying for
// a run — the same arithmetic DeepSpeed's memory estimator exposes.
#pragma once

#include <string>
#include <vector>

#include "core/offload_engine.hpp"
#include "runtime/testbed.hpp"
#include "train/model_config.hpp"

namespace mlpo {

struct MemoryPlan {
  struct Item {
    std::string name;
    u64 bytes;
  };

  // --- per-GPU ---
  std::vector<Item> gpu_items;
  u64 gpu_required = 0;
  u64 gpu_capacity = 0;
  bool gpu_fits = false;

  // --- per-node host ---
  std::vector<Item> host_items;
  u64 host_required = 0;   ///< hard requirements (excluding cache)
  u64 host_capacity = 0;
  bool host_fits = false;

  /// Host bytes left for caching subgroups after hard requirements.
  u64 cache_budget_bytes = 0;
  /// Subgroups per worker that budget supports.
  u32 cache_subgroups_per_worker = 0;

  bool feasible() const { return gpu_fits && host_fits; }

  /// Human-readable multi-line report.
  std::string to_string() const;
};

struct PlannerInput {
  ModelConfig model;
  TestbedSpec testbed;
  u64 gpu_memory_bytes = 80ull * GiB;  ///< per GPU (H100-80GB default)
  u32 total_world = 0;                 ///< ranks; 0 = one node's GPUs
  u64 subgroup_params = kDefaultSubgroupParams;
  u32 microbatch = 1;
  /// Activation checkpointing on (paper's configuration): only per-layer
  /// boundary activations are kept.
  bool activation_checkpointing = true;
};

MemoryPlan plan_memory(const PlannerInput& input);

}  // namespace mlpo
