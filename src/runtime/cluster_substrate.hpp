// The shareable bottom half of a training world: the SimClock, storage
// tiers, I/O scheduler, and CPU pool that iterations run against. A
// single-job Trainer *owns* one (and behaves exactly as before — the
// substrate is then just the clock plus the lazily-built PFS fabric the
// cluster always had); a JobManager builds one in *shared* mode and lends
// it to several Trainer-shaped jobs, which then contend for the same NVMe,
// PFS and link bandwidth under the IoScheduler's per-tenant fair sharing.
//
// Host memory is the one resource the substrate meters up front: jobs
// reserve their host-cache + gradient-buffer bytes at admission, and a job
// whose demand does not fit is rejected loudly (AdmissionError) before it
// starts, instead of OOM-ing the node mid-run.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/io_scheduler.hpp"
#include "runtime/storage_config.hpp"
#include "runtime/testbed.hpp"
#include "tiers/virtual_tier.hpp"
#include "util/mutex.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

/// Thrown by ClusterSubstrate::reserve_host when a job's host-memory demand
/// exceeds what the substrate has left. The message names the job and the
/// exact budget arithmetic so a rejected submission is diagnosable from the
/// error alone.
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ClusterSubstrate {
 public:
  /// Configuration for shared (multi-tenant) mode.
  struct SharedConfig {
    TestbedSpec testbed = TestbedSpec::testbed1();
    StorageConfig storage;
    /// Attach the per-client PFS channel (over the shared fabric) to the
    /// virtual tier.
    bool attach_pfs = true;
    /// Fair-share weights by tenant (= job) id; absent tenants weigh 1.
    std::map<u32, u32> tenant_weights;
    /// DRR byte quantum per visit per unit weight.
    u64 fair_share_quantum_bytes = 1 << 20;
    /// Per-tenant per-channel queue bound on the shared scheduler.
    std::size_t io_queue_depth = 256;
    bool tier_exclusive_locking = true;
  };

  /// Owned mode (single job): the substrate is the clock plus the lazily
  /// created PFS fabric; the Trainer/NodeSim stack builds its tiers and
  /// schedulers exactly as it always has.
  explicit ClusterSubstrate(f64 time_scale);

  /// Shared mode (JobManager): additionally builds the common NVMe backend,
  /// virtual tier, one tenant-fair IoScheduler, and the CPU pool that every
  /// borrowed job runs on.
  ClusterSubstrate(f64 time_scale, const SharedConfig& shared);

  ClusterSubstrate(const ClusterSubstrate&) = delete;
  ClusterSubstrate& operator=(const ClusterSubstrate&) = delete;
  ~ClusterSubstrate();

  const SimClock& clock() const { return *clock_; }
  bool shared() const { return io_ != nullptr; }

  /// The cluster-wide PFS fabric, built on first request and cached, so
  /// every consumer (cluster pfs channels, benches) draws from the same
  /// aggregate capacity. Returns nullptr when the testbed has no PFS
  /// configured — callers gate on attach_pfs themselves.
  std::shared_ptr<StorageTier> acquire_pfs_fabric(const TestbedSpec& testbed);

  // Shared-mode resources; throw std::logic_error in owned mode.
  VirtualTier& vtier();
  IoScheduler& io();
  ThreadPool* cpu_pool();
  const SharedConfig& shared_config() const;

  /// Host bytes available for jobs' caches and gradient buffers after the
  /// runtime base carve-out (same model as host_cache_budget_bytes, minus
  /// the per-model gradient reserve, which is per-job and metered through
  /// reserve_host instead).
  u64 host_budget_bytes() const;
  u64 host_reserved_bytes() const;

  /// Admission control: reserve `bytes` of host memory for `job_name`.
  /// Throws AdmissionError — listing budget, already-reserved, and
  /// requested bytes — when the reservation does not fit. A rejected job
  /// reserves nothing.
  void reserve_host(const std::string& job_name, u64 bytes);

  /// Release a job's reservation (job teardown / failed construction).
  void release_host(const std::string& job_name);

 private:
  std::unique_ptr<SimClock> clock_;
  SharedConfig shared_cfg_;

  mutable Mutex mutex_;
  std::shared_ptr<StorageTier> pfs_fabric_ MLPO_GUARDED_BY(mutex_);
  u64 host_budget_ MLPO_GUARDED_BY(mutex_) = 0;
  u64 host_reserved_ MLPO_GUARDED_BY(mutex_) = 0;
  std::map<std::string, u64> host_reservations_ MLPO_GUARDED_BY(mutex_);

  // Shared mode only (null in owned mode).
  std::shared_ptr<StorageTier> nvme_;
  std::shared_ptr<StorageTier> pfs_client_;
  std::unique_ptr<VirtualTier> vtier_;
  std::unique_ptr<ThreadPool> cpu_pool_;
  std::unique_ptr<IoScheduler> io_;
};

}  // namespace mlpo
