#include "runtime/testbed.hpp"

#include "tiers/memory_tier.hpp"

namespace mlpo {

TestbedSpec TestbedSpec::testbed1() {
  TestbedSpec s;
  s.name = "Testbed-1 (JLSE 4xH100-80GB)";
  s.gpus_per_node = 4;
  s.d2h_bandwidth = 55.0 * GB;
  s.cpu_cores = 96;
  s.cpu_update_rate_node = 8000e6;
  s.nvme_read_bw = 6.9 * GB;
  s.nvme_write_bw = 5.3 * GB;
  s.pfs_read_bw = 3.6 * GB;  // VAST
  s.pfs_write_bw = 3.6 * GB;
  return s;
}

TestbedSpec TestbedSpec::testbed2() {
  TestbedSpec s;
  s.name = "Testbed-2 (Polaris 4xA100-40GB)";
  s.gpus_per_node = 4;
  s.d2h_bandwidth = 25.0 * GB;
  s.cpu_cores = 32;
  // Fewer (and slower-aggregate) cores than Testbed-1, scaled by core count.
  s.cpu_update_rate_node = 8000e6 * 32.0 / 96.0;
  s.nvme_read_bw = 13.5 * GB;
  s.nvme_write_bw = 4.8 * GB;
  s.pfs_read_bw = 6.9 * GB;  // Lustre (HPE ClusterStor E1000)
  s.pfs_write_bw = 13.7 * GB;
  return s;
}

std::shared_ptr<ThrottledTier> TestbedSpec::make_nvme_tier(
    const SimClock& clock, const std::string& name) const {
  ThrottleSpec spec;
  spec.read_bw = nvme_read_bw;
  spec.write_bw = nvme_write_bw;
  spec.request_latency = 100e-6;  // block-layer + device latency per request
  spec.duplex_penalty = nvme_duplex_penalty;
  spec.multi_actor_penalty = nvme_multi_actor_penalty;
  return std::make_shared<ThrottledTier>(
      name, std::make_shared<MemoryTier>(name + "/backend"), clock, spec,
      /*persistent=*/false);
}

std::shared_ptr<ThrottledTier> TestbedSpec::make_pfs_fabric(
    const SimClock& clock, const std::string& name) const {
  ThrottleSpec spec;
  spec.read_bw = pfs_read_bw * pfs_aggregate_factor;
  spec.write_bw = pfs_write_bw * pfs_aggregate_factor;
  // The fabric's own request cost is folded into the client channel.
  return std::make_shared<ThrottledTier>(
      name, std::make_shared<MemoryTier>(name + "/backend"), clock, spec,
      /*persistent=*/true);
}

std::shared_ptr<ThrottledTier> TestbedSpec::make_pfs_tier(
    const SimClock& clock, const std::string& name,
    std::shared_ptr<StorageTier> fabric) const {
  ThrottleSpec spec;
  spec.read_bw = pfs_read_bw;
  spec.write_bw = pfs_write_bw;
  spec.request_latency = 500e-6;  // network round-trip + metadata
  spec.duplex_penalty = pfs_duplex_penalty;
  spec.multi_actor_penalty = pfs_multi_actor_penalty;
  if (!fabric) fabric = std::make_shared<MemoryTier>(name + "/backend");
  return std::make_shared<ThrottledTier>(name, std::move(fabric), clock, spec,
                                         /*persistent=*/true);
}

std::shared_ptr<ThrottledTier> TestbedSpec::make_object_store_tier(
    const SimClock& clock, const std::string& name, f64 read_bw,
    f64 write_bw) const {
  ThrottleSpec spec;
  spec.read_bw = read_bw;
  spec.write_bw = write_bw;
  spec.request_latency = 2e-3;  // object GET/PUT round-trip
  spec.duplex_penalty = 0.05;
  return std::make_shared<ThrottledTier>(
      name, std::make_shared<MemoryTier>(name + "/backend"), clock, spec,
      /*persistent=*/true);
}

std::shared_ptr<ThrottledTier> TestbedSpec::make_cxl_tier(
    const SimClock& clock, const std::string& name, f64 bandwidth) {
  ThrottleSpec spec;
  spec.read_bw = bandwidth;
  spec.write_bw = bandwidth;
  spec.request_latency = 2e-6;  // load/store-class access
  return std::make_shared<ThrottledTier>(
      name, std::make_shared<MemoryTier>(name + "/backend"), clock, spec,
      /*persistent=*/false);
}

}  // namespace mlpo
