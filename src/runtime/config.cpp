#include <algorithm>
#include <stdexcept>

#include "policy/policy_registry.hpp"
#include "runtime/trainer.hpp"

namespace mlpo {

namespace {

TestbedSpec testbed_by_name(const std::string& name) {
  if (name == "testbed1") return TestbedSpec::testbed1();
  if (name == "testbed2") return TestbedSpec::testbed2();
  throw std::invalid_argument("config: unknown testbed '" + name + "'");
}

EngineOptions engine_from_json(const json::Value& section) {
  // Base bundle: an explicit "preset" wins; otherwise "enabled": false
  // selects the DeepSpeed ZeRO-3 baseline. Individual keys then override
  // (ablation configs).
  EngineOptions opts = EngineOptions::preset(section.string_or(
      "preset",
      section.bool_or("enabled", true) ? "mlp_offload" : "deepspeed_zero3"));
  opts.engine = section.string_or("engine", opts.engine);
  // Like the policy names below, the engine kind fails at parse time with
  // the known set, not later inside worker construction.
  const auto kinds = engine_kind_names();
  if (std::find(kinds.begin(), kinds.end(), opts.engine) == kinds.end()) {
    std::string known;
    for (const auto& k : kinds) known += " " + k;
    throw std::invalid_argument("config: unknown engine kind '" +
                                opts.engine + "' (known:" + known + ")");
  }
  opts.multipath = section.bool_or("multipath", opts.multipath);
  opts.delayed_grad_conversion =
      section.bool_or("delayed_grad_conversion", opts.delayed_grad_conversion);
  opts.tier_exclusive_locking =
      section.bool_or("tier_exclusive_locking", opts.tier_exclusive_locking);

  // Legacy boolean spellings first, mapped onto the policy names...
  if (section.contains("cache_friendly_order")) {
    opts.update_order_policy = section.at("cache_friendly_order").as_bool()
                                   ? "alternating_cache_friendly"
                                   : "ascending";
  }
  if (section.contains("adaptive_placement")) {
    opts.placement_policy = section.at("adaptive_placement").as_bool()
                                ? "adaptive_ema"
                                : "eq1_static";
  }
  // ...then the explicit policy-name keys, so a named selection always
  // wins over a legacy bool when a config mixes both spellings. Resolve
  // the names here so an unknown one aborts at parse time with the
  // registered set in the message, not deep inside engine construction.
  if (section.contains("placement_policy")) {
    opts.placement_policy = section.at("placement_policy").as_string();
    make_placement_policy(opts.placement_policy);
  }
  if (section.contains("update_order_policy")) {
    opts.update_order_policy = section.at("update_order_policy").as_string();
    make_update_order_policy(opts.update_order_policy);
  }
  if (section.contains("prefetch_ahead")) {
    opts.prefetch_ahead = static_cast<u32>(section.at("prefetch_ahead").as_int());
  }
  if (section.contains("host_cache_subgroups")) {
    opts.host_cache_subgroups =
        static_cast<u32>(section.at("host_cache_subgroups").as_int());
  }
  // Iteration execution mode, strict-validated at parse time like the
  // policy names: an unknown mode aborts here with the known set.
  if (section.contains("execution")) {
    opts.execution = section.at("execution").as_string();
    if (opts.execution != "linear" && opts.execution != "graph") {
      throw std::invalid_argument("config: unknown execution mode '" +
                                  opts.execution + "' (known: linear graph)");
    }
  }
  if (section.contains("graph_workers")) {
    opts.graph_workers =
        static_cast<u32>(section.at("graph_workers").as_int());
  }
  return opts;
}

}  // namespace

TrainerConfig trainer_config_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("config: document must be a JSON object");
  }
  TrainerConfig cfg;
  if (doc.contains("model")) cfg.model = paper_model(doc.at("model").as_string());
  if (doc.contains("testbed")) {
    cfg.testbed = testbed_by_name(doc.at("testbed").as_string());
  }
  cfg.nodes = static_cast<u32>(doc.int_or("nodes", cfg.nodes));
  cfg.microbatch = static_cast<u32>(doc.int_or("microbatch", cfg.microbatch));
  cfg.accum_steps = static_cast<u32>(doc.int_or("accum_steps", cfg.accum_steps));
  cfg.subgroup_params = static_cast<u64>(
      doc.int_or("subgroup_params", static_cast<i64>(cfg.subgroup_params)));
  cfg.elem_scale =
      static_cast<u64>(doc.int_or("elem_scale", static_cast<i64>(cfg.elem_scale)));
  cfg.time_scale = doc.number_or("time_scale", cfg.time_scale);
  if (doc.contains("attach_pfs")) cfg.attach_pfs = doc.at("attach_pfs").as_bool();
  if (doc.contains("mlp_offload")) {
    cfg.engine = engine_from_json(doc.at("mlp_offload"));
  }
  // Storage backend selection; parse-time strict like the policy names
  // (unknown backend kinds / missing roots abort inside the parser).
  if (doc.contains("storage")) {
    cfg.storage = storage_config_from_json(doc.at("storage"));
  }
  if (!cfg.attach_pfs) cfg.engine.multipath = false;
  if (doc.contains("resilience")) {
    cfg.resilience = resilience_config_from_json(doc.at("resilience"));
    // Same parse-time strictness as the policy names: a re-sharding
    // restart without elastic sharding would fail deep inside recovery.
    // Only enforced when the section is live — "enabled": false keeps the
    // rest of the section inert (the A/B-baseline toggle).
    if (cfg.resilience.enabled && cfg.resilience.restart_nodes != 0 &&
        cfg.resilience.restart_nodes != cfg.nodes &&
        !cfg.resilience.elastic_sharding) {
      throw std::invalid_argument(
          "config: resilience.restart_nodes != nodes requires "
          "resilience.elastic_sharding");
    }
  }
  return cfg;
}

TrainerConfig trainer_config_from_json(const std::string& text) {
  return trainer_config_from_json(json::parse(text));
}

}  // namespace mlpo
