#include <stdexcept>

#include "runtime/trainer.hpp"

namespace mlpo {

namespace {

TestbedSpec testbed_by_name(const std::string& name) {
  if (name == "testbed1") return TestbedSpec::testbed1();
  if (name == "testbed2") return TestbedSpec::testbed2();
  throw std::invalid_argument("config: unknown testbed '" + name + "'");
}

EngineOptions engine_from_json(const json::Value& section) {
  // "enabled": false selects the DeepSpeed ZeRO-3 baseline preset; the four
  // per-principle flags then override individually (ablation configs).
  EngineOptions opts = section.bool_or("enabled", true)
      ? EngineOptions::mlp_offload()
      : EngineOptions::deepspeed_zero3();
  opts.multipath = section.bool_or("multipath", opts.multipath);
  opts.cache_friendly_order =
      section.bool_or("cache_friendly_order", opts.cache_friendly_order);
  opts.delayed_grad_conversion =
      section.bool_or("delayed_grad_conversion", opts.delayed_grad_conversion);
  opts.tier_exclusive_locking =
      section.bool_or("tier_exclusive_locking", opts.tier_exclusive_locking);
  opts.adaptive_placement =
      section.bool_or("adaptive_placement", opts.adaptive_placement);
  if (section.contains("prefetch_ahead")) {
    opts.prefetch_ahead = static_cast<u32>(section.at("prefetch_ahead").as_int());
  }
  return opts;
}

}  // namespace

TrainerConfig trainer_config_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("config: document must be a JSON object");
  }
  TrainerConfig cfg;
  if (doc.contains("model")) cfg.model = paper_model(doc.at("model").as_string());
  if (doc.contains("testbed")) {
    cfg.testbed = testbed_by_name(doc.at("testbed").as_string());
  }
  cfg.nodes = static_cast<u32>(doc.int_or("nodes", cfg.nodes));
  cfg.microbatch = static_cast<u32>(doc.int_or("microbatch", cfg.microbatch));
  cfg.accum_steps = static_cast<u32>(doc.int_or("accum_steps", cfg.accum_steps));
  cfg.subgroup_params = static_cast<u64>(
      doc.int_or("subgroup_params", static_cast<i64>(cfg.subgroup_params)));
  cfg.elem_scale =
      static_cast<u64>(doc.int_or("elem_scale", static_cast<i64>(cfg.elem_scale)));
  cfg.time_scale = doc.number_or("time_scale", cfg.time_scale);
  if (doc.contains("attach_pfs")) cfg.attach_pfs = doc.at("attach_pfs").as_bool();
  if (doc.contains("mlp_offload")) {
    cfg.engine = engine_from_json(doc.at("mlp_offload"));
  }
  if (!cfg.attach_pfs) cfg.engine.multipath = false;
  return cfg;
}

TrainerConfig trainer_config_from_json(const std::string& text) {
  return trainer_config_from_json(json::parse(text));
}

}  // namespace mlpo
