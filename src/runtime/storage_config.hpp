// Storage backend selection: the simulator→system switch.
//
// Every node-local NVMe path is built from a StorageConfig. The default
// ("sim") keeps the emulated ThrottledTier pipeline that all paper figures
// run on; "file" and "uring_file" swap in real file-backed tiers rooted
// under a directory, turning the same engine schedule into genuine storage
// I/O (run with time_scale == 1 so virtual seconds are wall seconds).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/testbed.hpp"
#include "tiers/storage_tier.hpp"
#include "util/json.hpp"

namespace mlpo {

struct StorageConfig {
  /// Backend kind: one of storage_backend_names().
  std::string backend = "sim";
  /// Root directory for the file-backed kinds; required unless "sim".
  /// Each node places its objects under <root>/<node_tag>/<tier name>.
  std::string root;
  /// O_DIRECT transfers ("uring_file" only; per-file fallback when the
  /// filesystem refuses, e.g. tmpfs).
  bool direct = false;
  /// AsyncFileBackend in-flight budget ("uring_file").
  u32 queue_depth = 64;
  /// pread/pwrite fallback pool size ("uring_file").
  u32 fallback_workers = 2;
  /// Skip io_uring even when available (also via MLPO_NO_URING=1).
  bool force_fallback = false;

  bool is_sim() const { return backend == "sim"; }

  /// Parse-time strictness: unknown backend kinds and missing roots abort
  /// here with the known set, not later inside node construction.
  void validate() const;
};

/// Registered StorageTier kinds selectable from config JSON. Tooling
/// (tools/check_invariants.py) cross-checks that each has test coverage.
const std::vector<std::string>& storage_backend_names();

/// Parse a "storage" config section ({"backend", "root", "direct",
/// "queue_depth", "fallback_workers", "force_fallback"}); validated.
StorageConfig storage_config_from_json(const json::Value& section);

/// Build one node's NVMe path per `cfg`: "sim" delegates to the testbed's
/// throttled emulated tier; the file kinds create real tiers under
/// <root>/<node_tag>/<name> advertising the testbed's nominal NVMe
/// bandwidths (the PerfModel's EMA then tracks measured behaviour).
std::shared_ptr<StorageTier> make_nvme_backend(const StorageConfig& cfg,
                                               const TestbedSpec& testbed,
                                               const SimClock& clock,
                                               const std::string& name,
                                               const std::string& node_tag);

}  // namespace mlpo
