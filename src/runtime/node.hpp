// Compute-node simulation: gpus_per_node workers sharing host memory, a
// node-local NVMe tier, optional access to a (cluster-shared) PFS path, and
// the node's CPU cores — the unit the paper's single-node experiments run
// on, and the building block of the weak-scaling cluster.
#pragma once

#include <memory>
#include <vector>

#include "comm/collectives.hpp"
#include "core/engine.hpp"
#include "runtime/gpu_cost.hpp"
#include "runtime/storage_config.hpp"
#include "runtime/testbed.hpp"
#include "runtime/worker.hpp"
#include "telemetry/iteration_report.hpp"
#include "tiers/failstop_tier.hpp"
#include "train/model_config.hpp"

namespace mlpo {

class ClusterSubstrate;

struct NodeConfig {
  ModelConfig model;
  TestbedSpec testbed = TestbedSpec::testbed1();
  /// Template engine options; the node fills in per-worker cpu_update_rate
  /// and host_cache_subgroups (unless host_cache_override is set).
  EngineOptions engine_opts;
  GpuCostModel gpu_cost;
  u64 subgroup_params = kDefaultSubgroupParams;
  u32 microbatch = 1;
  u32 accum_steps = 1;

  /// Total ranks across the job; 0 means single-node (= gpus_per_node).
  u32 total_world = 0;
  /// This node's first global rank (node_index * gpus_per_node).
  int first_rank = 0;
  /// Data-parallel width across nodes (weak scaling); 1 = single node.
  u32 dp_nodes = 1;
  Interconnect intra_node = Interconnect::nvlink();
  Interconnect inter_node = Interconnect::slingshot();

  /// Per-worker host-cache subgroups; 0 derives the budget from the
  /// testbed's host memory minus runtime overheads.
  u32 host_cache_override = 0;

  /// Attach the PFS path to the virtual tier (the engine additionally needs
  /// engine_opts.multipath to place subgroups there).
  bool attach_pfs = true;

  /// Wrap every storage path in a FailStopTier so the FailureInjector can
  /// fail-stop this node (or one of its paths) deterministically. Off by
  /// default: happy-path scenarios pay no wrapper indirection.
  bool wrap_failstop = false;

  /// Shard via make_elastic_shard_layout (world-size-independent global
  /// subgroups): required for elastic restart, where a checkpoint taken
  /// under one node count resumes under another.
  bool elastic_sharding = false;

  /// NVMe-path backend: emulated ThrottledTier by default, real file/
  /// io_uring tiers when selected (see runtime/storage_config.hpp).
  StorageConfig storage;

  /// Borrowed mode (multi-tenant): build no tiers, scheduler, or CPU pool
  /// of our own — run on `substrate`'s shared ones, stamping `tenant` on
  /// every I/O request. The substrate must be in shared mode and must
  /// outlive the node. `storage`, `attach_pfs` and `wrap_failstop` are then
  /// the substrate's concern: fail-stop injection maps onto the scheduler's
  /// per-tenant latch instead of FailStopTier wrappers.
  ClusterSubstrate* substrate = nullptr;
  /// Job id on the shared substrate (0 = the single-job/default tenant).
  u32 tenant = 0;
};

/// Host-memory budget model: free bytes available for caching subgroups
/// after the ZeRO-3 runtime structures (~250 GB base, paper §4.3) and the
/// node's FP16 gradient-accumulation reservation (2 bytes/param) are carved
/// out of host memory.
u64 host_cache_budget_bytes(const TestbedSpec& testbed, u64 model_params);

class NodeSim {
 public:
  /// @param pfs cluster-shared PFS *fabric* (see TestbedSpec); the node
  ///        wraps it in its own per-client channel. nullptr builds a
  ///        private backend (single-node experiments).
  NodeSim(const SimClock& clock, const NodeConfig& cfg,
          std::shared_ptr<StorageTier> pfs = nullptr);

  void initialize();

  /// One full training iteration across all workers (forward, accum_steps x
  /// backward micro-steps, update), with workers synchronised at phase
  /// boundaries. Returns the node-merged report.
  IterationReport run_iteration(u64 iteration);

  /// Run `iterations`, discarding the first `warmup` (paper methodology:
  /// 10 iterations, first 2 warmup).
  std::vector<IterationReport> run(u32 iterations, u32 warmup);

  u32 worker_count() const { return static_cast<u32>(workers_.size()); }
  Worker& worker(u32 i) { return *workers_.at(i); }
  VirtualTier& vtier() { return *vtier_active_; }
  const NodeConfig& config() const { return cfg_; }
  /// Running on a shared substrate (borrowed tiers/scheduler)?
  bool borrowed() const { return cfg_.substrate != nullptr; }

  /// Fail-stop this node. Owned mode: every wrapped storage path dies at
  /// once (requires NodeConfig::wrap_failstop). Borrowed mode: latches the
  /// node's tenant dead on the shared scheduler — its queued and future
  /// I/O settles with FailStopError while other tenants keep flowing.
  void fail_stop();

  /// Arm a deterministic SimClock-driven fail-stop of one path (or, with
  /// path == npos, of the whole node) at virtual time `kill_at_vtime`.
  /// Borrowed mode supports only npos (whole-node): a shared substrate has
  /// no per-node path to kill in isolation.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  void arm_fail_stop(std::size_t path, f64 kill_at_vtime);

  /// The fail-stop wrapper of path `idx`, or nullptr when not wrapped
  /// (including borrowed mode, which has no wrappers at all — use the
  /// mode-agnostic queries below).
  FailStopTier* failstop(std::size_t idx);

  /// Mode-agnostic fail-stop queries (the FailureInjector's interface for
  /// retiring latched events). Owned mode consults the FailStopTier
  /// wrappers; borrowed mode consults the scheduler's tenant latch — where
  /// every "path" shares the tenant's fate.
  bool failstop_dead(std::size_t path);
  bool any_failstop_dead();

  /// Cancel every request still queued on this node's worker schedulers
  /// (see IoScheduler::cancel_all_queued) — scoped to this node's tenant
  /// on a shared substrate, so the sweep never touches a neighbour job's
  /// queue. Returns how many were flagged.
  u64 cancel_queued_io();

  /// Node-wide optimizer-state distribution (Fig. 10): host + per path.
  Engine::Distribution node_distribution() const;

  /// Per-phase cost constants (for reporting/verification).
  f64 forward_cost_seconds() const { return fwd_seconds_; }
  f64 backward_compute_seconds() const { return bwd_seconds_; }

 private:
  const SimClock* clock_;
  NodeConfig cfg_;
  std::shared_ptr<StorageTier> nvme_;    ///< owned mode only
  std::shared_ptr<StorageTier> pfs_;     ///< owned mode only
  /// Parallel to the vtier paths; empty unless cfg_.wrap_failstop (and
  /// always empty in borrowed mode).
  std::vector<std::shared_ptr<FailStopTier>> failstops_;
  std::unique_ptr<VirtualTier> vtier_;   ///< owned mode only
  /// The tier the workers actually run on: vtier_ or the substrate's.
  VirtualTier* vtier_active_ = nullptr;
  std::unique_ptr<ThreadPool> cpu_pool_;  ///< owned mode only
  std::unique_ptr<GradSource> grads_;
  std::vector<std::unique_ptr<Worker>> workers_;
  f64 fwd_seconds_ = 0;  ///< per micro-step fwd compute+comm per worker
  f64 bwd_seconds_ = 0;  ///< per micro-step bwd compute+comm per worker
  u64 iterations_run_ = 0;
};

}  // namespace mlpo
