#include "runtime/memory_planner.hpp"

#include <cstdio>

#include "runtime/node.hpp"

namespace mlpo {

namespace {
void add(std::vector<MemoryPlan::Item>& items, u64& total,
         const std::string& name, u64 bytes) {
  items.push_back({name, bytes});
  total += bytes;
}
}  // namespace

MemoryPlan plan_memory(const PlannerInput& input) {
  MemoryPlan plan;
  const u64 params = input.model.parameters();
  const u32 gpus = input.testbed.gpus_per_node;
  const u32 world = input.total_world ? input.total_world : gpus;

  // --- GPU side -----------------------------------------------------------
  // ZeRO-3 shards the FP16 parameters across all ranks; layers are gathered
  // on demand, so the steady-state residency is the shard plus one gathered
  // layer's working set.
  const u64 fp16_shard = params * kFp16Bytes / world;
  const u64 layer_params =
      static_cast<u64>(input.model.hidden_dim) * input.model.hidden_dim * 12;
  const u64 gathered_layer = layer_params * kFp16Bytes;

  // Activations: with checkpointing only the per-layer boundary tensors
  // stay resident (microbatch x seq x hidden x 2 bytes per layer); without
  // it, roughly the full intermediate set (~8x wider per layer, the
  // attention+MLP intermediates).
  const u64 boundary = static_cast<u64>(input.microbatch) *
                       input.model.seq_length * input.model.hidden_dim *
                       kFp16Bytes;
  const u64 activations = input.activation_checkpointing
      ? boundary * input.model.num_layers
      : boundary * input.model.num_layers * 8;

  // FP16 gradients for at least one subgroup in flight to the host.
  const u64 grad_in_flight = input.subgroup_params * kFp16Bytes;

  add(plan.gpu_items, plan.gpu_required, "FP16 parameter shard", fp16_shard);
  add(plan.gpu_items, plan.gpu_required, "gathered layer working set",
      gathered_layer);
  add(plan.gpu_items, plan.gpu_required,
      input.activation_checkpointing ? "activation checkpoints"
                                     : "activations (no ckpt)",
      activations);
  add(plan.gpu_items, plan.gpu_required, "in-flight subgroup gradients",
      grad_in_flight);
  plan.gpu_capacity = input.gpu_memory_bytes;
  plan.gpu_fits = plan.gpu_required <= plan.gpu_capacity;

  // --- host side ----------------------------------------------------------
  // ZeRO-3 structures excluding the gradient buffer, which is itemised
  // separately below. (NodeSim's host-cache budget uses a larger combined
  // reservation calibrated against the paper's Fig. 10 host shares; the
  // planner reports the structural feasibility bound.)
  const u64 runtime_base = 200 * GiB;
  const u64 grad_accum = params * kFp16Bytes;  // node's FP16 grad reservation
  const u64 pipeline_buffers =
      3ull * gpus * input.subgroup_params * kOptimStateBytesPerParam;

  add(plan.host_items, plan.host_required, "ZeRO-3 runtime structures",
      runtime_base);
  add(plan.host_items, plan.host_required, "FP16 gradient accumulation",
      grad_accum);
  add(plan.host_items, plan.host_required, "pinned I/O buffers (3/GPU)",
      pipeline_buffers);
  plan.host_capacity = input.testbed.host_memory_bytes;
  plan.host_fits = plan.host_required <= plan.host_capacity;

  plan.cache_budget_bytes = plan.host_fits
      ? plan.host_capacity - plan.host_required
      : 0;
  const u64 per_worker = plan.cache_budget_bytes / gpus;
  plan.cache_subgroups_per_worker = static_cast<u32>(
      per_worker / (input.subgroup_params * kOptimStateBytesPerParam));
  return plan;
}

std::string MemoryPlan::to_string() const {
  std::string out;
  char line[160];
  const auto emit = [&](const char* title, const std::vector<Item>& items,
                        u64 required, u64 capacity, bool fits) {
    std::snprintf(line, sizeof(line), "%s\n", title);
    out += line;
    for (const auto& item : items) {
      std::snprintf(line, sizeof(line), "  %-32s %8.1f GB\n",
                    item.name.c_str(), static_cast<f64>(item.bytes) / 1e9);
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "  %-32s %8.1f GB of %.1f GB -> %s\n", "total",
                  static_cast<f64>(required) / 1e9,
                  static_cast<f64>(capacity) / 1e9, fits ? "OK" : "DOES NOT FIT");
    out += line;
  };
  emit("Per-GPU memory:", gpu_items, gpu_required, gpu_capacity, gpu_fits);
  emit("Per-node host memory:", host_items, host_required, host_capacity,
       host_fits);
  std::snprintf(line, sizeof(line),
                "Host cache budget: %.1f GB (%u subgroups/worker)\n",
                static_cast<f64>(cache_budget_bytes) / 1e9,
                cache_subgroups_per_worker);
  out += line;
  return out;
}

}  // namespace mlpo
