// Multi-node weak-scaling simulation (paper §4.4): tensor parallelism
// inside each node, data parallelism across nodes, node-local NVMe per
// node, and one PFS shared — and therefore contended — by all nodes.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "runtime/node.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

struct ClusterConfig {
  NodeConfig node;      ///< per-node template (dp/world/rank fields filled in)
  u32 nodes = 1;
  /// When set, the cluster draws its PFS fabric from the substrate's
  /// lazily-built cached one instead of creating a private fabric — so a
  /// Trainer that owns a substrate and a JobManager that shares one both
  /// route all PFS traffic through a single aggregate-capacity object.
  /// (Borrowed nodes — node.substrate set — need no fabric here at all:
  /// their PFS channel lives inside the substrate's virtual tier.)
  ClusterSubstrate* substrate = nullptr;
};

/// Thrown by ClusterSim::run_iteration when one or more nodes fail-stopped
/// mid-iteration (their FailStopTiers latched dead). Distinct from ordinary
/// exceptions so the RecoveryDriver can repair node losses while genuine
/// bugs still abort the run.
class NodeFailure : public std::runtime_error {
 public:
  explicit NodeFailure(std::vector<u32> nodes);
  const std::vector<u32>& nodes() const { return nodes_; }

 private:
  std::vector<u32> nodes_;
};

class ClusterSim {
 public:
  ClusterSim(const SimClock& clock, const ClusterConfig& cfg);

  void initialize();

  /// One synchronous data-parallel iteration across all nodes. The report
  /// takes phase walls from the slowest node and sums the counters
  /// (including the per-priority I/O scheduler classes). Throws
  /// NodeFailure when a node's fail-stop wrapper killed it mid-iteration;
  /// any other node error is rethrown as-is.
  IterationReport run_iteration(u64 iteration);

  std::vector<IterationReport> run(u32 iterations, u32 warmup);

  u32 node_count() const { return static_cast<u32>(nodes_.size()); }
  NodeSim& node(u32 i) { return *nodes_.at(i); }
  StorageTier* shared_pfs() { return pfs_.get(); }

  /// Fail-stop node `idx` (all of its wrapped paths die). Requires the
  /// cluster to be built with NodeConfig::wrap_failstop.
  void fail_node(u32 idx);

  /// Tear down node `idx` and build a replacement in its place: fresh
  /// tiers (the node-local NVMe content is lost, as on real hardware),
  /// fresh workers/engines, same ranks. The replacement is uninitialized —
  /// the caller (RecoveryDriver) initializes and then restores it from the
  /// last checkpoint.
  void replace_node(u32 idx);

 private:
  NodeConfig node_config(u32 idx) const;

  const SimClock* clock_;
  ClusterConfig cfg_;
  std::shared_ptr<StorageTier> pfs_;
  std::vector<std::unique_ptr<NodeSim>> nodes_;
};

}  // namespace mlpo
