// Multi-node weak-scaling simulation (paper §4.4): tensor parallelism
// inside each node, data parallelism across nodes, node-local NVMe per
// node, and one PFS shared — and therefore contended — by all nodes.
#pragma once

#include <memory>
#include <vector>

#include "runtime/node.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

struct ClusterConfig {
  NodeConfig node;      ///< per-node template (dp/world/rank fields filled in)
  u32 nodes = 1;
};

class ClusterSim {
 public:
  ClusterSim(const SimClock& clock, const ClusterConfig& cfg);

  void initialize();

  /// One synchronous data-parallel iteration across all nodes. The report
  /// takes phase walls from the slowest node and sums the counters.
  IterationReport run_iteration(u64 iteration);

  std::vector<IterationReport> run(u32 iterations, u32 warmup);

  u32 node_count() const { return static_cast<u32>(nodes_.size()); }
  NodeSim& node(u32 i) { return *nodes_.at(i); }
  StorageTier* shared_pfs() { return pfs_.get(); }

 private:
  const SimClock* clock_;
  ClusterConfig cfg_;
  std::shared_ptr<StorageTier> pfs_;
  std::vector<std::unique_ptr<NodeSim>> nodes_;
};

}  // namespace mlpo
