#include "runtime/trainer.hpp"

#include <stdexcept>

namespace mlpo {

Trainer::Trainer(const TrainerConfig& cfg) : cfg_(cfg) {
  clock_ = std::make_unique<SimClock>(cfg_.time_scale);

  NodeConfig node;
  node.model = cfg_.model;
  node.testbed = cfg_.testbed;
  node.engine_opts = cfg_.engine;
  node.engine_opts.elem_scale = cfg_.elem_scale;
  node.gpu_cost = cfg_.gpu_cost;
  node.subgroup_params = cfg_.subgroup_params;
  node.microbatch = cfg_.microbatch;
  node.accum_steps = cfg_.accum_steps;
  node.attach_pfs = cfg_.attach_pfs;
  node.host_cache_override = cfg_.host_cache_override;

  ClusterConfig cluster;
  cluster.node = node;
  cluster.nodes = cfg_.nodes;
  cluster_ = std::make_unique<ClusterSim>(*clock_, cluster);
}

void Trainer::initialize() { cluster_->initialize(); }

std::vector<IterationReport> Trainer::run(u32 iterations, u32 warmup) {
  return cluster_->run(iterations, warmup);
}

Engine::Distribution Trainer::distribution() const {
  Engine::Distribution total;
  for (u32 n = 0; n < cluster_->node_count(); ++n) {
    const auto d = cluster_->node(n).node_distribution();
    if (total.path_sim_bytes.size() < d.path_sim_bytes.size()) {
      total.path_sim_bytes.resize(d.path_sim_bytes.size(), 0);
    }
    total.host_sim_bytes += d.host_sim_bytes;
    for (std::size_t p = 0; p < d.path_sim_bytes.size(); ++p) {
      total.path_sim_bytes[p] += d.path_sim_bytes[p];
    }
  }
  return total;
}

}  // namespace mlpo
