#include "runtime/trainer.hpp"

#include <stdexcept>

#include "resilience/recovery_driver.hpp"

namespace mlpo {

Trainer::Trainer(const TrainerConfig& cfg)
    : Trainer(cfg, /*borrowed=*/nullptr, /*tenant=*/0) {}

Trainer::Trainer(const TrainerConfig& cfg, ClusterSubstrate& substrate,
                 u32 tenant)
    : Trainer(cfg, &substrate, tenant) {}

Trainer::Trainer(const TrainerConfig& cfg, ClusterSubstrate* borrowed,
                 u32 tenant)
    : cfg_(cfg), tenant_(tenant) {
  if (borrowed != nullptr) {
    if (!borrowed->shared()) {
      throw std::invalid_argument(
          "Trainer: the borrowed ClusterSubstrate is in owned (single-job) "
          "mode; JobManager builds shared-mode substrates");
    }
    if (cfg_.nodes != 1) {
      throw std::invalid_argument(
          "Trainer: a borrowed job runs on the substrate's one shared node; "
          "nodes must be 1 (got " + std::to_string(cfg_.nodes) + ")");
    }
    for (const auto& event : cfg_.resilience.failures) {
      if (event.kind == FailureEvent::Kind::kPath) {
        throw std::invalid_argument(
            "Trainer: path-scoped failure injection is unsupported on a "
            "shared substrate (the tiers belong to every tenant); use kind "
            "\"node\"");
      }
    }
    if (cfg_.resilience.enabled && cfg_.resilience.restart_nodes > 1) {
      throw std::invalid_argument(
          "Trainer: a borrowed job cannot elastically restart onto " +
          std::to_string(cfg_.resilience.restart_nodes) +
          " nodes; the shared substrate has exactly one");
    }
    substrate_ = borrowed;
  } else {
    substrate_owned_ = std::make_unique<ClusterSubstrate>(cfg_.time_scale);
    substrate_ = substrate_owned_.get();
  }

  NodeConfig node;
  node.model = cfg_.model;
  node.testbed = cfg_.testbed;
  node.engine_opts = cfg_.engine;
  node.engine_opts.elem_scale = cfg_.elem_scale;
  node.gpu_cost = cfg_.gpu_cost;
  node.subgroup_params = cfg_.subgroup_params;
  node.microbatch = cfg_.microbatch;
  node.accum_steps = cfg_.accum_steps;
  node.attach_pfs = cfg_.attach_pfs;
  node.host_cache_override = cfg_.host_cache_override;
  node.storage = cfg_.storage;
  // Borrowed nodes have no per-node tiers to wrap: injected failures latch
  // the tenant on the shared scheduler instead.
  node.wrap_failstop = cfg_.resilience.enabled && borrowed == nullptr;
  node.elastic_sharding =
      cfg_.resilience.enabled && cfg_.resilience.elastic_sharding;
  if (borrowed != nullptr) {
    node.substrate = borrowed;
    node.tenant = tenant;
  }

  ClusterConfig cluster;
  cluster.node = node;
  cluster.nodes = cfg_.nodes;
  cluster.substrate = substrate_;
  const SimClock& clock = substrate_->clock();
  if (cfg_.resilience.enabled) {
    RecoveryOptions opts;
    opts.checkpoint_interval = cfg_.resilience.checkpoint_interval;
    opts.restart_nodes = cfg_.resilience.restart_nodes;
    opts.max_recoveries = cfg_.resilience.max_recoveries;
    // The store stands in for a DataStates-style checkpoint service backed
    // by the PFS: transfers charge PFS-fabric virtual time, so checkpoint
    // and restore costs are accounted like any other tier traffic. The
    // driver keeps it alive. It stays per-job even on a shared substrate —
    // checkpoints are a job's private state.
    driver_ = std::make_unique<RecoveryDriver>(
        clock, cluster, cfg_.testbed.make_pfs_fabric(clock, "ckpt-store"),
        opts, FailureInjector(cfg_.resilience.failures));
  } else {
    cluster_ = std::make_unique<ClusterSim>(clock, cluster);
  }
}

Trainer::~Trainer() = default;

ClusterSim& Trainer::cluster_ref() const {
  // unique_ptr constness is shallow, so the one dispatch site serves the
  // const callers (distribution) and the public accessor alike.
  return driver_ ? driver_->cluster() : *cluster_;
}

ClusterSim& Trainer::cluster() { return cluster_ref(); }

void Trainer::initialize() {
  if (driver_) {
    driver_->initialize();
  } else {
    cluster_->initialize();
  }
}

std::vector<IterationReport> Trainer::run(u32 iterations, u32 warmup) {
  if (driver_) return driver_->run(iterations, warmup);
  return cluster_->run(iterations, warmup);
}

const RecoveryStats* Trainer::recovery_stats() const {
  return driver_ ? &driver_->stats() : nullptr;
}

Engine::Distribution Trainer::distribution() const {
  Engine::Distribution total;
  ClusterSim& cluster = cluster_ref();
  for (u32 n = 0; n < cluster.node_count(); ++n) {
    const auto d = cluster.node(n).node_distribution();
    if (total.path_sim_bytes.size() < d.path_sim_bytes.size()) {
      total.path_sim_bytes.resize(d.path_sim_bytes.size(), 0);
    }
    total.host_sim_bytes += d.host_sim_bytes;
    for (std::size_t p = 0; p < d.path_sim_bytes.size(); ++p) {
      total.path_sim_bytes[p] += d.path_sim_bytes[p];
    }
  }
  return total;
}

}  // namespace mlpo
