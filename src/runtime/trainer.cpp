#include "runtime/trainer.hpp"

#include <stdexcept>

#include "resilience/recovery_driver.hpp"

namespace mlpo {

Trainer::Trainer(const TrainerConfig& cfg) : cfg_(cfg) {
  clock_ = std::make_unique<SimClock>(cfg_.time_scale);

  NodeConfig node;
  node.model = cfg_.model;
  node.testbed = cfg_.testbed;
  node.engine_opts = cfg_.engine;
  node.engine_opts.elem_scale = cfg_.elem_scale;
  node.gpu_cost = cfg_.gpu_cost;
  node.subgroup_params = cfg_.subgroup_params;
  node.microbatch = cfg_.microbatch;
  node.accum_steps = cfg_.accum_steps;
  node.attach_pfs = cfg_.attach_pfs;
  node.host_cache_override = cfg_.host_cache_override;
  node.storage = cfg_.storage;
  node.wrap_failstop = cfg_.resilience.enabled;
  node.elastic_sharding =
      cfg_.resilience.enabled && cfg_.resilience.elastic_sharding;

  ClusterConfig cluster;
  cluster.node = node;
  cluster.nodes = cfg_.nodes;
  if (cfg_.resilience.enabled) {
    RecoveryOptions opts;
    opts.checkpoint_interval = cfg_.resilience.checkpoint_interval;
    opts.restart_nodes = cfg_.resilience.restart_nodes;
    opts.max_recoveries = cfg_.resilience.max_recoveries;
    // The store stands in for a DataStates-style checkpoint service backed
    // by the PFS: transfers charge PFS-fabric virtual time, so checkpoint
    // and restore costs are accounted like any other tier traffic. The
    // driver keeps it alive.
    driver_ = std::make_unique<RecoveryDriver>(
        *clock_, cluster, cfg_.testbed.make_pfs_fabric(*clock_, "ckpt-store"),
        opts, FailureInjector(cfg_.resilience.failures));
  } else {
    cluster_ = std::make_unique<ClusterSim>(*clock_, cluster);
  }
}

Trainer::~Trainer() = default;

ClusterSim& Trainer::cluster_ref() const {
  // unique_ptr constness is shallow, so the one dispatch site serves the
  // const callers (distribution) and the public accessor alike.
  return driver_ ? driver_->cluster() : *cluster_;
}

ClusterSim& Trainer::cluster() { return cluster_ref(); }

void Trainer::initialize() {
  if (driver_) {
    driver_->initialize();
  } else {
    cluster_->initialize();
  }
}

std::vector<IterationReport> Trainer::run(u32 iterations, u32 warmup) {
  if (driver_) return driver_->run(iterations, warmup);
  return cluster_->run(iterations, warmup);
}

const RecoveryStats* Trainer::recovery_stats() const {
  return driver_ ? &driver_->stats() : nullptr;
}

Engine::Distribution Trainer::distribution() const {
  Engine::Distribution total;
  ClusterSim& cluster = cluster_ref();
  for (u32 n = 0; n < cluster.node_count(); ++n) {
    const auto d = cluster.node(n).node_distribution();
    if (total.path_sim_bytes.size() < d.path_sim_bytes.size()) {
      total.path_sim_bytes.resize(d.path_sim_bytes.size(), 0);
    }
    total.host_sim_bytes += d.host_sim_bytes;
    for (std::size_t p = 0; p < d.path_sim_bytes.size(); ++p) {
      total.path_sim_bytes[p] += d.path_sim_bytes[p];
    }
  }
  return total;
}

}  // namespace mlpo
