// Public facade: configure a training scenario (model, testbed, engine
// flags, scale) and run instrumented iterations. This is the API the
// examples and benchmark harnesses use; everything below it is reachable
// for advanced composition.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "resilience/failure_injector.hpp"
#include "runtime/cluster.hpp"
#include "runtime/cluster_substrate.hpp"
#include "util/json.hpp"

namespace mlpo {

class RecoveryDriver;
struct RecoveryStats;

struct TrainerConfig {
  ModelConfig model = paper_model("40B");
  TestbedSpec testbed = TestbedSpec::testbed1();
  EngineOptions engine = EngineOptions::mlp_offload();
  GpuCostModel gpu_cost;
  u32 nodes = 1;
  u32 microbatch = 1;
  u32 accum_steps = 1;
  u64 subgroup_params = kDefaultSubgroupParams;
  /// Simulated params per real element; raise it for big clusters to keep
  /// real memory small (timing is unaffected by construction).
  u64 elem_scale = 8192;
  /// Virtual seconds per real second.
  f64 time_scale = 2000.0;
  /// Attach the PFS path (required for multipath engines).
  bool attach_pfs = true;
  u32 host_cache_override = 0;

  /// NVMe-path storage backend ("sim" emulated default, or the real
  /// "file"/"uring_file" tiers — see runtime/storage_config.hpp). Real
  /// backends are meant to pair with time_scale == 1.
  StorageConfig storage;

  /// Failure injection + elastic checkpoint-restart (src/resilience/).
  /// With resilience.enabled the trainer runs through a RecoveryDriver:
  /// tiers get fail-stop wrappers, checkpoints are taken every
  /// resilience.checkpoint_interval iterations into an internal store, and
  /// injected node losses are repaired instead of aborting the run.
  ResilienceConfig resilience;
};

class Trainer {
 public:
  /// Single-job mode: the trainer owns its whole world (clock, tiers,
  /// schedulers) through a private ClusterSubstrate.
  explicit Trainer(const TrainerConfig& cfg);

  /// Multi-tenant mode (JobManager): run on `substrate`'s shared clock,
  /// tiers and scheduler as tenant `tenant`. The substrate must be in
  /// shared mode and outlive the trainer; cfg.nodes must be 1 (a borrowed
  /// job occupies the one shared node) and any injected failures must be
  /// whole-node (path failures have no meaning on shared tiers).
  Trainer(const TrainerConfig& cfg, ClusterSubstrate& substrate, u32 tenant);

  ~Trainer();

  /// Distribute the optimizer state; must precede run().
  void initialize();

  /// Run `iterations`, discard the first `warmup`, return the rest.
  std::vector<IterationReport> run(u32 iterations, u32 warmup = 0);

  const SimClock& clock() const { return substrate_->clock(); }
  u32 tenant() const { return tenant_; }
  /// The current cluster. With resilience enabled, an elastic restart
  /// REPLACES the underlying object mid-run — re-fetch the reference after
  /// run() instead of holding it across one.
  ClusterSim& cluster();
  const TrainerConfig& config() const { return cfg_; }

  /// Cluster-wide optimizer-state distribution (Fig. 10).
  Engine::Distribution distribution() const;

  /// Recovery statistics (resilience.enabled runs only, else nullptr).
  const RecoveryStats* recovery_stats() const;

 private:
  Trainer(const TrainerConfig& cfg, ClusterSubstrate* borrowed, u32 tenant);
  ClusterSim& cluster_ref() const;

  TrainerConfig cfg_;
  /// Owned in single-job mode, null when borrowing from a JobManager.
  std::unique_ptr<ClusterSubstrate> substrate_owned_;
  /// The substrate this trainer runs on (owned or borrowed).
  ClusterSubstrate* substrate_ = nullptr;
  u32 tenant_ = 0;
  std::unique_ptr<ClusterSim> cluster_;     ///< happy-path runs
  std::unique_ptr<RecoveryDriver> driver_;  ///< resilience runs (owns store)
};

/// Parse a TrainerConfig from a DeepSpeed-style JSON document. Recognised
/// keys (all optional, mirroring the paper's "two JSON key-value pairs"
/// integration plus scenario selection):
///   {
///     "model": "40B",             // Table 2 name
///     "testbed": "testbed1",      // or "testbed2"
///     "nodes": 1, "microbatch": 1, "accum_steps": 1,
///     "subgroup_params": 100000000,
///     "elem_scale": 8192, "time_scale": 2000,
///     "storage": {
///       "backend": "sim",         // or "file" / "uring_file" (real I/O;
///                                 // unknown kinds abort with the known set)
///       "root": "/mnt/nvme/mlpo", // required for the file-backed kinds
///       "direct": false,          // O_DIRECT (uring_file)
///       "queue_depth": 64, "fallback_workers": 2,
///       "force_fallback": false   // skip io_uring, use pread/pwrite pool
///     },
///     "mlp_offload": {
///       "enabled": true,          // false => DeepSpeed ZeRO-3 baseline
///       "preset": "mlp_offload",  // named bundle, see EngineOptions::preset
///       "engine": "offload",      // or "cpu_only" / "tensor_nvme"
///       // policy-registry names (unknown names abort with the known set):
///       "placement_policy": "adaptive_ema",
///       "update_order_policy": "alternating_cache_friendly",
///       "multipath": true,
///       "delayed_grad_conversion": true, "tier_exclusive_locking": true,
///       "prefetch_ahead": 1,
///       // legacy boolean spellings, still honoured:
///       "cache_friendly_order": true,   // order policy alternating/ascending
///       "adaptive_placement": true      // placement adaptive_ema/eq1_static
///     }
///   }
TrainerConfig trainer_config_from_json(const json::Value& doc);

/// Convenience: parse from text.
TrainerConfig trainer_config_from_json(const std::string& text);

}  // namespace mlpo
