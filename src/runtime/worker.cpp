#include "runtime/worker.hpp"

namespace mlpo {

Worker::Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
               const GradSource& grads, const TestbedSpec& testbed,
               int worker_id, int rank, const EngineOptions& opts,
               const ShardLayout& layout)
    : clock_(&clock), worker_id_(worker_id), rank_(rank) {
  d2h_ = std::make_unique<RateLimiter>(clock, testbed.d2h_bandwidth);
  h2d_ = std::make_unique<RateLimiter>(clock, testbed.d2h_bandwidth);
  // The scheduler spawns one dispatch thread per channel (read+write per
  // storage path, D2H, H2D, external), so independent channels stay
  // genuinely concurrent (the multi-path win) while each channel orders
  // its own traffic by priority class.
  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 256;
  io_cfg.tier_exclusive_locking = opts.tier_exclusive_locking;
  io_cfg.worker_id = worker_id;
  io_ = std::make_unique<IoScheduler>(clock, &vtier, d2h_.get(), h2d_.get(),
                                      io_cfg);

  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = io_.get();
  ctx.cpu_pool = cpu_pool;
  ctx.grads = &grads;
  ctx.worker_id = worker_id;
  ctx.rank = rank;
  engine_ = make_engine(ctx, opts, layout);
}

void Worker::run_backward_micro(u64 sample_index, bool first_micro_step,
                                bool final_micro_step, f64 compute_seconds) {
  const u32 n = engine_->num_subgroups();
  if (n == 0) return;
  // Gradients stream out as the backward pass produces them (paper §2:
  // "as the backward pass progresses, the gradients are flushed").
  const f64 per_subgroup = compute_seconds / static_cast<f64>(n);
  for (u32 id = 0; id < n; ++id) {
    clock_->sleep_for(per_subgroup);
    engine_->deposit_gradients_async(sample_index, id, first_micro_step,
                                     final_micro_step);
  }
  engine_->wait_gradient_io();
}

}  // namespace mlpo
