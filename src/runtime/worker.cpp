#include "runtime/worker.hpp"

namespace mlpo {

Worker::Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
               const GradSource& grads, const TestbedSpec& testbed,
               int worker_id, int rank, const EngineOptions& opts,
               const ShardLayout& layout)
    : clock_(&clock), worker_id_(worker_id), rank_(rank) {
  d2h_ = std::make_unique<RateLimiter>(clock, testbed.d2h_bandwidth);
  h2d_ = std::make_unique<RateLimiter>(clock, testbed.d2h_bandwidth);
  // One I/O thread per storage path plus one for H2D/D2H charges keeps
  // independent channels genuinely concurrent (the multi-path win).
  aio_ = std::make_unique<AioEngine>(vtier.path_count() + 2,
                                     /*queue_depth=*/256);

  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.aio = aio_.get();
  ctx.cpu_pool = cpu_pool;
  ctx.d2h = d2h_.get();
  ctx.h2d = h2d_.get();
  ctx.grads = &grads;
  ctx.worker_id = worker_id;
  ctx.rank = rank;
  engine_ = std::make_unique<OffloadEngine>(ctx, opts, layout);
}

void Worker::run_backward_micro(u64 sample_index, bool first_micro_step,
                                bool final_micro_step, f64 compute_seconds) {
  const u32 n = engine_->num_subgroups();
  if (n == 0) return;
  // Gradients stream out as the backward pass produces them (paper §2:
  // "as the backward pass progresses, the gradients are flushed").
  const f64 per_subgroup = compute_seconds / static_cast<f64>(n);
  for (u32 id = 0; id < n; ++id) {
    clock_->sleep_for(per_subgroup);
    engine_->deposit_gradients_async(sample_index, id, first_micro_step,
                                     final_micro_step);
  }
  engine_->wait_gradient_io();
}

}  // namespace mlpo
