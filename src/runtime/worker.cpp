#include "runtime/worker.hpp"

namespace mlpo {

Worker::Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
               const GradSource& grads, const TestbedSpec& testbed,
               int worker_id, int rank, const EngineOptions& opts,
               const ShardLayout& layout)
    : clock_(&clock), worker_id_(worker_id), rank_(rank) {
  // The scheduler spawns one dispatch thread per channel (read+write per
  // storage path, D2H, H2D, external), so independent channels stay
  // genuinely concurrent (the multi-path win) while each channel orders
  // its own traffic by priority class. The D2H/H2D link limiters are
  // scheduler-owned, sized from the testbed's link bandwidth.
  IoScheduler::Config io_cfg;
  io_cfg.queue_depth = 256;
  io_cfg.tier_exclusive_locking = opts.tier_exclusive_locking;
  io_cfg.worker_id = worker_id;
  io_cfg.d2h_bandwidth = testbed.d2h_bandwidth;
  io_ = std::make_unique<IoScheduler>(clock, &vtier, nullptr, nullptr, io_cfg);
  io_active_ = io_.get();
  build_engine(clock, vtier, cpu_pool, grads, opts, layout);
}

Worker::Worker(const SimClock& clock, VirtualTier& vtier, ThreadPool* cpu_pool,
               const GradSource& grads, IoScheduler& shared_io, u32 tenant,
               int worker_id, int rank, const EngineOptions& opts,
               const ShardLayout& layout)
    : clock_(&clock),
      worker_id_(worker_id),
      rank_(rank),
      tenant_(tenant),
      io_active_(&shared_io) {
  build_engine(clock, vtier, cpu_pool, grads, opts, layout);
}

Worker::~Worker() {
  // Borrowed mode: the shared scheduler outlives this worker, so the
  // engine's in-flight requests must settle before the engine (whose slabs
  // they point into) is destroyed — but waiting on *everyone's* traffic
  // would couple this job's teardown to its neighbours' progress, so the
  // drain is tenant-scoped. Owned mode needs nothing: ~IoScheduler drains.
  if (io_active_ != nullptr && io_ == nullptr) {
    io_active_->drain_tenant(tenant_);
  }
}

void Worker::build_engine(const SimClock& clock, VirtualTier& vtier,
                          ThreadPool* cpu_pool, const GradSource& grads,
                          const EngineOptions& opts,
                          const ShardLayout& layout) {
  EngineContext ctx;
  ctx.clock = &clock;
  ctx.vtier = &vtier;
  ctx.io = io_active_;
  ctx.cpu_pool = cpu_pool;
  ctx.grads = &grads;
  ctx.worker_id = worker_id_;
  ctx.rank = rank_;
  ctx.tenant = tenant_;
  engine_ = make_engine(ctx, opts, layout);
}

void Worker::run_backward_micro(u64 sample_index, bool first_micro_step,
                                bool final_micro_step, f64 compute_seconds) {
  const u32 n = engine_->num_subgroups();
  if (n == 0) return;
  // Gradients stream out as the backward pass produces them (paper §2:
  // "as the backward pass progresses, the gradients are flushed").
  const f64 per_subgroup = compute_seconds / static_cast<f64>(n);
  for (u32 id = 0; id < n; ++id) {
    clock_->sleep_for(per_subgroup);
    engine_->deposit_gradients_async(sample_index, id, first_micro_step,
                                     final_micro_step);
  }
  engine_->wait_gradient_io();
}

}  // namespace mlpo
