#include "runtime/cluster.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "runtime/cluster_substrate.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"

namespace mlpo {

NodeFailure::NodeFailure(std::vector<u32> nodes)
    : std::runtime_error([&nodes] {
        std::string what = "NodeFailure: fail-stopped node(s)";
        for (const u32 n : nodes) what += " " + std::to_string(n);
        return what;
      }()),
      nodes_(std::move(nodes)) {}

ClusterSim::ClusterSim(const SimClock& clock, const ClusterConfig& cfg)
    : clock_(&clock), cfg_(cfg) {
  if (cfg_.node.attach_pfs && cfg_.node.substrate == nullptr) {
    // One PFS fabric serves the whole cluster; every node funnels its
    // client channel into it. Its aggregate capacity bounds total PFS
    // traffic — the shared-tier contention the paper flags for future
    // study emerges when pfs_aggregate_factor < node count. A substrate
    // (owned or shared) caches the fabric so rebuilt clusters and
    // co-tenant jobs keep drawing from the same aggregate capacity.
    pfs_ = cfg_.substrate != nullptr
        ? cfg_.substrate->acquire_pfs_fabric(cfg_.node.testbed)
        : cfg_.node.testbed.make_pfs_fabric(clock, "pfs-fabric");
  }
  for (u32 n = 0; n < cfg_.nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeSim>(clock, node_config(n), pfs_));
  }
}

NodeConfig ClusterSim::node_config(u32 idx) const {
  const u32 gpus = cfg_.node.testbed.gpus_per_node;
  NodeConfig node_cfg = cfg_.node;
  node_cfg.total_world = cfg_.nodes * gpus;
  node_cfg.first_rank = static_cast<int>(idx * gpus);
  node_cfg.dp_nodes = cfg_.nodes;
  return node_cfg;
}

void ClusterSim::fail_node(u32 idx) { nodes_.at(idx)->fail_stop(); }

void ClusterSim::replace_node(u32 idx) {
  if (idx >= nodes_.size()) {
    throw std::out_of_range("ClusterSim::replace_node: node " +
                            std::to_string(idx) + " out of range");
  }
  // The old NodeSim's destructor drains its worker schedulers; everything
  // still queued against the dead tiers settles (cancelled or failed)
  // before the replacement comes up.
  nodes_[idx] = std::make_unique<NodeSim>(*clock_, node_config(idx), pfs_);
}

void ClusterSim::initialize() {
  std::vector<std::thread> threads;
  std::exception_ptr error;
  Mutex error_mutex;
  for (auto& node : nodes_) {
    threads.emplace_back([&node, &error, &error_mutex] {
      try {
        node->initialize();
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

IterationReport ClusterSim::run_iteration(u64 iteration) {
  std::vector<IterationReport> reports(nodes_.size());
  std::vector<std::exception_ptr> errors(nodes_.size());
  std::vector<std::thread> threads;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    threads.emplace_back([&, n] {
      try {
        reports[n] = nodes_[n]->run_iteration(iteration);
      } catch (...) {
        errors[n] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Classify failures: injected fail-stops become one structured
  // NodeFailure (the RecoveryDriver's repair signal); anything else is a
  // genuine bug and aborts the run as before.
  std::vector<u32> failed;
  std::vector<std::pair<u32, std::string>> genuine;  // node, what()
  std::exception_ptr other;
  for (std::size_t n = 0; n < errors.size(); ++n) {
    if (!errors[n]) continue;
    try {
      std::rethrow_exception(errors[n]);
    } catch (const FailStopError&) {
      failed.push_back(static_cast<u32>(n));
    } catch (const std::exception& e) {
      if (!other) other = errors[n];
      genuine.emplace_back(static_cast<u32>(n), e.what());
    } catch (...) {
      if (!other) other = errors[n];
      genuine.emplace_back(static_cast<u32>(n), "<non-exception error>");
    }
  }
  if (!failed.empty()) {
    // The fail-stop wins (recovery restores every node from the checkpoint
    // anyway), but a genuine bug on an independent node must not vanish
    // silently behind it.
    for (const auto& [node, what] : genuine) {
      MLPO_LOG_WARN << "ClusterSim: node " << node << " error eclipsed by a "
                    << "concurrent fail-stop: " << what;
    }
    throw NodeFailure(std::move(failed));
  }
  if (other) std::rethrow_exception(other);

  // Synchronous data parallelism: the iteration ends when the slowest node
  // finishes each phase; counters — including the per-priority I/O
  // scheduler classes — aggregate across the cluster.
  IterationReport merged;
  merged.iteration = iteration;
  for (const auto& r : reports) {
    merged.forward_seconds = std::max(merged.forward_seconds, r.forward_seconds);
    merged.backward_seconds =
        std::max(merged.backward_seconds, r.backward_seconds);
    merged.update_seconds = std::max(merged.update_seconds, r.update_seconds);
    merged.accumulate_counters(r);
  }
  return merged;
}

std::vector<IterationReport> ClusterSim::run(u32 iterations, u32 warmup) {
  std::vector<IterationReport> kept;
  for (u32 i = 0; i < iterations; ++i) {
    IterationReport r = run_iteration(i);
    if (i >= warmup) kept.push_back(std::move(r));
  }
  return kept;
}

}  // namespace mlpo
