#include "runtime/cluster.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

namespace mlpo {

ClusterSim::ClusterSim(const SimClock& clock, const ClusterConfig& cfg)
    : clock_(&clock), cfg_(cfg) {
  const u32 gpus = cfg_.node.testbed.gpus_per_node;
  if (cfg_.node.attach_pfs) {
    // One PFS fabric serves the whole cluster; every node funnels its
    // client channel into it. Its aggregate capacity bounds total PFS
    // traffic — the shared-tier contention the paper flags for future
    // study emerges when pfs_aggregate_factor < node count.
    pfs_ = cfg_.node.testbed.make_pfs_fabric(clock, "pfs-fabric");
  }
  for (u32 n = 0; n < cfg_.nodes; ++n) {
    NodeConfig node_cfg = cfg_.node;
    node_cfg.total_world = cfg_.nodes * gpus;
    node_cfg.first_rank = static_cast<int>(n * gpus);
    node_cfg.dp_nodes = cfg_.nodes;
    nodes_.push_back(std::make_unique<NodeSim>(clock, node_cfg, pfs_));
  }
}

void ClusterSim::initialize() {
  std::vector<std::thread> threads;
  std::exception_ptr error;
  std::mutex error_mutex;
  for (auto& node : nodes_) {
    threads.emplace_back([&node, &error, &error_mutex] {
      try {
        node->initialize();
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

IterationReport ClusterSim::run_iteration(u64 iteration) {
  std::vector<IterationReport> reports(nodes_.size());
  std::vector<std::exception_ptr> errors(nodes_.size());
  std::vector<std::thread> threads;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    threads.emplace_back([&, n] {
      try {
        reports[n] = nodes_[n]->run_iteration(iteration);
      } catch (...) {
        errors[n] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Synchronous data parallelism: the iteration ends when the slowest node
  // finishes each phase; counters aggregate across the cluster.
  IterationReport merged;
  merged.iteration = iteration;
  for (const auto& r : reports) {
    merged.forward_seconds = std::max(merged.forward_seconds, r.forward_seconds);
    merged.backward_seconds =
        std::max(merged.backward_seconds, r.backward_seconds);
    merged.update_seconds = std::max(merged.update_seconds, r.update_seconds);
    merged.params_updated += r.params_updated;
    merged.sim_bytes_fetched += r.sim_bytes_fetched;
    merged.sim_bytes_flushed += r.sim_bytes_flushed;
    merged.fetch_seconds += r.fetch_seconds;
    merged.flush_seconds += r.flush_seconds;
    merged.update_compute_seconds += r.update_compute_seconds;
    merged.host_cache_hits += r.host_cache_hits;
    merged.subgroups_processed += r.subgroups_processed;
    merged.traces.insert(merged.traces.end(), r.traces.begin(),
                         r.traces.end());
  }
  return merged;
}

std::vector<IterationReport> ClusterSim::run(u32 iterations, u32 warmup) {
  std::vector<IterationReport> kept;
  for (u32 i = 0; i < iterations; ++i) {
    IterationReport r = run_iteration(i);
    if (i >= warmup) kept.push_back(std::move(r));
  }
  return kept;
}

}  // namespace mlpo
