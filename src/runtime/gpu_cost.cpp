#include "runtime/gpu_cost.hpp"

// Header-only cost model; translation unit anchors the target.

namespace mlpo {}  // namespace mlpo
