// Real asynchronous file I/O: io_uring with a portable worker-pool fallback.
//
// AsyncFileBackend submits positional reads/writes on raw file descriptors
// and invokes a completion callback from an internal thread when the
// transfer genuinely finishes — these are the real settle events the
// IoScheduler consumes in place of simulated service times. The io_uring
// path talks to the kernel directly through the raw syscalls
// (io_uring_setup / io_uring_enter and the mmap'd SQ/CQ rings); there is
// deliberately no liburing dependency. When the kernel refuses io_uring
// (ENOSYS, seccomp) or MLPO_NO_URING=1 is set, a pread/pwrite worker pool
// provides identical semantics, so callers never branch on the mechanism.
//
// Control blocks live in a fixed slab sized to the queue depth (uring
// path): submission is O(1) and allocation-free, and a full slab applies
// backpressure by blocking submit — mirroring BufferPool's bounded-budget
// discipline.
//
// UringFileTier exposes the backend as a StorageTier (config kind
// "uring_file"): one file per object under a root directory, collision-free
// key escaping (util/key_escape), optional O_DIRECT honouring the 4096-byte
// alignment contract through pooled bounce buffers, and tmp-file + rename
// atomic replacement exactly like FileTier — the two backends are
// file-format interchangeable.
#pragma once

#include <atomic>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "tiers/storage_tier.hpp"
#include "util/aligned_buffer.hpp"
#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

class AsyncFileBackend {
 public:
  struct Options {
    /// In-flight op budget (io_uring SQ depth / fallback queue bound).
    u32 queue_depth = 64;
    /// Threads servicing the pread/pwrite fallback.
    u32 fallback_workers = 2;
    /// Skip io_uring even when the kernel offers it (tests exercise both
    /// mechanisms; MLPO_NO_URING=1 sets this for a whole run).
    bool force_fallback = false;
  };

  /// Completion callback: `error` is an errno value (0 on success),
  /// `transferred` the bytes actually moved. Runs on an internal thread;
  /// must not block on this backend.
  using Done = std::function<void(int error, u64 transferred)>;

  /// One-shot probe: does this kernel accept io_uring_setup?
  static bool kernel_supports_uring();

  explicit AsyncFileBackend(const Options& options);
  /// Waits for every in-flight op to complete, then joins threads.
  ~AsyncFileBackend();

  AsyncFileBackend(const AsyncFileBackend&) = delete;
  AsyncFileBackend& operator=(const AsyncFileBackend&) = delete;

  bool using_uring() const { return ring_fd_ >= 0; }
  u32 queue_depth() const { return depth_; }
  u64 in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  /// Positional read of `len` bytes at `offset`. Short transfers resubmit
  /// internally; completion reports the full length or an errno. A nonzero
  /// `min_len` < len marks the tail as optional — the O_DIRECT case of
  /// reading a block-rounded length from a file whose real size is
  /// unaligned, where EOF legitimately truncates the transfer.
  void read(int fd, void* buf, u64 len, u64 offset, Done done,
            u64 min_len = 0);
  void write(int fd, const void* buf, u64 len, u64 offset, Done done);

 private:
  struct Op {
    int fd = -1;
    bool is_write = false;
    u8* buf = nullptr;
    u64 len = 0;
    u64 min_len = 0;
    u64 offset = 0;
    u64 transferred = 0;
    Done done;
    u32 next_free = 0;
  };

  void submit(Op op);

  // --- io_uring path ---
  bool init_uring(u32 entries);
  void teardown_uring();
  /// Writes one SQE for slab slot `slot` covering its remaining range and
  /// submits it; ring_mutex_ must be held.
  void push_sqe_locked(u32 slot) MLPO_REQUIRES(ring_mutex_);
  void push_stop_locked() MLPO_REQUIRES(ring_mutex_);
  void reaper_loop();
  /// Terminal completion: recycle the slot and fire the callback.
  void finish_slot(u32 slot, int error);

  // --- fallback path ---
  void worker_loop();
  /// Looped pread/pwrite honouring len/min_len; returns errno or 0.
  static int run_sync(Op& op);

  u32 depth_;

  // Ring state (valid when ring_fd_ >= 0).
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  // Raw pointers into the mapped rings.
  std::atomic<u32>* sq_head_ = nullptr;
  std::atomic<u32>* sq_tail_ = nullptr;
  u32 sq_mask_ = 0;
  u32* sq_array_ = nullptr;
  std::atomic<u32>* cq_head_ = nullptr;
  std::atomic<u32>* cq_tail_ = nullptr;
  u32 cq_mask_ = 0;
  void* cqes_ = nullptr;

  Mutex ring_mutex_;
  std::vector<Op> slab_ MLPO_GUARDED_BY(ring_mutex_);
  u32 free_head_ MLPO_GUARDED_BY(ring_mutex_) = 0;
  CondVar slot_free_;
  std::thread reaper_;

  // Fallback state.
  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<Op> queue_ MLPO_GUARDED_BY(queue_mutex_);
  bool stopping_ MLPO_GUARDED_BY(queue_mutex_) = false;
  std::vector<std::thread> workers_;

  std::atomic<u64> in_flight_{0};
  Mutex drain_mutex_;
  CondVar drain_cv_;
};

/// File-per-object StorageTier over AsyncFileBackend. Selectable from
/// config JSON as kind "uring_file".
class UringFileTier : public StorageTier {
 public:
  struct Options {
    /// Nominal bandwidths seed the PerfModel exactly like the throttled
    /// tiers' specs do; measured behaviour takes over via the EMA.
    f64 read_bw = 1e9;
    f64 write_bw = 1e9;
    /// O_DIRECT transfers (page-cache bypass). Falls back per-file when
    /// the filesystem refuses (tmpfs returns EINVAL).
    bool direct = false;
    u32 queue_depth = 64;
    u32 fallback_workers = 2;
    bool force_fallback = false;
    /// Bounce-buffer slab for O_DIRECT alignment (suballocated, pooled).
    std::size_t bounce_slab_bytes = std::size_t{8} << 20;
  };

  UringFileTier(std::string name, std::filesystem::path root,
                Options options);
  UringFileTier(std::string name, std::filesystem::path root)
      : UringFileTier(std::move(name), std::move(root), Options()) {}
  ~UringFileTier() override;

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes = 0) override;
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes = 0) override;
  bool exists(const std::string& key) const override;
  u64 object_size(const std::string& key) const override;
  void erase(const std::string& key) override;
  f64 read_bandwidth() const override { return options_.read_bw; }
  f64 write_bandwidth() const override { return options_.write_bw; }
  bool persistent() const override { return true; }

  bool supports_async() const override { return true; }
  void write_async(const std::string& key, std::span<const u8> data,
                   u64 sim_bytes, AsyncDone done) override;
  void read_async(const std::string& key, std::span<u8> out, u64 sim_bytes,
                  AsyncDone done) override;

  const std::filesystem::path& root() const { return root_; }
  bool using_uring() const { return backend_->using_uring(); }
  /// Bounce-pool telemetry (alloc-churn accounting).
  BufferPool::Stats bounce_stats() const { return bounce_.stats(); }

 private:
  static constexpr std::size_t kAlign = 4096;

  std::filesystem::path path_for(const std::string& key) const;
  /// Open honouring options_.direct with per-file EINVAL fallback; returns
  /// fd (or -1 with errno set) and whether O_DIRECT actually stuck.
  int open_for(const std::filesystem::path& path, bool write,
               bool* direct_out) const;

  std::string name_;
  std::filesystem::path root_;
  Options options_;
  // bounce_ is declared before backend_ so the backend (whose destructor
  // drains every in-flight op, including completions still holding bounce
  // leases) is destroyed first.
  mutable BufferPool bounce_;
  std::unique_ptr<AsyncFileBackend> backend_;
  std::atomic<u64> tmp_seq_{0};
};

}  // namespace mlpo
