#include "io/io_batch.hpp"

#include <exception>
#include <stdexcept>
#include <string>

#include "tiers/failstop_tier.hpp"

namespace mlpo {

void IoBatch::wait_all() {
  std::exception_ptr first_error;
  std::exception_ptr failstop_error;
  std::string messages;
  std::size_t failures = 0;
  for (auto& fut : futures_) {
    try {
      fut.get();
    } catch (...) {
      ++failures;
      if (!first_error) first_error = std::current_exception();
      if (!messages.empty()) messages += "; ";
      try {
        throw;
      } catch (const FailStopError& e) {
        if (!failstop_error) failstop_error = std::current_exception();
        messages += e.what();
      } catch (const std::exception& e) {
        messages += e.what();
      } catch (...) {
        messages += "(non-std exception)";
      }
    }
  }
  futures_.clear();
  // A fail-stopped tier outranks the aggregate: its concrete type is what
  // the cluster layer keys node-loss recovery on, and a whole-node loss
  // routinely fails every operation in a batch at once — aggregating those
  // into a plain runtime_error would turn a recoverable failure into an
  // aborting one.
  if (failstop_error) std::rethrow_exception(failstop_error);
  if (failures == 1) std::rethrow_exception(first_error);
  if (failures > 1) {
    throw std::runtime_error("IoBatch: " + std::to_string(failures) +
                             " operations failed: " + messages);
  }
}

}  // namespace mlpo
