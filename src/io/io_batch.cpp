#include "io/io_batch.hpp"

#include <exception>
#include <stdexcept>
#include <string>

namespace mlpo {

void IoBatch::wait_all() {
  std::exception_ptr first_error;
  std::string messages;
  std::size_t failures = 0;
  for (auto& fut : futures_) {
    try {
      fut.get();
    } catch (...) {
      ++failures;
      if (!first_error) first_error = std::current_exception();
      if (!messages.empty()) messages += "; ";
      try {
        throw;
      } catch (const std::exception& e) {
        messages += e.what();
      } catch (...) {
        messages += "(non-std exception)";
      }
    }
  }
  futures_.clear();
  if (failures == 1) std::rethrow_exception(first_error);
  if (failures > 1) {
    throw std::runtime_error("IoBatch: " + std::to_string(failures) +
                             " operations failed: " + messages);
  }
}

}  // namespace mlpo
