// Per-path, per-direction I/O channel.
//
// An IoChannel is the only object in the system that touches a TierLock or
// a link RateLimiter: producers (OffloadEngine, DiskOffloader, Checkpoint)
// describe traffic as IoRequests and the scheduler dispatches them on the
// right channel with the right lock held. Three flavours:
//
//   * tier channel   — one direction (read or write) of one VirtualTier
//     path. Owns the use of that direction's node-level TierLock; when
//     process-exclusive locking is enabled, the scheduler holds a Lease
//     across each dispatch batch, which is exactly the paper's §3.2
//     "process-exclusive, thread-shared" concurrency control.
//   * link channel   — a PCIe-style point-to-point link (D2H or H2D)
//     modelled by a RateLimiter. A null limiter means instantaneous.
//   * external channel — carrier for traffic to tiers outside the virtual
//     tier (checkpoint stores, DiskOffloader backends); requests name
//     their own StorageTier.
#pragma once

#include <span>
#include <string>

#include "io/io_request.hpp"
#include "tiers/tier_lock.hpp"
#include "tiers/virtual_tier.hpp"
#include "util/rate_limiter.hpp"

namespace mlpo {

class IoChannel {
 public:
  /// Tier channel: direction `op` of `vtier`'s path `path_idx`.
  /// @param exclusive take the path's direction TierLock for each lease
  /// @param worker_id lock ownership key (node-local worker id)
  IoChannel(VirtualTier& vtier, std::size_t path_idx, IoOp op, bool exclusive,
            int worker_id);

  /// Link channel over `limiter` (nullable => instantaneous link).
  IoChannel(std::string name, RateLimiter* limiter);

  /// External channel (no vtier, no lock; requests carry their tier).
  explicit IoChannel(std::string name);

  const std::string& name() const { return name_; }
  bool is_tier_channel() const { return vtier_ != nullptr; }
  std::size_t path_index() const { return path_idx_; }

  /// RAII dispatch-scope lock share. Movable; empty for link/external
  /// channels or when exclusive locking is disabled.
  class Lease {
   public:
    Lease() = default;
    explicit Lease(TierLock::Guard guard) : guard_(std::move(guard)) {}
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;

   private:
    TierLock::Guard guard_;
  };

  /// Acquire this channel's direction lock (blocking; re-entrant for the
  /// owning worker). The scheduler takes one lease per dispatch batch so a
  /// batch of coalesced small transfers pays the lock hand-off once.
  Lease lease();

  // --- Tier-channel operations (call only from a dispatch context) ------

  /// Keyed read, routed through the VirtualTier to whichever path holds
  /// `key` (matching the engine's historical fetch behaviour: the state
  /// path's lock covers companion reads such as baseline FP32 gradients).
  void read(const std::string& key, std::span<u8> out, u64 sim_bytes = 0);

  /// Keyed write onto THIS channel's path (placement is the caller's
  /// decision via the request's path hint).
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes = 0);

  void erase(const std::string& key);

  /// Would a transfer of `key` in this channel's direction settle on real
  /// backend completion events (StorageTier::supports_async)? Write
  /// channels ask their own path; reads resolve the key's current
  /// location, mirroring read()'s routing.
  bool async_capable(const std::string& key) const;

  /// Async counterparts of read()/write(): the backend moves the bytes and
  /// `done` fires from its completion thread. Only meaningful when
  /// async_capable() — sync backends would degrade to inline completion.
  void read_async(const std::string& key, std::span<u8> out, u64 sim_bytes,
                  StorageTier::AsyncDone done);
  void write_async(const std::string& key, std::span<const u8> data,
                   u64 sim_bytes, StorageTier::AsyncDone done);

  // --- Link-channel operation -------------------------------------------

  /// Pass `sim_bytes` through the link, blocking for the modelled transfer
  /// time. No-op for a null limiter.
  void transfer(u64 sim_bytes);

 private:
  std::string name_;
  VirtualTier* vtier_ = nullptr;
  std::size_t path_idx_ = IoRequest::kAutoPath;
  IoOp op_ = IoOp::kRead;
  bool exclusive_ = false;
  int worker_id_ = 0;
  RateLimiter* limiter_ = nullptr;
};

}  // namespace mlpo
