// I/O request vocabulary for the priority-aware scheduler (paper §3.2/§3.5).
//
// Every piece of tier traffic in the system — demand prefetches of subgroup
// state, gradient deposits over the D2H link, lazy flushes of updated
// subgroups, checkpoint writes — is expressed as one IoRequest and submitted
// to the IoScheduler. The request carries everything the scheduler needs to
// route (target + path hint), order (priority class), merge (sim_bytes for
// small-transfer coalescing), and abandon (cancellation token) the
// operation, plus a completion callback through which observed bandwidth
// feeds back into the PerfModel's EMA.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "util/common.hpp"

namespace mlpo {

class IoChannel;
class StorageTier;

/// Transfer direction. Reads and writes of one path dispatch on separate
/// channels (separate TierLocks), preserving device duplex.
enum class IoOp { kRead, kWrite };

/// Scheduling classes, strongest first. Within a channel the scheduler
/// always dispatches the lowest-numbered non-empty class; ties dispatch
/// FIFO. The ordering encodes the paper's overlap argument: a demand
/// prefetch stalls the update pipeline *now*, a gradient deposit stalls the
/// next backward barrier, a lazy flush only has to finish before its host
/// buffer is reused, and a checkpoint merely has to finish eventually.
enum class IoPriority : u8 {
  kDemandPrefetch = 0,  ///< update pipeline is (about to be) blocked on this
  kGradDeposit = 1,     ///< backward-phase gradient traffic
  kLazyFlush = 2,       ///< write-back of updated subgroup state
  kCheckpoint = 3,      ///< checkpoint / restore / bulk placement traffic
};

inline constexpr std::size_t kIoPriorityCount = 4;

const char* io_priority_name(IoPriority priority);

/// Where a request is headed. Tier-path requests carry an optional path
/// hint; link requests model PCIe D2H/H2D time; external requests target a
/// StorageTier outside the VirtualTier (e.g. a checkpoint store).
enum class IoTarget : u8 {
  kTierPath = 0,
  kD2HLink,
  kH2DLink,
  kExternal,
};

/// Cooperative cancellation handle. Copyable; all copies share one flag.
/// Cancelling only affects requests still queued — once dispatched, a
/// request runs to completion (mirroring how a submitted NVMe command
/// cannot be recalled).
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { state_->store(true, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Thrown through the future of a request that was cancelled while queued.
class IoCancelled : public std::runtime_error {
 public:
  explicit IoCancelled(const std::string& what) : std::runtime_error(what) {}
};

/// Completion record handed to IoRequest::on_complete (and aggregated into
/// the scheduler's per-priority statistics). All times are virtual seconds.
struct IoResult {
  IoPriority priority = IoPriority::kDemandPrefetch;
  u64 sim_bytes = 0;           ///< simulated bytes actually moved
  f64 queue_wait_seconds = 0;  ///< submit -> dispatch (head-of-line wait)
  f64 service_seconds = 0;     ///< dispatch -> done (includes lock wait)
};

struct IoRequest {
  static constexpr std::size_t kAutoPath = static_cast<std::size_t>(-1);

  IoOp op = IoOp::kWrite;
  IoTarget target = IoTarget::kTierPath;
  std::string key;  ///< object key (tier requests) / label (link requests)

  /// Simple-payload spans: when `work` is empty the scheduler performs the
  /// one keyed transfer itself (`dst` for reads, `src` for writes; link
  /// requests just charge `sim_bytes` of link time). The memory must stay
  /// alive until the returned future resolves.
  std::span<const u8> src{};
  std::span<u8> dst{};

  /// Simulated transfer size: drives link/tier time charging for simple
  /// requests and the small-transfer coalescing decision. 0 means "use the
  /// real span size".
  u64 sim_bytes = 0;

  IoPriority priority = IoPriority::kLazyFlush;

  /// Owning tenant (job) of this request. On a shared scheduler the
  /// per-tenant weighted fair-share layer arbitrates *between* tenant ids
  /// before the priority classes order traffic *within* one; cancellation
  /// and fail-stop scoping key on it too. Single-job schedulers leave it 0.
  u32 tenant = 0;

  /// Tier-path requests: VirtualTier path index, or kAutoPath to route by
  /// `key` location (demand reads).
  std::size_t path = kAutoPath;

  /// External requests: the tier to hit (non-owning, must outlive the
  /// request). Ignored for other targets.
  StorageTier* tier = nullptr;

  CancellationToken token{};

  /// Compound operation: runs on the channel's dispatch thread with the
  /// channel's direction lock already held; issue transfers through the
  /// channel only. Returns the simulated bytes moved (for stats and the
  /// bandwidth EMA). When set, the simple-payload spans are ignored.
  std::function<u64(IoChannel&)> work{};

  /// Invoked on the dispatch thread after a successful (non-cancelled,
  /// non-throwing) execution, before the future resolves. This is where
  /// the OffloadEngine feeds PerfModel::observe.
  std::function<void(const IoResult&)> on_complete{};

  /// Invoked exactly once after the future has settled, on *every* path:
  /// success (null exception_ptr), execution failure, cancellation while
  /// queued, and submit-after-shutdown rejection — always after
  /// on_complete. This is the asynchronous completion edge the graph
  /// executor hangs IO nodes on: the node returns immediately after
  /// submitting and completes from here, so no executor worker blocks on a
  /// future and the scheduler sees the whole ready frontier at once. Runs
  /// on the dispatch thread (or the submitting thread for the shutdown
  /// rejection); must not throw.
  std::function<void(std::exception_ptr)> on_settle{};

  // Factories for the common shapes; callers attach spans/work/callbacks
  // to the returned skeleton.

  static IoRequest tier_read(std::string key, u64 sim_bytes,
                             IoPriority priority,
                             std::size_t path_hint = kAutoPath) {
    IoRequest req;
    req.op = IoOp::kRead;
    req.key = std::move(key);
    req.sim_bytes = sim_bytes;
    req.priority = priority;
    req.path = path_hint;
    return req;
  }

  static IoRequest tier_write(std::string key, std::size_t path,
                              u64 sim_bytes, IoPriority priority) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.key = std::move(key);
    req.sim_bytes = sim_bytes;
    req.priority = priority;
    req.path = path;
    return req;
  }

  static IoRequest external_op(IoOp op, StorageTier* tier, std::string key,
                               u64 sim_bytes, IoPriority priority) {
    IoRequest req;
    req.op = op;
    req.target = IoTarget::kExternal;
    req.tier = tier;
    req.key = std::move(key);
    req.sim_bytes = sim_bytes;
    req.priority = priority;
    return req;
  }

  static IoRequest link_transfer(IoTarget link, std::string label,
                                 u64 sim_bytes, IoPriority priority) {
    IoRequest req;
    req.target = link;
    req.key = std::move(label);
    req.sim_bytes = sim_bytes;
    req.priority = priority;
    return req;
  }
};

}  // namespace mlpo
