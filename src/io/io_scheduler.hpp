// Priority-aware I/O request scheduler — the single front door for every
// byte of storage and link traffic in the system (tentpole of the unified
// I/O path; paper §3.2/§3.5).
//
// Topology: one bounded submission queue + one dispatch thread per
// *channel*, where the channels are the read and write direction of every
// VirtualTier path, the D2H and H2D PCIe links, and one external channel
// for tiers outside the virtual tier (checkpoint stores, DiskOffloader
// backends). Separate read/write channels per path preserve device duplex:
// a prefetch and a flush on the same NVMe still overlap, exactly as with
// the previous per-worker thread pool — but within one direction, requests
// now dispatch by priority class instead of arrival order.
//
// Scheduling, per channel — two nested disciplines:
//   * tenants first (multi-job sharing): requests carry a tenant id and
//     queue per tenant; when more than one tenant is backlogged, a deficit
//     round-robin over the tenants' byte costs, weighted by
//     Config::tenant_weights, picks whose turn it is. A single backlogged
//     tenant bypasses the DRR entirely, so single-job schedulers behave
//     exactly as before tenancy existed;
//   * priority classes within the chosen tenant, kDemandPrefetch >
//     kGradDeposit > kLazyFlush > kCheckpoint; the strongest non-empty
//     class dispatches first, FIFO within a class (set Config::strict_fifo
//     to collapse everything into arrival order — the flat-FIFO baseline
//     the bench compares against). A light tenant's demand prefetch thus
//     still beats a heavy tenant's lazy flush *within the light tenant's
//     share* — fairness is between tenants, urgency within one;
//   * bounded queue depth per tenant: submit() blocks while the submitting
//     tenant already has Config::queue_depth requests queued on the target
//     channel, so one tenant's backlog can neither starve another tenant's
//     submissions nor evade its own backpressure;
//   * cancellation: a request whose token is cancelled while still queued
//     is dropped at dispatch, its future failing with IoCancelled;
//     cancel_tenant_queued() scopes the sweep to one tenant (the
//     RecoveryDriver's path when tenants share a scheduler);
//   * tenant fail-stop: fail_tenant() (or an armed virtual-time deadline)
//     latches a tenant dead — its queued requests and later submissions
//     settle with FailStopError, mirroring a fail-stopped device, while
//     every other tenant's channels keep flowing; revive_tenant() models
//     replacement hardware;
//   * small-transfer coalescing: consecutive same-tenant, same-class
//     requests at or below Config::coalesce_max_sim_bytes execute as one
//     dispatch batch under a single TierLock lease;
//   * completion callbacks run on the dispatch thread before the future
//     resolves, carrying observed queue-wait/service times — the hook that
//     feeds PerfModel's bandwidth EMA and the per-priority telemetry in
//     IterationReport. Stats are kept both globally and per tenant
//     (tenant_stats()), symmetrically, so a single-tenant scheduler's
//     tenant-0 stats equal its global stats.
#pragma once

#include <array>
#include <deque>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/io_channel.hpp"
#include "io/io_request.hpp"
#include "util/mutex.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

class IoScheduler {
 public:
  struct Config {
    /// Max queued requests per tenant per channel before submit() blocks.
    /// (With one tenant this is exactly the old per-channel bound.)
    std::size_t queue_depth = 64;
    /// Hold the path's per-direction TierLock across each dispatch batch
    /// (paper §3.2 process-exclusive concurrency control).
    bool tier_exclusive_locking = true;
    /// Lock-ownership key of the worker this scheduler serves.
    int worker_id = 0;
    /// Requests at or below this simulated size may coalesce into one
    /// dispatch batch (single lock lease). 0 disables coalescing.
    u64 coalesce_max_sim_bytes = 256 * 1024;
    /// Max requests per coalesced batch.
    std::size_t coalesce_batch = 8;
    /// Ignore priority classes and dispatch in arrival order (the flat
    /// FIFO baseline, for ablations and the scheduler bench).
    bool strict_fifo = false;
    /// Fair-share weights by tenant id; absent tenants weigh 1. A tenant
    /// of weight w earns w quanta of byte credit per DRR visit, so its
    /// long-run share of a saturated channel approaches w / sum(weights).
    std::map<u32, u32> tenant_weights;
    /// Bytes of DRR credit per visit per unit weight. Larger quanta lower
    /// switching overhead; smaller quanta tighten short-term fairness.
    u64 fair_share_quantum_bytes = 1 << 20;
    /// When > 0, the scheduler creates and owns its D2H/H2D link rate
    /// limiters at this bandwidth (bytes per virtual second) and the
    /// caller-provided limiter pointers must be null. 0 keeps the legacy
    /// borrow-the-caller's-limiters wiring.
    f64 d2h_bandwidth = 0;
  };

  /// Cumulative counters; snapshot via stats(). Virtual-time seconds.
  struct PriorityStats {
    u64 submitted = 0;
    u64 completed = 0;  ///< ran to completion (successfully)
    u64 failed = 0;     ///< threw; exception travels through the future
    u64 cancelled = 0;  ///< dropped while queued
    u64 sim_bytes = 0;
    f64 queue_wait_seconds = 0;
    f64 service_seconds = 0;
  };
  struct Stats {
    std::array<PriorityStats, kIoPriorityCount> priority{};
    u64 coalesced_batches = 0;
    u64 coalesced_requests = 0;  ///< requests riding in those batches
    u64 max_queue_depth = 0;     ///< high-water mark across channels
  };

  /// Full wiring: read+write channels per `vtier` path (vtier may be null
  /// for link/external-only use), D2H/H2D link channels over the given
  /// rate limiters (nullable = instantaneous; must be null when
  /// Config::d2h_bandwidth asks for scheduler-owned limiters), plus
  /// external channels — one per distinct foreign StorageTier (created on
  /// first use, so two DiskOffloaders over different devices keep
  /// overlapping) and a default channel for tier-less external work.
  IoScheduler(const SimClock& clock, VirtualTier* vtier, RateLimiter* d2h,
              RateLimiter* h2d, Config cfg);
  IoScheduler(const SimClock& clock, VirtualTier* vtier, RateLimiter* d2h,
              RateLimiter* h2d);

  /// Link/external-only scheduler (no tier paths).
  IoScheduler(const SimClock& clock, Config cfg);
  explicit IoScheduler(const SimClock& clock);

  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// Route `req` to its channel queue and return the completion future.
  /// Blocks while the request's tenant is at Config::queue_depth on that
  /// channel. Failures (and cancellation, as IoCancelled) travel through
  /// the future; a failed tenant's submission settles with FailStopError.
  std::future<void> submit(IoRequest req);

  /// Block until every submitted request has settled.
  void drain();

  /// Block until every request submitted by `tenant` has settled. Unlike
  /// drain(), convergence does not depend on other tenants going quiet, so
  /// one job's teardown cannot livelock behind its neighbours' traffic.
  void drain_tenant(u32 tenant);

  /// Cancel every request still queued (not yet dispatched) on every
  /// channel by cancelling its token; each drops at dispatch, failing its
  /// future with IoCancelled. In-flight requests are untouched (a
  /// dispatched NVMe command cannot be recalled) and requests submitted
  /// after the call are unaffected. Returns the number of requests newly
  /// flagged. This is the RecoveryDriver's abandon-the-dead-node's-I/O
  /// path: a fail-stopped node's queued traffic must not serially dispatch
  /// and fail against a dead device.
  std::size_t cancel_all_queued();

  /// Same, restricted to one priority class. The offload engine uses this
  /// on its failure path to abandon queued demand reads (always safe to
  /// cancel: re-fetchable) without touching queued writes, which may carry
  /// not-yet-persisted state.
  std::size_t cancel_queued(IoPriority priority);

  /// Same, restricted to one tenant — the fail-stop path on a shared
  /// scheduler: the dead job's queued traffic is abandoned while every
  /// other tenant's queues are untouched.
  std::size_t cancel_tenant_queued(u32 tenant);

  /// One tenant, one priority class (e.g. a borrowed engine abandoning its
  /// own queued demand reads without touching its neighbours').
  std::size_t cancel_queued(IoPriority priority, u32 tenant);

  // --- Tenant fail-stop (resilience scoping on a shared scheduler) ------

  /// Latch `tenant` dead immediately: queued requests and later
  /// submissions from it settle with FailStopError. Other tenants are
  /// unaffected. Idempotent.
  void fail_tenant(u32 tenant);

  /// Arm a virtual-time deadline after which the tenant latches dead on
  /// its next submission or dispatch (the shared-substrate analogue of
  /// FailStopTier::arm).
  void arm_tenant_fail(u32 tenant, f64 at_vtime);

  /// Has the tenant latched dead (directly or via an expired deadline)?
  /// Non-const: an expired deadline latches here, like FailStopTier's
  /// next-operation latch.
  bool tenant_failed(u32 tenant);

  /// Clear the tenant's fail-stop state — replacement hardware came up.
  void revive_tenant(u32 tenant);

  Stats stats() const;
  /// Per-tenant slice of stats(); zeroes for an unseen tenant.
  /// max_queue_depth is the tenant's own queue high-water mark.
  Stats tenant_stats(u32 tenant) const;
  const Config& config() const { return cfg_; }

  // Channel-queue addressing (mainly for tests and diagnostics).
  std::size_t queue_count() const { return queues_.size(); }
  std::size_t tier_path_count() const { return tier_paths_; }
  std::size_t read_queue(std::size_t path) const { return 2 * path; }
  std::size_t write_queue(std::size_t path) const { return 2 * path + 1; }
  std::size_t d2h_queue() const { return 2 * tier_paths_; }
  std::size_t h2d_queue() const { return 2 * tier_paths_ + 1; }
  /// Default external channel (tier-less external requests). Requests
  /// naming a StorageTier dispatch on that tier's own lazily-created
  /// channel instead.
  std::size_t external_queue() const { return 2 * tier_paths_ + 2; }
  /// Currently queued (not yet dispatched) requests on one channel queue.
  std::size_t queued(std::size_t queue_idx) const;

 private:
  struct Pending {
    IoRequest req;
    std::promise<void> done;
    f64 enqueue_vtime = 0;
  };

  /// One tenant's backlog on one channel: the per-priority deques plus the
  /// tenant's DRR byte credit. Entries are created on first use and erased
  /// when the tenant's backlog on the channel drains (so the common
  /// single-tenant case never iterates ghosts).
  struct TenantQueues {
    std::array<std::deque<std::unique_ptr<Pending>>, kIoPriorityCount>
        classes;
    std::size_t size = 0;
    i64 deficit_bytes = 0;
  };

  using TenantMap = std::map<u32, TenantQueues>;

  struct ChannelQueue {
    explicit ChannelQueue(IoChannel chan) : channel(std::move(chan)) {}
    IoChannel channel;
    mutable Mutex mutex;
    CondVar not_empty;
    CondVar not_full;
    TenantMap tenants MLPO_GUARDED_BY(mutex);
    std::size_t size MLPO_GUARDED_BY(mutex) = 0;
    /// Tenant id served by the last DRR decision; the next round starts
    /// strictly after it (cyclically), so service rotates.
    u32 drr_cursor MLPO_GUARDED_BY(mutex) = 0;
    std::thread worker;
  };

  ChannelQueue& route(const IoRequest& req);
  ChannelQueue& external_channel_for(StorageTier* tier);
  void settle(Pending& pending, std::exception_ptr error);
  void settle_error(Pending& pending, std::exception_ptr error);
  std::size_t cancel_queued_matching(const IoPriority* priority,
                                     const u32* tenant);
  std::size_t class_of(const IoRequest& req) const;
  u32 weight_of(u32 tenant) const;
  static u64 effective_bytes(const IoRequest& req);
  u64 execute(IoRequest& req, IoChannel& channel);
  void dispatch_loop(ChannelQueue& q);
  /// Pick the tenant the next batch dispatches from (backlogged entry of
  /// q.tenants). Requires q.mutex; q.size must be > 0.
  TenantMap::iterator pick_tenant(ChannelQueue& q) MLPO_REQUIRES(q.mutex);
  void run_batch(ChannelQueue& q,
                 std::vector<std::unique_ptr<Pending>>& batch);
  void finish_one(u32 tenant);
  bool tenant_failed_locked(u32 tenant) MLPO_REQUIRES(tenant_fail_mutex_);

  const SimClock* clock_;
  VirtualTier* vtier_;
  Config cfg_;
  /// Scheduler-owned link limiters (Config::d2h_bandwidth > 0); otherwise
  /// the caller's pointers are borrowed as before.
  std::unique_ptr<RateLimiter> owned_d2h_;
  std::unique_ptr<RateLimiter> owned_h2d_;
  std::size_t tier_paths_ = 0;
  std::vector<std::unique_ptr<ChannelQueue>> queues_;
  /// Lazily-created channels for foreign tiers, keyed by tier identity.
  Mutex external_mutex_;
  std::unordered_map<StorageTier*, std::unique_ptr<ChannelQueue>>
      tier_queues_ MLPO_GUARDED_BY(external_mutex_);
  std::atomic<bool> closed_{false};

  mutable Mutex stats_mutex_;
  Stats stats_ MLPO_GUARDED_BY(stats_mutex_);
  std::map<u32, Stats> tenant_stats_ MLPO_GUARDED_BY(stats_mutex_);

  /// Fail-stop latches per tenant. A deadline >= 0 fires lazily: the next
  /// submit or dispatch past it latches `failed`.
  struct TenantFailState {
    bool failed = false;
    f64 fail_at_vtime = -1;
  };
  mutable Mutex tenant_fail_mutex_;
  std::map<u32, TenantFailState> tenant_fail_
      MLPO_GUARDED_BY(tenant_fail_mutex_);

  std::atomic<u64> submitted_{0};
  std::atomic<u64> settled_{0};
  Mutex drain_mutex_;
  CondVar drain_cv_;
  std::map<u32, u64> tenant_submitted_ MLPO_GUARDED_BY(drain_mutex_);
  std::map<u32, u64> tenant_settled_ MLPO_GUARDED_BY(drain_mutex_);

  // Every exception_ptr settled into a future is also pinned here until
  // the scheduler is destroyed (see settle_error for why). One pointer
  // per FAILED request — the success path retains nothing — so the cost
  // is bounded by the number of failures/cancellations in the
  // scheduler's lifetime, which are exceptional by construction.
  Mutex retired_mutex_;
  std::vector<std::exception_ptr> retired_errors_
      MLPO_GUARDED_BY(retired_mutex_);
};

}  // namespace mlpo
