#include "io/uring_backend.hpp"

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/env.hpp"
#include "util/key_escape.hpp"

namespace mlpo {

namespace fs = std::filesystem;

namespace {

constexpr u32 kNoneSlot = ~u32{0};
constexpr u64 kStopUserData = ~u64{0};

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// The ring head/tail words are plain __u32 in the mmap'd pages; the kernel
// side uses acquire/release ordering on them, so the user side must too.
static_assert(sizeof(std::atomic<u32>) == sizeof(u32) &&
                  std::atomic<u32>::is_always_lock_free,
              "mapped-ring atomics must be layout-compatible with u32");

std::atomic<u32>* ring_u32(void* base, u32 off) {
  return reinterpret_cast<std::atomic<u32>*>(static_cast<u8*>(base) + off);
}

u64 round_up_4k(u64 bytes) { return (bytes + 4095) / 4096 * 4096; }

}  // namespace

bool AsyncFileBackend::kernel_supports_uring() {
  io_uring_params p{};
  const int fd = sys_io_uring_setup(1, &p);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

AsyncFileBackend::AsyncFileBackend(const Options& options)
    : depth_(options.queue_depth == 0 ? 1 : options.queue_depth) {
  const bool forced_off =
      options.force_fallback || env::u32_or("MLPO_NO_URING", 0) != 0;
  if (!forced_off && init_uring(depth_)) {
    slab_.resize(depth_);
    for (u32 i = 0; i < depth_; ++i) {
      slab_[i].next_free = i + 1 < depth_ ? i + 1 : kNoneSlot;
    }
    free_head_ = 0;
    reaper_ = std::thread([this] { reaper_loop(); });
    return;
  }
  const u32 n = options.fallback_workers == 0 ? 1 : options.fallback_workers;
  workers_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncFileBackend::~AsyncFileBackend() {
  // Wait for every completion callback to have finished before stopping
  // the service threads — callers may capture state they free right after
  // this destructor returns.
  {
    MutexLock lk(drain_mutex_);
    while (in_flight_.load(std::memory_order_acquire) != 0) {
      drain_cv_.wait(lk);
    }
  }
  if (using_uring()) {
    {
      MutexLock lk(ring_mutex_);
      push_stop_locked();
    }
    reaper_.join();
    teardown_uring();
  } else {
    {
      MutexLock lk(queue_mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

bool AsyncFileBackend::init_uring(u32 entries) {
  io_uring_params p{};
  ring_fd_ = sys_io_uring_setup(entries, &p);
  if (ring_fd_ < 0) return false;

  sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(u32);
  cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ =
        sq_ring_bytes_ > cq_ring_bytes_ ? sq_ring_bytes_ : cq_ring_bytes_;
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    teardown_uring();
    return false;
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      teardown_uring();
      return false;
    }
  }
  sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    teardown_uring();
    return false;
  }

  sq_head_ = ring_u32(sq_ring_, p.sq_off.head);
  sq_tail_ = ring_u32(sq_ring_, p.sq_off.tail);
  sq_mask_ =
      *reinterpret_cast<u32*>(static_cast<u8*>(sq_ring_) + p.sq_off.ring_mask);
  sq_array_ =
      reinterpret_cast<u32*>(static_cast<u8*>(sq_ring_) + p.sq_off.array);
  cq_head_ = ring_u32(cq_ring_, p.cq_off.head);
  cq_tail_ = ring_u32(cq_ring_, p.cq_off.tail);
  cq_mask_ =
      *reinterpret_cast<u32*>(static_cast<u8*>(cq_ring_) + p.cq_off.ring_mask);
  cqes_ = static_cast<u8*>(cq_ring_) + p.cq_off.cqes;
  return true;
}

void AsyncFileBackend::teardown_uring() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  sqes_ = nullptr;
  cq_ring_ = nullptr;
  sq_ring_ = nullptr;
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
}

void AsyncFileBackend::push_sqe_locked(u32 slot) {
  const Op& op = slab_[slot];
  const u32 tail = sq_tail_->load(std::memory_order_relaxed);
  const u32 idx = tail & sq_mask_;
  auto* sqe = reinterpret_cast<io_uring_sqe*>(static_cast<u8*>(sqes_)) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = op.is_write ? IORING_OP_WRITE : IORING_OP_READ;
  sqe->fd = op.fd;
  sqe->addr = reinterpret_cast<u64>(op.buf + op.transferred);
  sqe->len = static_cast<u32>(op.len - op.transferred);
  sqe->off = op.offset + op.transferred;
  sqe->user_data = slot;
  sq_array_[idx] = idx;
  sq_tail_->store(tail + 1, std::memory_order_release);
  // Non-SQPOLL enter consumes the SQE synchronously, so the ring can never
  // fill while the slab (same capacity) bounds in-flight ops.
  int rc;
  do {
    rc = sys_io_uring_enter(ring_fd_, 1, 0, 0);
  } while (rc < 0 && (errno == EINTR || errno == EAGAIN));
}

void AsyncFileBackend::push_stop_locked() {
  const u32 tail = sq_tail_->load(std::memory_order_relaxed);
  const u32 idx = tail & sq_mask_;
  auto* sqe = reinterpret_cast<io_uring_sqe*>(static_cast<u8*>(sqes_)) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_NOP;
  sqe->fd = -1;
  sqe->user_data = kStopUserData;
  sq_array_[idx] = idx;
  sq_tail_->store(tail + 1, std::memory_order_release);
  int rc;
  do {
    rc = sys_io_uring_enter(ring_fd_, 1, 0, 0);
  } while (rc < 0 && (errno == EINTR || errno == EAGAIN));
}

void AsyncFileBackend::reaper_loop() {
  for (;;) {
    const int rc = sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (rc < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
      // Ring fd gone bad: nothing sane left to do; in-flight ops would
      // hang, but this only happens if the process state is corrupt.
      return;
    }
    u32 head = cq_head_->load(std::memory_order_relaxed);
    const u32 tail = cq_tail_->load(std::memory_order_acquire);
    bool stop = false;
    while (head != tail) {
      const auto* cqe =
          reinterpret_cast<const io_uring_cqe*>(cqes_) + (head & cq_mask_);
      const u64 user_data = cqe->user_data;
      const i64 res = cqe->res;
      ++head;
      cq_head_->store(head, std::memory_order_release);
      if (user_data == kStopUserData) {
        stop = true;
        continue;
      }
      const u32 slot = static_cast<u32>(user_data);
      bool resubmitted = false;
      int error = 0;
      {
        MutexLock lk(ring_mutex_);
        Op& op = slab_[slot];
        if (res < 0) {
          if (res == -EINTR || res == -EAGAIN) {
            push_sqe_locked(slot);
            resubmitted = true;
          } else {
            error = static_cast<int>(-res);
          }
        } else {
          op.transferred += static_cast<u64>(res);
          const u64 need = op.min_len == 0 ? op.len : op.min_len;
          if (op.transferred >= need) {
            error = 0;  // full transfer, or the optional O_DIRECT tail
          } else if (res == 0) {
            error = EIO;  // EOF before the required byte count
          } else {
            push_sqe_locked(slot);
            resubmitted = true;
          }
        }
      }
      if (!resubmitted) finish_slot(slot, error);
    }
    if (stop) return;
  }
}

void AsyncFileBackend::finish_slot(u32 slot, int error) {
  Done done;
  u64 transferred = 0;
  {
    MutexLock lk(ring_mutex_);
    Op& op = slab_[slot];
    done = std::move(op.done);
    transferred = op.transferred;
    op = Op{};
    op.next_free = free_head_;
    free_head_ = slot;
  }
  slot_free_.notify_one();
  done(error, transferred);
  {
    MutexLock lk(drain_mutex_);
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
  drain_cv_.notify_all();
}

int AsyncFileBackend::run_sync(Op& op) {
  const u64 need = op.min_len == 0 ? op.len : op.min_len;
  while (op.transferred < op.len) {
    if (op.transferred >= need) break;
    const u64 chunk = op.len - op.transferred;
    const ssize_t n =
        op.is_write
            ? ::pwrite(op.fd, op.buf + op.transferred, chunk,
                       static_cast<off_t>(op.offset + op.transferred))
            : ::pread(op.fd, op.buf + op.transferred, chunk,
                      static_cast<off_t>(op.offset + op.transferred));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (n == 0) return op.transferred >= need ? 0 : EIO;
    op.transferred += static_cast<u64>(n);
  }
  return 0;
}

void AsyncFileBackend::worker_loop() {
  for (;;) {
    Op op;
    {
      MutexLock lk(queue_mutex_);
      while (queue_.empty() && !stopping_) queue_cv_.wait(lk);
      if (queue_.empty()) return;  // stopping and fully drained
      op = std::move(queue_.front());
      queue_.pop_front();
      queue_cv_.notify_all();  // a submitter may be waiting on the bound
    }
    const int error = run_sync(op);
    op.done(error, op.transferred);
    {
      MutexLock lk(drain_mutex_);
      in_flight_.fetch_sub(1, std::memory_order_release);
    }
    drain_cv_.notify_all();
  }
}

void AsyncFileBackend::submit(Op op) {
  {
    MutexLock lk(drain_mutex_);
    in_flight_.fetch_add(1, std::memory_order_release);
  }
  if (using_uring()) {
    MutexLock lk(ring_mutex_);
    while (free_head_ == kNoneSlot) slot_free_.wait(lk);
    const u32 slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot] = std::move(op);
    push_sqe_locked(slot);
  } else {
    MutexLock lk(queue_mutex_);
    while (queue_.size() >= depth_ && !stopping_) queue_cv_.wait(lk);
    queue_.push_back(std::move(op));
    queue_cv_.notify_all();
  }
}

void AsyncFileBackend::read(int fd, void* buf, u64 len, u64 offset, Done done,
                            u64 min_len) {
  if (len == 0) {
    done(0, 0);
    return;
  }
  Op op;
  op.fd = fd;
  op.is_write = false;
  op.buf = static_cast<u8*>(buf);
  op.len = len;
  op.min_len = min_len;
  op.offset = offset;
  op.done = std::move(done);
  submit(std::move(op));
}

void AsyncFileBackend::write(int fd, const void* buf, u64 len, u64 offset,
                             Done done) {
  if (len == 0) {
    done(0, 0);
    return;
  }
  Op op;
  op.fd = fd;
  op.is_write = true;
  op.buf = static_cast<u8*>(const_cast<void*>(buf));
  op.len = len;
  op.offset = offset;
  op.done = std::move(done);
  submit(std::move(op));
}

// ---------------------------------------------------------------------------
// UringFileTier

UringFileTier::UringFileTier(std::string name, fs::path root, Options options)
    : name_(std::move(name)), root_(std::move(root)), options_(options),
      bounce_(BufferPool::Options{
          options.bounce_slab_bytes < kAlign ? kAlign
                                             : options.bounce_slab_bytes,
          kAlign, /*pin=*/false}),
      backend_(std::make_unique<AsyncFileBackend>(AsyncFileBackend::Options{
          options.queue_depth, options.fallback_workers,
          options.force_fallback})) {
  fs::create_directories(root_);
}

UringFileTier::~UringFileTier() {
  // Drain in-flight completions (which may hold bounce leases) before any
  // other member goes away.
  backend_.reset();
}

fs::path UringFileTier::path_for(const std::string& key) const {
  return root_ / escape_key(key);
}

int UringFileTier::open_for(const fs::path& path, bool write,
                            bool* direct_out) const {
  const int base_flags = write ? (O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC)
                               : (O_RDONLY | O_CLOEXEC);
  if (options_.direct) {
    const int fd = ::open(path.c_str(), base_flags | O_DIRECT, 0644);
    if (fd >= 0) {
      *direct_out = true;
      return fd;
    }
    // tmpfs (and some network filesystems) reject O_DIRECT with EINVAL;
    // degrade per-file rather than failing the transfer.
    if (errno != EINVAL) return -1;
  }
  *direct_out = false;
  return ::open(path.c_str(), base_flags, 0644);
}

void UringFileTier::write_async(const std::string& key,
                                std::span<const u8> data, u64 sim_bytes,
                                AsyncDone done) {
  auto scope = std::make_shared<TierStats::TransferScope>(stats_);
  const fs::path path = path_for(key);
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(tmp_seq_.fetch_add(1));
  bool direct = false;
  const int fd = open_for(tmp, /*write=*/true, &direct);
  if (fd < 0) {
    done(std::make_exception_ptr(std::runtime_error(
        "UringFileTier '" + name_ + "': cannot open " + tmp.string())));
    return;
  }
  const u64 size = data.size();
  const u64 counted = sim_bytes != 0 ? sim_bytes : size;

  std::shared_ptr<BufferPool::Lease> bounce;
  const u8* src = data.data();
  u64 io_len = size;
  if (direct && size > 0) {
    // O_DIRECT alignment contract: 4096-aligned buffer AND length. Write
    // the block-rounded length from a pooled bounce buffer, then trim the
    // file back to the real object size.
    io_len = round_up_4k(size);
    bounce = std::make_shared<BufferPool::Lease>(bounce_.acquire(io_len));
    std::memcpy(bounce->data(), data.data(), size);
    if (io_len > size) std::memset(bounce->data() + size, 0, io_len - size);
    src = bounce->data();
  }
  const bool trim = io_len != size;

  auto completion = [this, scope, bounce, fd, tmp, path, size, counted, trim,
                     done](int error, u64) {
    if (error == 0 && trim && ::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      error = errno;
    }
    if (::close(fd) != 0 && error == 0) error = errno;
    if (error != 0) {
      std::error_code ec;
      fs::remove(tmp, ec);
      done(std::make_exception_ptr(std::runtime_error(
          "UringFileTier '" + name_ + "': write failed for " + tmp.string() +
          ": " + std::strerror(error))));
      return;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      done(std::make_exception_ptr(std::runtime_error(
          "UringFileTier '" + name_ + "': rename failed for " + path.string() +
          ": " + ec.message())));
      return;
    }
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(counted, std::memory_order_relaxed);
    done(nullptr);
  };

  if (io_len == 0) {
    completion(0, 0);  // empty object: create + rename, no transfer
    return;
  }
  backend_->write(fd, src, io_len, 0, std::move(completion));
}

void UringFileTier::read_async(const std::string& key, std::span<u8> out,
                               u64 sim_bytes, AsyncDone done) {
  auto scope = std::make_shared<TierStats::TransferScope>(stats_);
  const fs::path path = path_for(key);
  bool direct = false;
  const int fd = open_for(path, /*write=*/false, &direct);
  if (fd < 0) {
    done(std::make_exception_ptr(
        std::out_of_range("UringFileTier '" + name_ + "': no object " + key)));
    return;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    done(std::make_exception_ptr(
        std::runtime_error("UringFileTier '" + name_ + "': fstat " + key)));
    return;
  }
  const u64 size = static_cast<u64>(st.st_size);
  if (size != out.size()) {
    ::close(fd);
    done(std::make_exception_ptr(std::invalid_argument(
        "UringFileTier '" + name_ + "': size mismatch for " + key)));
    return;
  }
  const u64 counted = sim_bytes != 0 ? sim_bytes : size;
  if (size == 0) {
    ::close(fd);
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(counted, std::memory_order_relaxed);
    done(nullptr);
    return;
  }

  std::shared_ptr<BufferPool::Lease> bounce;
  u8* dst = out.data();
  u64 io_len = size;
  if (direct) {
    // Read the block-rounded length into a pooled bounce buffer; EOF
    // legitimately truncates the tail (min_len = real size).
    io_len = round_up_4k(size);
    bounce = std::make_shared<BufferPool::Lease>(bounce_.acquire(io_len));
    dst = bounce->data();
  }

  auto completion = [this, scope, bounce, fd, out, size, counted,
                     done](int error, u64) {
    ::close(fd);
    if (error != 0) {
      done(std::make_exception_ptr(std::runtime_error(
          "UringFileTier '" + name_ + "': read failed: " +
          std::strerror(error))));
      return;
    }
    if (bounce) std::memcpy(out.data(), bounce->data(), size);
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(counted, std::memory_order_relaxed);
    done(nullptr);
  };

  backend_->read(fd, dst, io_len, 0, std::move(completion), /*min_len=*/size);
}

namespace {

/// Shared latch turning the async API back into the blocking StorageTier
/// contract (used by the sync read()/write() entry points).
struct SyncLatch {
  Mutex m;
  CondVar cv;
  bool fired = false;
  std::exception_ptr error;
};

void wait_latch(const std::shared_ptr<SyncLatch>& latch) {
  MutexLock lk(latch->m);
  while (!latch->fired) latch->cv.wait(lk);
  if (latch->error) std::rethrow_exception(latch->error);
}

StorageTier::AsyncDone fire_latch(const std::shared_ptr<SyncLatch>& latch) {
  return [latch](std::exception_ptr error) {
    {
      MutexLock lk(latch->m);
      latch->fired = true;
      latch->error = std::move(error);
    }
    latch->cv.notify_all();
  };
}

}  // namespace

void UringFileTier::write(const std::string& key, std::span<const u8> data,
                          u64 sim_bytes) {
  auto latch = std::make_shared<SyncLatch>();
  write_async(key, data, sim_bytes, fire_latch(latch));
  wait_latch(latch);
}

void UringFileTier::read(const std::string& key, std::span<u8> out,
                         u64 sim_bytes) {
  auto latch = std::make_shared<SyncLatch>();
  read_async(key, out, sim_bytes, fire_latch(latch));
  wait_latch(latch);
}

bool UringFileTier::exists(const std::string& key) const {
  return fs::exists(path_for(key));
}

u64 UringFileTier::object_size(const std::string& key) const {
  std::error_code ec;
  const auto size = fs::file_size(path_for(key), ec);
  if (ec) {
    throw std::out_of_range("UringFileTier '" + name_ + "': no object " + key);
  }
  return size;
}

void UringFileTier::erase(const std::string& key) {
  std::error_code ec;
  fs::remove(path_for(key), ec);
}

}  // namespace mlpo
