#include "io/io_scheduler.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "tiers/failstop_tier.hpp"
#include "tiers/storage_tier.hpp"

namespace mlpo {

const char* io_priority_name(IoPriority priority) {
  switch (priority) {
    case IoPriority::kDemandPrefetch: return "demand-prefetch";
    case IoPriority::kGradDeposit: return "grad-deposit";
    case IoPriority::kLazyFlush: return "lazy-flush";
    case IoPriority::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

IoScheduler::IoScheduler(const SimClock& clock, VirtualTier* vtier,
                         RateLimiter* d2h, RateLimiter* h2d, Config cfg)
    : clock_(&clock), vtier_(vtier), cfg_(std::move(cfg)) {
  if (cfg_.queue_depth == 0) {
    throw std::invalid_argument("IoScheduler: queue_depth must be > 0");
  }
  if (cfg_.fair_share_quantum_bytes == 0) {
    throw std::invalid_argument(
        "IoScheduler: fair_share_quantum_bytes must be > 0");
  }
  if (cfg_.d2h_bandwidth > 0) {
    if (d2h != nullptr || h2d != nullptr) {
      throw std::invalid_argument(
          "IoScheduler: Config::d2h_bandwidth asks for owned link limiters "
          "but caller limiters were also provided");
    }
    owned_d2h_ = std::make_unique<RateLimiter>(clock, cfg_.d2h_bandwidth);
    owned_h2d_ = std::make_unique<RateLimiter>(clock, cfg_.d2h_bandwidth);
    d2h = owned_d2h_.get();
    h2d = owned_h2d_.get();
  }
  tier_paths_ = vtier_ != nullptr ? vtier_->path_count() : 0;
  queues_.reserve(2 * tier_paths_ + 3);
  for (std::size_t p = 0; p < tier_paths_; ++p) {
    queues_.push_back(std::make_unique<ChannelQueue>(
        IoChannel(*vtier_, p, IoOp::kRead, cfg_.tier_exclusive_locking,
                  cfg_.worker_id)));
    queues_.push_back(std::make_unique<ChannelQueue>(
        IoChannel(*vtier_, p, IoOp::kWrite, cfg_.tier_exclusive_locking,
                  cfg_.worker_id)));
  }
  queues_.push_back(std::make_unique<ChannelQueue>(IoChannel("d2h", d2h)));
  queues_.push_back(std::make_unique<ChannelQueue>(IoChannel("h2d", h2d)));
  queues_.push_back(std::make_unique<ChannelQueue>(IoChannel("external")));
  for (auto& q : queues_) {
    q->worker = std::thread([this, queue = q.get()] { dispatch_loop(*queue); });
  }
}

IoScheduler::IoScheduler(const SimClock& clock, VirtualTier* vtier,
                         RateLimiter* d2h, RateLimiter* h2d)
    : IoScheduler(clock, vtier, d2h, h2d, Config{}) {}

IoScheduler::IoScheduler(const SimClock& clock, Config cfg)
    : IoScheduler(clock, nullptr, nullptr, nullptr, std::move(cfg)) {}

IoScheduler::IoScheduler(const SimClock& clock)
    : IoScheduler(clock, nullptr, nullptr, nullptr, Config{}) {}

IoScheduler::~IoScheduler() {
  // Async-capable backends settle requests from their own completion
  // threads; wait for every submitted request to settle before tearing the
  // channel machinery down (sync dispatches settle inline, so for them
  // this returns immediately once the queues empty below — but queued work
  // is still dispatched after closed_ is set, exactly as before).
  drain();
  closed_.store(true, std::memory_order_release);
  const auto wake = [](ChannelQueue& q) {
    {
      MutexLock lk(q.mutex);  // publish `closed_` to parked waiters
    }
    q.not_empty.notify_all();
    q.not_full.notify_all();
  };
  for (auto& q : queues_) wake(*q);
  // Snapshot the lazily-created external channels under external_mutex_,
  // then wake and join outside it: tier_queues_ must not be iterated
  // unlocked (a racing external_channel_for may still be inserting until
  // its closed_ check lands), and joining under the lock would deadlock
  // against any dispatch thread calling back into the scheduler. closed_
  // is already set, so no new channel can be created after the snapshot.
  std::vector<ChannelQueue*> externals;
  {
    MutexLock lk(external_mutex_);
    externals.reserve(tier_queues_.size());
    for (auto& [tier, q] : tier_queues_) externals.push_back(q.get());
  }
  for (auto* q : externals) wake(*q);
  for (auto& q : queues_) q->worker.join();
  for (auto* q : externals) q->worker.join();
}

IoScheduler::ChannelQueue& IoScheduler::route(const IoRequest& req) {
  switch (req.target) {
    case IoTarget::kD2HLink: return *queues_[d2h_queue()];
    case IoTarget::kH2DLink: return *queues_[h2d_queue()];
    case IoTarget::kExternal:
      if (req.tier == nullptr) {
        if (!req.work) {
          throw std::invalid_argument(
              "IoScheduler: external request without a tier");
        }
        return *queues_[external_queue()];
      }
      return external_channel_for(req.tier);
    case IoTarget::kTierPath: {
      if (tier_paths_ == 0) {
        throw std::logic_error(
            "IoScheduler: tier-path request but no virtual tier attached");
      }
      std::size_t path = req.path;
      if (path == IoRequest::kAutoPath) {
        if (req.op == IoOp::kWrite) {
          throw std::invalid_argument(
              "IoScheduler: tier write requires an explicit path hint");
        }
        const std::size_t loc = vtier_->locate(req.key);
        // Unknown keys route to path 0; the dispatch fails there with the
        // tier's own "no such object" error, preserving the producer-side
        // error surface.
        path = loc == VirtualTier::npos ? 0 : loc;
      }
      if (path >= tier_paths_) {
        throw std::out_of_range("IoScheduler: path hint out of range");
      }
      return *queues_[req.op == IoOp::kRead ? read_queue(path)
                                            : write_queue(path)];
    }
  }
  throw std::logic_error("IoScheduler: unreachable target");
}

IoScheduler::ChannelQueue& IoScheduler::external_channel_for(
    StorageTier* tier) {
  MutexLock lk(external_mutex_);
  const auto it = tier_queues_.find(tier);
  if (it != tier_queues_.end()) return *it->second;
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("IoScheduler: submit after shutdown");
  }
  auto q = std::make_unique<ChannelQueue>(
      IoChannel("external/" + tier->name()));
  q->worker = std::thread([this, queue = q.get()] { dispatch_loop(*queue); });
  return *tier_queues_.emplace(tier, std::move(q)).first->second;
}

std::size_t IoScheduler::class_of(const IoRequest& req) const {
  return cfg_.strict_fifo ? 0 : static_cast<std::size_t>(req.priority);
}

u32 IoScheduler::weight_of(u32 tenant) const {
  const auto it = cfg_.tenant_weights.find(tenant);
  return it == cfg_.tenant_weights.end() ? 1u : std::max<u32>(1, it->second);
}

u64 IoScheduler::effective_bytes(const IoRequest& req) {
  if (req.sim_bytes != 0) return req.sim_bytes;
  return std::max<u64>(req.src.size(), req.dst.size());
}

std::future<void> IoScheduler::submit(IoRequest req) {
  ChannelQueue& q = route(req);
  const auto pri = static_cast<std::size_t>(req.priority);
  const u32 tenant = req.tenant;

  auto pending = std::make_unique<Pending>();
  pending->req = std::move(req);
  pending->enqueue_vtime = clock_->now();
  auto fut = pending->done.get_future();

  // A fail-stopped tenant's submission fails like an op against a dead
  // device: immediately, without ever occupying queue space another tenant
  // could use. The common single-job case pays one empty-map lookup.
  if (tenant_failed(tenant)) {
    settle(*pending,
           std::make_exception_ptr(FailStopError(
               "IoScheduler: tenant " + std::to_string(tenant) +
               " is fail-stopped (request \"" + pending->req.key + "\")")));
    return fut;
  }

  std::size_t depth_after = 0;
  std::size_t tenant_depth_after = 0;
  bool rejected = false;
  {
    MutexLock lk(q.mutex);
    // Backpressure is per tenant: this tenant blocks on its own backlog
    // but never on a neighbour's (whose deep queue must not block a light
    // tenant's submit). With one tenant the bound degenerates to the old
    // per-channel depth.
    const auto tenant_backlog = [&]() -> std::size_t {
      const auto it = q.tenants.find(tenant);
      return it == q.tenants.end() ? 0 : it->second.size;
    };
    while (!closed_.load(std::memory_order_acquire) &&
           tenant_backlog() >= cfg_.queue_depth) {
      q.not_full.wait(lk);
    }
    if (closed_.load(std::memory_order_acquire)) {
      rejected = true;
    } else {
      TenantQueues& tq = q.tenants[tenant];
      tq.classes[class_of(pending->req)].push_back(std::move(pending));
      ++tq.size;
      ++q.size;
      depth_after = q.size;
      tenant_depth_after = tq.size;
      // Count before the dispatcher can possibly settle this request (we
      // still hold q.mutex), so drain() never sees settled_ overtake a
      // stale submitted_ and return with work in flight. The per-tenant
      // ledgers live under drain_mutex_ (q.mutex -> drain_mutex_ nests;
      // nothing acquires a channel lock under drain_mutex_).
      submitted_.fetch_add(1, std::memory_order_acq_rel);
      {
        MutexLock dlk(drain_mutex_);
        ++tenant_submitted_[tenant];
      }
    }
  }
  if (rejected) {
    // Settled outside q.mutex: on_settle is an arbitrary callback (the
    // graph executor's completion edge) and must never run under a
    // channel lock.
    settle(*pending, std::make_exception_ptr(std::runtime_error(
                         "IoScheduler: submit after shutdown")));
    return fut;
  }
  // Stats land outside q.mutex so the global stats lock never nests inside
  // a channel lock (a fast dispatcher may transiently show completed >
  // submitted; the counters are monotonic and converge immediately).
  {
    MutexLock slk(stats_mutex_);
    ++stats_.priority[pri].submitted;
    stats_.max_queue_depth = std::max<u64>(stats_.max_queue_depth, depth_after);
    Stats& ts = tenant_stats_[tenant];
    ++ts.priority[pri].submitted;
    ts.max_queue_depth =
        std::max<u64>(ts.max_queue_depth, tenant_depth_after);
  }
  q.not_empty.notify_one();
  return fut;
}

std::size_t IoScheduler::cancel_all_queued() {
  return cancel_queued_matching(nullptr, nullptr);
}

std::size_t IoScheduler::cancel_queued(IoPriority priority) {
  return cancel_queued_matching(&priority, nullptr);
}

std::size_t IoScheduler::cancel_tenant_queued(u32 tenant) {
  return cancel_queued_matching(nullptr, &tenant);
}

std::size_t IoScheduler::cancel_queued(IoPriority priority, u32 tenant) {
  return cancel_queued_matching(&priority, &tenant);
}

std::size_t IoScheduler::cancel_queued_matching(const IoPriority* priority,
                                                const u32* tenant) {
  std::size_t flagged = 0;
  const auto sweep = [&](ChannelQueue& q) {
    MutexLock lk(q.mutex);
    for (auto& [tid, tq] : q.tenants) {
      if (tenant != nullptr && tid != *tenant) continue;
      // All classes are swept (not just the matching class index): under
      // strict_fifo every priority shares class 0, so the filter must look
      // at the request itself.
      for (auto& cls : tq.classes) {
        for (auto& p : cls) {
          if (priority != nullptr && p->req.priority != *priority) continue;
          if (p->req.token.cancelled()) continue;
          p->req.token.cancel();
          ++flagged;
        }
      }
    }
  };
  for (auto& q : queues_) sweep(*q);
  {
    MutexLock lk(external_mutex_);
    for (auto& [tier, q] : tier_queues_) sweep(*q);
  }
  return flagged;
}

void IoScheduler::fail_tenant(u32 tenant) {
  MutexLock lk(tenant_fail_mutex_);
  tenant_fail_[tenant].failed = true;
}

void IoScheduler::arm_tenant_fail(u32 tenant, f64 at_vtime) {
  MutexLock lk(tenant_fail_mutex_);
  tenant_fail_[tenant].fail_at_vtime = at_vtime;
}

bool IoScheduler::tenant_failed(u32 tenant) {
  MutexLock lk(tenant_fail_mutex_);
  return tenant_failed_locked(tenant);
}

bool IoScheduler::tenant_failed_locked(u32 tenant) {
  const auto it = tenant_fail_.find(tenant);
  if (it == tenant_fail_.end()) return false;
  TenantFailState& st = it->second;
  if (!st.failed && st.fail_at_vtime >= 0 &&
      clock_->now() >= st.fail_at_vtime) {
    st.failed = true;  // deadline latches on first traffic past it
  }
  return st.failed;
}

void IoScheduler::revive_tenant(u32 tenant) {
  MutexLock lk(tenant_fail_mutex_);
  tenant_fail_.erase(tenant);
}

IoScheduler::TenantMap::iterator IoScheduler::pick_tenant(ChannelQueue& q) {
  // Entries only exist while backlogged (erased when drained), so every
  // element of q.tenants is a candidate. One tenant = no arbitration: the
  // single-job scheduler takes exactly the pre-tenancy dispatch path.
  if (q.tenants.size() == 1) return q.tenants.begin();

  const auto head_cost = [](const TenantQueues& tq) -> i64 {
    for (const auto& cls : tq.classes) {
      if (!cls.empty()) {
        return static_cast<i64>(effective_bytes(cls.front()->req));
      }
    }
    return 0;  // unreachable while the entry is backlogged
  };

  // Deficit round-robin, weighted. The tenant under the cursor keeps the
  // channel while it can pay for its head request out of existing credit —
  // a weight-w tenant's quantum buys it a run of ~w quanta of bytes per
  // visit, which is where the weighting bites; rotating after every batch
  // would degenerate into unweighted alternation.
  {
    const auto cur = q.tenants.find(q.drr_cursor);
    if (cur != q.tenants.end() &&
        cur->second.deficit_bytes >= head_cost(cur->second)) {
      return cur;
    }
  }
  // Otherwise visit tenants cyclically from just past the cursor; a visit
  // tops the tenant's byte credit up by weight * quantum when it cannot
  // afford its head request, and the first tenant that can afford its
  // head takes the channel. Credit grows every round, so the scan
  // terminates; over a saturated channel each tenant's served bytes
  // converge to its weight share.
  for (;;) {
    auto it = q.tenants.upper_bound(q.drr_cursor);
    for (std::size_t visited = 0; visited < q.tenants.size(); ++visited) {
      if (it == q.tenants.end()) it = q.tenants.begin();
      TenantQueues& tq = it->second;
      const i64 cost = head_cost(tq);
      if (tq.deficit_bytes < cost) {
        tq.deficit_bytes += static_cast<i64>(cfg_.fair_share_quantum_bytes) *
                            static_cast<i64>(weight_of(it->first));
      }
      if (tq.deficit_bytes >= cost) {
        q.drr_cursor = it->first;
        return it;
      }
      ++it;
    }
  }
}

void IoScheduler::dispatch_loop(ChannelQueue& q) {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      MutexLock lk(q.mutex);
      while (!closed_.load(std::memory_order_acquire) && q.size == 0) {
        q.not_empty.wait(lk);
      }
      if (q.size == 0) {
        if (closed_.load(std::memory_order_acquire)) return;
        continue;
      }
      const auto tenant_it = pick_tenant(q);
      TenantQueues& tq = tenant_it->second;
      // Strongest non-empty class of the chosen tenant dispatches first.
      auto* cls = &tq.classes[0];
      for (auto& c : tq.classes) {
        if (!c.empty()) {
          cls = &c;
          break;
        }
      }
      const auto pop_into_batch = [&] {
        // Served bytes draw the tenant's DRR credit down, whatever mode
        // picked it (the solo fast path leaves credit negative, which the
        // quantum top-up amortises if contention appears later).
        tq.deficit_bytes -=
            static_cast<i64>(effective_bytes(cls->front()->req));
        batch.push_back(std::move(cls->front()));
        cls->pop_front();
        --tq.size;
        --q.size;
      };
      pop_into_batch();
      // Small-transfer coalescing: same tenant, same class, same direction
      // by construction (one queue per direction); one lock lease for all.
      const IoRequest& head = batch.front()->req;
      if (cfg_.coalesce_max_sim_bytes > 0 && cfg_.coalesce_batch > 1 &&
          effective_bytes(head) <= cfg_.coalesce_max_sim_bytes) {
        while (batch.size() < cfg_.coalesce_batch && !cls->empty() &&
               effective_bytes(cls->front()->req) <=
                   cfg_.coalesce_max_sim_bytes) {
          pop_into_batch();
        }
      }
      // A drained tenant forfeits its remaining credit (standard DRR) and
      // its entry, keeping the map's size == live backlogged tenants.
      if (tq.size == 0) q.tenants.erase(tenant_it);
    }
    q.not_full.notify_all();
    run_batch(q, batch);
  }
}

void IoScheduler::run_batch(ChannelQueue& q,
                            std::vector<std::unique_ptr<Pending>>& batch) {
  const f64 dispatch_start = clock_->now();
  if (batch.size() > 1) {
    MutexLock slk(stats_mutex_);
    ++stats_.coalesced_batches;
    stats_.coalesced_requests += batch.size();
    Stats& ts = tenant_stats_[batch.front()->req.tenant];
    ++ts.coalesced_batches;
    ts.coalesced_requests += batch.size();
  }

  // The lease is taken lazily so an all-cancelled batch never touches the
  // lock, and held across the whole batch (the coalescing win: one
  // process-exclusive hand-off for many small transfers). It is shared so
  // async dispatches can keep the direction lock alive until their real
  // completion lands — the last holder (batch scope or completion
  // callback) releases it, from whichever thread that is (TierLock
  // ownership is worker-keyed, not thread-keyed).
  std::shared_ptr<IoChannel::Lease> lease;
  f64 item_start = dispatch_start;
  for (auto& p : batch) {
    const auto pri = static_cast<std::size_t>(p->req.priority);
    const u32 tenant = p->req.tenant;
    if (p->req.token.cancelled()) {
      {
        MutexLock slk(stats_mutex_);
        ++stats_.priority[pri].cancelled;
        ++tenant_stats_[tenant].priority[pri].cancelled;
      }
      settle(*p, std::make_exception_ptr(IoCancelled(
                     "IoScheduler: request cancelled while queued: " +
                     p->req.key)));
      finish_one(tenant);
      continue;
    }
    if (tenant_failed(tenant)) {
      // A dead tenant's queued traffic fails at dispatch exactly as it
      // would against a fail-stopped device — without occupying the
      // channel, so the surviving tenants' requests behind it never stall.
      const f64 queue_wait = std::max(0.0, item_start - p->enqueue_vtime);
      {
        MutexLock slk(stats_mutex_);
        auto& s = stats_.priority[pri];
        s.queue_wait_seconds += queue_wait;
        ++s.failed;
        auto& ts = tenant_stats_[tenant].priority[pri];
        ts.queue_wait_seconds += queue_wait;
        ++ts.failed;
      }
      settle(*p, std::make_exception_ptr(FailStopError(
                     "IoScheduler: tenant " + std::to_string(tenant) +
                     " fail-stopped while \"" + p->req.key + "\" queued")));
      finish_one(tenant);
      continue;
    }
    if (!lease) lease = std::make_shared<IoChannel::Lease>(q.channel.lease());

    // Async dispatch: when the backing tier settles on real device events,
    // hand the transfer to its completion engine and move on — the request
    // settles (stats, on_complete, future, on_settle) from the completion
    // callback with the genuinely observed service time, not a simulated
    // one. Sync backends (throttled/simulated tiers) keep the inline path
    // below, where SimClock charges the modelled service time.
    const bool tier_async = p->req.target == IoTarget::kTierPath &&
                            !p->req.work &&
                            q.channel.async_capable(p->req.key);
    const bool external_async = p->req.target == IoTarget::kExternal &&
                                !p->req.work && p->req.tier != nullptr &&
                                p->req.tier->supports_async();
    if (tier_async || external_async) {
      const f64 queue_wait_async =
          std::max(0.0, item_start - p->enqueue_vtime);
      const f64 start = item_start;
      std::shared_ptr<Pending> pending(p.release());
      auto on_done = [this, pending, lease, pri, tenant, queue_wait_async,
                      start](std::exception_ptr error) {
        const f64 service = std::max(0.0, clock_->now() - start);
        const u64 moved = effective_bytes(pending->req);
        {
          MutexLock slk(stats_mutex_);
          const auto fold = [&](Stats& stats) {
            auto& s = stats.priority[pri];
            s.queue_wait_seconds += queue_wait_async;
            s.service_seconds += service;
            if (error) {
              ++s.failed;
            } else {
              ++s.completed;
              s.sim_bytes += moved;
            }
          };
          fold(stats_);
          fold(tenant_stats_[tenant]);
        }
        if (!error && pending->req.on_complete) {
          IoResult result;
          result.priority = pending->req.priority;
          result.sim_bytes = moved;
          result.queue_wait_seconds = queue_wait_async;
          result.service_seconds = service;
          try {
            pending->req.on_complete(result);
          } catch (...) {
            error = std::current_exception();
          }
        }
        settle(*pending, std::move(error));
        finish_one(tenant);
      };
      IoRequest& req = pending->req;
      if (tier_async) {
        if (req.op == IoOp::kRead) {
          q.channel.read_async(req.key, req.dst, req.sim_bytes,
                               std::move(on_done));
        } else {
          q.channel.write_async(req.key, req.src, req.sim_bytes,
                                std::move(on_done));
        }
      } else if (req.op == IoOp::kRead) {
        req.tier->read_async(req.key, req.dst, req.sim_bytes,
                             std::move(on_done));
      } else {
        req.tier->write_async(req.key, req.src, req.sim_bytes,
                              std::move(on_done));
      }
      item_start = clock_->now();
      continue;
    }

    const f64 queue_wait = std::max(0.0, item_start - p->enqueue_vtime);
    std::exception_ptr error;
    u64 moved = 0;
    try {
      moved = execute(p->req, q.channel);
    } catch (...) {
      error = std::current_exception();
    }
    const f64 service = std::max(0.0, clock_->now() - item_start);
    {
      // Failed requests still waited and occupied the channel; fold their
      // times in so mean waits are not skewed low by error storms.
      MutexLock slk(stats_mutex_);
      const auto fold = [&](Stats& stats) {
        auto& s = stats.priority[pri];
        s.queue_wait_seconds += queue_wait;
        s.service_seconds += service;
        if (error) {
          ++s.failed;
        } else {
          ++s.completed;
          s.sim_bytes += moved;
        }
      };
      fold(stats_);
      fold(tenant_stats_[tenant]);
    }
    if (!error && p->req.on_complete) {
      IoResult result;
      result.priority = p->req.priority;
      result.sim_bytes = moved;
      result.queue_wait_seconds = queue_wait;
      result.service_seconds = service;
      // The transfer itself succeeded and stays counted as completed; a
      // throwing hook only surfaces through the future.
      try {
        p->req.on_complete(result);
      } catch (...) {
        error = std::current_exception();
      }
    }
    settle(*p, std::move(error));
    item_start = clock_->now();
    finish_one(tenant);
  }
}

u64 IoScheduler::execute(IoRequest& req, IoChannel& channel) {
  if (req.work) return req.work(channel);
  switch (req.target) {
    case IoTarget::kTierPath:
      if (req.op == IoOp::kRead) {
        channel.read(req.key, req.dst, req.sim_bytes);
      } else {
        channel.write(req.key, req.src, req.sim_bytes);
      }
      return effective_bytes(req);
    case IoTarget::kD2HLink:
    case IoTarget::kH2DLink: {
      const u64 bytes = effective_bytes(req);
      channel.transfer(bytes);
      return bytes;
    }
    case IoTarget::kExternal:
      if (req.tier == nullptr) {
        throw std::invalid_argument(
            "IoScheduler: external request without a tier");
      }
      if (req.op == IoOp::kRead) {
        req.tier->read(req.key, req.dst, req.sim_bytes);
      } else {
        req.tier->write(req.key, req.src, req.sim_bytes);
      }
      return effective_bytes(req);
  }
  throw std::logic_error("IoScheduler: unreachable target");
}

void IoScheduler::settle(Pending& pending, std::exception_ptr error) {
  // Destroy the work closure and completion hook BEFORE the future
  // settles. The closures own transfer resources — notably BufferPool
  // leases pointing into an engine-owned slab — and a waiter is entitled
  // to tear the engine down the moment its future returns. Releasing here
  // makes that teardown race-free: the Pending shell destroyed later (end
  // of the dispatched batch, or the async completion's last shared_ptr)
  // no longer references anything the engine owns.
  pending.req.work = nullptr;
  pending.req.on_complete = nullptr;
  if (error) {
    settle_error(pending, error);
  } else {
    pending.done.set_value();
  }
  // on_settle fires strictly after the future has settled, so a hook that
  // hands the result to another thread can let that thread get() without
  // blocking. Every settled request passes through here exactly once.
  if (pending.req.on_settle) pending.req.on_settle(std::move(error));
}

void IoScheduler::settle_error(Pending& pending, std::exception_ptr error) {
  // Failing the future also pins a copy of the exception_ptr until the
  // scheduler is destroyed. Without the pin, the LAST release of the
  // exception is unordered between the waiter (rethrow from get(),
  // refcount drop at the end of its catch block) and this worker
  // (promise destruction when the dispatched batch goes out of scope);
  // the refcount itself is atomic, but it lives in libstdc++'s eh_ptr
  // machinery, which ThreadSanitizer cannot instrument, so a waiter
  // still reading what() while the worker performs the final free is
  // reported as a use-after-free race. Pinning moves the final release
  // to ~IoScheduler — after every worker is joined, which is an edge
  // the sanitizer (and a human) can see. The cost is one smart pointer
  // per failed request for the scheduler's lifetime.
  {
    MutexLock lk(retired_mutex_);
    retired_errors_.push_back(error);
  }
  pending.done.set_exception(std::move(error));
}

void IoScheduler::finish_one(u32 tenant) {
  {
    MutexLock lk(drain_mutex_);
    settled_.fetch_add(1, std::memory_order_release);
    ++tenant_settled_[tenant];
  }
  drain_cv_.notify_all();
}

void IoScheduler::drain() {
  MutexLock lk(drain_mutex_);
  while (settled_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    drain_cv_.wait(lk);
  }
}

void IoScheduler::drain_tenant(u32 tenant) {
  MutexLock lk(drain_mutex_);
  while (tenant_settled_[tenant] < tenant_submitted_[tenant]) {
    drain_cv_.wait(lk);
  }
}

IoScheduler::Stats IoScheduler::stats() const {
  MutexLock slk(stats_mutex_);
  return stats_;
}

IoScheduler::Stats IoScheduler::tenant_stats(u32 tenant) const {
  MutexLock slk(stats_mutex_);
  const auto it = tenant_stats_.find(tenant);
  return it == tenant_stats_.end() ? Stats{} : it->second;
}

std::size_t IoScheduler::queued(std::size_t queue_idx) const {
  const ChannelQueue& q = *queues_.at(queue_idx);
  MutexLock lk(q.mutex);
  return q.size;
}

}  // namespace mlpo
