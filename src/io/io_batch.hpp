// Future collector: gather the futures of a batch of submitted I/O
// requests, wait for all of them, surface every failure. Mirrors an
// io_getevents loop over a batch.
#pragma once

#include <future>
#include <vector>

namespace mlpo {

class IoBatch {
 public:
  void add(std::future<void> fut) { futures_.push_back(std::move(fut)); }
  std::size_t size() const { return futures_.size(); }

  /// Waits for every future; no operation is left dangling on error. If
  /// exactly one operation failed its exception is rethrown unchanged
  /// (type-preserving); if several failed, throws std::runtime_error whose
  /// message aggregates every captured failure, so a multi-path error storm
  /// is not silently reduced to whichever path happened to settle first.
  /// Exception: a FailStopError among the failures is rethrown unchanged
  /// even in a multi-failure batch — its type is the node-loss signal the
  /// recovery machinery classifies on.
  void wait_all();

 private:
  std::vector<std::future<void>> futures_;
};

}  // namespace mlpo
