#include "io/io_channel.hpp"

#include <stdexcept>

namespace mlpo {

IoChannel::IoChannel(VirtualTier& vtier, std::size_t path_idx, IoOp op,
                     bool exclusive, int worker_id)
    : name_(vtier.path(path_idx).name() +
            (op == IoOp::kRead ? "/read" : "/write")),
      vtier_(&vtier), path_idx_(path_idx), op_(op), exclusive_(exclusive),
      worker_id_(worker_id) {}

IoChannel::IoChannel(std::string name, RateLimiter* limiter)
    : name_(std::move(name)), limiter_(limiter) {}

IoChannel::IoChannel(std::string name) : name_(std::move(name)) {}

IoChannel::Lease IoChannel::lease() {
  if (vtier_ == nullptr || !exclusive_) return Lease{};
  TierLock* lock = op_ == IoOp::kRead ? vtier_->path_read_lock(path_idx_)
                                      : vtier_->path_write_lock(path_idx_);
  if (lock == nullptr) return Lease{};
  return Lease{lock->lock(worker_id_)};
}

void IoChannel::read(const std::string& key, std::span<u8> out,
                     u64 sim_bytes) {
  if (vtier_ == nullptr) {
    throw std::logic_error("IoChannel(" + name_ + "): read on non-tier channel");
  }
  vtier_->read(key, out, sim_bytes);
}

void IoChannel::write(const std::string& key, std::span<const u8> data,
                      u64 sim_bytes) {
  if (vtier_ == nullptr) {
    throw std::logic_error("IoChannel(" + name_ +
                           "): write on non-tier channel");
  }
  vtier_->write_to(path_idx_, key, data, sim_bytes);
}

bool IoChannel::async_capable(const std::string& key) const {
  if (vtier_ == nullptr) return false;
  if (op_ == IoOp::kWrite) return vtier_->path_supports_async(path_idx_);
  const std::size_t loc = vtier_->locate(key);
  return loc != VirtualTier::npos && vtier_->path_supports_async(loc);
}

void IoChannel::read_async(const std::string& key, std::span<u8> out,
                           u64 sim_bytes, StorageTier::AsyncDone done) {
  if (vtier_ == nullptr) {
    throw std::logic_error("IoChannel(" + name_ +
                           "): read_async on non-tier channel");
  }
  vtier_->read_async(key, out, sim_bytes, std::move(done));
}

void IoChannel::write_async(const std::string& key, std::span<const u8> data,
                            u64 sim_bytes, StorageTier::AsyncDone done) {
  if (vtier_ == nullptr) {
    throw std::logic_error("IoChannel(" + name_ +
                           "): write_async on non-tier channel");
  }
  vtier_->write_to_async(path_idx_, key, data, sim_bytes, std::move(done));
}

void IoChannel::erase(const std::string& key) {
  if (vtier_ == nullptr) {
    throw std::logic_error("IoChannel(" + name_ +
                           "): erase on non-tier channel");
  }
  vtier_->erase(key);
}

void IoChannel::transfer(u64 sim_bytes) {
  if (limiter_ != nullptr) limiter_->acquire(sim_bytes);
}

}  // namespace mlpo
