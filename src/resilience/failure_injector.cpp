#include "resilience/failure_injector.hpp"

#include <stdexcept>
#include <string>

#include "runtime/cluster.hpp"
#include "util/logging.hpp"

namespace mlpo {

namespace {

// u32 fields must reject negatives at parse time: static_cast would wrap
// -1 to 4294967295, silently turning e.g. the max_recoveries flap bound
// into "unlimited" — the opposite of this module's strict-parse rule.
u32 non_negative_int(const json::Value& doc, const std::string& key,
                     u32 fallback) {
  const i64 value = doc.int_or(key, static_cast<i64>(fallback));
  if (value < 0) {
    throw std::invalid_argument("resilience config: " + key + "=" +
                                std::to_string(value) +
                                " must be non-negative");
  }
  return static_cast<u32>(value);
}

}  // namespace

void FailureEvent::validate() const {
  const bool by_iteration = at_iteration >= 0;
  const bool by_vtime = at_vtime >= 0;
  if (by_iteration == by_vtime) {
    throw std::invalid_argument(
        "FailureEvent: exactly one of at_iteration / at_vtime must be set");
  }
}

std::vector<FailureEvent> failure_schedule_from_json(const json::Value& doc) {
  if (!doc.is_array()) {
    throw std::invalid_argument(
        "failure schedule: expected a JSON array of events");
  }
  std::vector<FailureEvent> schedule;
  for (const auto& entry : doc.as_array()) {
    FailureEvent event;
    const std::string kind = entry.string_or("kind", "node");
    if (kind == "node") {
      event.kind = FailureEvent::Kind::kNode;
    } else if (kind == "path") {
      event.kind = FailureEvent::Kind::kPath;
    } else {
      // Same strictness as the policy registry: fail at parse time naming
      // the known set, not later inside the run loop.
      throw std::invalid_argument("failure schedule: unknown kind '" + kind +
                                  "' (known: node path)");
    }
    event.node = non_negative_int(entry, "node", 0);
    event.path = non_negative_int(entry, "path", 0);
    event.at_iteration = entry.int_or("at_iteration", -1);
    event.at_vtime = entry.number_or("at_vtime", -1);
    event.validate();
    schedule.push_back(event);
  }
  return schedule;
}

ResilienceConfig resilience_config_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument(
        "resilience config: expected a JSON object");
  }
  ResilienceConfig cfg;
  cfg.enabled = doc.bool_or("enabled", true);
  cfg.checkpoint_interval =
      non_negative_int(doc, "checkpoint_interval", cfg.checkpoint_interval);
  if (cfg.checkpoint_interval == 0) {
    throw std::invalid_argument(
        "resilience config: checkpoint_interval must be >= 1");
  }
  cfg.restart_nodes = non_negative_int(doc, "restart_nodes",
                                       cfg.restart_nodes);
  cfg.elastic_sharding =
      doc.bool_or("elastic_sharding", cfg.elastic_sharding);
  cfg.max_recoveries = non_negative_int(doc, "max_recoveries",
                                        cfg.max_recoveries);
  if (doc.contains("failures")) {
    cfg.failures = failure_schedule_from_json(doc.at("failures"));
  }
  return cfg;
}

FailureInjector::FailureInjector(std::vector<FailureEvent> schedule)
    : schedule_(std::move(schedule)), fired_(schedule_.size(), 0),
      armed_(schedule_.size(), 0) {
  for (const auto& event : schedule_) event.validate();
}

void FailureInjector::apply(ClusterSim& cluster, const FailureEvent& event,
                            bool arm_only) {
  if (event.node >= cluster.node_count()) {
    // Possible after an elastic shrink; the hardware the event targeted no
    // longer exists.
    MLPO_LOG_WARN << "FailureInjector: skipping event for node " << event.node
                  << " (cluster now has " << cluster.node_count()
                  << " nodes)";
    return;
  }
  NodeSim& node = cluster.node(event.node);
  const std::size_t path =
      event.kind == FailureEvent::Kind::kNode ? NodeSim::npos : event.path;
  if (arm_only) {
    node.arm_fail_stop(path, event.at_vtime);
  } else if (path == NodeSim::npos) {
    node.fail_stop();
  } else {
    node.arm_fail_stop(path, 0.0);  // dead as of now
  }
}

void FailureInjector::observe_latches(ClusterSim& cluster, f64 now) {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const FailureEvent& event = schedule_[i];
    if (fired_[i] || event.at_vtime < 0 || !armed_[i]) continue;
    // A still-future deadline cannot have been honoured — a wrapper dead
    // at this point was killed by some *other* event, and this one must
    // survive onto the replacement hardware.
    if (event.at_vtime > now) continue;
    if (event.node >= cluster.node_count()) continue;
    NodeSim& node = cluster.node(event.node);
    if (event.kind == FailureEvent::Kind::kPath) {
      if (node.failstop_dead(event.path)) fired_[i] = 1;
      continue;
    }
    // Node events armed every path (or, on a shared substrate, the node's
    // tenant latch); with the deadline behind us, dead() latches from the
    // deadline alone, so a dead latch means the deadline was honoured
    // while this hardware existed.
    if (node.any_failstop_dead()) fired_[i] = 1;
  }
}

void FailureInjector::arm(ClusterSim& cluster, f64 now) {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (fired_[i] || schedule_[i].at_vtime < 0) continue;
    if (schedule_[i].at_vtime <= now) {
      // The deadline is behind us, yet observe_latches() never saw any
      // hardware honour it — it expired during initialization or inside a
      // rebuild window. An overdue failure injects late, it does not
      // silently evaporate. (Deadlines the old hardware latched were
      // retired by observe_latches(), so replacements never inherit an
      // already-delivered failure.)
      apply(cluster, schedule_[i], /*arm_only=*/false);
      fired_[i] = 1;
      continue;
    }
    // Left unfired on purpose: a future deadline is re-armed after every
    // rebuild, so it survives elastic restarts of *other* nodes.
    apply(cluster, schedule_[i], /*arm_only=*/true);
    armed_[i] = 1;
  }
}

u32 FailureInjector::fire_due(ClusterSim& cluster, u64 iteration) {
  u32 fired = 0;
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const FailureEvent& event = schedule_[i];
    if (fired_[i] || event.at_iteration < 0) continue;
    if (static_cast<u64>(event.at_iteration) > iteration) continue;
    apply(cluster, event, /*arm_only=*/false);
    fired_[i] = 1;
    ++fired;
  }
  return fired;
}

bool FailureInjector::exhausted() const {
  for (const u8 f : fired_) {
    if (!f) return false;
  }
  return true;
}

}  // namespace mlpo
