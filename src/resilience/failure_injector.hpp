// Deterministic failure injection for cluster runs.
//
// A FailureSchedule is a list of fail-stop events — whole nodes or single
// tier paths — each triggered either at an iteration boundary (the
// injector kills the target before the iteration runs) or at a virtual
// SimClock deadline (the injector arms the target's FailStopTier, which
// latches dead the first time the clock passes the deadline). Both forms
// are deterministic in virtual time; neither depends on host scheduling.
// Events fire exactly once, so a recovery rewinding the iteration counter
// does not replay the failure against the replacement hardware.
//
// Schedules are configurable from the scenario JSON (the same
// strict-validation style as the policy registry: unknown kinds abort at
// parse time with the known set).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/json.hpp"

namespace mlpo {

class ClusterSim;

struct FailureEvent {
  enum class Kind : u8 {
    kNode,  ///< fail-stop every wrapped path of the node
    kPath,  ///< fail-stop one tier path of the node
  };

  Kind kind = Kind::kNode;
  u32 node = 0;
  /// kPath only: VirtualTier path index on that node.
  std::size_t path = 0;

  /// Trigger: exactly one of the two must be set.
  i64 at_iteration = -1;  ///< fire before this iteration starts
  f64 at_vtime = -1;      ///< arm the FailStopTier for this virtual time

  void validate() const;  ///< throws std::invalid_argument on bad triggers
};

/// Parse a JSON array of failure events:
///   [{"kind": "node", "node": 1, "at_iteration": 3},
///    {"kind": "path", "node": 0, "path": 0, "at_vtime": 2.5}]
std::vector<FailureEvent> failure_schedule_from_json(const json::Value& doc);

/// Everything the resilience layer needs from the scenario JSON; consumed
/// by Trainer (which wires a RecoveryDriver when `enabled`).
struct ResilienceConfig {
  bool enabled = false;
  /// Iterations between checkpoint_prestage snapshots (>= 1).
  u32 checkpoint_interval = 1;
  /// Node count to rebuild the cluster with after a failure; 0 keeps the
  /// current count (the failed node is replaced in place). Any other value
  /// requires elastic_sharding.
  u32 restart_nodes = 0;
  /// Shard via world-size-independent global subgroups (required for
  /// restart_nodes != current count).
  bool elastic_sharding = false;
  /// Abort after this many recoveries (a flapping cluster is a bug).
  u32 max_recoveries = 8;
  std::vector<FailureEvent> failures;
};

/// Parse the "resilience" config section (all keys optional):
///   {"enabled": true, "checkpoint_interval": 2, "restart_nodes": 1,
///    "elastic_sharding": true, "max_recoveries": 4, "failures": [...]}
ResilienceConfig resilience_config_from_json(const json::Value& doc);

class FailureInjector {
 public:
  FailureInjector() = default;
  explicit FailureInjector(std::vector<FailureEvent> schedule);

  /// Record which armed virtual-time events latched on the current
  /// hardware: their deadline is behind `now` AND their FailStopTier
  /// reports dead(). Those events are done and will not be re-injected on
  /// replacements. The RecoveryDriver calls this right before tearing
  /// nodes down, so a deadline that elapses only *during* the rebuild —
  /// or a wrapper killed by a *different* event ahead of a still-future
  /// deadline — is not mistaken for an honoured failure.
  void observe_latches(ClusterSim& cluster, f64 now);

  /// Arm every pending virtual-time event on the cluster's FailStopTiers.
  /// Call after every cluster (re)build, passing the current virtual time.
  /// A still-future deadline survives the rebuild (a node living through
  /// someone else's elastic restart keeps its schedule). A deadline
  /// already behind `now` that observe_latches() has not retired — it
  /// expired during initialization or inside a rebuild window, so no
  /// hardware ever latched it — is overdue and injects immediately rather
  /// than silently evaporating.
  void arm(ClusterSim& cluster, f64 now);

  /// Fire every unfired iteration-driven event due at `iteration` (kill
  /// the target immediately). Returns how many fired. Events targeting a
  /// node index beyond the current cluster size (possible after an elastic
  /// shrink) are skipped with a warning.
  u32 fire_due(ClusterSim& cluster, u64 iteration);

  /// True once every event has fired.
  bool exhausted() const;

  const std::vector<FailureEvent>& schedule() const { return schedule_; }

 private:
  void apply(ClusterSim& cluster, const FailureEvent& event, bool arm_only);

  std::vector<FailureEvent> schedule_;
  std::vector<u8> fired_;
  std::vector<u8> armed_;  ///< vtime events that reached real hardware
};

}  // namespace mlpo
