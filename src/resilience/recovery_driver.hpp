// Elastic checkpoint-restart driver (paper §3.3's checkpoint pre-staging,
// promoted to a first-class recovery path).
//
// The driver owns the ClusterSim and runs the training loop with a failure
// story: it snapshots every engine into a checkpoint store every
// `checkpoint_interval` iterations via checkpoint_prestage, and when a
// fail-stopped node surfaces as a NodeFailure it
//   1. cancels the dead node's still-queued I/O through the scheduler's
//      cancellation tokens (nothing dispatches serially against a dead
//      device),
//   2. replaces the lost hardware — either a same-count replacement node
//      or, with restart_nodes set, a full elastic rebuild at a different
//      node count (subgroup ownership remaps through the elastic shard
//      layout's world-size-independent global ids),
//   3. restores every engine from the last snapshot (pre-staged subgroups
//      restore from the persistent tier path, the rest from the store),
//      and rewinds the iteration counter to the snapshot.
// Recovery time, lost (rolled-back) work, and cancelled-request counts are
// charged to the first iteration report after the recovery and summed in
// RecoveryStats, so checkpoint-interval-vs-recovery-cost tradeoffs are
// measurable — and bench-gated — like every other perf claim.
#pragma once

#include <memory>
#include <vector>

#include "resilience/failure_injector.hpp"
#include "runtime/cluster.hpp"
#include "tiers/storage_tier.hpp"

namespace mlpo {

struct RecoveryOptions {
  /// Iterations between checkpoint_prestage snapshots (>= 1). An initial
  /// snapshot is always taken right after initialization, so every failure
  /// has a restore point.
  u32 checkpoint_interval = 1;
  /// Node count to rebuild with after a failure; 0 = keep the current
  /// count (replace the failed node in place). Any other value requires
  /// ClusterConfig::node.elastic_sharding.
  u32 restart_nodes = 0;
  /// Abort (rethrow the NodeFailure) after this many recoveries.
  u32 max_recoveries = 8;

  void validate(const ClusterConfig& cluster) const;
};

struct RecoveryStats {
  u32 failures = 0;            ///< NodeFailure events observed
  u32 recoveries = 0;          ///< completed repairs
  /// Virtual time from the start of each doomed iteration through its
  /// completed restore: the partial work the failure destroyed plus the
  /// repair itself (neither appears in any iteration report).
  f64 recovery_seconds = 0;
  u32 lost_work_iterations = 0;  ///< completed iterations rolled back
  u64 cancelled_requests = 0;  ///< queued I/O dropped via cancellation tokens
  u32 restored_subgroups = 0;  ///< subgroups loaded from the checkpoint store
  u32 checkpoints_taken = 0;
  f64 checkpoint_seconds = 0;  ///< virtual time spent in snapshots
};

class RecoveryDriver {
 public:
  /// @param store checkpoint store (persistent tier); shared by every
  ///        engine in the cluster, keyed per rank (classic sharding) or
  ///        per global subgroup (elastic sharding).
  RecoveryDriver(const SimClock& clock, ClusterConfig cfg,
                 std::shared_ptr<StorageTier> store,
                 RecoveryOptions opts = {},
                 FailureInjector injector = FailureInjector{});

  /// Build + initialize the cluster, take the iteration-0 snapshot, and
  /// arm the virtual-time failure schedule. Must precede run().
  void initialize();

  /// Run `iterations`, surviving injected node losses, discarding the
  /// first `warmup` reports. Reports for iterations that were rolled back
  /// by a recovery are replaced by their re-run; the first report after a
  /// recovery carries the recovery_seconds / lost_work counters. Ends with
  /// a trailing snapshot that re-baselines the final state as iteration 0
  /// of any subsequent run() (each run numbers its iterations from 0).
  std::vector<IterationReport> run(u32 iterations, u32 warmup = 0);

  /// The current cluster. Valid from construction on, but an elastic
  /// restart (restart_nodes set) REPLACES the underlying object mid-run —
  /// re-fetch the reference after run() instead of holding it across one.
  ClusterSim& cluster() { return *cluster_; }
  const ClusterSim& cluster() const { return *cluster_; }
  StorageTier& store() { return *store_; }
  const RecoveryStats& stats() const { return stats_; }
  u64 last_checkpoint_iteration() const { return last_checkpoint_iteration_; }

 private:
  void checkpoint_all(u64 iteration);
  void restore_all();
  void recover(const NodeFailure& failure, u64 at_iteration,
               f64 failed_iteration_start);
  template <typename Fn>
  void for_each_engine(Fn&& fn);

  /// Recovery accounting carried onto the next completed iteration report
  /// (one struct, not parallel fields — counters that must move in
  /// lock-step drift apart when hand-synced, which is exactly the class of
  /// bug the accumulate_counters() unification fixes elsewhere).
  struct PendingRecovery {
    u32 recoveries = 0;
    f64 seconds = 0;
    u32 lost_iterations = 0;
    u64 cancelled = 0;

    void add(u32 n, f64 s, u32 lost, u64 cancelled_requests);
    /// Reclaim the recovery counters a rolled-back report was carrying.
    void reclaim(const IterationReport& dropped);
    /// Move everything onto `report` and reset to zero.
    void attach(IterationReport& report);
  };

  const SimClock* clock_;
  ClusterConfig cfg_;
  std::shared_ptr<StorageTier> store_;
  RecoveryOptions opts_;
  FailureInjector injector_;
  std::unique_ptr<ClusterSim> cluster_;
  bool initialized_ = false;
  u64 last_checkpoint_iteration_ = 0;
  RecoveryStats stats_;
  PendingRecovery pending_;
};

/// Order-independent digest of the whole cluster's optimizer state (the
/// sum of every engine's state_checksum). With elastic sharding the digest
/// is invariant under the node count, which is what the recovery
/// equivalence tests assert.
u64 cluster_state_checksum(ClusterSim& cluster);

}  // namespace mlpo
