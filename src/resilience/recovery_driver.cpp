#include "resilience/recovery_driver.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/logging.hpp"

namespace mlpo {

void RecoveryDriver::PendingRecovery::add(u32 n, f64 s, u32 lost,
                                          u64 cancelled_requests) {
  recoveries += n;
  seconds += s;
  lost_iterations += lost;
  cancelled += cancelled_requests;
}

void RecoveryDriver::PendingRecovery::reclaim(const IterationReport& dropped) {
  add(dropped.recoveries, dropped.recovery_seconds,
      dropped.lost_work_iterations, dropped.io_cancelled_on_failure);
}

void RecoveryDriver::PendingRecovery::attach(IterationReport& report) {
  report.recoveries = recoveries;
  report.recovery_seconds = seconds;
  report.lost_work_iterations = lost_iterations;
  report.io_cancelled_on_failure = cancelled;
  *this = PendingRecovery{};
}

void RecoveryOptions::validate(const ClusterConfig& cluster) const {
  if (checkpoint_interval == 0) {
    throw std::invalid_argument(
        "RecoveryOptions: checkpoint_interval must be >= 1");
  }
  if (restart_nodes != 0 && restart_nodes != cluster.nodes &&
      !cluster.node.elastic_sharding) {
    throw std::invalid_argument(
        "RecoveryOptions: restart_nodes=" + std::to_string(restart_nodes) +
        " differs from the cluster's " + std::to_string(cluster.nodes) +
        " nodes, which re-shards the model and therefore requires "
        "NodeConfig::elastic_sharding");
  }
}

RecoveryDriver::RecoveryDriver(const SimClock& clock, ClusterConfig cfg,
                               std::shared_ptr<StorageTier> store,
                               RecoveryOptions opts, FailureInjector injector)
    : clock_(&clock), cfg_(std::move(cfg)), store_(std::move(store)),
      opts_(opts), injector_(std::move(injector)) {
  if (store_ == nullptr) {
    throw std::invalid_argument("RecoveryDriver: checkpoint store required");
  }
  opts_.validate(cfg_);
  // Failure injection needs fail-stoppable hardware; the driver implies it
  // rather than making every caller remember the pairing.
  if (!injector_.schedule().empty()) cfg_.node.wrap_failstop = true;
  // Strict-validation rule: an event aimed at hardware that never exists
  // would be warn-skipped at fire time and the experiment would silently
  // measure nothing. (The lenient skip inside the injector is only for
  // nodes removed later by an elastic shrink.)
  for (const FailureEvent& event : injector_.schedule()) {
    if (event.node >= cfg_.nodes) {
      throw std::invalid_argument(
          "RecoveryDriver: failure event targets node " +
          std::to_string(event.node) + " but the cluster has " +
          std::to_string(cfg_.nodes) + " node(s)");
    }
  }
  // Built here, not in initialize(), so cluster() never dereferences null.
  // NOTE: an elastic restart *replaces* the object — see cluster() in the
  // header for the reference-lifetime contract.
  cluster_ = std::make_unique<ClusterSim>(*clock_, cfg_);
}

template <typename Fn>
void RecoveryDriver::for_each_engine(Fn&& fn) {
  for (u32 n = 0; n < cluster_->node_count(); ++n) {
    NodeSim& node = cluster_->node(n);
    for (u32 w = 0; w < node.worker_count(); ++w) {
      fn(node.worker(w).engine());
    }
  }
}

void RecoveryDriver::initialize() {
  if (initialized_) {
    throw std::logic_error("RecoveryDriver: double initialize");
  }
  cluster_->initialize();
  // Iteration-0 snapshot: every failure has a restore point, even before
  // the first scheduled checkpoint.
  checkpoint_all(0);
  injector_.arm(*cluster_, clock_->now());
  initialized_ = true;
}

void RecoveryDriver::checkpoint_all(u64 iteration) {
  const f64 start = clock_->now();
  try {
    for_each_engine([&](Engine& engine) {
      checkpoint_prestage(engine, *store_);
    });
  } catch (const FailStopError& e) {
    // A fail-stop latching mid-snapshot leaves the store with a mix of old
    // and new subgroup images; restoring from it would silently resurrect
    // an inconsistent iteration. Until snapshots are versioned, abort
    // loudly instead of recovering from a half-written checkpoint.
    throw std::runtime_error(
        std::string("RecoveryDriver: node fail-stopped during the "
                    "checkpoint at iteration ") +
        std::to_string(iteration) +
        "; the snapshot may be partial, refusing to use it for recovery (" +
        e.what() + ")");
  }
  stats_.checkpoint_seconds += clock_->now() - start;
  ++stats_.checkpoints_taken;
  last_checkpoint_iteration_ = iteration;
}

void RecoveryDriver::restore_all() {
  try {
    for_each_engine([&](Engine& engine) {
      stats_.restored_subgroups += checkpoint_restore(engine, *store_);
    });
  } catch (const FailStopError& e) {
    throw std::runtime_error(
        std::string("RecoveryDriver: node fail-stopped while restoring "
                    "from the checkpoint; replacement hardware is dying "
                    "faster than it can be repaired (") +
        e.what() + ")");
  }
}

void RecoveryDriver::recover(const NodeFailure& failure, u64 at_iteration,
                             f64 failed_iteration_start) {
  ++stats_.failures;
  if (stats_.recoveries >= opts_.max_recoveries) {
    MLPO_LOG_WARN << "RecoveryDriver: giving up after "
                  << stats_.recoveries << " recoveries";
    throw failure;
  }
  // The cost window opens when the doomed iteration started, not when the
  // failure surfaced: the virtual time the cluster burned on work the
  // failure destroyed is recovery cost too, and must not vanish from the
  // interval-vs-cost telemetry.
  const f64 start = failed_iteration_start;

  // Retire the virtual-time events the dying hardware actually honoured
  // before it is torn down; deadlines that only elapse during the rebuild
  // are re-injected on the replacement instead of silently vanishing.
  injector_.observe_latches(*cluster_, clock_->now());

  // 1. Abandon the dead nodes' queued I/O: each still-queued request's
  // cancellation token is flagged, so it drops at dispatch instead of
  // dispatching serially against a dead device.
  u64 cancelled = 0;
  for (const u32 idx : failure.nodes()) {
    if (idx < cluster_->node_count()) {
      cancelled += cluster_->node(idx).cancel_queued_io();
    }
  }

  // 2. Replace the lost hardware.
  if (opts_.restart_nodes != 0 &&
      opts_.restart_nodes != cluster_->node_count()) {
    // Elastic restart: rebuild the whole cluster at the new node count.
    // Subgroup ownership remaps through the elastic shard layout; the
    // checkpoint store is addressed by global subgroup id, so every new
    // rank finds the state it now owns.
    cfg_.nodes = opts_.restart_nodes;
    cluster_.reset();  // drain old schedulers before the rebuild
    cluster_ = std::make_unique<ClusterSim>(*clock_, cfg_);
    cluster_->initialize();
  } else {
    for (const u32 idx : failure.nodes()) {
      cluster_->replace_node(idx);
      cluster_->node(idx).initialize();
    }
  }
  injector_.arm(*cluster_, clock_->now());

  // 3. Rewind every engine (survivors included — they trained past the
  // snapshot) to the last checkpoint.
  restore_all();

  const f64 recovery_seconds = clock_->now() - start;
  const u32 lost =
      static_cast<u32>(at_iteration - last_checkpoint_iteration_);
  ++stats_.recoveries;
  stats_.recovery_seconds += recovery_seconds;
  stats_.lost_work_iterations += lost;
  stats_.cancelled_requests += cancelled;

  pending_.add(1, recovery_seconds, lost, cancelled);
}

std::vector<IterationReport> RecoveryDriver::run(u32 iterations, u32 warmup) {
  if (!initialized_) {
    throw std::logic_error("RecoveryDriver: run before initialize");
  }
  std::vector<IterationReport> completed;  // completed[i] = iteration i
  completed.reserve(iterations);
  u64 i = 0;
  while (i < iterations) {
    injector_.fire_due(*cluster_, i);
    IterationReport report;
    const f64 iteration_start = clock_->now();
    try {
      report = cluster_->run_iteration(i);
    } catch (const NodeFailure& failure) {
      recover(failure, i, iteration_start);
      // Roll back to the snapshot: drop reports being redone and rewind.
      // Dropped reports may already carry an earlier recovery's counters
      // (back-to-back failures inside one checkpoint window); reclaim them
      // into the pending pool so the report stream keeps summing to
      // RecoveryStats.
      const std::size_t keep =
          std::min<std::size_t>(completed.size(), last_checkpoint_iteration_);
      for (std::size_t k = keep; k < completed.size(); ++k) {
        pending_.reclaim(completed[k]);
      }
      completed.resize(keep);
      i = last_checkpoint_iteration_;
      continue;
    }
    pending_.attach(report);
    completed.push_back(std::move(report));
    ++i;
    if (i < iterations && i % opts_.checkpoint_interval == 0) {
      checkpoint_all(i);
    }
  }
  // Trailing snapshot: each run() numbers its iterations from 0, so the
  // final state is re-baselined as iteration 0 of any subsequent run — a
  // failure early in the next run must not rewind into this run's
  // checkpoint cursor (which would skip iterations outright). Taken here,
  // on known-healthy hardware, rather than at the next run's start, where
  // the failure may already have latched.
  checkpoint_all(0);
  if (warmup >= completed.size()) return {};
  // Recovery counters on warm-up reports roll forward onto the first kept
  // report, preserving the invariant that the returned stream sums to
  // RecoveryStats (warmup excludes timings from averages; it must not
  // erase discrete recovery events).
  for (std::size_t k = 0; k < warmup; ++k) {
    completed[warmup].recoveries += completed[k].recoveries;
    completed[warmup].recovery_seconds += completed[k].recovery_seconds;
    completed[warmup].lost_work_iterations +=
        completed[k].lost_work_iterations;
    completed[warmup].io_cancelled_on_failure +=
        completed[k].io_cancelled_on_failure;
  }
  return {completed.begin() + warmup, completed.end()};
}

u64 cluster_state_checksum(ClusterSim& cluster) {
  u64 sum = 0;
  for (u32 n = 0; n < cluster.node_count(); ++n) {
    NodeSim& node = cluster.node(n);
    for (u32 w = 0; w < node.worker_count(); ++w) {
      sum += node.worker(w).engine().state_checksum();
    }
  }
  return sum;
}

}  // namespace mlpo
