#include "telemetry/trace_csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace mlpo {

std::string traces_to_csv(const std::vector<SubgroupTrace>& traces) {
  std::string out =
      "position,subgroup_id,cache_hit,bytes_read,bytes_written,"
      "read_s,write_s,compute_s,read_gbps,write_gbps\n";
  char line[256];
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& t = traces[i];
    std::snprintf(line, sizeof(line),
                  "%zu,%u,%d,%llu,%llu,%.6f,%.6f,%.6f,%.4f,%.4f\n", i,
                  t.subgroup_id, t.host_cache_hit ? 1 : 0,
                  static_cast<unsigned long long>(t.sim_bytes_read),
                  static_cast<unsigned long long>(t.sim_bytes_written),
                  t.read_seconds, t.write_seconds, t.compute_seconds,
                  t.read_throughput() / 1e9, t.write_throughput() / 1e9);
    out += line;
  }
  return out;
}

void write_traces_csv(const std::string& path,
                      const std::vector<SubgroupTrace>& traces) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("write_traces_csv: cannot open " + path);
  }
  const std::string csv = traces_to_csv(traces);
  const std::size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  const int rc = std::fclose(f);
  if (written != csv.size() || rc != 0) {
    throw std::runtime_error("write_traces_csv: short write to " + path);
  }
}

}  // namespace mlpo
