// Export per-subgroup transfer traces as CSV — the raw data behind the
// Fig. 5-style series, for offline plotting.
#pragma once

#include <string>
#include <vector>

#include "telemetry/iteration_report.hpp"

namespace mlpo {

/// One row per trace, in the given order (processing order when taken from
/// IterationReport::traces). Columns: position, subgroup_id, cache_hit,
/// bytes_read, bytes_written, read_s, write_s, compute_s, read_gbps,
/// write_gbps.
std::string traces_to_csv(const std::vector<SubgroupTrace>& traces);

/// Write the CSV to `path`; throws std::runtime_error on I/O failure.
void write_traces_csv(const std::string& path,
                      const std::vector<SubgroupTrace>& traces);

}  // namespace mlpo
