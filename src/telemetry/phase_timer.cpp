#include "telemetry/phase_timer.hpp"

namespace mlpo {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kForward: return "forward";
    case Phase::kBackward: return "backward";
    case Phase::kUpdate: return "update";
    default: return "?";
  }
}

}  // namespace mlpo
