#include "telemetry/iteration_report.hpp"

#include <algorithm>
#include <stdexcept>

namespace mlpo {

f64 IterationReport::effective_io_throughput() const {
  f64 total_thru = 0;
  u32 counted = 0;
  for (const auto& t : traces) {
    const f64 io_time = t.read_seconds + t.write_seconds;
    if (io_time <= 0) continue;
    total_thru += static_cast<f64>(t.sim_bytes_read + t.sim_bytes_written) /
                  io_time;
    ++counted;
  }
  return counted > 0 ? total_thru / counted : 0;
}

void IterationReport::accumulate_counters(const IterationReport& r) {
  params_updated += r.params_updated;
  sim_bytes_fetched += r.sim_bytes_fetched;
  sim_bytes_flushed += r.sim_bytes_flushed;
  fetch_seconds += r.fetch_seconds;
  flush_seconds += r.flush_seconds;
  update_compute_seconds += r.update_compute_seconds;
  host_cache_hits += r.host_cache_hits;
  subgroups_processed += r.subgroups_processed;
  for (std::size_t c = 0; c < kIoPriorityCount; ++c) {
    io_classes[c].requests += r.io_classes[c].requests;
    io_classes[c].cancelled += r.io_classes[c].cancelled;
    io_classes[c].sim_bytes += r.io_classes[c].sim_bytes;
    io_classes[c].queue_wait_seconds += r.io_classes[c].queue_wait_seconds;
    io_classes[c].service_seconds += r.io_classes[c].service_seconds;
  }
  io_coalesced_batches += r.io_coalesced_batches;
  io_max_queue_depth = std::max(io_max_queue_depth, r.io_max_queue_depth);
  // High-water marks merge as max (like io_max_queue_depth); the other
  // graph counters are additive like their io_* siblings.
  graph_frontier_high_water =
      std::max(graph_frontier_high_water, r.graph_frontier_high_water);
  graph_tasks_stolen += r.graph_tasks_stolen;
  graph_executor_idle_seconds += r.graph_executor_idle_seconds;
  pool_acquires += r.pool_acquires;
  pool_heap_fallbacks += r.pool_heap_fallbacks;
  recoveries += r.recoveries;
  recovery_seconds += r.recovery_seconds;
  lost_work_iterations += r.lost_work_iterations;
  io_cancelled_on_failure += r.io_cancelled_on_failure;
  // Traces concatenate: per-subgroup distributions remain inspectable.
  traces.insert(traces.end(), r.traces.begin(), r.traces.end());
  // Tenant slices merge by id so fleet-level aggregation never blends two
  // jobs' SLO accounting (ids are unique per slice by construction here).
  for (const auto& slice : r.tenants) {
    TenantSlice* mine = nullptr;
    for (auto& s : tenants) {
      if (s.tenant == slice.tenant) {
        mine = &s;
        break;
      }
    }
    if (mine == nullptr) {
      tenants.push_back(slice);
      continue;
    }
    mine->iterations += slice.iterations;
    mine->iteration_seconds += slice.iteration_seconds;
    mine->max_iteration_seconds =
        std::max(mine->max_iteration_seconds, slice.max_iteration_seconds);
    mine->deadline_hits += slice.deadline_hits;
    mine->deadline_misses += slice.deadline_misses;
  }
}

const TenantSlice* IterationReport::tenant_slice(u32 tenant) const {
  for (const auto& s : tenants) {
    if (s.tenant == tenant) return &s;
  }
  return nullptr;
}

IterationReport average_reports(const std::vector<IterationReport>& reports) {
  if (reports.empty()) {
    throw std::invalid_argument("average_reports: no reports");
  }
  IterationReport avg;
  const f64 n = static_cast<f64>(reports.size());
  for (const auto& r : reports) {
    avg.forward_seconds += r.forward_seconds;
    avg.backward_seconds += r.backward_seconds;
    avg.update_seconds += r.update_seconds;
    avg.accumulate_counters(r);
  }
  avg.forward_seconds /= n;
  avg.backward_seconds /= n;
  avg.update_seconds /= n;
  avg.params_updated = static_cast<u64>(static_cast<f64>(avg.params_updated) / n);
  avg.sim_bytes_fetched =
      static_cast<u64>(static_cast<f64>(avg.sim_bytes_fetched) / n);
  avg.sim_bytes_flushed =
      static_cast<u64>(static_cast<f64>(avg.sim_bytes_flushed) / n);
  avg.fetch_seconds /= n;
  avg.flush_seconds /= n;
  avg.update_compute_seconds /= n;
  avg.host_cache_hits =
      static_cast<u32>(static_cast<f64>(avg.host_cache_hits) / n);
  avg.subgroups_processed =
      static_cast<u32>(static_cast<f64>(avg.subgroups_processed) / n);
  for (auto& c : avg.io_classes) {
    c.requests = static_cast<u64>(static_cast<f64>(c.requests) / n);
    c.cancelled = static_cast<u64>(static_cast<f64>(c.cancelled) / n);
    c.sim_bytes = static_cast<u64>(static_cast<f64>(c.sim_bytes) / n);
    c.queue_wait_seconds /= n;
    c.service_seconds /= n;
  }
  avg.io_coalesced_batches =
      static_cast<u64>(static_cast<f64>(avg.io_coalesced_batches) / n);
  // graph_frontier_high_water stays the max (a high-water mark has no
  // meaningful mean); the additive graph counters average per iteration.
  avg.graph_tasks_stolen =
      static_cast<u64>(static_cast<f64>(avg.graph_tasks_stolen) / n);
  avg.graph_executor_idle_seconds /= n;
  avg.pool_acquires =
      static_cast<u64>(static_cast<f64>(avg.pool_acquires) / n);
  // pool_heap_fallbacks stays a *total* like the recovery counters below:
  // the churn gate asserts zero, and a fractional mean could round a real
  // fallback down to nothing.
  // Recovery counters stay *totals* across the averaged window: recoveries
  // are rare discrete events, and "0.33 recoveries per iteration" would
  // round to zero and hide them.
  // Tenant slices stay totals too (accumulate_counters merged them by id):
  // SLO hit rates and p99s are computed from whole windows, and averaging
  // per-tenant iteration *counts* across reports would double-divide them.
  return avg;
}

}  // namespace mlpo
