#include "telemetry/iteration_report.hpp"

#include <algorithm>
#include <stdexcept>

namespace mlpo {

f64 IterationReport::effective_io_throughput() const {
  f64 total_thru = 0;
  u32 counted = 0;
  for (const auto& t : traces) {
    const f64 io_time = t.read_seconds + t.write_seconds;
    if (io_time <= 0) continue;
    total_thru += static_cast<f64>(t.sim_bytes_read + t.sim_bytes_written) /
                  io_time;
    ++counted;
  }
  return counted > 0 ? total_thru / counted : 0;
}

IterationReport average_reports(const std::vector<IterationReport>& reports) {
  if (reports.empty()) {
    throw std::invalid_argument("average_reports: no reports");
  }
  IterationReport avg;
  const f64 n = static_cast<f64>(reports.size());
  for (const auto& r : reports) {
    avg.forward_seconds += r.forward_seconds;
    avg.backward_seconds += r.backward_seconds;
    avg.update_seconds += r.update_seconds;
    avg.params_updated += r.params_updated;
    avg.sim_bytes_fetched += r.sim_bytes_fetched;
    avg.sim_bytes_flushed += r.sim_bytes_flushed;
    avg.fetch_seconds += r.fetch_seconds;
    avg.flush_seconds += r.flush_seconds;
    avg.update_compute_seconds += r.update_compute_seconds;
    avg.host_cache_hits += r.host_cache_hits;
    avg.subgroups_processed += r.subgroups_processed;
    for (std::size_t c = 0; c < kIoPriorityCount; ++c) {
      avg.io_classes[c].requests += r.io_classes[c].requests;
      avg.io_classes[c].cancelled += r.io_classes[c].cancelled;
      avg.io_classes[c].sim_bytes += r.io_classes[c].sim_bytes;
      avg.io_classes[c].queue_wait_seconds += r.io_classes[c].queue_wait_seconds;
      avg.io_classes[c].service_seconds += r.io_classes[c].service_seconds;
    }
    avg.io_coalesced_batches += r.io_coalesced_batches;
    avg.io_max_queue_depth = std::max(avg.io_max_queue_depth,
                                      r.io_max_queue_depth);
    // Traces concatenate: per-subgroup distributions remain inspectable.
    avg.traces.insert(avg.traces.end(), r.traces.begin(), r.traces.end());
  }
  avg.forward_seconds /= n;
  avg.backward_seconds /= n;
  avg.update_seconds /= n;
  avg.params_updated = static_cast<u64>(static_cast<f64>(avg.params_updated) / n);
  avg.sim_bytes_fetched =
      static_cast<u64>(static_cast<f64>(avg.sim_bytes_fetched) / n);
  avg.sim_bytes_flushed =
      static_cast<u64>(static_cast<f64>(avg.sim_bytes_flushed) / n);
  avg.fetch_seconds /= n;
  avg.flush_seconds /= n;
  avg.update_compute_seconds /= n;
  avg.host_cache_hits =
      static_cast<u32>(static_cast<f64>(avg.host_cache_hits) / n);
  avg.subgroups_processed =
      static_cast<u32>(static_cast<f64>(avg.subgroups_processed) / n);
  for (auto& c : avg.io_classes) {
    c.requests = static_cast<u64>(static_cast<f64>(c.requests) / n);
    c.cancelled = static_cast<u64>(static_cast<f64>(c.cancelled) / n);
    c.sim_bytes = static_cast<u64>(static_cast<f64>(c.sim_bytes) / n);
    c.queue_wait_seconds /= n;
    c.service_seconds /= n;
  }
  avg.io_coalesced_batches =
      static_cast<u64>(static_cast<f64>(avg.io_coalesced_batches) / n);
  return avg;
}

}  // namespace mlpo
