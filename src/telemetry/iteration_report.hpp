// Aggregated per-iteration metrics — the exact quantities the paper reports:
// phase breakdown (Figs. 7, 11, 13-15), update throughput in Mparams/s
// (Figs. 8, 12), effective I/O throughput 2*bytes/(t_r+t_w) (Fig. 9), and
// per-subgroup transfer traces (Fig. 5).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "io/io_request.hpp"
#include "util/common.hpp"

namespace mlpo {

/// Update-phase I/O scheduler counters for one priority class (delta of
/// the IoScheduler's cumulative stats over run_update). Times are virtual
/// seconds summed over the class's requests.
struct IoClassCounters {
  u64 requests = 0;   ///< dispatched during the phase (completed + failed)
  u64 cancelled = 0;  ///< dropped while queued
  u64 sim_bytes = 0;
  f64 queue_wait_seconds = 0;  ///< submit -> dispatch
  f64 service_seconds = 0;     ///< dispatch -> done (includes lock wait)

  f64 mean_queue_wait() const {
    return requests > 0 ? queue_wait_seconds / static_cast<f64>(requests) : 0;
  }
};

struct SubgroupTrace {
  u32 subgroup_id;
  u64 sim_bytes_read;
  u64 sim_bytes_written;
  f64 read_seconds;     ///< virtual time spent fetching
  f64 write_seconds;    ///< virtual time spent flushing
  f64 compute_seconds;  ///< CPU update time
  bool host_cache_hit;  ///< subgroup served from host memory, no fetch

  f64 read_throughput() const {
    return read_seconds > 0 ? static_cast<f64>(sim_bytes_read) / read_seconds : 0;
  }
  f64 write_throughput() const {
    return write_seconds > 0 ? static_cast<f64>(sim_bytes_written) / write_seconds
                             : 0;
  }
};

/// Per-tenant slice of a multi-job iteration window: which job the counters
/// belong to and how its own iteration cadence tracked its SLO. Slices are
/// carried through every merge (accumulate_counters matches by tenant id),
/// so cluster- and fleet-level reports keep per-job accountability instead
/// of blending the tenants together.
struct TenantSlice {
  u32 tenant = 0;
  u32 iterations = 0;           ///< iterations the slice covers
  f64 iteration_seconds = 0;    ///< summed iteration wall (virtual)
  f64 max_iteration_seconds = 0;  ///< slowest single iteration (merge: max)
  u32 deadline_hits = 0;    ///< iterations within the job's deadline
  u32 deadline_misses = 0;  ///< iterations past it (0/0 when no deadline)

  f64 mean_iteration_seconds() const {
    return iterations > 0 ? iteration_seconds / static_cast<f64>(iterations)
                          : 0;
  }
  f64 deadline_hit_rate() const {
    const u32 n = deadline_hits + deadline_misses;
    return n > 0 ? static_cast<f64>(deadline_hits) / static_cast<f64>(n) : 1.0;
  }
};

struct IterationReport {
  u64 iteration = 0;
  f64 forward_seconds = 0;
  f64 backward_seconds = 0;
  f64 update_seconds = 0;
  u64 params_updated = 0;          ///< simulated params through the optimizer
  u64 sim_bytes_fetched = 0;       ///< update-phase tier reads
  u64 sim_bytes_flushed = 0;       ///< update-phase tier writes
  f64 fetch_seconds = 0;           ///< accumulated per-subgroup fetch time
  f64 flush_seconds = 0;           ///< accumulated per-subgroup flush time
  f64 update_compute_seconds = 0;  ///< accumulated CPU update kernel time
  u32 host_cache_hits = 0;
  u32 subgroups_processed = 0;
  /// Per-priority scheduler activity during the update phase, indexed by
  /// IoPriority (demand-prefetch, grad-deposit, lazy-flush, checkpoint).
  std::array<IoClassCounters, kIoPriorityCount> io_classes{};
  u64 io_coalesced_batches = 0;  ///< small-transfer batches merged
  u64 io_max_queue_depth = 0;    ///< channel-queue high-water mark so far

  // Graph-execution counters (zero under the linear pipeline). Set by the
  // engines from GraphExecutor::Stats when execution == "graph".
  u64 graph_frontier_high_water = 0;  ///< widest ready frontier seen
  u64 graph_tasks_stolen = 0;         ///< cross-deque pool steals
  f64 graph_executor_idle_seconds = 0;  ///< real secs pool workers parked

  // Staging-pool counters (delta of BufferPool::Stats over the update
  // phase). pool_heap_fallbacks is the alloc-churn metric the smoke gate
  // pins at zero: a steady-state iteration must serve every transient
  // I/O-path buffer from the slab.
  u64 pool_acquires = 0;
  u64 pool_heap_fallbacks = 0;

  // Resilience counters (set by the RecoveryDriver on the first iteration
  // after a recovery; zero on failure-free iterations).
  u32 recoveries = 0;            ///< recoveries charged to this iteration
  f64 recovery_seconds = 0;      ///< virtual time spent recovering before it
  u32 lost_work_iterations = 0;  ///< completed iterations rolled back/redone
  u64 io_cancelled_on_failure = 0;  ///< queued requests dropped at node loss

  std::vector<SubgroupTrace> traces;

  /// Per-tenant slices (empty on single-job runs). Merged by tenant id:
  /// additive fields sum, max_iteration_seconds takes the max.
  std::vector<TenantSlice> tenants;

  /// The slice for `tenant`, or nullptr when the report carries none.
  const TenantSlice* tenant_slice(u32 tenant) const;

  /// Fold another report's additive counters (and traces) into this one.
  /// This is the single merge used by the node- and cluster-level report
  /// merges and by average_reports, so no aggregation level can silently
  /// drop a counter again (the bug that zeroed the per-priority I/O
  /// telemetry at cluster scope). Phase walls are *not* touched — each
  /// aggregation level combines those per its own semantics (max across
  /// parallel workers/nodes, mean across iterations).
  void accumulate_counters(const IterationReport& r);

  f64 iteration_seconds() const {
    return forward_seconds + backward_seconds + update_seconds;
  }

  /// Millions of parameters updated per second of update phase (Fig. 8/12).
  f64 update_throughput_mparams() const {
    return update_seconds > 0
        ? static_cast<f64>(params_updated) / 1e6 / update_seconds
        : 0;
  }

  /// Effective I/O throughput per the paper's definition (§4.3):
  /// 2 * subgroup_bytes / (read_time + write_time), averaged over subgroups.
  /// Cache hits transfer nothing and are excluded, matching how the paper's
  /// counter only sees issued I/O.
  f64 effective_io_throughput() const;

  /// Fraction of the update phase spent waiting on tier I/O (Fig. 3).
  f64 update_io_fraction() const {
    const f64 io = fetch_seconds + flush_seconds;
    const f64 denom = io + update_compute_seconds;
    return denom > 0 ? io / denom : 0;
  }
};

/// Average a set of reports field-wise (warmup exclusion is the caller's
/// job, as in the paper's "first 2 of 10 iterations are warmups").
IterationReport average_reports(const std::vector<IterationReport>& reports);

}  // namespace mlpo
