#include "telemetry/table_printer.hpp"

#include <algorithm>
#include <cstdio>

namespace mlpo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(f64 value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::pct(f64 fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  out.append(rule - 2, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TablePrinter::to_csv() const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += '"';
    return q;
  };
  std::string out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += quote(cells[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace mlpo
