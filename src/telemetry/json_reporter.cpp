#include "telemetry/json_reporter.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace mlpo::telemetry {

std::string to_string(Better better) {
  switch (better) {
    case Better::kLower: return "lower";
    case Better::kHigher: return "higher";
    case Better::kNeither: return "neither";
  }
  return "neither";
}

Better better_from_string(const std::string& text) {
  if (text == "lower") return Better::kLower;
  if (text == "higher") return Better::kHigher;
  if (text == "neither") return Better::kNeither;
  throw std::runtime_error("json_reporter: unknown gate direction \"" + text +
                           "\" (expected lower/higher/neither)");
}

f64 MetricSeries::median() const {
  if (values.empty()) return 0;
  std::vector<f64> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
}

f64 MetricSeries::min() const {
  return values.empty() ? 0 : *std::min_element(values.begin(), values.end());
}

f64 MetricSeries::max() const {
  return values.empty() ? 0 : *std::max_element(values.begin(), values.end());
}

std::string MetricSeries::key() const {
  // json::Object is a std::map, so dump() is canonical for the params set.
  return bench + "/" + name + json::Value(params).dump();
}

void JsonReporter::set_context(f64 time_scale, u32 repeats) {
  time_scale_ = time_scale;
  repeats_ = repeats;
}

void JsonReporter::add(const std::string& bench,
                       const std::vector<std::string>& labels,
                       const std::vector<Metric>& metrics) {
  const auto known = std::find_if(benches_.begin(), benches_.end(),
                                  [&](const BenchEntry& e) { return e.name == bench; });
  if (known == benches_.end()) benches_.push_back({bench, labels});

  for (const Metric& m : metrics) {
    MetricSeries probe;
    probe.bench = bench;
    probe.name = m.name;
    probe.params = m.params;
    auto [it, inserted] = series_index_.try_emplace(probe.key(), series_.size());
    if (inserted) {
      probe.unit = m.unit;
      probe.better = m.better;
      probe.threshold_pct = m.threshold_pct;
      series_.push_back(std::move(probe));
    }
    series_[it->second].values.push_back(m.value);
  }
}

json::Value JsonReporter::to_json() const {
  json::Array benchmarks;
  for (const BenchEntry& bench : benches_) {
    json::Array labels;
    for (const std::string& l : bench.labels) labels.emplace_back(l);

    json::Array metrics;
    for (const MetricSeries& s : series_) {
      if (s.bench != bench.name) continue;
      json::Array values;
      for (const f64 v : s.values) values.emplace_back(v);
      json::Object row{
          {"name", s.name},
          {"unit", s.unit},
          {"better", to_string(s.better)},
          {"params", s.params},
          {"repeats", static_cast<u64>(s.values.size())},
          {"median", s.median()},
          {"min", s.min()},
          {"max", s.max()},
          {"values", std::move(values)},
      };
      // Serialized only when set: documents without overrides stay
      // byte-identical to the pre-override schema.
      if (s.threshold_pct > 0) row["threshold_pct"] = s.threshold_pct;
      metrics.push_back(std::move(row));
    }
    benchmarks.push_back(json::Object{
        {"name", bench.name},
        {"labels", std::move(labels)},
        {"metrics", std::move(metrics)},
    });
  }
  return json::Object{
      {"schema", "mlpo-bench-v1"},
      {"time_scale", time_scale_},
      {"repeats", static_cast<u64>(repeats_)},
      {"benchmarks", std::move(benchmarks)},
  };
}

std::string JsonReporter::dump() const { return to_json().dump(2); }

void JsonReporter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("json_reporter: cannot open \"" + path +
                             "\" for writing");
  }
  out << dump() << "\n";
  if (!out) {
    throw std::runtime_error("json_reporter: failed writing \"" + path + "\"");
  }
}

std::vector<MetricSeries> JsonReporter::from_json(const json::Value& doc) {
  const std::string schema = doc.string_or("schema", "");
  if (schema != "mlpo-bench-v1") {
    throw std::runtime_error(
        "json_reporter: unsupported schema \"" + schema +
        "\" (expected mlpo-bench-v1)");
  }
  std::vector<MetricSeries> out;
  for (const json::Value& bench : doc.at("benchmarks").as_array()) {
    const std::string bench_name = bench.at("name").as_string();
    for (const json::Value& metric : bench.at("metrics").as_array()) {
      MetricSeries s;
      s.bench = bench_name;
      s.name = metric.at("name").as_string();
      s.unit = metric.string_or("unit", "");
      s.better = better_from_string(metric.string_or("better", "neither"));
      s.threshold_pct = metric.number_or("threshold_pct", 0);
      if (metric.contains("params")) s.params = metric.at("params").as_object();
      for (const json::Value& v : metric.at("values").as_array()) {
        s.values.push_back(v.as_number());
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<MetricSeries> JsonReporter::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("json_reporter: cannot open \"" + path + "\"");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(json::parse(text.str()));
}

namespace {

BaselineDelta::Kind classify(Better better, f64 baseline, f64 current,
                             f64 threshold_pct) {
  if (better == Better::kNeither) return BaselineDelta::Kind::kPass;
  if (baseline == current) return BaselineDelta::Kind::kPass;
  if (baseline == 0) {
    // No margin to scale a percentage by: any movement in the bad direction
    // gates, movement in the good direction is an improvement.
    const bool worse = better == Better::kLower ? current > 0 : current < 0;
    return worse ? BaselineDelta::Kind::kRegression
                 : BaselineDelta::Kind::kImprovement;
  }
  const f64 delta_pct = (current - baseline) / std::abs(baseline) * 100.0;
  const f64 bad_pct = better == Better::kLower ? delta_pct : -delta_pct;
  if (bad_pct > threshold_pct) return BaselineDelta::Kind::kRegression;
  if (bad_pct < -threshold_pct) return BaselineDelta::Kind::kImprovement;
  return BaselineDelta::Kind::kPass;
}

}  // namespace

BaselineReport compare_to_baseline(const std::vector<MetricSeries>& current,
                                   const std::vector<MetricSeries>& baseline,
                                   f64 threshold_pct) {
  BaselineReport report;
  std::vector<bool> matched(baseline.size(), false);
  std::unordered_map<std::string, std::size_t> baseline_index;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    baseline_index.emplace(baseline[i].key(), i);
  }

  for (const MetricSeries& cur : current) {
    const std::string key = cur.key();
    const auto found = baseline_index.find(key);

    BaselineDelta delta;
    delta.key = key;
    delta.unit = cur.unit;
    delta.better = cur.better;
    delta.current_median = cur.median();
    if (found == baseline_index.end()) {
      delta.kind = BaselineDelta::Kind::kNew;
      ++report.added;
    } else {
      const MetricSeries& base = baseline[found->second];
      matched[found->second] = true;
      delta.baseline_median = base.median();
      delta.delta_pct =
          delta.baseline_median != 0
              ? (delta.current_median - delta.baseline_median) /
                    std::abs(delta.baseline_median) * 100.0
              : (delta.current_median == 0 ? 0.0 : 100.0);
      if (cur.better != base.better) {
        // A gate that silently flips (worst case: to kNeither) would stop
        // protecting the metric; force the baseline to be refreshed instead.
        delta.kind = BaselineDelta::Kind::kDirectionChanged;
        ++report.direction_changes;
      } else {
        // Per-metric override: the current run's (it tracks the source
        // that emitted the metric), else the baseline's, else run-wide.
        const f64 effective = cur.threshold_pct > 0 ? cur.threshold_pct
                              : base.threshold_pct > 0 ? base.threshold_pct
                                                       : threshold_pct;
        delta.kind = classify(cur.better, delta.baseline_median,
                              delta.current_median, effective);
        switch (delta.kind) {
          case BaselineDelta::Kind::kRegression: ++report.regressions; break;
          case BaselineDelta::Kind::kImprovement: ++report.improvements; break;
          default: ++report.passes; break;
        }
      }
    }
    report.deltas.push_back(std::move(delta));
  }

  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (matched[i]) continue;
    BaselineDelta delta;
    delta.kind = BaselineDelta::Kind::kMissing;
    delta.key = baseline[i].key();
    delta.unit = baseline[i].unit;
    delta.better = baseline[i].better;
    delta.baseline_median = baseline[i].median();
    report.deltas.push_back(std::move(delta));
    ++report.missing;
  }
  return report;
}

}  // namespace mlpo::telemetry
