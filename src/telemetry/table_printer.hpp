// Fixed-width console table and CSV emission for bench harnesses, so every
// figure/table binary prints the same row/series format the paper reports.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row (converts numbers with sensible precision).
  void add_row(std::vector<std::string> cells);

  /// Helpers for mixed-type rows.
  static std::string num(f64 value, int precision = 1);
  static std::string pct(f64 fraction, int precision = 1);

  /// Render with column auto-sizing and a header rule.
  std::string to_string() const;
  /// Comma-separated (quoted where needed) for post-processing.
  std::string to_csv() const;

  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlpo
