// Per-phase virtual-time accounting for training iterations.
//
// Phases mirror the paper's breakdowns: forward, backward, update — plus
// finer-grained I/O accounting (fetch/flush/compute inside the update) used
// by Figs. 3, 5 and 9.
#pragma once

#include <array>
#include <string>

#include "util/common.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

enum class Phase : int {
  kForward = 0,
  kBackward = 1,
  kUpdate = 2,
  kCount = 3,
};

const char* phase_name(Phase p);

/// Accumulates virtual seconds per phase across one or more iterations.
class PhaseTimer {
 public:
  explicit PhaseTimer(const SimClock& clock) : clock_(&clock) {}

  /// RAII scope that charges its lifetime to `phase`.
  class Scope {
   public:
    Scope(PhaseTimer& timer, Phase phase)
        : timer_(&timer), phase_(phase), start_(timer.clock_->now()) {}
    ~Scope() { timer_->add(phase_, timer_->clock_->now() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer* timer_;
    Phase phase_;
    f64 start_;
  };

  void add(Phase phase, f64 seconds) {
    totals_[static_cast<std::size_t>(phase)] += seconds;
  }

  f64 total(Phase phase) const {
    return totals_[static_cast<std::size_t>(phase)];
  }

  f64 iteration_total() const {
    f64 sum = 0;
    for (const f64 t : totals_) sum += t;
    return sum;
  }

  void reset() { totals_.fill(0.0); }

 private:
  const SimClock* clock_;
  std::array<f64, static_cast<std::size_t>(Phase::kCount)> totals_{};
};

}  // namespace mlpo
