// Machine-readable benchmark telemetry.
//
// Every bench case reports its results as Metric rows (name, unit, scenario
// params, gate direction); the JsonReporter aggregates the rows across
// repeats into MetricSeries (median/min/max) and serializes the whole run as
// a `mlpo-bench-v1` JSON document. The same document format doubles as the
// checked-in baseline: compare_to_baseline() matches series by
// (bench, metric, params) and flags median regressions past a percentage
// threshold, which is what the CI perf-smoke gate exits non-zero on.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"
#include "util/json.hpp"

namespace mlpo::telemetry {

/// Gate direction: which way a change in the metric counts as a regression.
/// kNeither marks informational metrics that are recorded but never gated.
enum class Better { kNeither, kLower, kHigher };

std::string to_string(Better better);
Better better_from_string(const std::string& text);

/// One measured value from one repeat of a bench case.
struct Metric {
  std::string name;     ///< e.g. "demand_p99_wait"
  std::string unit;     ///< e.g. "s", "GB/s", "Mparam/s", "x"
  json::Object params;  ///< scenario coordinates, e.g. {"model":"40B"}
  f64 value = 0;
  Better better = Better::kNeither;
  /// Per-metric gate threshold override (percent). 0 uses the run-wide
  /// threshold passed to compare_to_baseline. Lets a noisy-but-gated
  /// metric (e.g. calibration divergence) carry a wide band of its own
  /// without loosening the gate on everything else.
  f64 threshold_pct = 0;
};

/// A metric aggregated across the repeats of one run (or parsed back from a
/// document; baselines are just previous runs).
struct MetricSeries {
  std::string bench;  ///< owning case, e.g. "fig_io_scheduler"
  std::string name;
  std::string unit;
  json::Object params;
  Better better = Better::kNeither;
  f64 threshold_pct = 0;  ///< per-metric gate override; 0 = run-wide value
  std::vector<f64> values;  ///< one entry per repeat

  f64 median() const;
  f64 min() const;
  f64 max() const;
  /// Identity for baseline matching: bench, name and canonical params.
  std::string key() const;
};

/// Collects Metric rows per bench case and emits/parses the JSON document.
class JsonReporter {
 public:
  /// Run-wide context recorded in the document header.
  void set_context(f64 time_scale, u32 repeats);

  /// Record one repeat's metrics for `bench`. Values append to the series
  /// matched by (bench, metric name, params); labels are recorded once.
  void add(const std::string& bench, const std::vector<std::string>& labels,
           const std::vector<Metric>& metrics);

  const std::vector<MetricSeries>& series() const { return series_; }

  json::Value to_json() const;
  std::string dump() const;
  /// Write the pretty-printed document; throws std::runtime_error on I/O
  /// failure.
  void write(const std::string& path) const;

  /// Parse a document produced by to_json(). Throws json::ParseError /
  /// std::runtime_error on malformed input.
  static std::vector<MetricSeries> from_json(const json::Value& doc);
  static std::vector<MetricSeries> load(const std::string& path);

 private:
  struct BenchEntry {
    std::string name;
    std::vector<std::string> labels;
  };

  f64 time_scale_ = 0;
  u32 repeats_ = 0;
  std::vector<BenchEntry> benches_;   ///< registration order
  std::vector<MetricSeries> series_;  ///< emission order
  /// MetricSeries::key() -> index into series_, so appending a repeat is
  /// O(1) instead of re-serializing every series' params per lookup.
  std::unordered_map<std::string, std::size_t> series_index_;
};

/// Outcome for one metric of a baseline comparison.
struct BaselineDelta {
  enum class Kind {
    kPass,          ///< within threshold (or not gated)
    kImprovement,   ///< moved past threshold in the good direction
    kRegression,    ///< moved past threshold in the bad direction
    kMissing,       ///< in the baseline but absent from the current run
    kNew,           ///< in the current run but absent from the baseline
    kDirectionChanged,  ///< gate direction differs from the baseline's
  };
  Kind kind = Kind::kPass;
  std::string key;
  std::string unit;
  Better better = Better::kNeither;
  f64 baseline_median = 0;
  f64 current_median = 0;
  f64 delta_pct = 0;  ///< (current - baseline) / |baseline| * 100
};

struct BaselineReport {
  std::vector<BaselineDelta> deltas;
  u32 passes = 0;
  u32 improvements = 0;
  u32 regressions = 0;
  u32 missing = 0;  ///< baseline coverage silently dropped -> failure
  u32 added = 0;    ///< new metrics -> informational only
  /// A metric's gate direction no longer matches the baseline's. Fails the
  /// gate: silently dropping a metric to kNeither would disarm it, so the
  /// change must come with a baseline refresh.
  u32 direction_changes = 0;

  /// The gate verdict: no regressions, no vanished coverage, no disarmed
  /// gates.
  bool ok() const {
    return regressions == 0 && missing == 0 && direction_changes == 0;
  }
};

/// Compare current series against a baseline run. A gated metric regresses
/// when its median moves more than `threshold_pct` percent in its bad
/// direction; kNeither metrics always pass. Matching is by MetricSeries::key.
/// A series-level threshold_pct (> 0) overrides the run-wide value for that
/// metric — the current run's override wins, falling back to the
/// baseline's, then to `threshold_pct`.
BaselineReport compare_to_baseline(const std::vector<MetricSeries>& current,
                                   const std::vector<MetricSeries>& baseline,
                                   f64 threshold_pct);

}  // namespace mlpo::telemetry
