// Checkpoint pre-staging (paper §3.3, last paragraph).
//
// A side benefit of multi-path offloading: subgroups that the performance
// model placed on *persistent* paths (PFS, object store) are already
// durable — a checkpoint only needs to persist the remainder (host-cached
// subgroups and those on non-persistent node-local NVMe). This integrates
// with DataStates-style asynchronous checkpointing engines; here we provide
// the flush itself plus an accounting report of how many bytes pre-staging
// saved.
#pragma once

#include "core/engine.hpp"
#include "tiers/storage_tier.hpp"

namespace mlpo {

struct CheckpointReport {
  u64 total_sim_bytes = 0;      ///< full optimizer-state footprint
  u64 prestaged_sim_bytes = 0;  ///< already durable on persistent paths
  u64 flushed_sim_bytes = 0;    ///< written by this checkpoint
  f64 seconds = 0;              ///< virtual time spent flushing

  f64 prestaged_fraction() const {
    return total_sim_bytes
        ? static_cast<f64>(prestaged_sim_bytes) / static_cast<f64>(total_sim_bytes)
        : 0;
  }
};

/// Persist `engine`'s optimizer state into `store` (a persistent tier).
/// Works against the unified Engine interface — any engine implementation
/// checkpoints the same way. Subgroups already resident on a persistent
/// VirtualTier path are counted as pre-staged and skipped; everything else
/// (host-cached subgroups, NVMe-resident subgroups) is serialized and
/// written under "ckpt/<rank>/<id>" keys. Engines with an IoScheduler ride
/// its queues at kCheckpoint priority; I/O-less engines (cpu_only) write
/// the store directly.
CheckpointReport checkpoint_prestage(Engine& engine, StorageTier& store);

/// Restore the engine's optimizer state from a checkpoint taken with
/// checkpoint_prestage. Subgroups present in `store` are loaded from it —
/// each read charged its full simulated footprint, symmetric with what the
/// flush paid; subgroups that were pre-staged (skipped by the checkpoint)
/// are loaded from their persistent VirtualTier path. Elastic layouts
/// address the store by global subgroup id, so the restoring engine may
/// run under a different world size than the one that checkpointed
/// (elastic restart). Throws if a subgroup can be recovered from neither
/// source. Returns the number of subgroups loaded from `store` (the rest
/// were recovered in place).
u32 checkpoint_restore(Engine& engine, StorageTier& store);

}  // namespace mlpo
