// Host-memory-resident update engine — the paper's 20B reference point
// (Fig. 3, "20B CPU"): the full FP32 optimizer state fits in host RAM, so
// the update phase is pure CPU compute with zero third-level I/O.
//
// Shares the subgroup/Adam/gradient machinery with OffloadEngine so the two
// are numerically comparable; only the data movement differs.
#pragma once

#include <memory>
#include <vector>

#include "telemetry/iteration_report.hpp"
#include "train/adam.hpp"
#include "train/grad_accum.hpp"
#include "train/grad_source.hpp"
#include "train/mixed_precision.hpp"
#include "train/sharding.hpp"
#include "train/subgroup.hpp"
#include "util/rate_limiter.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

class CpuOnlyEngine {
 public:
  struct Options {
    f64 cpu_update_rate = 2000e6;  ///< simulated params per vsecond
    ConvertCost convert;
    AdamConfig adam;
    u64 elem_scale = 1;
  };

  CpuOnlyEngine(const SimClock& clock, const GradSource& grads,
                const ShardLayout& layout, const Options& opts,
                ThreadPool* cpu_pool = nullptr, RateLimiter* d2h = nullptr);

  void initialize();

  /// Deposit FP16 gradients for one micro-step (D2H charge + accumulate).
  void deposit_gradients(u64 sample_index, bool first_micro_step);

  /// Pure-compute update phase over all subgroups.
  IterationReport run_update(u64 iteration);

  u32 num_subgroups() const { return static_cast<u32>(subgroups_.size()); }
  const Subgroup& subgroup(u32 id) const { return *subgroups_.at(id); }
  u64 state_checksum() const;

 private:
  const SimClock* clock_;
  const GradSource* grads_;
  ShardLayout layout_;
  Options opts_;
  ThreadPool* cpu_pool_;
  RateLimiter* d2h_;
  std::vector<std::unique_ptr<Subgroup>> subgroups_;
  std::unique_ptr<GradAccumulator> accum_;
  bool initialized_ = false;
};

}  // namespace mlpo
