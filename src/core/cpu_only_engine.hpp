// Host-memory-resident update engine — the paper's 20B reference point
// (Fig. 3, "20B CPU"): the full FP32 optimizer state fits in host RAM, so
// the update phase is pure CPU compute with zero third-level I/O.
//
// Shares the subgroup/Adam/gradient machinery with OffloadEngine so the two
// are numerically comparable; only the data movement differs. Selected
// through the unified interface as engine kind "cpu_only".
#pragma once

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "train/grad_accum.hpp"
#include "util/rate_limiter.hpp"

namespace mlpo {

class CpuOnlyEngine final : public Engine {
 public:
  struct Options {
    f64 cpu_update_rate = 2000e6;  ///< simulated params per vsecond
    ConvertCost convert;
    AdamConfig adam;
    u64 elem_scale = 1;

    /// Strict construction-time validation, same contract as
    /// EngineOptions::validate(). Throws std::invalid_argument naming the
    /// bad field.
    void validate() const;
  };

  /// @param d2h optional direct PCIe limiter for the gradient stream
  /// @param io optional scheduler; when set (the make_engine path wires
  ///        the worker's), gradient deposits charge its D2H link channel
  ///        and checkpoints ride its queues — same accounting as the
  ///        offloading engines. At most one of d2h/io should be given.
  /// @param tenant id stamped on the engine's scheduler traffic (shared
  ///        multi-job schedulers; 0 for an owned single-job scheduler)
  CpuOnlyEngine(const SimClock& clock, const GradSource& grads,
                const ShardLayout& layout, const Options& opts,
                ThreadPool* cpu_pool = nullptr, RateLimiter* d2h = nullptr,
                IoScheduler* io = nullptr, u32 tenant = 0);

  void initialize() override;

  /// Deposit FP16 gradients for one micro-step across ALL subgroups
  /// (D2H charge + accumulate) — the historical convenience entry point.
  void deposit_gradients(u64 sample_index, bool first_micro_step);

  /// Unified per-subgroup deposit. Synchronous (host memory is the
  /// destination); `final_micro_step` has no extra work here.
  void deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                               bool first_micro_step,
                               bool final_micro_step) override;
  void wait_gradient_io() override {}

  /// Pure-compute update phase over all subgroups.
  IterationReport run_update(u64 iteration) override;

  const ShardLayout& layout() const override { return layout_; }
  u32 num_subgroups() const override {
    return static_cast<u32>(subgroups_.size());
  }
  const Subgroup& subgroup(u32 id) const { return *subgroups_.at(id); }
  Subgroup snapshot_subgroup(u32 id) const override {
    return *subgroups_.at(id);
  }
  u64 state_checksum() const override;

  /// Everything is host-resident, nothing ever sits on a tier.
  Distribution distribution() const override;
  std::vector<u32> host_resident() const override;
  bool on_persistent_path(u32 /*id*/) const override { return false; }
  void restore_state(u32 id, std::span<const u8> serialized) override;

  const SimClock& clock() const override { return *clock_; }
  int rank() const override { return layout_.rank; }
  IoScheduler* io() const override { return io_; }
  u32 tenant() const override { return tenant_; }

 private:
  const SimClock* clock_;
  const GradSource* grads_;
  ShardLayout layout_;
  Options opts_;
  ThreadPool* cpu_pool_;
  RateLimiter* d2h_;
  IoScheduler* io_;
  u32 tenant_ = 0;
  std::vector<std::unique_ptr<Subgroup>> subgroups_;
  std::unique_ptr<GradAccumulator> accum_;
  /// Reserved-once scratch: deposits and updates are serial per engine, so
  /// member buffers (not a pool) suffice to keep the steady-state path free
  /// of heap churn.
  std::vector<u16> grad_scratch_;
  std::vector<f32> fp32_scratch_;
  bool initialized_ = false;
};

}  // namespace mlpo
