#include "core/offload_engine.hpp"

#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "policy/policy_registry.hpp"
#include "util/logging.hpp"

namespace mlpo {

struct OffloadEngine::UpdateSlot {
  u32 id = 0;
  bool cache_hit = false;
  std::future<void> fetch_done;
  f64 fetch_seconds = 0;
  u64 fetch_sim_bytes = 0;
  std::vector<f32> grads_fp32;
};

namespace {

// Per-priority scheduler telemetry: delta of the cumulative counters over
// one update phase (shared by the linear and graph epilogues).
void fold_io_stats(IterationReport& report, const IoScheduler::Stats& start,
                   const IoScheduler::Stats& end) {
  for (std::size_t c = 0; c < kIoPriorityCount; ++c) {
    const auto& s0 = start.priority[c];
    const auto& s1 = end.priority[c];
    auto& out = report.io_classes[c];
    out.requests = (s1.completed + s1.failed) - (s0.completed + s0.failed);
    out.cancelled = s1.cancelled - s0.cancelled;
    out.sim_bytes = s1.sim_bytes - s0.sim_bytes;
    out.queue_wait_seconds = s1.queue_wait_seconds - s0.queue_wait_seconds;
    out.service_seconds = s1.service_seconds - s0.service_seconds;
  }
  report.io_coalesced_batches =
      end.coalesced_batches - start.coalesced_batches;
  report.io_max_queue_depth = end.max_queue_depth;
}

}  // namespace

OffloadEngine::OffloadEngine(const EngineContext& ctx,
                             const EngineOptions& opts,
                             const ShardLayout& layout)
    : ctx_(ctx), opts_(opts), layout_(layout),
      placement_(make_placement_policy(opts.placement_policy)),
      order_policy_(make_update_order_policy(opts.update_order_policy)),
      use_host_cache_(order_policy_->uses_host_cache()),
      cache_(use_host_cache_ ? opts.host_cache_subgroups : 0) {
  opts_.validate_resolved(*order_policy_);
  if (ctx_.clock == nullptr || ctx_.vtier == nullptr || ctx_.io == nullptr ||
      ctx_.grads == nullptr) {
    throw std::invalid_argument(
        "OffloadEngine: clock, vtier, io, and grads are required");
  }
  if (ctx_.vtier->path_count() == 0) {
    throw std::invalid_argument("OffloadEngine: virtual tier has no paths");
  }
  // The scheduler's channels own the locking discipline; the engine flag
  // only documents intent. Surface a divergence loudly so an ablation
  // doesn't silently measure the wrong discipline.
  if (ctx_.io->config().tier_exclusive_locking !=
      opts_.tier_exclusive_locking) {
    MLPO_LOG_WARN << "OffloadEngine: EngineOptions::tier_exclusive_locking="
                  << opts_.tier_exclusive_locking
                  << " but the IoScheduler was built with "
                  << ctx_.io->config().tier_exclusive_locking
                  << "; the scheduler's setting governs tier locking";
  }

  subgroups_.reserve(layout_.subgroup_sizes.size());
  std::vector<u64> accum_elems;
  accum_elems.reserve(layout_.subgroup_sizes.size());
  for (std::size_t i = 0; i < layout_.subgroup_sizes.size(); ++i) {
    // Subgroup identity is the layout's global id (== the local index for
    // classic layouts): checkpoints and checksums stay comparable across
    // elastic re-shards. Engine-internal indexing stays local throughout.
    subgroups_.push_back(std::make_unique<Subgroup>(
        layout_.global_id(static_cast<u32>(i)), layout_.subgroup_sizes[i],
        opts_.elem_scale));
    accum_elems.push_back(subgroups_.back()->real_elems());
  }
  host_valid_.assign(subgroups_.size(), 0);
  accum_ = std::make_unique<GradAccumulator>(accum_elems);

  // Staging slab sized for 16 worst-case subgroup images: comfortably more
  // than the prefetch window + in-flight flush budget of the linear
  // pipeline and the frontier bursts of graph mode, so steady-state
  // acquire() never blocks and — the gated invariant — never falls back to
  // the heap.
  std::size_t max_bytes = 4096;
  u64 max_elems = 1;
  for (const auto& sg : subgroups_) {
    max_bytes = std::max(max_bytes, sg->serialized_bytes());
    max_elems = std::max(max_elems, sg->real_elems());
  }
  max_serialized_bytes_ = max_bytes;
  BufferPool::Options pool_opts;
  pool_opts.slab_bytes = 16 * max_bytes;
  scratch_ = std::make_unique<BufferPool>(pool_opts);
  slots_.resize(subgroups_.size());
  for (auto& s : slots_) s.grads_fp32.reserve(max_elems);

  // The placement policy spans all paths under multipath, or just the
  // primary (NVMe) path for the single-path baseline.
  std::vector<f64> bws = ctx_.vtier->path_bandwidths();
  if (!opts_.multipath) bws.resize(1);
  placement_->bind(std::move(bws), static_cast<u32>(subgroups_.size()));

  if (opts_.execution == "graph") {
    // The engine owns its pool (kept across iterations, workers spawned
    // once) so the per-run Stats deltas in run_update_graph are exact.
    graph_pool_ =
        std::make_unique<WorkStealingPool>(opts_.resolved_graph_workers());
    graph_exec_ = std::make_unique<GraphExecutor>(*graph_pool_);
  }
}

OffloadEngine::~OffloadEngine() {
  try {
    wait_gradient_io();
  } catch (...) {
    // Destruction must not throw; outstanding failures were the caller's to
    // collect via wait_gradient_io().
  }
}

std::string OffloadEngine::state_key(u32 id) const {
  // Tenant 0 keeps the historical unprefixed keys so single-job runs stay
  // bit-identical; co-tenants on a shared VirtualTier get their own key
  // namespace (two jobs reuse the same ranks).
  if (ctx_.tenant == 0) return Subgroup::key(ctx_.rank, id);
  return "t" + std::to_string(ctx_.tenant) + "/" + Subgroup::key(ctx_.rank, id);
}

std::string OffloadEngine::grad_key(u32 id) const {
  std::string key =
      "grad/" + std::to_string(ctx_.rank) + "/" + std::to_string(id);
  if (ctx_.tenant == 0) return key;
  return "t" + std::to_string(ctx_.tenant) + "/" + key;
}

void OffloadEngine::reset_slots(u32 n) {
  if (slots_.size() < n) slots_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    UpdateSlot& s = slots_[i];
    s.id = 0;
    s.cache_hit = false;
    s.fetch_done = std::future<void>();
    s.fetch_seconds = 0;
    s.fetch_sim_bytes = 0;
    // grads_fp32 keeps its reserved capacity — the reuse is the point.
  }
}

std::future<void> OffloadEngine::submit_io(IoRequest req) {
  req.tenant = ctx_.tenant;
  return ctx_.io->submit(std::move(req));
}

void OffloadEngine::poison_host_state(Subgroup& sg) {
  // Evicted host copies are poisoned so that any code path consuming stale
  // state (instead of re-fetching) fails loudly in tests.
  const f32 nan = std::numeric_limits<f32>::quiet_NaN();
  for (auto& v : sg.params()) v = nan;
  for (auto& v : sg.momentum()) v = nan;
  for (auto& v : sg.variance()) v = nan;
}

void OffloadEngine::initialize() {
  if (initialized_) throw std::logic_error("OffloadEngine: double initialize");
  IoBatch batch;
  for (u32 id = 0; id < num_subgroups(); ++id) {
    Subgroup& sg = *subgroups_[id];
    // Content is keyed on the world-size-independent identity (canonical
    // rank + global id for elastic layouts), so elastic restarts train on
    // bit-identical state; storage keys and policy slots stay local.
    Subgroup::deterministic_param_init(layout_.content_rank(), sg.id(),
                                       sg.params());
    const std::size_t path = placement_->path_for(id);
    // Pooled staging: acquire may block once >16 writes are in flight, but
    // the channel threads drain independently of this submitter, so the
    // backpressure resolves itself.
    auto buf = std::make_shared<BufferPool::Lease>(
        scratch_->acquire(sg.serialized_bytes()));
    sg.serialize(buf->bytes());
    poison_host_state(sg);
    const u64 sim = sg.sim_state_bytes();

    IoRequest req = IoRequest::tier_write(state_key(id), path, sim,
                                          IoPriority::kCheckpoint);
    req.work = [buf, sim, key = req.key](IoChannel& chan) -> u64 {
      chan.write(key, buf->bytes(), sim);
      return sim;
    };
    batch.add(submit_io(std::move(req)));
  }
  batch.wait_all();
  initialized_ = true;
}

void OffloadEngine::deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                                            bool first_micro_step,
                                            bool final_micro_step) {
  Subgroup& sg = *subgroups_.at(subgroup_id);
  const u64 sim_params = sg.sim_params();
  const u64 real_elems = sg.real_elems();

  IoRequest req = IoRequest::link_transfer(IoTarget::kD2HLink,
                                           grad_key(subgroup_id),
                                           sim_params * kFp16Bytes,
                                           IoPriority::kGradDeposit);
  req.work = [this, sample_index, subgroup_id, first_micro_step,
              final_micro_step, sim_params, real_elems](IoChannel& link)
      -> u64 {
    // (a) D2H transfer of the FP16 gradients produced on the GPU.
    link.transfer(sim_params * kFp16Bytes);
    BufferPool::Lease grad_lease = scratch_->acquire(real_elems * sizeof(u16));
    const std::span<u16> grads = grad_lease.as<u16>();
    ctx_.grads->generate_fp16(layout_.content_rank(),
                              layout_.global_id(subgroup_id), sample_index,
                              grads);
    // Accumulation fans out through the CPU pool internally; only the
    // link occupancy and per-deposit bookkeeping are serial here, which
    // matches a PCIe link's serial nature.
    if (first_micro_step) {
      accum_->store(subgroup_id, grads);
    } else {
      accum_->accumulate(subgroup_id, grads, ctx_.cpu_pool);
    }

    // (b)+(c) Baseline path only: upscale to FP32 on the host and flush the
    // FP32 gradients to third-level storage during the backward pass.
    // MLP-Offload skips this entirely (design principle 4). The flush is a
    // nested tier request so it queues on the path's write channel at
    // kGradDeposit priority; the link stays blocked until it lands, which
    // models the baseline's backward-phase I/O stall. The flush records
    // its own bytes/time — this request reports only the link transfer.
    if (!opts_.delayed_grad_conversion && final_micro_step) {
      ctx_.clock->sleep_for(opts_.convert.seconds_for_params(sim_params));
      auto fp32 = std::make_shared<BufferPool::Lease>(
          scratch_->acquire(real_elems * sizeof(f32)));
      accum_->upscale_into(subgroup_id, fp32->as<f32>(), ctx_.cpu_pool);

      const std::size_t path = placement_->path_for(subgroup_id);
      const u64 grad_sim = sim_params * kFp32Bytes;
      IoRequest flush = IoRequest::tier_write(
          grad_key(subgroup_id), path, grad_sim, IoPriority::kGradDeposit);
      flush.work = [fp32, grad_sim, key = flush.key](IoChannel& chan) -> u64 {
        chan.write(key, fp32->bytes(), grad_sim);
        return grad_sim;
      };
      submit_io(std::move(flush)).get();
    }
    return sim_params * kFp16Bytes;
  };
  gradient_io_.add(submit_io(std::move(req)));
}

void OffloadEngine::wait_gradient_io() { gradient_io_.wait_all(); }

std::future<void> OffloadEngine::submit_fetch(UpdateSlot& slot) {
  Subgroup& sg = *subgroups_[slot.id];
  const std::string key = state_key(slot.id);
  // Routing hint only; the authoritative location check happens at
  // dispatch (an unknown key fails loudly from the work function).
  const std::size_t loc = ctx_.vtier->locate(key);

  IoRequest req = IoRequest::tier_read(
      key, sg.sim_state_bytes(), IoPriority::kDemandPrefetch,
      loc == VirtualTier::npos ? IoRequest::kAutoPath : loc);
  req.work = [this, &slot](IoChannel& chan) -> u64 {
    return fetch_subgroup(slot, chan);
  };
  // Completion feeds the policy's bandwidth feedback: service time includes
  // the lock hand-off, matching how the paper's model sees path contention.
  req.on_complete = [this, &slot, loc](const IoResult& r) {
    slot.fetch_seconds = r.service_seconds;
    slot.fetch_sim_bytes = r.sim_bytes;
    placement_->observe(loc == VirtualTier::npos ? 0 : loc, r.sim_bytes,
                        r.service_seconds, r.queue_wait_seconds);
  };
  return submit_io(std::move(req));
}

u64 OffloadEngine::fetch_subgroup(UpdateSlot& slot, IoChannel& chan) {
  Subgroup& sg = *subgroups_[slot.id];
  const std::string key = state_key(slot.id);
  if (ctx_.vtier->locate(key) == VirtualTier::npos) {
    throw std::runtime_error("OffloadEngine: subgroup " + key +
                             " not found on any tier");
  }

  BufferPool::Lease staging = scratch_->acquire(sg.serialized_bytes());
  chan.read(key, staging.bytes(), sg.sim_state_bytes());
  sg.deserialize(staging.bytes());
  u64 sim_read = sg.sim_state_bytes();

  if (!opts_.delayed_grad_conversion) {
    // DeepSpeed behaviour: the FP32 gradients flushed during the backward
    // pass ride back with the subgroup (16 B/param total fetch payload).
    slot.grads_fp32.resize(sg.real_elems());
    std::span<u8> bytes(reinterpret_cast<u8*>(slot.grads_fp32.data()),
                        slot.grads_fp32.size() * sizeof(f32));
    const u64 grad_sim = sg.sim_params() * kFp32Bytes;
    chan.read(grad_key(slot.id), bytes, grad_sim);
    chan.erase(grad_key(slot.id));
    sim_read += grad_sim;
  }
  return sim_read;
}

std::future<void> OffloadEngine::flush_subgroup_async(
    u32 id, std::vector<SubgroupTrace>* traces) {
  Subgroup& sg = *subgroups_[id];
  auto buf = std::make_shared<BufferPool::Lease>(
      scratch_->acquire(sg.serialized_bytes()));
  sg.serialize(buf->bytes());
  poison_host_state(sg);
  host_valid_[id] = 0;
  cache_.erase(id);

  const std::size_t path = placement_->path_for(id);  // new tier t (Alg. 1 l.9)
  const u64 sim = sg.sim_state_bytes();

  IoRequest req = IoRequest::tier_write(state_key(id), path, sim,
                                        IoPriority::kLazyFlush);
  req.work = [buf, sim, key = req.key](IoChannel& chan) -> u64 {
    chan.write(key, buf->bytes(), sim);
    return sim;
  };
  req.on_complete = [this, id, path, sim, traces](const IoResult& r) {
    placement_->observe(path, sim, r.service_seconds, r.queue_wait_seconds);
    if (traces != nullptr) {
      (*traces)[id].write_seconds += r.service_seconds;
      (*traces)[id].sim_bytes_written += sim;
    }
  };
  return submit_io(std::move(req));
}

f64 OffloadEngine::charge_update_compute(u64 sim_params,
                                         f64 real_kernel_vseconds) {
  const f64 budget = static_cast<f64>(sim_params) / opts_.cpu_update_rate;
  if (budget > real_kernel_vseconds) {
    ctx_.clock->sleep_for(budget - real_kernel_vseconds);
  }
  // Accounting uses the calibrated cost model: wall-clock noise from the
  // emulation host (scheduler preemption amplified by the time scale) stays
  // in the phase wall time instead of being misattributed to compute.
  return budget;
}

IterationReport OffloadEngine::run_update(u64 iteration) {
  if (!initialized_) {
    throw std::logic_error("OffloadEngine: run_update before initialize");
  }
  return opts_.execution == "graph" ? run_update_graph(iteration)
                                    : run_update_linear(iteration);
}

IterationReport OffloadEngine::run_update_linear(u64 iteration) {
  const f64 phase_start = ctx_.clock->now();
  const IoScheduler::Stats io_stats_start = ctx_.io->tenant_stats(ctx_.tenant);
  const u32 n = num_subgroups();

  placement_->rebalance();
  const std::vector<u32> residents = cache_.resident();
  const std::vector<u32> order =
      order_policy_->order(n, iteration, residents);
  validate_order_permutation(order, n, order_policy_->name());

  std::vector<SubgroupTrace> traces(n);
  for (u32 id = 0; id < n; ++id) traces[id].subgroup_id = id;

  reset_slots(n);
  std::vector<UpdateSlot>& slots = slots_;
  // Host I/O buffers are a hard budget (paper §3.1: "three subgroups at a
  // time: one prefetched, one actively updated, one flushed back"). A new
  // prefetch may only be issued once the oldest outstanding flush has
  // drained and freed its buffer — this backpressure is what couples the
  // read stream to the slow write stream and produces the oscillating
  // effective-throughput pattern of Fig. 5.
  std::deque<std::future<void>> inflight_flushes;
  const std::size_t max_inflight_flushes = 1;

  u32 next_issue = 0;
  const auto issue = [&](u32 pos) {
    UpdateSlot& slot = slots[pos];
    slot.id = order[pos];
    if (use_host_cache_ && host_valid_[slot.id] && cache_.contains(slot.id)) {
      slot.cache_hit = true;
      cache_.touch(slot.id);
      return;
    }
    slot.cache_hit = false;
    while (inflight_flushes.size() > max_inflight_flushes) {
      inflight_flushes.front().get();
      inflight_flushes.pop_front();
    }
    slot.fetch_done = submit_fetch(slot);
  };

  // Prime the pipeline: the subgroup being updated plus prefetch_ahead
  // outstanding fetches (the paper's three host buffers: one flushing, one
  // updating, one prefetching, for prefetch_ahead == 1).
  const u32 window = 1 + opts_.prefetch_ahead;
  while (next_issue < n && next_issue < window) issue(next_issue++);

  IoBatch flush_batch;
  IoBatch h2d_batch;
  IterationReport report;
  report.iteration = iteration;

  // Exception safety: fetch/flush tasks capture pointers into `slots` and
  // `traces`. If the pipeline throws we must drain every outstanding task
  // before unwinding, or the I/O threads would write through dangling
  // pointers.
  const auto drain_outstanding = [&]() noexcept {
    for (auto& s : slots) {
      if (s.fetch_done.valid()) {
        try {
          s.fetch_done.get();
        } catch (...) {
        }
      }
    }
    for (auto& f : inflight_flushes) {
      if (f.valid()) {
        try {
          f.get();
        } catch (...) {
        }
      }
    }
    inflight_flushes.clear();
    try {
      flush_batch.wait_all();
    } catch (...) {
    }
    try {
      h2d_batch.wait_all();
    } catch (...) {
    }
  };

  const auto pipeline = [&] {
  for (u32 pos = 0; pos < n; ++pos) {
    UpdateSlot& slot = slots[pos];
    Subgroup& sg = *subgroups_[slot.id];
    SubgroupTrace& trace = traces[slot.id];

    if (slot.cache_hit) {
      if (!host_valid_[slot.id]) {
        // Guarded against by the validated cache capacity; a violation
        // here would mean consuming a poisoned, mid-flush subgroup.
        throw std::logic_error(
            "OffloadEngine: cached subgroup evicted before use");
      }
      trace.host_cache_hit = true;
      ++report.host_cache_hits;
      if (!opts_.delayed_grad_conversion) {
        // The optimizer state was cached, but the baseline gradient path
        // flushed this subgroup's FP32 gradients to storage during the
        // backward pass — they still have to come back (4 B/param).
        const std::string gkey = grad_key(slot.id);
        const std::size_t loc = ctx_.vtier->locate(gkey);
        if (loc == VirtualTier::npos) {
          throw std::runtime_error("OffloadEngine: gradients missing for " +
                                   gkey);
        }
        const u64 grad_sim = sg.sim_params() * kFp32Bytes;
        IoRequest req = IoRequest::tier_read(gkey, grad_sim,
                                             IoPriority::kDemandPrefetch, loc);
        req.work = [this, &slot, &sg, gkey, grad_sim](IoChannel& chan) -> u64 {
          slot.grads_fp32.resize(sg.real_elems());
          std::span<u8> bytes(reinterpret_cast<u8*>(slot.grads_fp32.data()),
                              slot.grads_fp32.size() * sizeof(f32));
          chan.read(gkey, bytes, grad_sim);
          chan.erase(gkey);
          return grad_sim;
        };
        req.on_complete = [&trace](const IoResult& r) {
          trace.read_seconds = r.service_seconds;
          trace.sim_bytes_read = r.sim_bytes;
        };
        submit_io(std::move(req)).get();
      }
    } else {
      slot.fetch_done.get();  // f2h_prefetch_wait_subgrp (Alg. 1 l.5)
      host_valid_[slot.id] = 1;
      trace.read_seconds = slot.fetch_seconds;
      trace.sim_bytes_read = slot.fetch_sim_bytes;
    }

    // Gradients: delayed in-place FP16->FP32 conversion (Alg. 1 l.6), or,
    // for the baseline, the FP32 gradients arrived with the fetch.
    SimTimer kernel_timer(*ctx_.clock);
    if (opts_.delayed_grad_conversion) {
      slot.grads_fp32.resize(sg.real_elems());
      accum_->upscale_into(slot.id, slot.grads_fp32, ctx_.cpu_pool);
      ctx_.clock->sleep_for(
          opts_.convert.seconds_for_params(sg.sim_params()));
    }

    // cpu_update_kernel (Alg. 1 l.7): the real Adam math on the
    // scale-reduced arrays, then the residual simulated compute charge.
    sg.set_step(sg.step() + 1);
    adam_update(opts_.adam, sg.params(), sg.momentum(), sg.variance(),
                slot.grads_fp32, sg.step(), ctx_.cpu_pool);
    trace.compute_seconds =
        charge_update_compute(sg.sim_params(), kernel_timer.elapsed());

    // async_h2d_transfer of the downscaled FP16 parameters (Alg. 1 l.8).
    // Only the link time is modelled; the GPU-side copy has no observable
    // state in this library.
    {
      IoRequest h2d = IoRequest::link_transfer(
          IoTarget::kH2DLink, state_key(slot.id), sg.sim_fp16_param_bytes(),
          IoPriority::kDemandPrefetch);
      h2d_batch.add(submit_io(std::move(h2d)));
    }

    // Lazy flush through the host cache (Alg. 1 l.9-10) or eager flush for
    // the thrashing baseline — the order policy selects the discipline.
    if (use_host_cache_) {
      host_valid_[slot.id] = 1;
      if (const auto evicted = cache_.insert(slot.id)) {
        inflight_flushes.push_back(flush_subgroup_async(*evicted, &traces));
      }
    } else {
      inflight_flushes.push_back(flush_subgroup_async(slot.id, &traces));
    }

    // async_f2h_prefetch of the next subgroup (Alg. 1 l.11).
    if (next_issue < n) issue(next_issue++);
  }

  while (!inflight_flushes.empty()) {
    inflight_flushes.front().get();
    inflight_flushes.pop_front();
  }
  flush_batch.wait_all();
  h2d_batch.wait_all();
  };  // pipeline

  try {
    pipeline();
  } catch (...) {
    // Queued demand reads are abandoned before draining: they are safe to
    // cancel (re-fetchable on retry or restore) and on a fail-stopped tier
    // each would otherwise dispatch serially just to fail. Queued writes
    // stay — a flush may carry the only copy of an updated subgroup. The
    // sweep is tenant-scoped: on a shared scheduler a neighbour job's
    // queued prefetches are not ours to abandon.
    ctx_.io->cancel_queued(IoPriority::kDemandPrefetch, ctx_.tenant);
    drain_outstanding();
    throw;
  }

  report.subgroups_processed = n;
  report.params_updated = layout_.shard_params;
  report.traces.reserve(n);
  for (u32 pos = 0; pos < n; ++pos) {
    const SubgroupTrace& t = traces[order[pos]];
    report.traces.push_back(t);
    report.sim_bytes_fetched += t.sim_bytes_read;
    report.sim_bytes_flushed += t.sim_bytes_written;
    report.fetch_seconds += t.read_seconds;
    report.flush_seconds += t.write_seconds;
    report.update_compute_seconds += t.compute_seconds;
  }
  report.update_seconds = ctx_.clock->now() - phase_start;
  fold_io_stats(report, io_stats_start, ctx_.io->tenant_stats(ctx_.tenant));
  // Delta since the previous update epilogue, so backward-phase deposit
  // churn lands in this iteration's report too.
  const BufferPool::Stats pool_now = scratch_->stats();
  report.pool_acquires = pool_now.acquires - pool_mark_.acquires;
  report.pool_heap_fallbacks =
      pool_now.heap_fallbacks - pool_mark_.heap_fallbacks;
  pool_mark_ = pool_now;
  return report;
}

// ---------------------------------------------------------------------------
// Graph execution mode (EngineOptions::execution == "graph").
//
// The iteration becomes a DAG: per subgroup a fetch -> compute -> {h2d,
// flush} chain, with the update-order position as the tie-break rank among
// ready nodes. Compared to the linear pipeline there is no prefetch window
// and no flush backpressure: every root fetch is queued on the IoScheduler
// at once (the scheduler sees the full frontier and coalesces/prioritizes
// across it), and compute overlaps freely on the work-stealing pool.
//
// Bit-identity with the linear pipeline (held to by the equivalence suite):
// per-subgroup Adam math touches only that subgroup's state and gradients,
// and the shard checksum is a commutative sum — so the schedule can change
// without the results changing, provided no node ever reads stale state.
// Three races could violate that, and each is closed structurally:
//   * a cache hit being evicted (poisoned) before its compute runs — hits
//     are claimed at build time by *removing* the id from the cache
//     ("pin-by-erase"; insert() can then never select it as a victim), and
//     the subgroup's flush node re-inserts it after the update;
//   * a fetch racing the victim's own in-flight eviction write on a
//     separate read channel — eviction registers the victim in
//     graph_pending_flush_ in the same critical section that invalidates
//     the host copy, and a fetch finding its id there parks a continuation
//     that the flush's on_settle runs only after the write has landed;
//   * torn eviction bookkeeping — serialize + poison + host_valid_ clear +
//     cache erase + pending-flush registration happen under one
//     graph_mutex_ hold.

void OffloadEngine::submit_graph_fetch(
    UpdateSlot& slot, std::function<void(std::exception_ptr)> done) {
  Subgroup& sg = *subgroups_[slot.id];
  const std::string key = state_key(slot.id);
  const std::size_t loc = ctx_.vtier->locate(key);

  IoRequest req = IoRequest::tier_read(
      key, sg.sim_state_bytes(), IoPriority::kDemandPrefetch,
      loc == VirtualTier::npos ? IoRequest::kAutoPath : loc);
  req.work = [this, &slot](IoChannel& chan) -> u64 {
    return fetch_subgroup(slot, chan);
  };
  req.on_complete = [this, &slot, loc](const IoResult& r) {
    slot.fetch_seconds = r.service_seconds;
    slot.fetch_sim_bytes = r.sim_bytes;
    placement_->observe(loc == VirtualTier::npos ? 0 : loc, r.sim_bytes,
                        r.service_seconds, r.queue_wait_seconds);
  };
  req.on_settle = [done = std::move(done)](std::exception_ptr e) {
    done(std::move(e));
  };
  submit_io(std::move(req));
}

void OffloadEngine::graph_fetch(TaskContext& tc, UpdateSlot& slot) {
  if (slot.cache_hit) {
    if (opts_.delayed_grad_conversion) return;  // state and grads host-resident
    // Baseline gradient path: the optimizer state is cached but this
    // subgroup's FP32 gradients were flushed during the backward pass and
    // must come back (4 B/param) before the update.
    Subgroup& sg = *subgroups_[slot.id];
    const std::string gkey = grad_key(slot.id);
    const std::size_t loc = ctx_.vtier->locate(gkey);
    if (loc == VirtualTier::npos) {
      throw std::runtime_error("OffloadEngine: gradients missing for " + gkey);
    }
    const u64 grad_sim = sg.sim_params() * kFp32Bytes;
    auto done = tc.defer();
    IoRequest req = IoRequest::tier_read(gkey, grad_sim,
                                         IoPriority::kDemandPrefetch, loc);
    req.work = [&slot, &sg, gkey, grad_sim](IoChannel& chan) -> u64 {
      slot.grads_fp32.resize(sg.real_elems());
      std::span<u8> bytes(reinterpret_cast<u8*>(slot.grads_fp32.data()),
                          slot.grads_fp32.size() * sizeof(f32));
      chan.read(gkey, bytes, grad_sim);
      chan.erase(gkey);
      return grad_sim;
    };
    req.on_complete = [&slot](const IoResult& r) {
      slot.fetch_seconds = r.service_seconds;
      slot.fetch_sim_bytes = r.sim_bytes;
    };
    req.on_settle = [done](std::exception_ptr e) { done(std::move(e)); };
    submit_io(std::move(req));
    return;
  }

  auto done = tc.defer();
  {
    MutexLock lock(graph_mutex_);
    const auto it = graph_pending_flush_.find(slot.id);
    if (it != graph_pending_flush_.end()) {
      // This subgroup's eviction write is still in flight: reading the
      // tier now could return the pre-update image (the read and write
      // channels of a path are not ordered against each other). Park the
      // fetch; the flush's settle hook runs it once the write has landed.
      // The continuation runs inside that hook, which must not throw — a
      // failed re-submit is converted into this node's failure instead.
      it->second.push_back([this, &slot, done] {
        try {
          submit_graph_fetch(slot, done);
        } catch (...) {
          done(std::current_exception());
        }
      });
      return;
    }
  }
  submit_graph_fetch(slot, std::move(done));
}

void OffloadEngine::graph_compute(TaskContext& tc, UpdateSlot& slot,
                                  std::vector<SubgroupTrace>& traces) {
  (void)tc;
  Subgroup& sg = *subgroups_[slot.id];
  SubgroupTrace& trace = traces[slot.id];

  if (slot.cache_hit) {
    MutexLock lock(graph_mutex_);
    if (!host_valid_[slot.id]) {
      // Structurally impossible (pinned hits cannot be evicted); kept as
      // a loud tripwire mirroring the linear pipeline's check.
      throw std::logic_error(
          "OffloadEngine: cached subgroup evicted before use");
    }
  } else {
    MutexLock lock(graph_mutex_);
    host_valid_[slot.id] = 1;
  }
  trace.host_cache_hit = slot.cache_hit;
  trace.read_seconds = slot.fetch_seconds;
  trace.sim_bytes_read = slot.fetch_sim_bytes;

  SimTimer kernel_timer(*ctx_.clock);
  if (opts_.delayed_grad_conversion) {
    slot.grads_fp32.resize(sg.real_elems());
    accum_->upscale_into(slot.id, slot.grads_fp32, ctx_.cpu_pool);
    ctx_.clock->sleep_for(opts_.convert.seconds_for_params(sg.sim_params()));
  }
  sg.set_step(sg.step() + 1);
  adam_update(opts_.adam, sg.params(), sg.momentum(), sg.variance(),
              slot.grads_fp32, sg.step(), ctx_.cpu_pool);
  trace.compute_seconds =
      charge_update_compute(sg.sim_params(), kernel_timer.elapsed());
}

void OffloadEngine::graph_h2d(TaskContext& tc, UpdateSlot& slot) {
  Subgroup& sg = *subgroups_[slot.id];
  auto done = tc.defer();
  IoRequest h2d = IoRequest::link_transfer(
      IoTarget::kH2DLink, state_key(slot.id), sg.sim_fp16_param_bytes(),
      IoPriority::kDemandPrefetch);
  h2d.on_settle = [done](std::exception_ptr e) { done(std::move(e)); };
  submit_io(std::move(h2d));
}

void OffloadEngine::graph_flush(TaskContext& tc, UpdateSlot& slot,
                                std::vector<SubgroupTrace>& traces) {
  u32 victim = slot.id;
  std::shared_ptr<BufferPool::Lease> buf;
  std::size_t buf_bytes = 0;
  // Acquire the staging lease BEFORE graph_mutex_: a blocking acquire
  // under the lock could deadlock against an earlier flush whose settle
  // hook must take the lock (drain) before its own lease is released. The
  // victim is unknown until we hold the lock, so lease the worst case.
  BufferPool::Lease lease = scratch_->acquire(max_serialized_bytes_);
  {
    MutexLock lock(graph_mutex_);
    if (use_host_cache_) {
      host_valid_[slot.id] = 1;
      const auto evicted = cache_.insert(slot.id);
      if (!evicted) return;  // stays cached; lease releases on scope exit
      victim = *evicted;
    }
    // Atomic eviction bookkeeping: choose the victim, capture its host
    // copy, invalidate it, and register the in-flight flush in one hold —
    // a concurrent fetch of the victim either sees none of this or parks
    // on the pending entry, never a half-evicted state.
    Subgroup& v = *subgroups_[victim];
    buf_bytes = v.serialized_bytes();
    v.serialize(lease.bytes().subspan(0, buf_bytes));
    poison_host_state(v);
    host_valid_[victim] = 0;
    cache_.erase(victim);
    graph_pending_flush_[victim];
  }
  buf = std::make_shared<BufferPool::Lease>(std::move(lease));

  auto done = tc.defer();
  const auto drain = [this, victim] {
    std::vector<std::function<void()>> parked;
    {
      MutexLock lock(graph_mutex_);
      const auto it = graph_pending_flush_.find(victim);
      if (it != graph_pending_flush_.end()) {
        parked = std::move(it->second);
        graph_pending_flush_.erase(it);
      }
    }
    for (auto& continuation : parked) continuation();
  };

  // Any failure from here on must still drain the pending entry we just
  // registered, or a fetch parked on it would hang the run.
  try {
    const std::size_t path = placement_->path_for(victim);
    const u64 sim = subgroups_[victim]->sim_state_bytes();
    IoRequest req = IoRequest::tier_write(state_key(victim), path, sim,
                                          IoPriority::kLazyFlush);
    req.work = [buf, buf_bytes, sim, key = req.key](IoChannel& chan) -> u64 {
      chan.write(key, std::span<const u8>(buf->data(), buf_bytes), sim);
      return sim;
    };
    req.on_complete = [this, victim, path, sim, &traces](const IoResult& r) {
      placement_->observe(path, sim, r.service_seconds, r.queue_wait_seconds);
      traces[victim].write_seconds += r.service_seconds;
      traces[victim].sim_bytes_written += sim;
    };
    req.on_settle = [drain, done](std::exception_ptr e) {
      // The write has landed (or definitively failed); releasing parked
      // fetches of the victim is now safe — and mandatory, a parked fetch
      // left unreleased would hang the run.
      drain();
      done(std::move(e));
    };
    submit_io(std::move(req));
  } catch (...) {
    drain();
    done(std::current_exception());
  }
}

IterationReport OffloadEngine::run_update_graph(u64 iteration) {
  const f64 phase_start = ctx_.clock->now();
  const IoScheduler::Stats io_stats_start = ctx_.io->tenant_stats(ctx_.tenant);
  const u32 n = num_subgroups();

  placement_->rebalance();
  const std::vector<u32> residents = cache_.resident();
  const std::vector<u32> order =
      order_policy_->order(n, iteration, residents);
  validate_order_permutation(order, n, order_policy_->name());

  std::vector<SubgroupTrace> traces(n);
  for (u32 id = 0; id < n; ++id) traces[id].subgroup_id = id;
  reset_slots(n);
  std::vector<UpdateSlot>& slots = slots_;

  // Build the DAG while still single-threaded. Cache hits are claimed and
  // pinned here (see the pin-by-erase note above); everything in the cache
  // at this point is lazy-flush residue from the previous iteration, so
  // after this loop the cache is empty and refills as flush nodes run.
  TaskGraph graph;
  for (u32 pos = 0; pos < n; ++pos) {
    UpdateSlot& slot = slots[pos];
    slot.id = order[pos];
    if (use_host_cache_ && host_valid_[slot.id] && cache_.contains(slot.id)) {
      slot.cache_hit = true;
      cache_.erase(slot.id);
    }
    const std::string tag = std::to_string(slot.id);
    const u32 compute =
        graph.add_node(NodeKind::kCompute, "update:" + tag, pos,
                       [this, &slot, &traces](TaskContext& tc) {
                         graph_compute(tc, slot, traces);
                       });
    if (!slot.cache_hit || !opts_.delayed_grad_conversion) {
      const u32 fetch = graph.add_node(
          slot.cache_hit ? NodeKind::kGradDeposit : NodeKind::kFetch,
          (slot.cache_hit ? "grad:" : "fetch:") + tag, pos,
          [this, &slot](TaskContext& tc) { graph_fetch(tc, slot); });
      graph.add_edge(fetch, compute);
    }
    const u32 h2d =
        graph.add_node(NodeKind::kCompute, "h2d:" + tag, pos,
                       [this, &slot](TaskContext& tc) { graph_h2d(tc, slot); });
    graph.add_edge(compute, h2d);
    const u32 flush = graph.add_node(NodeKind::kFlush, "flush:" + tag, pos,
                                     [this, &slot, &traces](TaskContext& tc) {
                                       graph_flush(tc, slot, traces);
                                     });
    graph.add_edge(compute, flush);
  }

  // run() returns (or rethrows) only after every node — including deferred
  // IO completions — has settled, so no node outlives slots/traces. Parked
  // continuations are drained by their flush's settle hook on every path.
  const GraphExecutor::Stats stats = graph_exec_->run(graph, [this] {
    // First failure: abandon queued demand reads (same rationale as the
    // linear pipeline's catch path — each would otherwise dispatch
    // serially on a fail-stopped tier just to fail). Queued writes stay;
    // a flush may carry the only copy of an updated subgroup. Scoped to
    // this engine's tenant — neighbours' queued reads are untouched.
    ctx_.io->cancel_queued(IoPriority::kDemandPrefetch, ctx_.tenant);
  });

  IterationReport report;
  report.iteration = iteration;
  report.subgroups_processed = n;
  report.params_updated = layout_.shard_params;
  report.traces.reserve(n);
  for (u32 pos = 0; pos < n; ++pos) {
    if (slots[pos].cache_hit) ++report.host_cache_hits;
    const SubgroupTrace& t = traces[order[pos]];
    report.traces.push_back(t);
    report.sim_bytes_fetched += t.sim_bytes_read;
    report.sim_bytes_flushed += t.sim_bytes_written;
    report.fetch_seconds += t.read_seconds;
    report.flush_seconds += t.write_seconds;
    report.update_compute_seconds += t.compute_seconds;
  }
  report.update_seconds = ctx_.clock->now() - phase_start;
  fold_io_stats(report, io_stats_start, ctx_.io->tenant_stats(ctx_.tenant));
  const BufferPool::Stats pool_now = scratch_->stats();
  report.pool_acquires = pool_now.acquires - pool_mark_.acquires;
  report.pool_heap_fallbacks =
      pool_now.heap_fallbacks - pool_mark_.heap_fallbacks;
  pool_mark_ = pool_now;
  report.graph_frontier_high_water = stats.frontier_high_water;
  report.graph_tasks_stolen = stats.tasks_stolen;
  report.graph_executor_idle_seconds = stats.idle_seconds;
  return report;
}

Subgroup OffloadEngine::snapshot_subgroup(u32 id) const {
  const Subgroup& sg = *subgroups_.at(id);
  if (host_valid_[id]) return sg;
  Subgroup copy(sg.id(), sg.sim_params(), sg.elem_scale());
  std::vector<u8> staging(copy.serialized_bytes());
  const std::string key = state_key(id);
  const std::size_t loc = ctx_.vtier->locate(key);
  if (loc == VirtualTier::npos) {
    throw std::runtime_error("snapshot_subgroup: " + key + " not on any tier");
  }
  // Untimed inspection read: bypass the throttle via the tier's peek path.
  ctx_.vtier->peek(key, staging);
  copy.deserialize(staging);
  return copy;
}

u64 OffloadEngine::state_checksum() const {
  u64 sum = 0;
  for (u32 id = 0; id < num_subgroups(); ++id) {
    sum += snapshot_subgroup(id).checksum();  // commutative on purpose
  }
  return sum;
}

Engine::Distribution OffloadEngine::distribution() const {
  Distribution dist;
  dist.path_sim_bytes.assign(ctx_.vtier->path_count(), 0);
  for (u32 id = 0; id < num_subgroups(); ++id) {
    const Subgroup& sg = *subgroups_[id];
    if (host_valid_[id]) {
      dist.host_sim_bytes += sg.sim_state_bytes();
      continue;
    }
    const std::size_t loc = ctx_.vtier->locate(state_key(id));
    if (loc != VirtualTier::npos) {
      dist.path_sim_bytes[loc] += sg.sim_state_bytes();
    }
  }
  return dist;
}

std::vector<u32> OffloadEngine::host_resident() const {
  return cache_.resident();
}

bool OffloadEngine::on_persistent_path(u32 id) const {
  if (host_valid_[id]) return false;
  const std::size_t loc = ctx_.vtier->locate(state_key(id));
  return loc != VirtualTier::npos && ctx_.vtier->path(loc).persistent();
}

void OffloadEngine::restore_state(u32 id, std::span<const u8> serialized) {
  Subgroup& sg = *subgroups_.at(id);
  sg.deserialize(serialized);  // validates header identity
  // Write through to the assigned path; the restored image becomes the
  // authoritative copy and any cached state is dropped. Checkpoint-class
  // traffic: it must not starve demand fetches of a concurrent update.
  const std::size_t path = placement_->path_for(id);
  const u64 sim = sg.sim_state_bytes();
  IoRequest req = IoRequest::tier_write(state_key(id), path, sim,
                                        IoPriority::kCheckpoint);
  req.work = [serialized, sim, key = req.key](IoChannel& chan) -> u64 {
    chan.write(key, serialized, sim);
    return sim;
  };
  submit_io(std::move(req)).get();  // span only lives until return
  poison_host_state(sg);
  host_valid_[id] = 0;
  cache_.erase(id);
}

}  // namespace mlpo
