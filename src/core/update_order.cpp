#include "core/update_order.hpp"

#include <algorithm>
#include <numeric>

namespace mlpo {

std::vector<u32> update_order(u32 num_subgroups, u64 iteration,
                              bool alternate) {
  std::vector<u32> order(num_subgroups);
  std::iota(order.begin(), order.end(), 0u);
  if (alternate && (iteration % 2 == 1)) {
    std::reverse(order.begin(), order.end());
  }
  return order;
}

}  // namespace mlpo
