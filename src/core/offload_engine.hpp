// The MLP-Offload engine (paper §3.4, Algorithm 1) — and, under the
// "deepspeed_zero3" preset, a faithful structural model of the DeepSpeed
// ZeRO-3 + DeepNVMe baseline it is evaluated against.
//
// One engine instance manages one worker's (GPU's) optimizer-state shard:
//   * backward phase: receives FP16 gradients subgroup-by-subgroup over the
//     D2H link into the host accumulation buffer; the baseline additionally
//     upscales to FP32 and flushes gradients to third-level storage;
//   * update phase: an asynchronous prefetch -> CPU-Adam -> lazy-flush
//     pipeline over the subgroups, with per-path process-exclusive
//     concurrency control.
//
// This class owns only the pipeline mechanics. The two strategy decisions —
// which storage path a subgroup lives on, and in what order subgroups are
// processed (and hence whether the host cache gets reuse) — are pluggable
// policies (src/policy/) selected by name in EngineOptions.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/host_cache.hpp"
#include "graph/graph_executor.hpp"
#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "policy/placement_policy.hpp"
#include "policy/update_order_policy.hpp"
#include "tiers/virtual_tier.hpp"
#include "train/grad_accum.hpp"
#include "util/aligned_buffer.hpp"
#include "util/mutex.hpp"
#include "util/work_stealing_pool.hpp"

namespace mlpo {

class OffloadEngine final : public Engine {
 public:
  OffloadEngine(const EngineContext& ctx, const EngineOptions& opts,
                const ShardLayout& layout);
  ~OffloadEngine() override;

  void initialize() override;

  /// Deposit one subgroup's FP16 gradients. Runs asynchronously on the I/O
  /// engine: D2H transfer, host accumulation, and — when delayed
  /// conversion is off and this is the window's final micro-step — FP32
  /// upscale + flush to storage.
  void deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                               bool first_micro_step,
                               bool final_micro_step) override;

  void wait_gradient_io() override;

  /// The update phase (Algorithm 1): prefetch, convert, CPU-Adam, H2D push
  /// of FP16 params, tier reassignment, lazy flush — pipelined and
  /// instrumented. `iteration` and the current host residency feed the
  /// update-order policy.
  IterationReport run_update(u64 iteration) override;

  const ShardLayout& layout() const override { return layout_; }
  u32 num_subgroups() const override {
    return static_cast<u32>(subgroups_.size());
  }
  const EngineOptions& options() const { return opts_; }

  /// The placement policy steering this engine's subgroup -> path mapping.
  PlacementPolicy& placement() { return *placement_; }
  const PlacementPolicy& placement() const { return *placement_; }
  /// The update-order policy steering the processing schedule.
  const UpdateOrderPolicy& order_policy() const { return *order_policy_; }

  Subgroup snapshot_subgroup(u32 id) const override;
  u64 state_checksum() const override;
  Distribution distribution() const override;
  std::vector<u32> host_resident() const override;
  bool on_persistent_path(u32 id) const override;
  void restore_state(u32 id, std::span<const u8> serialized) override;

  const SimClock& clock() const override { return *ctx_.clock; }
  int rank() const override { return ctx_.rank; }
  /// The scheduler all of this engine's traffic flows through (checkpoint
  /// helpers ride the same queues at IoPriority::kCheckpoint).
  IoScheduler* io() const override { return ctx_.io; }
  u32 tenant() const override { return ctx_.tenant; }

  /// Cumulative staging-pool counters — the ground truth behind the
  /// alloc-churn metric (heap_fallbacks must stay zero in steady state).
  BufferPool::Stats scratch_stats() const { return scratch_->stats(); }

 private:
  struct UpdateSlot;

  std::string state_key(u32 id) const;
  std::string grad_key(u32 id) const;
  /// All scheduler traffic funnels through here so every request carries
  /// the engine's tenant id (shared-scheduler fair-share / fail-stop
  /// scoping; 0 on an owned scheduler).
  std::future<void> submit_io(IoRequest req);
  void poison_host_state(Subgroup& sg);
  /// Reset the persistent update slots for a fresh iteration without
  /// surrendering the grads_fp32 capacity they reserved at construction.
  void reset_slots(u32 n);
  std::future<void> submit_fetch(UpdateSlot& slot);
  u64 fetch_subgroup(UpdateSlot& slot, IoChannel& chan);
  std::future<void> flush_subgroup_async(u32 id,
                                         std::vector<SubgroupTrace>* traces);
  f64 charge_update_compute(u64 sim_params, f64 real_kernel_vseconds);

  // --- the two iteration execution modes (EngineOptions::execution) ---
  IterationReport run_update_linear(u64 iteration);
  IterationReport run_update_graph(u64 iteration);
  // Graph-mode node bodies. Each receives its UpdateSlot; IO-issuing nodes
  // call TaskContext::defer() and complete from IoRequest::on_settle so a
  // pool worker never blocks on a transfer.
  void graph_fetch(TaskContext& tc, UpdateSlot& slot);
  void graph_compute(TaskContext& tc, UpdateSlot& slot,
                     std::vector<SubgroupTrace>& traces);
  void graph_h2d(TaskContext& tc, UpdateSlot& slot);
  void graph_flush(TaskContext& tc, UpdateSlot& slot,
                   std::vector<SubgroupTrace>& traces);
  void submit_graph_fetch(UpdateSlot& slot,
                          std::function<void(std::exception_ptr)> done);

  EngineContext ctx_;
  EngineOptions opts_;
  ShardLayout layout_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::unique_ptr<UpdateOrderPolicy> order_policy_;
  bool use_host_cache_ = false;  ///< order policy runs the lazy-flush path
  std::vector<std::unique_ptr<Subgroup>> subgroups_;
  std::vector<u8> host_valid_;  ///< per-subgroup: host copy authoritative
  std::unique_ptr<GradAccumulator> accum_;
  HostCache cache_;
  IoBatch gradient_io_;
  bool initialized_ = false;

  /// One slab behind every transient I/O-path buffer (fetch staging, flush
  /// serialization, deposit scratch): steady-state iterations suballocate
  /// from here instead of the heap. Created in the ctor once the subgroup
  /// geometry is known; declared before slots_/graph state so any late
  /// lease holders destruct first.
  std::unique_ptr<BufferPool> scratch_;
  std::size_t max_serialized_bytes_ = 0;
  /// Persistent per-position update slots, grads_fp32 reserved once to the
  /// largest subgroup — run_update reuses them every iteration.
  std::vector<UpdateSlot> slots_;
  /// stats() snapshot at the end of the previous update phase; the delta
  /// reported per iteration therefore also covers backward-phase deposits.
  BufferPool::Stats pool_mark_{};

  // Graph mode only (null under "linear"). The engine owns its pool so
  // GraphExecutor::Stats deltas are exact per iteration.
  std::unique_ptr<WorkStealingPool> graph_pool_;
  std::unique_ptr<GraphExecutor> graph_exec_;
  /// Serializes graph-node access to the linear-era shared state
  /// (cache_, host_valid_, subgroup host buffers during serialize/poison).
  /// The linear path never takes it — single-threaded by construction —
  /// so those members stay unannotated; TSan covers the graph path.
  Mutex graph_mutex_;
  /// Subgroups with an in-flight lazy flush, keyed by id. A fetch node for
  /// such an id parks a continuation here instead of racing its own
  /// eviction write on a separate read channel; the flush's on_settle
  /// drains the list once the write has landed on the tier.
  std::unordered_map<u32, std::vector<std::function<void()>>>
      graph_pending_flush_ MLPO_GUARDED_BY(graph_mutex_);
};

}  // namespace mlpo
