// The MLP-Offload engine (paper §3.4, Algorithm 1) — and, with its option
// flags disabled, a faithful structural model of the DeepSpeed ZeRO-3 +
// DeepNVMe baseline it is evaluated against.
//
// One engine instance manages one worker's (GPU's) optimizer-state shard:
//   * backward phase: receives FP16 gradients subgroup-by-subgroup over the
//     D2H link into the host accumulation buffer; the baseline additionally
//     upscales to FP32 and flushes gradients to third-level storage;
//   * update phase: an asynchronous prefetch -> CPU-Adam -> lazy-flush
//     pipeline over the subgroups, with multi-path placement (Eq. 1),
//     host-cache reuse via order alternation, delayed in-place gradient
//     conversion, and per-path process-exclusive concurrency control.
//
// The four EngineOptions flags correspond 1:1 to the paper's design
// principles and its §4.6 ablation steps; all-off == "DeepSpeed ZeRO-3",
// all-on == "Our Approach".
#pragma once

#include <memory>
#include <vector>

#include "core/host_cache.hpp"
#include "core/perf_model.hpp"
#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "telemetry/iteration_report.hpp"
#include "tiers/virtual_tier.hpp"
#include "train/adam.hpp"
#include "train/grad_accum.hpp"
#include "train/grad_source.hpp"
#include "train/mixed_precision.hpp"
#include "train/sharding.hpp"
#include "train/subgroup.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

struct EngineOptions {
  /// Design principle 1: place subgroups across all VirtualTier paths per
  /// the Eq. 1 performance model. Off: everything on path 0 (NVMe only).
  bool multipath = true;
  /// Design principle 3: alternate ascending/descending update order and
  /// reuse host-resident subgroups (lazy flush). Off: ascending order every
  /// iteration, eager flush after every update (DeepSpeed behaviour).
  bool cache_friendly_order = true;
  /// Design principle 4: keep FP16 gradients on the host and upscale
  /// during the update. Off: upscale + flush FP32 gradients during the
  /// backward pass and fetch them with the subgroup (16 B/param payloads).
  bool delayed_grad_conversion = true;
  /// Design principle 2: node-level process-exclusive tier locking. Off:
  /// all workers hit the tiers concurrently and pay contention penalties.
  /// Consumed when configuring the worker's IoScheduler (the engine itself
  /// never takes a lock; its scheduler's channels do).
  bool tier_exclusive_locking = true;

  /// Re-estimate per-path bandwidth from observed transfers (EMA) and
  /// repartition subgroups each iteration (paper §3.3). Off: placement
  /// stays fixed at the microbenchmark-seeded quotas — the static variant
  /// the adaptive-model ablation compares against.
  bool adaptive_placement = true;

  /// Subgroups the host can keep resident between iterations (beyond the
  /// pipeline's in-flight slots). Sized from free host memory in practice.
  u32 host_cache_subgroups = 3;
  /// Outstanding prefetches beyond the subgroup being updated (the paper's
  /// host buffers hold 3 subgroups: flushing / updating / prefetching).
  u32 prefetch_ahead = 1;
  /// This worker's CPU update throughput, simulated params per vsecond
  /// (paper cites ~8000 Mparam/s per node when state is host-resident).
  f64 cpu_update_rate = 2000e6;
  /// FP16->FP32 conversion throughput model (paper: ~65 GB/s on CPU).
  ConvertCost convert;
  AdamConfig adam;
  /// Scale reduction: simulated params per real element (1 = full fidelity).
  u64 elem_scale = 1;

  /// Baseline preset: DeepSpeed-ZeRO-3-style NVMe offloading.
  static EngineOptions deepspeed_zero3();
  /// Full MLP-Offload preset.
  static EngineOptions mlp_offload();
};

/// Wiring to node-shared infrastructure. Raw pointers are non-owning; all
/// referenced objects must outlive the engine.
///
/// All tier and link traffic goes through the IoScheduler: the engine
/// itself never touches a TierLock or a RateLimiter. The scheduler must be
/// configured with this worker's locking policy (see IoScheduler::Config::
/// tier_exclusive_locking / worker_id — the Worker wires this from
/// EngineOptions).
struct EngineContext {
  const SimClock* clock = nullptr;
  VirtualTier* vtier = nullptr;    ///< third-level storage (node-shared)
  IoScheduler* io = nullptr;       ///< this worker's I/O request scheduler
  ThreadPool* cpu_pool = nullptr;  ///< update-kernel threads (may be null)
  const GradSource* grads = nullptr;
  int worker_id = 0;  ///< node-local id (informational; locking lives in io)
  int rank = 0;       ///< global rank, used for storage keys
};

class OffloadEngine {
 public:
  OffloadEngine(const EngineContext& ctx, const EngineOptions& opts,
                const ShardLayout& layout);
  ~OffloadEngine();

  OffloadEngine(const OffloadEngine&) = delete;
  OffloadEngine& operator=(const OffloadEngine&) = delete;

  /// Create this shard's subgroups (deterministic parameter init, zero
  /// moments) and distribute them across the storage paths per the
  /// performance model. Must be called once before training.
  void initialize();

  /// Deposit one subgroup's FP16 gradients for micro-step `sample_index`
  /// (globally unique across iterations x accumulation steps). Runs
  /// asynchronously on the I/O engine: D2H transfer, host accumulation,
  /// and — when delayed conversion is off and this is the window's final
  /// micro-step — FP32 upscale + flush to storage.
  void deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                               bool first_micro_step, bool final_micro_step);

  /// Barrier for all outstanding gradient I/O (end of backward phase).
  void wait_gradient_io();

  /// The update phase (Algorithm 1): prefetch, convert, CPU-Adam, H2D push
  /// of FP16 params, tier reassignment, lazy flush — pipelined and
  /// instrumented. `iteration` selects the processing order parity.
  IterationReport run_update(u64 iteration);

  const ShardLayout& layout() const { return layout_; }
  u32 num_subgroups() const { return static_cast<u32>(subgroups_.size()); }
  const EngineOptions& options() const { return opts_; }
  PerfModel& perf_model() { return *perf_; }

  /// Read access to subgroup state wherever it currently lives (host or
  /// tier; tier-resident state is fetched untimed). For tests/inspection.
  Subgroup snapshot_subgroup(u32 id) const;

  /// Order-independent digest of the entire shard's optimizer state. Equal
  /// digests <=> bitwise-equal training state; used to prove reordering and
  /// multi-path placement do not change results.
  u64 state_checksum() const;

  /// Where the optimizer state currently lives (Fig. 10).
  struct Distribution {
    u64 host_sim_bytes = 0;
    std::vector<u64> path_sim_bytes;  ///< per VirtualTier path
  };
  Distribution distribution() const;

  /// Ids resident in host memory (valid, un-flushed state).
  std::vector<u32> host_resident() const;

  /// True when subgroup `id`'s authoritative copy sits on a persistent
  /// VirtualTier path (checkpoint pre-staging consults this).
  bool on_persistent_path(u32 id) const;

  /// Overwrite subgroup `id`'s state from a serialized image (checkpoint
  /// restore). The state is written through to the subgroup's assigned
  /// storage path; any host-cached copy is invalidated.
  void restore_state(u32 id, std::span<const u8> serialized);

  const SimClock& clock() const { return *ctx_.clock; }
  int rank() const { return ctx_.rank; }
  /// The scheduler all of this engine's traffic flows through (checkpoint
  /// helpers ride the same queues at IoPriority::kCheckpoint).
  IoScheduler& io() const { return *ctx_.io; }

 private:
  struct UpdateSlot;

  std::vector<std::size_t> effective_paths() const;
  std::size_t real_path(std::size_t model_path) const;
  std::string state_key(u32 id) const;
  std::string grad_key(u32 id) const;
  void poison_host_state(Subgroup& sg);
  std::future<void> submit_fetch(UpdateSlot& slot);
  u64 fetch_subgroup(UpdateSlot& slot, IoChannel& chan);
  std::future<void> flush_subgroup_async(u32 id,
                                         std::vector<SubgroupTrace>* traces);
  f64 charge_update_compute(u64 sim_params, f64 real_kernel_vseconds);

  EngineContext ctx_;
  EngineOptions opts_;
  ShardLayout layout_;
  std::vector<std::unique_ptr<Subgroup>> subgroups_;
  std::vector<u8> host_valid_;  ///< per-subgroup: host copy authoritative
  std::unique_ptr<GradAccumulator> accum_;
  std::unique_ptr<PerfModel> perf_;
  HostCache cache_;
  IoBatch gradient_io_;
  bool initialized_ = false;
};

}  // namespace mlpo
