// The MLP-Offload engine (paper §3.4, Algorithm 1) — and, under the
// "deepspeed_zero3" preset, a faithful structural model of the DeepSpeed
// ZeRO-3 + DeepNVMe baseline it is evaluated against.
//
// One engine instance manages one worker's (GPU's) optimizer-state shard:
//   * backward phase: receives FP16 gradients subgroup-by-subgroup over the
//     D2H link into the host accumulation buffer; the baseline additionally
//     upscales to FP32 and flushes gradients to third-level storage;
//   * update phase: an asynchronous prefetch -> CPU-Adam -> lazy-flush
//     pipeline over the subgroups, with per-path process-exclusive
//     concurrency control.
//
// This class owns only the pipeline mechanics. The two strategy decisions —
// which storage path a subgroup lives on, and in what order subgroups are
// processed (and hence whether the host cache gets reuse) — are pluggable
// policies (src/policy/) selected by name in EngineOptions.
#pragma once

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/host_cache.hpp"
#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "policy/placement_policy.hpp"
#include "policy/update_order_policy.hpp"
#include "tiers/virtual_tier.hpp"
#include "train/grad_accum.hpp"

namespace mlpo {

class OffloadEngine final : public Engine {
 public:
  OffloadEngine(const EngineContext& ctx, const EngineOptions& opts,
                const ShardLayout& layout);
  ~OffloadEngine() override;

  void initialize() override;

  /// Deposit one subgroup's FP16 gradients. Runs asynchronously on the I/O
  /// engine: D2H transfer, host accumulation, and — when delayed
  /// conversion is off and this is the window's final micro-step — FP32
  /// upscale + flush to storage.
  void deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                               bool first_micro_step,
                               bool final_micro_step) override;

  void wait_gradient_io() override;

  /// The update phase (Algorithm 1): prefetch, convert, CPU-Adam, H2D push
  /// of FP16 params, tier reassignment, lazy flush — pipelined and
  /// instrumented. `iteration` and the current host residency feed the
  /// update-order policy.
  IterationReport run_update(u64 iteration) override;

  const ShardLayout& layout() const override { return layout_; }
  u32 num_subgroups() const override {
    return static_cast<u32>(subgroups_.size());
  }
  const EngineOptions& options() const { return opts_; }

  /// The placement policy steering this engine's subgroup -> path mapping.
  PlacementPolicy& placement() { return *placement_; }
  const PlacementPolicy& placement() const { return *placement_; }
  /// The update-order policy steering the processing schedule.
  const UpdateOrderPolicy& order_policy() const { return *order_policy_; }

  Subgroup snapshot_subgroup(u32 id) const override;
  u64 state_checksum() const override;
  Distribution distribution() const override;
  std::vector<u32> host_resident() const override;
  bool on_persistent_path(u32 id) const override;
  void restore_state(u32 id, std::span<const u8> serialized) override;

  const SimClock& clock() const override { return *ctx_.clock; }
  int rank() const override { return ctx_.rank; }
  /// The scheduler all of this engine's traffic flows through (checkpoint
  /// helpers ride the same queues at IoPriority::kCheckpoint).
  IoScheduler* io() const override { return ctx_.io; }

 private:
  struct UpdateSlot;

  std::string state_key(u32 id) const;
  std::string grad_key(u32 id) const;
  void poison_host_state(Subgroup& sg);
  std::future<void> submit_fetch(UpdateSlot& slot);
  u64 fetch_subgroup(UpdateSlot& slot, IoChannel& chan);
  std::future<void> flush_subgroup_async(u32 id,
                                         std::vector<SubgroupTrace>* traces);
  f64 charge_update_compute(u64 sim_params, f64 real_kernel_vseconds);

  EngineContext ctx_;
  EngineOptions opts_;
  ShardLayout layout_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::unique_ptr<UpdateOrderPolicy> order_policy_;
  bool use_host_cache_ = false;  ///< order policy runs the lazy-flush path
  std::vector<std::unique_ptr<Subgroup>> subgroups_;
  std::vector<u8> host_valid_;  ///< per-subgroup: host copy authoritative
  std::unique_ptr<GradAccumulator> accum_;
  HostCache cache_;
  IoBatch gradient_io_;
  bool initialized_ = false;
};

}  // namespace mlpo
