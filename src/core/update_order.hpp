// Cache-friendly ordering of subgroup updates (paper §3.2).
//
// Adam updates are element-wise independent across subgroups, so any
// processing order yields bit-identical results. MLP-Offload exploits this:
// iteration k processes subgroups ascending, k+1 descending, k+2 ascending,
// ... so the subgroups that ended iteration k resident in host memory are
// exactly the ones iteration k+1 starts with — cache hits instead of
// thrashing.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace mlpo {

/// Subgroup processing order for `iteration` (0-based).
/// @param alternate when false, always ascending (DeepSpeed ZeRO-3
///        behaviour); when true, ascending on even iterations and
///        descending on odd ones.
std::vector<u32> update_order(u32 num_subgroups, u64 iteration, bool alternate);

}  // namespace mlpo
